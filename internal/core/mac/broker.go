package mac

import (
	"fmt"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// This file implements the higher-level interface the paper leaves as
// future work (Section 4.3.4): "we plan to investigate higher-level
// interfaces that will both hide this complexity and help provide fair
// allocation across competing processes", together with the classic
// deadlock preventions of Section 4.3.2 ("allocating all required
// memory at once or releasing memory if an allocation fails").
//
// A Broker coordinates the MAC controllers of cooperating processes in
// user space (the OS remains untouched — the coordination is itself a
// gray-box layer):
//
//   - Admission is FIFO: one client probes at a time, so concurrent
//     probe loops never fight each other for the same free pages.
//   - Fair share: while several clients hold memory, a client's maximum
//     is clamped to its share of what the machine offered when probing
//     began, preventing the first arrival from monopolizing memory.
//   - No hold-and-wait: a client cannot Acquire while it already holds
//     an allocation; combined with all-at-once gb_alloc this removes
//     two of the four deadlock conditions.

// BrokerConfig tunes the coordinator.
type BrokerConfig struct {
	// MAC configures each attached client's controller.
	MAC Config
	// FairShare, when true, caps each acquisition at
	// observedTotal / (holders + 1), so the first arrival cannot
	// monopolize memory that later cooperating clients will need.
	FairShare bool
}

// Broker coordinates gb_alloc across processes.
type Broker struct {
	cfg BrokerConfig

	// probing serializes the probe phase across clients.
	holders   int
	heldBytes int64
	queue     []*BrokerClient
	busy      bool

	// observedTotal is the most memory the broker has ever seen in
	// simultaneous verified use — its running estimate of total
	// allocatable memory.
	observedTotal int64
}

// NewBroker creates the shared coordinator (one per cooperating group;
// processes share it the way they would a shared-memory segment).
func NewBroker(cfg BrokerConfig) *Broker { return &Broker{cfg: cfg} }

// BrokerClient is one process's handle on the broker.
type BrokerClient struct {
	b    *Broker
	os   *simos.OS
	ctl  *Controller
	held *Allocation
}

// Attach registers the calling process.
func (b *Broker) Attach(os *simos.OS) *BrokerClient {
	return &BrokerClient{b: b, os: os, ctl: New(os, b.cfg.MAC)}
}

// Controller exposes the underlying MAC controller (for stats).
func (c *BrokerClient) Controller() *Controller { return c.ctl }

// Held returns the client's current allocation (nil if none).
func (c *BrokerClient) Held() *Allocation { return c.held }

// errHoldAndWait rejects nested acquisition.
var errHoldAndWait = fmt.Errorf("mac: client already holds an allocation (release first: hold-and-wait risks deadlock)")

// Acquire obtains between min and max bytes, waiting (FIFO) for its turn
// to probe and for memory to become available, up to maxWait (<= 0
// waits forever). It fails fast with an error if the client already
// holds memory.
func (c *BrokerClient) Acquire(min, max, multiple int64, maxWait sim.Time) (*Allocation, error) {
	if c.held != nil {
		return nil, errHoldAndWait
	}
	b := c.b
	deadline := c.os.Now() + maxWait

	// FIFO admission to the probe phase.
	b.queue = append(b.queue, c)
	for b.busy || b.queue[0] != c {
		c.os.Sleep(5 * sim.Millisecond)
		if maxWait > 0 && c.os.Now() > deadline {
			b.dequeue(c)
			return nil, fmt.Errorf("mac: acquire timed out waiting for probe turn")
		}
	}
	b.busy = true
	b.dequeue(c)
	defer func() { b.busy = false }()

	effMax := max
	if b.cfg.FairShare && b.observedTotal > 0 {
		share := b.observedTotal / int64(b.holders+1)
		share = roundDown(share, multiple)
		if share < min {
			share = min
		}
		if effMax > share {
			effMax = share
		}
	}

	// Admission gate: the broker knows how much its own clients hold.
	// Once it has observed the machine's allocatable total, it refuses
	// to probe for memory its holders still own — a probe would only
	// steal their idle pages (the OS cannot tell a reservation from
	// garbage; the broker can).
	for b.observedTotal > 0 && b.heldBytes+min > b.observedTotal {
		c.os.Sleep(10 * sim.Millisecond)
		if maxWait > 0 && c.os.Now() > deadline {
			return nil, fmt.Errorf("mac: acquire timed out waiting for holders to release")
		}
	}

	remaining := sim.Time(0)
	if maxWait > 0 {
		remaining = deadline - c.os.Now()
		if remaining <= 0 {
			return nil, fmt.Errorf("mac: acquire timed out")
		}
	}
	a, ok := c.ctl.GBAllocWait(min, effMax, multiple, remaining)
	if !ok {
		return nil, fmt.Errorf("mac: %d bytes not available within the wait budget", min)
	}
	c.held = a
	b.holders++
	b.heldBytes += a.Bytes
	if b.heldBytes > b.observedTotal {
		b.observedTotal = b.heldBytes
	}
	return a, nil
}

func (b *Broker) dequeue(c *BrokerClient) {
	for i, q := range b.queue {
		if q == c {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return
		}
	}
}

// Release returns the client's allocation.
func (c *BrokerClient) Release() {
	if c.held == nil {
		return
	}
	c.b.heldBytes -= c.held.Bytes
	c.ctl.GBFree(c.held)
	c.held = nil
	c.b.holders--
}
