package telemetry

import (
	"testing"
)

// fakeClock is a settable virtual clock for tests.
type fakeClock struct{ now int64 }

func (f *fakeClock) fn() Clock { return func() int64 { return f.now } }

func TestCounterGaugeHistogram(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())

	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter not idempotent by name")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	g.Add(2)
	if g.Value() != 6 || g.Max() != 7 {
		t.Errorf("gauge = %d max %d, want 6 max 7", g.Value(), g.Max())
	}

	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 250, 9999} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5+10+11+250+9999 {
		t.Errorf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 5 || h.Max() != 9999 {
		t.Errorf("hist min=%d max=%d", h.Min(), h.Max())
	}
	want := []int64{2, 1, 1, 1} // (..10] (10..100] (100..1000] overflow
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, h.counts[i], w, h.counts)
		}
	}
}

// The disabled path: every handle off a nil registry must be a usable
// no-op. A panic here would mean instrumented code needs enabled-checks.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.SetLabel("x")
	if r.Label() != "" || r.Now() != 0 {
		t.Error("nil registry not inert")
	}
	c := r.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("h", LatencyBuckets)
	h.Observe(42)
	if h.Count() != 0 {
		t.Error("nil histogram accumulated")
	}
	tr := r.NewTrack("p")
	tr.Begin("cat", "name")
	tr.Instant("cat", "name")
	tr.End()
	tr.End() // extra End must not panic
	r.AddRing(NewRing(4))
	if r.SpanCount() != 0 || r.SpanDrops() != 0 {
		t.Error("nil registry recorded spans")
	}
}

func TestTrackNestingAndTimestamps(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	tr := r.NewTrack("proc")

	clk.now = 100
	tr.Begin("syscall", "read")
	clk.now = 150
	tr.Begin("disk", "read")
	clk.now = 400
	tr.End() // disk
	clk.now = 500
	tr.End() // syscall
	tr.End() // unmatched: no-op

	if len(r.spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(r.spans))
	}
	// Inner span completes (and records) first.
	if s := r.spans[0]; s.name != "read" || s.cat != "disk" || s.start != 150 || s.dur != 250 {
		t.Errorf("inner span = %+v", s)
	}
	if s := r.spans[1]; s.cat != "syscall" || s.start != 100 || s.dur != 400 {
		t.Errorf("outer span = %+v", s)
	}
}

func TestSpanCap(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	r.SetMaxSpans(3)
	tr := r.NewTrack("p")
	for i := 0; i < 5; i++ {
		tr.Begin("c", "s")
		tr.End()
	}
	if r.SpanCount() != 3 || r.SpanDrops() != 2 {
		t.Errorf("spans=%d drops=%d, want 3/2", r.SpanCount(), r.SpanDrops())
	}
}

func TestRingWraparound(t *testing.T) {
	rg := NewRing(3)
	for i := int64(0); i < 10; i++ {
		rg.Append(Event{At: i, Cat: "x", Msg: "m"})
	}
	if rg.Len() != 3 || rg.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d, want 3/7", rg.Len(), rg.Dropped())
	}
	evs := rg.Events()
	for i, want := range []int64{7, 8, 9} {
		if evs[i].At != want {
			t.Errorf("event %d at %d, want %d", i, evs[i].At, want)
		}
	}
	var seen []int64
	rg.Do(func(ev Event) { seen = append(seen, ev.At) })
	if len(seen) != 3 || seen[0] != 7 || seen[2] != 9 {
		t.Errorf("Do order = %v", seen)
	}
}

func TestRingUnbounded(t *testing.T) {
	rg := NewRing(0)
	for i := int64(0); i < 100; i++ {
		rg.Append(Event{At: i})
	}
	if rg.Len() != 100 || rg.Dropped() != 0 {
		t.Errorf("unbounded ring len=%d dropped=%d", rg.Len(), rg.Dropped())
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	r.Histogram("bad", []int64{10, 10})
}

// TestHistogramReRegisterMismatchPanics: re-registering a histogram under
// the same name must either return the original (identical bounds) or
// panic (different bounds) — silently handing back a handle with the
// wrong bucket layout would corrupt the metric.
func TestHistogramReRegisterMismatchPanics(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	h := r.Histogram("lat", []int64{10, 100, 1000})
	if again := r.Histogram("lat", []int64{10, 100, 1000}); again != h {
		t.Fatal("identical re-registration did not return the original histogram")
	}
	cases := [][]int64{
		{10, 100},              // fewer bounds
		{10, 100, 1000, 10000}, // extra bound
		{10, 100, 999},         // same length, different element
	}
	for _, bounds := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("re-registration with bounds %v did not panic", bounds)
				}
			}()
			r.Histogram("lat", bounds)
		}()
	}
}
