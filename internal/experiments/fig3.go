package experiments

import (
	"fmt"

	"graybox/internal/apps"
	"graybox/internal/core/fccd"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Fig3Config parameterizes the application experiment (Figure 3): grep
// over 100 x 10 MB files and fastsort's read phase over a 1 GB input,
// each in three variants (unmodified / gray-box / gbp pipe), warm cache,
// normalized to the unmodified time.
type Fig3Config struct {
	Scale Scale
	// GrepFiles / GrepFileMB default to the paper's 100 x 10 MB.
	GrepFiles  int
	GrepFileMB float64
	// SortInputMB defaults to the paper's ~1 GB.
	SortInputMB float64
	// SortPassMB is the static pass size for the sort's read phase.
	SortPassMB float64
}

func (c Fig3Config) withDefaults() Fig3Config {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if c.GrepFiles == 0 {
		c.GrepFiles = 100
	}
	if c.GrepFileMB == 0 {
		c.GrepFileMB = 10
	}
	if c.SortInputMB == 0 {
		c.SortInputMB = 1024
	}
	if c.SortPassMB == 0 {
		c.SortPassMB = 512
	}
	return c
}

// Fig3 runs both applications and reports absolute and normalized times.
func Fig3(cfg Fig3Config) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	t := &Table{
		ID:      "fig3",
		Title:   "Application performance: unmodified vs gray-box vs gbp (normalized)",
		Columns: []string{"app", "variant", "time", "normalized"},
	}
	costs := apps.DefaultCosts()

	// The grep experiment and the three fastsort variants each build their
	// own platform, so they run as four independent units; rows are added
	// in paper order once all have finished.
	var grepPlain, grepGB, grepPipe sim.Time
	grepUnit := func() {
		s := newSystem(simos.Linux22, sc, 3000)
		mustRun(s, "mk", func(os *simos.OS) { mustNoErr(os.Mkdir("corpus")) })
		var paths []string
		fileSize := sc.mb(cfg.GrepFileMB) * simos.MB
		for i := 0; i < cfg.GrepFiles; i++ {
			p := fmt.Sprintf("corpus/t%03d", i)
			_, err := s.FS(0).CreateSized(p, fileSize)
			mustNoErr(err)
			paths = append(paths, p)
		}
		det := func(os *simos.OS, seed uint64) *fccd.Detector {
			return fccd.New(os, fccd.Config{
				AccessUnit:     scaledAccessUnit(sc),
				PredictionUnit: scaledPredictionUnit(sc),
				Seed:           seed,
			})
		}

		mustRun(s, "grep", func(os *simos.OS) {
			// Repeated runs: the first warms, then each variant runs on
			// the cache state its own previous run left behind — exactly
			// the paper's "repeated runs over roughly 1 GB".
			_, err := apps.Grep(os, paths, costs)
			mustNoErr(err)
			r, err := apps.Grep(os, paths, costs)
			mustNoErr(err)
			grepPlain = r.Elapsed
			r2, err := apps.GBGrep(os, det(os, 1), paths, costs)
			mustNoErr(err)
			grepGB = r2.Elapsed
			r3, err := apps.GrepWithGBP(os, det(os, 2), paths, costs)
			mustNoErr(err)
			grepPipe = r3.Elapsed
		})
	}

	// --- fastsort read phase ---
	inputSize := sc.mb(cfg.SortInputMB) * simos.MB
	passBytes := sc.mb(cfg.SortPassMB) * simos.MB
	runSort := func(variant apps.SortVariant, seed uint64) sim.Time {
		s := newSystem(simos.Linux22, sc, 3100+seed)
		_, err := s.FS(0).CreateSized("input", inputSize)
		mustNoErr(err)
		var elapsed sim.Time
		mustRun(s, "sort", func(os *simos.OS) {
			mustNoErr(os.Mkdir("runs"))
			// "To simulate a pipeline of creating records and then
			// sorting them, we refresh the file cache contents
			// before each run": bring the input into cache first.
			fd, err := os.Open("input")
			mustNoErr(err)
			warm := inputSize
			mustNoErr(fd.Read(0, warm))
			opts := apps.SortOptions{Variant: variant, PassBytes: passBytes}
			if variant != apps.SortStatic {
				opts.Detector = fccd.New(os, fccd.Config{
					AccessUnit:     scaledAccessUnit(sc),
					PredictionUnit: scaledPredictionUnit(sc),
					Boundary:       100,
					Seed:           seed,
				})
			}
			res, err := apps.FastSort(os, apps.SortSpec{
				Input: "input", OutputDir: "runs", RecordSize: 100,
			}, opts, costs)
			mustNoErr(err)
			elapsed = res.Read + res.Overhead
		})
		return elapsed
	}
	var sortPlain, sortGB, sortPipe sim.Time
	RunUnits(
		grepUnit,
		func() { sortPlain = runSort(apps.SortStatic, 0) },
		func() { sortGB = runSort(apps.SortFCCD, 1) },
		func() { sortPipe = runSort(apps.SortGBPPipe, 2) },
	)

	norm := func(x, base sim.Time) string { return fmt.Sprintf("%.2f", float64(x)/float64(base)) }
	t.AddRow("grep", "unmodified", grepPlain.String(), "1.00")
	t.AddRow("grep", "gb-grep", grepGB.String(), norm(grepGB, grepPlain))
	t.AddRow("grep", "gbp|grep", grepPipe.String(), norm(grepPipe, grepPlain))
	t.AddRow("fastsort(read)", "unmodified", sortPlain.String(), "1.00")
	t.AddRow("fastsort(read)", "gb-fastsort", sortGB.String(), norm(sortGB, sortPlain))
	t.AddRow("fastsort(read)", "gbp -out|sort", sortPipe.String(), norm(sortPipe, sortPlain))
	t.AddNote("paper: gb-grep ~3x faster; gbp|grep nearly as good; sort benefit smaller (heap + write buffering purge input)")
	return t
}
