package experiments

import (
	"fmt"

	"graybox/internal/apps"
	"graybox/internal/core/fldc"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/stats"
)

// Fig5Config parameterizes the file-ordering experiment (Figure 5):
// read 200 x 8 KB files split across two directories, cold cache, in
// three orders — random, sorted by directory, sorted by i-number — on
// all three platforms.
type Fig5Config struct {
	Scale    Scale
	NumFiles int   // default 200
	FileKB   int64 // default 8
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if c.NumFiles == 0 {
		c.NumFiles = 200
	}
	if c.FileKB == 0 {
		c.FileKB = 8
	}
	return c
}

// Fig5 builds the two-directory corpus with shuffled names (so that a
// name sort does not accidentally equal creation order, matching the
// paper's setup where directory sorting helps only modestly) and times
// the three access orders.
func Fig5(cfg Fig5Config) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	t := &Table{
		ID:      "fig5",
		Title:   "File ordering matters: 200 small files across two directories, cold cache",
		Columns: []string{"platform", "random", "sort-by-dir", "sort-by-inumber", "dir/rand", "ino/rand"},
	}
	costs := apps.DefaultCosts()

	// Each platform is an independent trial on its own system.
	platforms := []simos.Personality{simos.Linux22, simos.NetBSD15, simos.Solaris7}
	rows := RunTrials(len(platforms), func(pi int) []string {
		p := platforms[pi]
		s := newSystem(p, sc, 5000+uint64(pi))
		mustRun(s, "mk", func(os *simos.OS) {
			mustNoErr(os.Mkdir("dir0"))
			mustNoErr(os.Mkdir("dir1"))
		})
		// Shuffled names decouple name order from creation order.
		nameRng := sim.NewRNG(42)
		perm := nameRng.Perm(cfg.NumFiles)
		paths := make([]string, cfg.NumFiles)
		for i := 0; i < cfg.NumFiles; i++ {
			dir := fmt.Sprintf("dir%d", i%2)
			p := fmt.Sprintf("%s/f%03d", dir, perm[i])
			_, err := s.FS(0).CreateSized(p, cfg.FileKB<<10)
			mustNoErr(err)
			paths[i] = p
		}

		timeOrder := func(order []string, seed int) sim.Time {
			var times []float64
			for trial := 0; trial < sc.Trials; trial++ {
				s.DropCaches()
				var elapsed sim.Time
				mustRun(s, "read", func(os *simos.OS) {
					r, err := apps.ScanFiles(os, order, costs)
					mustNoErr(err)
					elapsed = r.Elapsed
				})
				times = append(times, float64(elapsed))
			}
			return sim.Time(stats.Mean(times))
		}

		// Random order.
		random := append([]string(nil), paths...)
		sim.NewRNG(uint64(pi+9)).Shuffle(len(random), func(i, j int) {
			random[i], random[j] = random[j], random[i]
		})
		tRandom := timeOrder(random, 0)

		// Sort by directory (names sorted within each directory, as ls
		// would produce).
		var byDir []string
		mustRun(s, "ls", func(os *simos.OS) {
			for _, d := range []string{"dir0", "dir1"} {
				names, err := os.Readdir(d)
				mustNoErr(err)
				for _, n := range names {
					byDir = append(byDir, d+"/"+n)
				}
			}
		})
		tDir := timeOrder(byDir, 1)

		// Sort by i-number via the FLDC.
		var byIno []string
		mustRun(s, "fldc", func(os *simos.OS) {
			var err error
			byIno, err = fldc.New(os).OrderByINumber(random)
			mustNoErr(err)
		})
		tIno := timeOrder(byIno, 2)

		return []string{string(p), tRandom.String(), tDir.String(), tIno.String(),
			fmt.Sprintf("%.2f", float64(tDir)/float64(tRandom)),
			fmt.Sprintf("%.2f", float64(tIno)/float64(tRandom))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: dir sort 10-25%% better than random; i-number sort ~6x on Linux/NetBSD, >2x on Solaris")
	return t
}
