package experiments

import (
	"fmt"

	"graybox/internal/disk"
	"graybox/internal/simos"
	"graybox/internal/stash"
)

// StashConfig parameterizes the second-level stash sweep: stash quota
// (as a fraction of the OS frame pool) crossed with workload intensity
// (how much of the read stream targets OS-warm files), gray-box
// admission vs. the naive always-admit control arm.
type StashConfig struct {
	Scale Scale
	// QuotaFracs sweeps the stash quota as a fraction of the machine's
	// frame-pool capacity.
	QuotaFracs []float64
	// Intensities sweeps the probability that a read targets the
	// OS-warmed subset of the corpus; higher intensity means more
	// fetches the kernel would have served from memory anyway.
	Intensities []float64
}

func (c StashConfig) withDefaults() StashConfig {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if len(c.QuotaFracs) == 0 {
		c.QuotaFracs = []float64{0.125, 0.5}
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, 0.5}
	}
	return c
}

const (
	stashFiles     = 16 // corpus files; the corpus totals 1.5x the pool
	stashWarmFiles = 4  // files pre-read through the OS before the run
)

// buildStashSystem is buildSystem plus the fast tier disk the stash
// backing file lives on.
func buildStashSystem(sc Scale, seed uint64) *simos.System {
	kernel := sc.MemoryMB * 66 / 896
	if kernel < 4 {
		kernel = 4
	}
	floor := sc.MemoryMB * 4 / 896
	if floor < 1 {
		floor = 1
	}
	fast := disk.FastParams()
	return simos.New(simos.Config{
		Personality:  simos.Linux22,
		Seed:         seed,
		MemoryMB:     sc.MemoryMB,
		KernelMB:     kernel,
		CacheFloorMB: floor,
		TierDisk:     &fast,
		ShardWorkers: shardWorkers,
	})
}

// poolBlocks returns the frame-pool capacity in pages (= stash blocks;
// both tiers share one block size).
func poolBlocks(s *simos.System) int64 { return int64(s.Pool.Capacity()) }

// sm64 is a splitmix64 stream — the trial's private, seed-deterministic
// access-pattern generator (engine RNG draws would couple the pattern
// to unrelated kernel events).
type sm64 uint64

func (x *sm64) next() uint64 {
	*x += 0x9e3779b97f4a7c15
	z := uint64(*x)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stashArm is one sweep point.
type stashArm struct {
	frac      float64
	intensity float64
	gray      bool
}

// Stash measures what gray-box admission buys a second-level cache. A
// corpus 1.5x the frame pool lives on the slow disk; part of it is
// pre-warmed through the OS, so a fraction of stash fetches would have
// been served by the invisible kernel cache. The naive arm admits every
// fetch and burns quota double-caching those blocks; the gray-box arm
// times each fetch (FCCD) and declines the memory-speed ones. The
// platform's audit oracle scores every admission against true residency
// — the "wasted" columns below are oracle counts, not stash guesses.
// Each trial ends in degraded mode: the source goes offline and a
// replay of the online read stream measures how much the stash can
// serve alone ("off-hit").
func Stash(cfg StashConfig) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	var arms []stashArm
	maxFrac := 0.0
	for _, qf := range cfg.QuotaFracs {
		if qf > maxFrac {
			maxFrac = qf
		}
		for _, in := range cfg.Intensities {
			arms = append(arms, stashArm{qf, in, false}, stashArm{qf, in, true})
		}
	}
	t := &Table{
		ID:    "stash",
		Title: "Second-level stash tier: gray-box vs naive admission",
		Columns: []string{"quota", "warm", "policy", "hits", "misses", "admits",
			"wasted", "wasted-rate", "writebacks", "off-hit"},
	}

	seedOf := func(ii int) uint64 { return 11000 + 131*uint64(ii) }
	// Every arm runs on the same base platform — corpus on the slow
	// disk, a backing file sized for the largest quota on the fast tier
	// — built once and forked per trial. All fixture files are
	// CreateSized, so the base stays snapshot-pure (zero I/O).
	rows := RunTrialsWithSnapshot(len(arms), func(seed uint64) *simos.System {
		s := buildStashSystem(sc, seed)
		ps := int64(s.PageSize())
		pool := poolBlocks(s)
		fileBlocks := (3*pool/2 + stashFiles - 1) / stashFiles
		for i := 0; i < stashFiles; i++ {
			_, err := s.FS(0).CreateSized(fmt.Sprintf("corpus.%d", i), fileBlocks*ps)
			mustNoErr(err)
		}
		maxQuota := int64(maxFrac * float64(pool))
		if maxQuota < 16 {
			maxQuota = 16
		}
		_, err := s.FS(1).CreateSized("stash0", maxQuota*ps)
		mustNoErr(err)
		return s
	}, seedOf, func(ii int, s *simos.System) []string {
		arm := arms[ii]
		seed := seedOf(ii)
		aud := s.EnableAudit()
		ps := int64(s.PageSize())
		pool := poolBlocks(s)
		fileBlocks := (3*pool/2 + stashFiles - 1) / stashFiles
		quota := int64(arm.frac * float64(pool))
		if quota < 16 {
			quota = 16
		}
		ops := 2 * quota
		if ops < 1000 {
			ops = 1000
		}
		if ops > 8000 {
			ops = 8000
		}
		offOps := ops / 5

		var got stash.Stats
		var offServed int64
		mustRun(s, "stash-trial", func(os *simos.OS) {
			// Warm phase: read the warm files straight through the OS so
			// their blocks are resident in the kernel cache before the
			// stash ever sees them.
			for i := 0; i < stashWarmFiles; i++ {
				fd, err := os.Open(fmt.Sprintf("corpus.%d", i))
				mustNoErr(err)
				mustNoErr(fd.Read(0, fd.Size()))
			}
			st, err := stash.New(os, stash.Config{
				Backing:     "/mnt1/stash0",
				QuotaBlocks: int(quota),
				GrayBox:     arm.gray,
			})
			mustNoErr(err)
			files := make([]*stash.File, stashFiles)
			for i := range files {
				files[i], err = st.Open(fmt.Sprintf("corpus.%d", i))
				mustNoErr(err)
			}
			// Aged start: preload half the quota from a prior life's
			// manifest (persistent-index reload, zero virtual time) —
			// the snapshot-era amortization every arm shares.
			pre := quota / 2
			man := make([]stash.BlockID, 0, pre)
			for i := int64(0); i < pre; i++ {
				f := files[i%stashFiles]
				man = append(man, stash.BlockID{Ino: f.Ino(), Page: i / stashFiles})
			}
			mustNoErr(st.Preload(man))

			// Online phase: skewed block reads. With probability
			// intensity a read targets the warm files; otherwise it is
			// uniform over the whole corpus.
			pick := func(rng *sm64) (int, int64) {
				fi := int(rng.next() % stashFiles)
				if float64(rng.next()>>11)/(1<<53) < arm.intensity {
					fi = int(rng.next() % stashWarmFiles)
				}
				return fi, int64(rng.next() % uint64(fileBlocks))
			}
			rng := sm64(seed)
			for op := int64(0); op < ops; op++ {
				fi, pg := pick(&rng)
				mustNoErr(files[fi].Read(pg*ps, ps))
			}
			// Write phase: dirty a few corpus.0 blocks through the stash
			// and flush, exercising write-back ordering (FLDC layout
			// order on the gray-box arm, FIFO on the naive arm).
			for w := 0; w < 64; w++ {
				pg := int64(rng.next() % uint64(fileBlocks))
				mustNoErr(files[0].Write(pg*ps, ps))
			}
			mustNoErr(st.Sync())

			// Degraded phase: the source goes away; replay the online
			// stream's prefix stash-only and count what survives.
			st.SetOffline(true)
			replay := sm64(seed)
			for op := int64(0); op < offOps; op++ {
				fi, pg := pick(&replay)
				switch err := files[fi].Read(pg*ps, ps); {
				case err == nil:
					offServed++
				case !stash.IsOfflineMiss(err):
					mustNoErr(err)
				}
			}
			st.SetOffline(false)
			got = st.Stats()
		})

		wasted, wrate := "-", "-"
		if r := aud.Report().Stash; r != nil {
			wasted = fmt.Sprintf("%d", r.Wasted)
			wrate = fmt.Sprintf("%.3f", r.WastedRate)
		}
		policy := "naive"
		if arm.gray {
			policy = "graybox"
		}
		return []string{
			fmt.Sprintf("%d", quota),
			fmt.Sprintf("%.2f", arm.intensity),
			policy,
			fmt.Sprintf("%d", got.Hits),
			fmt.Sprintf("%d", got.Misses),
			fmt.Sprintf("%d", got.Admits),
			wasted,
			wrate,
			fmt.Sprintf("%d", got.Writebacks),
			fmt.Sprintf("%.3f", float64(offServed)/float64(offOps)),
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("quota in blocks (fracs %v of the frame pool); warm = probability a read targets the OS-warmed quarter of the corpus", cfg.QuotaFracs)
	t.AddNote("wasted/wasted-rate are oracle-scored admissions of blocks the OS cache already held; off-hit = fraction of a degraded-mode replay served stash-only")
	return t
}
