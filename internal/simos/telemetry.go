package simos

import (
	"fmt"

	"graybox/internal/sim"
	"graybox/internal/telemetry"
)

// sysCall enumerates the instrumented system-call types of the OS
// facade. Each gets a latency histogram (whose count is the call count)
// and a span on the calling process's track.
type sysCall uint8

const (
	sysOpen sysCall = iota
	sysCreate
	sysRead
	sysReadByte
	sysWrite
	sysStat
	sysUtimes
	sysReaddir
	sysUnlink
	sysRmdir
	sysRename
	sysMkdir
	sysTouch // memory op, metrics-only (too hot for per-op spans)
	numSysCalls
)

var sysCallNames = [numSysCalls]string{
	"open", "create", "read", "read_byte", "write", "stat", "utimes",
	"readdir", "unlink", "rmdir", "rename", "mkdir", "touch",
}

// sysTel holds the facade's per-call-type telemetry handles.
type sysTel struct {
	hist [numSysCalls]*telemetry.Histogram
}

func newSysTel(r *telemetry.Registry) *sysTel {
	t := &sysTel{}
	for c := sysCall(0); c < numSysCalls; c++ {
		t.hist[c] = r.Histogram("syscall."+sysCallNames[c]+"_ns", telemetry.LatencyBuckets)
	}
	return t
}

// sysEnter opens the syscall span and returns the virtual start time.
// Callers gate on s.sysTel != nil, so the disabled path costs one nil
// check and no allocation.
func (o *OS) sysEnter(c sysCall) sim.Time {
	o.p.Track().Begin("syscall", sysCallNames[c])
	return o.p.Now()
}

// sysExit closes the span and records the call's virtual latency.
func (o *OS) sysExit(c sysCall, start sim.Time) {
	o.p.Track().End()
	o.sys.sysTel.hist[c].Observe(int64(o.p.Now() - start))
}

// BeginRequest opens a request-scoped root span named name on the
// calling process's track, with the span's start backdated to the
// request's arrival time — the admission-queue wait between arrival and
// the first served instruction belongs to the request. Every syscall,
// disk, and app span the process opens until Finish is stamped with the
// request id, and Finish returns the critical-path breakdown. With
// telemetry disabled this returns nil, whose methods are no-ops, so the
// request hot path pays one nil check.
func (o *OS) BeginRequest(name string, arrival sim.Time) *telemetry.RequestSpan {
	return o.p.Track().StartRequest("request", name, int64(arrival))
}

// EnableTelemetry attaches a telemetry registry to this machine and
// instruments every layer: the engine (process span tracks), the frame
// pool, the file cache, all disks, the VM, and the system-call facade.
// Call it right after New, before spawning processes (earlier processes
// would miss their span tracks). It is idempotent and returns the
// registry; when never called, telemetry stays disabled at zero cost.
func (s *System) EnableTelemetry() *telemetry.Registry {
	if s.tel != nil {
		return s.tel
	}
	label := fmt.Sprintf("%s mem=%dMB disks=%d seed=%d",
		s.cfg.Personality, s.cfg.MemoryMB, len(s.dataDisks), s.cfg.Seed)
	if s.cfg.CPUs > 0 {
		// Only contended machines carry the dimension, so default-model
		// labels (and every export keyed on them) are byte-unchanged.
		label += fmt.Sprintf(" cpus=%d", s.cfg.CPUs)
	}
	r := telemetry.NewRegistry(label, s.Engine.NowNS)
	s.Engine.SetTelemetry(r)
	s.Pool.Instrument(r)
	s.Cache.Instrument(r)
	s.VM.Instrument(r)
	for i, d := range s.dataDisks {
		d.Instrument(r, fmt.Sprintf("disk%d", i))
	}
	s.swapDisk.Instrument(r, "swap")
	s.sysTel = newSysTel(r)
	s.tel = r
	return r
}

// Telemetry returns the machine's registry, nil when disabled. The nil
// registry is safe to use; all handles it returns are no-ops.
func (s *System) Telemetry() *telemetry.Registry { return s.tel }

// Telemetry exposes the registry to the process (ICLs register their own
// probe metrics). This is not a gray-box violation: telemetry is an
// observability side channel, and ICLs only record what they measured
// through the facade anyway. Safe on a nil receiver so ICL constructors
// can be exercised without a system.
func (o *OS) Telemetry() *telemetry.Registry {
	if o == nil {
		return nil
	}
	return o.sys.tel
}
