// Package stats implements the statistical routines of the "gray toolbox"
// described in Section 5 of the paper: simple descriptive statistics,
// incremental (streaming) statistics, correlation, outlier discard,
// two-group clustering, linear regression, exponential averaging, and the
// paired-sample sign test used by MS Manners.
//
// All routines operate on float64 slices and never mutate their inputs
// unless documented otherwise.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty
// slice, mirroring the convention of the other routines here.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (NaN if empty).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs (NaN if empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (NaN if empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (NaN if empty). xs is not modified.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples x and y. It returns NaN when the lengths differ, fewer than two
// pairs exist, or either series is constant.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// DiscardOutliers returns the elements of xs within k standard deviations
// of the median. The median (rather than the mean) makes the filter robust
// against the very outliers being discarded. If the standard deviation is
// zero, xs is returned unfiltered (copied).
func DiscardOutliers(xs []float64, k float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	med := Median(xs)
	sd := StdDev(xs)
	out := make([]float64, 0, len(xs))
	if sd == 0 {
		return append(out, xs...)
	}
	for _, x := range xs {
		if math.Abs(x-med) <= k*sd {
			out = append(out, x)
		}
	}
	return out
}

// LinearRegression fits y = slope*x + intercept by least squares. It
// returns NaNs when fewer than two points or constant x.
func LinearRegression(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx float64
	for i := range x {
		dx := x[i] - mx
		sxy += dx * (y[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// SignTest performs the paired-sample sign test: given paired observations
// a and b, it returns the number of pairs where a > b, the number where
// a < b (ties dropped), and the two-sided binomial p-value for the null
// hypothesis that positive and negative differences are equally likely.
func SignTest(a, b []float64) (plus, minus int, p float64) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] > b[i]:
			plus++
		case a[i] < b[i]:
			minus++
		}
	}
	total := plus + minus
	if total == 0 {
		return plus, minus, 1
	}
	k := plus
	if minus < plus {
		k = minus
	}
	// Two-sided p = 2 * P(X <= k), X ~ Binomial(total, 0.5), capped at 1.
	p = 2 * binomCDF(k, total, 0.5)
	if p > 1 {
		p = 1
	}
	return plus, minus, p
}

// binomCDF returns P(X <= k) for X ~ Binomial(n, pr), computed in log
// space for numerical stability.
func binomCDF(k, n int, pr float64) float64 {
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += math.Exp(logChoose(n, i) + float64(i)*math.Log(pr) + float64(n-i)*math.Log(1-pr))
	}
	return sum
}

func logChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}
