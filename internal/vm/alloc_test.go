package vm

import (
	"testing"

	"graybox/internal/sim"
)

// TestTouchResidentAllocs is the CI tripwire for the MAC probe loop's
// hottest path: touching a resident page (clock relink + wake event)
// must not allocate once the clock ring and the engine's event pool are
// warm. The measurement runs inside the process body, on virtual time.
func TestTouchResidentAllocs(t *testing.T) {
	w := newWorld(256)
	as := w.vm.NewSpace("a")
	var allocs float64
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(64)
		for i := int64(0); i < 64; i++ {
			as.Touch(p, r, i, true) // fault everything in; warm the pools
		}
		i := int64(0)
		allocs = testing.AllocsPerRun(1000, func() {
			as.Touch(p, r, i%64, true)
			i++
		})
	})
	if allocs != 0 {
		t.Errorf("resident Touch allocs/op = %v, want 0", allocs)
	}
}

// TestEvictSwapInSteadyStateAllocs drives the overcommit cycle — every
// touch swaps one page in and another out — and checks the clock ring
// and swap-slot free list reach an allocation-free steady state.
func TestEvictSwapInSteadyStateAllocs(t *testing.T) {
	w := newWorld(32)
	as := w.vm.NewSpace("a")
	var allocs float64
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(64) // 2x physical memory
		for round := 0; round < 3; round++ {
			for i := int64(0); i < 64; i++ {
				as.Touch(p, r, i, true)
			}
		}
		i := int64(0)
		allocs = testing.AllocsPerRun(200, func() {
			as.Touch(p, r, i%64, true)
			i++
		})
	})
	if allocs != 0 {
		t.Errorf("swap-cycle Touch allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkTouchResident(b *testing.B) {
	w := newWorld(256)
	as := w.vm.NewSpace("a")
	pr := w.e.Go("bench", func(p *sim.Proc) {
		r := as.Alloc(64)
		for i := int64(0); i < 64; i++ {
			as.Touch(p, r, i, true)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			as.Touch(p, r, int64(i)%64, true)
		}
	})
	w.e.Run()
	if pr.Err() != nil {
		b.Fatal(pr.Err())
	}
}
