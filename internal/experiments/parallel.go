package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// The experiment harnesses are embarrassingly parallel: every trial (a
// seed, a personality, a file size, a sweep point) constructs its own
// Platform — one engine, one RNG, one virtual clock — and shares nothing
// with its siblings. RunTrials fans those trials out over a worker pool
// and reassembles results in index order, so the rendered tables are
// byte-identical to a sequential run at any pool width.

// parallelism is the configured pool width; <= 0 means GOMAXPROCS.
var parallelism atomic.Int64

// Parallelism returns the current trial worker-pool width.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the trial worker-pool width (the CLI's -parallel
// flag). n <= 0 restores the default, GOMAXPROCS.
func SetParallelism(n int) { parallelism.Store(int64(n)) }

// RunTrials runs trial(0) .. trial(n-1) on the worker pool and returns
// their results in index order. Trials must be mutually independent; a
// panic inside any trial (the harness's mustRun/mustNoErr failure path)
// is re-raised in the caller, lowest index first.
func RunTrials[T any](n int, trial func(i int) T) []T {
	out := make([]T, n)
	ForEachTrial(n, func(i int) { out[i] = trial(i) })
	return out
}

// RunUnits executes heterogeneous independent units (closures writing to
// distinct destinations) through the same pool.
func RunUnits(units ...func()) {
	ForEachTrial(len(units), func(i int) { units[i]() })
}

// ForEachTrial is the pool core: it runs trial(0) .. trial(n-1), at most
// Parallelism() at a time, and returns when all have finished.
func ForEachTrial(n int, trial func(i int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			trial(i)
		}
		return
	}
	type trialPanic struct {
		val   interface{}
		stack []byte
	}
	panics := make([]*trialPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &trialPanic{val: r, stack: debug.Stack()}
						}
					}()
					trial(i)
				}()
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("experiments: trial %d panicked: %v\n%s", i, p.val, p.stack))
		}
	}
}

// Virtual-time accounting for the -bench-out report: every platform built
// through newSystem/newMultiDiskSystem is registered here, and the CLI
// drains the total after each experiment. Mini-simulations that build raw
// engines (internal/priorart) are not tracked.
var (
	vtMu      sync.Mutex
	vtSystems []*simos.System
)

func trackSystem(s *simos.System) *simos.System {
	if telEnabled.Load() {
		r := s.EnableTelemetry()
		telMu.Lock()
		telRegs = append(telRegs, r)
		telMu.Unlock()
	}
	if audEnabled.Load() {
		a := s.EnableAudit()
		audMu.Lock()
		auditors = append(auditors, a)
		audMu.Unlock()
	}
	vtMu.Lock()
	vtSystems = append(vtSystems, s)
	vtMu.Unlock()
	return s
}

// TakeVirtualTime returns the summed final virtual clocks of every
// platform built since the previous call, and resets the accumulator.
func TakeVirtualTime() sim.Time {
	vtMu.Lock()
	defer vtMu.Unlock()
	var total sim.Time
	for _, s := range vtSystems {
		total += s.Engine.Now()
	}
	vtSystems = nil
	return total
}
