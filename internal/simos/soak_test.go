package simos

import (
	"fmt"
	"testing"

	"graybox/internal/sim"
)

// TestSoakMixedWorkload runs several processes doing unrelated work —
// streaming reads, write churn, memory pressure, metadata storms — on
// one machine, and checks cross-subsystem invariants at the end. It is
// the repository's integration stress test: every substrate (engine,
// disk, cache, fs, vm, pool) participates simultaneously.
func TestSoakMixedWorkload(t *testing.T) {
	for _, pers := range []Personality{Linux22, NetBSD15, Solaris7} {
		pers := pers
		t.Run(string(pers), func(t *testing.T) {
			s := New(Config{Personality: pers, MemoryMB: 48, KernelMB: 8, CacheFloorMB: 1, NumDisks: 2})
			stop := false

			// Fixture.
			if _, err := s.FS(0).CreateSized("stream", 24*MB); err != nil {
				t.Fatal(err)
			}

			// 1: streaming reader loops over a file larger than memory
			// allows comfortably.
			reader := s.Spawn("reader", 0, func(os *OS) {
				fd, err := os.Open("stream")
				if err != nil {
					t.Error(err)
					return
				}
				for !stop {
					for off := int64(0); off < fd.Size() && !stop; off += 256 << 10 {
						if err := fd.Read(off, 256<<10); err != nil {
							t.Error(err)
							return
						}
					}
				}
			})

			// 2: writer creates, extends and deletes files on disk 2.
			writer := s.Spawn("writer", sim.Millisecond, func(os *OS) {
				if err := os.Mkdir("/mnt1/out"); err != nil {
					t.Error(err)
					return
				}
				i := 0
				for !stop {
					path := fmt.Sprintf("/mnt1/out/w%04d", i)
					fd, err := os.Create(path)
					if err != nil {
						t.Error(err)
						return
					}
					if err := fd.Write(0, 512<<10); err != nil {
						t.Error(err)
						return
					}
					if i >= 8 {
						if err := os.Unlink(fmt.Sprintf("/mnt1/out/w%04d", i-8)); err != nil {
							t.Error(err)
							return
						}
					}
					i++
					os.Sleep(5 * sim.Millisecond)
				}
			})

			// 3: memory churner allocates, touches, frees.
			churner := s.Spawn("churner", 2*sim.Millisecond, func(os *OS) {
				for !stop {
					m := os.Malloc(6 * MB)
					os.TouchRange(m, 0, m.Pages(), true)
					os.TouchRange(m, 0, m.Pages(), true)
					os.Free(m)
					os.Sleep(3 * sim.Millisecond)
				}
			})

			// 4: metadata storm: stats and directory listings.
			stormer := s.Spawn("stormer", 3*sim.Millisecond, func(os *OS) {
				for !stop {
					if _, err := os.Stat("stream"); err != nil {
						t.Error(err)
						return
					}
					if _, err := os.Readdir("/mnt1/out"); err == nil {
						// Paths churn; errors are fine while the writer
						// races, but a successful listing must be sane.
						_ = err
					}
					os.Sleep(sim.Millisecond)
				}
			})

			// Stop everyone after two virtual seconds.
			s.Engine.Schedule(2*sim.Second, func() { stop = true })
			s.Engine.WaitAll(reader, writer, churner, stormer)
			for _, p := range []*sim.Proc{reader, writer, churner, stormer} {
				if p.Err() != nil {
					t.Fatalf("%s: %v", p.Name(), p.Err())
				}
			}

			// --- invariants ---
			if used, cap := s.Pool.Used(), s.Pool.Capacity(); used > cap {
				t.Errorf("pool used %d > capacity %d", used, cap)
			}
			// All anonymous memory was freed.
			if held := s.VM.Held(); held != 0 {
				t.Errorf("anon pages leaked: %d", held)
			}
			// Cache accounting is self-consistent.
			if s.Personality() != NetBSD15 {
				if s.Cache.Held() != s.Cache.Len() {
					t.Errorf("cache held %d != len %d", s.Cache.Held(), s.Cache.Len())
				}
			} else if s.Cache.Held() != 0 {
				t.Error("NetBSD cache holds pool frames")
			}
			// The file systems did real work and balance their space.
			for i := 0; i < s.NumDisks(); i++ {
				if free := s.FS(i).FreeSpace(); free <= 0 {
					t.Errorf("fs %d free space %d", i, free)
				}
			}
			st := s.Cache.Stats()
			if st.Hits == 0 || st.Misses == 0 {
				t.Errorf("cache never exercised: %+v", st)
			}
			if s.DataDisk(0).Stats().Reads == 0 || s.DataDisk(1).Stats().Writes == 0 {
				t.Error("disks never exercised")
			}
		})
	}
}

// TestSoakDeterminism runs the same mixed workload twice and requires
// bit-identical end states — the determinism guarantee everything else
// (probe timing!) rests on.
func TestSoakDeterminism(t *testing.T) {
	run := func() (sim.Time, int64, int64) {
		s := New(Config{Personality: Linux22, MemoryMB: 32, KernelMB: 8, CacheFloorMB: 1, Seed: 77})
		if _, err := s.FS(0).CreateSized("f", 8*MB); err != nil {
			t.Fatal(err)
		}
		stop := false
		a := s.Spawn("a", 0, func(os *OS) {
			fd, _ := os.Open("f")
			for !stop {
				fd.Read(0, fd.Size())
			}
		})
		b := s.Spawn("b", 0, func(os *OS) {
			for !stop {
				m := os.Malloc(4 * MB)
				os.TouchRange(m, 0, m.Pages(), true)
				os.Free(m)
				os.Sleep(sim.Millisecond)
			}
		})
		s.Engine.Schedule(500*sim.Millisecond, func() { stop = true })
		s.Engine.WaitAll(a, b)
		st := s.Cache.Stats()
		return s.Engine.Now(), st.Hits, st.Misses
	}
	t1, h1, m1 := run()
	t2, h2, m2 := run()
	if t1 != t2 || h1 != h2 || m1 != m2 {
		t.Errorf("nondeterminism: (%v,%d,%d) vs (%v,%d,%d)", t1, h1, m1, t2, h2, m2)
	}
}
