package experiments

import (
	"sync"
	"sync/atomic"

	"graybox/internal/audit"
)

// Harness auditing mirrors harness telemetry: when enabled, every
// platform built through newSystem/newMultiDiskSystem gets an
// oracle-grounded auditor at construction and the auditor is
// accumulated here; the CLI drains the set after each experiment.
// Workers finish in nondeterministic order, so the drain sorts auditors
// by (label, report content) — making the -audit export byte-identical
// at any pool width.
var (
	audEnabled atomic.Bool
	audMu      sync.Mutex
	auditors   []*audit.Auditor
)

// EnableAudit switches harness auditing on or off (the CLI's -audit
// flag). It only affects platforms built afterwards.
func EnableAudit(on bool) { audEnabled.Store(on) }

// AuditEnabled reports whether harness auditing is on.
func AuditEnabled() bool { return audEnabled.Load() }

// TakeAudits returns the auditors of every platform built since the
// previous call, in deterministic order, and resets the accumulator.
func TakeAudits() []*audit.Auditor {
	audMu.Lock()
	auds := auditors
	auditors = nil
	audMu.Unlock()
	audit.SortAuditors(auds)
	return auds
}
