package fldc

import (
	"fmt"
	"testing"
	"testing/quick"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// TestRefreshPropertyPreservesTree: for random directory contents
// (names, sizes, prior churn), a refresh must preserve the exact
// name -> size mapping, restore i-number/layout correlation, and leave
// no temporary artifacts.
func TestRefreshPropertyPreservesTree(t *testing.T) {
	f := func(seed uint64, nRaw, churnRaw uint8) bool {
		n := int(nRaw%20) + 3
		churn := int(churnRaw % 16)
		s := newSys()
		ok := true
		err := s.Run("t", func(os *simos.OS) {
			rng := sim.NewRNG(seed)
			if err := os.Mkdir("d"); err != nil {
				ok = false
				return
			}
			want := map[string]int64{}
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("f%03d", i)
				fd, err := os.Create("d/" + name)
				if err != nil {
					ok = false
					return
				}
				size := int64(rng.Intn(6)+1) * 4096
				if err := fd.Write(0, size); err != nil {
					ok = false
					return
				}
				want[name] = size
			}
			// Churn: delete/create pairs.
			for c := 0; c < churn; c++ {
				names, _ := os.Readdir("d")
				victim := names[rng.Intn(len(names))]
				if err := os.Unlink("d/" + victim); err != nil {
					ok = false
					return
				}
				delete(want, victim)
				name := fmt.Sprintf("c%03d", c)
				fd, err := os.Create("d/" + name)
				if err != nil {
					ok = false
					return
				}
				size := int64(rng.Intn(6)+1) * 4096
				fd.Write(0, size)
				want[name] = size
			}

			l := New(os)
			order := BySize
			if seed%2 == 0 {
				order = ByName
			}
			if err := l.Refresh("d", order); err != nil {
				ok = false
				return
			}

			// Same names, same sizes.
			names, err := os.Readdir("d")
			if err != nil || len(names) != len(want) {
				ok = false
				return
			}
			for _, name := range names {
				st, err := os.Stat("d/" + name)
				if err != nil || st.Size != want[name] {
					ok = false
					return
				}
			}
			// i-number order == layout order.
			ordered, err := l.OrderByINumber(prefixAll("d/", names))
			if err != nil {
				ok = false
				return
			}
			var last int64 = -1
			for _, p := range ordered {
				blocks, err := s.FS(0).BlocksOf(p)
				if err != nil {
					ok = false
					return
				}
				if len(blocks) > 0 {
					if blocks[0] <= last {
						ok = false
						return
					}
					last = blocks[0]
				}
			}
			// No leftover temp directory.
			if _, err := os.Readdir("d.gbrefresh"); err == nil {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
