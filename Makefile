# Tier-1 gates and perf tooling. `make race` is the correctness gate for
# the parallel trial harness; `make bench` tracks the engine fast path and
# writes the suite's BENCH_experiments.json.

GO ?= go

.PHONY: all build test race vet staticcheck noise stash slo sched bench bench-hot bench-wheel bench-stash bench-sched bench-shard bench-suite bench-telemetry bench-audit bench-slo bench-diff bench-accept audit profile profile-cpu cover ci

# Pinned staticcheck release; CI installs exactly this version so lint
# results are reproducible.
STATICCHECK_VERSION ?= 2023.1.7

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race gate for the worker-pool trial runner, the sharded-lane harvest
# pool, and the single-threaded engine invariant beneath both.
race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/...

vet:
	$(GO) vet ./...

# Lint with the pinned staticcheck when the binary is available; skip
# with a warning otherwise (offline dev boxes don't install tools, CI
# does — see .github/workflows/ci.yml).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "warning: staticcheck not installed, skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

# Contention sweep: ICL accuracy under competing workload traffic.
# WORKLOADS selects the generators, e.g. make noise WORKLOADS=scan,hog
WORKLOADS ?= scan,zipf,hog,web
noise: build
	$(GO) run ./cmd/gb-experiments -scale quick -workload $(WORKLOADS) noise

# Second-level stash tier sweep: gray-box vs naive admission over quota
# x workload intensity, with the degraded-mode (offline source) replay.
stash: build
	$(GO) run ./cmd/gb-experiments -scale quick stash

# SLO violation ramp: offered load vs tail latency, MAC gray-box
# admission against a naive static cap, scored by the request-tracing
# subsystem (p50/p99/p999, violations, critical-path split).
slo: build
	$(GO) run ./cmd/gb-experiments -scale quick slo

# SMP scheduler sweep: the noise and slo experiments re-run across
# simulated-processor counts (0 = the uncontended infinite-core model,
# the default everywhere else). CPUS selects the counts, e.g.
# make sched CPUS=0,1,4
CPUS ?= 0,2
sched: build
	$(GO) run ./cmd/gb-experiments -scale quick -cpus $(CPUS) noise slo

# Engine hot-path microbenchmarks.
bench:
	$(GO) test ./internal/sim -run NONE -bench 'BenchmarkSchedule|BenchmarkScheduleCancel|BenchmarkProcessHandoff' -benchmem

# Kernel hot-path microbenchmarks: the per-page paths (cache hit/evict,
# VM clock touch, intrusive ring ops) that must stay at 0 allocs/op.
# CI runs this and archives the -benchmem output next to the BENCH
# report; the matching AllocsPerRun guard tests fail `make test` if a
# steady-state allocation creeps back in.
bench-hot:
	$(GO) test ./internal/ring ./internal/cache ./internal/vm -run NONE \
		-bench 'BenchmarkMoveToFront|BenchmarkRemovePushBack|BenchmarkLookupHit|BenchmarkInsertEvict|BenchmarkTouchResident' -benchmem

# Timer-wheel vs binary-heap scheduler microbenchmark: the same
# 8K-outstanding-timer load driven through the hierarchical wheel and
# through the heap alone. Both must report 0 allocs/op (the matching
# AllocsPerRun guard test fails `make test` otherwise); the wheel side
# is the number that must not regress.
bench-wheel:
	$(GO) test ./internal/sim -run NONE \
		-bench 'BenchmarkTimerWheel|BenchmarkHeapSchedule' -benchmem

# Stash hot-path microbenchmarks: hit, miss+admit+evict, and gray-box
# admission probing — all must report 0 allocs/op (the AllocsPerRun
# guards in internal/stash fail `make test` otherwise).
bench-stash:
	$(GO) test ./internal/stash -run NONE -bench 'BenchmarkStash' -benchmem

# SMP scheduler scale benchmarks: a 100k-process contended trial
# (procs/s) and the steady-state dispatch round, which must report 0
# allocs/op (the AllocsPerRun guard in internal/sim fails `make test`
# otherwise).
bench-sched:
	$(GO) test ./internal/sim -run NONE \
		-bench 'BenchmarkSched100kProcs|BenchmarkSchedDispatch' -benchmem

# Sharded-lane scale benchmark: one contended 10⁶-process trial on the
# serial engine and on sharded event lanes at 2 and 4 harvest workers.
# One iteration per variant — each trial is seconds long, and the
# interesting number is the serial-vs-sharded procs/s ratio.
bench-shard:
	$(GO) test ./internal/sim -run NONE -bench BenchmarkSched1MProcs \
		-benchtime 1x -timeout 30m -benchmem

# Full quick-scale suite with the per-experiment timing report.
bench-suite: build
	$(GO) run ./cmd/gb-experiments -scale quick -o /dev/null -bench-out BENCH_experiments.json

# Telemetry overhead guard: the disabled path must report 0 allocs/op.
bench-telemetry:
	$(GO) test ./internal/simos -run NONE -bench BenchmarkTelemetryOverhead -benchmem

# Audit overhead guard: with auditing disabled the instrumented ICL hot
# path must report 0 B/op beyond the uninstrumented baseline.
bench-audit:
	$(GO) test ./internal/core/fccd -run NONE -bench BenchmarkAuditOverhead -benchmem

# Request-tracing overhead guard: the full per-request instrumentation
# sequence (request root span, stage spans, queue-wait attribution,
# latency sketch, SLO check) must report 0 allocs/op with telemetry
# disabled (the AllocsPerRun guards in internal/telemetry and
# internal/simos fail `make test` otherwise).
bench-slo:
	$(GO) test ./internal/telemetry -run NONE -bench BenchmarkRequestPath -benchmem

# Oracle-grounded inference audit of the quick suite: every ICL
# prediction scored against simulator ground truth.
audit: build
	$(GO) run ./cmd/gb-experiments -scale quick -o /dev/null -audit AUDIT_experiments.json

# Virtual-time profile of the quick suite: folded stacks for
# flamegraph.pl / speedscope, plus a top-span table on stderr.
profile: build
	$(GO) run ./cmd/gb-experiments -scale quick -o /dev/null -profile PROFILE_experiments.folded

# Real-CPU + heap profile of the quick suite: where the simulator itself
# spends cycles and allocations. Inspect with
#   go tool pprof CPU_experiments.pprof
#   go tool pprof MEM_experiments.pprof
profile-cpu: build
	$(GO) run ./cmd/gb-experiments -scale quick -o /dev/null \
		-cpuprofile CPU_experiments.pprof -memprofile MEM_experiments.pprof

# Regression gate: rerun the quick suite and diff its timing report
# against the committed baseline with gb-bench (1.5x per experiment over
# a 100 ms noise floor, suite-level sign test at alpha 0.05 — see
# internal/bench). Non-blocking: wall clock on shared runners is noisy,
# so a regression warns rather than failing the build.
bench-diff: build
	$(GO) run ./cmd/gb-experiments -scale quick -o /dev/null -bench-out BENCH_new.json
	$(GO) run ./cmd/gb-bench BENCH_experiments.json BENCH_new.json || \
		echo "warning: bench regression against the committed baseline (non-blocking)"

# Accept a new performance baseline: regenerate the timing report from a
# fresh quick-suite run, print the gb-bench diff against the committed
# BENCH_experiments.json, and replace the baseline with the fresh run
# (commit the updated file alongside the change that moved the numbers).
bench-accept: build
	$(GO) run ./cmd/gb-experiments -scale quick -o /dev/null -bench-out BENCH_accept.json
	$(GO) run ./cmd/gb-bench BENCH_experiments.json BENCH_accept.json || true
	mv BENCH_accept.json BENCH_experiments.json
	@echo "BENCH_experiments.json updated; review and commit it"

# Per-package statement coverage.
cover:
	$(GO) test -cover ./...

ci: build vet staticcheck test race bench-hot bench-wheel bench-stash bench-slo bench-sched bench-shard bench-diff
