package sim

import (
	"fmt"

	"graybox/internal/telemetry"
)

// event is a scheduled callback. Events with equal fire times run in
// scheduling order (seq), which keeps the simulation deterministic.
//
// Events are pooled: once fired or drained as a tombstone the struct goes
// onto the engine's free list and is reused by a later Schedule. gen is
// bumped at recycle time so stale Event handles can never touch the new
// occupant.
type event struct {
	at  Time
	seq uint64
	gen uint64
	fn  func()
	// proc, when non-nil, is woken instead of calling fn. Process wakes
	// (Sleep, Unblock) are the single hottest event type, and storing the
	// process directly avoids allocating a wake closure per sleep.
	proc *Proc
	next *event // free-list link, nil while scheduled
}

// dead reports whether the slot is a tombstone (canceled or recycled).
func (ev *event) dead() bool { return ev.fn == nil && ev.proc == nil }

// Event is a cancelable handle to a scheduled callback, returned by
// Schedule and After. The zero value is inert: Cancel on it is a no-op.
type Event struct {
	ev  *event
	gen uint64
}

// eventHeap is a binary min-heap ordered by (at, seq). It is a concrete
// implementation — no container/heap, so Push/Pop involve no interface
// boxing and no indirect calls on the hot path.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// The engine is strictly single-threaded from the caller's perspective:
// although processes are goroutines, exactly one of them (or the engine
// loop itself) runs at any instant, with explicit handoff. This makes every
// run with the same seed bit-for-bit reproducible.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *RNG

	// live is the number of scheduled events that have been neither fired
	// nor canceled. len(events) - live tombstones remain in the heap.
	live int
	// free heads the recycled-event free list.
	free *event

	// yield carries control back from a running process to the engine
	// loop. All processes share it; only the currently-running process
	// ever sends on it.
	yield chan struct{}

	procs   []*Proc
	blocked int // processes parked with no pending wake event

	// tel is the engine's telemetry registry; nil (the default) disables
	// all instrumentation at zero cost.
	tel *telemetry.Registry
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:   NewRNG(seed),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTelemetry attaches a telemetry registry: processes spawned from now
// on get span tracks, and tracers attached to the engine export their
// events. A nil registry (the default) disables telemetry.
func (e *Engine) SetTelemetry(r *telemetry.Registry) { e.tel = r }

// Telemetry returns the attached registry (nil when disabled). The nil
// registry is safe to use: all its methods and handles are no-ops.
func (e *Engine) Telemetry() *telemetry.Registry { return e.tel }

// NowNS reports virtual time as int64 nanoseconds — the telemetry.Clock
// for registries attached to this engine.
func (e *Engine) NowNS() int64 { return int64(e.now) }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Schedule runs fn at time at (which must not be in the past). It returns
// a handle that can be used to cancel the event.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule of nil callback")
	}
	ev := e.push(at)
	ev.fn = fn
	return Event{ev: ev, gen: ev.gen}
}

// scheduleWake schedules p.wake() at time at without allocating a closure.
func (e *Engine) scheduleWake(at Time, p *Proc) {
	e.push(at).proc = p
}

// push takes an event struct off the free list (or allocates one) and
// inserts it into the heap at time at. The caller sets fn or proc.
func (e *Engine) push(at Time) *event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	ev.at, ev.seq = at, e.seq
	e.seq++
	e.live++
	e.events = append(e.events, ev)
	e.events.siftUp(len(e.events) - 1)
	return ev
}

// After runs fn after duration d.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event (or the zero Event) is a no-op, so Cancel is safe
// to call twice. Cancellation is lazy: the slot stays in the heap as a
// tombstone (fn == nil) and is discarded when it reaches the top, making
// Cancel O(1) instead of the O(n) scan + O(log n) removal it replaces.
func (e *Engine) Cancel(h Event) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.dead() {
		return
	}
	ev.fn, ev.proc = nil, nil
	e.live--
	// If churny callers (timeouts that almost always cancel) fill the heap
	// with tombstones, compact rather than let them pile up unboundedly.
	if dead := len(e.events) - e.live; dead > 64 && dead > e.live {
		e.compact()
	}
}

// recycle bumps the event's generation (invalidating outstanding handles)
// and puts it on the free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.proc = nil, nil
	ev.next = e.free
	e.free = ev
}

// popMin removes and returns the earliest event in the heap.
func (e *Engine) popMin() *event {
	h := e.events
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.events = h[:n]
	e.events.siftDown(0)
	return ev
}

// peekLive discards tombstones at the top of the heap and returns the
// earliest live event, or nil if none remain.
func (e *Engine) peekLive() *event {
	for len(e.events) > 0 {
		if ev := e.events[0]; !ev.dead() {
			return ev
		}
		e.recycle(e.popMin())
	}
	return nil
}

// compact rebuilds the heap without its tombstones.
func (e *Engine) compact() {
	h := e.events
	kept := h[:0]
	for _, ev := range h {
		if !ev.dead() {
			kept = append(kept, ev)
		} else {
			e.recycle(ev)
		}
	}
	for i := range h[len(kept):] {
		h[len(kept)+i] = nil
	}
	e.events = kept
	for i := len(kept)/2 - 1; i >= 0; i-- {
		kept.siftDown(i)
	}
}

// step fires the earliest pending live event. It reports false when no
// live events remain.
func (e *Engine) step() bool {
	ev := e.peekLive()
	if ev == nil {
		return false
	}
	e.popMin()
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.live--
	fn, p := ev.fn, ev.proc
	e.recycle(ev)
	if p != nil {
		p.wake()
	} else {
		fn()
	}
	return true
}

// Run processes events until the queue is empty. It panics if processes
// remain blocked with no event that could ever wake them (a simulation
// deadlock), since silently returning would make such bugs easy to miss.
func (e *Engine) Run() {
	for e.step() {
	}
	if e.liveBlocked() > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with empty event queue at %v", e.liveBlocked(), e.now))
	}
}

// RunUntil processes events with fire times <= deadline and then advances
// the clock to exactly deadline. Blocked processes are left parked.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.peekLive()
		if ev == nil || ev.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// liveBlocked counts processes that are parked and not finished.
func (e *Engine) liveBlocked() int {
	n := 0
	for _, p := range e.procs {
		if p.state == procBlocked {
			n++
		}
	}
	return n
}

// Idle reports whether no live events are pending.
func (e *Engine) Idle() bool { return e.live == 0 }
