// Package afs models an AFS-style distributed file system client
// (Howard et al.), the paper's canonical example of both a gray-box
// control trick and a gray-box hazard:
//
//   - Control (Section 2.2): "given the read interface on AFS, an ICL
//     can read just a single byte to prefetch an entire file from the
//     server" — whole-file caching turns a tiny read into a prefetch.
//   - Hazard (Section 4.1.4): "an analogous Heisenberg effect arises in
//     the use of a distributed file system such as AFS; there, reading a
//     single byte of a file would force the fetch of the entire file
//     into the local disk cache" — so FCCD-style probing is ruinous.
//
// The client caches whole files on local disk with LRU replacement; any
// read of an uncached file first fetches the entire file over the
// network.
package afs

import (
	"fmt"

	"graybox/internal/ring"
	"graybox/internal/sim"
)

// Config describes the client and its connection.
type Config struct {
	// CacheBytes is the local disk cache capacity (whole files).
	CacheBytes int64
	// RTT is the request round-trip latency to the server.
	RTT sim.Time
	// NetBytesPerSec is the transfer bandwidth from the server.
	NetBytesPerSec int64
	// LocalBytesPerSec is the local disk cache read bandwidth.
	LocalBytesPerSec int64
}

// DefaultConfig matches a 2001 campus network: 10 ms RTT, ~1 MB/s
// network, 20 MB/s local disk, 200 MB cache.
func DefaultConfig() Config {
	return Config{
		CacheBytes:       200 << 20,
		RTT:              10 * sim.Millisecond,
		NetBytesPerSec:   1 << 20,
		LocalBytesPerSec: 20 << 20,
	}
}

// Stats counts client activity.
type Stats struct {
	Fetches      int64
	FetchedBytes int64
	Evictions    int64
	LocalReads   int64
}

// Client is one workstation's AFS cache manager.
type Client struct {
	e   *sim.Engine
	cfg Config

	sizes  map[string]int64
	cached map[string]ring.Handle
	lru    ring.List[string] // front = most recent; values are file names
	used   int64

	// fetching tracks in-flight whole-file fetches so concurrent
	// readers of the same file share one transfer.
	fetching map[string][]*sim.Proc

	stats Stats
}

// NewClient creates a client with an empty cache.
func NewClient(e *sim.Engine, cfg Config) *Client {
	if cfg.CacheBytes <= 0 || cfg.NetBytesPerSec <= 0 || cfg.LocalBytesPerSec <= 0 {
		panic("afs: invalid config")
	}
	return &Client{
		e: e, cfg: cfg,
		sizes:    make(map[string]int64),
		cached:   make(map[string]ring.Handle),
		fetching: make(map[string][]*sim.Proc),
	}
}

// Register declares a file on the server.
func (c *Client) Register(name string, size int64) {
	if size <= 0 || size > c.cfg.CacheBytes {
		panic(fmt.Sprintf("afs: file %q size %d unusable with cache %d", name, size, c.cfg.CacheBytes))
	}
	c.sizes[name] = size
}

// Cached reports whether name is fully cached locally (ground truth for
// tests; a gray-box client infers this from timing).
func (c *Client) Cached(name string) bool {
	_, ok := c.cached[name]
	return ok
}

// Stats returns a copy of the counters.
func (c *Client) Stats() Stats { return c.stats }

// netTime returns the transfer time for n bytes.
func (c *Client) netTime(n int64) sim.Time {
	return sim.Time(n * int64(sim.Second) / c.cfg.NetBytesPerSec)
}

// localTime returns the local cache read time for n bytes.
func (c *Client) localTime(n int64) sim.Time {
	return sim.Time(n * int64(sim.Second) / c.cfg.LocalBytesPerSec)
}

// ensureCached fetches the whole file if needed, blocking p for the
// transfer (or until a concurrent fetch of the same file finishes).
func (c *Client) ensureCached(p *sim.Proc, name string) error {
	size, ok := c.sizes[name]
	if !ok {
		return fmt.Errorf("afs: no such file %q", name)
	}
	if h, ok := c.cached[name]; ok {
		c.lru.MoveToFront(h)
		return nil
	}
	if _, inflight := c.fetching[name]; inflight {
		// Piggyback on the ongoing fetch.
		c.fetching[name] = append(c.fetching[name], p)
		p.Block()
		return nil
	}
	c.fetching[name] = nil
	// Make room first (whole files only).
	for c.used+size > c.cfg.CacheBytes {
		back := c.lru.Back()
		if back == ring.None {
			break
		}
		victim := c.lru.Remove(back)
		delete(c.cached, victim)
		c.used -= c.sizes[victim]
		c.stats.Evictions++
	}
	// The fetch: one RTT plus the whole file at network speed.
	p.Sleep(c.cfg.RTT + c.netTime(size))
	c.stats.Fetches++
	c.stats.FetchedBytes += size
	c.cached[name] = c.lru.PushFront(name)
	c.used += size
	waiters := c.fetching[name]
	delete(c.fetching, name)
	for _, w := range waiters {
		c.e.Unblock(w)
	}
	return nil
}

// Read reads n bytes at off: whole-file fetch on a miss, then local
// cache speed. This is the entire AFS read interface — note there is no
// prefetch call, which is precisely why the one-byte-read trick matters.
func (c *Client) Read(p *sim.Proc, name string, off, n int64) error {
	size, ok := c.sizes[name]
	if !ok {
		return fmt.Errorf("afs: no such file %q", name)
	}
	if off < 0 || n < 0 || off+n > size {
		return fmt.Errorf("afs: read [%d,%d) beyond %q size %d", off, off+n, name, size)
	}
	if err := c.ensureCached(p, name); err != nil {
		return err
	}
	c.stats.LocalReads++
	if n == 0 {
		n = 1
	}
	p.Sleep(c.localTime(n))
	return nil
}
