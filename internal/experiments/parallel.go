package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// The experiment harnesses are embarrassingly parallel: every trial (a
// seed, a personality, a file size, a sweep point) constructs its own
// Platform — one engine, one RNG, one virtual clock — and shares nothing
// with its siblings. RunTrials fans those trials out over a worker pool
// and reassembles results in index order, so the rendered tables are
// byte-identical to a sequential run at any pool width.

// parallelism is the configured pool width; <= 0 means GOMAXPROCS.
var parallelism atomic.Int64

// Parallelism returns the current trial worker-pool width.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the trial worker-pool width (the CLI's -parallel
// flag). n <= 0 restores the default, GOMAXPROCS.
func SetParallelism(n int) { parallelism.Store(int64(n)) }

// RunTrials runs trial(0) .. trial(n-1) on the worker pool and returns
// their results in index order. Trials must be mutually independent; a
// panic inside any trial (the harness's mustRun/mustNoErr failure path)
// is re-raised in the caller, lowest index first.
func RunTrials[T any](n int, trial func(i int) T) []T {
	out := make([]T, n)
	ForEachTrial(n, func(i int) { out[i] = trial(i) })
	return out
}

// RunUnits executes heterogeneous independent units (closures writing to
// distinct destinations) through the same pool.
func RunUnits(units ...func()) {
	ForEachTrial(len(units), func(i int) { units[i]() })
}

// ForEachTrial is the pool core: it runs trial(0) .. trial(n-1), at most
// Parallelism() at a time, and returns when all have finished.
func ForEachTrial(n int, trial func(i int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			trial(i)
		}
		return
	}
	type trialPanic struct {
		val   interface{}
		stack []byte
	}
	panics := make([]*trialPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &trialPanic{val: r, stack: debug.Stack()}
						}
					}()
					trial(i)
				}()
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("experiments: trial %d panicked: %v\n%s", i, p.val, p.stack))
		}
	}
}

// snapshotReuse gates the copy-on-write platform path: when on (the
// default), sweeps that run many trials on the same aged platform build
// it once, Snapshot it, and Fork a copy per trial instead of re-aging a
// cold machine every time. Forked trials are byte-identical to cold
// builds (the snapshot contract, pinned by simos.TestForkMatchesColdBuild
// and TestParallelDeterminism), so this is purely a setup-cost
// optimization.
var snapshotReuse atomic.Bool

func init() { snapshotReuse.Store(true) }

// SnapshotReuse reports whether sweeps fork trials from a shared
// platform snapshot.
func SnapshotReuse() bool { return snapshotReuse.Load() }

// SetSnapshotReuse toggles the snapshot path (the CLI's -snapshot flag).
func SetSnapshotReuse(on bool) { snapshotReuse.Store(on) }

// SnapshotPlatform lazily builds one base platform, snapshots it, and
// hands each trial a private fork. build must construct the platform
// with buildSystem (untracked) plus harness-time setup only — no
// processes, no randomness — so that build(seed) and Fork(seed) are
// interchangeable; the Snapshot call enforces those preconditions. With
// snapshot reuse off, every Trial falls back to a cold build(seed).
// Trial is safe for concurrent use by pool workers.
type SnapshotPlatform struct {
	build func(seed uint64) *simos.System
	once  sync.Once
	snap  *simos.Snapshot
}

// NewSnapshotPlatform wraps an untracked platform builder.
func NewSnapshotPlatform(build func(seed uint64) *simos.System) *SnapshotPlatform {
	return &SnapshotPlatform{build: build}
}

// Trial returns a machine seeded with seed, either forked from the
// shared snapshot or cold-built, and registers it with the harness
// (telemetry, audit, virtual-time) exactly as newSystem would.
func (sp *SnapshotPlatform) Trial(seed uint64) *simos.System {
	if !snapshotReuse.Load() {
		return trackSystem(sp.build(seed))
	}
	sp.once.Do(func() { sp.snap = sp.build(0).Snapshot() })
	return trackSystem(sp.snap.Fork(seed))
}

// RunTrialsWithSnapshot is RunTrials for sweeps whose trials share one
// platform configuration: the aged base is built once (on the first
// trial to need it) and forked per trial. seedOf maps a trial index to
// its platform seed; trial receives its private machine.
func RunTrialsWithSnapshot[T any](n int, build func(seed uint64) *simos.System,
	seedOf func(i int) uint64, trial func(i int, s *simos.System) T) []T {
	sp := NewSnapshotPlatform(build)
	return RunTrials(n, func(i int) T {
		return trial(i, sp.Trial(seedOf(i)))
	})
}

// Virtual-time accounting for the -bench-out report: every platform built
// through newSystem/newMultiDiskSystem is registered here, and the CLI
// drains the total after each experiment. Mini-simulations that build raw
// engines (internal/priorart) are not tracked.
var (
	vtMu      sync.Mutex
	vtSystems []*simos.System
)

func trackSystem(s *simos.System) *simos.System {
	if telEnabled.Load() {
		r := s.EnableTelemetry()
		telMu.Lock()
		telRegs = append(telRegs, r)
		telMu.Unlock()
	}
	if audEnabled.Load() {
		a := s.EnableAudit()
		audMu.Lock()
		auditors = append(auditors, a)
		audMu.Unlock()
	}
	vtMu.Lock()
	vtSystems = append(vtSystems, s)
	vtMu.Unlock()
	return s
}

// TakeVirtualTime returns the summed final virtual clocks of every
// platform built since the previous call, and resets the accumulator.
func TakeVirtualTime() sim.Time {
	vtMu.Lock()
	defer vtMu.Unlock()
	var total sim.Time
	for _, s := range vtSystems {
		total += s.Engine.Now()
	}
	vtSystems = nil
	return total
}
