// Package mem models physical memory as a pool of page frames shared by
// the file cache and by process anonymous memory. When the pool runs dry,
// frames are reclaimed synchronously from registered shrinkers (direct
// reclaim, the dominant path in Linux 2.2-era kernels): the allocating
// process itself pays the eviction cost, which is precisely the "slow data
// point" signal the paper's MAC layer keys on.
package mem

import (
	"fmt"

	"graybox/internal/sim"
	"graybox/internal/telemetry"
)

// Shrinker is a frame-holding subsystem (file cache, anonymous memory)
// the pool can ask to give frames back.
//
// EvictOne must (1) pick a victim page, (2) immediately mark it
// non-resident in the owner's index so a concurrent reclaim cannot pick
// it again, (3) perform any write-back I/O (during which the calling
// process sleeps on virtual time), and (4) call Pool.ReturnFrames(1).
// It reports false when the shrinker has nothing left to give.
type Shrinker interface {
	Name() string
	// Held returns the number of pool frames currently held.
	Held() int
	// Floor is the number of frames the shrinker refuses to go below.
	Floor() int
	// EvictOne releases one frame as described above.
	EvictOne(p *sim.Proc) bool
}

// Pool is the physical frame allocator.
type Pool struct {
	e         *sim.Engine
	capacity  int
	used      int
	shrinkers []Shrinker // reclaim preference order: earlier first

	// Counters for experiments.
	Reclaims int64

	// Telemetry handles; nil (no-op) until Instrument is called.
	telUsed     *telemetry.Gauge
	telReclaims *telemetry.Counter
}

// NewPool creates a pool of capacity frames.
func NewPool(e *sim.Engine, capacity int) *Pool {
	if capacity <= 0 {
		panic("mem: pool capacity must be positive")
	}
	return &Pool{e: e, capacity: capacity}
}

// Instrument registers the pool's metrics (frames-in-use gauge, reclaim
// counter) in r. A nil registry leaves updates as no-ops.
func (pl *Pool) Instrument(r *telemetry.Registry) {
	pl.telUsed = r.Gauge("mem.frames_used")
	pl.telReclaims = r.Counter("mem.reclaims")
}

// AddShrinker registers a reclaim source. Order matters: earlier
// shrinkers are squeezed first (e.g. the file cache before anonymous
// memory, mirroring Linux 2.2's preference for dropping clean page-cache
// pages before swapping).
func (pl *Pool) AddShrinker(s Shrinker) { pl.shrinkers = append(pl.shrinkers, s) }

// Capacity returns the total number of frames.
func (pl *Pool) Capacity() int { return pl.capacity }

// Used returns the number of frames currently allocated.
func (pl *Pool) Used() int { return pl.used }

// Free returns the number of unallocated frames.
func (pl *Pool) Free() int { return pl.capacity - pl.used }

// GrabFrame allocates one frame for the calling process, reclaiming from
// shrinkers if necessary. The reclaim I/O (if any) is charged to p. It
// panics if every shrinker is at its floor and no frame can be found —
// that is a wired-memory overcommit, a configuration bug.
func (pl *Pool) GrabFrame(p *sim.Proc) {
	for pl.used >= pl.capacity {
		if !pl.reclaimOne(p) {
			panic(fmt.Sprintf("mem: out of frames: capacity %d, all shrinkers at floor", pl.capacity))
		}
	}
	pl.used++
	pl.telUsed.Set(int64(pl.used))
}

// TryGrabFrame allocates a frame only if one is free, without reclaim.
func (pl *Pool) TryGrabFrame() bool {
	if pl.used >= pl.capacity {
		return false
	}
	pl.used++
	pl.telUsed.Set(int64(pl.used))
	return true
}

// ReturnFrames gives n frames back to the pool.
func (pl *Pool) ReturnFrames(n int) {
	if n < 0 || pl.used < n {
		panic(fmt.Sprintf("mem: returning %d frames with %d used", n, pl.used))
	}
	pl.used -= n
	pl.telUsed.Set(int64(pl.used))
}

// reclaimOne asks the highest-priority shrinker above its floor to give
// up one frame. It reports whether a frame was (or will have been) freed.
func (pl *Pool) reclaimOne(p *sim.Proc) bool {
	for _, s := range pl.shrinkers {
		if s.Held() <= s.Floor() {
			continue
		}
		if s.EvictOne(p) {
			pl.Reclaims++
			pl.telReclaims.Inc()
			return true
		}
	}
	// Second pass ignoring floors: prefer a squeezed system over a dead
	// one, mirroring a kernel's last-ditch reclaim.
	for _, s := range pl.shrinkers {
		if s.Held() > 0 && s.EvictOne(p) {
			pl.Reclaims++
			pl.telReclaims.Inc()
			return true
		}
	}
	return false
}

// Usage summarizes frame ownership for experiment output.
func (pl *Pool) Usage() map[string]int {
	u := map[string]int{"free": pl.Free()}
	accounted := 0
	for _, s := range pl.shrinkers {
		u[s.Name()] = s.Held()
		accounted += s.Held()
	}
	u["other"] = pl.used - accounted
	return u
}
