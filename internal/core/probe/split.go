package probe

import (
	"math"
	"sort"

	"graybox/internal/stats"
)

// MinLogSeparation is the default bimodal threshold: cluster means must
// differ by ln(8) in log space — an 8x ratio — before a split is
// believed. Anything tighter is pure timing spread, not the
// memory-vs-disk gap the ICLs are looking for.
var MinLogSeparation = math.Log(8)

// Split is the outcome of clustering probe times into a fast (cached /
// resident) and a slow (disk) class. Fast and Slow hold the indices of
// the original observations, each in ascending input order, so callers
// can impose medium-appropriate orderings on each class.
type Split struct {
	Fast, Slow []int
	// Margin is the separation of the cluster means in log space
	// (0 when the distribution was judged unimodal).
	Margin float64
}

// Confidence estimates how much to trust the split, in [0, 1): 0 for a
// unimodal distribution (no split was believed), approaching 1 as the
// class separation dwarfs the minimum believable gap. It is a
// per-inference quantity: one ProbeFile or OrderFiles pass yields one
// split and one confidence.
func (s Split) Confidence() float64 {
	if s.Margin <= 0 {
		return 0
	}
	return s.Margin / (s.Margin + MinLogSeparation)
}

// SplitBimodal clusters probe times (virtual nanoseconds) into two
// classes with exact 1-D 2-means in log space — cache hits and disk
// accesses differ by orders of magnitude, and in linear space the disk
// group's spread would dominate the within-group variance and absorb
// the hits. minSep is the minimum believable separation of the cluster
// means in log space (use MinLogSeparation for the paper's 8x rule, or
// 0 to always honor the clustering); below it, or with fewer than two
// distinct observations, every index lands in Slow and Margin is 0.
func SplitBimodal(ts []float64, minSep float64) Split {
	logs := make([]float64, len(ts))
	for i, t := range ts {
		logs[i] = math.Log(t + 1)
	}
	cl := stats.Cluster2(logs)
	if len(cl.LowIdx) == 0 || len(cl.HighIdx) == 0 || cl.HighMean-cl.LowMean < minSep {
		slow := make([]int, len(ts))
		for i := range slow {
			slow[i] = i
		}
		return Split{Slow: slow}
	}
	fast := append([]int(nil), cl.LowIdx...)
	slow := append([]int(nil), cl.HighIdx...)
	sort.Ints(fast)
	sort.Ints(slow)
	return Split{Fast: fast, Slow: slow, Margin: cl.HighMean - cl.LowMean}
}
