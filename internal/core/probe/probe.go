// Package probe is the shared timed-probe layer beneath the three ICLs
// (FCCD, FLDC, MAC). Every gray-box inference in the paper rests on the
// same mechanism — issue a cheap operation, time it against the virtual
// clock, and accumulate the cost so the inference can be billed — and
// before this package each ICL carried its own copy. The pieces:
//
//   - Meter: timed probe issue/measure with per-probe cost accounting
//     (count + virtual nanoseconds) and optional latency telemetry.
//     Audit hooks attribute per-inference cost by Cost deltas, so the
//     attribution survives refactors exactly: virtual time only advances
//     inside simulated operations, hence the sum of per-probe times
//     equals the elapsed time of the loop that issued them.
//   - SplitBimodal: log-space 2-means clustering of probe times into a
//     fast (memory) and slow (disk) class, with a separation margin and
//     a per-inference confidence estimate.
//   - SlowBurst: the "several slow data points in near succession"
//     detector of Section 4.3.2, with a decaying score so interleaved
//     paging is still caught.
//   - Repeat: bounded retry with adaptive repetition for calibration
//     measurements — keep sampling until the outlier-discarded spread
//     settles or the budget is exhausted — plus a confidence estimate.
//
// The package imports only sim, stats, and telemetry; the dependency
// arrow keeps pointing from the ICLs down into their toolbox.
package probe

import (
	"graybox/internal/sim"
	"graybox/internal/telemetry"
)

// Clock reports current virtual time. *simos.OS satisfies it.
type Clock interface {
	Now() sim.Time
}

// Cost is the accumulated price of probing: how many probes were issued
// and how much virtual time they consumed. ICLs snapshot it before an
// inference pass and bill the delta to the audit record for that pass.
type Cost struct {
	Probes int64
	NS     int64
}

// Sub returns the cost accumulated since an earlier snapshot.
func (c Cost) Sub(prev Cost) Cost {
	return Cost{Probes: c.Probes - prev.Probes, NS: c.NS - prev.NS}
}

// Add returns the combined cost.
func (c Cost) Add(d Cost) Cost {
	return Cost{Probes: c.Probes + d.Probes, NS: c.NS + d.NS}
}

// Duration returns the probe time as a virtual duration.
func (c Cost) Duration() sim.Time { return sim.Time(c.NS) }

// Meter times probes against a virtual clock and accumulates their
// cost. The enabled hot path performs no allocation: Begin/End are a
// clock read and two integer adds, plus a nil-safe histogram observe.
type Meter struct {
	clock Clock
	cost  Cost
	hist  *telemetry.Histogram
}

// NewMeter creates a meter. hist may be nil (or a nil-safe disabled
// handle); each successful probe's latency is observed into it.
func NewMeter(clock Clock, hist *telemetry.Histogram) *Meter {
	if clock == nil {
		panic("probe: nil clock")
	}
	return &Meter{clock: clock, hist: hist}
}

// Begin starts timing one probe.
func (m *Meter) Begin() sim.Time { return m.clock.Now() }

// End finishes timing one probe: it accounts the probe and its elapsed
// virtual time and returns the elapsed time. Failed probes should skip
// End so they are not billed (the callers abort the pass anyway).
func (m *Meter) End(start sim.Time) sim.Time {
	elapsed := m.clock.Now() - start
	m.cost.Probes++
	m.cost.NS += int64(elapsed)
	m.hist.Observe(int64(elapsed))
	return elapsed
}

// Time issues one probe through op, timing and accounting it. The
// closure is invoked before this call returns and never retained, so
// escape analysis keeps capture-free call sites allocation-free.
func (m *Meter) Time(op func() error) (sim.Time, error) {
	start := m.Begin()
	if err := op(); err != nil {
		return 0, err
	}
	return m.End(start), nil
}

// Cost returns the accumulated cost (a snapshot; see Cost.Sub).
func (m *Meter) Cost() Cost { return m.cost }

// Probes returns the number of probes issued so far.
func (m *Meter) Probes() int64 { return m.cost.Probes }

// Elapsed returns the total virtual time spent probing so far.
func (m *Meter) Elapsed() sim.Time { return sim.Time(m.cost.NS) }
