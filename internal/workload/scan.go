package workload

import (
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Scanner streams one large file end to end, over and over — the
// backup/grep-style sequential traffic that churns an LRU file cache
// from the bottom. It draws no randomness: its perturbation is pure
// cache and disk pressure.
type Scanner struct {
	// Label distinguishes multiple scanners ("" -> "scan").
	Label string
	// FileMB is the scanned file's size (default 32).
	FileMB int64
	// ChunkKB is the read size (default 256).
	ChunkKB int64
	// CPUPerKB charges grep-style matching CPU per KB read (0 = pure
	// I/O, the historical behavior). Under simos.Config.CPUs the bursts
	// contend for the simulated processors.
	CPUPerKB sim.Time
}

func (g *Scanner) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "scan"
}

func (g *Scanner) path() string { return "wl." + g.Name() + ".dat" }

func (g *Scanner) fileMB() int64 {
	if g.FileMB > 0 {
		return g.FileMB
	}
	return 32
}

func (g *Scanner) Prepare(s *simos.System) error {
	_, err := s.FS(0).CreateSized(g.path(), g.fileMB()*simos.MB)
	return err
}

func (g *Scanner) Run(ctx *Ctx) {
	os := ctx.OS()
	fd, err := os.Open(g.path())
	if err != nil {
		return
	}
	chunk := g.ChunkKB * 1024
	if chunk <= 0 {
		chunk = 256 * 1024
	}
	size := fd.Size()
	for !ctx.Stopped() {
		start := os.Now()
		for off := int64(0); off < size && !ctx.Stopped(); off += chunk {
			n := chunk
			if off+n > size {
				n = size - off
			}
			if err := fd.Read(off, n); err != nil {
				return
			}
			if g.CPUPerKB > 0 {
				os.Compute(sim.Time((n+1023)/1024) * g.CPUPerKB)
			}
		}
		ctx.Idle(os.Now() - start)
	}
}
