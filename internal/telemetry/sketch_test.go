package telemetry

import (
	"math"
	"testing"
)

func TestSketchEmptyAndNil(t *testing.T) {
	var nilSk *Sketch
	nilSk.Observe(5) // must not panic
	nilSk.Merge(NewSketch())
	if nilSk.Count() != 0 || nilSk.Sum() != 0 || nilSk.Quantile(0.5) != 0 ||
		nilSk.Min() != 0 || nilSk.Max() != 0 || nilSk.Mean() != 0 {
		t.Error("nil sketch not inert")
	}
	s := NewSketch()
	if s.Quantile(0.5) != 0 || s.Quantile(0) != 0 || s.Quantile(1) != 0 {
		t.Error("empty sketch quantiles should be 0")
	}
	s.Merge(nil) // must not panic
	if s.Count() != 0 {
		t.Error("merging nil changed an empty sketch")
	}
}

func TestSketchSingleObservation(t *testing.T) {
	// With one observation every quantile is exact: the bucket's lower
	// edge clamps into [Min, Max] = [v, v].
	for _, v := range []int64{0, 1, 63, 64, 1_000_000, 123_456_789_012} {
		s := NewSketch()
		s.Observe(v)
		for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
			if got := s.Quantile(q); got != v {
				t.Errorf("single obs %d: Quantile(%v) = %d, want exact", v, q, got)
			}
		}
		if s.Min() != v || s.Max() != v || s.Sum() != v || s.Count() != 1 {
			t.Errorf("single obs %d: min=%d max=%d sum=%d n=%d",
				v, s.Min(), s.Max(), s.Sum(), s.Count())
		}
	}
}

func TestSketchBucketGeometry(t *testing.T) {
	// Linear region is exact; beyond it the bucket's lower edge is
	// within 1/32 relative error of any value it holds, all the way to
	// the top of the int64 range (the overflow-prone region a fixed
	// 1-2-5 histogram cannot cover).
	vals := []int64{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 99999,
		1 << 20, 1<<30 + 7, 1<<40 + 12345, 1<<62 + 987654321, math.MaxInt64}
	for _, v := range vals {
		idx := sketchIndex(v)
		if idx < 0 || idx >= sketchBuckets {
			t.Fatalf("sketchIndex(%d) = %d out of range [0, %d)", v, idx, sketchBuckets)
		}
		lo := sketchValue(idx)
		if lo > v {
			t.Errorf("bucket lower edge %d above value %d", lo, v)
		}
		if v >= 64 && float64(v-lo) > float64(v)/32+1 {
			t.Errorf("value %d: lower edge %d off by %d (> 1/32 relative)", v, lo, v-lo)
		}
		if v < 64 && lo != v {
			t.Errorf("linear region not exact: value %d in bucket starting %d", v, lo)
		}
	}
	// Index must be monotone in the value (quantile walk depends on it).
	prev := -1
	for _, v := range vals {
		if idx := sketchIndex(v); idx < prev {
			t.Fatalf("sketchIndex not monotone at %d", v)
		} else {
			prev = idx
		}
	}
}

func TestSketchOverflowRegion(t *testing.T) {
	s := NewSketch()
	s.Observe(math.MaxInt64)
	s.Observe(math.MaxInt64 - 1)
	s.Observe(1)
	top := sketchValue(sketchIndex(math.MaxInt64))
	if got := s.Quantile(1); got < top || got > math.MaxInt64 {
		t.Errorf("Quantile(1) = %d, want within the top bucket [%d, MaxInt64]", got, top)
	}
	if got := s.Quantile(0.9); got < top {
		t.Errorf("Quantile(0.9) = %d fell below the top bucket", got)
	}
	// Negative values clamp to zero rather than corrupting the geometry.
	s2 := NewSketch()
	s2.Observe(-5)
	if s2.Min() != 0 || s2.Quantile(0.5) != 0 || s2.Count() != 1 {
		t.Errorf("negative observation: min=%d p50=%d n=%d, want clamped to 0",
			s2.Min(), s2.Quantile(0.5), s2.Count())
	}
}

func TestSketchQuantiles(t *testing.T) {
	s := NewSketch()
	for v := int64(1); v <= 1000; v++ {
		s.Observe(v * 1000) // 1k .. 1M ns
	}
	checks := []struct {
		q    float64
		want int64 // exact rank value; sketch may be up to 1/32 low
	}{{0.5, 500_000}, {0.99, 990_000}, {0.999, 999_000}, {1, 1_000_000}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got > c.want || float64(c.want-got) > float64(c.want)/32+1 {
			t.Errorf("Quantile(%v) = %d, want within 1/32 below %d", c.q, got, c.want)
		}
	}
	if s.Quantile(0) != s.Min() {
		t.Errorf("Quantile(0) = %d, want Min %d", s.Quantile(0), s.Min())
	}
}

func TestSketchMergeAcrossTrials(t *testing.T) {
	// Merging per-trial sketches must equal one sketch that saw every
	// observation — bucket-wise addition is exact, not approximate.
	trialA, trialB, all := NewSketch(), NewSketch(), NewSketch()
	for v := int64(1); v <= 500; v++ {
		trialA.Observe(v * 977)
		all.Observe(v * 977)
	}
	for v := int64(1); v <= 300; v++ {
		trialB.Observe(v * 1_000_003)
		all.Observe(v * 1_000_003)
	}
	merged := NewSketch()
	merged.Merge(trialA)
	merged.Merge(trialB)
	if merged.Count() != all.Count() || merged.Sum() != all.Sum() ||
		merged.Min() != all.Min() || merged.Max() != all.Max() {
		t.Fatalf("merge header mismatch: n=%d/%d sum=%d/%d min=%d/%d max=%d/%d",
			merged.Count(), all.Count(), merged.Sum(), all.Sum(),
			merged.Min(), all.Min(), merged.Max(), all.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if m, w := merged.Quantile(q), all.Quantile(q); m != w {
			t.Errorf("Quantile(%v): merged %d != combined %d", q, m, w)
		}
	}
	// Merging an empty sketch changes nothing, including Min.
	before := merged.Min()
	merged.Merge(NewSketch())
	if merged.Min() != before {
		t.Error("merging an empty sketch perturbed Min")
	}
}

func TestRegistrySketch(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	s := r.Sketch("lat")
	if s == nil || r.Sketch("lat") != s {
		t.Fatal("Sketch not idempotent by name")
	}
	var nilReg *Registry
	if nilReg.Sketch("lat") != nil {
		t.Error("nil registry returned a live sketch")
	}
}

func TestSLOTracker(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	s := r.SLO("web", 100)
	if s.Threshold() != 100 {
		t.Fatalf("threshold = %d", s.Threshold())
	}
	clk.now = 111
	s.Observe(50)
	s.Observe(100) // at threshold: meets the objective
	if s.Total() != 2 || s.Violations() != 0 || s.FirstViolation() != -1 {
		t.Errorf("pre-violation state: total=%d viol=%d first=%d",
			s.Total(), s.Violations(), s.FirstViolation())
	}
	clk.now = 222
	s.Observe(101)
	clk.now = 333
	s.Observe(5000)
	if s.Total() != 4 || s.Violations() != 2 {
		t.Errorf("total=%d violations=%d, want 4/2", s.Total(), s.Violations())
	}
	if s.FirstViolation() != 222 {
		t.Errorf("FirstViolation = %d, want the clock at the first breach (222)", s.FirstViolation())
	}
	if r.SLO("web", 100) != s {
		t.Error("SLO not idempotent by (name, threshold)")
	}
	var nilS *SLO
	nilS.Observe(1)
	if nilS.Total() != 0 || nilS.FirstViolation() != -1 {
		t.Error("nil SLO not inert")
	}
	var nilReg *Registry
	if nilReg.SLO("web", 100) != nil {
		t.Error("nil registry returned a live SLO")
	}
}

func TestSLOThresholdMismatchPanics(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	r.SLO("web", 100)
	defer func() {
		if recover() == nil {
			t.Error("SLO re-registration with a different threshold did not panic")
		}
	}()
	r.SLO("web", 200)
}
