package probe

import (
	"graybox/internal/sim"
	"graybox/internal/stats"
)

// RepeatConfig bounds an adaptive repeated measurement (calibration
// probes such as MAC's resident-touch and zero-fill timings).
type RepeatConfig struct {
	// Min and Max bound the number of measurements (Min >= 1; Max >= Min;
	// zero values default to 1 and Min respectively).
	Min, Max int
	// MaxRelSpread, when positive, stops early once the outlier-discarded
	// sample's relative spread (stddev / median) falls to or below it.
	// Zero disables early stopping: exactly Max measurements are taken.
	MaxRelSpread float64
	// DiscardK is the outlier-discard width in standard deviations fed to
	// stats.DiscardOutliers (0 keeps every sample).
	DiscardK float64
}

func (c RepeatConfig) withDefaults() RepeatConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	return c
}

// Sample is the outcome of a Repeat run: the raw measurements in issue
// order plus the outlier-discarded subset the estimate is drawn from.
type Sample struct {
	Times []float64 // virtual nanoseconds, issue order
	kept  []float64
}

// Estimate returns the robust central value: the median of the
// outlier-discarded measurements (0 for an empty sample).
func (s Sample) Estimate() sim.Time {
	if len(s.kept) == 0 {
		return 0
	}
	return sim.Time(stats.Median(s.kept))
}

// RelSpread returns stddev/median of the kept measurements — the
// stopping statistic. It is 0 for degenerate samples (fewer than two
// kept points, or a zero median) and never NaN.
func (s Sample) RelSpread() float64 {
	if len(s.kept) < 2 {
		return 0
	}
	med := stats.Median(s.kept)
	if med == 0 {
		return 0
	}
	return stats.StdDev(s.kept) / med
}

// Confidence estimates how much to trust the estimate, in (0, 1]:
// 1 / (1 + RelSpread), so identical measurements give 1 and confidence
// decays as the sample gets noisier.
func (s Sample) Confidence() float64 { return 1 / (1 + s.RelSpread()) }

// Repeat measures op repeatedly under cfg, timing and accounting every
// repetition through the meter. It returns the sample collected so far
// and the first error, if any.
func (m *Meter) Repeat(cfg RepeatConfig, op func() error) (Sample, error) {
	cfg = cfg.withDefaults()
	var s Sample
	for i := 0; i < cfg.Max; i++ {
		t, err := m.Time(op)
		if err != nil {
			return s, err
		}
		s.Times = append(s.Times, float64(t))
		if cfg.DiscardK > 0 {
			s.kept = stats.DiscardOutliers(s.Times, cfg.DiscardK)
		} else {
			s.kept = s.Times
		}
		if cfg.MaxRelSpread > 0 && len(s.Times) >= cfg.Min && s.RelSpread() <= cfg.MaxRelSpread {
			break
		}
	}
	return s, nil
}
