// Package priorart implements miniature, self-contained simulations of
// the three existing gray-box systems the paper surveys in Section 3 and
// Table 1: TCP congestion control, implicit coscheduling, and MS
// Manners. Each demonstrates the specific combination of algorithmic
// knowledge, observed outputs, and statistics the table attributes to
// it, so that Table 1 can be regenerated from running code rather than
// transcribed.
package priorart

import (
	"graybox/internal/sim"
)

// --- TCP congestion control over a drop-tail bottleneck ---
//
// Gray-box knowledge: the network drops packets when there is
// congestion. Observed output: whether an ACK arrives before the RTO.
// Control: senders shrink their window on loss (and routers, in turn,
// control senders by dropping).

// TCPConfig describes the bottleneck link and the senders.
type TCPConfig struct {
	Senders      int
	QueueLimit   int      // router queue capacity (packets)
	LinkDelay    sim.Time // per-packet service time at the bottleneck
	PropDelay    sim.Time // one-way propagation
	RTO          sim.Time // retransmit timeout
	Duration     sim.Time
	WirelessLoss float64 // random non-congestion loss rate (0 = wired)
	Seed         uint64
	// GrayBox disables congestion reaction when false (a sender that
	// ignores the loss signal — the "misbehaving client").
	GrayBox bool
}

// DefaultTCPConfig returns a 2-sender wired setup.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		Senders:    2,
		QueueLimit: 16,
		LinkDelay:  sim.Millisecond,
		PropDelay:  5 * sim.Millisecond,
		RTO:        120 * sim.Millisecond,
		Duration:   20 * sim.Second,
		GrayBox:    true,
	}
}

// TCPResult reports per-sender goodput and aggregate behavior.
type TCPResult struct {
	Delivered []int64 // packets per sender
	Drops     int64
	Timeouts  int64
	// AvgWindow is the time-average congestion window of sender 0.
	AvgWindow float64
}

// tcpSender holds one connection's congestion state.
type tcpSender struct {
	id       int
	window   float64
	inflight int
	waiting  bool
	proc     *sim.Proc
}

// RunTCP simulates AIMD senders sharing one drop-tail queue. Each packet
// is its own simulated process; senders block when their window is full
// and are woken by ACKs and timeouts.
func RunTCP(cfg TCPConfig) TCPResult {
	e := sim.NewEngine(cfg.Seed)
	res := TCPResult{Delivered: make([]int64, cfg.Senders)}
	link := sim.NewResource(e, 1)
	rng := sim.NewRNG(cfg.Seed + 1)

	var windowSum float64
	var windowSamples int64

	for i := 0; i < cfg.Senders; i++ {
		snd := &tcpSender{id: i, window: 1}
		wake := func() {
			if snd.waiting {
				snd.waiting = false
				e.Unblock(snd.proc)
			}
		}
		onACK := func() {
			res.Delivered[snd.id]++
			snd.inflight--
			snd.window += 1 / snd.window // additive increase
			if snd.id == 0 {
				windowSum += snd.window
				windowSamples++
			}
			wake()
		}
		onLoss := func() {
			res.Timeouts++
			snd.inflight--
			if cfg.GrayBox {
				// The gray-box inference: a missing ACK means
				// congestion; multiplicative decrease.
				snd.window /= 2
				if snd.window < 1 {
					snd.window = 1
				}
			}
			wake()
		}
		sendPacket := func() {
			// Drop-tail admission: the router queue is the link's wait
			// line plus the packet in service.
			congested := link.QueueLen()+link.InUse() >= cfg.QueueLimit
			lossy := cfg.WirelessLoss > 0 && rng.Float64() < cfg.WirelessLoss
			if congested || lossy {
				res.Drops++
				// The sender learns of the loss only at its RTO.
				e.After(cfg.RTO, onLoss)
				return
			}
			e.Go("pkt", func(p *sim.Proc) {
				p.Sleep(cfg.PropDelay)
				link.Acquire(p)
				p.Sleep(cfg.LinkDelay)
				link.Release()
				p.Sleep(cfg.PropDelay) // ACK path
				onACK()
			})
		}
		snd.proc = e.Go("sender", func(p *sim.Proc) {
			for {
				now := p.Now()
				if now >= cfg.Duration {
					if snd.inflight == 0 {
						return
					}
				} else {
					for snd.inflight < int(snd.window) {
						snd.inflight++
						sendPacket()
					}
				}
				snd.waiting = true
				p.Block()
			}
		})
	}
	e.Run()
	if windowSamples > 0 {
		res.AvgWindow = windowSum / float64(windowSamples)
	}
	return res
}
