package cache

import (
	"testing"
	"testing/quick"

	"graybox/internal/disk"
	"graybox/internal/mem"
	"graybox/internal/sim"
)

func pid(ino, idx int64) PageID { return PageID{Ino: ino, Index: idx} }

// --- Policy unit tests ---

func TestClockEvictsUnreferencedFirst(t *testing.T) {
	c := NewClock()
	for i := int64(0); i < 4; i++ {
		c.Inserted(pid(1, i))
	}
	// One full sweep clears all ref bits; touch page 2 afterwards by
	// taking victims: first victim round-robins from the hand.
	v1, ok := c.Victim()
	if !ok {
		t.Fatal("no victim")
	}
	c.Touched(pid(1, 2))
	if v1 == pid(1, 2) {
		t.Skip("victim order picked the touched page first; irrelevant layout")
	}
	// Page 2 is referenced, so the next victims should skip it until
	// only it remains.
	seen := map[PageID]bool{v1: true}
	for c.Len() > 1 {
		v, ok := c.Victim()
		if !ok {
			t.Fatal("no victim")
		}
		if v == pid(1, 2) {
			t.Fatalf("evicted referenced page %v while unreferenced pages remained", v)
		}
		seen[v] = true
	}
	v, _ := c.Victim()
	if v != pid(1, 2) {
		t.Errorf("last victim = %v, want page 2", v)
	}
}

func TestClockSequentialEvictionOrder(t *testing.T) {
	// Under one-pass insertion with no touches, clock evicts in insertion
	// order — the "long chunks" property FCCD relies on.
	c := NewClock()
	const n = 50
	for i := int64(0); i < n; i++ {
		c.Inserted(pid(1, i))
	}
	var order []int64
	for {
		v, ok := c.Victim()
		if !ok {
			break
		}
		order = append(order, v.Index)
	}
	if len(order) != n {
		t.Fatalf("evicted %d pages, want %d", len(order), n)
	}
	for i, idx := range order {
		if idx != int64(i) {
			t.Fatalf("eviction order[%d] = %d, want %d (insertion order)", i, idx, i)
		}
	}
}

func TestClockRemoveHandSafety(t *testing.T) {
	c := NewClock()
	c.Inserted(pid(1, 0))
	c.Removed(pid(1, 0))
	if c.Len() != 0 {
		t.Fatal("page not removed")
	}
	if _, ok := c.Victim(); ok {
		t.Fatal("victim from empty clock")
	}
	c.Inserted(pid(1, 1))
	c.Inserted(pid(1, 2))
	c.Removed(pid(1, 1))
	v, ok := c.Victim()
	if !ok || v != pid(1, 2) {
		t.Fatalf("victim = %v, %v; want page 2", v, ok)
	}
}

func TestLRUOrder(t *testing.T) {
	l := NewLRU()
	l.Inserted(pid(1, 0))
	l.Inserted(pid(1, 1))
	l.Inserted(pid(1, 2))
	l.Touched(pid(1, 0)) // 0 becomes most recent
	v, _ := l.Victim()
	if v != pid(1, 1) {
		t.Errorf("victim = %v, want page 1 (LRU)", v)
	}
	v, _ = l.Victim()
	if v != pid(1, 2) {
		t.Errorf("victim = %v, want page 2", v)
	}
	v, _ = l.Victim()
	if v != pid(1, 0) {
		t.Errorf("victim = %v, want page 0", v)
	}
}

func TestHoldFirstProtectsEarlyResidents(t *testing.T) {
	h := NewHoldFirst()
	for i := int64(0); i < 5; i++ {
		h.Inserted(pid(1, i))
	}
	h.Touched(pid(1, 4)) // touches must not change anything
	v, _ := h.Victim()
	if v != pid(1, 4) {
		t.Errorf("victim = %v, want newest page 4", v)
	}
	v, _ = h.Victim()
	if v != pid(1, 3) {
		t.Errorf("victim = %v, want page 3", v)
	}
}

func TestPolicyLenConsistencyProperty(t *testing.T) {
	mk := map[string]func() Policy{
		"clock":     func() Policy { return NewClock() },
		"lru":       func() Policy { return NewLRU() },
		"holdfirst": func() Policy { return NewHoldFirst() },
	}
	for name, ctor := range mk {
		f := func(ops []uint8) bool {
			p := ctor()
			present := map[PageID]bool{}
			next := int64(0)
			for _, op := range ops {
				switch op % 3 {
				case 0: // insert
					id := pid(1, next)
					next++
					p.Inserted(id)
					present[id] = true
				case 1: // victim
					if id, ok := p.Victim(); ok {
						if !present[id] {
							return false
						}
						delete(present, id)
					}
				case 2: // touch something arbitrary
					p.Touched(pid(1, int64(op)))
				}
				if p.Len() != len(present) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// --- Cache integration ---

type harness struct {
	e    *sim.Engine
	d    *disk.Disk
	pool *mem.Pool
	c    *Cache
}

func newHarness(t *testing.T, cfg Config, policy Policy, poolFrames int) *harness {
	t.Helper()
	e := sim.NewEngine(1)
	d := disk.New(e, disk.DefaultParams())
	var pool *mem.Pool
	if !cfg.PrivateFrames {
		pool = mem.NewPool(e, poolFrames)
	}
	c := New(e, cfg, policy, pool)
	if pool != nil {
		pool.AddShrinker(c)
	}
	return &harness{e: e, d: d, pool: pool, c: c}
}

func (h *harness) run(fn func(p *sim.Proc)) {
	pr := h.e.Go("t", fn)
	h.e.Run()
	if pr.Err() != nil {
		panic(pr.Err())
	}
}

func (h *harness) addr(b int64) BlockAddr { return BlockAddr{Disk: h.d, Block: b} }

func TestCacheInsertLookup(t *testing.T) {
	h := newHarness(t, Config{}, NewClock(), 100)
	h.run(func(p *sim.Proc) {
		h.c.Insert(p, pid(1, 0), h.addr(10), false)
		if !h.c.Lookup(pid(1, 0)) {
			t.Error("inserted page not found")
		}
		if h.c.Lookup(pid(1, 1)) {
			t.Error("phantom page found")
		}
	})
	st := h.c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheCapacityNeverExceeded(t *testing.T) {
	h := newHarness(t, Config{Capacity: 8}, NewClock(), 100)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 50; i++ {
			h.c.Insert(p, pid(1, i), h.addr(i), false)
			if h.c.Len() > 8 {
				t.Fatalf("cache grew to %d pages, cap 8", h.c.Len())
			}
		}
	})
	if h.c.Stats().Evictions != 42 {
		t.Errorf("evictions = %d, want 42", h.c.Stats().Evictions)
	}
}

func TestCachePrivateFrames(t *testing.T) {
	h := newHarness(t, Config{Capacity: 4, PrivateFrames: true}, NewLRU(), 0)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 10; i++ {
			h.c.Insert(p, pid(1, i), h.addr(i), false)
		}
	})
	if h.c.Len() != 4 {
		t.Errorf("cache len = %d, want 4", h.c.Len())
	}
	if h.c.Held() != 0 {
		t.Errorf("private cache Held = %d, want 0 pool frames", h.c.Held())
	}
}

func TestCacheEvictionViaPoolPressure(t *testing.T) {
	h := newHarness(t, Config{FloorPages: 2}, NewClock(), 10)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 10; i++ {
			h.c.Insert(p, pid(1, i), h.addr(i), false)
		}
		// Pool is now full of cache pages. An external grab must squeeze
		// the cache.
		h.pool.GrabFrame(p)
		if h.c.Len() != 9 {
			t.Errorf("cache len = %d after pool pressure, want 9", h.c.Len())
		}
		// Squeeze down to the floor.
		for i := 0; i < 7; i++ {
			h.pool.GrabFrame(p)
		}
		if h.c.Len() != 2 {
			t.Errorf("cache len = %d, want floor 2", h.c.Len())
		}
	})
}

func TestDirtyWritebackOnEvict(t *testing.T) {
	h := newHarness(t, Config{Capacity: 2}, NewClock(), 10)
	h.run(func(p *sim.Proc) {
		h.c.Insert(p, pid(1, 0), h.addr(0), true)
		h.c.Insert(p, pid(1, 1), h.addr(1), false)
		h.c.Insert(p, pid(1, 2), h.addr(2), false) // evicts dirty page 0
	})
	st := h.c.Stats()
	if st.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.Writebacks)
	}
	if h.d.Stats().Writes != 1 {
		t.Errorf("disk writes = %d, want 1", h.d.Stats().Writes)
	}
}

func TestDirtyThrottle(t *testing.T) {
	h := newHarness(t, Config{MaxDirty: 4}, NewClock(), 100)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 12; i++ {
			h.c.Insert(p, pid(1, i), h.addr(i), true)
		}
	})
	st := h.c.Stats()
	if st.ThrottleFlushes != 8 {
		t.Errorf("throttle flushes = %d, want 8", st.ThrottleFlushes)
	}
}

func TestSyncWritesAllDirty(t *testing.T) {
	h := newHarness(t, Config{}, NewClock(), 100)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 5; i++ {
			h.c.Insert(p, pid(1, i), h.addr(i), true)
		}
		h.c.Sync(p)
	})
	if w := h.d.Stats().Writes; w != 5 {
		t.Errorf("disk writes = %d, want 5", w)
	}
	if h.c.Len() != 5 {
		t.Errorf("Sync dropped pages: len = %d, want 5", h.c.Len())
	}
}

func TestInvalidateFile(t *testing.T) {
	h := newHarness(t, Config{}, NewClock(), 100)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 3; i++ {
			h.c.Insert(p, pid(7, i), h.addr(i), true)
		}
		h.c.Insert(p, pid(8, 0), h.addr(9), false)
		free := h.pool.Free()
		h.c.InvalidateFile(7)
		if h.pool.Free() != free+3 {
			t.Errorf("frames not returned: free %d -> %d", free, h.pool.Free())
		}
	})
	if h.c.ResidentPages(7) != 0 {
		t.Error("file 7 pages remain")
	}
	if h.c.ResidentPages(8) != 1 {
		t.Error("file 8 page lost")
	}
	if h.d.Stats().Writes != 0 {
		t.Error("invalidate should not write back")
	}
}

func TestDropAndPresenceBitmap(t *testing.T) {
	h := newHarness(t, Config{}, NewClock(), 100)
	h.run(func(p *sim.Proc) {
		h.c.Insert(p, pid(1, 0), h.addr(0), false)
		h.c.Insert(p, pid(1, 2), h.addr(2), false)
	})
	bm := h.c.PresenceBitmap(1, 4)
	want := []bool{true, false, true, false}
	for i := range want {
		if bm[i] != want[i] {
			t.Errorf("bitmap[%d] = %v, want %v", i, bm[i], want[i])
		}
	}
	h.c.Drop()
	if h.c.Len() != 0 || h.pool.Used() != 0 {
		t.Errorf("after Drop: len=%d used=%d", h.c.Len(), h.pool.Used())
	}
}

func TestReinsertExistingPageIsNoop(t *testing.T) {
	h := newHarness(t, Config{}, NewClock(), 100)
	h.run(func(p *sim.Proc) {
		h.c.Insert(p, pid(1, 0), h.addr(0), false)
		used := h.pool.Used()
		h.c.Insert(p, pid(1, 0), h.addr(0), false)
		if h.pool.Used() != used {
			t.Error("duplicate insert grabbed a frame")
		}
		h.c.Insert(p, pid(1, 0), h.addr(0), true) // upgrade to dirty
	})
	h2 := h.e.Go("sync", func(p *sim.Proc) { h.c.Sync(p) })
	h.e.WaitAll(h2)
	if h.d.Stats().Writes != 1 {
		t.Errorf("writes = %d, want 1 (dirty upgrade)", h.d.Stats().Writes)
	}
}

// TestConcurrentSameInsertFoldsIntoExisting: Insert parks its caller while
// obtaining a frame (eviction write-back, pool reclaim), and during that
// sleep another process may cache the same page. The resumed insert must
// fold into the existing record instead of registering the page with the
// replacement policy a second time — a duplicate policy entry later
// surfaces as a victim the index no longer knows, which panics EvictOne.
// Regression test: the SMP scheduler's contended Compute made this
// interleaving reachable in the noise sweep.
func TestConcurrentSameInsertFoldsIntoExisting(t *testing.T) {
	h := newHarness(t, Config{Capacity: 2}, NewLRU(), 100)
	dup := pid(9, 9)
	a := h.e.Go("a", func(p *sim.Proc) {
		h.c.Insert(p, pid(1, 0), h.addr(0), true) // dirty: its eviction parks
		h.c.Insert(p, pid(1, 1), h.addr(1), false)
		// Evicts LRU page 0 and parks in its write-back; the racing
		// insert below lands inside that sleep.
		h.c.Insert(p, dup, h.addr(9), false)
	})
	b := h.e.Go("b", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		if h.c.Contains(dup) {
			t.Error("page cached before the racing insert ran")
		}
		h.c.Insert(p, dup, h.addr(9), false)
	})
	h.e.Run()
	if a.Err() != nil || b.Err() != nil {
		t.Fatalf("proc errors: a=%v b=%v", a.Err(), b.Err())
	}
	if !h.c.Contains(dup) {
		t.Fatal("racing page not cached")
	}
	if got, want := h.c.policy.Len(), h.c.Len(); got != want {
		t.Fatalf("policy tracks %d pages, index has %d (duplicate insert)", got, want)
	}
	// Draining every page through the policy must agree with the index —
	// with a duplicate, the second victim for dup is not in the cache.
	h.run(func(p *sim.Proc) {
		for h.c.EvictOne(p) {
		}
	})
	if h.c.Len() != 0 || h.c.policy.Len() != 0 {
		t.Errorf("after draining: index=%d policy=%d, want 0/0", h.c.Len(), h.c.policy.Len())
	}
}
