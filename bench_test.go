// Benchmarks: one per table and figure of the paper (run at QuickScale
// so `go test -bench=.` finishes promptly; cmd/gb-experiments regenerates
// the full-size numbers), plus microbenchmark-style benches for the
// probe-cost claims and ablation benches for the design choices called
// out in DESIGN.md §5.
//
// The simulator is deterministic, so these benches measure the real
// wall-clock cost of *running* each experiment; the scientific outputs
// (virtual times, ratios) are attached via b.ReportMetric.
package graybox_test

import (
	"fmt"
	"testing"

	"graybox"
	"graybox/internal/core/fccd"
	"graybox/internal/core/fldc"
	"graybox/internal/core/mac"
	"graybox/internal/core/toolbox"
	"graybox/internal/experiments"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/stats"
)

// --- one bench per table/figure ---

func benchExperiment(b *testing.B, id string, metric func(*experiments.Table) (float64, string)) {
	b.Helper()
	r := experiments.ByID(id)
	if r == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = r.Run(experiments.QuickScale())
	}
	if metric != nil {
		v, unit := metric(tab)
		b.ReportMetric(v, unit)
	}
}

func BenchmarkTable1PriorArt(b *testing.B)    { benchExperiment(b, "table1", nil) }
func BenchmarkTable2CaseStudies(b *testing.B) { benchExperiment(b, "table2", nil) }

func BenchmarkFig1ProbeCorrelation(b *testing.B) { benchExperiment(b, "fig1", nil) }
func BenchmarkFig2SingleFileScan(b *testing.B)   { benchExperiment(b, "fig2", nil) }
func BenchmarkFig3Applications(b *testing.B)     { benchExperiment(b, "fig3", nil) }
func BenchmarkFig4MultiPlatform(b *testing.B)    { benchExperiment(b, "fig4", nil) }
func BenchmarkFig5FileOrdering(b *testing.B)     { benchExperiment(b, "fig5", nil) }
func BenchmarkFig6Aging(b *testing.B)            { benchExperiment(b, "fig6", nil) }
func BenchmarkFig7SortMAC(b *testing.B)          { benchExperiment(b, "fig7", nil) }
func BenchmarkMACAccuracy(b *testing.B)          { benchExperiment(b, "mac-accuracy", nil) }

// --- probe-cost microbenchmarks (Sections 4.1.2, 4.2.2) ---

func smallPlatform() *graybox.Platform {
	return graybox.NewPlatform(graybox.PlatformConfig{MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1})
}

// BenchmarkProbeInCache measures the FCCD probe on cached data: the
// paper reports "a few microseconds".
func BenchmarkProbeInCache(b *testing.B) {
	p := smallPlatform()
	var per graybox.Time
	err := p.Run("bench", func(os *graybox.Proc) {
		fd, _ := os.Create("f")
		fd.Write(0, 8*graybox.MB)
		fd.Read(0, 8*graybox.MB)
		rng := sim.NewRNG(1)
		sw := graybox.NewStopwatch(os)
		for i := 0; i < b.N; i++ {
			fd.ReadByteAt(rng.Int63n(8 * graybox.MB))
		}
		per = sw.Elapsed() / graybox.Time(b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(per.Micros(), "virtual-us/probe")
}

// BenchmarkProbeOnDisk measures the probe on cold data: "a few
// milliseconds per probe".
func BenchmarkProbeOnDisk(b *testing.B) {
	p := smallPlatform()
	var per graybox.Time
	err := p.Run("bench", func(os *graybox.Proc) {
		fd, _ := os.Create("f")
		fd.Write(0, 32*graybox.MB)
		rng := sim.NewRNG(1)
		var total graybox.Time
		for i := 0; i < b.N; i++ {
			p.DropCaches()
			sw := graybox.NewStopwatch(os)
			fd.ReadByteAt(rng.Int63n(32 * graybox.MB))
			total += sw.Elapsed()
		}
		per = total / graybox.Time(b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(per.Millis(), "virtual-ms/probe")
}

// BenchmarkStatProbe measures the FLDC stat() probe cold vs warm: "at
// most a few milliseconds (a disk access)".
func BenchmarkStatProbe(b *testing.B) {
	p := smallPlatform()
	var cold graybox.Time
	err := p.Run("bench", func(os *graybox.Proc) {
		os.Mkdir("d")
		for i := 0; i < 64; i++ {
			os.Create(fmt.Sprintf("d/f%02d", i))
		}
		var total graybox.Time
		for i := 0; i < b.N; i++ {
			p.DropCaches()
			sw := graybox.NewStopwatch(os)
			os.Stat(fmt.Sprintf("d/f%02d", i%64))
			total += sw.Elapsed()
		}
		cold = total / graybox.Time(b.N)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cold.Millis(), "virtual-ms/stat")
}

// BenchmarkToolboxMicrobench measures the full configuration
// microbenchmark suite (run once per platform in practice).
func BenchmarkToolboxMicrobench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := smallPlatform()
		repo := toolbox.NewRepository("bench")
		if err := p.Run("mb", func(os *graybox.Proc) {
			if err := toolbox.RunAll(os, repo); err != nil {
				b.Fatal(err)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblationSortVsThreshold compares FCCD's sort-by-probe-time
// classifier against a fixed threshold that was calibrated for a
// different device (10x slower disk). The sort stays correct; the stale
// threshold misclassifies.
func BenchmarkAblationSortVsThreshold(b *testing.B) {
	var sortAcc, thresholdAcc float64
	for i := 0; i < b.N; i++ {
		p := smallPlatform()
		err := p.Run("bench", func(os *graybox.Proc) {
			os.Mkdir("d")
			var paths []string
			for j := 0; j < 16; j++ {
				path := fmt.Sprintf("d/f%02d", j)
				fd, _ := os.Create(path)
				fd.Write(0, 2*graybox.MB)
				paths = append(paths, path)
			}
			p.DropCaches()
			for j := 0; j < 16; j += 2 { // warm every other file
				fd, _ := os.Open(paths[j])
				fd.Read(0, fd.Size())
			}
			det := fccd.New(os, fccd.Config{AccessUnit: 2 * graybox.MB, PredictionUnit: 2 * graybox.MB, Seed: uint64(i)})
			probes, err := det.OrderFiles(paths)
			if err != nil {
				b.Fatal(err)
			}
			truth := func(path string) bool {
				bm, _ := p.FS(0).PresenceBitmap(path)
				n := 0
				for _, c := range bm {
					if c {
						n++
					}
				}
				return n > len(bm)/2
			}
			// Sort classifier: the first half of the ranking is "cached".
			correct := 0
			for rank, pr := range probes {
				if (rank < len(probes)/2) == truth(pr.Path) {
					correct++
				}
			}
			sortAcc = float64(correct) / float64(len(probes))
			// Stale-threshold classifier: anything under 40 ms is
			// "cached" (calibrated for a much slower disk, so real disk
			// probes of ~3-9 ms also pass).
			correct = 0
			for _, pr := range probes {
				if (pr.ProbeTime < 40*graybox.Millisecond) == truth(pr.Path) {
					correct++
				}
			}
			thresholdAcc = float64(correct) / float64(len(probes))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sortAcc*100, "sort-accuracy-%")
	b.ReportMetric(thresholdAcc*100, "stale-threshold-accuracy-%")
}

// BenchmarkAblationProbeOffset shows why probe offsets must be random:
// with fixed offsets, a second prober's probes land exactly on the pages
// the first prober faulted in, so every file looks cached.
func BenchmarkAblationProbeOffset(b *testing.B) {
	falsePositives := func(random bool) float64 {
		p := smallPlatform()
		var rate float64
		err := p.Run("bench", func(os *graybox.Proc) {
			os.Mkdir("d")
			var paths []string
			for j := 0; j < 8; j++ {
				path := fmt.Sprintf("d/f%d", j)
				fd, _ := os.Create(path)
				fd.Write(0, 4*graybox.MB)
				paths = append(paths, path)
			}
			p.DropCaches() // every file is COLD
			probe := func(fd *graybox.Fd, off int64) graybox.Time {
				sw := graybox.NewStopwatch(os)
				fd.ReadByteAt(off)
				return sw.Elapsed()
			}
			rng := sim.NewRNG(5)
			offsetFor := func(trial int) int64 {
				if random {
					return rng.Int63n(4 * graybox.MB)
				}
				return 2 * graybox.MB // predetermined offset
			}
			// First prober runs (its misses cache one page per file),
			// then a second prober measures.
			for _, path := range paths {
				fd, _ := os.Open(path)
				probe(fd, offsetFor(0))
			}
			wrong := 0
			for _, path := range paths {
				fd, _ := os.Open(path)
				if probe(fd, offsetFor(1)) < 100*graybox.Microsecond {
					wrong++ // looked cached, but the file is cold
				}
			}
			rate = float64(wrong) / float64(len(paths))
		})
		if err != nil {
			b.Fatal(err)
		}
		return rate
	}
	var fixed, random float64
	for i := 0; i < b.N; i++ {
		fixed = falsePositives(false)
		random = falsePositives(true)
	}
	b.ReportMetric(fixed*100, "fixed-offset-false-pos-%")
	b.ReportMetric(random*100, "random-offset-false-pos-%")
}

// BenchmarkAblationPredictionUnit compares prediction units: probing at
// the access-unit grain vs a finer unit (the paper settles on AU/4,
// "performing a few probes within each access unit is slightly more
// robust"). Units are warmed to graded fractions; the score is how well
// the plan's ranking tracks the true cached fraction (rank correlation,
// higher is better). The finer unit costs 4x the probes but ranks
// partially-cached units much more reliably.
func BenchmarkAblationPredictionUnit(b *testing.B) {
	measure := func(pu int64, seed uint64) (probes int64, rankCorr float64) {
		p := smallPlatform()
		err := p.Run("bench", func(os *graybox.Proc) {
			fd, _ := os.Create("f")
			const unit = 8 * graybox.MB
			size := int64(4 * unit)
			fd.Write(0, size)
			p.DropCaches()
			// Graded warmth: unit k has (2k+1)/8 of its pages cached.
			for k := int64(0); k < 4; k++ {
				fd.Read(k*unit, (2*k+1)*graybox.MB)
			}
			det := fccd.New(os, fccd.Config{AccessUnit: unit, PredictionUnit: pu, Seed: seed})
			plan, err := det.ProbeFd(fd)
			if err != nil {
				b.Fatal(err)
			}
			probes = det.Probes()
			bm, _ := p.FS(0).PresenceBitmap("f")
			ranks := make([]float64, len(plan))
			fracs := make([]float64, len(plan))
			for rank, seg := range plan {
				cached := 0
				for pg := seg.Off / 4096; pg < (seg.Off+seg.Len)/4096; pg++ {
					if bm[pg] {
						cached++
					}
				}
				ranks[rank] = float64(rank)
				fracs[rank] = float64(cached) / float64(seg.Len/4096)
			}
			// Early ranks should have high cached fractions: want a
			// strongly negative correlation; report its negation.
			rankCorr = -stats.Correlation(ranks, fracs)
		})
		if err != nil {
			b.Fatal(err)
		}
		return probes, rankCorr
	}
	var coarseProbes, fineProbes int64
	var coarseCorr, fineCorr float64
	for i := 0; i < b.N; i++ {
		// Average the rank quality over several probe seeds: a single
		// coarse probe is a coin flip on a half-cached unit.
		var cc, fc float64
		const seeds = 8
		for s := uint64(0); s < seeds; s++ {
			p1, c1 := measure(8*graybox.MB, s)
			p2, c2 := measure(2*graybox.MB, s)
			coarseProbes, fineProbes = p1, p2
			cc += c1
			fc += c2
		}
		coarseCorr, fineCorr = cc/seeds, fc/seeds
	}
	b.ReportMetric(float64(coarseProbes), "probes@PU=AU")
	b.ReportMetric(coarseCorr*100, "rank-quality@PU=AU-%")
	b.ReportMetric(float64(fineProbes), "probes@PU=AU/4")
	b.ReportMetric(fineCorr*100, "rank-quality@PU=AU/4-%")
}

// BenchmarkAblationMACIncrement compares MAC increment policies:
// conservative doubling (the paper's choice) against jumping straight to
// a huge increment. Conservative growth re-verifies the whole allocation
// at every (smaller) step — the O(n^2) probing the paper acknowledges —
// while the aggressive jump probes less but oversteps by a whole huge
// increment at once when a competitor is active, leaving the recovery
// cost to others; both columns are reported for inspection.
func BenchmarkAblationMACIncrement(b *testing.B) {
	run := func(initialMB, maxMB int64) (probed int64, swaps int64, gotMB int64) {
		s := simos.New(simos.Config{Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1})
		stop := false
		s.Spawn("hog", 0, func(os *simos.OS) {
			m := os.Malloc(24 * graybox.MB)
			for !stop {
				os.TouchRange(m, 0, m.Pages(), true)
				os.Sleep(50 * graybox.Millisecond)
			}
		})
		pr := s.Spawn("mac", 10*graybox.Millisecond, func(os *simos.OS) {
			defer func() { stop = true }()
			ctl := mac.New(os, mac.Config{InitialIncrement: initialMB * graybox.MB, MaxIncrement: maxMB * graybox.MB})
			a, ok := ctl.GBAlloc(graybox.MB, 56*graybox.MB, graybox.MB)
			if ok {
				gotMB = a.Bytes / graybox.MB
				ctl.GBFree(a)
			}
			probed = ctl.Stats().PagesProbed
		})
		s.Engine.WaitAll(pr)
		return probed, s.VM.Stats().SwapOuts, gotMB
	}
	var conservativeProbed, conservativeSwaps int64
	var aggressiveProbed, aggressiveSwaps int64
	for i := 0; i < b.N; i++ {
		conservativeProbed, conservativeSwaps, _ = run(1, 8)
		aggressiveProbed, aggressiveSwaps, _ = run(32, 32)
	}
	b.ReportMetric(float64(conservativeProbed), "conservative-pages-probed")
	b.ReportMetric(float64(conservativeSwaps), "conservative-swapouts")
	b.ReportMetric(float64(aggressiveProbed), "aggressive-pages-probed")
	b.ReportMetric(float64(aggressiveSwaps), "aggressive-swapouts")
}

// BenchmarkAblationRefreshPolicy compares directory refresh policies
// over an aging horizon: never refreshing vs refreshing periodically.
func BenchmarkAblationRefreshPolicy(b *testing.B) {
	horizon := 20
	run := func(refreshEvery int) graybox.Time {
		p := smallPlatform()
		var total graybox.Time
		err := p.Run("bench", func(os *graybox.Proc) {
			os.Mkdir("d")
			for i := 0; i < 60; i++ {
				fd, _ := os.Create(fmt.Sprintf("d/f%03d", i))
				fd.Write(0, 2*4096)
			}
			rng := sim.NewRNG(4)
			next := 60
			l := fldc.New(os)
			for epoch := 1; epoch <= horizon; epoch++ {
				// Churn.
				names, _ := os.Readdir("d")
				for k := 0; k < 4; k++ {
					os.Unlink("d/" + names[rng.Intn(len(names))])
					names, _ = os.Readdir("d")
					fd, _ := os.Create(fmt.Sprintf("d/g%04d", next))
					next++
					fd.Write(0, int64(rng.Intn(4)+1)*4096)
				}
				if refreshEvery > 0 && epoch%refreshEvery == 0 {
					if err := l.Refresh("d", fldc.BySize); err != nil {
						b.Fatal(err)
					}
				}
				// Nightly batch read in i-number order, cold cache.
				names, _ = os.Readdir("d")
				paths := make([]string, len(names))
				for i, n := range names {
					paths[i] = "d/" + n
				}
				ordered, err := l.OrderByINumber(paths)
				if err != nil {
					b.Fatal(err)
				}
				p.DropCaches()
				sw := graybox.NewStopwatch(os)
				for _, path := range ordered {
					fd, err := os.Open(path)
					if err != nil {
						b.Fatal(err)
					}
					fd.Read(0, fd.Size())
				}
				total += sw.Elapsed()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return total
	}
	var never, periodic graybox.Time
	for i := 0; i < b.N; i++ {
		never = run(0)
		periodic = run(8)
	}
	b.ReportMetric(never.Seconds(), "never-refresh-virtual-s")
	b.ReportMetric(periodic.Seconds(), "refresh-every-8-virtual-s")
}
