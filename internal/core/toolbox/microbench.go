package toolbox

import (
	"fmt"

	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/stats"
)

// Microbenchmarks must run on an otherwise idle system ("they likely
// require a dedicated system", Section 2.1). Each takes an OS handle,
// performs timed operations through the ordinary syscall interface, and
// records results in the repository.

// benchDir is where microbenchmarks place their scratch files.
const benchDir = "gb-microbench"

// RunAll executes every configuration microbenchmark and fills repo.
// The scratch files are removed afterwards.
func RunAll(os *simos.OS, repo *Repository) error {
	if err := os.Mkdir(benchDir); err != nil {
		return err
	}
	defer cleanup(os)
	if err := MeasureMemory(os, repo); err != nil {
		return err
	}
	if err := MeasureDisk(os, repo); err != nil {
		return err
	}
	if err := MeasureAccessUnit(os, repo); err != nil {
		return err
	}
	return nil
}

func cleanup(os *simos.OS) {
	names, err := os.Readdir(benchDir)
	if err != nil {
		return
	}
	for _, n := range names {
		_ = os.Unlink(benchDir + "/" + n)
	}
	_ = os.Rmdir(benchDir)
}

// MeasureMemory times resident page touches, zero-fill faults, in-cache
// byte probes and in-cache page copies.
func MeasureMemory(os *simos.OS, repo *Repository) error {
	// Resident touch: median of repeated writes to the same few pages.
	m := os.MallocPages(8)
	defer os.Free(m)
	os.TouchRange(m, 0, 8, true) // fault in
	var touch []float64
	for rep := 0; rep < 8; rep++ {
		for pg := int64(0); pg < 8; pg++ {
			sw := NewStopwatch(os)
			os.Touch(m, pg, true)
			touch = append(touch, float64(sw.Elapsed()))
		}
	}
	repo.Set(KeyTouchResidentNS, stats.Median(touch))

	// Zero-fill: first writes to fresh pages.
	z := os.MallocPages(64)
	defer os.Free(z)
	var zf []float64
	for pg := int64(0); pg < 64; pg++ {
		sw := NewStopwatch(os)
		os.Touch(z, pg, true)
		zf = append(zf, float64(sw.Elapsed()))
	}
	// Discard outliers: some faults include unrelated reclaim work.
	repo.Set(KeyZeroFillNS, stats.Median(stats.DiscardOutliers(zf, 2)))

	// In-cache file probe and page copy.
	fd, err := os.Create(benchDir + "/mem")
	if err != nil {
		return err
	}
	const pages = 64
	ps := int64(os.PageSize())
	if err := fd.Write(0, pages*ps); err != nil {
		return err
	}
	if err := fd.Read(0, pages*ps); err != nil { // ensure cached
		return err
	}
	var probes, copies []float64
	for pg := int64(0); pg < pages; pg++ {
		sw := NewStopwatch(os)
		if err := fd.ReadByteAt(pg * ps); err != nil {
			return err
		}
		probes = append(probes, float64(sw.Elapsed()))
		sw.Reset()
		if err := fd.Read(pg*ps, ps); err != nil {
			return err
		}
		copies = append(copies, float64(sw.Elapsed()))
	}
	repo.Set(KeyCacheProbeNS, stats.Median(probes))
	repo.Set(KeyPageCopyNS, stats.Median(copies))
	return nil
}

// MeasureDisk times cold single-page probes and sequential bandwidth.
func MeasureDisk(os *simos.OS, repo *Repository) error {
	const fileMB = 32
	fd, err := os.Create(benchDir + "/disk")
	if err != nil {
		return err
	}
	size := int64(fileMB * simos.MB)
	if err := fd.Write(0, size); err != nil {
		return err
	}
	os.System().DropCaches() // dedicated-system assumption

	// Cold random probes.
	rng := sim.NewRNG(0xD15C)
	var probes []float64
	for i := 0; i < 32; i++ {
		off := rng.Int63n(size)
		sw := NewStopwatch(os)
		if err := fd.ReadByteAt(off); err != nil {
			return err
		}
		probes = append(probes, float64(sw.Elapsed()))
	}
	repo.Set(KeyDiskProbeNS, stats.Median(probes))

	// Sequential bandwidth, cold.
	os.System().DropCaches()
	sw := NewStopwatch(os)
	if err := fd.Read(0, size); err != nil {
		return err
	}
	secs := sw.Elapsed().Seconds()
	repo.Set(KeySeqBandwidthMBps, float64(fileMB)/secs)
	return nil
}

// MeasureAccessUnit finds the smallest read unit that achieves at least
// 90% of peak disk bandwidth when reading from random offsets — the
// default FCCD access unit ("we currently determine a default access
// unit that delivers near-peak performance from the disk by performing a
// simple microbenchmark", Section 4.1.2).
func MeasureAccessUnit(os *simos.OS, repo *Repository) error {
	const fileMB = 64
	fd, err := os.Create(benchDir + "/au")
	if err != nil {
		return err
	}
	size := int64(fileMB * simos.MB)
	if err := fd.Write(0, size); err != nil {
		return err
	}
	units := []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20, 32 << 20}
	bw := make([]float64, len(units))
	rng := sim.NewRNG(0xACCE55)
	for i, unit := range units {
		os.System().DropCaches()
		var read int64
		sw := NewStopwatch(os)
		for read < size/2 {
			off := rng.Int63n(size - unit + 1)
			if err := fd.Read(off, unit); err != nil {
				return err
			}
			read += unit
		}
		bw[i] = float64(read) / (1 << 20) / sw.Elapsed().Seconds()
	}
	peak := stats.Max(bw)
	for i, unit := range units {
		if bw[i] >= 0.9*peak {
			repo.Set(KeyAccessUnitBytes, float64(unit))
			return nil
		}
	}
	return fmt.Errorf("toolbox: no access unit reached 90%% of peak %f MB/s", peak)
}
