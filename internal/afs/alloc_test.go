package afs

import (
	"testing"

	"graybox/internal/sim"
)

// TestReadHitAllocs guards the warm-cache read path: LRU relink plus the
// local-disk sleep must not allocate, so FCCD-style probing of an AFS
// cache stays GC-free however many files it sweeps.
func TestReadHitAllocs(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewClient(e, DefaultConfig())
	c.Register("a", 1<<20)
	c.Register("b", 1<<20)
	var allocs float64
	pr := e.Go("reader", func(p *sim.Proc) {
		if err := c.Read(p, "a", 0, 1); err != nil {
			t.Error(err)
			return
		}
		if err := c.Read(p, "b", 0, 1); err != nil {
			t.Error(err)
			return
		}
		i := 0
		allocs = testing.AllocsPerRun(1000, func() {
			name := "a"
			if i%2 == 0 {
				name = "b"
			}
			if err := c.Read(p, name, 0, 1); err != nil {
				t.Error(err)
			}
			i++
		})
	})
	e.Run()
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
	if allocs != 0 {
		t.Errorf("cached Read allocs/op = %v, want 0", allocs)
	}
}
