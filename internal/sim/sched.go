package sim

import (
	"fmt"

	"graybox/internal/ring"
	"graybox/internal/telemetry"
)

// Simulated SMP scheduler (DESIGN.md §17). By default the engine models
// infinitely many processors: Proc.Compute is a pure timer and CPU
// bursts from concurrent processes overlap freely — cheap, and exactly
// the model every experiment before the scheduler existed was measured
// under. SetCPUs(n) for n >= 1 replaces that with n simulated
// processors: computing processes occupy a CPU, waiters queue on
// per-CPU FIFO run queues (intrusive ring.List arenas — no allocation
// per enqueue), and a round-robin timeslice preempts in virtual time.
//
// Dispatch is deterministic by construction:
//
//   - A process that becomes runnable takes the lowest-indexed idle
//     CPU; if none is idle it joins the shortest run queue (ties broken
//     by lowest CPU index). No randomness, no work stealing.
//   - A CPU that frees up runs the head of its own queue (FIFO, so
//     same-time arrivals dispatch in spawn/submission order — the
//     engine's (at, seq) event order).
//   - At quantum expiry a contended process goes to the back and the
//     head dispatches; an uncontended process keeps its CPU with no
//     switch charged, so a lone computing process runs for exactly its
//     requested burst in one stretch.
//
// All scheduler bookkeeping runs inside the engine's single-threaded
// event loop; timeslices are pool events (kind evSlice), so the steady
// state allocates nothing.

// DefaultQuantum is the round-robin timeslice when SetCPUs is given a
// non-positive quantum — 10ms, the classic 100 Hz kernel tick.
const DefaultQuantum = 10 * Millisecond

// schedCPU is one simulated processor: the process currently charged on
// it and the FIFO of runnable processes waiting for it.
type schedCPU struct {
	id   int
	cur  *Proc            // nil while idle
	runq ring.List[*Proc] // waiters, front = next to dispatch

	switches int64 // dispatches off the run queue (involuntary multiplexing)

	// Telemetry handles, nil (free no-ops) when disabled.
	runnable *telemetry.Gauge
	ctxsw    *telemetry.Counter
}

// scheduler is the engine's SMP state; a nil scheduler is the legacy
// uncontended infinite-core model.
type scheduler struct {
	cpus    []schedCPU
	quantum Time
}

// SetCPUs configures n simulated processors with the given round-robin
// quantum (<= 0 selects DefaultQuantum). n <= 0 restores the default
// uncontended model in which Compute is a pure timer. It must be called
// before any process is spawned — scheduling state cannot change under
// running processes.
func (e *Engine) SetCPUs(n int, quantum Time) {
	if e.spawned != 0 {
		panic("sim: SetCPUs after processes have spawned")
	}
	if n <= 0 {
		e.sched = nil
		return
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	s := &scheduler{quantum: quantum, cpus: make([]schedCPU, n)}
	for i := range s.cpus {
		s.cpus[i].id = i
	}
	e.sched = s
	e.instrumentSched()
}

// CPUs returns the number of simulated processors (0 = the uncontended
// infinite-core model).
func (e *Engine) CPUs() int {
	if e.sched == nil {
		return 0
	}
	return len(e.sched.cpus)
}

// Quantum returns the round-robin timeslice (0 when no CPUs are
// configured).
func (e *Engine) Quantum() Time {
	if e.sched == nil {
		return 0
	}
	return e.sched.quantum
}

// ContextSwitches returns the total run-queue dispatches across all
// CPUs — the involuntary multiplexing the contended model introduces.
func (e *Engine) ContextSwitches() int64 {
	var n int64
	if e.sched != nil {
		for i := range e.sched.cpus {
			n += e.sched.cpus[i].switches
		}
	}
	return n
}

// instrumentSched creates the per-CPU telemetry handles. Called from
// both SetTelemetry and SetCPUs so the order of the two doesn't matter.
func (e *Engine) instrumentSched() {
	if e.tel == nil || e.sched == nil {
		return
	}
	for i := range e.sched.cpus {
		c := &e.sched.cpus[i]
		c.runnable = e.tel.Gauge(fmt.Sprintf("sched.cpu%d.runnable", i))
		c.ctxsw = e.tel.Counter(fmt.Sprintf("sched.cpu%d.switches", i))
	}
}

// schedBusy counts processes on CPU or queued — the scheduler half of
// the engine's quiescence invariant.
func (e *Engine) schedBusy() int {
	n := 0
	if e.sched != nil {
		for i := range e.sched.cpus {
			c := &e.sched.cpus[i]
			if c.cur != nil {
				n++
			}
			n += c.runq.Len()
		}
	}
	return n
}

// submit hands a process with a pending compute burst (p.left > 0) to
// the scheduler: the lowest-indexed idle CPU runs it immediately;
// otherwise it joins the shortest run queue, ties to the lowest index.
func (s *scheduler) submit(e *Engine, p *Proc) {
	best := -1
	for i := range s.cpus {
		c := &s.cpus[i]
		if c.cur == nil {
			s.assign(e, c, p)
			return
		}
		if best < 0 || c.runq.Len() < s.cpus[best].runq.Len() {
			best = i
		}
	}
	c := &s.cpus[best]
	p.setState(procRunnable)
	p.enq = e.now
	p.cpu = int32(best)
	p.rqh = c.runq.PushBack(p)
	c.runnable.Set(int64(c.runq.Len()))
}

// assign puts p on CPU c and arms its timeslice. p must hold a pending
// burst and c must be idle.
func (s *scheduler) assign(e *Engine, c *schedCPU, p *Proc) {
	c.cur = p
	p.cpu = int32(c.id)
	p.setState(procRunning)
	e.armSlice(p)
}

// dispatch runs the head of c's run queue, if any, attributing the time
// it waited to its request span (run-queue wait is queueing, not
// service).
func (s *scheduler) dispatch(e *Engine, c *schedCPU) {
	if c.runq.Len() == 0 {
		return
	}
	p := c.runq.Remove(c.runq.Front())
	p.rqh = ring.None
	c.runnable.Set(int64(c.runq.Len()))
	c.switches++
	c.ctxsw.Inc()
	p.track.SchedWait(int64(e.now - p.enq))
	s.assign(e, c, p)
}

// armSlice schedules p's next timeslice expiry: the remaining burst,
// capped at the quantum. Slice events come from the event pool (kind
// evSlice), so re-arming allocates nothing. On a sharded engine the
// slice rides the owning CPU's lane — a static, simulation-state-only
// routing, like procLane.
func (e *Engine) armSlice(p *Proc) {
	run := p.left
	if q := e.sched.quantum; run > q {
		run = q
	}
	li := 0
	if e.shard != nil {
		li = 1 + int(p.cpu)%(len(e.lanes)-1)
	}
	ev := e.push(e.now+run, li)
	ev.proc = p
	ev.kind = evSlice
}

// sliceFire handles a timeslice expiry for p (event context). The
// elapsed slice is charged against the burst; a finished process frees
// its CPU (dispatching the next waiter) and resumes, an unfinished one
// either keeps the CPU (empty queue) or rotates to the back of the
// scheduler, round-robin.
func (e *Engine) sliceFire(p *Proc) {
	s := e.sched
	c := &s.cpus[p.cpu]
	run := p.left
	if run > s.quantum {
		run = s.quantum
	}
	p.left -= run
	if p.left == 0 {
		c.cur, p.cpu = nil, -1
		s.dispatch(e, c)
		p.wake()
		return
	}
	if c.runq.Len() == 0 {
		// Uncontended: keep the CPU. Not a context switch.
		e.armSlice(p)
		return
	}
	c.cur, p.cpu = nil, -1
	s.dispatch(e, c)
	s.submit(e, p)
}

// Compute charges d of CPU time to this process. With no CPUs
// configured (the default) it is a pure timer — bursts from concurrent
// processes overlap as if every process had its own processor. With
// SetCPUs(n) the burst contends: the process occupies a simulated CPU
// (queueing behind earlier arrivals when all are busy) and resumes only
// after d of CPU service, round-robin sliced against its competitors.
func (p *Proc) Compute(d Time) {
	if d < 0 {
		panic("sim: negative compute")
	}
	if d == 0 {
		return
	}
	if p.e.sched == nil {
		p.Sleep(d)
		return
	}
	p.left = d
	p.e.sched.submit(p.e, p)
	p.park()
}
