// Command gb-experiments regenerates every table and figure of the
// paper's evaluation on the simulated platforms.
//
// Usage:
//
//	gb-experiments [-scale full|quick|mega] [-parallel N] [-snapshot=bool]
//	               [-shard-parallel N] [-markdown] [-list] [-o file]
//	               [-bench-out file] [-trace file] [-metrics file]
//	               [-audit file] [-profile file] [-cpuprofile file]
//	               [-memprofile file] [-workload list] [id ...]
//
// With no ids, all experiments run in paper order. Available ids:
// table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 mac-accuracy
// priorart-sweeps noise stash slo. -list prints the registered ids
// (with titles) and exits without running anything.
//
// -workload selects which background generators the noise experiment
// runs (comma-separated subset of scan,zipf,hog,web; default all).
//
// Each experiment fans its independent trials (seeds, personalities,
// sweep points) out over a worker pool of -parallel goroutines; every
// trial owns its platform (engine, RNG, virtual clock), so output is
// byte-identical at any pool width. Sweeps whose trials share a platform
// configuration build the aged machine once and fork a copy-on-write
// snapshot per trial; -snapshot=false restores the cold-build-per-trial
// path (output is byte-identical either way). -bench-out records
// per-experiment wall-clock and simulated-time totals as JSON so the
// suite's performance is comparable across revisions.
//
// -shard-parallel N builds every simulated machine on the engine's
// sharded event lanes with an N-wide harvest worker pool — intra-trial
// parallelism for mega-scale event populations. 0 (the default) is the
// serial single-lane engine; output is byte-identical at any value, so
// the flag only changes wall-clock time. -scale mega runs the full-size
// machine with a 200k-process swarm in every noise trial, the workload
// the lanes are built for.
//
// -trace and -metrics enable the telemetry subsystem on every platform
// the experiments build: -trace writes a Chrome trace_event JSON file
// (loadable in about://tracing or https://ui.perfetto.dev), -metrics a
// deterministic counters/histograms snapshot (JSON when the path ends in
// .json, aligned text otherwise). Both files are byte-identical at any
// -parallel width.
//
// -audit scores every ICL prediction against the simulator's ground
// truth (the oracle the real paper never had) and writes the accuracy
// report as JSON. -profile writes a folded-stack virtual-time profile —
// feed it to flamegraph.pl or https://www.speedscope.app — and prints a
// top-span table to stderr. Both are byte-identical at any -parallel
// width too.
//
// -profile attributes virtual (simulated) time; -cpuprofile and
// -memprofile attribute real machine cost. -cpuprofile samples the
// run's actual CPU and -memprofile snapshots heap allocations at exit;
// both write standard pprof files for `go tool pprof`. They answer the
// complementary question — not "where does the simulated workload spend
// its day" but "what does the simulator itself burn cycles and garbage
// on" — and they are how the zero-allocation kernel hot paths in
// internal/cache, internal/vm, and internal/ring were found and proven.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"graybox/internal/audit"
	"graybox/internal/bench"
	"graybox/internal/experiments"
	"graybox/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main's body, returning the exit code instead of calling
// os.Exit so deferred cleanup — stopping the CPU profiler, flushing the
// heap profile — runs on every exit path.
func run(args []string) int {
	cfg, err := parseConfig(args, os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0 // usage already printed by the flag set
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "[cpu profile written to %s]\n", cfg.cpuProfile)
		}()
	}
	if cfg.memProfile != "" {
		defer func() {
			runtime.GC() // flush unreachable objects so live-heap numbers are honest
			if err := writeFileWith(cfg.memProfile, func(w io.Writer) error {
				return pprof.Lookup("allocs").WriteTo(w, 0)
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Fprintf(os.Stderr, "[mem profile written to %s]\n", cfg.memProfile)
		}()
	}
	if cfg.list {
		for _, r := range experiments.All() {
			fmt.Printf("%-16s %s\n", r.ID, r.Title)
		}
		return 0
	}
	experiments.SetParallelism(cfg.parallel)
	experiments.SetSnapshotReuse(cfg.snapshot)
	experiments.EnableTelemetry(cfg.telemetryOn())
	experiments.EnableAudit(cfg.auditPath != "")

	var out io.Writer = os.Stdout
	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		out = f
	}

	report := bench.Report{
		Scale:      cfg.scale.Name,
		Parallel:   experiments.Parallelism(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var allRegs []*telemetry.Registry
	var allAuds []*audit.Auditor
	suiteStart := time.Now()
	experiments.TakeVirtualTime() // reset the accumulator
	experiments.TakeTelemetry()
	experiments.TakeAudits()
	for _, r := range cfg.runners {
		start := time.Now()
		tab := r.Run(cfg.scale)
		elapsed := time.Since(start)
		virtual := experiments.TakeVirtualTime()
		// Drain per experiment so each registry's label carries the
		// experiment id and the file keeps run order.
		for _, reg := range experiments.TakeTelemetry() {
			reg.SetLabel(r.ID + " | " + reg.Label())
			allRegs = append(allRegs, reg)
		}
		for _, aud := range experiments.TakeAudits() {
			aud.SetLabel(r.ID + " | " + aud.Label())
			allAuds = append(allAuds, aud)
		}
		if cfg.markdown {
			fmt.Fprintln(out, tab.Markdown())
		} else {
			fmt.Fprintln(out, tab)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v wall-clock (%v simulated) at scale %s]\n",
			r.ID, elapsed.Round(time.Millisecond), virtual, cfg.scale.Name)
		report.Experiments = append(report.Experiments, bench.Entry{
			ID:        r.ID,
			WallMS:    float64(elapsed.Microseconds()) / 1000,
			VirtualMS: virtual.Millis(),
		})
	}
	report.TotalWallMS = float64(time.Since(suiteStart).Microseconds()) / 1000

	if cfg.tracePath != "" {
		if err := writeFileWith(cfg.tracePath, func(w io.Writer) error {
			return telemetry.WriteChromeTrace(w, allRegs)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[trace written to %s]\n", cfg.tracePath)
	}
	if cfg.metricsPath != "" {
		write := telemetry.WriteMetricsText
		if strings.HasSuffix(cfg.metricsPath, ".json") {
			write = telemetry.WriteMetricsJSON
		}
		if err := writeFileWith(cfg.metricsPath, func(w io.Writer) error {
			return write(w, allRegs)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[metrics written to %s]\n", cfg.metricsPath)
	}
	if cfg.profilePath != "" {
		if err := writeFileWith(cfg.profilePath, func(w io.Writer) error {
			return telemetry.WriteFolded(w, allRegs)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[profile written to %s]\n", cfg.profilePath)
		if err := telemetry.WriteTopTable(os.Stderr, allRegs, 20); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.auditPath != "" {
		if err := writeFileWith(cfg.auditPath, func(w io.Writer) error {
			return audit.WriteJSON(w, allAuds)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[audit report written to %s]\n", cfg.auditPath)
	}

	if cfg.benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[bench report written to %s]\n", cfg.benchOut)
	}
	return 0
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
