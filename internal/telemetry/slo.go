package telemetry

// SLO tracks a virtual-time latency objective: every observed latency is
// compared against a fixed threshold, violations are counted, and the
// virtual time of the first violation is stamped — the "how long until
// the system first broke its promise" figure an admission-control
// experiment reports. All methods are nil-safe; a nil *SLO is the
// disabled handle.
type SLO struct {
	reg        *Registry
	threshold  int64
	total      int64
	violations int64
	firstAt    int64 // virtual ns of the first violation; -1 until then
}

// SLO returns (creating if needed) the named SLO tracker with the given
// threshold in virtual nanoseconds. Re-registering an existing tracker
// with a different threshold panics: two call sites disagreeing about
// the objective is a bug, not a preference (mirrors the Histogram
// bounds-mismatch rule).
func (r *Registry) SLO(name string, thresholdNS int64) *SLO {
	if r == nil {
		return nil
	}
	if r.slos == nil {
		r.slos = make(map[string]*SLO)
	}
	s := r.slos[name]
	if s == nil {
		s = &SLO{reg: r, threshold: thresholdNS, firstAt: -1}
		r.slos[name] = s
		return s
	}
	if s.threshold != thresholdNS {
		panic("telemetry: SLO re-registered with different threshold: " + name)
	}
	return s
}

// Observe records one latency against the objective.
func (s *SLO) Observe(latencyNS int64) {
	if s == nil {
		return
	}
	s.total++
	if latencyNS > s.threshold {
		s.violations++
		if s.firstAt < 0 {
			s.firstAt = s.reg.clock()
		}
	}
}

// Threshold returns the objective in virtual nanoseconds (0 for nil).
func (s *SLO) Threshold() int64 {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Total returns how many latencies were observed (0 for nil).
func (s *SLO) Total() int64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Violations returns how many observations exceeded the threshold.
func (s *SLO) Violations() int64 {
	if s == nil {
		return 0
	}
	return s.violations
}

// FirstViolation returns the virtual time of the first violation, or -1
// if the objective has never been violated (also -1 for nil).
func (s *SLO) FirstViolation() int64 {
	if s == nil {
		return -1
	}
	return s.firstAt
}
