package simos

import (
	"fmt"
	"testing"

	"graybox/internal/sim"
)

// small returns a small machine for fast tests: 32 MB RAM, 8 MB kernel.
func small(p Personality) Config {
	return Config{Personality: p, MemoryMB: 32, KernelMB: 8, NetBSDCacheMB: 4, CacheFloorMB: 1}
}

func TestPersonalitiesConstruct(t *testing.T) {
	for _, p := range []Personality{Linux22, NetBSD15, Solaris7} {
		s := New(small(p))
		if s.Personality() != p {
			t.Errorf("personality = %v", s.Personality())
		}
		if s.NumDisks() != 1 {
			t.Errorf("disks = %d", s.NumDisks())
		}
	}
}

func TestDefaultMachineMatchesPaper(t *testing.T) {
	s := New(Config{})
	// 896 MB - 66 MB kernel = 830 MB of frames.
	if got := s.Pool.Capacity() * s.PageSize() / MB; got != 830 {
		t.Errorf("pool = %d MB, want 830", got)
	}
	if s.AvailableMB() != 830 {
		t.Errorf("available = %d MB, want 830", s.AvailableMB())
	}
}

func TestRunSingleProcess(t *testing.T) {
	s := New(small(Linux22))
	var elapsed sim.Time
	err := s.Run("app", func(os *OS) {
		start := os.Now()
		fd, err := os.Create("hello")
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(0, 4096); err != nil {
			t.Fatal(err)
		}
		if err := fd.Read(0, 4096); err != nil {
			t.Fatal(err)
		}
		elapsed = os.Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("no virtual time charged")
	}
}

func TestMountRouting(t *testing.T) {
	s := New(Config{Personality: Linux22, MemoryMB: 64, KernelMB: 8, NumDisks: 3})
	err := s.Run("app", func(os *OS) {
		for i := 0; i < 3; i++ {
			path := fmt.Sprintf("/mnt%d/file", i)
			if i == 0 {
				path = "file0" // disk 0 is the root
			}
			if _, err := os.Create(path); err != nil {
				t.Fatalf("create %s: %v", path, err)
			}
		}
		if _, err := os.Open("/mnt1/file"); err != nil {
			t.Errorf("mnt1 open: %v", err)
		}
		if _, err := os.Open("/mnt9/file"); err == nil {
			t.Error("bogus mount resolved")
		}
		if err := os.Rename("/mnt1/file", "/mnt2/other"); err == nil {
			t.Error("cross-device rename succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.FS(1).StatCalls != 0 {
		t.Error("unexpected stat calls")
	}
}

func TestNetBSDCacheIsSmallAndPrivate(t *testing.T) {
	s := New(small(NetBSD15))
	err := s.Run("app", func(os *OS) {
		fd, _ := os.Create("big")
		// Write 8 MB through a 4 MB cache.
		if err := fd.Write(0, 8*MB); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, cap := s.Cache.Len(), 4*MB/s.PageSize(); got > cap {
		t.Errorf("cache holds %d pages, cap %d", got, cap)
	}
	if s.Cache.Held() != 0 {
		t.Error("NetBSD cache should hold no pool frames")
	}
}

func TestLinuxCacheGrowsToMostOfMemory(t *testing.T) {
	s := New(small(Linux22))
	err := s.Run("app", func(os *OS) {
		fd, _ := os.Create("big")
		if err := fd.Write(0, 20*MB); err != nil { // 24 MB pool
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cache.Len() * s.PageSize() / MB; got < 18 {
		t.Errorf("cache = %d MB, want ~20 (unified cache uses most of memory)", got)
	}
}

func TestMemoryPressureShrinksCacheThenSwaps(t *testing.T) {
	s := New(small(Linux22)) // 24 MB pool
	err := s.Run("app", func(os *OS) {
		fd, _ := os.Create("big")
		if err := fd.Write(0, 20*MB); err != nil {
			t.Fatal(err)
		}
		cacheBefore := s.Cache.Len()
		// Allocate 16 MB anon: cache must shrink.
		m := os.Malloc(16 * MB)
		os.TouchRange(m, 0, m.Pages(), true)
		if s.Cache.Len() >= cacheBefore {
			t.Errorf("cache did not shrink under pressure: %d -> %d", cacheBefore, s.Cache.Len())
		}
		if os.ResidentPages(m) != int(m.Pages()) {
			t.Errorf("fresh anon not fully resident: %d/%d", os.ResidentPages(m), m.Pages())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.VM.Stats().SwapOuts != 0 {
		t.Errorf("swapped %d pages while cache had clean pages to give", s.VM.Stats().SwapOuts)
	}
}

func TestSwapHappensWhenAnonExceedsMemory(t *testing.T) {
	s := New(small(Linux22)) // 24 MB pool
	err := s.Run("app", func(os *OS) {
		m := os.Malloc(30 * MB)
		os.TouchRange(m, 0, m.Pages(), true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.VM.Stats().SwapOuts == 0 {
		t.Error("no swap despite 30 MB anon in 24 MB pool")
	}
	if s.SwapDisk().Stats().Writes == 0 {
		t.Error("swap disk never written")
	}
}

func TestDropCachesAndAvailable(t *testing.T) {
	s := New(small(Linux22))
	err := s.Run("app", func(os *OS) {
		fd, _ := os.Create("f")
		fd.Write(0, 4*MB)
		avail := s.AvailableMB()
		if avail < 20 {
			t.Errorf("available = %d MB, want ~23 (clean cache is reclaimable)", avail)
		}
		s.DropCaches()
		if s.Cache.Len() != 0 {
			t.Error("cache not dropped")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	s := New(small(Linux22))
	var aDone, bDone sim.Time
	pa := s.Spawn("a", 0, func(os *OS) {
		fd, _ := os.Create("fa")
		fd.Write(0, MB)
		aDone = os.Now()
	})
	pb := s.Spawn("b", 0, func(os *OS) {
		fd, _ := os.Create("fb")
		fd.Write(0, MB)
		bDone = os.Now()
	})
	s.Engine.WaitAll(pa, pb)
	if pa.Err() != nil || pb.Err() != nil {
		t.Fatal(pa.Err(), pb.Err())
	}
	if aDone == 0 || bDone == 0 {
		t.Error("processes did not complete")
	}
}

func TestProbeTimingThroughFacade(t *testing.T) {
	s := New(small(Linux22))
	err := s.Run("probe", func(os *OS) {
		fd, err := os.Create("data")
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(0, MB); err != nil {
			t.Fatal(err)
		}
		s.DropCaches()
		t0 := os.Now()
		fd.ReadByteAt(512 * 1024)
		cold := os.Now() - t0
		t0 = os.Now()
		fd.ReadByteAt(512 * 1024)
		warm := os.Now() - t0
		if cold < 20*warm {
			t.Errorf("no bimodal probe signal: cold %v warm %v", cold, warm)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
