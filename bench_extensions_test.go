// Benchmarks for the extension layers: the interposition-based shadow
// detector (Section 6), the AFS prefetch trick (Section 2.2), and the
// disk scheduler's interaction with layout-aware ordering.
package graybox_test

import (
	"fmt"
	"testing"

	"graybox"
	"graybox/internal/afs"
	"graybox/internal/core/fldc"
	"graybox/internal/disk"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// BenchmarkShadowVsProbeOrdering compares the two ways of learning cache
// contents: the shadow model (zero probes, but blind to outside I/O)
// against FCCD probing (pays probe time, always correct). The reported
// metrics show the trade-off on a workload where 25% of I/O bypasses
// the layer.
func BenchmarkShadowVsProbeOrdering(b *testing.B) {
	var shadowAcc, probeAcc float64
	var probeCost graybox.Time
	for i := 0; i < b.N; i++ {
		p := smallPlatform()
		err := p.Run("bench", func(os *graybox.Proc) {
			os.Mkdir("d")
			var paths []string
			for j := 0; j < 12; j++ {
				path := fmt.Sprintf("d/f%02d", j)
				fd, _ := os.Create(path)
				fd.Write(0, 2*graybox.MB)
				paths = append(paths, path)
			}
			big, _ := os.Create("big")
			big.Write(0, 48*graybox.MB)
			p.DropCaches()
			sh := graybox.NewShadow(os, graybox.ShadowConfig{
				CacheBytes: int64(p.Pool.Capacity()) * int64(p.PageSize()),
			})
			// Through the layer: files 0-5. The model believes they stay
			// cached.
			for j := 0; j <= 5; j++ {
				fd, _ := os.Open(paths[j])
				sh.Read(fd, 0, fd.Size())
			}
			// Outside the layer: a 48 MB stream displaces most of them.
			big.Read(0, big.Size())
			big.Read(0, big.Size())

			truth := func(path string) bool {
				bm, _ := p.FS(0).PresenceBitmap(path)
				n := 0
				for _, c := range bm {
					if c {
						n++
					}
				}
				return n > len(bm)/2
			}
			// Shadow classification: model fraction > 0.5.
			correct := 0
			for _, path := range paths {
				frac, err := sh.PredictedFraction(path)
				if err != nil {
					b.Fatal(err)
				}
				if (frac > 0.5) == truth(path) {
					correct++
				}
			}
			shadowAcc = float64(correct) / float64(len(paths))
			// Probe classification: timed probes against a generous
			// memory/disk threshold.
			det := graybox.NewFCCD(os, graybox.FCCDConfig{AccessUnit: 2 * graybox.MB, PredictionUnit: graybox.MB, Seed: uint64(i)})
			sw := graybox.NewStopwatch(os)
			probes, err := det.OrderFiles(paths)
			if err != nil {
				b.Fatal(err)
			}
			probeCost = sw.Elapsed()
			correct = 0
			for _, pr := range probes {
				if (pr.ProbeTime < 200*graybox.Microsecond) == truth(pr.Path) {
					correct++
				}
			}
			probeAcc = float64(correct) / float64(len(paths))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shadowAcc*100, "shadow-accuracy-%")
	b.ReportMetric(probeAcc*100, "probe-accuracy-%")
	b.ReportMetric(probeCost.Millis(), "probe-cost-virtual-ms")
}

// BenchmarkAFSPrefetch measures the one-byte whole-file prefetch trick:
// serial fetch-then-compute vs overlapped.
func BenchmarkAFSPrefetch(b *testing.B) {
	var serial, overlapped sim.Time
	for i := 0; i < b.N; i++ {
		run := func(prefetch bool) sim.Time {
			e := sim.NewEngine(uint64(i))
			c := afs.NewClient(e, afs.DefaultConfig())
			var files []string
			for j := 0; j < 8; j++ {
				name := fmt.Sprintf("f%d", j)
				c.Register(name, 4<<20)
				files = append(files, name)
			}
			pr := e.Go("work", func(p *sim.Proc) {
				perByte := sim.Time(1000)
				if prefetch {
					pf := afs.NewPrefetcher(c)
					if err := pf.Process(p, files, perByte); err != nil {
						b.Error(err)
					}
				} else {
					if err := afs.ProcessSequential(c, p, files, perByte); err != nil {
						b.Error(err)
					}
				}
			})
			e.WaitAll(pr)
			end := e.Now()
			e.Run() // drain the helper
			return end
		}
		serial = run(false)
		overlapped = run(true)
	}
	b.ReportMetric(serial.Seconds(), "serial-virtual-s")
	b.ReportMetric(overlapped.Seconds(), "prefetch-virtual-s")
}

// BenchmarkDiskSchedulerVsLayout measures how much i-number ordering
// matters under each disk scheduler: an OS-side SSTF/LOOK queue can
// recover some of the seek savings that application-side ordering
// provides, but only when a backlog exists — the single-process reads
// of the paper's Figure 5 leave nothing queued, so the gray-box
// ordering still wins.
func BenchmarkDiskSchedulerVsLayout(b *testing.B) {
	measure := func(sched disk.Scheduler, ordered bool) sim.Time {
		cfg := simos.Config{Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1}
		s := simos.New(cfg)
		s.DataDisk(0).SetScheduler(sched)
		var paths []string
		mustMk := func(err error) {
			if err != nil {
				b.Fatal(err)
			}
		}
		var elapsed sim.Time
		err := s.Run("bench", func(os *simos.OS) {
			mustMk(os.Mkdir("d"))
			for j := 0; j < 120; j++ {
				fd, err := os.Create(fmt.Sprintf("d/f%03d", j))
				mustMk(err)
				mustMk(fd.Write(0, 8192))
			}
			names, _ := os.Readdir("d")
			paths = paths[:0]
			for _, n := range names {
				paths = append(paths, "d/"+n)
			}
			order := append([]string(nil), paths...)
			if ordered {
				var err error
				order, err = fldc.New(os).OrderByINumber(order)
				mustMk(err)
			} else {
				sim.NewRNG(9).Shuffle(len(order), func(a, c int) { order[a], order[c] = order[c], order[a] })
			}
			s.DropCaches()
			sw := os.Now()
			for _, path := range order {
				fd, err := os.Open(path)
				mustMk(err)
				mustMk(fd.Read(0, fd.Size()))
			}
			elapsed = os.Now() - sw
		})
		if err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	var fcfsRandom, fcfsOrdered, sstfRandom sim.Time
	for i := 0; i < b.N; i++ {
		fcfsRandom = measure(disk.FCFS, false)
		fcfsOrdered = measure(disk.FCFS, true)
		sstfRandom = measure(disk.SSTF, false)
	}
	b.ReportMetric(fcfsRandom.Millis(), "fcfs-random-virtual-ms")
	b.ReportMetric(fcfsOrdered.Millis(), "fcfs-inorder-virtual-ms")
	b.ReportMetric(sstfRandom.Millis(), "sstf-random-virtual-ms")
}
