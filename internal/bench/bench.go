// Package bench defines the BENCH_*.json report the experiment suite
// emits (-bench-out) and the regression comparison gb-bench performs
// between two such reports. The comparison combines per-experiment
// threshold checks on wall-clock time with a suite-level paired sign
// test (stats.SignTest): a single experiment may be noisy, but the
// whole suite drifting slower in a statistically significant way is a
// regression even when no single experiment trips its threshold.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"graybox/internal/stats"
)

// Entry is one experiment's timing record.
type Entry struct {
	ID        string  `json:"id"`
	WallMS    float64 `json:"wall_ms"`
	VirtualMS float64 `json:"virtual_ms"`
}

// Report is the -bench-out document of one suite run.
type Report struct {
	Scale       string  `json:"scale"`
	Parallel    int     `json:"parallel"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Experiments []Entry `json:"experiments"`
	TotalWallMS float64 `json:"total_wall_ms"`
}

// Load reads a report from a BENCH_*.json file.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	return r, nil
}

// Thresholds tunes what counts as a regression.
type Thresholds struct {
	// MaxRatio fails an experiment whose wall time grew beyond
	// new/old > MaxRatio (default 1.5 — wall clock on shared CI runners
	// is noisy, so the gate is deliberately loose).
	MaxRatio float64
	// MinDeltaMS ignores growth smaller than this many milliseconds, so
	// microsecond-scale experiments cannot trip the ratio on noise
	// (default 100).
	MinDeltaMS float64
	// Alpha is the significance level of the suite-level sign test
	// (default 0.05).
	Alpha float64
	// PerID overrides MaxRatio for specific experiment ids.
	PerID map[string]float64
}

// DefaultThresholds returns the documented defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxRatio: 1.5, MinDeltaMS: 100, Alpha: 0.05}
}

func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.MaxRatio <= 0 {
		t.MaxRatio = d.MaxRatio
	}
	if t.MinDeltaMS <= 0 {
		t.MinDeltaMS = d.MinDeltaMS
	}
	if t.Alpha <= 0 {
		t.Alpha = d.Alpha
	}
	return t
}

func (t Thresholds) ratioFor(id string) float64 {
	if r, ok := t.PerID[id]; ok && r > 0 {
		return r
	}
	return t.MaxRatio
}

// Delta is one experiment's old-vs-new comparison.
type Delta struct {
	ID                   string
	OldWallMS, NewWallMS float64
	Ratio                float64 // new/old (0 when old is 0)
	Limit                float64 // the ratio threshold applied
	FloorMS              float64 // the noise floor applied: growth below this is ignored
	Regressed            bool
	VirtualChanged       bool // virtual_ms differs: behavior changed, not just speed
	OldVirtualMS         float64
	NewVirtualMS         float64
}

// Result is the full comparison verdict.
type Result struct {
	Deltas []Delta
	// Missing lists ids present in only one report (warned, not failed:
	// experiments come and go across revisions).
	MissingInNew, MissingInOld []string
	// Sign test over paired wall times: Plus counts experiments that got
	// slower, Minus faster; P is the two-sided p-value.
	Plus, Minus int
	P           float64
	SuiteSlower bool // significant suite-wide slowdown
	Regressed   bool // the overall verdict
}

// Compare diffs two reports under the given thresholds.
func Compare(oldR, newR Report, th Thresholds) Result {
	th = th.withDefaults()
	var res Result
	newByID := make(map[string]Entry, len(newR.Experiments))
	for _, e := range newR.Experiments {
		newByID[e.ID] = e
	}
	oldByID := make(map[string]Entry, len(oldR.Experiments))
	var oldWall, newWall []float64
	for _, oe := range oldR.Experiments {
		oldByID[oe.ID] = oe
		ne, ok := newByID[oe.ID]
		if !ok {
			res.MissingInNew = append(res.MissingInNew, oe.ID)
			continue
		}
		d := Delta{
			ID: oe.ID, OldWallMS: oe.WallMS, NewWallMS: ne.WallMS,
			Limit:        th.ratioFor(oe.ID),
			FloorMS:      th.MinDeltaMS,
			OldVirtualMS: oe.VirtualMS, NewVirtualMS: ne.VirtualMS,
			VirtualChanged: oe.VirtualMS != ne.VirtualMS,
		}
		if oe.WallMS > 0 {
			d.Ratio = ne.WallMS / oe.WallMS
		}
		if ne.WallMS-oe.WallMS >= th.MinDeltaMS && d.Ratio > d.Limit {
			d.Regressed = true
			res.Regressed = true
		}
		res.Deltas = append(res.Deltas, d)
		oldWall = append(oldWall, oe.WallMS)
		newWall = append(newWall, ne.WallMS)
	}
	for _, ne := range newR.Experiments {
		if _, ok := oldByID[ne.ID]; !ok {
			res.MissingInOld = append(res.MissingInOld, ne.ID)
		}
	}
	sort.Strings(res.MissingInNew)
	sort.Strings(res.MissingInOld)

	// Suite-level drift: a significant majority of experiments slower,
	// and by a total that clears the noise floor.
	res.Plus, res.Minus, res.P = stats.SignTest(newWall, oldWall)
	totalDelta := sum(newWall) - sum(oldWall)
	if res.P <= th.Alpha && res.Plus > res.Minus && totalDelta >= th.MinDeltaMS {
		res.SuiteSlower = true
		res.Regressed = true
	}
	return res
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Write renders the comparison as the gb-bench report: a per-experiment
// table (including the ratio limit and noise floor each row was judged
// against), warnings, the sign-test summary, and the PASS/FAIL verdict.
func (res Result) Write(w io.Writer) error {
	fmt.Fprintf(w, "%-16s %12s %12s %8s %8s %9s  %s\n",
		"experiment", "old_ms", "new_ms", "ratio", "limit", "floor_ms", "status")
	for _, d := range res.Deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSED"
		}
		fmt.Fprintf(w, "%-16s %12.3f %12.3f %8.3f %8.2f %9.1f  %s\n",
			d.ID, d.OldWallMS, d.NewWallMS, d.Ratio, d.Limit, d.FloorMS, status)
	}
	for _, d := range res.Deltas {
		if d.VirtualChanged {
			fmt.Fprintf(w, "warning: %s virtual time changed %.3f -> %.3f ms "+
				"(simulation is deterministic: behavior changed, not just speed)\n",
				d.ID, d.OldVirtualMS, d.NewVirtualMS)
		}
	}
	for _, id := range res.MissingInNew {
		fmt.Fprintf(w, "warning: %s present only in the old report\n", id)
	}
	for _, id := range res.MissingInOld {
		fmt.Fprintf(w, "warning: %s present only in the new report\n", id)
	}
	fmt.Fprintf(w, "sign test: %d slower, %d faster, p=%.4f", res.Plus, res.Minus, res.P)
	if res.SuiteSlower {
		fmt.Fprintf(w, " — suite-wide slowdown")
	}
	fmt.Fprintln(w)
	verdict := "PASS"
	if res.Regressed {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintln(w, verdict)
	return err
}
