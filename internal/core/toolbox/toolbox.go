// Package toolbox is the "gray toolbox" of Section 5: the shared
// machinery ICLs need — a fast high-resolution timer, a persistent
// repository of microbenchmarked platform parameters, and the
// configuration microbenchmarks that fill it.
//
// Each microbenchmark needs to run only once per platform; ICLs then look
// parameters up in the shared repository ("all of our microbenchmarks
// report performance numbers in a common format kept in persistent
// storage").
package toolbox

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Well-known repository keys. Values are nanoseconds unless stated.
const (
	KeySeqBandwidthMBps = "disk.seq_bandwidth_mbps" // MB/s, not ns
	KeyDiskProbeNS      = "disk.page_probe_ns"
	KeyCacheProbeNS     = "mem.cache_probe_ns"
	KeyPageCopyNS       = "mem.page_copy_ns"
	KeyTouchResidentNS  = "vm.touch_resident_ns"
	KeyZeroFillNS       = "vm.zero_fill_ns"
	KeyAccessUnitBytes  = "fccd.access_unit_bytes"
)

// Repository is the persistent parameter store. The zero value is not
// usable; call NewRepository.
type Repository struct {
	Platform string             `json:"platform"`
	Values   map[string]float64 `json:"values"`
}

// NewRepository returns an empty store labeled with the platform name.
func NewRepository(platform string) *Repository {
	return &Repository{Platform: platform, Values: make(map[string]float64)}
}

// Set stores a parameter.
func (r *Repository) Set(key string, v float64) { r.Values[key] = v }

// Get fetches a parameter; ok is false when the microbenchmark that
// produces it has not been run.
func (r *Repository) Get(key string) (v float64, ok bool) {
	v, ok = r.Values[key]
	return v, ok
}

// GetDuration fetches a nanosecond parameter as a sim.Time.
func (r *Repository) GetDuration(key string) (sim.Time, bool) {
	v, ok := r.Values[key]
	return sim.Time(v), ok
}

// Save serializes the repository as JSON.
func (r *Repository) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a repository previously written by Save.
func Load(rd io.Reader) (*Repository, error) {
	var r Repository
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("toolbox: load repository: %w", err)
	}
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	return &r, nil
}

// Keys returns the stored keys, sorted.
func (r *Repository) Keys() []string {
	ks := make([]string, 0, len(r.Values))
	for k := range r.Values {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Stopwatch measures elapsed virtual time with the platform's cheap
// timer (the rdtsc-equivalent of Section 5, "Measuring Output").
type Stopwatch struct {
	os    *simos.OS
	start sim.Time
}

// NewStopwatch starts a stopwatch.
func NewStopwatch(os *simos.OS) *Stopwatch {
	return &Stopwatch{os: os, start: os.Now()}
}

// Reset restarts the stopwatch and returns the lap time.
func (s *Stopwatch) Reset() sim.Time {
	now := s.os.Now()
	d := now - s.start
	s.start = now
	return d
}

// Elapsed returns time since start (or last Reset).
func (s *Stopwatch) Elapsed() sim.Time { return s.os.Now() - s.start }
