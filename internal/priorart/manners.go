package priorart

import (
	"graybox/internal/sim"
	"graybox/internal/stats"
)

// --- MS Manners ---
//
// Gray-box knowledge: one process competing with another degrades the
// other's progress roughly symmetrically to its own. Observed output:
// the low-importance process's own reported progress. Statistics: a
// regression-derived expectation of uncontended progress, exponential
// averaging, and the paired-sample sign test. Control: suspend the
// low-importance job when contention is inferred.

// MannersConfig describes the regulated low-importance job and a
// high-importance foreground job that arrives partway through.
type MannersConfig struct {
	Quantum sim.Time // CPU slice per progress step
	// BaselineSteps is how many uncontended steps are measured first to
	// establish expected progress.
	BaselineSteps int
	// Duration of the whole experiment.
	Duration sim.Time
	// ForegroundStart/ForegroundEnd bound the high-importance activity.
	ForegroundStart, ForegroundEnd sim.Time
	// DegradeThreshold is the fraction of expected progress below which
	// Manners suspends (e.g. 0.7).
	DegradeThreshold float64
	// SuspendFor is how long the low-importance job sleeps when it
	// detects contention.
	SuspendFor sim.Time
	// Regulate enables the Manners policy; false runs unregulated.
	Regulate bool
	Seed     uint64
}

// DefaultMannersConfig returns the base setup.
func DefaultMannersConfig() MannersConfig {
	return MannersConfig{
		Quantum:          10 * sim.Millisecond,
		BaselineSteps:    20,
		Duration:         20 * sim.Second,
		ForegroundStart:  5 * sim.Second,
		ForegroundEnd:    15 * sim.Second,
		DegradeThreshold: 0.7,
		SuspendFor:       500 * sim.Millisecond,
		Regulate:         true,
	}
}

// MannersResult reports how both jobs fared.
type MannersResult struct {
	// ForegroundSlowdown is foreground work time with the background
	// present divided by its dedicated time, during the contention
	// window.
	ForegroundSteps int64
	BackgroundSteps int64
	Suspensions     int64
	// SignTestP is the paired-sample sign-test p-value comparing
	// contended step times against the baseline (small means clearly
	// degraded — the statistic MS Manners uses).
	SignTestP float64
}

// RunManners simulates one CPU shared round-robin by a low-importance
// process (regulated by Manners) and a foreground process active during
// [ForegroundStart, ForegroundEnd).
func RunManners(cfg MannersConfig) MannersResult {
	e := sim.NewEngine(cfg.Seed)
	cpu := sim.NewResource(e, 1)
	var res MannersResult

	// Foreground: computes in quanta during its window.
	e.Spawn("fg", cfg.ForegroundStart, func(p *sim.Proc) {
		for p.Now() < cfg.ForegroundEnd {
			cpu.Acquire(p)
			p.Sleep(cfg.Quantum)
			cpu.Release()
			res.ForegroundSteps++
		}
	})

	// Low-importance background regulated by Manners.
	e.Go("bg", func(p *sim.Proc) {
		baseline := stats.Running{}
		avg := stats.NewExpAvg(0.3)
		var baseTimes, recentTimes []float64
		for p.Now() < cfg.Duration {
			t0 := p.Now()
			cpu.Acquire(p)
			p.Sleep(cfg.Quantum)
			cpu.Release()
			stepTime := float64(p.Now() - t0)
			res.BackgroundSteps++

			if baseline.N() < int64(cfg.BaselineSteps) {
				baseline.Add(stepTime)
				baseTimes = append(baseTimes, stepTime)
				continue
			}
			avg.Add(stepTime)
			recentTimes = append(recentTimes, stepTime)
			if len(recentTimes) > cfg.BaselineSteps {
				recentTimes = recentTimes[1:]
			}
			if !cfg.Regulate {
				continue
			}
			// Progress = expected/observed step time. Suspend when the
			// smoothed progress falls below the threshold.
			progress := baseline.Mean() / avg.Value()
			if progress < cfg.DegradeThreshold {
				res.Suspensions++
				p.Sleep(cfg.SuspendFor)
				// After a suspension, restart the recent window.
				avg = stats.NewExpAvg(0.3)
				recentTimes = recentTimes[:0]
			}
		}
		if len(recentTimes) >= 5 {
			_, _, res.SignTestP = stats.SignTest(recentTimes, baseTimes[:len(recentTimes)])
		} else {
			res.SignTestP = 1
		}
	})
	e.Run()
	return res
}
