package afs

import (
	"fmt"
	"testing"

	"graybox/internal/sim"
)

func newClient(cacheMB int64) (*sim.Engine, *Client) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.CacheBytes = cacheMB << 20
	return e, NewClient(e, cfg)
}

func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	pr := e.Go("t", fn)
	e.Run()
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
}

func TestOneByteReadFetchesWholeFile(t *testing.T) {
	e, c := newClient(64)
	c.Register("f", 10<<20)
	var first, second sim.Time
	run(t, e, func(p *sim.Proc) {
		t0 := p.Now()
		if err := c.Read(p, "f", 0, 1); err != nil {
			t.Fatal(err)
		}
		first = p.Now() - t0
		t0 = p.Now()
		if err := c.Read(p, "f", 5<<20, 1); err != nil {
			t.Fatal(err)
		}
		second = p.Now() - t0
	})
	// 10 MB at 1 MB/s: the single byte cost ~10 s.
	if first < 9*sim.Second {
		t.Errorf("first byte took %v, want ~10s (whole-file fetch)", first)
	}
	if second > 10*sim.Millisecond {
		t.Errorf("cached byte took %v, want local speed", second)
	}
	st := c.Stats()
	if st.Fetches != 1 || st.FetchedBytes != 10<<20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWholeFileLRUEviction(t *testing.T) {
	e, c := newClient(25)
	for i := 0; i < 3; i++ {
		c.Register(fmt.Sprintf("f%d", i), 10<<20)
	}
	run(t, e, func(p *sim.Proc) {
		c.Read(p, "f0", 0, 1)
		c.Read(p, "f1", 0, 1)
		c.Read(p, "f2", 0, 1) // must evict f0 (25 MB cache, whole files)
	})
	if c.Cached("f0") {
		t.Error("f0 survived; whole-file LRU broken")
	}
	if !c.Cached("f1") || !c.Cached("f2") {
		t.Error("recent files evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestConcurrentReadersShareOneFetch(t *testing.T) {
	e, c := newClient(64)
	c.Register("f", 10<<20)
	var t1, t2 sim.Time
	p1 := e.Go("r1", func(p *sim.Proc) {
		c.Read(p, "f", 0, 1)
		t1 = p.Now()
	})
	p2 := e.Spawn("r2", sim.Millisecond, func(p *sim.Proc) {
		c.Read(p, "f", 0, 1)
		t2 = p.Now()
	})
	e.WaitAll(p1, p2)
	if c.Stats().Fetches != 1 {
		t.Errorf("fetches = %d, want 1 shared fetch", c.Stats().Fetches)
	}
	if t2 < t1 {
		t.Errorf("piggybacked reader finished before the fetch (%v < %v)", t2, t1)
	}
}

func TestReadValidation(t *testing.T) {
	e, c := newClient(64)
	c.Register("f", 1<<20)
	run(t, e, func(p *sim.Proc) {
		if err := c.Read(p, "missing", 0, 1); err == nil {
			t.Error("read of unknown file succeeded")
		}
		if err := c.Read(p, "f", 0, 2<<20); err == nil {
			t.Error("read beyond EOF succeeded")
		}
	})
}

func TestPrefetchOverlapsFetchWithCompute(t *testing.T) {
	// Files take ~10 s to fetch and ~10 s to process: perfect overlap
	// should approach half the serial time.
	const n = 6
	mk := func() (*sim.Engine, *Client, []string) {
		e, c := newClient(128)
		var files []string
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("f%d", i)
			c.Register(name, 10<<20)
			files = append(files, name)
		}
		return e, c, files
	}
	perByte := sim.Time(1000) // 1 us/KB -> ~10.5 s per 10 MB file

	e1, c1, files1 := mk()
	var serial sim.Time
	run(t, e1, func(p *sim.Proc) {
		if err := ProcessSequential(c1, p, files1, perByte); err != nil {
			t.Fatal(err)
		}
		serial = p.Now()
	})

	e2, c2, files2 := mk()
	var overlapped sim.Time
	var triggered int64
	run(t, e2, func(p *sim.Proc) {
		pf := NewPrefetcher(c2)
		if err := pf.Process(p, files2, perByte); err != nil {
			t.Fatal(err)
		}
		overlapped = p.Now()
		triggered = pf.Triggered
	})

	if overlapped >= serial*3/4 {
		t.Errorf("prefetch %v vs serial %v: expected clear overlap win", overlapped, serial)
	}
	if triggered == 0 {
		t.Error("prefetcher never triggered")
	}
	// Same bytes moved: prefetch does not inflate traffic (whole-file
	// granularity means the one-byte trigger costs nothing extra).
	if c2.Stats().FetchedBytes != c1.Stats().FetchedBytes {
		t.Errorf("prefetch moved %d bytes vs serial %d", c2.Stats().FetchedBytes, c1.Stats().FetchedBytes)
	}
}

func TestProbingAFSIsRuinous(t *testing.T) {
	// The Section 4.1.4 hazard: an FCCD-style probe pass over cold AFS
	// files costs as much as reading everything, because every one-byte
	// probe drags a whole file across the network.
	e, c := newClient(512)
	var files []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("f%d", i)
		c.Register(name, 10<<20)
		files = append(files, name)
	}
	var probePass sim.Time
	run(t, e, func(p *sim.Proc) {
		t0 := p.Now()
		for _, f := range files {
			c.Read(p, f, 0, 1) // "cheap" probe
		}
		probePass = p.Now() - t0
	})
	// 8 x 10 MB at 1 MB/s: the probe pass burned ~80 s of network time.
	if probePass < 70*sim.Second {
		t.Errorf("probe pass took %v; expected whole-file fetches (~80s)", probePass)
	}
	if c.Stats().FetchedBytes != 80<<20 {
		t.Errorf("probes fetched %d bytes", c.Stats().FetchedBytes)
	}
}
