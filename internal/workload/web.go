package workload

import (
	"fmt"
	"math"

	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/telemetry"
)

// WebServer is an open-loop arrival process: requests arrive at
// exponentially distributed intervals whether or not earlier requests
// have finished, the way outside load really behaves. Each request
// reads one corpus file in a short-lived process (file popularity
// optionally Zipf-skewed), optionally processes it through a private
// buffer, and is traced end to end: arrival→completion latency feeds a
// quantile sketch and an SLO tracker, and a request-scoped span tree
// attributes the latency to queueing vs. cache vs. disk vs. app time.
// Arrivals beyond the concurrency cap are dropped (and counted), so a
// saturated system sheds load instead of queueing unboundedly; request
// failures are counted, never swallowed.
type WebServer struct {
	// Label distinguishes multiple servers ("" -> "web").
	Label string
	// Files is the corpus size (default 32).
	Files int
	// FileKB is each file's size (default 64).
	FileKB int64
	// RatePerSec is the arrival rate at intensity 1 (default 200);
	// intensity scales it linearly.
	RatePerSec float64
	// MaxInFlight caps concurrent request processes (default 16).
	MaxInFlight int
	// Limit, when non-nil, overrides MaxInFlight at every arrival — the
	// hook an admission controller (gray-box or otherwise) drives. A
	// non-positive return falls back to MaxInFlight.
	Limit func() int
	// Theta is the Zipf skew of file popularity. 0 keeps the original
	// uniform pick (one Int63n draw), so existing mixes' draw sequences
	// are unchanged; > 0 draws from a CDF with weight(rank k) =
	// 1/(k+1)^Theta (one Float64 draw), the hot-set shape of real
	// serving corpora.
	Theta float64
	// BufKB sizes a per-request processing buffer: after the file is
	// read, the request writes every page of a freshly allocated buffer
	// under an "app" span (0 = no app phase). Under memory pressure
	// those touches fault, which is how tail latency finds the VM.
	BufKB int64
	// CPUPerKB charges render CPU per KB of the served file under an
	// "app" span (0 = no render phase, the historical behavior). With
	// simos.Config.CPUs set, those bursts contend for the simulated
	// processors, so saturation can be a CPU cliff as well as a memory
	// cliff; the run-queue wait surfaces in the request breakdown's
	// Queue stage.
	CPUPerKB sim.Time
	// SLONanos is the per-request latency objective in virtual
	// nanoseconds (0 = no SLO tracking).
	SLONanos int64

	cdf []float64 // Zipf popularity CDF, nil when Theta == 0

	inFlight int
	dropped  int64
	served   int64
	errors   int64

	// Critical-path stage totals over served requests (virtual ns),
	// accumulated from each request's Breakdown. Zero while telemetry
	// is disabled — stage attribution needs spans.
	sumQueue, sumCache, sumDisk, sumApp int64

	// Telemetry handles, nil (free no-ops) when disabled.
	latency    *telemetry.Sketch
	slo        *telemetry.SLO
	stageQueue *telemetry.Counter
	stageCache *telemetry.Counter
	stageDisk  *telemetry.Counter
	stageApp   *telemetry.Counter
	dropCount  *telemetry.Counter
	errCount   *telemetry.Counter
}

func (g *WebServer) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "web"
}

func (g *WebServer) files() int {
	if g.Files > 0 {
		return g.Files
	}
	return 32
}

func (g *WebServer) fileKB() int64 {
	if g.FileKB > 0 {
		return g.FileKB
	}
	return 64
}

func (g *WebServer) path(i int64) string {
	return fmt.Sprintf("wl.%s.%03d", g.Name(), i)
}

// Dropped returns how many arrivals were shed at the concurrency cap.
func (g *WebServer) Dropped() int64 { return g.dropped }

// Served returns how many requests completed.
func (g *WebServer) Served() int64 { return g.served }

// Errors returns how many requests failed (Open or Read errors). A
// failed request is neither served nor dropped.
func (g *WebServer) Errors() int64 { return g.errors }

// Latency returns the served-request latency sketch (nil — safely
// no-op — while telemetry is disabled).
func (g *WebServer) Latency() *telemetry.Sketch { return g.latency }

// SLO returns the latency-objective tracker (nil when SLONanos is 0 or
// telemetry is disabled).
func (g *WebServer) SLO() *telemetry.SLO { return g.slo }

// StageTotals returns the summed critical-path decomposition over all
// served requests: queueing (admission/scheduler/disk-queue waits),
// cache-hit service, disk service, and app processing, in virtual ns.
// All zero while telemetry is disabled.
func (g *WebServer) StageTotals() (queue, cache, disk, app int64) {
	return g.sumQueue, g.sumCache, g.sumDisk, g.sumApp
}

func (g *WebServer) Prepare(s *simos.System) error {
	if g.Theta > 0 {
		n := g.files()
		g.cdf = make([]float64, n)
		total := 0.0
		for k := 0; k < n; k++ {
			total += 1 / math.Pow(float64(k+1), g.Theta)
			g.cdf[k] = total
		}
		for k := range g.cdf {
			g.cdf[k] /= total
		}
	}
	for i := 0; i < g.files(); i++ {
		if _, err := s.FS(0).CreateSized(g.path(int64(i)), g.fileKB()*1024); err != nil {
			return err
		}
	}
	return nil
}

// pick draws the requested file: rank-ordered Zipf when Theta > 0 (file
// 0 most popular), uniform otherwise. Exactly one draw either way, so
// the arrival trace stays a pure function of the RNG stream.
func (g *WebServer) pick(ctx *Ctx) int64 {
	if g.cdf == nil {
		return ctx.Int63n(int64(g.files()))
	}
	u := ctx.Float64()
	lo, hi := 0, len(g.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

// limit returns the in-flight cap for the next arrival.
func (g *WebServer) limit() int {
	if g.Limit != nil {
		if l := g.Limit(); l > 0 {
			return l
		}
	}
	if g.MaxInFlight > 0 {
		return g.MaxInFlight
	}
	return 16
}

func (g *WebServer) Run(ctx *Ctx) {
	os := ctx.OS()
	rate := g.RatePerSec
	if rate == 0 {
		rate = 200
	}
	mean := float64(sim.Second) / (rate * ctx.Intensity())

	reg := os.Telemetry()
	g.latency = reg.Sketch(g.Name() + ".latency_ns")
	g.stageQueue = reg.Counter(g.Name() + ".queue_ns")
	g.stageCache = reg.Counter(g.Name() + ".cache_ns")
	g.stageDisk = reg.Counter(g.Name() + ".disk_ns")
	g.stageApp = reg.Counter(g.Name() + ".app_ns")
	g.dropCount = reg.Counter(g.Name() + ".dropped")
	g.errCount = reg.Counter(g.Name() + ".errors")
	if g.SLONanos > 0 {
		g.slo = reg.SLO(g.Name()+".slo", g.SLONanos)
	}

	reqName := "wl." + g.Name() + ".req"
	for !ctx.Stopped() {
		// Exponential interarrival: -ln(1-u) * mean. Both draws (gap and
		// file pick) happen whether or not the request will be shed, so
		// the arrival sequence is independent of service times.
		u := ctx.Float64()
		gap := sim.Time(-math.Log(1-u) * mean)
		os.Sleep(gap)
		if ctx.Stopped() {
			return
		}
		fi := g.pick(ctx)
		if g.inFlight >= g.limit() {
			g.dropped++
			g.dropCount.Inc()
			continue
		}
		g.inFlight++
		arrival := os.Now()
		ctx.Spawn(reqName, func(ros *simos.OS) {
			defer func() { g.inFlight-- }()
			req := ros.BeginRequest(reqName, arrival)
			ok := g.serve(ros, fi)
			bd := req.Finish()
			if !ok {
				g.errors++
				g.errCount.Inc()
				return
			}
			g.served++
			g.sumQueue += bd.Queue
			g.sumCache += bd.Cache
			g.sumDisk += bd.Disk
			g.sumApp += bd.App
			g.stageQueue.Add(bd.Queue)
			g.stageCache.Add(bd.Cache)
			g.stageDisk.Add(bd.Disk)
			g.stageApp.Add(bd.App)
			total := int64(ros.Now() - arrival)
			g.latency.Observe(total)
			g.slo.Observe(total)
		})
	}
}

// serve performs one request's work; false means the request failed.
func (g *WebServer) serve(ros *simos.OS, fi int64) bool {
	fd, err := ros.Open(g.path(fi))
	if err != nil {
		return false
	}
	size := fd.Size()
	const chunk = 64 * 1024
	for off := int64(0); off < size; off += chunk {
		n := int64(chunk)
		if off+n > size {
			n = size - off
		}
		if fd.Read(off, n) != nil {
			return false
		}
	}
	if g.CPUPerKB > 0 {
		tr := ros.Proc().Track()
		tr.Begin("app", "render")
		ros.Compute(sim.Time((size+1023)/1024) * g.CPUPerKB)
		tr.End()
	}
	if g.BufKB > 0 {
		buf := ros.Malloc(g.BufKB * 1024)
		tr := ros.Proc().Track()
		tr.Begin("app", "process")
		ros.TouchRange(buf, 0, buf.Pages(), true)
		tr.End()
		ros.Free(buf)
	}
	return true
}
