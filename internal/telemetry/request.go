package telemetry

// Request-scoped causal tracing. A RequestSpan is the root of one
// request's span tree on a track: StartRequest opens a root span at the
// request's *arrival* time (which may predate the serving process — the
// queueing delay between arrival and first instruction is part of the
// request), every span the track opens while the request is active is
// stamped with the request id, and End folds each closed span's duration
// into per-stage accumulators. Finish closes the root and runs the
// critical-path pass: the request's total latency is decomposed into
// queueing, cache-hit service, disk service, and application time, with
// the four parts summing exactly to the total.
//
// The RequestSpan lives inside its Track and is reused across requests,
// so the steady-state request path allocates nothing beyond the span log
// itself; with telemetry disabled every call is a nil-check no-op.

// RequestSpan accumulates one in-flight request's per-stage time.
// Obtain it from Track.StartRequest; all methods are nil-safe.
type RequestSpan struct {
	t      *Track
	id     int64
	start  int64 // arrival, virtual ns
	active bool

	syscallNS int64 // closed "syscall" spans (disk + cache + waits inside)
	diskNS    int64 // closed "disk" spans (device service + queue wait)
	diskqNS   int64 // disk queue wait inside those spans (via QueueWait)
	appNS     int64 // closed "app" spans (user-level work on the request)
	// Run-queue wait (via SchedWait) that elapsed inside a syscall or
	// app span, so the critical-path pass can move it from that stage to
	// queueing. Sched wait outside any span already lands in Queue.
	schedSysNS int64
	schedAppNS int64
}

// Breakdown is the critical-path decomposition of one finished request.
// Queue + Cache + Disk + App == Total exactly:
//
//	Queue = Total − syscall − app + diskQueue + schedWait  (admission +
//	        CPU run-queue + disk-queue wait — time the request spent
//	        waiting, not served)
//	Cache = syscall − disk − schedWait(syscall)  (syscall time not spent
//	        at a disk or in a run queue: cache hits, page wiring, copyout)
//	Disk  = disk − diskQueue (device service: seek + rotation + transfer)
//	App   = app − schedWait(app)  (application spans: buffer processing
//	        net of the CPU time they queued for)
type Breakdown struct {
	Total int64
	Queue int64
	Cache int64
	Disk  int64
	App   int64
}

// StartRequest opens a request root span on the track at the explicit
// arrival time start (virtual ns), which may be earlier than now: the
// gap is the admission-queue wait and belongs to the request. Only one
// request may be active per track — tracks are per-process and request
// processes serve one request each. Returns nil (all methods no-ops)
// on a nil track.
func (t *Track) StartRequest(cat, name string, start int64) *RequestSpan {
	if t == nil {
		return nil
	}
	t.reg.nextSpanID++
	t.reg.nextReqID++
	t.open = append(t.open, openSpan{
		cat: cat, name: name, id: t.reg.nextSpanID, start: start,
		req: t.reg.nextReqID,
	})
	r := &t.req
	*r = RequestSpan{t: t, id: t.reg.nextReqID, start: start, active: true}
	return r
}

// Finish closes the request's root span (every child must already be
// closed — the track's span stack nests strictly) and returns the
// critical-path breakdown. Nil-safe: returns the zero Breakdown.
func (r *RequestSpan) Finish() Breakdown {
	if r == nil || !r.active {
		return Breakdown{}
	}
	t := r.t
	// Pop the root span; End stamps it with the request id and will see
	// active==false below, so the root's own duration is not folded into
	// a stage accumulator (it *is* the total).
	r.active = false
	t.End()
	total := t.reg.clock() - r.start
	return Breakdown{
		Total: total,
		Queue: total - r.syscallNS - r.appNS + r.diskqNS + r.schedSysNS + r.schedAppNS,
		Cache: r.syscallNS - r.diskNS - r.schedSysNS,
		Disk:  r.diskNS - r.diskqNS,
		App:   r.appNS - r.schedAppNS,
	}
}

// QueueWait attributes ns of already-elapsed disk-queue waiting to the
// track's active request. The disk layer calls this at dispatch time,
// where the wait is already computed for its own metrics; the time is
// inside the enclosing "disk" span, so the critical-path pass subtracts
// it from device service and adds it to queueing.
func (t *Track) QueueWait(ns int64) {
	if t == nil || !t.req.active {
		return
	}
	t.req.diskqNS += ns
}

// SchedWait attributes ns of already-elapsed CPU run-queue waiting to
// the track's active request. The scheduler calls this at dispatch
// time. Wait that elapsed inside an open "syscall" or "app" span is
// remembered per stage so the critical-path pass can reclassify it as
// queueing; wait outside any span is already queueing (part of
// Total − syscall − app) and needs no adjustment. Nil-safe.
func (t *Track) SchedWait(ns int64) {
	if t == nil || !t.req.active {
		return
	}
	for i := len(t.open) - 1; i >= 0; i-- {
		switch t.open[i].cat {
		case "syscall":
			t.req.schedSysNS += ns
			return
		case "app":
			t.req.schedAppNS += ns
			return
		}
	}
}

// accumulate folds a closed span into the active request's per-stage
// sums. Called from End for spans stamped with the active request's id.
// A span nested under a same-category ancestor is skipped so re-entrant
// instrumentation cannot double-count a stage.
func (t *Track) accumulate(os openSpan, dur int64) {
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i].cat == os.cat {
			return
		}
	}
	switch os.cat {
	case "syscall":
		t.req.syscallNS += dur
	case "disk":
		t.req.diskNS += dur
	case "app":
		t.req.appNS += dur
	}
}
