package shadow

import (
	"fmt"
	"testing"

	"graybox/internal/simos"
)

func newSys() *simos.System {
	return simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1,
	})
}

// cacheBytes returns the machine's pool size (the shadow capacity an
// expert would configure).
func cacheBytes(s *simos.System) int64 {
	return int64(s.Pool.Capacity()) * int64(s.PageSize())
}

func TestShadowTracksOwnReads(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, Config{CacheBytes: cacheBytes(s)})
		fd, _ := os.Create("f")
		fd.Write(0, 8<<20)
		s.DropCaches()
		d.Reset()
		// Read half the file THROUGH the layer.
		if err := d.Read(fd, 0, 4<<20); err != nil {
			t.Fatal(err)
		}
		frac, err := d.PredictedFraction("f")
		if err != nil {
			t.Fatal(err)
		}
		if frac < 0.49 || frac > 0.51 {
			t.Errorf("predicted fraction = %v, want ~0.5", frac)
		}
		// And the prediction matches ground truth.
		bm, _ := s.FS(0).PresenceBitmap("f")
		cached := 0
		for _, b := range bm {
			if b {
				cached++
			}
		}
		if got := float64(cached) / float64(len(bm)); got < 0.49 || got > 0.51 {
			t.Errorf("ground truth %v disagrees", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShadowEvictsAtCapacity(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		// Deliberately tiny model: 1 MB.
		d := New(os, Config{CacheBytes: 1 << 20})
		fd, _ := os.Create("f")
		fd.Write(0, 4<<20)
		if err := d.Read(fd, 0, 4<<20); err != nil {
			t.Fatal(err)
		}
		if got := d.ModelPages(); got != 256 {
			t.Errorf("model holds %d pages, want capacity 256", got)
		}
		// LRU: the tracked pages are the LAST ones read.
		frac, _ := d.PredictedFraction("f")
		if frac < 0.24 || frac > 0.26 {
			t.Errorf("fraction = %v, want 0.25", frac)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShadowOrdersFilesWithZeroProbes(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, Config{CacheBytes: cacheBytes(s)})
		var paths []string
		os.Mkdir("d")
		for i := 0; i < 5; i++ {
			p := fmt.Sprintf("d/f%d", i)
			fd, _ := os.Create(p)
			fd.Write(0, 2<<20)
			paths = append(paths, p)
		}
		s.DropCaches()
		d.Reset()
		// Read files 1 and 3 through the layer.
		for _, i := range []int{1, 3} {
			fd, _ := os.Open(paths[i])
			if err := d.Read(fd, 0, fd.Size()); err != nil {
				t.Fatal(err)
			}
		}
		ordered, err := d.OrderFiles(paths)
		if err != nil {
			t.Fatal(err)
		}
		first := map[string]bool{ordered[0]: true, ordered[1]: true}
		if !first["d/f1"] || !first["d/f3"] {
			t.Errorf("order = %v, want f1/f3 first", ordered)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShadowDriftsWhenOthersDoIO(t *testing.T) {
	// The paper's objection to pure modeling: "if a single process does
	// not obey the rules, our knowledge of what has been accessed is
	// incomplete and our simulation will be inaccurate."
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, Config{CacheBytes: cacheBytes(s)})
		fd, _ := os.Create("mine")
		fd.Write(0, 8<<20)
		other, _ := os.Create("other")
		other.Write(0, 40<<20)
		s.DropCaches()
		d.Reset()
		// Through the layer: read "mine" fully. Model: mine 100% cached.
		if err := d.Read(fd, 0, fd.Size()); err != nil {
			t.Fatal(err)
		}
		// OUTSIDE the layer: a rogue stream of 40 MB evicts much of
		// "mine" from the real 55 MB cache... or in this small case at
		// least perturbs it; use a second big file read twice.
		other.Read(0, other.Size())
		other.Read(0, other.Size())
		rogue, _ := os.Create("rogue")
		rogue.Write(0, 30<<20)
		rogue.Read(0, rogue.Size())

		// The model still believes "mine" is fully cached.
		frac, _ := d.PredictedFraction("mine")
		if frac < 0.99 {
			t.Fatalf("model updated itself magically: %v", frac)
		}
		// Ground truth disagrees.
		bm, _ := s.FS(0).PresenceBitmap("mine")
		cached := 0
		for _, b := range bm {
			if b {
				cached++
			}
		}
		truth := float64(cached) / float64(len(bm))
		if truth > 0.6 {
			t.Skipf("rogue I/O did not displace enough (%v cached) for drift", truth)
		}
		// Revalidation notices and resets.
		agreement, err := d.Revalidate("mine", 16, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if agreement > 0.8 {
			t.Errorf("agreement = %v despite drift (truth %v)", agreement, truth)
		}
		if d.ModelResets != 1 {
			t.Errorf("model resets = %d, want 1", d.ModelResets)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRevalidateAgreesWhenModelIsRight(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, Config{CacheBytes: cacheBytes(s)})
		fd, _ := os.Create("f")
		fd.Write(0, 8<<20)
		s.DropCaches()
		d.Reset()
		if err := d.Read(fd, 0, 4<<20); err != nil {
			t.Fatal(err)
		}
		agreement, err := d.Revalidate("f", 24, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if agreement < 0.9 {
			t.Errorf("agreement = %v for an accurate model", agreement)
		}
		if d.ModelResets != 0 {
			t.Error("accurate model was reset")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShadowConfigValidation(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for missing CacheBytes")
			}
		}()
		New(os, Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
}
