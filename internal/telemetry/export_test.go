package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildRegistry constructs a small, fully-populated registry.
func buildRegistry(label string) *Registry {
	clk := &fakeClock{}
	r := NewRegistry(label, clk.fn())
	r.Counter("cache.hits").Add(10)
	r.Gauge("mem.frames").Set(42)
	r.Histogram("syscall.read_ns", []int64{1000, 1000000}).Observe(1234)
	tr := r.NewTrack("scanner")
	clk.now = 1_500
	tr.Begin("syscall", "read")
	clk.now = 2_750
	tr.End()
	tr.Instant("probe", "hit")
	ring := NewRing(8)
	ring.Append(Event{At: 3000, Cat: "io", Msg: "drained"})
	r.AddRing(ring)
	return r
}

// TestChromeTraceValidJSON parses the export with encoding/json and
// checks the trace_event invariants about://tracing relies on.
func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Registry{buildRegistry("plat")}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayUnit)
	}
	var phases []string
	var sawSpan, sawProcName bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases = append(phases, ph)
		switch ph {
		case "X":
			sawSpan = true
			if ev["ts"].(float64) != 1.5 || ev["dur"].(float64) != 1.25 {
				t.Errorf("span ts/dur = %v/%v, want 1.5/1.25 (µs)", ev["ts"], ev["dur"])
			}
			if ev["name"] != "read" || ev["cat"] != "syscall" {
				t.Errorf("span name/cat = %v/%v", ev["name"], ev["cat"])
			}
		case "M":
			if ev["name"] == "process_name" {
				sawProcName = true
				args := ev["args"].(map[string]any)
				if args["name"] != "plat" {
					t.Errorf("process_name = %v", args["name"])
				}
			}
		}
	}
	if !sawSpan || !sawProcName {
		t.Errorf("missing span or process metadata in phases %v", phases)
	}
	// Both the Track.Instant and the ring event export as instants.
	instants := 0
	for _, ph := range phases {
		if ph == "i" {
			instants++
		}
	}
	if instants != 2 {
		t.Errorf("instant events = %d, want 2", instants)
	}
}

func TestMetricsJSONDeterministicAndParseable(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := WriteMetricsJSON(&buf, []*Registry{buildRegistry("a"), buildRegistry("b")}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("metrics JSON not byte-stable across renders")
	}
	var doc MetricsSnapshot
	if err := json.Unmarshal([]byte(a), &doc); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if len(doc.Platforms) != 2 || doc.Platforms[0].Label != "a" {
		t.Fatalf("platforms = %+v", doc.Platforms)
	}
	p := doc.Platforms[0]
	if p.Counters["cache.hits"] != 10 || p.Gauges["mem.frames"].Value != 42 {
		t.Errorf("snapshot values wrong: %+v", p)
	}
	if h := p.Histograms["syscall.read_ns"]; h.Count != 1 || h.Sum != 1234 {
		t.Errorf("histogram snapshot = %+v", h)
	}
	if p.Spans != 2 {
		t.Errorf("spans = %d, want 2 (one X + one instant)", p.Spans)
	}
}

func TestMetricsText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsText(&buf, []*Registry{buildRegistry("plat")}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== plat ==", "cache.hits", "mem.frames", "syscall.read_ns", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, out)
		}
	}
}

// TestSortRegistries shuffled input must come out label-ordered, and
// equal labels must order by content so exports stay deterministic.
func TestSortRegistries(t *testing.T) {
	clk := &fakeClock{}
	mk := func(label string, hits int64) *Registry {
		r := NewRegistry(label, clk.fn())
		r.Counter("hits").Add(hits)
		return r
	}
	a1 := mk("a", 1)
	a2 := mk("a", 2)
	b := mk("b", 0)
	regs := []*Registry{b, a2, a1}
	SortRegistries(regs)
	if regs[2] != b {
		t.Errorf("label order wrong: %v", []string{regs[0].Label(), regs[1].Label(), regs[2].Label()})
	}
	if regs[0] != a1 || regs[1] != a2 {
		t.Error("content tiebreak wrong: want hits=1 before hits=2")
	}
}

func TestMicroTS(t *testing.T) {
	cases := map[int64]string{
		0:          "0.000",
		999:        "0.999",
		1000:       "1.000",
		1234567:    "1234.567",
		5_000_0001: "50000.001",
	}
	for ns, want := range cases {
		if got := microTS(ns); got != want {
			t.Errorf("microTS(%d) = %q, want %q", ns, got, want)
		}
	}
}
