package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graybox/internal/bench"
)

func writeReport(t *testing.T, dir, name string, wallB float64) string {
	t.Helper()
	r := bench.Report{
		Scale: "quick",
		Experiments: []bench.Entry{
			{ID: "a", WallMS: 100, VirtualMS: 10},
			{ID: "b", WallMS: wallB, VirtualMS: 20},
		},
		TotalWallMS: 100 + wallB,
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIdenticalInputsExitZero is the ISSUE's acceptance test: identical
// reports pass with exit status 0.
func TestIdenticalInputsExitZero(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", 1000)
	var out, errb bytes.Buffer
	if code := run([]string{old, old}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d on identical inputs, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("report missing PASS:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "floor_ms") {
		t.Errorf("report missing noise-floor column:\n%s", out.String())
	}
}

// TestFloorFlagShownInReport: the -min-delta-ms value is echoed per
// experiment so the report is self-describing.
func TestFloorFlagShownInReport(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", 1000)
	var out, errb bytes.Buffer
	if code := run([]string{"-min-delta-ms", "42", old, old}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "42.0") {
		t.Errorf("report missing the applied 42ms noise floor:\n%s", out.String())
	}
}

// TestInjectedRegressionExitsNonZero: a 2.5x slowdown on one experiment
// must fail with exit status 1.
func TestInjectedRegressionExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", 1000)
	slow := writeReport(t, dir, "new.json", 2500)
	var out, errb bytes.Buffer
	if code := run([]string{old, slow}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d on injected regression, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("report missing failure markers:\n%s", out.String())
	}
}

func TestThresholdOverrideFlag(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", 1000)
	mild := writeReport(t, dir, "new.json", 1400) // 1.4x: passes by default
	var out, errb bytes.Buffer
	if code := run([]string{old, mild}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d under default ratio, want 0", code)
	}
	out.Reset()
	if code := run([]string{"-threshold", "b=1.2", old, mild}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d under -threshold b=1.2, want 1\n%s", code, out.String())
	}
}

// TestStaleBaselineExitsTwo: a fresh report carrying an experiment the
// committed baseline never measured must fail loudly (exit 2) and name
// the missing id, not silently compare the intersection.
func TestStaleBaselineExitsTwo(t *testing.T) {
	dir := t.TempDir()
	stale := bench.Report{
		Scale:       "quick",
		Experiments: []bench.Entry{{ID: "a", WallMS: 100, VirtualMS: 10}},
		TotalWallMS: 100,
	}
	data, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := writeReport(t, dir, "new.json", 1000) // has ids a and b
	var out, errb bytes.Buffer
	if code := run([]string{old, fresh}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d on stale baseline, want 2\n%s", code, out.String())
	}
	msg := errb.String()
	if !strings.Contains(msg, "b") || !strings.Contains(msg, old) || !strings.Contains(msg, "regenerate") {
		t.Errorf("stderr does not name the missing id and baseline file:\n%s", msg)
	}
}

func TestUsageAndIOErrorsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d on missing arg, want 2", code)
	}
	if code := run([]string{"no.json", "nope.json"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d on unreadable files, want 2", code)
	}
	if code := run([]string{"-threshold", "bad", "a.json", "b.json"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d on malformed -threshold, want 2", code)
	}
}
