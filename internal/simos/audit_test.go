package simos

import (
	"strings"
	"testing"
)

func TestEnableAuditIdempotentAndLabeled(t *testing.T) {
	s := New(small(Linux22))
	a := s.EnableAudit()
	if a == nil || s.Audit() != a {
		t.Fatal("EnableAudit did not install an auditor")
	}
	if again := s.EnableAudit(); again != a {
		t.Error("EnableAudit is not idempotent")
	}
	if !strings.Contains(a.Label(), "linux22") {
		t.Errorf("label %q does not name the personality", a.Label())
	}
	// The audit label matches the telemetry label, so reports from the
	// two subsystems can be joined on it.
	if r := s.EnableTelemetry(); r.Label() != a.Label() {
		t.Errorf("audit label %q != telemetry label %q", a.Label(), r.Label())
	}
}

func TestOSAuditNilSafe(t *testing.T) {
	var o *OS
	if o.Audit() != nil {
		t.Error("nil OS should report a nil auditor")
	}
	s := New(small(Linux22))
	err := s.Run("t", func(os *OS) {
		if os.Audit() != nil {
			t.Error("auditor present before EnableAudit")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOracleAdapterGroundTruth checks the oracle against the harness
// introspection APIs it mirrors.
func TestOracleAdapterGroundTruth(t *testing.T) {
	s := New(small(Linux22))
	s.EnableAudit()
	o := oracleAdapter{s}
	err := s.Run("t", func(os *OS) {
		fd, err := os.Create("data")
		if err != nil {
			t.Fatal(err)
		}
		const pages = 8
		size := int64(pages * os.PageSize())
		if err := fd.Write(0, size); err != nil {
			t.Fatal(err)
		}
		if err := fd.Read(0, size); err != nil {
			t.Fatal(err)
		}

		// Residency: after a full read every page is cached, and the
		// oracle's bitmap matches the fs harness bitmap.
		bm := o.ResidentPages(fd.Ino(), pages)
		want, err := s.FS(0).PresenceBitmap("data")
		if err != nil {
			t.Fatal(err)
		}
		if len(bm) != pages || len(want) != pages {
			t.Fatalf("bitmap lengths %d/%d, want %d", len(bm), len(want), pages)
		}
		for i := range bm {
			if !bm[i] || bm[i] != want[i] {
				t.Fatalf("residency[%d] = %v, harness %v", i, bm[i], want[i])
			}
		}

		// Layout: FirstBlock agrees with BlocksOf and rejects missing
		// files.
		blocks, err := s.FS(0).BlocksOf("data")
		if err != nil {
			t.Fatal(err)
		}
		if b, ok := o.FirstBlock("data"); !ok || b != blocks[0] {
			t.Errorf("FirstBlock = (%d, %v), want (%d, true)", b, ok, blocks[0])
		}
		if _, ok := o.FirstBlock("no-such-file"); ok {
			t.Error("FirstBlock found a missing file")
		}

		// Memory: AvailableBytes is AvailableMB at byte precision.
		if got, want := o.AvailableBytes()/int64(MB), int64(s.AvailableMB()); got != want {
			t.Errorf("AvailableBytes = %d MB, AvailableMB = %d", got, want)
		}
		if o.NowNS() != s.Engine.NowNS() {
			t.Error("NowNS disagrees with the engine clock")
		}
		if o.PageSize() != int64(s.PageSize()) {
			t.Error("PageSize disagrees")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOracleResolvesMountPaths guards the multi-disk case: FirstBlock
// must resolve "/mntN/..." paths to disk N's file system.
func TestOracleResolvesMountPaths(t *testing.T) {
	cfg := small(Linux22)
	cfg.NumDisks = 2
	s := New(cfg)
	o := oracleAdapter{s}
	err := s.Run("t", func(os *OS) {
		fd, err := os.Create("/mnt1/f")
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(0, int64(os.PageSize())); err != nil {
			t.Fatal(err)
		}
		blocks, err := s.FS(1).BlocksOf("f")
		if err != nil {
			t.Fatal(err)
		}
		if b, ok := o.FirstBlock("/mnt1/f"); !ok || b != blocks[0] {
			t.Errorf("FirstBlock(/mnt1/f) = (%d, %v), want (%d, true)", b, ok, blocks[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
