package apps

import (
	"fmt"

	"graybox/internal/core/fccd"
	"graybox/internal/core/mac"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// SortSpec describes a fastsort job: a highly tuned two-pass disk-to-disk
// sort (Section 4.1.3, after Agarwal). The first pass reads records,
// sorts them in memory, and writes sorted runs; the second pass merges.
type SortSpec struct {
	Input      string
	OutputDir  string
	RecordSize int64 // bytes per record (the paper uses 100)
}

// SortVariant selects how the read phase obtains memory and input order.
type SortVariant int

const (
	// SortStatic uses a fixed pass size supplied on the "command line".
	SortStatic SortVariant = iota
	// SortFCCD re-orders reads within the input file using the FCCD
	// (gb-fastsort of Figure 3).
	SortFCCD
	// SortGBPPipe feeds the unmodified sort through `gbp -mere -out`:
	// gray-box ordering, but every byte pays an extra pipe copy.
	SortGBPPipe
	// SortMAC sizes each pass with the MAC's gb_alloc (gb-fastsort of
	// Figure 7).
	SortMAC
)

// SortOptions configures a run.
type SortOptions struct {
	Variant SortVariant
	// PassBytes is the in-memory run size for SortStatic/SortFCCD/
	// SortGBPPipe.
	PassBytes int64
	// Detector supplies probing for SortFCCD/SortGBPPipe.
	Detector *fccd.Detector
	// MAC supplies admission control for SortMAC.
	MAC *mac.Controller
	// MACMin/MACMax bound gb_alloc (the paper uses 100 MB and the total
	// input size).
	MACMin, MACMax int64
	// ReadOnly stops after the read/sort/write run-formation phase
	// (Figures 3 and 7 report only phase one).
	SortPasses int // 0 = all input
}

// SortResult reports per-phase times of the run-formation pass.
type SortResult struct {
	Read, Sort, Write sim.Time
	Overhead          sim.Time // MAC probing + waiting, gbp fork/exec, pipe copies
	Total             sim.Time
	Passes            int
	AvgPassBytes      int64
	Runs              []string
}

// cursor yields the next input range to consume.
type cursor struct {
	segs []fccd.Segment
	idx  int
	off  int64 // consumed within segs[idx]
}

func newSeqCursor(size int64) *cursor {
	return &cursor{segs: []fccd.Segment{{Off: 0, Len: size}}}
}

func newPlanCursor(segs []fccd.Segment) *cursor {
	return &cursor{segs: segs}
}

// next returns up to n contiguous bytes of remaining input.
func (c *cursor) next(n int64) (off, l int64, ok bool) {
	for c.idx < len(c.segs) {
		seg := c.segs[c.idx]
		remain := seg.Len - c.off
		if remain <= 0 {
			c.idx++
			c.off = 0
			continue
		}
		l = n
		if l > remain {
			l = remain
		}
		off = seg.Off + c.off
		c.off += l
		return off, l, true
	}
	return 0, 0, false
}

// FastSort runs the run-formation phase of the sort.
func FastSort(os *simos.OS, spec SortSpec, opts SortOptions, costs Costs) (SortResult, error) {
	var res SortResult
	in, err := os.Open(spec.Input)
	if err != nil {
		return res, err
	}
	total := in.Size()
	if spec.RecordSize <= 0 {
		return res, fmt.Errorf("apps: record size must be positive")
	}
	start := os.Now()
	pageSize := int64(os.PageSize())

	// Choose the input order.
	var cur *cursor
	var overhead sim.Time
	switch opts.Variant {
	case SortFCCD:
		t0 := os.Now()
		segs, err := opts.Detector.ProbeFd(in)
		if err != nil {
			return res, err
		}
		overhead += os.Now() - t0
		cur = newPlanCursor(segs)
	case SortGBPPipe:
		t0 := os.Now()
		os.Compute(costs.ForkExec)
		segs, err := opts.Detector.ProbeFd(in)
		if err != nil {
			return res, err
		}
		overhead += os.Now() - t0
		cur = newPlanCursor(segs)
	default:
		cur = newSeqCursor(total)
	}

	var consumed int64
	for consumed < total {
		if opts.SortPasses > 0 && res.Passes >= opts.SortPasses {
			break
		}
		// Decide the pass size and obtain the buffer.
		var passBytes int64
		var buf simos.MemRegion
		var alloc *mac.Allocation
		switch opts.Variant {
		case SortMAC:
			remaining := total - consumed
			min, max := opts.MACMin, opts.MACMax
			if max > remaining {
				max = remaining
			}
			// gb_alloc returns a multiple of the record size, so min and
			// max must be reachable multiples; a sub-record tail is
			// appended to the pass after the aligned read below.
			max -= max % spec.RecordSize
			if max < spec.RecordSize {
				max = spec.RecordSize
			}
			if min > max {
				min = max
			}
			if min < spec.RecordSize {
				min = spec.RecordSize
			}
			st0 := opts.MAC.Stats()
			a, ok := opts.MAC.GBAllocWait(min, max, spec.RecordSize, 0)
			if !ok {
				return res, fmt.Errorf("apps: gb_alloc never succeeded")
			}
			st1 := opts.MAC.Stats()
			overhead += (st1.ProbeTime - st0.ProbeTime) + (st1.WaitTime - st0.WaitTime)
			alloc = a
			passBytes = a.Bytes
		default:
			passBytes = opts.PassBytes
			if passBytes <= 0 {
				return res, fmt.Errorf("apps: pass size required for static sort")
			}
			if passBytes > total-consumed {
				passBytes = total - consumed
				passBytes -= passBytes % spec.RecordSize
				if passBytes == 0 {
					passBytes = total - consumed
				}
			}
			buf = os.Malloc(passBytes)
		}

		// Read phase: stream input into the buffer, touching buffer
		// pages as records are copied in.
		t0 := os.Now()
		var inPass int64
		touchBuf := func(fromByte, toByte int64) {
			fromPg, toPg := fromByte/pageSize, (toByte+pageSize-1)/pageSize
			if alloc != nil {
				touchAllocRange(os, alloc, fromPg, toPg)
				return
			}
			if toPg > buf.Pages() {
				toPg = buf.Pages()
			}
			os.TouchRange(buf, fromPg, toPg, true)
		}
		for inPass < passBytes {
			off, l, ok := cur.next(minInt64(costs.ReadChunk, passBytes-inPass))
			if !ok {
				break
			}
			if err := in.Read(off, l); err != nil {
				return res, err
			}
			touchBuf(inPass, inPass+l)
			inPass += l
		}
		// Fold a sub-record tail into this pass so the next pass never
		// faces an unreachable sub-record allocation target.
		if tail := total - consumed - inPass; tail > 0 && tail < spec.RecordSize {
			if off, l, ok := cur.next(tail); ok {
				if err := in.Read(off, l); err != nil {
					return res, err
				}
				inPass += l
			}
		}
		res.Read += os.Now() - t0

		// Sort phase: CPU plus another full pass over the buffer.
		t0 = os.Now()
		records := inPass / spec.RecordSize
		os.Compute(sim.Time(records) * costs.SortCPUPerRecord)
		touchBuf(0, inPass)
		res.Sort += os.Now() - t0

		// Write phase: emit the sorted run.
		t0 = os.Now()
		runPath := fmt.Sprintf("%s/run%03d", spec.OutputDir, res.Passes)
		out, err := os.Create(runPath)
		if err != nil {
			return res, err
		}
		for w := int64(0); w < inPass; {
			l := minInt64(costs.ReadChunk, inPass-w)
			if err := out.Write(w, l); err != nil {
				return res, err
			}
			w += l
		}
		res.Write += os.Now() - t0
		res.Runs = append(res.Runs, runPath)

		// Release the pass buffer ("gb-fastsort frees each chunk before
		// allocating memory for the next pass").
		if alloc != nil {
			opts.MAC.GBFree(alloc)
		} else {
			os.Free(buf)
		}

		consumed += inPass
		res.Passes++
		res.AvgPassBytes += inPass
		if inPass == 0 {
			break
		}
	}
	if res.Passes > 0 {
		res.AvgPassBytes /= int64(res.Passes)
	}
	if opts.Variant == SortGBPPipe {
		// Every input byte crossed a pipe.
		pipe := sim.Time(consumed) * costs.PipeCopyPerByte
		os.Compute(pipe)
		overhead += pipe
	}
	res.Overhead = overhead
	res.Total = os.Now() - start
	return res, nil
}

// touchAllocRange touches pages [from, to) across an allocation's
// regions as if they were one contiguous buffer.
func touchAllocRange(os *simos.OS, a *mac.Allocation, from, to int64) {
	var base int64
	for _, r := range a.Regions() {
		rFrom, rTo := from-base, to-base
		if rTo > r.Pages() {
			rTo = r.Pages()
		}
		if rFrom < 0 {
			rFrom = 0
		}
		if rFrom < rTo {
			os.TouchRange(r, rFrom, rTo, true)
		}
		base += r.Pages()
		if base >= to {
			break
		}
	}
}

// Merge performs the second pass: stream all runs, merge-compare, and
// write the final output. It is memory-light and mostly disk-bound.
func Merge(os *simos.OS, runs []string, output string, recordSize int64, costs Costs) (sim.Time, error) {
	start := os.Now()
	out, err := os.Create(output)
	if err != nil {
		return 0, err
	}
	var outOff int64
	for _, run := range runs {
		fd, err := os.Open(run)
		if err != nil {
			return 0, err
		}
		size := fd.Size()
		for off := int64(0); off < size; {
			l := minInt64(costs.ReadChunk, size-off)
			if err := fd.Read(off, l); err != nil {
				return 0, err
			}
			os.Compute(sim.Time(l/recordSize) * costs.SortCPUPerRecord)
			if err := out.Write(outOff, l); err != nil {
				return 0, err
			}
			off += l
			outOff += l
		}
	}
	return os.Now() - start, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
