package simos_test

import (
	"fmt"
	"testing"

	"graybox/internal/core/fccd"
	"graybox/internal/core/fldc"
	"graybox/internal/core/mac"
	"graybox/internal/simos"
)

// TestAuditedProbeCostsMatchMeters drives all three ICLs on one audited
// machine and checks that the audit report's per-ICL probe totals equal
// each ICL's own probe meter: every probe an ICL issues through an
// audited entry point is billed to exactly one audit record — none
// dropped, none double-counted (MAC's calibration touches ride on its
// first GBAlloc record).
func TestAuditedProbeCostsMatchMeters(t *testing.T) {
	s := simos.New(simos.Config{
		Personality:  simos.Linux22,
		MemoryMB:     64,
		KernelMB:     8,
		CacheFloorMB: 1,
		Seed:         11,
	})
	aud := s.EnableAudit()

	paths := make([]string, 6)
	for i := range paths {
		paths[i] = fmt.Sprintf("cost.%d", i)
		if _, err := s.FS(0).CreateSized(paths[i], 2*simos.MB); err != nil {
			t.Fatal(err)
		}
	}

	var det *fccd.Detector
	var lay *fldc.Layer
	var ctl *mac.Controller
	p := s.Spawn("icl", 0, func(os *simos.OS) {
		det = fccd.New(os, fccd.Config{
			AccessUnit:     simos.MB,
			PredictionUnit: 256 * 1024,
			Seed:           3,
		})
		lay = fldc.New(os)
		ctl = mac.New(os, mac.Config{})
		// Warm two files so FCCD sees both cached and uncached truth.
		for _, path := range paths[:2] {
			fd, err := os.Open(path)
			if err != nil {
				panic(err)
			}
			if err := fd.Read(0, fd.Size()); err != nil {
				panic(err)
			}
		}
		for _, path := range paths {
			if _, err := det.ProbeFile(path); err != nil {
				panic(err)
			}
		}
		if _, err := det.OrderFiles(paths); err != nil {
			panic(err)
		}
		if _, err := lay.OrderByINumber(paths); err != nil {
			panic(err)
		}
		if _, err := lay.OrderByMtime(paths); err != nil {
			panic(err)
		}
		if _, err := lay.ComposeWithFCCD(det, paths); err != nil {
			panic(err)
		}
		// Two admissions: the first carries MAC's calibration cost.
		for i := 0; i < 2; i++ {
			if a, ok := ctl.GBAlloc(simos.MB, 16*simos.MB, simos.MB); ok {
				ctl.GBFree(a)
			}
		}
	})
	s.Engine.WaitAll(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	rep := aud.Report()
	if rep.FCCD == nil || rep.FLDC == nil || rep.MAC == nil {
		t.Fatalf("report missing an ICL section: %+v", rep)
	}
	if c := det.ProbeCost(); rep.FCCD.Probes != c.Probes || rep.FCCD.ProbeNS != c.NS {
		t.Errorf("FCCD audited cost (%d probes, %d ns) != meter (%d probes, %d ns)",
			rep.FCCD.Probes, rep.FCCD.ProbeNS, c.Probes, c.NS)
	}
	if c := lay.ProbeCost(); rep.FLDC.Probes != c.Probes || rep.FLDC.ProbeNS != c.NS {
		t.Errorf("FLDC audited cost (%d probes, %d ns) != meter (%d probes, %d ns)",
			rep.FLDC.Probes, rep.FLDC.ProbeNS, c.Probes, c.NS)
	}
	if c := ctl.ProbeCost(); rep.MAC.PagesProbed != c.Probes || rep.MAC.ProbeNS != c.NS {
		t.Errorf("MAC audited cost (%d pages, %d ns) != meter (%d pages, %d ns)",
			rep.MAC.PagesProbed, rep.MAC.ProbeNS, c.Probes, c.NS)
	}
	// Every section must have genuinely probed: a vacuous 0 == 0 match
	// would pass the equalities above without testing attribution.
	for _, c := range []struct {
		name   string
		probes int64
		ns     int64
	}{
		{"fccd", rep.FCCD.Probes, rep.FCCD.ProbeNS},
		{"fldc", rep.FLDC.Probes, rep.FLDC.ProbeNS},
		{"mac", rep.MAC.PagesProbed, rep.MAC.ProbeNS},
	} {
		if c.probes == 0 || c.ns == 0 {
			t.Errorf("%s audited no probe cost (probes=%d ns=%d)", c.name, c.probes, c.ns)
		}
	}
}
