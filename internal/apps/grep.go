package apps

import (
	"graybox/internal/core/fccd"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// GrepResult reports one grep run.
type GrepResult struct {
	Elapsed      sim.Time
	FilesScanned int
	BytesScanned int64
}

// Grep scans every file fully in the order given — the unmodified GNU
// grep over a command line (Section 4.1.3).
func Grep(os *simos.OS, paths []string, costs Costs) (GrepResult, error) {
	start := os.Now()
	var res GrepResult
	for _, p := range paths {
		fd, err := os.Open(p)
		if err != nil {
			return res, err
		}
		if err := costs.streamRead(os, fd, 0, fd.Size(), true); err != nil {
			return res, err
		}
		res.FilesScanned++
		res.BytesScanned += fd.Size()
	}
	res.Elapsed = os.Now() - start
	return res, nil
}

// GBGrep is grep modified to reorder its file arguments with the FCCD
// ("transforming 10 lines of code into roughly 30"): probe, then scan in
// cached-first order.
func GBGrep(os *simos.OS, det *fccd.Detector, paths []string, costs Costs) (GrepResult, error) {
	start := os.Now()
	probes, err := det.OrderFiles(paths)
	if err != nil {
		return GrepResult{}, err
	}
	res, err := Grep(os, fccd.Paths(probes), costs)
	if err != nil {
		return res, err
	}
	res.Elapsed = os.Now() - start // include the probe phase
	return res, nil
}

// GrepWithGBP models `grep foo $(gbp -mere *)`: an unmodified grep whose
// argument list was produced by the gbp utility in a separate process —
// the fork/exec and the redundant opens in gbp are charged, then the
// ordinary grep runs.
func GrepWithGBP(os *simos.OS, det *fccd.Detector, paths []string, costs Costs) (GrepResult, error) {
	start := os.Now()
	os.Compute(costs.ForkExec) // spawn gbp
	probes, err := det.OrderFiles(paths)
	if err != nil {
		return GrepResult{}, err
	}
	res, err := Grep(os, fccd.Paths(probes), costs)
	if err != nil {
		return res, err
	}
	res.Elapsed = os.Now() - start
	return res, nil
}

// SearchResult reports a first-match search.
type SearchResult struct {
	Elapsed      sim.Time
	FilesScanned int
	FoundIn      string
}

// Search scans files in order and stops at the first file containing a
// match (the multi-file search of Figure 4). matchPath names the file
// that contains the match.
func Search(os *simos.OS, paths []string, matchPath string, costs Costs) (SearchResult, error) {
	start := os.Now()
	var res SearchResult
	for _, p := range paths {
		fd, err := os.Open(p)
		if err != nil {
			return res, err
		}
		if err := costs.streamRead(os, fd, 0, fd.Size(), true); err != nil {
			return res, err
		}
		res.FilesScanned++
		if p == matchPath {
			res.FoundIn = p
			break
		}
	}
	res.Elapsed = os.Now() - start
	return res, nil
}

// GBSearch probes first and searches cached files before cold ones, so a
// match in a cached file is found quickly regardless of the order the
// user listed the files.
func GBSearch(os *simos.OS, det *fccd.Detector, paths []string, matchPath string, costs Costs) (SearchResult, error) {
	start := os.Now()
	probes, err := det.OrderFiles(paths)
	if err != nil {
		return SearchResult{}, err
	}
	res, err := Search(os, fccd.Paths(probes), matchPath, costs)
	if err != nil {
		return res, err
	}
	res.Elapsed = os.Now() - start
	return res, nil
}
