package fs

// Snapshot is a deep copy of a file system's metadata state — allocation
// bitmaps, inodes, the directory tree, and the allocator rotors — taken
// with FS.Snapshot and restored into a freshly built FS with FS.Restore.
// It is immutable after capture and safe for concurrent Restores.
type Snapshot struct {
	groups       []groupState
	inodes       map[Ino]*Inode
	root         *dir
	lfsRotor     int64
	nextDirGroup int
	statCalls    int64
}

// groupState is the mutable part of a cylinder group; the geometry
// (inodeStart, dataStart, ...) is derived from Config and rebuilt by New.
type groupState struct {
	freeData  []bool
	nfree     int64
	rotor     int64
	inodeUsed []bool
	inodeFree int
}

func cloneDir(d *dir) *dir {
	nd := newDir(d.group)
	for name, ino := range d.entries {
		nd.entries[name] = ino
	}
	for name, sub := range d.subdirs {
		nd.subdirs[name] = cloneDir(sub)
	}
	return nd
}

func cloneInode(in *Inode) *Inode {
	cp := *in
	cp.blocks = append([]int64(nil), in.blocks...)
	return &cp
}

// Snapshot deep-copies the file system's metadata.
func (fs *FS) Snapshot() *Snapshot {
	s := &Snapshot{
		groups:       make([]groupState, len(fs.groups)),
		inodes:       make(map[Ino]*Inode, len(fs.inodes)),
		root:         cloneDir(fs.root),
		lfsRotor:     fs.lfsRotor,
		nextDirGroup: fs.nextDirGroup,
		statCalls:    fs.StatCalls,
	}
	for i, gr := range fs.groups {
		s.groups[i] = groupState{
			freeData:  append([]bool(nil), gr.freeData...),
			nfree:     gr.nfree,
			rotor:     gr.rotor,
			inodeUsed: append([]bool(nil), gr.inodeUsed...),
			inodeFree: gr.inodeFree,
		}
	}
	for ino, in := range fs.inodes {
		s.inodes[ino] = cloneInode(in)
	}
	return s
}

// Restore fills a freshly built, empty file system (same disk geometry
// and Config as the snapshot's source) from s.
func (fs *FS) Restore(s *Snapshot) {
	if len(fs.inodes) != 0 || len(fs.root.entries) != 0 || len(fs.root.subdirs) != 0 {
		panic("fs: Restore into a non-empty file system")
	}
	if len(fs.groups) != len(s.groups) {
		panic("fs: Restore geometry mismatch")
	}
	for i, gs := range s.groups {
		gr := fs.groups[i]
		copy(gr.freeData, gs.freeData)
		gr.nfree = gs.nfree
		gr.rotor = gs.rotor
		copy(gr.inodeUsed, gs.inodeUsed)
		gr.inodeFree = gs.inodeFree
	}
	for ino, in := range s.inodes {
		fs.inodes[ino] = cloneInode(in)
	}
	fs.root = cloneDir(s.root)
	fs.lfsRotor = s.lfsRotor
	fs.nextDirGroup = s.nextDirGroup
	fs.StatCalls = s.statCalls
}
