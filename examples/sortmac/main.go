// sortmac: the paper's Figure 7 scenario in miniature — two external
// sorts compete for memory. The static sort picks a pass size on the
// command line and thrashes when the sum overcommits memory; the
// gray-box sort asks the MAC how much memory is actually available,
// uses the memory the MAC atomically identified-and-allocated as its
// pass buffer, and never pages.
package main

import (
	"fmt"
	"log"

	"graybox"
	"graybox/internal/sim"
)

const (
	inputSize  = 500 * graybox.MB
	recordSize = 100
)

// passBuffer is one sorting pass's in-memory buffer.
type passBuffer struct {
	bytes   int64
	touch   func(fromPage, toPage int64) // copy records in / sort access
	release func()
}

// runSort performs the run-formation phase: read a pass worth of input
// into the buffer, charge sort CPU, write the run.
func runSort(os *graybox.Proc, input, outDir string, nextBuf func(remaining int64) passBuffer) (graybox.Time, int, error) {
	fd, err := os.Open(input)
	if err != nil {
		return 0, 0, err
	}
	if err := os.Mkdir(outDir); err != nil {
		return 0, 0, err
	}
	sw := graybox.NewStopwatch(os)
	passes := 0
	pageSize := int64(os.PageSize())
	for consumed := int64(0); consumed < fd.Size(); {
		buf := nextBuf(fd.Size() - consumed)
		for off := int64(0); off < buf.bytes; off += 256 << 10 {
			n := int64(256 << 10)
			if off+n > buf.bytes {
				n = buf.bytes - off
			}
			if err := fd.Read(consumed+off, n); err != nil {
				return 0, 0, err
			}
			buf.touch(off/pageSize, (off+n+pageSize-1)/pageSize)
		}
		os.Compute(graybox.Time(buf.bytes/recordSize) * 500 * graybox.Nanosecond)
		out, err := os.Create(fmt.Sprintf("%s/run%03d", outDir, passes))
		if err != nil {
			return 0, 0, err
		}
		if err := out.Write(0, buf.bytes); err != nil {
			return 0, 0, err
		}
		consumed += buf.bytes
		buf.release()
		passes++
	}
	return sw.Elapsed(), passes, nil
}

func main() {
	run := func(label string, staticPass int64) {
		p := graybox.NewPlatform(graybox.PlatformConfig{NumDisks: 2})
		var times [2]graybox.Time
		var passes [2]int
		procs := make([]*sim.Proc, 2)
		for i := 0; i < 2; i++ {
			i := i
			prefix := ""
			if i == 1 {
				prefix = "/mnt1/"
			}
			procs[i] = p.Spawn(fmt.Sprintf("sort%d", i), 0, func(os *graybox.Proc) {
				input := prefix + "input"
				fd, err := os.Create(input)
				if err != nil {
					log.Fatal(err)
				}
				if err := fd.Write(0, inputSize); err != nil {
					log.Fatal(err)
				}
				p.DropCaches()

				var nextBuf func(remaining int64) passBuffer
				if staticPass > 0 {
					nextBuf = func(remaining int64) passBuffer {
						pass := staticPass
						if pass > remaining {
							pass = remaining
						}
						m := os.Malloc(pass)
						return passBuffer{
							bytes:   pass,
							touch:   func(from, to int64) { os.TouchRange(m, from, min64(to, m.Pages()), true) },
							release: func() { os.Free(m) },
						}
					}
				} else {
					ctl := graybox.NewMAC(os, graybox.MACConfig{})
					nextBuf = func(remaining int64) passBuffer {
						max := remaining
						min := int64(50 * graybox.MB)
						if min > max {
							min = max
						}
						min -= min % recordSize
						max -= max % recordSize
						a, ok := ctl.GBAllocWait(min, max, recordSize, 0)
						if !ok {
							log.Fatal("gb_alloc failed")
						}
						regions := a.Regions()
						return passBuffer{
							bytes: a.Bytes,
							touch: func(from, to int64) {
								var base int64
								for _, r := range regions {
									lo, hi := from-base, to-base
									if hi > r.Pages() {
										hi = r.Pages()
									}
									if lo < 0 {
										lo = 0
									}
									if lo < hi {
										os.TouchRange(r, lo, hi, true)
									}
									base += r.Pages()
								}
							},
							release: func() { ctl.GBFree(a) },
						}
					}
				}
				t, n, err := runSort(os, input, prefix+"runs", nextBuf)
				if err != nil {
					log.Fatal(err)
				}
				times[i], passes[i] = t, n
			})
		}
		p.Engine.WaitAll(procs...)
		swaps := p.VM.Stats().SwapOuts
		fmt.Printf("%-22s sort0 %v (%d passes), sort1 %v (%d passes), swap-outs %d\n",
			label, times[0], passes[0], times[1], passes[1], swaps)
	}

	fmt.Printf("two competing sorts of %d MB each; ~830 MB of memory\n", inputSize/graybox.MB)
	run("static pass 250 MB:", 250*graybox.MB)
	run("static pass 500 MB:", 500*graybox.MB) // 2 x 500 MB overcommits: thrash
	run("gb-fastsort (MAC):", 0)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
