package experiments

import (
	"fmt"

	"graybox/internal/apps"
	"graybox/internal/core/fccd"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/stats"
)

// Fig2Config parameterizes the single-file scan experiment (Figure 2).
type Fig2Config struct {
	Scale Scale
	// FileSizesMB sweeps the file size through the cache size (paper
	// values, scaled). Zero selects defaults straddling the cache size.
	FileSizesMB []float64
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if len(c.FileSizesMB) == 0 {
		c.FileSizesMB = []float64{128, 256, 512, 768, 830, 896, 1024, 1280}
	}
	return c
}

// Fig2 measures warm-cache repeated scans: the traditional linear scan
// collapses to disk rate once the file exceeds the cache (LRU worst
// case), while the gray-box scan's I/O stays proportional to
// (file - cache). The two model lines of the figure are computed from
// microbenchmarked rates.
func Fig2(cfg Fig2Config) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	t := &Table{
		ID:      "fig2",
		Title:   "Single-file scan, warm cache: linear vs gray-box (plus model lines)",
		Columns: []string{"file", "linear", "gray-box", "model-worst", "model-ideal", "fccd-audit"},
	}

	costs := apps.DefaultCosts()
	// Every file size is an independent trial on its own platform; rows
	// are assembled back in sweep order. The platforms differ only in the
	// swept file (created after the fork), so they share one base.
	plat := NewSnapshotPlatform(func(seed uint64) *simos.System {
		return buildSystem(simos.Linux22, sc, seed)
	})
	rows := RunTrials(len(cfg.FileSizesMB), func(si int) []string {
		sizeMB := cfg.FileSizesMB[si]
		s := plat.Trial(2000 + uint64(si))
		aud := s.EnableAudit() // scores every FCCD prediction GBScan makes
		cacheBytes := int64(s.Pool.Capacity()) * int64(s.PageSize())
		fileSize := sc.mb(sizeMB) * simos.MB
		_, err := s.FS(0).CreateSized("data", fileSize)
		mustNoErr(err)

		// Calibrate model rates on this machine: sequential disk
		// bandwidth and in-cache copy rate.
		var diskNsPerByte, copyNsPerByte float64
		mustRun(s, "calibrate", func(os *simos.OS) {
			probeSize := int64(8 * simos.MB)
			if probeSize > fileSize {
				probeSize = fileSize
			}
			fd, err := os.Open("data")
			mustNoErr(err)
			t0 := os.Now()
			mustNoErr(fd.Read(0, probeSize))
			diskNsPerByte = float64(os.Now()-t0) / float64(probeSize)
			t0 = os.Now()
			mustNoErr(fd.Read(0, probeSize))
			copyNsPerByte = float64(os.Now()-t0) / float64(probeSize)
		})

		measure := func(gb bool) sim.Time {
			s.DropCaches()
			var times []float64
			for trial := 0; trial <= sc.Trials; trial++ {
				var elapsed sim.Time
				mustRun(s, "scan", func(os *simos.OS) {
					if gb {
						det := fccd.New(os, fccd.Config{
							AccessUnit:     scaledAccessUnit(sc),
							PredictionUnit: scaledPredictionUnit(sc),
							Seed:           uint64(100*si + trial),
						})
						r, err := apps.GBScan(os, det, "data", costs)
						mustNoErr(err)
						elapsed = r.Elapsed
					} else {
						r, err := apps.Scan(os, "data", costs)
						mustNoErr(err)
						elapsed = r.Elapsed
					}
				})
				if trial > 0 { // first run warms the cache
					times = append(times, float64(elapsed))
				}
			}
			return sim.Time(stats.Mean(times))
		}

		linear := measure(false)
		gray := measure(true)
		worst := sim.Time(float64(fileSize) * diskNsPerByte)
		inCache := fileSize
		if inCache > cacheBytes {
			inCache = cacheBytes
		}
		ideal := sim.Time(float64(inCache)*copyNsPerByte + float64(fileSize-inCache)*diskNsPerByte)

		// The oracle-grounded cache-content accuracy over every FCCD
		// prediction the gray-box scans made at this file size.
		fccdAcc := "-"
		if rep := aud.Report(); rep.FCCD != nil {
			fccdAcc = fmt.Sprintf("%.3f", rep.FCCD.Accuracy)
		}

		return []string{fmt.Sprintf("%dMB", fileSize/simos.MB),
			linear.String(), gray.String(), worst.String(), ideal.String(), fccdAcc}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("cache ~%d MB at this scale; linear scan collapses past it, gray-box tracks the ideal model", usableMB(plat.Trial(0)))
	t.AddNote("fccd-audit: fraction of prediction units whose cached/uncached call matched the simulator oracle")
	return t
}

// scaledAccessUnit shrinks the paper's 20 MB access unit with the scale.
func scaledAccessUnit(sc Scale) int64 { return sc.mb(20) * simos.MB }

// scaledPredictionUnit shrinks the paper's 5 MB prediction unit.
func scaledPredictionUnit(sc Scale) int64 { return sc.mb(5) * simos.MB }
