package sim

import (
	"testing"
)

// wheelEngine returns an engine whose inserts always consider the wheel,
// regardless of the live-event population.
func wheelEngine(seed uint64) *Engine {
	e := NewEngine(seed)
	e.wheelMin = 0
	return e
}

// heapEngine returns an engine whose inserts never use the wheel.
func heapEngine(seed uint64) *Engine {
	e := NewEngine(seed)
	e.wheelMin = 1 << 40
	return e
}

// TestWheelMatchesHeapOrder drives a wheel-forced engine and a heap-only
// engine through an identical randomized schedule/cancel workload and
// asserts the firing sequences are identical: the wheel must be a pure
// performance structure with zero effect on event order.
func TestWheelMatchesHeapOrder(t *testing.T) {
	runDet := func(e *Engine) []int {
		rng := NewRNG(42)
		var fired []int
		pending := make(map[int]Event)
		var spawn func(id int)
		n := 0
		spawn = func(id int) {
			delays := []Time{0, 1, 100, 5000, 100_000, 3_000_000, 80_000_000, 500_000_000}
			d := delays[rng.Intn(len(delays))] + Time(rng.Intn(7))
			pending[id] = e.After(d, func() {
				fired = append(fired, id)
				delete(pending, id)
				if n < 3000 {
					n++
					spawn(n)
					if n%5 == 0 {
						lowest := -1
						for victim := range pending {
							if lowest < 0 || victim < lowest {
								lowest = victim
							}
						}
						if lowest >= 0 {
							e.Cancel(pending[lowest])
							delete(pending, lowest)
						}
						n++
						spawn(n)
					}
				}
			})
		}
		for i := 0; i < 64; i++ {
			n++
			spawn(n)
		}
		e.Run()
		return fired
	}

	wheel := runDet(wheelEngine(7))
	heap := runDet(heapEngine(7))
	if len(wheel) == 0 || len(heap) == 0 {
		t.Fatalf("no events fired (wheel=%d heap=%d)", len(wheel), len(heap))
	}
	if len(wheel) != len(heap) {
		t.Fatalf("fired counts differ: wheel=%d heap=%d", len(wheel), len(heap))
	}
	for i := range wheel {
		if wheel[i] != heap[i] {
			t.Fatalf("firing order diverges at %d: wheel=%d heap=%d", i, wheel[i], heap[i])
		}
	}
}

// TestWheelTieBreak pins the FIFO tie-break across placements: events
// scheduled at the same instant fire in scheduling order even when some
// were parked in wheel slots and some in the heap.
func TestWheelTieBreak(t *testing.T) {
	e := wheelEngine(1)
	var got []int
	at := Time(1 << 20) // a few hundred ticks out: wheel placement
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(at, func() { got = append(got, i) })
		// Interleave far-future heap events at the same instant by going
		// beyond the horizon from now.
	}
	// Advance close to the target, then schedule more events at the same
	// instant — these are now same-tick inserts and go to the heap.
	e.Schedule(at-Time(1), func() {
		for i := 100; i < 200; i++ {
			i := i
			e.Schedule(at, func() { got = append(got, i) })
		}
	})
	e.Run()
	if len(got) != 200 {
		t.Fatalf("fired %d of 200", len(got))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("tie-break violated at %d: got id %d", i, id)
		}
	}
}

// TestWheelCancelSweep floods the wheel with canceled timers and checks
// they are reclaimed (the free list serves subsequent inserts) and that
// the engine still drains cleanly.
func TestWheelCancelSweep(t *testing.T) {
	e := wheelEngine(1)
	evs := make([]Event, 4096)
	for i := range evs {
		evs[i] = e.After(Time(1<<14+i<<10), func() { t.Fatal("canceled event fired") })
	}
	for i := range evs {
		e.Cancel(evs[i])
	}
	if n := e.lanes[0].wheelDead; n != 0 {
		t.Fatalf("wheelDead = %d after canceling every wheel event; sweep did not run", n)
	}
	if !e.Idle() {
		t.Fatal("engine not idle after canceling everything")
	}
	fired := false
	e.After(1<<20, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("post-sweep event did not fire")
	}
}

// TestWheelSparseAdvance checks that draining across long empty
// stretches (far L1 events with nothing in between) terminates and fires
// in order.
func TestWheelSparseAdvance(t *testing.T) {
	e := wheelEngine(1)
	var got []Time
	// One event per L1 block boundary region, far apart.
	for i := 1; i <= 200; i++ {
		at := Time(i) << (wheelShift + wheelBits) // exactly block-aligned ticks
		at += Time(i % 3)
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	if len(got) != 200 {
		t.Fatalf("fired %d of 200", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out-of-order fire times: %v then %v", got[i-1], got[i])
		}
	}
}

// TestWheelCheckpointRestore exercises the snapshot hooks: a quiescent
// engine checkpoints, a fresh engine restores, and scheduling continues
// the (at, seq) sequence.
func TestWheelCheckpointRestore(t *testing.T) {
	e := NewEngine(9)
	for i := 0; i < 10; i++ {
		e.After(Time(i*100), func() {})
	}
	e.Run()
	now, seq := e.Checkpoint()
	if now != 900 || seq != 10 {
		t.Fatalf("checkpoint = (%v, %d), want (900, 10)", now, seq)
	}
	if e.Seed() != 9 {
		t.Fatalf("Seed() = %d, want 9", e.Seed())
	}
	if e.RNG().State() != NewRNG(9).State() {
		t.Fatal("unconsumed RNG state mismatch")
	}

	e2 := NewEngine(9)
	e2.Restore(now, seq)
	if e2.Now() != now {
		t.Fatalf("restored Now = %v, want %v", e2.Now(), now)
	}
	fired := false
	e2.Schedule(now+1, func() { fired = true })
	e2.Run()
	if !fired {
		t.Fatal("restored engine did not fire")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Restore on a used engine did not panic")
		}
	}()
	e2.Restore(0, 0)
}

// TestWheelAllocSteadyState guards the 0-alloc fast path: once the event
// free list and heap arena are primed, schedule/cancel and
// schedule/fire cycles through the wheel must not allocate.
func TestWheelAllocSteadyState(t *testing.T) {
	e := wheelEngine(1)
	fn := func() {}
	evs := make([]Event, 512)

	// Prime the free list and heap capacity.
	for r := 0; r < 4; r++ {
		for i := range evs {
			evs[i] = e.After(Time(1000+i*3000), fn)
		}
		for i := range evs {
			e.Cancel(evs[i])
		}
		e.After(1, fn)
		e.Run()
	}

	if n := testing.AllocsPerRun(100, func() {
		for i := range evs {
			evs[i] = e.After(Time(1000+i*3000), fn)
		}
		for i := range evs {
			e.Cancel(evs[i])
		}
	}); n != 0 {
		t.Fatalf("wheel schedule/cancel fast path allocates %.1f per run, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		for i := range evs {
			e.After(Time(1000+i*3000), fn)
		}
		e.Run()
	}); n != 0 {
		t.Fatalf("wheel schedule/fire path allocates %.1f per run, want 0", n)
	}
}
