package experiments

import (
	"sync"
	"sync/atomic"

	"graybox/internal/telemetry"
)

// Harness telemetry mirrors the virtual-time accounting below: when
// enabled, every platform built through newSystem/newMultiDiskSystem is
// instrumented at construction and its registry accumulated here; the
// CLI drains the set after each experiment. Workers finish in
// nondeterministic order, so the drain sorts registries by (label,
// content) — making exports byte-identical at any pool width.
var (
	telEnabled atomic.Bool
	telMu      sync.Mutex
	telRegs    []*telemetry.Registry
)

// EnableTelemetry switches harness telemetry on or off (the CLI's
// -trace/-metrics flags). It only affects platforms built afterwards.
func EnableTelemetry(on bool) { telEnabled.Store(on) }

// TelemetryEnabled reports whether harness telemetry is on.
func TelemetryEnabled() bool { return telEnabled.Load() }

// TakeTelemetry returns the registries of every platform built since the
// previous call, in deterministic order, and resets the accumulator.
func TakeTelemetry() []*telemetry.Registry {
	telMu.Lock()
	regs := telRegs
	telRegs = nil
	telMu.Unlock()
	telemetry.SortRegistries(regs)
	return regs
}
