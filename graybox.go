// Package graybox is a library of gray-box Information and Control
// Layers (ICLs), reproducing "Information and Control in Gray-Box
// Systems" (Arpaci-Dusseau & Arpaci-Dusseau, SOSP 2001).
//
// A gray-box ICL sits between an application and an operating system it
// cannot modify, and uses algorithmic knowledge of the OS plus run-time
// observations (mostly timing) to infer OS state and to control OS
// behavior through ordinary system calls. This package exposes:
//
//   - Platform: a deterministic simulated OS (Linux 2.2, NetBSD 1.5, or
//     Solaris 7 personality) on virtual time, replacing the paper's
//     hardware testbed so probe timing is exact and reproducible.
//   - FCCD: the File-Cache Content Detector (Section 4.1).
//   - FLDC: the File Layout Detector and Controller (Section 4.2).
//   - MAC: the Memory-based Admission Controller (Section 4.3).
//   - The gray toolbox (Section 5): timers, statistics, and the
//     microbenchmark parameter repository.
//
// The ICLs interact with the platform exclusively through its
// system-call facade (*Proc); they never inspect simulator internals.
//
// Quick start:
//
//	p := graybox.NewPlatform(graybox.PlatformConfig{})
//	err := p.Run("app", func(os *graybox.Proc) {
//	    det := graybox.NewFCCD(os, graybox.FCCDConfig{})
//	    plan, _ := det.ProbeFile("data")
//	    for _, seg := range plan { // cached segments first
//	        // read seg.Off .. seg.Off+seg.Len
//	    }
//	})
package graybox

import (
	"graybox/internal/apps"
	"graybox/internal/core/fccd"
	"graybox/internal/core/fldc"
	"graybox/internal/core/mac"
	"graybox/internal/core/shadow"
	"graybox/internal/core/toolbox"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// MB is one binary megabyte.
const MB = simos.MB

// Personality selects which OS behavior the platform models.
type Personality = simos.Personality

// The supported platform personalities.
const (
	Linux22  = simos.Linux22
	NetBSD15 = simos.NetBSD15
	Solaris7 = simos.Solaris7
)

// PlatformConfig configures a simulated machine; the zero value is the
// paper's testbed (Linux 2.2 personality, 896 MB memory, one data disk
// plus a swap disk).
type PlatformConfig = simos.Config

// Proc is a simulated process's system-call interface — the entire
// gray-box surface available to ICLs and applications.
type Proc = simos.OS

// Fd is an open file descriptor.
type Fd = simos.Fd

// MemRegion is an anonymous memory allocation.
type MemRegion = simos.MemRegion

// Platform is one simulated machine.
type Platform struct {
	*simos.System
}

// NewPlatform builds a machine.
func NewPlatform(cfg PlatformConfig) *Platform {
	return &Platform{System: simos.New(cfg)}
}

// --- FCCD ---

// FCCDConfig tunes the File-Cache Content Detector.
type FCCDConfig = fccd.Config

// FCCD detects file-cache contents by timing one-byte read probes.
type FCCD = fccd.Detector

// Segment is one entry of an FCCD access plan.
type Segment = fccd.Segment

// FileProbe ranks one file for cross-file ordering.
type FileProbe = fccd.FileProbe

// NewFCCD creates a detector bound to a process.
func NewFCCD(os *Proc, cfg FCCDConfig) *FCCD { return fccd.New(os, cfg) }

// CoalescePlan merges adjacent contiguous entries of an access plan so
// applications issue fewer, larger reads.
func CoalescePlan(plan []Segment) []Segment { return fccd.CoalescePlan(plan) }

// --- FLDC ---

// FLDC detects and controls on-disk file layout via stat() and
// directory refresh.
type FLDC = fldc.Layer

// RefreshOrder selects how FLDC.Refresh lays files out.
type RefreshOrder = fldc.RefreshOrder

// Refresh orders.
const (
	RefreshBySize = fldc.BySize
	RefreshByName = fldc.ByName
)

// NewFLDC creates the layer bound to a process.
func NewFLDC(os *Proc) *FLDC { return fldc.New(os) }

// --- MAC ---

// MACConfig tunes the Memory-based Admission Controller.
type MACConfig = mac.Config

// MAC determines available memory by probing and provides
// admission-controlled allocation (gb_alloc/gb_free).
type MAC = mac.Controller

// Allocation is memory obtained through MAC.GBAlloc.
type Allocation = mac.Allocation

// NewMAC creates a controller bound to a process.
func NewMAC(os *Proc, cfg MACConfig) *MAC { return mac.New(os, cfg) }

// MACBroker coordinates gb_alloc across cooperating processes: FIFO
// probe admission, optional fair-share caps, and hold-and-wait
// rejection (deadlock prevention). See mac.Broker.
type MACBroker = mac.Broker

// MACBrokerConfig tunes the broker.
type MACBrokerConfig = mac.BrokerConfig

// NewMACBroker creates the shared coordinator.
func NewMACBroker(cfg MACBrokerConfig) *MACBroker { return mac.NewBroker(cfg) }

// --- shadow (interposition) detector ---

// ShadowConfig sizes the interposition-based cache model.
type ShadowConfig = shadow.Config

// Shadow is the interposition-based alternative to the FCCD: it models
// the file cache by observing all reads that flow through it, with
// probe-based revalidation to catch drift from outside I/O.
type Shadow = shadow.Detector

// NewShadow creates the interposition layer.
func NewShadow(os *Proc, cfg ShadowConfig) *Shadow { return shadow.New(os, cfg) }

// --- gray toolbox ---

// Repository is the persistent store of microbenchmarked platform
// parameters shared by ICLs.
type Repository = toolbox.Repository

// NewRepository returns an empty parameter store.
func NewRepository(platform string) *Repository { return toolbox.NewRepository(platform) }

// RunMicrobenchmarks fills repo with this platform's parameters
// (requires an otherwise idle system).
func RunMicrobenchmarks(os *Proc, repo *Repository) error { return toolbox.RunAll(os, repo) }

// Stopwatch measures elapsed virtual time.
type Stopwatch = toolbox.Stopwatch

// NewStopwatch starts a stopwatch on the platform's cheap timer.
func NewStopwatch(os *Proc) *Stopwatch { return toolbox.NewStopwatch(os) }

// --- applications (for examples and benchmarks) ---

// AppCosts models application CPU and process-management costs.
type AppCosts = apps.Costs

// DefaultAppCosts matches a circa-2001 CPU.
func DefaultAppCosts() AppCosts { return apps.DefaultCosts() }
