package sim

import (
	"fmt"
	"strings"
)

// TraceEvent is one recorded simulation event.
type TraceEvent struct {
	At       Time
	Category string
	Message  string
}

// Tracer records annotated events against the virtual clock, for
// debugging simulations and narrating experiments. It keeps at most
// Limit events (oldest dropped); zero means unbounded.
type Tracer struct {
	e      *Engine
	Limit  int
	events []TraceEvent
	drops  int64
}

// NewTracer attaches a tracer to the engine.
func NewTracer(e *Engine, limit int) *Tracer {
	return &Tracer{e: e, Limit: limit}
}

// Eventf records an event at the current virtual time.
func (t *Tracer) Eventf(category, format string, args ...interface{}) {
	ev := TraceEvent{At: t.e.Now(), Category: category, Message: fmt.Sprintf(format, args...)}
	if t.Limit > 0 && len(t.events) >= t.Limit {
		copy(t.events, t.events[1:])
		t.events[len(t.events)-1] = ev
		t.drops++
		return
	}
	t.events = append(t.events, ev)
}

// Events returns a copy of the recorded events in time order.
func (t *Tracer) Events() []TraceEvent {
	return append([]TraceEvent(nil), t.events...)
}

// Dropped returns how many events were discarded to honor Limit.
func (t *Tracer) Dropped() int64 { return t.drops }

// Filter returns events in the given category.
func (t *Tracer) Filter(category string) []TraceEvent {
	var out []TraceEvent
	for _, ev := range t.events {
		if ev.Category == category {
			out = append(out, ev)
		}
	}
	return out
}

// String renders the trace, one event per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, ev := range t.events {
		fmt.Fprintf(&b, "%12v [%s] %s\n", ev.At, ev.Category, ev.Message)
	}
	if t.drops > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", t.drops)
	}
	return b.String()
}
