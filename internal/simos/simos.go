// Package simos assembles the substrate packages into a simulated
// operating system — the gray box. It provides the only interface the
// ICLs are allowed to use: a per-process system-call facade (OS) whose
// every operation charges realistic virtual time, plus harness-only
// introspection for experiment ground truth.
//
// Three personalities reproduce the platforms of Section 4:
//
//	Linux22  — unified page cache (clock replacement) sharing physical
//	           memory with anonymous pages; the cache shrinks before the
//	           VM swaps.
//	NetBSD15 — fixed 64 MB buffer cache with strict LRU, separate from
//	           anonymous memory (the pre-UVM design the paper observed).
//	Solaris7 — unified cache with the scan-resistant "hold-first"
//	           behavior the paper measured (early residents are very
//	           hard to dislodge).
package simos

import (
	"fmt"
	"strings"

	"graybox/internal/audit"
	"graybox/internal/cache"
	"graybox/internal/disk"
	"graybox/internal/fs"
	"graybox/internal/mem"
	"graybox/internal/sim"
	"graybox/internal/telemetry"
	"graybox/internal/vm"
)

// Personality selects which platform's cache/VM behavior to model.
type Personality string

// The three platforms of the paper's evaluation.
const (
	Linux22  Personality = "linux22"
	NetBSD15 Personality = "netbsd15"
	Solaris7 Personality = "solaris7"
)

// MB is one binary megabyte.
const MB = 1 << 20

// Config describes a simulated machine.
type Config struct {
	Personality Personality
	Seed        uint64

	// MemoryMB is physical memory (default 896, the paper's machine);
	// KernelMB is reserved for the kernel (default 66, leaving the
	// ~830 MB the paper reports available).
	MemoryMB int
	KernelMB int

	// NumDisks is the number of data disks (default 1). A dedicated swap
	// disk is always added, mirroring the paper's Figure 7 setup where
	// the fifth disk is used only for paging.
	NumDisks int

	// CPUs selects the simulated-processor count. 0 (the default) keeps
	// the uncontended infinite-core model every pre-scheduler experiment
	// was measured under: Compute is a pure timer and concurrent CPU
	// bursts overlap freely. >= 1 engages the SMP scheduler: computing
	// processes contend for CPUs through per-CPU run queues with
	// round-robin timeslicing (sim.SetCPUs).
	CPUs int
	// CPUQuantum is the round-robin timeslice when CPUs >= 1
	// (default sim.DefaultQuantum, 10ms).
	CPUQuantum sim.Time

	// ShardWorkers selects the engine's sharded event lanes with a
	// harvest pool of that many workers (sim.SetShardParallel). 0 (the
	// default) keeps the serial single-lane engine — the bit-exact
	// anchor; any value >= 1 produces byte-identical output, only
	// faster on multi-core hosts at large event populations.
	ShardWorkers int

	// NetBSDCacheMB overrides the fixed cache size for NetBSD15
	// (default 64).
	NetBSDCacheMB int

	// CacheFloorMB is the residency the unified cache defends under
	// memory pressure (default 4).
	CacheFloorMB int

	// MaxDirtyFrac throttles writers once this fraction of memory is
	// dirty (default 0.10).
	MaxDirtyFrac float64

	// TierDisk, when non-nil, adds one more data disk with its own
	// geometry after the NumDisks uniform ones — the fast half of a
	// fast/slow tier pair (e.g. disk.FastParams() next to the default
	// slow disks). It mounts as /mnt<NumDisks>/ with its own file
	// system. Its BlockSize must equal Disk.BlockSize: all file systems
	// share one cache namespace and page size.
	TierDisk *disk.Params

	Disk disk.Params
	FS   fs.Config
	VM   vm.Config
}

func (c Config) withDefaults() Config {
	if c.Personality == "" {
		c.Personality = Linux22
	}
	if c.MemoryMB == 0 {
		c.MemoryMB = 896
	}
	if c.KernelMB == 0 {
		c.KernelMB = 66
	}
	if c.NumDisks == 0 {
		c.NumDisks = 1
	}
	if c.NetBSDCacheMB == 0 {
		c.NetBSDCacheMB = 64
	}
	if c.CacheFloorMB == 0 {
		c.CacheFloorMB = 4
	}
	if c.MaxDirtyFrac == 0 {
		c.MaxDirtyFrac = 0.10
	}
	if c.Disk.BlockSize == 0 {
		c.Disk = disk.DefaultParams()
	}
	if c.FS.GroupCylinders == 0 {
		c.FS = fs.DefaultConfig()
	}
	if c.VM.TouchResident == 0 {
		c.VM = vm.DefaultConfig()
	}
	return c
}

// System is one simulated machine.
type System struct {
	Engine *sim.Engine
	Pool   *mem.Pool
	Cache  *cache.Cache
	VM     *vm.VM

	cfg       Config
	dataDisks []*disk.Disk
	swapDisk  *disk.Disk
	fss       []*fs.FS

	// Telemetry state; nil (disabled, zero-cost) until EnableTelemetry.
	tel    *telemetry.Registry
	sysTel *sysTel

	// Audit state; nil (disabled, zero-cost) until EnableAudit.
	aud *audit.Auditor
}

// New builds a machine with the given configuration.
func New(cfg Config) *System {
	cfg = cfg.withDefaults()
	e := sim.NewEngine(cfg.Seed)
	if cfg.CPUs > 0 {
		e.SetCPUs(cfg.CPUs, cfg.CPUQuantum)
	}
	if cfg.ShardWorkers > 0 {
		e.SetShardParallel(cfg.ShardWorkers)
	}
	pageSize := cfg.Disk.BlockSize
	frames := cfg.MemoryMB * MB / pageSize
	kernelFrames := cfg.KernelMB * MB / pageSize
	pool := mem.NewPool(e, frames-kernelFrames)

	s := &System{Engine: e, Pool: pool, cfg: cfg}
	for i := 0; i < cfg.NumDisks; i++ {
		s.dataDisks = append(s.dataDisks, disk.New(e, cfg.Disk))
	}
	if cfg.TierDisk != nil {
		if cfg.TierDisk.BlockSize != cfg.Disk.BlockSize {
			panic(fmt.Sprintf("simos: tier disk block size %d != %d (one cache page size per machine)",
				cfg.TierDisk.BlockSize, cfg.Disk.BlockSize))
		}
		s.dataDisks = append(s.dataDisks, disk.New(e, *cfg.TierDisk))
	}
	s.swapDisk = disk.New(e, cfg.Disk)

	maxDirty := int(float64(pool.Capacity()) * cfg.MaxDirtyFrac)
	switch cfg.Personality {
	case NetBSD15:
		s.Cache = cache.New(e, cache.Config{
			Capacity:      cfg.NetBSDCacheMB * MB / pageSize,
			PrivateFrames: true,
			MaxDirty:      maxDirty,
		}, cache.NewLRU(), nil)
	case Solaris7:
		s.Cache = cache.New(e, cache.Config{
			FloorPages: cfg.CacheFloorMB * MB / pageSize,
			MaxDirty:   maxDirty,
		}, cache.NewHoldFirst(), pool)
	case Linux22:
		s.Cache = cache.New(e, cache.Config{
			FloorPages: cfg.CacheFloorMB * MB / pageSize,
			MaxDirty:   maxDirty,
		}, cache.NewClock(), pool)
	default:
		panic(fmt.Sprintf("simos: unknown personality %q", cfg.Personality))
	}

	s.VM = vm.New(e, pool, s.swapDisk, 0, cfg.VM)
	// Reclaim order: squeeze the (clean-page-rich) file cache before
	// swapping anonymous memory.
	if cfg.Personality != NetBSD15 {
		pool.AddShrinker(s.Cache)
	}
	pool.AddShrinker(s.VM)

	for i, d := range s.dataDisks {
		fsCfg := cfg.FS
		fsCfg.InoBase = fs.Ino(int64(i) << 40)
		s.fss = append(s.fss, fs.New(e, d, s.Cache, fsCfg))
	}
	return s
}

// Personality returns which platform this system models.
func (s *System) Personality() Personality { return s.cfg.Personality }

// CPUs returns the simulated-processor count (0 = the uncontended
// infinite-core model).
func (s *System) CPUs() int { return s.Engine.CPUs() }

// PageSize returns the VM/file page size in bytes.
func (s *System) PageSize() int { return s.cfg.Disk.BlockSize }

// NumDisks returns the number of data disks.
func (s *System) NumDisks() int { return len(s.dataDisks) }

// FS returns the file system on data disk i (harness use; applications
// and ICLs go through OS paths).
func (s *System) FS(i int) *fs.FS { return s.fss[i] }

// SwapDisk returns the paging disk (harness use).
func (s *System) SwapDisk() *disk.Disk { return s.swapDisk }

// DataDisk returns data disk i (harness use).
func (s *System) DataDisk(i int) *disk.Disk { return s.dataDisks[i] }

// resolve maps a path to its file system. Paths beginning with "/mntN/"
// live on data disk N; everything else lives on disk 0.
func (s *System) resolve(path string) (*fs.FS, string, error) {
	trimmed := strings.TrimPrefix(path, "/")
	if rest, ok := strings.CutPrefix(trimmed, "mnt"); ok {
		if i := strings.IndexByte(rest, '/'); i > 0 {
			var n int
			if _, err := fmt.Sscanf(rest[:i], "%d", &n); err == nil {
				if n < 0 || n >= len(s.fss) {
					return nil, "", fmt.Errorf("simos: no such mount in %q", path)
				}
				return s.fss[n], rest[i+1:], nil
			}
		}
	}
	return s.fss[0], trimmed, nil
}

// DropCaches instantly empties the file cache (the experimenter's
// "flush the file cache" step between runs — harness only).
func (s *System) DropCaches() { s.Cache.Drop() }

// AvailableMB estimates memory available to applications: free frames
// plus reclaimable cache above its floor (ground truth for validating
// MAC; an ICL cannot call this).
func (s *System) AvailableMB() int {
	return int(s.availablePages()) * s.PageSize() / MB
}

// availablePages is the page-granular ground truth behind AvailableMB
// (shared with the audit oracle).
func (s *System) availablePages() int64 {
	pages := s.Pool.Free()
	if s.cfg.Personality != NetBSD15 {
		reclaimable := s.Cache.Held() - s.Cache.Floor()
		if reclaimable > 0 {
			pages += reclaimable
		}
	}
	return int64(pages)
}
