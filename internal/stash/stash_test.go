package stash

import (
	"errors"
	"fmt"
	"testing"

	"graybox/internal/disk"
	"graybox/internal/simos"
)

// newMachine builds a small two-tier machine: one default (slow) data
// disk for the source corpus and a fast tier disk for the stash's
// backing file, mounted at /mnt1.
func newMachine(seed uint64) *simos.System {
	fast := disk.FastParams()
	return simos.New(simos.Config{
		Personality:  simos.Linux22,
		Seed:         seed,
		MemoryMB:     16,
		KernelMB:     4,
		CacheFloorMB: 1,
		TierDisk:     &fast,
	})
}

const ps = 4096 // page/block size of both tiers

// mkFixtures creates nblocks-block source files src.0..src.<n-1> on the
// slow disk and a backing file sized for quota blocks on the fast tier,
// all instantly (CreateSized performs no I/O, keeping machines
// snapshot-pure).
func mkFixtures(t testing.TB, s *simos.System, files, nblocks, quota int) {
	t.Helper()
	for i := 0; i < files; i++ {
		if _, err := s.FS(0).CreateSized(fmt.Sprintf("src.%d", i), int64(nblocks)*ps); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.FS(1).CreateSized("stash0", int64(quota)*ps); err != nil {
		t.Fatal(err)
	}
}

func run(t testing.TB, s *simos.System, body func(os *simos.OS)) {
	t.Helper()
	if err := s.Run("stash-test", body); err != nil {
		t.Fatal(err)
	}
}

func TestHitMissAdmitEvict(t *testing.T) {
	s := newMachine(1)
	mkFixtures(t, s, 1, 32, 8)
	run(t, s, func(os *simos.OS) {
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 8})
		if err != nil {
			t.Fatal(err)
		}
		f, err := st.Open("src.0")
		if err != nil {
			t.Fatal(err)
		}
		// Cold pass over 8 blocks: all miss, all admit (naive policy).
		if err := f.Read(0, 8*ps); err != nil {
			t.Fatal(err)
		}
		if got := st.Stats(); got.Misses != 8 || got.Admits != 8 || got.Hits != 0 {
			t.Fatalf("cold pass stats = %+v, want 8 misses, 8 admits", got)
		}
		// Warm pass: all hits.
		if err := f.Read(0, 8*ps); err != nil {
			t.Fatal(err)
		}
		if got := st.Stats(); got.Hits != 8 {
			t.Fatalf("warm pass stats = %+v, want 8 hits", got)
		}
		// 8 more blocks at quota: each admission evicts the LRU tail.
		if err := f.Read(8*ps, 8*ps); err != nil {
			t.Fatal(err)
		}
		got := st.Stats()
		if got.Evictions != 8 || st.Len() != 8 {
			t.Fatalf("evictions = %d, len = %d, want 8, 8", got.Evictions, st.Len())
		}
		// The survivors are the 8 most recently touched blocks, MRU first.
		man := st.Manifest()
		for i, id := range man {
			if want := int64(15 - i); id.Page != want {
				t.Fatalf("manifest[%d] = page %d, want %d", i, id.Page, want)
			}
		}
		// Reads past EOF are errors, like fs reads.
		if err := f.Read(31*ps, 2*ps); err == nil {
			t.Error("read past EOF succeeded")
		}
	})
}

func TestGrayBoxDeclinesOSCachedBlocks(t *testing.T) {
	s := newMachine(2)
	mkFixtures(t, s, 2, 16, 64)
	aud := s.EnableAudit()
	run(t, s, func(os *simos.OS) {
		// Warm src.1 into the invisible OS cache the way a co-resident
		// application would.
		warm, err := os.Open("src.1")
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.Read(0, warm.Size()); err != nil {
			t.Fatal(err)
		}
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 64, GrayBox: true})
		if err != nil {
			t.Fatal(err)
		}
		// Cold file first: the cluster-leading fetch is disk-speed and
		// seeds the classifier's slow class; the fs's clustered miss
		// read pulls the rest of the file into the OS cache, so the
		// remaining fetches are memory-speed and correctly declined —
		// they are already resident underneath.
		cold, err := st.Open("src.0")
		if err != nil {
			t.Fatal(err)
		}
		if err := cold.Read(0, 16*ps); err != nil {
			t.Fatal(err)
		}
		coldStats := st.Stats()
		if coldStats.Admits < 1 || coldStats.Admits+coldStats.Rejects != 16 {
			t.Fatalf("cold file stats = %+v, want >=1 admit over 16 decisions", coldStats)
		}
		// Warmed file: fetches come back at memory speed, so the
		// gray-box policy declines them — no double-caching.
		wf, err := st.Open("src.1")
		if err != nil {
			t.Fatal(err)
		}
		if err := wf.Read(0, 16*ps); err != nil {
			t.Fatal(err)
		}
		got := st.Stats()
		if got.Rejects-coldStats.Rejects < 15 {
			t.Fatalf("stats = %+v: gray-box admitted OS-cached blocks (cold pass: %+v)", got, coldStats)
		}
	})
	rep := aud.Report()
	if rep.Stash == nil {
		t.Fatal("audit report has no stash section")
	}
	if rep.Stash.Decisions != 32 {
		t.Errorf("decisions = %d, want 32", rep.Stash.Decisions)
	}
	// At most the classifier's first warm sample is a wasted admission.
	if rep.Stash.Wasted > 1 {
		t.Errorf("wasted admissions = %d, want <= 1", rep.Stash.Wasted)
	}
}

func TestNaiveWastesAdmissionsOnOSCachedBlocks(t *testing.T) {
	s := newMachine(2)
	mkFixtures(t, s, 2, 16, 64)
	aud := s.EnableAudit()
	run(t, s, func(os *simos.OS) {
		warm, err := os.Open("src.1")
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.Read(0, warm.Size()); err != nil {
			t.Fatal(err)
		}
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 64})
		if err != nil {
			t.Fatal(err)
		}
		wf, err := st.Open("src.1")
		if err != nil {
			t.Fatal(err)
		}
		if err := wf.Read(0, 16*ps); err != nil {
			t.Fatal(err)
		}
	})
	rep := aud.Report()
	if rep.Stash == nil {
		t.Fatal("audit report has no stash section")
	}
	if rep.Stash.Wasted != 16 || rep.Stash.WastedRate != 1 {
		t.Errorf("naive wasted = %d rate = %.2f, want 16 at rate 1.0 (every block was OS-cached)",
			rep.Stash.Wasted, rep.Stash.WastedRate)
	}
}

func TestWriteBackAndThrottle(t *testing.T) {
	s := newMachine(3)
	mkFixtures(t, s, 1, 32, 16)
	run(t, s, func(os *simos.OS) {
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 16, MaxDirty: 2})
		if err != nil {
			t.Fatal(err)
		}
		f, err := st.Open("src.0")
		if err != nil {
			t.Fatal(err)
		}
		// Dirty 6 blocks: the FIFO holds 2, so 4 oldest flush inline.
		for pg := int64(0); pg < 6; pg++ {
			if err := f.Write(pg*ps, ps); err != nil {
				t.Fatal(err)
			}
		}
		got := st.Stats()
		if st.DirtyLen() != 2 || got.ThrottleFlushes != 4 {
			t.Fatalf("dirty = %d, throttle flushes = %d, want 2 and 4", st.DirtyLen(), got.ThrottleFlushes)
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		if st.DirtyLen() != 0 {
			t.Fatalf("dirty = %d after Sync, want 0", st.DirtyLen())
		}
		if got := st.Stats(); got.Writebacks != 6 {
			t.Fatalf("writebacks = %d, want 6", got.Writebacks)
		}
		// A partial overwrite of existing data reads the rest of the
		// block from the source (RMW) before admitting it dirty.
		if err := f.Write(10*ps+100, 10); err != nil {
			t.Fatal(err)
		}
		// Extending the file through the stash grows its view of size.
		if err := f.Write(32*ps, ps); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 33*ps {
			t.Fatalf("size = %d after extension, want %d", f.Size(), int64(33*ps))
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
	})
	// The write-back reached the real file: the source grew.
	run(t, s, func(os *simos.OS) {
		fd, err := os.Open("src.0")
		if err != nil {
			t.Fatal(err)
		}
		if fd.Size() != 33*ps {
			t.Fatalf("source size = %d after sync, want %d", fd.Size(), int64(33*ps))
		}
	})
}

func TestOfflineDegradedMode(t *testing.T) {
	s := newMachine(4)
	mkFixtures(t, s, 2, 16, 16)
	aud := s.EnableAudit()
	run(t, s, func(os *simos.OS) {
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 16})
		if err != nil {
			t.Fatal(err)
		}
		f, err := st.Open("src.0")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Read(0, 8*ps); err != nil {
			t.Fatal(err)
		}

		st.SetOffline(true)
		// Resident blocks are still served.
		if err := f.Read(0, 8*ps); err != nil {
			t.Fatalf("offline read of resident blocks failed: %v", err)
		}
		// Non-resident blocks surface as typed errors.
		err = f.Read(8*ps, ps)
		if !IsOfflineMiss(err) {
			t.Fatalf("offline miss returned %v, want OfflineMissError", err)
		}
		// The source is unreachable: no new files, no syncing.
		if _, err := st.Open("src.1"); !errors.Is(err, ErrOffline) {
			t.Fatalf("offline Open returned %v, want ErrOffline", err)
		}
		// Writes to resident blocks buffer in the stash.
		if err := f.Write(0, ps); err != nil {
			t.Fatal(err)
		}
		if st.DirtyLen() != 1 {
			t.Fatalf("dirty = %d after offline write, want 1", st.DirtyLen())
		}
		if err := st.Sync(); !errors.Is(err, ErrOffline) {
			t.Fatalf("offline Sync returned %v, want ErrOffline", err)
		}

		// Back online: the buffered write drains.
		st.SetOffline(false)
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		if st.DirtyLen() != 0 {
			t.Fatalf("dirty = %d after recovery Sync, want 0", st.DirtyLen())
		}
	})
	rep := aud.Report()
	if rep.Stash == nil || rep.Stash.OfflineMisses != 1 {
		t.Fatalf("audit stash section = %+v, want 1 offline miss", rep.Stash)
	}
}

func TestManifestPreloadReproducesAgedStash(t *testing.T) {
	age := func(os *simos.OS, st *Stash) {
		f, err := st.Open("src.0")
		if err != nil {
			panic(err)
		}
		// Touch blocks in a recognizable recency pattern.
		for _, pg := range []int64{0, 1, 2, 3, 1, 0} {
			if err := f.Read(pg*ps, ps); err != nil {
				panic(err)
			}
		}
	}

	s1 := newMachine(5)
	mkFixtures(t, s1, 1, 16, 8)
	var man []BlockID
	run(t, s1, func(os *simos.OS) {
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 8})
		if err != nil {
			t.Fatal(err)
		}
		age(os, st)
		man = st.Manifest()
	})
	if len(man) != 4 {
		t.Fatalf("manifest has %d blocks, want 4", len(man))
	}
	if man[0].Page != 0 || man[1].Page != 1 {
		t.Fatalf("manifest recency order = %v, want pages 0,1 first", man)
	}

	// A fresh, identically-built machine preloads the manifest with no
	// aging I/O and serves it entirely from the stash.
	s2 := newMachine(5)
	mkFixtures(t, s2, 1, 16, 8)
	run(t, s2, func(os *simos.OS) {
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Preload(man); err != nil {
			t.Fatal(err)
		}
		// Recency state is reproduced exactly (checked before any read
		// perturbs it).
		for i, id := range st.Manifest() {
			if id != man[i] {
				t.Fatalf("preloaded manifest diverges at %d: %v vs %v", i, id, man[i])
			}
		}
		f, err := st.Open("src.0")
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range man {
			if err := f.Read(id.Page*ps, ps); err != nil {
				t.Fatal(err)
			}
		}
		got := st.Stats()
		if got.Hits != 4 || got.Misses != 0 {
			t.Fatalf("preloaded reads: %+v, want 4 hits, 0 misses", got)
		}
		// Preload is once-only and quota-checked.
		if err := st.Preload(man); err == nil {
			t.Error("second Preload into non-empty stash succeeded")
		}
	})
}

func TestTierDiskGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched tier-disk block size did not panic")
		}
	}()
	bad := disk.FastParams()
	bad.BlockSize = 8192
	simos.New(simos.Config{Personality: simos.Linux22, MemoryMB: 16, KernelMB: 4, TierDisk: &bad})
}
