// Package fldc implements the File Layout Detector and Controller
// (Section 4.2): a gray-box ICL that orders file accesses by their
// probable on-disk layout, and controls layout by "refreshing" a
// directory — rewriting its files in a chosen order so that i-number
// order once again matches data-block order.
//
// Gray-box knowledge assumed (Section 4.2.1): the file system descends
// from FFS, so (a) files in one directory share a cylinder group, and
// (b) in a clean directory, creation order — observable through the
// i-number returned by stat() — matches data-block layout.
package fldc

import (
	"fmt"
	"sort"

	"graybox/internal/core/fccd"
	"graybox/internal/core/probe"
	"graybox/internal/fs"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/telemetry"
)

// Layer is the FLDC ICL bound to one process.
type Layer struct {
	os *simos.OS

	// meter is the shared probe layer timing the stat() probes; audit
	// hooks bill each ordering pass by cost delta.
	meter *probe.Meter
}

// New creates the layer.
func New(os *simos.OS) *Layer {
	return &Layer{
		os:    os,
		meter: probe.NewMeter(os, os.Telemetry().Histogram("fldc.stat_probe_ns", telemetry.LatencyBuckets)),
	}
}

// ProbeCost returns the layer's accumulated stat-probe cost.
func (l *Layer) ProbeCost() probe.Cost { return l.meter.Cost() }

// stat issues one stat() probe through the probe layer.
func (l *Layer) stat(path string) (st fs.Stat, err error) {
	start := l.meter.Begin()
	st, err = l.os.Stat(path)
	if err != nil {
		return st, err
	}
	l.meter.End(start)
	return st, nil
}

// fileInfo pairs a path with its stat result.
type fileInfo struct {
	path string
	ino  int64
	size int64
}

func (l *Layer) statAll(paths []string) ([]fileInfo, error) {
	infos := make([]fileInfo, 0, len(paths))
	for _, p := range paths {
		st, err := l.stat(p)
		if err != nil {
			return nil, err
		}
		infos = append(infos, fileInfo{path: p, ino: int64(st.Ino), size: st.Size})
	}
	return infos, nil
}

// OrderByINumber stats every file and returns the paths sorted by
// i-number — the detector half of the layer. ("Sorting by i-number
// essentially obviates the need to sort by directory.")
func (l *Layer) OrderByINumber(paths []string) ([]string, error) {
	cost0 := l.meter.Cost()
	infos, err := l.statAll(paths)
	if err != nil {
		return nil, err
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].ino < infos[b].ino })
	out := make([]string, len(infos))
	for i, fi := range infos {
		out[i] = fi.path
	}
	delta := l.meter.Cost().Sub(cost0)
	l.os.Audit().FLDCOrder(out, delta.Probes, delta.NS)
	return out, nil
}

// OrderByMtime stats every file and returns the paths sorted by
// modification time — the LFS port the paper sketches in Section 4.2.5:
// "within LFS, the ICL could take advantage of the knowledge that
// writes that occur near one another in time lead to proximity in
// space". On a log-structured allocator, write order (mtime) predicts
// layout where i-numbers (which are reused) do not.
func (l *Layer) OrderByMtime(paths []string) ([]string, error) {
	cost0 := l.meter.Cost()
	type mt struct {
		path  string
		mtime sim.Time
		ino   int64
	}
	infos := make([]mt, 0, len(paths))
	for _, p := range paths {
		st, err := l.stat(p)
		if err != nil {
			return nil, err
		}
		infos = append(infos, mt{path: p, mtime: st.Mtime, ino: int64(st.Ino)})
	}
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].mtime != infos[b].mtime {
			return infos[a].mtime < infos[b].mtime
		}
		return infos[a].ino < infos[b].ino
	})
	out := make([]string, len(infos))
	for i, fi := range infos {
		out[i] = fi.path
	}
	delta := l.meter.Cost().Sub(cost0)
	l.os.Audit().FLDCOrder(out, delta.Probes, delta.NS)
	return out, nil
}

// OrderByDirectory groups paths by their directory and returns them
// grouped (directories in first-appearance order, names untouched
// within a group) — the simpler heuristic the paper compares against.
func (l *Layer) OrderByDirectory(paths []string) []string {
	dirOf := func(p string) string {
		for i := len(p) - 1; i >= 0; i-- {
			if p[i] == '/' {
				return p[:i]
			}
		}
		return "."
	}
	var order []string
	groups := make(map[string][]string)
	for _, p := range paths {
		d := dirOf(p)
		if _, seen := groups[d]; !seen {
			order = append(order, d)
		}
		groups[d] = append(groups[d], p)
	}
	var out []string
	for _, d := range order {
		out = append(out, groups[d]...)
	}
	return out
}

// RefreshOrder selects how a refresh lays files out.
type RefreshOrder int

const (
	// BySize writes small files first, so that large files — whose
	// presence lowers the i-number/layout correlation — get the late
	// i-numbers and blocks (Section 4.2.1).
	BySize RefreshOrder = iota
	// ByName writes files in name order (a user-specified order).
	ByName
)

// copyChunk is the unit in which refresh copies file data.
const copyChunk = 1 << 20

// Refresh rewrites directory dir so the system returns to a known state
// where i-number order matches layout. The six steps of Section 4.2.2:
// create a temporary directory at the same level; sort the files; copy
// them over in sorted order; fix up times; delete the old directory;
// rename the temporary one into place.
func (l *Layer) Refresh(dir string, order RefreshOrder) error {
	os := l.os
	os.Proc().Track().Begin("icl", "fldc refresh")
	defer os.Proc().Track().End()
	names, err := os.Readdir(dir)
	if err != nil {
		return err
	}
	infos := make([]fileInfo, 0, len(names))
	type times struct{ atime, mtime sim.Time }
	saved := make(map[string]times)
	for _, n := range names {
		st, err := l.stat(dir + "/" + n)
		if err != nil {
			return err
		}
		infos = append(infos, fileInfo{path: n, ino: int64(st.Ino), size: st.Size})
		saved[n] = times{st.Atime, st.Mtime}
	}

	switch order {
	case ByName:
		sort.Slice(infos, func(a, b int) bool { return infos[a].path < infos[b].path })
	default: // BySize, smallest first; names break ties deterministically
		sort.Slice(infos, func(a, b int) bool {
			if infos[a].size != infos[b].size {
				return infos[a].size < infos[b].size
			}
			return infos[a].path < infos[b].path
		})
	}

	// Step 1: temporary directory at the same level.
	tmp := dir + ".gbrefresh"
	if err := os.Mkdir(tmp); err != nil {
		return fmt.Errorf("fldc: refresh: %w", err)
	}
	// Steps 2-4: copy in sorted order; restore times.
	for _, fi := range infos {
		if err := l.copyFile(dir+"/"+fi.path, tmp+"/"+fi.path); err != nil {
			return err
		}
		tm := saved[fi.path]
		if err := os.Utimes(tmp+"/"+fi.path, tm.atime, tm.mtime); err != nil {
			return err
		}
	}
	// Step 5: delete the old directory.
	for _, fi := range infos {
		if err := os.Unlink(dir + "/" + fi.path); err != nil {
			return err
		}
	}
	if err := os.Rmdir(dir); err != nil {
		return err
	}
	// Step 6: rename into place.
	return os.Rename(tmp, dir)
}

func (l *Layer) copyFile(src, dst string) error {
	os := l.os
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	size := in.Size()
	for off := int64(0); off < size; off += copyChunk {
		n := int64(copyChunk)
		if off+n > size {
			n = size - off
		}
		if err := in.Read(off, n); err != nil {
			return err
		}
		if err := out.Write(off, n); err != nil {
			return err
		}
	}
	return nil
}

// ComposeWithFCCD returns the best full ordering of paths (Section
// 4.2.4): probe every file with the FCCD, cluster the probe times into
// two groups with standard statistical clustering, and return the
// predicted-cached group first — each group internally sorted by
// i-number, since the cluster split may be wrong (e.g. when every file
// is on disk).
func (l *Layer) ComposeWithFCCD(d *fccd.Detector, paths []string) ([]string, error) {
	probes, err := d.OrderFiles(paths)
	if err != nil {
		return nil, err
	}
	// Cluster probe times with the shared bimodal splitter, minSep 0:
	// honor the raw 2-means split even when the separation is small,
	// because the i-number sort within each group makes a wrong split
	// cheap ("the cluster split may be wrong, e.g. when every file is on
	// disk").
	times := make([]float64, len(probes))
	for i, pr := range probes {
		times[i] = float64(pr.ProbeTime)
	}
	sp := probe.SplitBimodal(times, 0)
	group := func(idx []int) ([]string, error) {
		ps := make([]string, len(idx))
		for i, j := range idx {
			ps[i] = probes[j].Path
		}
		return l.OrderByINumber(ps)
	}
	fast, err := group(sp.Fast)
	if err != nil {
		return nil, err
	}
	slow, err := group(sp.Slow)
	if err != nil {
		return nil, err
	}
	return append(fast, slow...), nil
}
