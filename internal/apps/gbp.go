package apps

import (
	"fmt"

	"graybox/internal/core/fccd"
	"graybox/internal/core/fldc"
	"graybox/internal/simos"
)

// GBPMode selects what the gbp utility orders by (its command-line
// flags in the paper).
type GBPMode int

const (
	// GBPMem orders by file-cache contents (`gbp -mere`).
	GBPMem GBPMode = iota
	// GBPFile orders by probable disk layout (`gbp -file`).
	GBPFile
	// GBPCompose orders cached files first, each group by i-number
	// (`gbp -compose`, Section 4.2.4).
	GBPCompose
)

// GBP is the command-line tool that lets unmodified applications benefit
// from gray-box knowledge: it returns the input paths in the predicted
// best access order. Callers model the pipeline cost themselves (see
// Costs.ForkExec and Costs.PipeCopyPerByte).
func GBP(os *simos.OS, mode GBPMode, paths []string, det *fccd.Detector) ([]string, error) {
	switch mode {
	case GBPMem:
		probes, err := det.OrderFiles(paths)
		if err != nil {
			return nil, err
		}
		return fccd.Paths(probes), nil
	case GBPFile:
		return fldc.New(os).OrderByINumber(paths)
	case GBPCompose:
		return fldc.New(os).ComposeWithFCCD(det, paths)
	default:
		return nil, fmt.Errorf("apps: unknown gbp mode %d", mode)
	}
}
