package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// buildProfiledRegistry records a small known call tree:
//
//	app track: outer [0,100] { inner [10,40], inner [50,60] }, solo [200,230]
//
// outer self = 100 - 30 - 10 = 60; inner self = 30 and 10.
func buildProfiledRegistry() (*Registry, *fakeClock) {
	clk := &fakeClock{}
	r := NewRegistry("plat a", clk.fn())
	tr := r.NewTrack("app 1")
	clk.now = 0
	tr.Begin("icl", "outer")
	clk.now = 10
	tr.Begin("icl", "inner")
	clk.now = 40
	tr.End()
	clk.now = 50
	tr.Begin("icl", "inner")
	clk.now = 60
	tr.End()
	clk.now = 100
	tr.End()
	clk.now = 200
	tr.Begin("icl", "solo")
	clk.now = 230
	tr.End()
	return r, clk
}

func TestWriteFoldedStacks(t *testing.T) {
	r, _ := buildProfiledRegistry()
	var buf bytes.Buffer
	if err := WriteFolded(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"plat_a;app_1;outer 60\n" +
		"plat_a;app_1;outer;inner 40\n" +
		"plat_a;app_1;solo 30\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWriteFoldedDeterministic(t *testing.T) {
	r1, _ := buildProfiledRegistry()
	r2, _ := buildProfiledRegistry()
	var b1, b2 bytes.Buffer
	if err := WriteFolded(&b1, []*Registry{r1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFolded(&b2, []*Registry{r2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical registries produced different folded output")
	}
}

func TestWriteTopTable(t *testing.T) {
	r, _ := buildProfiledRegistry()
	var buf bytes.Buffer
	if err := WriteTopTable(&buf, []*Registry{r}, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 { // header + top 2
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	// outer has the largest self time (60), then inner (40).
	if !strings.HasPrefix(lines[1], "outer") || !strings.HasPrefix(lines[2], "inner") {
		t.Errorf("ranking wrong:\n%s", buf.String())
	}
	// inner: 2 calls, self 40 ns, total 40 ns.
	f := strings.Fields(lines[2])
	if f[1] != "2" || f[2] != "0.000" {
		t.Errorf("inner row = %q", lines[2])
	}
}

func TestProfileSkipsInstantsAndOpenSpans(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("p", clk.fn())
	tr := r.NewTrack("t")
	tr.Begin("c", "open-forever")
	clk.now = 5
	tr.Instant("c", "marker")
	clk.now = 10
	tr.Begin("c", "child")
	clk.now = 30
	tr.End()
	// "open-forever" never ends: its child becomes an orphan rooted at
	// the track, and the instant contributes nothing.
	var buf bytes.Buffer
	if err := WriteFolded(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	want := "p;t;child 20\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestProfileNilAndEmptyRegistries(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{}
	empty := NewRegistry("e", clk.fn())
	if err := WriteFolded(&buf, []*Registry{nil, empty}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("expected no folded lines, got %q", buf.String())
	}
	buf.Reset()
	if err := WriteTopTable(&buf, nil, 10); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1 { // header only
		t.Errorf("expected header only, got %q", buf.String())
	}
}
