// Package ring provides an intrusive, index-based doubly linked list
// backed by a slice arena with a free list. It replaces container/list on
// the simulated kernel's per-page hot paths (cache CLOCK ring, dirty
// FIFO, VM page-daemon clock, AFS and shadow LRUs), where allocating a
// heap node per tracked page made large sweeps GC-bound.
//
// Nodes live in one contiguous slice; links are int32 indices into that
// slice, and removed nodes go onto an internal free list for reuse. Once
// the arena has grown to the working-set size, every operation is
// allocation-free: a steady-state insert reuses the slot the matching
// remove released (the same discipline the sim engine's event pool
// follows). Handles stay valid across arena growth because they are
// indices, not pointers — but for the same reason, callers must not
// retain *T pointers from At across an insertion.
//
// Index 0 is a sentinel that closes the list into a physical ring, so
// link and unlink need no end-of-list branches, and the zero Handle
// doubles as None. The zero List is empty and ready to use.
package ring

// Handle names a node in a List. Handles are stable for the lifetime of
// the element: they survive arena growth and other elements' insertion
// and removal, and are invalidated only by Remove (after which the slot
// may be reused by a later insert). The zero Handle is None.
type Handle int32

// None is the null Handle, returned by Front/Back/Next/Prev when no
// element exists. It is the index of the internal sentinel, which never
// holds an element.
const None Handle = 0

type node[T any] struct {
	prev, next int32
	val        T
}

// List is an intrusive doubly linked list of T backed by a slice arena.
// The zero value is an empty list. Lists must not be copied after use.
type List[T any] struct {
	// nodes[0] is the sentinel: nodes[0].next is the front, nodes[0].prev
	// the back. Element indices are always >= 1.
	nodes []node[T]
	// free heads the removed-node free list (linked through next);
	// 0 (the sentinel, never freed) means empty.
	free int32
	len  int
}

// Len returns the number of elements.
func (l *List[T]) Len() int { return l.len }

// alloc returns a free slot, reusing the free list before growing the
// arena, and stores v in it. Links are set by link.
func (l *List[T]) alloc(v T) int32 {
	if i := l.free; i != 0 {
		l.free = l.nodes[i].next
		l.nodes[i].val = v
		return i
	}
	if len(l.nodes) == 0 {
		// First use: materialize the sentinel (self-linked).
		l.nodes = append(l.nodes, node[T]{})
	}
	l.nodes = append(l.nodes, node[T]{val: v})
	return int32(len(l.nodes) - 1)
}

// link splices node i after node at (which may be the sentinel).
func (l *List[T]) link(i, at int32) {
	n := l.nodes
	next := n[at].next
	n[i].prev, n[i].next = at, next
	n[at].next = i
	n[next].prev = i
	l.len++
}

// PushFront inserts v at the front and returns its handle.
func (l *List[T]) PushFront(v T) Handle {
	i := l.alloc(v)
	l.link(i, 0)
	return Handle(i)
}

// PushBack inserts v at the back and returns its handle.
func (l *List[T]) PushBack(v T) Handle {
	i := l.alloc(v)
	l.link(i, l.nodes[0].prev)
	return Handle(i)
}

// InsertBefore inserts v immediately before h and returns its handle.
func (l *List[T]) InsertBefore(v T, h Handle) Handle {
	i := l.alloc(v)
	l.link(i, l.nodes[h].prev)
	return Handle(i)
}

// Remove unlinks h, releases its slot for reuse, and returns its value.
// h is invalid afterwards.
func (l *List[T]) Remove(h Handle) T {
	i := int32(h)
	n := l.nodes
	n[n[i].prev].next = n[i].next
	n[n[i].next].prev = n[i].prev
	v := n[i].val
	var zero T
	n[i].val = zero // drop references so the arena doesn't pin them
	n[i].next = l.free
	n[i].prev = -1
	l.free = i
	l.len--
	return v
}

// MoveToFront relinks h at the front. The handle stays valid.
func (l *List[T]) MoveToFront(h Handle) {
	i := int32(h)
	if l.nodes[0].next == i {
		return
	}
	l.unlink(i)
	l.link(i, 0)
}

// MoveToBack relinks h at the back. The handle stays valid.
func (l *List[T]) MoveToBack(h Handle) {
	i := int32(h)
	if l.nodes[0].prev == i {
		return
	}
	l.unlink(i)
	l.link(i, l.nodes[0].prev)
}

// unlink detaches i without freeing its slot.
func (l *List[T]) unlink(i int32) {
	n := l.nodes
	n[n[i].prev].next = n[i].next
	n[n[i].next].prev = n[i].prev
	l.len--
}

// Front returns the first element's handle, or None when empty.
func (l *List[T]) Front() Handle {
	if l.len == 0 {
		return None
	}
	return Handle(l.nodes[0].next)
}

// Back returns the last element's handle, or None when empty.
func (l *List[T]) Back() Handle {
	if l.len == 0 {
		return None
	}
	return Handle(l.nodes[0].prev)
}

// Next returns the handle after h, or None at the back.
func (l *List[T]) Next(h Handle) Handle { return Handle(l.nodes[h].next) }

// Prev returns the handle before h, or None at the front.
func (l *List[T]) Prev(h Handle) Handle { return Handle(l.nodes[h].prev) }

// NextCyclic returns the handle after h, wrapping from the back to the
// front — the clock-hand advance.
func (l *List[T]) NextCyclic(h Handle) Handle {
	n := l.nodes[h].next
	if n == 0 {
		n = l.nodes[0].next
	}
	return Handle(n)
}

// Clone returns an independent copy of the list: same elements, same
// order, and — because the copy reproduces the arena slot-for-slot —
// the same handles. Values are copied with Go assignment, so element
// types holding pointers alias the original's referents; the kernel's
// snapshot path only clones lists of value types (page IDs, clock
// entries).
func (l *List[T]) Clone() List[T] {
	var c List[T]
	l.CloneInto(&c)
	return c
}

// CloneInto overwrites dst with a copy of l, reusing dst's arena
// capacity when it suffices — the allocation-free path for snapshot
// pools that restore into recycled lists.
func (l *List[T]) CloneInto(dst *List[T]) {
	dst.nodes = append(dst.nodes[:0], l.nodes...)
	dst.free = l.free
	dst.len = l.len
}

// insertion (the arena may grow); do not hold it across one.
func (l *List[T]) At(h Handle) *T { return &l.nodes[h].val }

// Init empties the list, retaining the arena's capacity but dropping all
// element values.
func (l *List[T]) Init() {
	if len(l.nodes) == 0 {
		return
	}
	clear(l.nodes)
	l.nodes = l.nodes[:1]
	l.free = 0
	l.len = 0
}
