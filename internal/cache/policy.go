// Package cache implements the OS file/buffer cache with pluggable
// replacement policies. Three policies model the three platforms the
// paper studies:
//
//   - Clock: second-chance LRU approximation (Linux 2.2's page cache).
//     Evicts in long, spatially-correlated chunks under sequential access,
//     which is the property FCCD's sparse probing relies on (Figure 1).
//   - LRU: strict LRU over a small fixed-size buffer cache (NetBSD 1.5's
//     pre-UVM 64 MB file cache).
//   - HoldFirst: scan-resistant policy approximating Solaris 7's observed
//     behavior: once the cache fills, the most recently inserted page is
//     recycled, so early residents are "quite difficult to dislodge".
package cache

import "container/list"

// PageID identifies one cached file page.
type PageID struct {
	Ino   int64
	Index int64 // page number within the file
}

// Policy is a replacement policy over cached pages. Implementations need
// not be safe for concurrent use; the simulation is single-threaded.
type Policy interface {
	Name() string
	// Inserted records a newly cached page.
	Inserted(id PageID)
	// Touched records a hit on a cached page.
	Touched(id PageID)
	// Victim selects and removes the page to evict. ok is false when the
	// policy tracks no pages.
	Victim() (id PageID, ok bool)
	// Removed drops a page evicted or invalidated externally.
	Removed(id PageID)
	// Len returns the number of tracked pages.
	Len() int
}

// --- Clock ---

type clockEntry struct {
	id  PageID
	ref bool
}

// ClockPolicy is the classic clock (second-chance) algorithm.
type ClockPolicy struct {
	ring *list.List               // of *clockEntry
	pos  map[PageID]*list.Element // page -> ring element
	hand *list.Element
}

// NewClock returns an empty clock policy.
func NewClock() *ClockPolicy {
	return &ClockPolicy{ring: list.New(), pos: make(map[PageID]*list.Element)}
}

func (c *ClockPolicy) Name() string { return "clock" }
func (c *ClockPolicy) Len() int     { return c.ring.Len() }

func (c *ClockPolicy) Inserted(id PageID) {
	ent := &clockEntry{id: id, ref: true}
	var el *list.Element
	if c.hand == nil {
		el = c.ring.PushBack(ent)
		c.hand = el
	} else {
		// Insert just before the hand: the new page gets a full sweep
		// before it can be victimized.
		el = c.ring.InsertBefore(ent, c.hand)
	}
	c.pos[id] = el
}

func (c *ClockPolicy) Touched(id PageID) {
	if el, ok := c.pos[id]; ok {
		el.Value.(*clockEntry).ref = true
	}
}

func (c *ClockPolicy) advance(el *list.Element) *list.Element {
	next := el.Next()
	if next == nil {
		next = c.ring.Front()
	}
	return next
}

func (c *ClockPolicy) Victim() (PageID, bool) {
	if c.ring.Len() == 0 {
		return PageID{}, false
	}
	// At most two sweeps: the first clears all reference bits, so the
	// second must find a victim.
	for i := 0; i < 2*c.ring.Len(); i++ {
		ent := c.hand.Value.(*clockEntry)
		if ent.ref {
			ent.ref = false
			c.hand = c.advance(c.hand)
			continue
		}
		victim := c.hand
		c.hand = c.advance(c.hand)
		if c.hand == victim { // last page
			c.hand = nil
		}
		c.ring.Remove(victim)
		delete(c.pos, ent.id)
		return ent.id, true
	}
	panic("cache: clock failed to find a victim")
}

func (c *ClockPolicy) Removed(id PageID) {
	el, ok := c.pos[id]
	if !ok {
		return
	}
	if c.hand == el {
		c.hand = c.advance(el)
		if c.hand == el {
			c.hand = nil
		}
	}
	c.ring.Remove(el)
	delete(c.pos, id)
}

// --- LRU ---

// LRUPolicy is strict least-recently-used replacement.
type LRUPolicy struct {
	order *list.List // front = most recent
	pos   map[PageID]*list.Element
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRUPolicy {
	return &LRUPolicy{order: list.New(), pos: make(map[PageID]*list.Element)}
}

func (l *LRUPolicy) Name() string { return "lru" }
func (l *LRUPolicy) Len() int     { return l.order.Len() }

func (l *LRUPolicy) Inserted(id PageID) {
	l.pos[id] = l.order.PushFront(id)
}

func (l *LRUPolicy) Touched(id PageID) {
	if el, ok := l.pos[id]; ok {
		l.order.MoveToFront(el)
	}
}

func (l *LRUPolicy) Victim() (PageID, bool) {
	back := l.order.Back()
	if back == nil {
		return PageID{}, false
	}
	id := back.Value.(PageID)
	l.order.Remove(back)
	delete(l.pos, id)
	return id, true
}

func (l *LRUPolicy) Removed(id PageID) {
	if el, ok := l.pos[id]; ok {
		l.order.Remove(el)
		delete(l.pos, id)
	}
}

// --- HoldFirst ---

// HoldFirstPolicy retains pages in insertion order and recycles the most
// recently inserted page, so the earliest residents are effectively
// pinned. Touches do not reorder anything.
type HoldFirstPolicy struct {
	order *list.List // front = oldest insertion
	pos   map[PageID]*list.Element
}

// NewHoldFirst returns an empty hold-first policy.
func NewHoldFirst() *HoldFirstPolicy {
	return &HoldFirstPolicy{order: list.New(), pos: make(map[PageID]*list.Element)}
}

func (h *HoldFirstPolicy) Name() string { return "holdfirst" }
func (h *HoldFirstPolicy) Len() int     { return h.order.Len() }

func (h *HoldFirstPolicy) Inserted(id PageID) {
	h.pos[id] = h.order.PushBack(id)
}

func (h *HoldFirstPolicy) Touched(id PageID) {}

func (h *HoldFirstPolicy) Victim() (PageID, bool) {
	back := h.order.Back()
	if back == nil {
		return PageID{}, false
	}
	id := back.Value.(PageID)
	h.order.Remove(back)
	delete(h.pos, id)
	return id, true
}

func (h *HoldFirstPolicy) Removed(id PageID) {
	if el, ok := h.pos[id]; ok {
		h.order.Remove(el)
		delete(h.pos, id)
	}
}
