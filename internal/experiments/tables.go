package experiments

import (
	"fmt"

	"graybox/internal/priorart"
	"graybox/internal/simos"
)

// Table1 regenerates the paper's Table 1 — the gray-box techniques used
// by existing systems — backing each qualitative row with a measurement
// from the corresponding mini-simulation in internal/priorart.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Gray-box techniques in existing systems (rows validated by mini-simulations)",
		Columns: []string{"aspect", "TCP", "Implicit Coscheduling", "MS Manners"},
	}
	t.AddRow("Knowledge", "Message dropped if congestion", "Dest. scheduled to send msg", "Symmetric performance impact")
	t.AddRow("Outputs", "Time before ACK arrives", "Arrival of requests / time for response", "Reported progress of process")
	t.AddRow("Statistics", "Mean and variance", "None", "Linear regression, exp. avg, sign test")
	t.AddRow("Benchmarks", "None", "Round-trip time", "None")
	t.AddRow("Probes", "None", "None", "None")
	t.AddRow("Known state", "None", "Required for benchmarks", "None, but slow convergence")
	t.AddRow("Feedback", "Routers drop msgs as a signal", "All react to same observations", "None")

	// Quantitative evidence: the three mini-simulation groups build their
	// own engines, so they run as independent units.
	var (
		tcp, wired, lossy priorart.TCPResult
		co, coB           priorart.CoschedResult
		mn, mnU           priorart.MannersResult
	)
	RunUnits(
		func() {
			tcp = priorart.RunTCP(priorart.DefaultTCPConfig())
			wireless := priorart.DefaultTCPConfig()
			wireless.Senders = 1
			wired = priorart.RunTCP(wireless)
			wireless.WirelessLoss = 0.05
			lossy = priorart.RunTCP(wireless)
		},
		func() {
			co = priorart.RunCosched(priorart.DefaultCoschedConfig())
			blocking := priorart.DefaultCoschedConfig()
			blocking.Implicit = false
			coB = priorart.RunCosched(blocking)
		},
		func() {
			mn = priorart.RunManners(priorart.DefaultMannersConfig())
			unreg := priorart.DefaultMannersConfig()
			unreg.Regulate = false
			mnU = priorart.RunManners(unreg)
		},
	)
	t.AddNote("TCP sim: 2 senders shared a drop-tail link %d/%d packets (fair); %d drops fed back as congestion signals",
		tcp.Delivered[0], tcp.Delivered[1], tcp.Drops)
	t.AddNote("TCP sim: on a lossy (wireless) link the congestion inference misfires: goodput %d -> %d, avg window %.1f -> %.1f",
		wired.Delivered[0], lossy.Delivered[0], wired.AvgWindow, lossy.AvgWindow)
	t.AddNote("cosched sim: implicit coscheduling %v vs always-block %v (%.1fx) via %d spin-waits",
		co.Elapsed, coB.Elapsed, float64(coB.Elapsed)/float64(co.Elapsed), co.Spins)
	t.AddNote("Manners sim: regulation suspended the background %d times; foreground progress %d steps vs %d unregulated",
		mn.Suspensions, mn.ForegroundSteps, mnU.ForegroundSteps)
	return t
}

// Table2 regenerates Table 2 — the techniques used by the three case
// studies — as documented by (and enforced in) the ICL implementations.
func Table2() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Gray-box techniques in the case studies",
		Columns: []string{"aspect", "FCCD", "FLDC", "MAC"},
	}
	t.AddRow("Knowledge", "LRU-like file-cache replacement", "FFS-like allocation; creation order ~ layout", "Paging when memory overcommitted")
	t.AddRow("Outputs", "Time of 1-byte read probes", "i-number from stat()", "Time of per-page write probes")
	t.AddRow("Statistics", "Sort by probe time; 2-means clustering (composition)", "Sort by i-number", "Median calibration; slow-burst detection")
	t.AddRow("Benchmarks", "Access unit (near-peak disk unit)", "stat() cost", "Resident-touch and zero-fill times")
	t.AddRow("Probes", "Random byte per prediction unit", "stat() of each file", "Two write loops over growing chunks")
	t.AddRow("Known state", "Flush-then-warm in experiments", "Directory refresh", "First loop moves pages to known state")
	t.AddRow("Feedback", "Access-unit reads stabilize cache contents", "Refreshed layout matches future scans", "Admission control prevents thrashing")
	t.AddNote("each cell corresponds to mechanism implemented in internal/core/{fccd,fldc,mac}; see package docs")
	return t
}

// MACAccuracyConfig parameterizes the Section 4.3.3 validation: a
// competitor allocates and actively uses x MB; MAC should return about
// (available - x) MB.
type MACAccuracyConfig struct {
	Scale Scale
	// HogFractions of usable memory claimed by the competitor.
	HogFractions []float64
}

func (c MACAccuracyConfig) withDefaults() MACAccuracyConfig {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if len(c.HogFractions) == 0 {
		c.HogFractions = []float64{0.1, 0.25, 0.5, 0.75}
	}
	return c
}

// MACAccuracy runs the sweep. The "expected" and "error" columns come
// from the oracle-grounded audit record of each gb_alloc: expected is
// the memory truly available when the call ran (not the harness's
// back-of-envelope available - x), and error is MAC's deviation from
// it. The audit column is the auditor's accuracy score, 1 - |rel err|.
func MACAccuracy(cfg MACAccuracyConfig) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "mac-accuracy",
		Title:   "MAC returns (available - x) MB against a competitor holding x MB",
		Columns: []string{"hog x", "available", "MAC got", "expected ~", "error", "audit"},
	}
	// Each hog fraction is an independent trial on its own platform.
	rows := RunTrials(len(cfg.HogFractions), func(i int) []string {
		rec, hogMB, availMB := macAccuracyPoint(cfg.Scale, cfg.HogFractions[i], 8000+uint64(i))
		return []string{fmt.Sprintf("%dMB", hogMB), fmt.Sprintf("%dMB", availMB),
			fmt.Sprintf("%dMB", rec.GotBytes/simos.MB),
			fmt.Sprintf("%dMB", rec.Expected/simos.MB),
			fmt.Sprintf("%+dMB", rec.AbsErr/simos.MB),
			fmt.Sprintf("%.3f", rec.Accuracy)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: with x MB allocated, MAC reliably returns (830 - x) MB on the 896 MB machine")
	t.AddNote("expected/error/audit are scored against the simulator oracle at gb_alloc time (internal/audit)")
	return t
}
