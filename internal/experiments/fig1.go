package experiments

import (
	"fmt"

	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/stats"
)

// Fig1Config parameterizes the probe-correlation experiment (Figure 1):
// how well does the presence of one random page predict the presence of
// its whole prediction unit, as the prediction unit grows, for three
// application access-unit sizes?
type Fig1Config struct {
	Scale Scale
	// AccessUnitsMB are the paper's 1 / 10 / 100 MB access patterns
	// (scaled). Zero selects defaults.
	AccessUnitsMB []float64
	// PredictionUnitsMB is the x-axis. Zero selects defaults.
	PredictionUnitsMB []float64
}

func (c Fig1Config) withDefaults() Fig1Config {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if len(c.AccessUnitsMB) == 0 {
		c.AccessUnitsMB = []float64{1, 10, 100}
	}
	if len(c.PredictionUnitsMB) == 0 {
		c.PredictionUnitsMB = []float64{1, 2, 5, 10, 20, 50, 100}
	}
	return c
}

// Fig1 runs the experiment: flush the cache, access a file of roughly
// twice the cache size with a given access unit at random offsets, then
// (using the harness's kernel presence bitmap, as the authors did with a
// modified kernel) compute the Pearson correlation between "a random
// page of the unit is present" and "fraction of the unit present".
func Fig1(cfg Fig1Config) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	t := &Table{
		ID:      "fig1",
		Title:   "Probe correlation vs prediction-unit size",
		Columns: []string{"pred-unit"},
	}
	for _, au := range cfg.AccessUnitsMB {
		t.Columns = append(t.Columns, fmt.Sprintf("AU=%s", mbString(sc.bytes(au, 4096))))
	}

	type cell struct{ mean, sd float64 }

	// Each access unit is an independent trial: its own platform, file and
	// RNG stream, exactly as the sequential loop built them. All trials
	// share one platform shape (the 2x-cache data file), so the aged
	// machine is built once and forked per access unit.
	perAU := RunTrialsWithSnapshot(len(cfg.AccessUnitsMB), func(seed uint64) *simos.System {
		s := buildSystem(simos.Linux22, sc, seed)
		fileSize := 2 * int64(s.Pool.Capacity()) * int64(s.PageSize())
		_, err := s.FS(0).CreateSized("data", fileSize)
		mustNoErr(err)
		return s
	}, func(ai int) uint64 {
		return 1000 + uint64(ai)
	}, func(ai int, s *simos.System) []cell {
		auMB := cfg.AccessUnitsMB[ai]
		cacheBytes := int64(s.Pool.Capacity()) * int64(s.PageSize())
		fileSize := 2 * cacheBytes
		au := sc.bytes(auMB, s.PageSize())
		if au > fileSize {
			au = fileSize
		}

		// Collect per-trial correlations for each prediction unit.
		corrs := make([][]float64, len(cfg.PredictionUnitsMB))
		for trial := 0; trial < sc.Trials; trial++ {
			s.DropCaches()
			rng := sim.NewRNG(uint64(7*trial + ai))
			mustRun(s, "access", func(os *simos.OS) {
				fd, err := os.Open("data")
				mustNoErr(err)
				// Random-offset access-unit reads totaling one file size.
				var read int64
				for read < fileSize {
					off := rng.Int63n(fileSize - au + 1)
					off -= off % int64(s.PageSize())
					mustNoErr(fd.Read(off, au))
					read += au
				}
			})
			bitmap, err := s.FS(0).PresenceBitmap("data")
			mustNoErr(err)
			pageSize := int64(s.PageSize())
			for pi, puMB := range cfg.PredictionUnitsMB {
				pu := sc.bytes(puMB, s.PageSize())
				puPages := pu / pageSize
				if puPages < 1 {
					puPages = 1
				}
				var xs, ys []float64
				for start := int64(0); start+puPages <= int64(len(bitmap)); start += puPages {
					probe := start + rng.Int63n(puPages)
					present := 0.0
					if bitmap[probe] {
						present = 1
					}
					cached := 0
					for pg := start; pg < start+puPages; pg++ {
						if bitmap[pg] {
							cached++
						}
					}
					xs = append(xs, present)
					ys = append(ys, float64(cached)/float64(puPages))
				}
				if c := stats.Correlation(xs, ys); c == c { // skip NaN
					corrs[pi] = append(corrs[pi], c)
				}
			}
		}
		cells := make([]cell, len(cfg.PredictionUnitsMB))
		for pi := range cfg.PredictionUnitsMB {
			cells[pi] = cell{stats.Mean(corrs[pi]), stats.StdDev(corrs[pi])}
		}
		return cells
	})

	for pi, puMB := range cfg.PredictionUnitsMB {
		row := []string{mbString(sc.bytes(puMB, 4096))}
		for ai := range cfg.AccessUnitsMB {
			row = append(row, fmt.Sprintf("%.2f±%.2f", perAU[ai][pi].mean, perAU[ai][pi].sd))
		}
		t.AddRow(row...)
	}
	t.AddNote("file = 2x cache; expectation: correlation high while pred-unit <= access-unit, falling beyond it")
	return t
}

// mbString formats a byte count in MB or KB.
func mbString(b int64) string {
	if b >= simos.MB {
		return fmt.Sprintf("%dMB", b/simos.MB)
	}
	return fmt.Sprintf("%dKB", b>>10)
}
