package experiments

import (
	"fmt"

	"graybox/internal/simos"
)

// The cpus dimension of the noise and slo sweeps. Each entry is a
// simulated-processor count for one pass over the sweep's arms: 0 is
// the uncontended infinite-core model every pre-scheduler experiment
// was measured under (and the only entry by default, so sweep output is
// byte-unchanged unless a list is set); >= 1 engages the SMP scheduler
// and the sweep's CPU-burning workload variants, so the same offered
// load is also contended for processors.

// cpuList is the process-wide -cpus selection; empty means the default
// model only.
var cpuList []int

// SetCPUList selects the simulated-processor counts the noise and slo
// sweeps iterate (the CLI's -cpus flag). Entries must be >= 0; nil
// restores the default ([0], the uncontended model).
func SetCPUList(cpus []int) error {
	for _, n := range cpus {
		if n < 0 {
			return fmt.Errorf("negative cpu count %d", n)
		}
	}
	cpuList = append([]int(nil), cpus...)
	return nil
}

// CPUList returns the current -cpus selection, defaulting to the
// uncontended model only.
func CPUList() []int {
	if len(cpuList) > 0 {
		return append([]int(nil), cpuList...)
	}
	return []int{0}
}

// cpuSweepActive reports whether list departs from the default single
// uncontended pass — the gate for the conditional "cpus" table column
// (absent by default, so existing output stays byte-identical).
func cpuSweepActive(list []int) bool {
	return len(list) != 1 || list[0] != 0
}

// buildSystemCPUs is buildSystem with a simulated-processor count.
func buildSystemCPUs(p simos.Personality, sc Scale, seed uint64, cpus int) *simos.System {
	kernel := sc.MemoryMB * 66 / 896
	if kernel < 4 {
		kernel = 4
	}
	floor := sc.MemoryMB * 4 / 896
	if floor < 1 {
		floor = 1
	}
	netbsdCache := sc.MemoryMB * 64 / 896
	if netbsdCache < 2 {
		netbsdCache = 2
	}
	return simos.New(simos.Config{
		Personality:   p,
		Seed:          seed,
		MemoryMB:      sc.MemoryMB,
		KernelMB:      kernel,
		CacheFloorMB:  floor,
		NetBSDCacheMB: netbsdCache,
		CPUs:          cpus,
		ShardWorkers:  shardWorkers,
	})
}
