package probe

// DefaultMaxSlowFraction fails a probe loop whose overall slow share
// exceeds it even when no burst tripped the detector: every tolerated
// slow point in a contended system is typically a page stolen from a
// competitor, so the budget must stay small or long verification loops
// ratchet memory away from its rightful working set.
const DefaultMaxSlowFraction = 0.01

// SlowBurst spots "several slow data points in near succession"
// (Section 4.3.2). A strictly-consecutive rule misses interleaved
// paging (slow, fast, slow, ...) during a tug-of-war with a competing
// process, so the score decays slowly on fast points — by 1/16 per fast
// observation — instead of resetting.
type SlowBurst struct {
	score   float64
	limit   float64
	slow, n int64
}

// NewSlowBurst creates a detector that trips after roughly limit slow
// points in near succession.
func NewSlowBurst(limit int) *SlowBurst {
	return &SlowBurst{limit: float64(limit)}
}

// Add records one observation; it returns true when a burst is
// indicated.
func (d *SlowBurst) Add(isSlow bool) bool {
	d.n++
	if isSlow {
		d.slow++
		d.score++
		return d.score >= d.limit
	}
	d.score -= 1.0 / 16
	if d.score < 0 {
		d.score = 0
	}
	return false
}

// Fraction returns the overall share of slow observations.
func (d *SlowBurst) Fraction() float64 {
	if d.n == 0 {
		return 0
	}
	return float64(d.slow) / float64(d.n)
}

// Ok reports whether the loop as a whole stayed within the slow budget
// (use after the loop when no burst tripped the detector).
func (d *SlowBurst) Ok() bool { return d.Fraction() <= DefaultMaxSlowFraction }
