package stash

import (
	"testing"

	"graybox/internal/simos"
)

// Allocation guards for the stash hot paths, same discipline as
// internal/cache and internal/vm: once the block map, the intrusive
// LRU/dirty arenas, the slot free stack, and the kernel paths beneath
// (OS cache, disk, event pool) have grown to the working set, a stash
// hit and a full miss+admit+evict cycle must not allocate.

// allocWorld builds a machine whose OS cache is smaller than the churn
// file, a stash at quota, and hands the measurement body a warm stash.
func allocWorld(t testing.TB, graybox bool, body func(st *Stash, hot, churn *File)) {
	s := newMachine(11)
	// 2048 distinct churn blocks against a 64-block quota: every read
	// past the warm set misses the stash, so (with naive admission)
	// admit+evict cycles run indefinitely regardless of OS residency.
	if _, err := s.FS(0).CreateSized("hot", 64*ps); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FS(0).CreateSized("churn", 2048*ps); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FS(1).CreateSized("stash0", 64*ps); err != nil {
		t.Fatal(err)
	}
	run(t, s, func(os *simos.OS) {
		st, err := New(os, Config{Backing: "/mnt1/stash0", QuotaBlocks: 64, GrayBox: graybox})
		if err != nil {
			t.Fatal(err)
		}
		hot, err := st.Open("hot")
		if err != nil {
			t.Fatal(err)
		}
		churn, err := st.Open("churn")
		if err != nil {
			t.Fatal(err)
		}
		// Warm everything: fill the stash to quota and run a few hundred
		// admit+evict cycles so every arena, map and pool reaches its
		// steady-state size.
		for pg := int64(0); pg < 512; pg++ {
			if err := churn.Read(pg%2048*ps, ps); err != nil {
				t.Fatal(err)
			}
		}
		body(st, hot, churn)
	})
}

func TestStashHitAllocs(t *testing.T) {
	allocWorld(t, false, func(st *Stash, hot, churn *File) {
		// One resident block, hit repeatedly.
		if err := churn.Read(0, ps); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if err := churn.Read(0, ps); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("stash hit allocs/op = %v, want 0", allocs)
		}
	})
}

func TestStashAdmitEvictSteadyStateAllocs(t *testing.T) {
	for _, graybox := range []bool{false, true} {
		allocWorld(t, graybox, func(st *Stash, hot, churn *File) {
			pg := int64(512)
			allocs := testing.AllocsPerRun(500, func() {
				if err := churn.Read(pg%2048*ps, ps); err != nil {
					t.Fatal(err)
				}
				pg++
			})
			if allocs != 0 {
				t.Errorf("graybox=%v: miss+admit+evict allocs/op = %v, want 0", graybox, allocs)
			}
		})
	}
}

func BenchmarkStashHit(b *testing.B) {
	allocWorld(b, false, func(st *Stash, hot, churn *File) {
		if err := churn.Read(0, ps); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := churn.Read(0, ps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStashAdmitEvict(b *testing.B) {
	allocWorld(b, false, func(st *Stash, hot, churn *File) {
		pg := int64(512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := churn.Read(pg%2048*ps, ps); err != nil {
				b.Fatal(err)
			}
			pg++
		}
	})
}

func BenchmarkStashGrayBoxAdmission(b *testing.B) {
	allocWorld(b, true, func(st *Stash, hot, churn *File) {
		pg := int64(512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := churn.Read(pg%2048*ps, ps); err != nil {
				b.Fatal(err)
			}
			pg++
		}
	})
}
