// Command gb-experiments regenerates every table and figure of the
// paper's evaluation on the simulated platforms.
//
// Usage:
//
//	gb-experiments [-scale full|quick] [-parallel N] [-markdown]
//	               [-o file] [-bench-out file] [id ...]
//
// With no ids, all experiments run in paper order. Available ids:
// table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 mac-accuracy
// priorart-sweeps.
//
// Each experiment fans its independent trials (seeds, personalities,
// sweep points) out over a worker pool of -parallel goroutines; every
// trial owns its platform (engine, RNG, virtual clock), so output is
// byte-identical at any pool width. -bench-out records per-experiment
// wall-clock and simulated-time totals as JSON so the suite's performance
// is comparable across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"graybox/internal/experiments"
)

// benchEntry is one experiment's timing record in -bench-out.
type benchEntry struct {
	ID        string  `json:"id"`
	WallMS    float64 `json:"wall_ms"`
	VirtualMS float64 `json:"virtual_ms"`
}

// benchReport is the -bench-out document.
type benchReport struct {
	Scale       string       `json:"scale"`
	Parallel    int          `json:"parallel"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Experiments []benchEntry `json:"experiments"`
	TotalWallMS float64      `json:"total_wall_ms"`
}

func main() {
	scaleName := flag.String("scale", "full", "experiment scale: full (paper-size) or quick")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
	outPath := flag.String("o", "", "write output to file (default stdout)")
	parallel := flag.Int("parallel", 0, "trial worker-pool width (0 = GOMAXPROCS)")
	benchOut := flag.String("bench-out", "", "write per-experiment wall/virtual time JSON to file (e.g. BENCH_experiments.json)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleName {
	case "full":
		sc = experiments.FullScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or quick)\n", *scaleName)
		os.Exit(2)
	}
	experiments.SetParallelism(*parallel)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	runners := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r := experiments.ByID(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	report := benchReport{
		Scale:      sc.Name,
		Parallel:   experiments.Parallelism(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	suiteStart := time.Now()
	experiments.TakeVirtualTime() // reset the accumulator
	for _, r := range runners {
		start := time.Now()
		tab := r.Run(sc)
		elapsed := time.Since(start)
		virtual := experiments.TakeVirtualTime()
		if *markdown {
			fmt.Fprintln(out, tab.Markdown())
		} else {
			fmt.Fprintln(out, tab)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v wall-clock (%v simulated) at scale %s]\n",
			r.ID, elapsed.Round(time.Millisecond), virtual, sc.Name)
		report.Experiments = append(report.Experiments, benchEntry{
			ID:        r.ID,
			WallMS:    float64(elapsed.Microseconds()) / 1000,
			VirtualMS: virtual.Millis(),
		})
	}
	report.TotalWallMS = float64(time.Since(suiteStart).Microseconds()) / 1000

	if *benchOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[bench report written to %s]\n", *benchOut)
	}
}
