package experiments

import "fmt"

// The -shard-parallel dimension: every simulated machine the harnesses
// build gets the engine's sharded event lanes with this many harvest
// workers. Unlike -cpus this is not a sweep — sharding is a pure
// performance structure whose output is byte-identical at any worker
// count, so a single process-wide setting is the right shape (the same
// way -parallel picks trial-level concurrency without appearing in any
// table).

// shardWorkers is the process-wide -shard-parallel selection; 0 keeps
// the serial single-lane engine.
var shardWorkers int

// SetShardParallel selects the engine harvest worker-pool width for
// every machine built from here on (the CLI's -shard-parallel flag).
// n must be >= 0; 0 restores the serial engine.
func SetShardParallel(n int) error {
	if n < 0 {
		return fmt.Errorf("negative shard worker count %d", n)
	}
	shardWorkers = n
	return nil
}

// ShardParallel returns the current -shard-parallel selection.
func ShardParallel() int { return shardWorkers }
