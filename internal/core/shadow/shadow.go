// Package shadow implements an interposition-based File-Cache Content
// Detector — the alternative design the paper discusses in Sections
// 2.1 and 6: "with interpositioning, one can more easily observe all of
// the OS inputs and outputs and then model or simulate the OS to infer
// its current state."
//
// The detector wraps the system-call interface. Every read that flows
// through it updates a shadow model of the OS file cache (an LRU
// simulation sized by the toolbox's measured or configured capacity), so
// cache contents can be predicted with zero probe cost. The catch —
// exactly the drawback the paper identifies ("this requires the
// participation of all processes") — is that I/O performed outside the
// layer silently invalidates the model. Revalidate quantifies the drift
// with a handful of timing probes and resets the model when agreement
// collapses, recovering the probe-based robustness of the FCCD.
package shadow

import (
	"sort"

	"graybox/internal/ring"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Config sizes the shadow model.
type Config struct {
	// CacheBytes is the modeled file-cache capacity. It comes from
	// documentation or a microbenchmark; if it is wrong the model is
	// wrong — algorithmic knowledge in its purest form.
	CacheBytes int64
	// Seed drives revalidation probe placement.
	Seed uint64
	// ProbeThreshold separates hit from miss during revalidation. Zero
	// selects 100 microseconds (between memory and disk by orders of
	// magnitude on any platform this library models).
	ProbeThreshold sim.Time
}

type pageKey struct {
	ino  int64
	page int64
}

// Detector is the interposition layer.
type Detector struct {
	os  *simos.OS
	cfg Config

	order ring.List[pageKey] // LRU: front = most recent
	pos   map[pageKey]ring.Handle
	inoOf map[string]int64

	capacityPages int64
	rng           *sim.RNG

	// Stats.
	ObservedReads int64
	Revalidations int64
	ModelResets   int64
}

// New creates a detector.
func New(os *simos.OS, cfg Config) *Detector {
	if cfg.CacheBytes <= 0 {
		panic("shadow: CacheBytes must be configured")
	}
	if cfg.ProbeThreshold == 0 {
		cfg.ProbeThreshold = 100 * sim.Microsecond
	}
	return &Detector{
		os:            os,
		cfg:           cfg,
		pos:           make(map[pageKey]ring.Handle),
		inoOf:         make(map[string]int64),
		capacityPages: cfg.CacheBytes / int64(os.PageSize()),
		rng:           sim.NewRNG(cfg.Seed),
	}
}

// ino resolves and caches a path's i-number (one stat per file).
func (d *Detector) ino(path string) (int64, error) {
	if v, ok := d.inoOf[path]; ok {
		return v, nil
	}
	st, err := d.os.Stat(path)
	if err != nil {
		return 0, err
	}
	d.inoOf[path] = int64(st.Ino)
	return int64(st.Ino), nil
}

// touch records one page access in the model.
func (d *Detector) touch(k pageKey) {
	if h, ok := d.pos[k]; ok {
		d.order.MoveToFront(h)
		return
	}
	d.pos[k] = d.order.PushFront(k)
	for int64(d.order.Len()) > d.capacityPages {
		delete(d.pos, d.order.Remove(d.order.Back()))
	}
}

// Read performs an interposed read: it forwards to the OS and records
// the pages in the shadow model.
func (d *Detector) Read(fd *simos.Fd, off, n int64) error {
	if err := fd.Read(off, n); err != nil {
		return err
	}
	d.ObservedReads++
	ino, err := d.ino(fd.Path())
	if err != nil {
		return err
	}
	ps := int64(d.os.PageSize())
	for pg := off / ps; pg <= (off+n-1)/ps && n > 0; pg++ {
		d.touch(pageKey{ino: ino, page: pg})
	}
	return nil
}

// Open forwards to the OS (present so applications can route all file
// activity through the layer).
func (d *Detector) Open(path string) (*simos.Fd, error) { return d.os.Open(path) }

// PredictedFraction returns the modeled cached fraction of a file.
func (d *Detector) PredictedFraction(path string) (float64, error) {
	ino, err := d.ino(path)
	if err != nil {
		return 0, err
	}
	fd, err := d.os.Open(path)
	if err != nil {
		return 0, err
	}
	ps := int64(d.os.PageSize())
	npages := (fd.Size() + ps - 1) / ps
	if npages == 0 {
		return 0, nil
	}
	cached := int64(0)
	for pg := int64(0); pg < npages; pg++ {
		if _, ok := d.pos[pageKey{ino: ino, page: pg}]; ok {
			cached++
		}
	}
	return float64(cached) / float64(npages), nil
}

// OrderFiles returns paths sorted most-cached-first according to the
// model — zero probes, zero Heisenberg effect, but only as accurate as
// the model's view of the world.
func (d *Detector) OrderFiles(paths []string) ([]string, error) {
	type scored struct {
		path string
		frac float64
		idx  int
	}
	ss := make([]scored, len(paths))
	for i, p := range paths {
		f, err := d.PredictedFraction(p)
		if err != nil {
			return nil, err
		}
		ss[i] = scored{path: p, frac: f, idx: i}
	}
	sort.SliceStable(ss, func(a, b int) bool {
		if ss[a].frac != ss[b].frac {
			return ss[a].frac > ss[b].frac
		}
		return ss[a].idx > ss[b].idx // newest-cached-first tie-break
	})
	out := make([]string, len(paths))
	for i, s := range ss {
		out[i] = s.path
	}
	return out, nil
}

// Revalidate probes nProbes random model predictions with timed one-byte
// reads and returns the agreement fraction. If agreement falls below
// minAgreement the model is reset (drift detected: some process is doing
// I/O outside the layer). This is the paper's prescription of combining
// a model with observations so that "even if their algorithmic knowledge
// is simplistic or inaccurate, ICLs built in this way are robust".
func (d *Detector) Revalidate(path string, nProbes int, minAgreement float64) (float64, error) {
	d.Revalidations++
	ino, err := d.ino(path)
	if err != nil {
		return 0, err
	}
	fd, err := d.os.Open(path)
	if err != nil {
		return 0, err
	}
	ps := int64(d.os.PageSize())
	npages := (fd.Size() + ps - 1) / ps
	if npages == 0 || nProbes <= 0 {
		return 1, nil
	}
	agree := 0
	for i := 0; i < nProbes; i++ {
		pg := d.rng.Int63n(npages)
		_, predicted := d.pos[pageKey{ino: ino, page: pg}]
		start := d.os.Now()
		if err := fd.ReadByteAt(pg * ps); err != nil {
			return 0, err
		}
		actual := d.os.Now()-start < d.cfg.ProbeThreshold
		if predicted == actual {
			agree++
		}
		// The probe itself cached the page; record that.
		d.touch(pageKey{ino: ino, page: pg})
	}
	frac := float64(agree) / float64(nProbes)
	if frac < minAgreement {
		d.ModelResets++
		d.Reset()
	}
	return frac, nil
}

// Reset discards the model. Callers use it to start a known-clean
// epoch; Revalidate calls it automatically on detected drift (counted
// in ModelResets).
func (d *Detector) Reset() {
	d.order.Init()
	d.pos = make(map[pageKey]ring.Handle)
}

// ModelPages returns the number of pages currently tracked.
func (d *Detector) ModelPages() int { return d.order.Len() }
