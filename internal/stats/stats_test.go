package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBasicDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); !almost(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if m := Min(xs); m != 2 {
		t.Errorf("Min = %v, want 2", m)
	}
	if m := Max(xs); m != 9 {
		t.Errorf("Max = %v, want 9", m)
	}
	if s := Sum(xs); s != 40 {
		t.Errorf("Sum = %v, want 40", s)
	}
}

func TestEmptyInputsGiveNaN(t *testing.T) {
	for name, v := range map[string]float64{
		"Mean":     Mean(nil),
		"Variance": Variance(nil),
		"Median":   Median(nil),
		"Min":      Min(nil),
		"Max":      Max(nil),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s(nil) = %v, want NaN", name, v)
		}
	}
}

func TestMedianAndPercentile(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("Median even = %v, want 2.5", m)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if p := Percentile(xs, 0); p != 10 {
		t.Errorf("P0 = %v, want 10", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Errorf("P100 = %v, want 50", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Errorf("P25 = %v, want 20", p)
	}
	// Input must not be mutated.
	xs2 := []float64{3, 1, 2}
	Median(xs2)
	if !reflect.DeepEqual(xs2, []float64{3, 1, 2}) {
		t.Error("Median mutated its input")
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(x, yPos); !almost(c, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", c)
	}
	if c := Correlation(x, yNeg); !almost(c, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", c)
	}
	if c := Correlation(x, []float64{5, 5, 5, 5, 5}); !math.IsNaN(c) {
		t.Errorf("constant series correlation = %v, want NaN", c)
	}
	if c := Correlation(x, []float64{1, 2}); !math.IsNaN(c) {
		t.Errorf("mismatched lengths = %v, want NaN", c)
	}
}

func TestCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rngFloats(seed, 20)
		s := rngFloats(seed+1, 20)
		c := Correlation(r, s)
		return math.IsNaN(c) || (c >= -1-1e-9 && c <= 1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// rngFloats produces deterministic pseudo-random values for property tests.
func rngFloats(seed int64, n int) []float64 {
	x := uint64(seed)*2654435761 + 1
	out := make([]float64, n)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = float64(x%10000) / 100
	}
	return out
}

func TestDiscardOutliers(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 12, 1000}
	got := DiscardOutliers(xs, 1)
	for _, v := range got {
		if v == 1000 {
			t.Error("outlier not discarded")
		}
	}
	if len(got) != 5 {
		t.Errorf("kept %d values, want 5", len(got))
	}
	// All-equal input: nothing discarded.
	same := []float64{5, 5, 5}
	if got := DiscardOutliers(same, 1); len(got) != 3 {
		t.Errorf("constant input filtered to %d values, want 3", len(got))
	}
}

// TestDiscardOutliersAdversarial drives the filter through the
// degenerate inputs the probe layer's Repeat path can produce: empty
// runs, single probes, identical timings, and k values that would keep
// nothing. The guarantees under test: never panic, never return NaN,
// never invent values, and keep everything when spread is zero.
func TestDiscardOutliersAdversarial(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		k    float64
		want int // kept count; -1 means "just the invariants"
	}{
		{"empty", nil, 2, 0},
		{"single", []float64{7}, 2, 1},
		{"single zero k", []float64{7}, 0, 1},
		{"all identical", []float64{3, 3, 3, 3}, 1, 4},
		{"all identical zero k", []float64{3, 3, 3}, 0, 3},
		{"two far apart zero k", []float64{1, 100}, 0, -1},
		{"huge k keeps all", []float64{1, 2, 3, 1e9}, 1e12, 4},
		{"negative values", []float64{-5, -5, -5, -1000}, 1, 3},
		{"tiny spread", []float64{1, 1 + 1e-15, 1 - 1e-15}, 3, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := map[float64]bool{}
			for _, x := range tc.xs {
				in[x] = true
			}
			got := DiscardOutliers(tc.xs, tc.k)
			if tc.want >= 0 && len(got) != tc.want {
				t.Errorf("kept %d values, want %d (got %v)", len(got), tc.want, got)
			}
			for _, v := range got {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("non-finite survivor %v", v)
				}
				if !in[v] {
					t.Errorf("survivor %v was not in the input", v)
				}
			}
			if len(got) > len(tc.xs) {
				t.Errorf("filter grew the sample: %d -> %d", len(tc.xs), len(got))
			}
		})
	}
}

func TestLinearRegression(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearRegression(x, y)
	if !almost(slope, 2, 1e-12) || !almost(intercept, 1, 1e-12) {
		t.Errorf("fit = (%v, %v), want (2, 1)", slope, intercept)
	}
	s, i := LinearRegression([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(s) || !math.IsNaN(i) {
		t.Errorf("constant-x fit = (%v, %v), want NaNs", s, i)
	}
}

func TestSignTest(t *testing.T) {
	a := []float64{5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	b := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	plus, minus, p := SignTest(a, b)
	if plus != 10 || minus != 0 {
		t.Errorf("signs = (%d, %d), want (10, 0)", plus, minus)
	}
	if p > 0.01 {
		t.Errorf("one-sided dominance p = %v, want < 0.01", p)
	}
	// Balanced differences: p should be large.
	c := []float64{1, 2, 1, 2, 1, 2}
	d := []float64{2, 1, 2, 1, 2, 1}
	_, _, p2 := SignTest(c, d)
	if p2 < 0.5 {
		t.Errorf("balanced p = %v, want >= 0.5", p2)
	}
	// All ties.
	_, _, p3 := SignTest([]float64{1, 1}, []float64{1, 1})
	if p3 != 1 {
		t.Errorf("all-ties p = %v, want 1", p3)
	}
}

// TestSignTestAdversarial covers the paired-comparison edge cases:
// empty and single-pair inputs, mismatched lengths (extra entries must
// be ignored, not read), all-identical pairs, and the requirement that
// p is always a probability — finite and within [0, 1] — so callers can
// threshold it without NaN checks.
func TestSignTestAdversarial(t *testing.T) {
	cases := []struct {
		name      string
		a, b      []float64
		wantPlus  int
		wantMinus int
		wantP     float64 // -1 means "any valid probability"
	}{
		{"both empty", nil, nil, 0, 0, 1},
		{"single tie", []float64{4}, []float64{4}, 0, 0, 1},
		{"single win", []float64{5}, []float64{4}, 1, 0, 1},
		{"all identical pairs", []float64{2, 2, 2}, []float64{2, 2, 2}, 0, 0, 1},
		{"a longer than b", []float64{9, 9, 9, 9}, []float64{1}, 1, 0, 1},
		{"b longer than a", []float64{1}, []float64{9, 9, 9, 9}, 0, 1, 1},
		{"strong dominance", []float64{9, 9, 9, 9, 9, 9, 9, 9}, []float64{1, 1, 1, 1, 1, 1, 1, 1}, 8, 0, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plus, minus, p := SignTest(tc.a, tc.b)
			if plus != tc.wantPlus || minus != tc.wantMinus {
				t.Errorf("signs = (%d, %d), want (%d, %d)", plus, minus, tc.wantPlus, tc.wantMinus)
			}
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Errorf("p = %v, want a probability in [0, 1]", p)
			}
			if tc.wantP >= 0 && !almost(p, tc.wantP, 1e-12) {
				t.Errorf("p = %v, want %v", p, tc.wantP)
			}
		})
	}
}

func TestRunningMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		xs := rngFloats(seed, 50)
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		return almost(r.Mean(), Mean(xs), 1e-9) &&
			almost(r.Variance(), Variance(xs), 1e-6) &&
			r.Min() == Min(xs) && r.Max() == Max(xs) &&
			r.N() == int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(5)
	r.Reset()
	if r.N() != 0 || !math.IsNaN(r.Mean()) {
		t.Error("Reset did not clear state")
	}
}

func TestExpAvg(t *testing.T) {
	e := NewExpAvg(0.5)
	if !math.IsNaN(e.Value()) {
		t.Error("empty ExpAvg should be NaN")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first value = %v, want 10", e.Value())
	}
	e.Add(20)
	if !almost(e.Value(), 15, 1e-12) {
		t.Errorf("after 20: %v, want 15", e.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid alpha")
		}
	}()
	NewExpAvg(0)
}

func TestCluster2Bimodal(t *testing.T) {
	// Probe-time-like data: microseconds vs milliseconds.
	xs := []float64{3, 4, 3.5, 5000, 4800, 3.2, 5100, 4}
	res := Cluster2(xs)
	if len(res.LowIdx) != 5 || len(res.HighIdx) != 3 {
		t.Fatalf("groups = (%d, %d), want (5, 3)", len(res.LowIdx), len(res.HighIdx))
	}
	for _, i := range res.LowIdx {
		if xs[i] > 10 {
			t.Errorf("value %v misclassified as low", xs[i])
		}
	}
	for _, i := range res.HighIdx {
		if xs[i] < 1000 {
			t.Errorf("value %v misclassified as high", xs[i])
		}
	}
	if res.Separation() < 100 {
		t.Errorf("Separation = %v, want large", res.Separation())
	}
}

func TestCluster2Degenerate(t *testing.T) {
	res := Cluster2(nil)
	if len(res.LowIdx) != 0 || len(res.HighIdx) != 0 {
		t.Error("empty input should give empty groups")
	}
	res = Cluster2([]float64{7})
	if len(res.LowIdx) != 1 || len(res.HighIdx) != 0 {
		t.Error("single value should be one low group")
	}
	res = Cluster2([]float64{5, 5, 5})
	if len(res.LowIdx) != 3 || len(res.HighIdx) != 0 {
		t.Error("constant values should be one group")
	}
	if !math.IsNaN(res.Separation()) {
		t.Error("Separation of one group should be NaN")
	}
}

func TestCluster2PartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		xs := rngFloats(seed, 30)
		res := Cluster2(xs)
		// Partition covers all indices exactly once.
		all := append(append([]int(nil), res.LowIdx...), res.HighIdx...)
		if len(all) != len(xs) {
			return false
		}
		sort.Ints(all)
		for i, v := range all {
			if v != i {
				return false
			}
		}
		// Order statistic: every low value <= every high value.
		if len(res.HighIdx) > 0 {
			maxLow := math.Inf(-1)
			for _, i := range res.LowIdx {
				if xs[i] > maxLow {
					maxLow = xs[i]
				}
			}
			for _, i := range res.HighIdx {
				if xs[i] < maxLow {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCluster2ThresholdSeparates(t *testing.T) {
	xs := []float64{1, 2, 100, 101}
	res := Cluster2(xs)
	for _, i := range res.LowIdx {
		if xs[i] > res.Threshold {
			t.Errorf("low value %v above threshold %v", xs[i], res.Threshold)
		}
	}
	for _, i := range res.HighIdx {
		if xs[i] <= res.Threshold {
			t.Errorf("high value %v not above threshold %v", xs[i], res.Threshold)
		}
	}
}

func TestHistogram(t *testing.T) {
	counts, width := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 15}, 0, 10, 5)
	if width != 2 {
		t.Errorf("width = %v, want 2", width)
	}
	want := []int{3, 2, 0, 0, 2} // -5 clamps to bin 0; 15 clamps to bin 4
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
}
