package cache

import (
	"fmt"

	"graybox/internal/disk"
	"graybox/internal/mem"
	"graybox/internal/sim"
	"graybox/internal/telemetry"
)

// BlockAddr locates a page's backing storage for write-back.
type BlockAddr struct {
	Disk  *disk.Disk
	Block int64
}

// Config sets a cache's size behavior.
type Config struct {
	// Capacity caps the number of cached pages. Zero means "no private
	// cap" (the shared frame pool is the only limit), which is the
	// Linux/Solaris unified-cache configuration.
	Capacity int
	// PrivateFrames, when true, gives the cache its own frames outside
	// the pool (NetBSD 1.5's fixed-size buffer cache). Capacity must be
	// set.
	PrivateFrames bool
	// FloorPages is the minimum residency the cache defends against pool
	// reclaim (ignored for private frames).
	FloorPages int
	// MaxDirty throttles writers: beyond this many dirty pages, the
	// dirtying process synchronously cleans pages (bdflush-style).
	MaxDirty int
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses    int64
	Evictions       int64
	Writebacks      int64
	ThrottleFlushes int64
}

// nilPage is the null index into a cache's page arena.
const nilPage int32 = -1

// cpage is one cached page's record. Records live in the cache's slice
// arena and are addressed by index: evicting a page pushes its slot onto
// the free list and the next insert reuses it, so steady-state cache
// traffic allocates nothing. The dirty FIFO is intrusive — dirtyPrev and
// dirtyNext link records directly, with no separate queue nodes.
type cpage struct {
	id    PageID
	addr  BlockAddr
	dirty bool
	// dirtyPrev/dirtyNext are arena indices forming the dirty FIFO
	// (oldest at head); nilPage when clean or at an end.
	dirtyPrev, dirtyNext int32
	// nextFree links free arena slots; meaningful only while free.
	nextFree int32
}

// Cache is the simulated OS file cache.
type Cache struct {
	e      *sim.Engine
	cfg    Config
	pool   *mem.Pool
	policy Policy

	// arena holds every cpage record ever created; freePage heads the
	// recycled-slot list. Records are referred to by index everywhere —
	// *cpage pointers must not be held across an arena append (Insert).
	arena    []cpage
	freePage int32

	pages map[PageID]int32
	byIno map[int64]map[int64]int32

	// Intrusive dirty FIFO over arena records, oldest first.
	dirtyHead, dirtyTail int32
	dirtyLen             int

	stats Stats

	// Telemetry handles; nil (no-op) until Instrument is called.
	telHits, telMisses       *telemetry.Counter
	telEvictions, telWrbacks *telemetry.Counter
	telOccupancy, telDirty   *telemetry.Gauge
}

// New creates a cache backed by pool (may be nil when PrivateFrames).
func New(e *sim.Engine, cfg Config, policy Policy, pool *mem.Pool) *Cache {
	if cfg.PrivateFrames && cfg.Capacity <= 0 {
		panic("cache: private frames require a capacity")
	}
	if !cfg.PrivateFrames && pool == nil {
		panic("cache: pool-backed cache requires a pool")
	}
	if cfg.MaxDirty <= 0 {
		cfg.MaxDirty = 1 << 30 // effectively unthrottled
	}
	return &Cache{
		e: e, cfg: cfg, pool: pool, policy: policy,
		freePage:  nilPage,
		pages:     make(map[PageID]int32),
		byIno:     make(map[int64]map[int64]int32),
		dirtyHead: nilPage,
		dirtyTail: nilPage,
	}
}

// PolicyName names the replacement policy in use.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Instrument registers the cache's metrics — hit/miss/eviction counters
// and occupancy gauges, named per replacement policy — in r. A nil
// registry leaves the handles nil, which keeps every update a no-op.
func (c *Cache) Instrument(r *telemetry.Registry) {
	prefix := "cache." + c.policy.Name() + "."
	c.telHits = r.Counter(prefix + "hits")
	c.telMisses = r.Counter(prefix + "misses")
	c.telEvictions = r.Counter(prefix + "evictions")
	c.telWrbacks = r.Counter(prefix + "writebacks")
	c.telOccupancy = r.Gauge(prefix + "occupancy_pages")
	c.telDirty = r.Gauge(prefix + "dirty_pages")
}

// telSync refreshes the occupancy gauges after any residency change.
func (c *Cache) telSync() {
	c.telOccupancy.Set(int64(len(c.pages)))
	c.telDirty.Set(int64(c.dirtyLen))
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return len(c.pages) }

// allocPage returns an arena slot for a new record, reusing the free
// list before growing the arena.
func (c *Cache) allocPage() int32 {
	if i := c.freePage; i != nilPage {
		c.freePage = c.arena[i].nextFree
		return i
	}
	c.arena = append(c.arena, cpage{})
	return int32(len(c.arena) - 1)
}

// releasePage pushes slot i onto the free list. The record must already
// be off the dirty FIFO and out of the index maps.
func (c *Cache) releasePage(i int32) {
	c.arena[i] = cpage{nextFree: c.freePage, dirtyPrev: nilPage, dirtyNext: nilPage}
	c.freePage = i
}

// Lookup reports whether id is cached; a hit refreshes the page's
// replacement state. Hit/miss counters are updated.
func (c *Cache) Lookup(id PageID) bool {
	if _, ok := c.pages[id]; ok {
		c.policy.Touched(id)
		c.stats.Hits++
		c.telHits.Inc()
		return true
	}
	c.stats.Misses++
	c.telMisses.Inc()
	return false
}

// Contains reports presence without touching replacement state or
// counters (harness ground truth, not part of the gray-box interface).
func (c *Cache) Contains(id PageID) bool {
	_, ok := c.pages[id]
	return ok
}

// Insert caches page id backed by addr. Inserting an already-present page
// only updates its dirty state. The calling process pays for any frame
// reclaim or dirty throttling this triggers.
func (c *Cache) Insert(p *sim.Proc, id PageID, addr BlockAddr, dirty bool) {
	if i, ok := c.pages[id]; ok {
		if dirty {
			c.markDirty(i)
			c.throttle(p, addr.Disk)
		}
		return
	}
	// Obtain a frame. Eviction write-back and frame reclaim park p, and
	// while it sleeps another process may insert this same page — so the
	// index is re-checked below before the record is created (a duplicate
	// policy.Inserted would later name a victim the index no longer has).
	if c.cfg.PrivateFrames {
		for len(c.pages) >= c.cfg.Capacity {
			if !c.EvictOne(p) {
				panic("cache: private cache cannot evict")
			}
		}
	} else {
		if c.cfg.Capacity > 0 {
			for len(c.pages) >= c.cfg.Capacity {
				if !c.EvictOne(p) {
					panic("cache: capped cache cannot evict")
				}
			}
		}
		c.pool.GrabFrame(p)
	}
	if i, ok := c.pages[id]; ok {
		// Lost the race: the page arrived while p slept. Fold into the
		// existing record and return the frame just obtained.
		if !c.cfg.PrivateFrames {
			c.pool.ReturnFrames(1)
		}
		if dirty {
			c.markDirty(i)
			c.telSync()
			c.throttle(p, addr.Disk)
		}
		return
	}
	i := c.allocPage()
	c.arena[i] = cpage{id: id, addr: addr, dirtyPrev: nilPage, dirtyNext: nilPage, nextFree: nilPage}
	c.pages[id] = i
	ino := c.byIno[id.Ino]
	if ino == nil {
		ino = make(map[int64]int32)
		c.byIno[id.Ino] = ino
	}
	ino[id.Index] = i
	c.policy.Inserted(id)
	if dirty {
		c.markDirty(i)
	}
	c.telSync()
	if dirty {
		c.throttle(p, addr.Disk)
	}
}

// MarkDirty flags a cached page as modified; the caller then pays any
// dirty throttling. A miss is a no-op.
func (c *Cache) MarkDirty(p *sim.Proc, id PageID) {
	if i, ok := c.pages[id]; ok {
		c.markDirty(i)
		c.telSync()
		c.throttle(p, c.arena[i].addr.Disk)
	}
}

// markDirty appends record i to the dirty FIFO if it is clean.
func (c *Cache) markDirty(i int32) {
	pg := &c.arena[i]
	if pg.dirty {
		return
	}
	pg.dirty = true
	pg.dirtyPrev = c.dirtyTail
	pg.dirtyNext = nilPage
	if c.dirtyTail != nilPage {
		c.arena[c.dirtyTail].dirtyNext = i
	} else {
		c.dirtyHead = i
	}
	c.dirtyTail = i
	c.dirtyLen++
}

// clean unlinks record i from the dirty FIFO if it is dirty.
func (c *Cache) clean(i int32) {
	pg := &c.arena[i]
	if !pg.dirty {
		return
	}
	pg.dirty = false
	if pg.dirtyPrev != nilPage {
		c.arena[pg.dirtyPrev].dirtyNext = pg.dirtyNext
	} else {
		c.dirtyHead = pg.dirtyNext
	}
	if pg.dirtyNext != nilPage {
		c.arena[pg.dirtyNext].dirtyPrev = pg.dirtyPrev
	} else {
		c.dirtyTail = pg.dirtyPrev
	}
	pg.dirtyPrev, pg.dirtyNext = nilPage, nilPage
	c.dirtyLen--
}

// throttle synchronously cleans oldest dirty pages while over MaxDirty.
// The dirtying process preferentially cleans pages destined for the
// SAME disk it is writing to (hint), so that concurrent writers on
// separate disks drain their own streams in parallel instead of
// ping-ponging each other's devices.
func (c *Cache) throttle(p *sim.Proc, hint *disk.Disk) {
	for c.dirtyLen > c.cfg.MaxDirty {
		victim := nilPage
		if hint != nil {
			for i := c.dirtyHead; i != nilPage; i = c.arena[i].dirtyNext {
				if c.arena[i].addr.Disk == hint {
					victim = i
					break
				}
			}
		}
		if victim == nilPage {
			victim = c.dirtyHead
		}
		// Copy the address out before the write parks p: while p sleeps in
		// Access, other processes may evict this page and reuse its slot.
		addr := c.arena[victim].addr
		c.clean(victim)
		c.stats.ThrottleFlushes++
		c.stats.Writebacks++
		c.telWrbacks.Inc()
		c.telSync()
		addr.Disk.Access(p, addr.Block, 1, true)
	}
}

// EvictOne implements mem.Shrinker: pick a victim, drop it from the index
// immediately, write it back if dirty, and return the frame.
func (c *Cache) EvictOne(p *sim.Proc) bool {
	id, ok := c.policy.Victim()
	if !ok {
		return false
	}
	i, ok := c.pages[id]
	if !ok {
		panic(fmt.Sprintf("cache: policy victim %v not in cache", id))
	}
	wasDirty := c.arena[i].dirty
	addr := c.arena[i].addr
	c.forget(i)
	c.stats.Evictions++
	c.telEvictions.Inc()
	c.telSync()
	if wasDirty {
		c.stats.Writebacks++
		c.telWrbacks.Inc()
		if !c.cfg.PrivateFrames {
			// Frame is logically free once the write is issued; return
			// it before sleeping so the waiting allocator can proceed.
			c.pool.ReturnFrames(1)
			addr.Disk.Access(p, addr.Block, 1, true)
			return true
		}
		addr.Disk.Access(p, addr.Block, 1, true)
		return true
	}
	if !c.cfg.PrivateFrames {
		c.pool.ReturnFrames(1)
	}
	return true
}

// forget removes record i from all indexes and releases its arena slot
// (but not the policy, whose Victim already dropped it — callers
// invalidating externally use Removed).
func (c *Cache) forget(i int32) {
	pg := &c.arena[i]
	if pg.dirty {
		c.clean(i)
	}
	delete(c.pages, pg.id)
	if m := c.byIno[pg.id.Ino]; m != nil {
		delete(m, pg.id.Index)
		if len(m) == 0 {
			delete(c.byIno, pg.id.Ino)
		}
	}
	c.releasePage(i)
}

// Name implements mem.Shrinker.
func (c *Cache) Name() string { return "filecache" }

// Held implements mem.Shrinker.
func (c *Cache) Held() int {
	if c.cfg.PrivateFrames {
		return 0 // holds no pool frames
	}
	return len(c.pages)
}

// Floor implements mem.Shrinker.
func (c *Cache) Floor() int { return c.cfg.FloorPages }

// InvalidateFile drops every cached page of ino without write-back (the
// file is being deleted or truncated).
func (c *Cache) InvalidateFile(ino int64) {
	m := c.byIno[ino]
	if m == nil {
		return
	}
	n := 0
	for _, i := range m {
		c.policy.Removed(c.arena[i].id)
		c.clean(i)
		delete(c.pages, c.arena[i].id)
		c.releasePage(i)
		n++
	}
	delete(c.byIno, ino)
	c.telSync()
	if !c.cfg.PrivateFrames {
		c.pool.ReturnFrames(n)
	}
}

// Sync writes back every dirty page, charged to p.
func (c *Cache) Sync(p *sim.Proc) {
	for c.dirtyLen > 0 {
		i := c.dirtyHead
		addr := c.arena[i].addr
		c.clean(i)
		c.stats.Writebacks++
		c.telWrbacks.Inc()
		c.telSync()
		addr.Disk.Access(p, addr.Block, 1, true)
	}
}

// Drop instantly discards every page (harness control used to model the
// experimenter's "flush the file cache" step; dirty data is lost).
func (c *Cache) Drop() {
	n := len(c.pages)
	for id, i := range c.pages {
		c.policy.Removed(id)
		c.clean(i)
		delete(c.pages, id)
		c.releasePage(i)
	}
	c.byIno = make(map[int64]map[int64]int32)
	c.telSync()
	if !c.cfg.PrivateFrames && n > 0 {
		c.pool.ReturnFrames(n)
	}
}

// PresenceBitmap reports, for each of the first npages pages of ino,
// whether it is cached. This mirrors the presence-bit interface the
// authors added to their Linux kernel for ground truth (footnote 2); it
// is used only by experiment harnesses, never by ICLs.
func (c *Cache) PresenceBitmap(ino int64, npages int64) []bool {
	bm := make([]bool, npages)
	for idx := range c.byIno[ino] {
		if idx >= 0 && idx < npages {
			bm[idx] = true
		}
	}
	return bm
}

// ResidentPages returns how many pages of ino are cached.
func (c *Cache) ResidentPages(ino int64) int { return len(c.byIno[ino]) }

// ContainsPage reports whether one page of ino is cached, without
// touching replacement state or counters. It is the allocation-free
// point query behind PresenceBitmap, for oracle checks on per-block hot
// paths (the stash admission audit) where a bitmap per call would
// allocate O(pages).
func (c *Cache) ContainsPage(ino, idx int64) bool {
	_, ok := c.byIno[ino][idx]
	return ok
}
