// Package apps implements the applications of the paper's evaluation —
// grep and fastsort in unmodified, gray-box, and gbp-piped variants,
// plus the single-file scan and multi-file search microbenchmarks —
// modeled by their I/O patterns and CPU costs against the simulated OS.
package apps

import (
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Costs models application-side CPU and process-management overheads.
type Costs struct {
	// ScanCPUPerByte is grep-style string matching cost.
	ScanCPUPerByte sim.Time
	// SortCPUPerRecord is key comparison/move cost per record per pass.
	SortCPUPerRecord sim.Time
	// ForkExec is the cost of spawning a helper process (the gbp pipe
	// variants pay it).
	ForkExec sim.Time
	// PipeCopyPerByte is the extra user-kernel-user copy when data flows
	// through a pipe (gbp -out).
	PipeCopyPerByte sim.Time
	// ReadChunk is the request size used for streaming reads.
	ReadChunk int64
}

// DefaultCosts matches a circa-2001 CPU.
func DefaultCosts() Costs {
	return Costs{
		ScanCPUPerByte:   5 * sim.Nanosecond, // ~200 MB/s matcher
		SortCPUPerRecord: 500 * sim.Nanosecond,
		ForkExec:         10 * sim.Millisecond,
		PipeCopyPerByte:  2 * sim.Nanosecond, // ~500 MB/s pipe
		ReadChunk:        256 << 10,
	}
}

// scanCPU charges matcher CPU for n bytes.
func (c Costs) scanCPU(os *simos.OS, n int64) {
	os.Compute(sim.Time(n) * c.ScanCPUPerByte)
}

// streamRead reads [off, off+n) of fd in ReadChunk pieces, charging scan
// CPU per chunk when cpu is true.
func (c Costs) streamRead(os *simos.OS, fd *simos.Fd, off, n int64, cpu bool) error {
	chunk := c.ReadChunk
	if chunk <= 0 {
		chunk = 256 << 10
	}
	for done := int64(0); done < n; {
		l := chunk
		if done+l > n {
			l = n - done
		}
		if err := fd.Read(off+done, l); err != nil {
			return err
		}
		if cpu {
			c.scanCPU(os, l)
		}
		done += l
	}
	return nil
}
