package fs

import (
	"fmt"
	"testing"
	"testing/quick"

	"graybox/internal/cache"
	"graybox/internal/disk"
	"graybox/internal/mem"
	"graybox/internal/sim"
)

type world struct {
	e    *sim.Engine
	d    *disk.Disk
	c    *cache.Cache
	fs   *FS
	pool *mem.Pool
}

func newWorld(t testing.TB) *world {
	t.Helper()
	e := sim.NewEngine(1)
	d := disk.New(e, disk.DefaultParams())
	pool := mem.NewPool(e, 8192) // 32 MB of 4 KB frames
	c := cache.New(e, cache.Config{MaxDirty: 1024}, cache.NewClock(), pool)
	pool.AddShrinker(c)
	return &world{e: e, d: d, c: c, fs: New(e, d, c, DefaultConfig()), pool: pool}
}

// run executes fn as a simulated process and propagates panics as test
// failures.
func (w *world) run(t testing.TB, fn func(p *sim.Proc)) sim.Time {
	t.Helper()
	start := w.e.Now()
	pr := w.e.Go("test", fn)
	w.e.Run()
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
	return w.e.Now() - start
}

func TestCreateOpenStat(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		if err := w.fs.Mkdir(p, "data"); err != nil {
			t.Fatal(err)
		}
		f, err := w.fs.Create(p, "data/a")
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != 0 {
			t.Errorf("new file size = %d", f.Size())
		}
		st, err := w.fs.Stat(p, "data/a")
		if err != nil {
			t.Fatal(err)
		}
		if st.Ino == 0 {
			t.Error("zero inode")
		}
		if _, err := w.fs.Open(p, "data/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := w.fs.Open(p, "data/missing"); err == nil {
			t.Error("open of missing file succeeded")
		}
	})
}

func TestINumbersFollowCreationOrder(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		if err := w.fs.Mkdir(p, "d"); err != nil {
			t.Fatal(err)
		}
		var prev Ino
		for i := 0; i < 20; i++ {
			f, err := w.fs.Create(p, fmt.Sprintf("d/f%02d", i))
			if err != nil {
				t.Fatal(err)
			}
			_ = f
			st, _ := w.fs.Stat(p, fmt.Sprintf("d/f%02d", i))
			if st.Ino <= prev {
				t.Fatalf("i-number %d not ascending after %d", st.Ino, prev)
			}
			prev = st.Ino
		}
	})
}

func TestCreationOrderMatchesLayout(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		if err := w.fs.Mkdir(p, "d"); err != nil {
			t.Fatal(err)
		}
		var lastEnd int64 = -1
		for i := 0; i < 10; i++ {
			path := fmt.Sprintf("d/f%02d", i)
			if _, err := w.fs.CreateSized(path, 8192); err != nil {
				t.Fatal(err)
			}
			blocks, _ := w.fs.BlocksOf(path)
			if len(blocks) != 2 {
				t.Fatalf("file %s has %d blocks, want 2", path, len(blocks))
			}
			if blocks[0] <= lastEnd {
				t.Fatalf("file %s starts at %d, before previous end %d", path, blocks[0], lastEnd)
			}
			if blocks[1] != blocks[0]+1 {
				t.Fatalf("file %s not contiguous: %v", path, blocks)
			}
			lastEnd = blocks[1]
		}
	})
}

func TestAllocatorNeverDoubleAllocates(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		if err := w.fs.Mkdir(p, "d"); err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(3)
		owned := map[int64]string{}
		live := []string{}
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				// Delete a random live file.
				k := rng.Intn(len(live))
				path := live[k]
				blocks, _ := w.fs.BlocksOf(path)
				if err := w.fs.Unlink(p, path); err != nil {
					t.Fatal(err)
				}
				for _, b := range blocks {
					delete(owned, b)
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			path := fmt.Sprintf("d/f%04d", i)
			size := int64(rng.Intn(5)+1) * 4096
			if _, err := w.fs.CreateSized(path, size); err != nil {
				t.Fatal(err)
			}
			blocks, _ := w.fs.BlocksOf(path)
			for _, b := range blocks {
				if other, dup := owned[b]; dup {
					t.Fatalf("block %d allocated to both %s and %s", b, other, path)
				}
				owned[b] = path
			}
			live = append(live, path)
		}
	})
}

func TestReadChargesDiskThenCache(t *testing.T) {
	w := newWorld(t)
	const size = 1 << 20 // 1 MB
	var cold, warm sim.Time
	w.run(t, func(p *sim.Proc) {
		if _, err := w.fs.CreateSized("big", size); err != nil {
			t.Fatal(err)
		}
		f, _ := w.fs.Open(p, "big")
		start := p.Now()
		if err := f.Read(p, 0, size); err != nil {
			t.Fatal(err)
		}
		cold = p.Now() - start
		start = p.Now()
		if err := f.Read(p, 0, size); err != nil {
			t.Fatal(err)
		}
		warm = p.Now() - start
	})
	if cold < 10*warm {
		t.Errorf("cold read %v not much slower than warm %v", cold, warm)
	}
	// Warm read of 256 pages at ~10us/page copy: expect ~2.6ms.
	if warm < sim.Millisecond || warm > 10*sim.Millisecond {
		t.Errorf("warm 1MB read took %v, want a few ms", warm)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		w.fs.CreateSized("f", 100)
		f, _ := w.fs.Open(p, "f")
		if err := f.Read(p, 0, 101); err == nil {
			t.Error("read beyond EOF succeeded")
		}
		if err := f.ReadByteAt(p, 100); err == nil {
			t.Error("byte read at EOF succeeded")
		}
		if err := f.Read(p, 0, 0); err != nil {
			t.Errorf("zero-length read failed: %v", err)
		}
	})
}

func TestProbeBimodalTiming(t *testing.T) {
	w := newWorld(t)
	var hit, miss sim.Time
	w.run(t, func(p *sim.Proc) {
		w.fs.CreateSized("f", 1<<20)
		f, _ := w.fs.Open(p, "f")
		start := p.Now()
		f.ReadByteAt(p, 0) // cold: disk
		miss = p.Now() - start
		start = p.Now()
		f.ReadByteAt(p, 0) // warm: memory
		hit = p.Now() - start
	})
	if hit > 10*sim.Microsecond {
		t.Errorf("in-cache probe took %v, want a few microseconds", hit)
	}
	// The first block can be reached with near-zero seek and rotation, so
	// only require a clear bimodal gap plus real device time.
	if miss < 300*sim.Microsecond || miss < 50*hit {
		t.Errorf("on-disk probe took %v (hit %v), want a clear disk-scale gap", miss, hit)
	}
}

func TestProbeHeisenbergOnePage(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		w.fs.CreateSized("f", 1<<20)
		f, _ := w.fs.Open(p, "f")
		f.ReadByteAt(p, 5*4096+17)
	})
	bm, err := w.fs.PresenceBitmap("f")
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, b := range bm {
		if b {
			cached++
		}
	}
	if cached != 1 || !bm[5] {
		t.Errorf("probe cached %d pages (page5=%v), want exactly page 5", cached, bm[5])
	}
}

func TestWriteDirtiesAndExtends(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		f, err := w.fs.Create(p, "out")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Write(p, 0, 10*4096); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 10*4096 {
			t.Errorf("size = %d, want %d", f.Size(), 10*4096)
		}
		// Append more.
		if err := f.Write(p, f.Size(), 4096); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 11*4096 {
			t.Errorf("size after append = %d", f.Size())
		}
	})
	if w.d.Stats().Writes != 0 {
		t.Errorf("writes hit disk immediately: %d (want write-behind)", w.d.Stats().Writes)
	}
	w.run(t, func(p *sim.Proc) { w.c.Sync(p) })
	if w.d.Stats().Writes == 0 {
		t.Error("sync wrote nothing")
	}
}

func TestUnlinkFreesSpaceAndCache(t *testing.T) {
	w := newWorld(t)
	free0 := w.fs.FreeSpace()
	w.run(t, func(p *sim.Proc) {
		w.fs.CreateSized("f", 100*4096)
		f, _ := w.fs.Open(p, "f")
		f.Read(p, 0, 100*4096)
		ino, _ := w.fs.InoOf("f")
		if w.c.ResidentPages(int64(ino)) != 100 {
			t.Errorf("resident = %d, want 100", w.c.ResidentPages(int64(ino)))
		}
		if err := w.fs.Unlink(p, "f"); err != nil {
			t.Fatal(err)
		}
		if w.c.ResidentPages(int64(ino)) != 0 {
			t.Error("pages survive unlink")
		}
	})
	if w.fs.FreeSpace() != free0 {
		t.Errorf("space leaked: %d -> %d", free0, w.fs.FreeSpace())
	}
	w.run(t, func(p *sim.Proc) {
		if err := w.fs.Unlink(p, "f"); err == nil {
			t.Error("double unlink succeeded")
		}
	})
}

func TestRenameFileAndDir(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		w.fs.Mkdir(p, "a")
		w.fs.Mkdir(p, "b")
		w.fs.CreateSized("a/f", 4096)
		if err := w.fs.Rename(p, "a/f", "b/g"); err != nil {
			t.Fatal(err)
		}
		if _, err := w.fs.Open(p, "b/g"); err != nil {
			t.Errorf("renamed file unreachable: %v", err)
		}
		if _, err := w.fs.Open(p, "a/f"); err == nil {
			t.Error("old name still resolves")
		}
		// Directory rename (the refresh step).
		w.fs.CreateSized("a/h", 4096)
		if err := w.fs.Rename(p, "a", "c"); err != nil {
			t.Fatal(err)
		}
		if _, err := w.fs.Open(p, "c/h"); err != nil {
			t.Errorf("file lost in dir rename: %v", err)
		}
	})
}

func TestRmdir(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		w.fs.Mkdir(p, "d")
		w.fs.CreateSized("d/f", 0)
		if err := w.fs.Rmdir(p, "d"); err == nil {
			t.Error("rmdir of non-empty dir succeeded")
		}
		w.fs.Unlink(p, "d/f")
		if err := w.fs.Rmdir(p, "d"); err != nil {
			t.Errorf("rmdir failed: %v", err)
		}
	})
}

func TestReaddirSorted(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		w.fs.Mkdir(p, "d")
		for _, n := range []string{"c", "a", "b"} {
			w.fs.CreateSized("d/"+n, 0)
		}
		names, err := w.fs.Readdir(p, "d")
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
			t.Errorf("names = %v", names)
		}
	})
}

func TestStatCostColdVsWarm(t *testing.T) {
	w := newWorld(t)
	var cold, warm sim.Time
	w.run(t, func(p *sim.Proc) {
		w.fs.Mkdir(p, "d")
		w.fs.CreateSized("d/f", 4096)
		w.c.Drop() // push the inode table block out
		start := p.Now()
		w.fs.Stat(p, "d/f")
		cold = p.Now() - start
		start = p.Now()
		w.fs.Stat(p, "d/f")
		warm = p.Now() - start
	})
	if cold < sim.Millisecond {
		t.Errorf("cold stat %v, want a disk access (ms)", cold)
	}
	if warm > 100*sim.Microsecond {
		t.Errorf("warm stat %v, want microseconds", warm)
	}
}

func TestAgingFragmentsLayout(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		w.fs.Mkdir(p, "d")
		for i := 0; i < 100; i++ {
			w.fs.CreateSized(fmt.Sprintf("d/f%03d", i), 8*4096)
		}
		// Fresh: i-number order == layout order. Age it.
		rng := sim.NewRNG(7)
		for epoch := 0; epoch < 30; epoch++ {
			for k := 0; k < 5; k++ {
				names, _ := w.fs.Readdir(p, "d")
				victim := names[rng.Intn(len(names))]
				w.fs.Unlink(p, "d/"+victim)
				w.fs.CreateSized(fmt.Sprintf("d/n%02d_%d", epoch, k), 8*4096)
			}
		}
		// Measure disorder: walk files in i-number order; fraction of
		// consecutive pairs whose layout goes backwards should be
		// significant after aging.
		names, _ := w.fs.Readdir(p, "d")
		type fi struct {
			ino   Ino
			block int64
		}
		var fis []fi
		for _, n := range names {
			ino, _ := w.fs.InoOf("d/" + n)
			blocks, _ := w.fs.BlocksOf("d/" + n)
			fis = append(fis, fi{ino, blocks[0]})
		}
		for i := 1; i < len(fis); i++ {
			for j := i; j > 0 && fis[j-1].ino > fis[j].ino; j-- {
				fis[j-1], fis[j] = fis[j], fis[j-1]
			}
		}
		backwards := 0
		for i := 1; i < len(fis); i++ {
			if fis[i].block < fis[i-1].block {
				backwards++
			}
		}
		if backwards == 0 {
			t.Error("aging produced no layout disorder")
		}
	})
}

func TestLFSAllocatorAppends(t *testing.T) {
	e := sim.NewEngine(1)
	d := disk.New(e, disk.DefaultParams())
	pool := mem.NewPool(e, 4096)
	c := cache.New(e, cache.Config{}, cache.NewClock(), pool)
	pool.AddShrinker(c)
	cfg := DefaultConfig()
	cfg.Alloc = AllocLFS
	f := New(e, d, c, cfg)
	pr := e.Go("t", func(p *sim.Proc) {
		f.Mkdir(p, "d")
		f.CreateSized("d/a", 4*4096)
		f.CreateSized("d/b", 4*4096)
		ba, _ := f.BlocksOf("d/a")
		bb, _ := f.BlocksOf("d/b")
		if bb[0] != ba[3]+1 {
			t.Errorf("LFS: b starts at %d, want right after a's end %d", bb[0], ba[3])
		}
	})
	e.Run()
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
}

func TestInoRoundTripProperty(t *testing.T) {
	w := newWorld(t)
	f := func(g uint8, idx uint16) bool {
		gi := int(g) % len(w.fs.groups)
		ii := int(idx) % w.fs.cfg.InodesPerGroup
		ino := w.fs.inoOf(gi, ii)
		g2, i2 := w.fs.groupOfIno(ino)
		return g2 == gi && i2 == ii && ino > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOutOfSpace(t *testing.T) {
	w := newWorld(t)
	w.run(t, func(p *sim.Proc) {
		free := w.fs.FreeSpace()
		if _, err := w.fs.CreateSized("huge", (free+1)*4096); err == nil {
			t.Error("over-allocation succeeded")
		}
		if w.fs.FreeSpace() != free {
			t.Error("failed allocation leaked blocks")
		}
	})
}

func TestFirstBlockOfMatchesBlocksOf(t *testing.T) {
	w := newWorld(t)
	if _, err := w.fs.CreateSized("f", 16384); err != nil {
		t.Fatal(err)
	}
	blocks, err := w.fs.BlocksOf("f")
	if err != nil {
		t.Fatal(err)
	}
	first, ok := w.fs.FirstBlockOf("f")
	if !ok || first != blocks[0] {
		t.Fatalf("FirstBlockOf = (%d, %v), want (%d, true)", first, ok, blocks[0])
	}
	if _, ok := w.fs.FirstBlockOf("missing"); ok {
		t.Error("FirstBlockOf of missing file reported ok")
	}
	// BlocksOf must stay a defensive copy: mutating its result must not
	// corrupt the layout FirstBlockOf reads in place.
	blocks[0] = -999
	if again, _ := w.fs.FirstBlockOf("f"); again != first {
		t.Fatalf("BlocksOf leaked the live block slice: first block now %d", again)
	}
}

// TestFirstBlockOfAllocs pins the no-copy contract: the audit oracle
// calls this once per FLDC prediction, so it must not allocate.
func TestFirstBlockOfAllocs(t *testing.T) {
	w := newWorld(t)
	if _, err := w.fs.CreateSized("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := w.fs.FirstBlockOf("f"); !ok {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Errorf("FirstBlockOf allocs/op = %v, want 0", allocs)
	}
}
