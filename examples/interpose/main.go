// interpose: the Section 6 trade-off — an interposition-based shadow
// model of the file cache (zero probes, but blind to other processes)
// versus the FCCD's timed probes, with probe revalidation rescuing the
// model after drift.
package main

import (
	"fmt"
	"log"

	"graybox"
)

const (
	numFiles = 20
	fileSize = 16 * graybox.MB
)

func main() {
	p := graybox.NewPlatform(graybox.PlatformConfig{})
	err := p.Run("interpose", func(os *graybox.Proc) {
		if err := os.Mkdir("data"); err != nil {
			log.Fatal(err)
		}
		paths := make([]string, numFiles)
		for i := range paths {
			paths[i] = fmt.Sprintf("data/f%02d", i)
			fd, err := os.Create(paths[i])
			if err != nil {
				log.Fatal(err)
			}
			if err := fd.Write(0, fileSize); err != nil {
				log.Fatal(err)
			}
		}
		p.DropCaches()

		sh := graybox.NewShadow(os, graybox.ShadowConfig{
			CacheBytes: 830 * graybox.MB, // from documentation/microbenchmark
		})

		// Phase 1: all I/O flows through the layer. The model is exact.
		for i := 0; i < 8; i++ {
			fd, _ := os.Open(paths[i])
			if err := sh.Read(fd, 0, fd.Size()); err != nil {
				log.Fatal(err)
			}
		}
		agreement, err := sh.Revalidate(paths[3], 16, 0.8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("all I/O interposed:      model agreement %.0f%% (0 probes needed for ordering)\n", agreement*100)

		// Phase 2: a rogue process floods the cache OUTSIDE the layer.
		rogue, _ := os.Create("rogue")
		if err := rogue.Write(0, 800*graybox.MB); err != nil {
			log.Fatal(err)
		}
		if err := rogue.Read(0, rogue.Size()); err != nil {
			log.Fatal(err)
		}

		agreement, err = sh.Revalidate(paths[3], 16, 0.8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after rogue 800 MB read: model agreement %.0f%% -> model reset: %v\n",
			agreement*100, sh.ModelResets == 1)

		// Phase 3: the probe-based FCCD is immune to the rogue — it
		// measures reality instead of remembering it.
		det := graybox.NewFCCD(os, graybox.FCCDConfig{Seed: 5})
		sw := graybox.NewStopwatch(os)
		probes, err := det.OrderFiles(paths)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FCCD re-probe:           %d probes in %v; coldest file now ranked last: %v\n",
			det.Probes(), sw.Elapsed(), probes[len(probes)-1].ProbeTime > probes[0].ProbeTime)
	})
	if err != nil {
		log.Fatal(err)
	}
}
