package experiments

import (
	"fmt"

	"graybox/internal/apps"
	"graybox/internal/core/mac"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Fig7Config parameterizes the competing-sorts experiment (Figure 7):
// four fastsort processes, each sorting ~477 MB from its own disk with a
// fifth disk dedicated to paging, comparing static pass sizes against
// gb-fastsort using the MAC.
type Fig7Config struct {
	Scale Scale
	// SortMB is each process's input size (paper: 477).
	SortMB float64
	// StaticPassMB are the command-line pass sizes swept (paper plots
	// ~50-290 MB; 290 is off the chart at nearly 30 minutes).
	StaticPassMB []float64
	// MACMinMB is gb_alloc's minimum (paper: 100).
	MACMinMB float64
	Sorters  int // default 4
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if c.SortMB == 0 {
		c.SortMB = 477
	}
	if len(c.StaticPassMB) == 0 {
		c.StaticPassMB = []float64{50, 100, 150, 200, 250}
	}
	if c.MACMinMB == 0 {
		c.MACMinMB = 100
	}
	if c.Sorters == 0 {
		c.Sorters = 4
	}
	return c
}

// fig7Run runs the four competing sorts and returns the average
// completion time plus aggregate phase breakdown.
func fig7Run(cfg Fig7Config, passMB float64, useMAC bool, seed uint64) (avg sim.Time, phases apps.SortResult, swapOuts int64) {
	sc := cfg.Scale
	s := newMultiDiskSystem(simos.Linux22, sc, seed, cfg.Sorters)
	inputBytes := sc.mb(cfg.SortMB) * simos.MB

	type result struct {
		elapsed sim.Time
		res     apps.SortResult
	}
	results := make([]result, cfg.Sorters)
	procs := make([]*sim.Proc, cfg.Sorters)
	for i := 0; i < cfg.Sorters; i++ {
		i := i
		prefix := ""
		if i > 0 {
			prefix = fmt.Sprintf("/mnt%d/", i)
		}
		input := prefix + "input"
		outDir := prefix + "runs"
		_, err := s.FS(i).CreateSized("input", inputBytes)
		mustNoErr(err)
		procs[i] = s.Spawn(fmt.Sprintf("sort%d", i), 0, func(os *simos.OS) {
			mustNoErr(os.Mkdir(outDir))
			opts := apps.SortOptions{Variant: apps.SortStatic, PassBytes: sc.mb(passMB) * simos.MB}
			if useMAC {
				opts = apps.SortOptions{
					Variant: apps.SortMAC,
					MAC: mac.New(os, mac.Config{
						InitialIncrement: sc.mb(4) * simos.MB,
						MaxIncrement:     sc.mb(64) * simos.MB,
					}),
					MACMin: sc.mb(cfg.MACMinMB) * simos.MB,
					MACMax: inputBytes,
				}
			}
			t0 := os.Now()
			res, err := apps.FastSort(os, apps.SortSpec{
				Input: input, OutputDir: outDir, RecordSize: 100,
			}, opts, apps.DefaultCosts())
			mustNoErr(err)
			results[i] = result{elapsed: os.Now() - t0, res: res}
		})
	}
	s.Engine.WaitAll(procs...)
	for _, p := range procs {
		mustNoErr(p.Err())
	}
	var sum sim.Time
	for _, r := range results {
		sum += r.elapsed
		phases.Read += r.res.Read
		phases.Sort += r.res.Sort
		phases.Write += r.res.Write
		phases.Overhead += r.res.Overhead
		phases.AvgPassBytes += r.res.AvgPassBytes
		phases.Passes += r.res.Passes
	}
	phases.AvgPassBytes /= int64(cfg.Sorters)
	return sum / sim.Time(cfg.Sorters), phases, s.VM.Stats().SwapOuts
}

// Fig7 sweeps static pass sizes and runs gb-fastsort, reporting average
// completion time, pass size actually used, phase breakdown and paging.
func Fig7(cfg Fig7Config) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	t := &Table{
		ID:      "fig7",
		Title:   fmt.Sprintf("%d competing fastsorts (%d MB each): static pass sizes vs MAC", cfg.Sorters, sc.mb(cfg.SortMB)),
		Columns: []string{"config", "avg-time", "avg-pass", "read", "sort", "write", "overhead", "swap-outs"},
	}
	// Every static pass size — and the MAC run — is an independent trial
	// on its own five-disk platform.
	rows := RunTrials(len(cfg.StaticPassMB)+1, func(i int) []string {
		if i < len(cfg.StaticPassMB) {
			avg, ph, swaps := fig7Run(cfg, cfg.StaticPassMB[i], false, 7000+uint64(i))
			return fig7Row(fmt.Sprintf("static %dMB", sc.mb(cfg.StaticPassMB[i])), avg, ph, swaps)
		}
		avg, ph, swaps := fig7Run(cfg, 0, true, 7900)
		return fig7Row("gb-fastsort (MAC)", avg, ph, swaps)
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: static degrades rapidly once 4x pass size overcommits memory (~200 MB); gb-fastsort averages ~154 MB passes, never pages, pays probe+wait overhead")
	return t
}

// fig7Row formats one configuration's result cells.
func fig7Row(config string, avg sim.Time, ph apps.SortResult, swaps int64) []string {
	return []string{config, avg.String(),
		fmt.Sprintf("%dMB", ph.AvgPassBytes/simos.MB),
		ph.Read.String(), ph.Sort.String(), ph.Write.String(), ph.Overhead.String(),
		fmt.Sprint(swaps)}
}
