package cache

import (
	"testing"

	"graybox/internal/sim"
)

// Allocation guards for the cache hot paths. These are the CI tripwires
// for ISSUE 5's discipline: once the arena and the policy rings have
// grown to the working set, hits, re-dirtying, and even full
// insert+evict cycles must not allocate. A regression here means a
// container/list (or equivalent per-page heap node) crept back in.

// newAllocCache builds a private-frames cache of cap pages pre-filled to
// capacity, so every subsequent operation runs in steady state.
func newAllocCache(policy Policy, capacity int) *Cache {
	e := sim.NewEngine(1)
	c := New(e, Config{Capacity: capacity, PrivateFrames: true, MaxDirty: 1 << 20}, policy, nil)
	for i := int64(0); i < int64(capacity); i++ {
		c.Insert(nil, pid(1, i), BlockAddr{}, false)
	}
	return c
}

func TestLookupHitAllocs(t *testing.T) {
	for _, mk := range []func() Policy{
		func() Policy { return NewClock() },
		func() Policy { return NewLRU() },
		func() Policy { return NewHoldFirst() },
	} {
		c := newAllocCache(mk(), 64)
		i := int64(0)
		allocs := testing.AllocsPerRun(1000, func() {
			if !c.Lookup(pid(1, i%64)) {
				t.Fatal("expected hit")
			}
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: Lookup hit allocs/op = %v, want 0", c.PolicyName(), allocs)
		}
	}
}

func TestInsertHitAllocs(t *testing.T) {
	c := newAllocCache(NewClock(), 64)
	i := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		// Re-inserting a present page dirty exercises markDirty and the
		// under-threshold throttle check; re-inserting clean is a pure
		// index hit.
		c.Insert(nil, pid(1, i%64), BlockAddr{}, i%2 == 0)
		i++
	})
	if allocs != 0 {
		t.Errorf("Insert hit allocs/op = %v, want 0", allocs)
	}
}

func TestInsertEvictSteadyStateAllocs(t *testing.T) {
	// A full miss at capacity: policy victim, arena slot recycle, map
	// delete+insert, policy insert. Clean pages only — no I/O, no proc.
	for _, mk := range []func() Policy{
		func() Policy { return NewClock() },
		func() Policy { return NewLRU() },
		func() Policy { return NewHoldFirst() },
	} {
		c := newAllocCache(mk(), 64)
		next := int64(64)
		allocs := testing.AllocsPerRun(1000, func() {
			c.Insert(nil, pid(1, next), BlockAddr{}, false)
			next++
		})
		if allocs != 0 {
			t.Errorf("%s: insert+evict allocs/op = %v, want 0", c.PolicyName(), allocs)
		}
	}
}

func TestMarkDirtyCleanCycleAllocs(t *testing.T) {
	c := newAllocCache(NewLRU(), 64)
	i := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		idx := c.pages[pid(1, i%64)]
		c.markDirty(idx)
		c.clean(idx)
		i++
	})
	if allocs != 0 {
		t.Errorf("markDirty/clean cycle allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := newAllocCache(NewClock(), 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(pid(1, int64(i)%1024))
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := newAllocCache(NewClock(), 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(nil, pid(1, int64(i)+1024), BlockAddr{}, false)
	}
}
