package audit

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
)

// This file renders auditors into the audit report: canonical JSON with
// deterministic ordering only (sorted platforms, virtual timestamps, no
// wall-clock anywhere), so identical simulations export identical bytes
// at any worker-pool width.

// FrontierPoint is one point of a probe-cost-vs-accuracy frontier: the
// cheapest prediction pass that reached this accuracy.
type FrontierPoint struct {
	ProbeNS  int64   `json:"probe_ns"`
	Probes   int64   `json:"probes"`
	Accuracy float64 `json:"accuracy"`
	AtNS     int64   `json:"at_ns"`
}

// FCCDReport aggregates a platform's FCCD audit.
type FCCDReport struct {
	Predictions int64           `json:"predictions"`
	Units       int64           `json:"units"`
	Confusion   Confusion       `json:"confusion"`
	Accuracy    float64         `json:"accuracy"`
	Precision   float64         `json:"precision"`
	Recall      float64         `json:"recall"`
	Probes      int64           `json:"probes"`
	ProbeNS     int64           `json:"probe_ns"`
	Series      []FCCDRecord    `json:"series,omitempty"`
	SeriesDrops int64           `json:"series_drops,omitempty"`
	Frontier    []FrontierPoint `json:"frontier,omitempty"`
}

// FLDCReport aggregates a platform's FLDC audit.
type FLDCReport struct {
	Orders      int64           `json:"orders"`
	Pairs       int64           `json:"pairs"`
	Concordant  int64           `json:"concordant"`
	Discordant  int64           `json:"discordant"`
	Tau         float64         `json:"tau"`
	Accuracy    float64         `json:"accuracy"`
	Probes      int64           `json:"probes"`
	ProbeNS     int64           `json:"probe_ns"`
	Series      []FLDCRecord    `json:"series,omitempty"`
	SeriesDrops int64           `json:"series_drops,omitempty"`
	Frontier    []FrontierPoint `json:"frontier,omitempty"`
}

// MACReport aggregates a platform's MAC audit.
type MACReport struct {
	Calls       int64           `json:"calls"`
	Admits      int64           `json:"admits"`
	Rejects     int64           `json:"rejects"`
	MeanAbsErr  int64           `json:"mean_abs_err_bytes"`
	MaxAbsErr   int64           `json:"max_abs_err_bytes"`
	MeanRelErr  float64         `json:"mean_rel_err"`
	Accuracy    float64         `json:"accuracy"`
	PagesProbed int64           `json:"pages_probed"`
	ProbeNS     int64           `json:"probe_ns"`
	Series      []MACRecord     `json:"series,omitempty"`
	SeriesDrops int64           `json:"series_drops,omitempty"`
	Frontier    []FrontierPoint `json:"frontier,omitempty"`
}

// StashReport aggregates a platform's stash-admission audit. The
// confusion's positive class is "worth admitting" (truly absent from
// the OS cache); WastedRate is the fraction of admissions that
// double-cached OS-resident content — the number the gray-box policy
// exists to push below the naive policy's.
type StashReport struct {
	Decisions       int64         `json:"decisions"`
	Admits          int64         `json:"admits"`
	Rejects         int64         `json:"rejects"`
	Wasted          int64         `json:"wasted"`
	WastedRate      float64       `json:"wasted_rate"`
	Missed          int64         `json:"missed"`
	Confusion       Confusion     `json:"confusion"`
	Accuracy        float64       `json:"accuracy"`
	OfflineMisses   int64         `json:"offline_misses,omitempty"`
	OfflineResident int64         `json:"offline_resident,omitempty"`
	Probes          int64         `json:"probes"`
	ProbeNS         int64         `json:"probe_ns"`
	Series          []StashRecord `json:"series,omitempty"`
	SeriesDrops     int64         `json:"series_drops,omitempty"`
}

// Report is one platform's full audit.
type Report struct {
	Label string       `json:"label"`
	FCCD  *FCCDReport  `json:"fccd,omitempty"`
	FLDC  *FLDCReport  `json:"fldc,omitempty"`
	MAC   *MACReport   `json:"mac,omitempty"`
	Stash *StashReport `json:"stash,omitempty"`
}

// Doc is the export document of one run.
type Doc struct {
	Platforms []Report `json:"platforms"`
}

// Report renders the auditor's current state. Nil auditors render an
// empty (all-nil ICL sections) report.
func (a *Auditor) Report() Report {
	r := Report{Label: a.Label()}
	if a == nil {
		return r
	}
	if st := &a.fccd; st.predictions > 0 {
		fr := make([]FrontierPoint, len(st.series))
		for i, rec := range st.series {
			fr[i] = FrontierPoint{ProbeNS: rec.ProbeNS, Probes: rec.Probes, Accuracy: rec.Accuracy, AtNS: rec.AtNS}
		}
		r.FCCD = &FCCDReport{
			Predictions: st.predictions, Units: st.agg.Total(), Confusion: st.agg,
			Accuracy: st.agg.Accuracy(), Precision: st.agg.Precision(), Recall: st.agg.Recall(),
			Probes: st.probes, ProbeNS: st.probeNS,
			Series: st.series, SeriesDrops: st.drops, Frontier: frontier(fr),
		}
	}
	if st := &a.fldc; st.orders > 0 {
		fr := make([]FrontierPoint, len(st.series))
		for i, rec := range st.series {
			fr[i] = FrontierPoint{ProbeNS: rec.ProbeNS, Probes: rec.Probes, Accuracy: rec.Accuracy, AtNS: rec.AtNS}
		}
		rep := &FLDCReport{
			Orders: st.orders, Pairs: st.pairs,
			Concordant: st.concordant, Discordant: st.discordant,
			Tau: 1, Accuracy: 1,
			Probes: st.probes, ProbeNS: st.probeNS,
			Series: st.series, SeriesDrops: st.drops, Frontier: frontier(fr),
		}
		if st.pairs > 0 {
			rep.Tau = float64(st.concordant-st.discordant) / float64(st.pairs)
			rep.Accuracy = float64(st.concordant) / float64(st.pairs)
		}
		r.FLDC = rep
	}
	if st := &a.mac; st.calls > 0 {
		fr := make([]FrontierPoint, len(st.series))
		for i, rec := range st.series {
			fr[i] = FrontierPoint{ProbeNS: rec.ProbeNS, Probes: rec.PagesProbed, Accuracy: rec.Accuracy, AtNS: rec.AtNS}
		}
		r.MAC = &MACReport{
			Calls: st.calls, Admits: st.admits, Rejects: st.calls - st.admits,
			MeanAbsErr: st.sumAbsErr / st.calls, MaxAbsErr: st.maxAbsErr,
			MeanRelErr:  st.sumRelErr / float64(st.calls),
			Accuracy:    st.sumAccuracy / float64(st.calls),
			PagesProbed: st.pagesProbed, ProbeNS: st.probeNS,
			Series: st.series, SeriesDrops: st.drops, Frontier: frontier(fr),
		}
	}
	if st := &a.stash; st.decisions > 0 || st.offlineMisses > 0 {
		rep := &StashReport{
			Decisions: st.decisions, Admits: st.admits,
			Rejects: st.decisions - st.admits,
			Wasted:  st.wasted, Missed: st.agg.FN,
			Confusion: st.agg, Accuracy: st.agg.Accuracy(),
			OfflineMisses: st.offlineMisses, OfflineResident: st.offlineResident,
			Probes: st.probes, ProbeNS: st.probeNS,
			Series: st.series, SeriesDrops: st.drops,
		}
		if st.admits > 0 {
			rep.WastedRate = float64(st.wasted) / float64(st.admits)
		}
		r.Stash = rep
	}
	return r
}

// frontier reduces prediction passes to their Pareto frontier: sorted
// by ascending probe cost, keeping only passes that improved on every
// cheaper pass's accuracy.
func frontier(points []FrontierPoint) []FrontierPoint {
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].ProbeNS != points[j].ProbeNS {
			return points[i].ProbeNS < points[j].ProbeNS
		}
		return points[i].AtNS < points[j].AtNS
	})
	out := points[:0]
	best := -1.0
	for _, p := range points {
		if p.Accuracy > best {
			out = append(out, p)
			best = p.Accuracy
		}
	}
	return out
}

// Snapshot captures the reports of a set of auditors, in the given
// order.
func Snapshot(auds []*Auditor) Doc {
	doc := Doc{Platforms: make([]Report, 0, len(auds))}
	for _, a := range auds {
		doc.Platforms = append(doc.Platforms, a.Report())
	}
	return doc
}

// WriteJSON writes the snapshot of auds (in the given order) as
// indented canonical JSON. All numbers derive from the deterministic
// simulation, so the output is byte-stable.
func WriteJSON(w io.Writer, auds []*Auditor) error {
	data, err := json.MarshalIndent(Snapshot(auds), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// SortAuditors orders auditors deterministically: by label, ties broken
// by serialized report content — the same canonicalization
// telemetry.SortRegistries applies, for the same reason: trial workers
// finish in nondeterministic wall-clock order.
func SortAuditors(auds []*Auditor) {
	content := make(map[*Auditor][]byte, len(auds))
	contentOf := func(a *Auditor) []byte {
		if b, ok := content[a]; ok {
			return b
		}
		b, err := json.Marshal(a.Report())
		if err != nil {
			b = []byte(a.Label()) // unreachable: Report is marshalable
		}
		content[a] = b
		return b
	}
	sort.SliceStable(auds, func(i, j int) bool {
		if li, lj := auds[i].Label(), auds[j].Label(); li != lj {
			return li < lj
		}
		return bytes.Compare(contentOf(auds[i]), contentOf(auds[j])) < 0
	})
}
