// Package cache implements the OS file/buffer cache with pluggable
// replacement policies. Three policies model the three platforms the
// paper studies:
//
//   - Clock: second-chance LRU approximation (Linux 2.2's page cache).
//     Evicts in long, spatially-correlated chunks under sequential access,
//     which is the property FCCD's sparse probing relies on (Figure 1).
//   - LRU: strict LRU over a small fixed-size buffer cache (NetBSD 1.5's
//     pre-UVM 64 MB file cache).
//   - HoldFirst: scan-resistant policy approximating Solaris 7's observed
//     behavior: once the cache fills, the most recently inserted page is
//     recycled, so early residents are "quite difficult to dislodge".
//
// All three track pages in intrusive index-based rings (internal/ring)
// rather than container/list, so steady-state insert/touch/victim cycles
// allocate nothing: a victim's arena slot is reused by the next insert.
package cache

import "graybox/internal/ring"

// PageID identifies one cached file page.
type PageID struct {
	Ino   int64
	Index int64 // page number within the file
}

// Policy is a replacement policy over cached pages. Implementations need
// not be safe for concurrent use; the simulation is single-threaded.
type Policy interface {
	Name() string
	// Inserted records a newly cached page.
	Inserted(id PageID)
	// Touched records a hit on a cached page.
	Touched(id PageID)
	// Victim selects and removes the page to evict. ok is false when the
	// policy tracks no pages.
	Victim() (id PageID, ok bool)
	// Removed drops a page evicted or invalidated externally.
	Removed(id PageID)
	// Len returns the number of tracked pages.
	Len() int
	// Clone returns an independent deep copy of the policy's state, for
	// platform snapshots. The copy must reproduce eviction order exactly.
	Clone() Policy
}

// --- Clock ---

type clockEntry struct {
	id  PageID
	ref bool
}

// ClockPolicy is the classic clock (second-chance) algorithm.
type ClockPolicy struct {
	ring ring.List[clockEntry]
	pos  map[PageID]ring.Handle // page -> ring slot
	hand ring.Handle            // None when the ring is empty
}

// NewClock returns an empty clock policy.
func NewClock() *ClockPolicy {
	return &ClockPolicy{pos: make(map[PageID]ring.Handle)}
}

func (c *ClockPolicy) Name() string { return "clock" }
func (c *ClockPolicy) Len() int     { return c.ring.Len() }

func (c *ClockPolicy) Inserted(id PageID) {
	ent := clockEntry{id: id, ref: true}
	var h ring.Handle
	if c.hand == ring.None {
		h = c.ring.PushBack(ent)
		c.hand = h
	} else {
		// Insert just before the hand: the new page gets a full sweep
		// before it can be victimized.
		h = c.ring.InsertBefore(ent, c.hand)
	}
	c.pos[id] = h
}

func (c *ClockPolicy) Touched(id PageID) {
	if h, ok := c.pos[id]; ok {
		c.ring.At(h).ref = true
	}
}

func (c *ClockPolicy) Victim() (PageID, bool) {
	if c.ring.Len() == 0 {
		return PageID{}, false
	}
	// At most two sweeps: the first clears all reference bits, so the
	// second must find a victim.
	for i := 0; i < 2*c.ring.Len(); i++ {
		ent := c.ring.At(c.hand)
		if ent.ref {
			ent.ref = false
			c.hand = c.ring.NextCyclic(c.hand)
			continue
		}
		victim := c.hand
		c.hand = c.ring.NextCyclic(c.hand)
		if c.hand == victim { // last page
			c.hand = ring.None
		}
		id := c.ring.Remove(victim).id
		delete(c.pos, id)
		return id, true
	}
	panic("cache: clock failed to find a victim")
}

func (c *ClockPolicy) Clone() Policy {
	cp := &ClockPolicy{ring: c.ring.Clone(), hand: c.hand, pos: make(map[PageID]ring.Handle, len(c.pos))}
	for id, h := range c.pos {
		cp.pos[id] = h
	}
	return cp
}

func (c *ClockPolicy) Removed(id PageID) {
	h, ok := c.pos[id]
	if !ok {
		return
	}
	if c.hand == h {
		c.hand = c.ring.NextCyclic(h)
		if c.hand == h {
			c.hand = ring.None
		}
	}
	c.ring.Remove(h)
	delete(c.pos, id)
}

// --- LRU ---

// LRUPolicy is strict least-recently-used replacement.
type LRUPolicy struct {
	order ring.List[PageID] // front = most recent
	pos   map[PageID]ring.Handle
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRUPolicy {
	return &LRUPolicy{pos: make(map[PageID]ring.Handle)}
}

func (l *LRUPolicy) Name() string { return "lru" }
func (l *LRUPolicy) Len() int     { return l.order.Len() }

func (l *LRUPolicy) Inserted(id PageID) {
	l.pos[id] = l.order.PushFront(id)
}

func (l *LRUPolicy) Touched(id PageID) {
	if h, ok := l.pos[id]; ok {
		l.order.MoveToFront(h)
	}
}

func (l *LRUPolicy) Victim() (PageID, bool) {
	back := l.order.Back()
	if back == ring.None {
		return PageID{}, false
	}
	id := l.order.Remove(back)
	delete(l.pos, id)
	return id, true
}

func (l *LRUPolicy) Clone() Policy {
	cp := &LRUPolicy{order: l.order.Clone(), pos: make(map[PageID]ring.Handle, len(l.pos))}
	for id, h := range l.pos {
		cp.pos[id] = h
	}
	return cp
}

func (l *LRUPolicy) Removed(id PageID) {
	if h, ok := l.pos[id]; ok {
		l.order.Remove(h)
		delete(l.pos, id)
	}
}

// --- HoldFirst ---

// HoldFirstPolicy retains pages in insertion order and recycles the most
// recently inserted page, so the earliest residents are effectively
// pinned. Touches do not reorder anything.
type HoldFirstPolicy struct {
	order ring.List[PageID] // front = oldest insertion
	pos   map[PageID]ring.Handle
}

// NewHoldFirst returns an empty hold-first policy.
func NewHoldFirst() *HoldFirstPolicy {
	return &HoldFirstPolicy{pos: make(map[PageID]ring.Handle)}
}

func (h *HoldFirstPolicy) Name() string { return "holdfirst" }
func (h *HoldFirstPolicy) Len() int     { return h.order.Len() }

func (h *HoldFirstPolicy) Inserted(id PageID) {
	h.pos[id] = h.order.PushBack(id)
}

func (h *HoldFirstPolicy) Touched(id PageID) {}

func (h *HoldFirstPolicy) Victim() (PageID, bool) {
	back := h.order.Back()
	if back == ring.None {
		return PageID{}, false
	}
	id := h.order.Remove(back)
	delete(h.pos, id)
	return id, true
}

func (h *HoldFirstPolicy) Clone() Policy {
	cp := &HoldFirstPolicy{order: h.order.Clone(), pos: make(map[PageID]ring.Handle, len(h.pos))}
	for id, hd := range h.pos {
		cp.pos[id] = hd
	}
	return cp
}

func (h *HoldFirstPolicy) Removed(id PageID) {
	if hd, ok := h.pos[id]; ok {
		h.order.Remove(hd)
		delete(h.pos, id)
	}
}
