package sim

// Resource is a counting semaphore with strict FIFO admission, used to
// model devices (a disk services one request at a time) and bounded pools.
type Resource struct {
	e        *Engine
	capacity int
	inUse    int
	waiters  []*Proc

	// Utilization accounting.
	busySince Time
	busyTotal Time
}

// NewResource creates a resource with the given concurrent capacity.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{e: e, capacity: capacity}
}

// Acquire obtains one unit of the resource, blocking the calling process
// in FIFO order if none is available.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.grant()
		return
	}
	r.waiters = append(r.waiters, p)
	p.Block()
	// The releaser granted our unit before unblocking us.
}

// TryAcquire obtains a unit without blocking; it reports whether it
// succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.grant()
		return true
	}
	return false
}

func (r *Resource) grant() {
	if r.inUse == 0 {
		r.busySince = r.e.now
	}
	r.inUse++
}

// Release returns one unit and hands it to the longest-waiting process, if
// any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	r.inUse--
	if r.inUse == 0 {
		r.busyTotal += r.e.now - r.busySince
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.grant()
		r.e.Unblock(next)
	}
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyTime returns the total virtual time during which at least one unit
// was held.
func (r *Resource) BusyTime() Time {
	t := r.busyTotal
	if r.inUse > 0 {
		t += r.e.now - r.busySince
	}
	return t
}
