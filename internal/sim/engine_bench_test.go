package sim

import "testing"

// BenchmarkSchedule measures the schedule-then-fire path: N events pushed
// and popped through the heap with no cancellations.
func BenchmarkSchedule(b *testing.B) {
	const batch = 1024
	e := NewEngine(1)
	sink := 0
	fn := func() { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			e.Schedule(base+Time(j%37), fn)
		}
		e.Run()
	}
	_ = sink
}

// BenchmarkScheduleCancel measures the timer-churn pattern every ICL probe
// loop generates: schedule a batch, cancel it all, schedule again. The
// seed implementation's O(n) scan in Cancel makes this quadratic in the
// batch size.
func BenchmarkScheduleCancel(b *testing.B) {
	const batch = 1024
	e := NewEngine(1)
	fn := func() {}
	evs := make([]Event, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			evs[j] = e.Schedule(base+Time(j%37)+1, fn)
		}
		for j := 0; j < batch; j++ {
			e.Cancel(evs[j])
		}
		// One live event so Run advances the clock past the tombstones.
		e.Schedule(base+40, fn)
		e.Run()
	}
}

// benchTimerLoad drives the timer population the wheel targets: a large
// standing set of short-to-medium delay timers (microseconds to a few
// milliseconds, the sleep/IO range of the simulator) with steady churn —
// each firing schedules a replacement, and every fourth timer is
// canceled and rescheduled, the ICL probe-timeout pattern.
func benchTimerLoad(b *testing.B, e *Engine) {
	const outstanding = 8192
	delays := [8]Time{5_000, 17_000, 40_000, 120_000, 350_000, 900_000, 2_100_000, 4_700_000}
	fired := 0
	var reschedule func()
	i := 0
	reschedule = func() {
		fired++
		e.After(delays[i&7], reschedule)
		i++
		if i&3 == 0 {
			ev := e.After(delays[(i>>3)&7], reschedule)
			e.Cancel(ev)
		}
	}
	for j := 0; j < outstanding; j++ {
		e.After(delays[j&7]+Time(j), reschedule)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for fired < b.N {
		if !e.step() {
			b.Fatal("engine drained")
		}
	}
	b.StopTimer()
}

// BenchmarkTimerWheel measures the hierarchical timing wheel under the
// standing-timer churn load (wheel forced on).
func BenchmarkTimerWheel(b *testing.B) {
	e := NewEngine(1)
	e.wheelMin = 0
	benchTimerLoad(b, e)
}

// BenchmarkHeapSchedule measures the same load on the min-heap alone
// (wheel forced off) — the before/after pair for make bench-wheel.
func BenchmarkHeapSchedule(b *testing.B) {
	e := NewEngine(1)
	e.wheelMin = 1 << 40
	benchTimerLoad(b, e)
}

// BenchmarkProcessHandoff measures the engine<->process goroutine handoff
// (park/wake round-trip) via the Sleep fast path.
func BenchmarkProcessHandoff(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	p := e.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	e.WaitAll(p)
}
