package workload

import (
	"math"
	"testing"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// TestWebOpenLoopArrivalsIndependentOfService: the arrival process is
// open-loop — the gap and file-pick draws happen whether or not the
// request is shed, so the draw trace must be identical no matter how
// slow service is or how tight the admission cap. A closed-loop bug
// (drawing only on admission) would shift every later draw.
func TestWebOpenLoopArrivalsIndependentOfService(t *testing.T) {
	run := func(cap int, bufKB int64) *Mix {
		s := newSys(11)
		w := &WebServer{Files: 8, FileKB: 32, RatePerSec: 2000,
			MaxInFlight: cap, BufKB: bufKB}
		m := NewMix(11, 1).Add(w)
		if err := m.RunFor(s, 300*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return m
	}
	wide := run(64, 0)   // nothing shed, fast service
	narrow := run(1, 0)  // almost everything shed
	heavy := run(4, 256) // slow service (per-request buffer work)
	base := wide.Trace("web")
	if len(base) < 16 {
		t.Fatalf("web drew only %d values in 300ms", len(base))
	}
	prefixEqual(t, "web cap=1", base, narrow.Trace("web"), 16)
	prefixEqual(t, "web buf=256K", base, heavy.Trace("web"), 16)
}

// TestWebLimitHookOverridesCap: an admission controller's Limit hook
// takes precedence over MaxInFlight at every arrival, and a
// non-positive return falls back.
func TestWebLimitHookOverridesCap(t *testing.T) {
	s := newSys(12)
	w := &WebServer{Files: 4, FileKB: 16, RatePerSec: 4000, MaxInFlight: 64,
		Limit: func() int { return 1 }}
	m := NewMix(12, 1).Add(w)
	if err := m.RunFor(s, 200*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.Dropped() == 0 {
		t.Fatal("Limit()=1 under 4000/s arrivals shed nothing")
	}
	w2 := &WebServer{Files: 4, FileKB: 16, RatePerSec: 100, MaxInFlight: 8,
		Limit: func() int { return 0 }}
	if got := w2.limit(); got != 8 {
		t.Errorf("non-positive Limit() fell back to %d, want MaxInFlight 8", got)
	}
}

// unlinker removes one corpus file shortly after the mix starts, so
// subsequent requests for it fail at Open.
type unlinker struct {
	path  string
	after sim.Time
}

func (u *unlinker) Name() string                { return "unlink" }
func (u *unlinker) Prepare(*simos.System) error { return nil }
func (u *unlinker) Run(ctx *Ctx) {
	ctx.OS().Sleep(u.after)
	if err := ctx.OS().Unlink(u.path); err != nil {
		panic(err)
	}
	for !ctx.Stopped() {
		ctx.OS().Sleep(10 * sim.Millisecond)
	}
}

// TestWebCountsRequestErrors: a request whose file vanished fails and is
// counted — neither served nor dropped, never silently swallowed.
func TestWebCountsRequestErrors(t *testing.T) {
	s := newSys(13)
	// Theta 5 concentrates almost every pick on file 0, the one we unlink.
	w := &WebServer{Files: 4, FileKB: 16, RatePerSec: 2000, MaxInFlight: 32,
		Theta: 5}
	m := NewMix(13, 1).Add(w, &unlinker{path: w.path(0), after: 50 * sim.Millisecond})
	if err := m.RunFor(s, 300*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.Errors() == 0 {
		t.Fatal("requests for an unlinked file reported no errors")
	}
	if w.Served() == 0 {
		t.Fatal("nothing served before the unlink")
	}
}

// TestWebStageTotalsMatchLatency: with telemetry on, the critical-path
// stage sums over served requests must equal the latency sketch's Sum —
// the decomposition is exact, not approximate.
func TestWebStageTotalsMatchLatency(t *testing.T) {
	s := newSys(14)
	s.EnableTelemetry()
	w := &WebServer{Files: 8, FileKB: 64, RatePerSec: 1000, MaxInFlight: 8,
		Theta: 0.9, BufKB: 64, SLONanos: int64(sim.Millisecond)}
	m := NewMix(14, 1).Add(w)
	if err := m.RunFor(s, 300*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	lat := w.Latency()
	if lat == nil || lat.Count() == 0 {
		t.Fatal("latency sketch empty with telemetry enabled")
	}
	if lat.Count() != w.Served() {
		t.Fatalf("sketch holds %d observations, served %d", lat.Count(), w.Served())
	}
	q, c, d, a := w.StageTotals()
	if q < 0 || c < 0 || d < 0 || a < 0 {
		t.Fatalf("negative stage total: q=%d c=%d d=%d a=%d", q, c, d, a)
	}
	if a == 0 {
		t.Error("BufKB > 0 but no app-stage time attributed")
	}
	if got := q + c + d + a; got != lat.Sum() {
		t.Fatalf("stage sums %d != latency sum %d (decomposition must be exact)", got, lat.Sum())
	}
	if slo := w.SLO(); slo == nil || slo.Total() != w.Served() {
		t.Fatal("SLO tracker missing or not fed once per served request")
	}
}

// TestWebZipfCDF: the popularity CDF is monotone, normalized, and
// rank-0-heavy for Theta > 0.
func TestWebZipfCDF(t *testing.T) {
	s := newSys(15)
	w := &WebServer{Files: 16, FileKB: 16, Theta: 0.9}
	if err := w.Prepare(s); err != nil {
		t.Fatal(err)
	}
	if len(w.cdf) != 16 {
		t.Fatalf("cdf has %d entries, want 16", len(w.cdf))
	}
	prev := 0.0
	for i, v := range w.cdf {
		if v < prev {
			t.Fatalf("cdf not monotone at %d", i)
		}
		prev = v
	}
	if math.Abs(w.cdf[15]-1) > 1e-12 {
		t.Fatalf("cdf tail = %v, want 1", w.cdf[15])
	}
	if w.cdf[0] <= 1.0/16 {
		t.Errorf("rank-0 mass %v not above uniform 1/16", w.cdf[0])
	}
	// Theta == 0 must keep the original uniform path (no CDF at all).
	w0 := &WebServer{Files: 16, FileKB: 16}
	if err := w0.Prepare(newSys(16)); err != nil {
		t.Fatal(err)
	}
	if w0.cdf != nil {
		t.Error("Theta 0 built a CDF; uniform draw sequence must be preserved")
	}
}
