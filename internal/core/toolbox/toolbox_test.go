package toolbox

import (
	"bytes"
	"testing"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

func testSystem() *simos.System {
	return simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 128, KernelMB: 8, CacheFloorMB: 1,
	})
}

func TestRepositoryRoundTrip(t *testing.T) {
	r := NewRepository("linux22")
	r.Set(KeyDiskProbeNS, 5.2e6)
	r.Set(KeySeqBandwidthMBps, 19.5)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Platform != "linux22" {
		t.Errorf("platform = %q", r2.Platform)
	}
	if v, ok := r2.Get(KeyDiskProbeNS); !ok || v != 5.2e6 {
		t.Errorf("probe = %v, %v", v, ok)
	}
	if d, ok := r2.GetDuration(KeyDiskProbeNS); !ok || d != sim.Time(5.2e6) {
		t.Errorf("duration = %v", d)
	}
	if _, ok := r2.Get("nope"); ok {
		t.Error("phantom key")
	}
	if ks := r2.Keys(); len(ks) != 2 || ks[0] != KeyDiskProbeNS {
		t.Errorf("keys = %v", ks)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{nope")); err == nil {
		t.Error("expected error")
	}
}

func TestStopwatch(t *testing.T) {
	s := testSystem()
	err := s.Run("t", func(os *simos.OS) {
		sw := NewStopwatch(os)
		os.Sleep(5 * sim.Millisecond)
		if sw.Elapsed() != 5*sim.Millisecond {
			t.Errorf("elapsed = %v", sw.Elapsed())
		}
		lap := sw.Reset()
		if lap != 5*sim.Millisecond {
			t.Errorf("lap = %v", lap)
		}
		if sw.Elapsed() != 0 {
			t.Errorf("after reset = %v", sw.Elapsed())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllProducesSaneParameters(t *testing.T) {
	s := testSystem()
	repo := NewRepository(string(s.Personality()))
	err := s.Run("bench", func(os *simos.OS) {
		if err := RunAll(os, repo); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	touch, ok := repo.GetDuration(KeyTouchResidentNS)
	if !ok || touch <= 0 || touch > 2*sim.Microsecond {
		t.Errorf("touch resident = %v", touch)
	}
	zf, _ := repo.GetDuration(KeyZeroFillNS)
	if zf < touch {
		t.Errorf("zero fill %v not slower than touch %v", zf, touch)
	}
	cacheProbe, _ := repo.GetDuration(KeyCacheProbeNS)
	if cacheProbe <= 0 || cacheProbe > 20*sim.Microsecond {
		t.Errorf("cache probe = %v, want a few us", cacheProbe)
	}
	diskProbe, _ := repo.GetDuration(KeyDiskProbeNS)
	if diskProbe < 50*cacheProbe {
		t.Errorf("disk probe %v vs cache probe %v: no bimodal gap", diskProbe, cacheProbe)
	}
	bw, ok := repo.Get(KeySeqBandwidthMBps)
	if !ok || bw < 10 || bw > 40 {
		t.Errorf("seq bandwidth = %v MB/s, want ~20", bw)
	}
	au, ok := repo.Get(KeyAccessUnitBytes)
	if !ok || au < float64(1<<20) {
		t.Errorf("access unit = %v, want >= 1 MB", au)
	}

	// Scratch files are cleaned up.
	if _, err := s.FS(0).InoOf(benchDir + "/disk"); err == nil {
		t.Error("scratch files not removed")
	}
}
