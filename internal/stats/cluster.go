package stats

import (
	"math"
	"sort"
)

// Cluster2Result describes a partition of one-dimensional observations
// into a "low" and a "high" group. FCCD/FLDC composition (Section 4.2.4)
// uses it to split probe times into in-cache and on-disk groups.
type Cluster2Result struct {
	// Threshold separates the groups: values <= Threshold are low.
	Threshold float64
	// LowIdx and HighIdx are the indices of the original observations in
	// each group, in increasing value order.
	LowIdx, HighIdx []int
	// LowMean and HighMean are the group means.
	LowMean, HighMean float64
	// WithinVariance is the summed within-group variance of the chosen
	// split (the quantity minimized).
	WithinVariance float64
}

// Cluster2 partitions xs into two groups minimizing total within-group
// variance (exact 2-means in one dimension, found by scanning all split
// points of the sorted values). With fewer than two observations, or when
// all observations are equal, everything lands in the low group and
// HighIdx is empty.
func Cluster2(xs []float64) Cluster2Result {
	n := len(xs)
	res := Cluster2Result{Threshold: math.Inf(1), WithinVariance: 0}
	if n == 0 {
		return res
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	sorted := make([]float64, n)
	for i, j := range idx {
		sorted[i] = xs[j]
	}
	if n == 1 || sorted[0] == sorted[n-1] {
		res.LowIdx = idx
		res.LowMean = Mean(sorted)
		res.HighMean = math.NaN()
		return res
	}

	// Prefix sums for O(n) split evaluation.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	groupSSE := func(lo, hi int) float64 { // [lo, hi)
		cnt := float64(hi - lo)
		if cnt == 0 {
			return 0
		}
		sum := prefix[hi] - prefix[lo]
		sq := prefixSq[hi] - prefixSq[lo]
		return sq - sum*sum/cnt
	}

	bestSplit, bestSSE := 1, math.Inf(1)
	for split := 1; split < n; split++ {
		if sorted[split] == sorted[split-1] {
			continue // identical values must share a group
		}
		sse := groupSSE(0, split) + groupSSE(split, n)
		if sse < bestSSE {
			bestSSE, bestSplit = sse, split
		}
	}
	if math.IsInf(bestSSE, 1) {
		// All distinct splits impossible (shouldn't happen given the
		// equal-values check above); fall back to one group.
		res.LowIdx = idx
		res.LowMean = Mean(sorted)
		res.HighMean = math.NaN()
		return res
	}

	res.LowIdx = idx[:bestSplit]
	res.HighIdx = idx[bestSplit:]
	res.Threshold = (sorted[bestSplit-1] + sorted[bestSplit]) / 2
	res.LowMean = (prefix[bestSplit]) / float64(bestSplit)
	res.HighMean = (prefix[n] - prefix[bestSplit]) / float64(n-bestSplit)
	res.WithinVariance = bestSSE / float64(n)
	return res
}

// Separation returns the ratio HighMean/LowMean, a quick measure of how
// bimodal the data is; callers can treat small ratios (close to 1) as
// "probably a single cluster". Returns NaN when either group is empty or
// LowMean is zero.
func (c Cluster2Result) Separation() float64 {
	if len(c.LowIdx) == 0 || len(c.HighIdx) == 0 || c.LowMean == 0 {
		return math.NaN()
	}
	return c.HighMean / c.LowMean
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values outside the range clamp to the first/last bin. It returns the
// counts and the bin width. nbins must be >= 1.
func Histogram(xs []float64, min, max float64, nbins int) ([]int, float64) {
	if nbins < 1 {
		panic("stats: Histogram needs nbins >= 1")
	}
	counts := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - min) / width)
		}
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, width
}
