package graybox

import (
	"testing"
)

// TestPublicAPIEndToEnd exercises the whole public surface in one
// scenario: build a platform, run the microbenchmarks, detect cache
// contents, order files by layout, and admission-control memory.
func TestPublicAPIEndToEnd(t *testing.T) {
	p := NewPlatform(PlatformConfig{MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1})
	err := p.Run("app", func(os *Proc) {
		// Toolbox.
		repo := NewRepository(string(p.Personality()))
		if err := RunMicrobenchmarks(os, repo); err != nil {
			t.Fatal(err)
		}
		if len(repo.Keys()) < 5 {
			t.Errorf("repository keys = %v", repo.Keys())
		}

		// Fixture: a directory of files, one warm.
		if err := os.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"d/a", "d/b", "d/c"} {
			fd, err := os.Create(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := fd.Write(0, 2*MB); err != nil {
				t.Fatal(err)
			}
		}
		p.DropCaches()
		fd, _ := os.Open("d/b")
		fd.Read(0, fd.Size())

		// FCCD finds the warm file.
		det := NewFCCD(os, FCCDConfig{AccessUnit: 2 * MB, PredictionUnit: MB, Seed: 1})
		probes, err := det.OrderFiles([]string{"d/a", "d/b", "d/c"})
		if err != nil {
			t.Fatal(err)
		}
		if probes[0].Path != "d/b" {
			t.Errorf("FCCD ranked %v first, want d/b", probes[0].Path)
		}

		// FLDC recovers creation order and can refresh.
		l := NewFLDC(os)
		ordered, err := l.OrderByINumber([]string{"d/c", "d/a", "d/b"})
		if err != nil {
			t.Fatal(err)
		}
		if ordered[0] != "d/a" || ordered[2] != "d/c" {
			t.Errorf("FLDC order = %v", ordered)
		}
		if err := l.Refresh("d", RefreshBySize); err != nil {
			t.Fatal(err)
		}

		// MAC allocates most of free memory, verified resident.
		ctl := NewMAC(os, MACConfig{InitialIncrement: MB, MaxIncrement: 8 * MB})
		a, ok := ctl.GBAlloc(4*MB, 64*MB, MB)
		if !ok {
			t.Fatal("GBAlloc failed on idle machine")
		}
		if a.Bytes < 16*MB {
			t.Errorf("GBAlloc got only %d MB", a.Bytes/MB)
		}
		ctl.GBFree(a)

		// Stopwatch runs on virtual time.
		sw := NewStopwatch(os)
		os.Sleep(3 * Millisecond)
		if sw.Elapsed() != 3*Millisecond {
			t.Errorf("stopwatch = %v", sw.Elapsed())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlatformPersonalities(t *testing.T) {
	for _, pers := range []Personality{Linux22, NetBSD15, Solaris7} {
		p := NewPlatform(PlatformConfig{Personality: pers, MemoryMB: 32, KernelMB: 8})
		if p.Personality() != pers {
			t.Errorf("personality = %v, want %v", p.Personality(), pers)
		}
	}
}

func TestDefaultAppCosts(t *testing.T) {
	c := DefaultAppCosts()
	if c.ScanCPUPerByte <= 0 || c.ReadChunk <= 0 {
		t.Errorf("costs = %+v", c)
	}
}
