package telemetry

// span is one completed begin/end region, recorded when End pops it.
// id/parent chain spans into stacks for the profiler: parent is the id
// of the span that was open (innermost) on the same track at Begin, 0
// at top level. A parent can be missing from the log (still open at
// export, or dropped over the span cap after its child was kept); the
// profiler treats such orphans as roots.
type span struct {
	tid        int32
	id, parent int64
	start, dur int64
	req        int64 // request id, 0 when not request-scoped
	cat, name  string
}

// Track is one span timeline — in this repository, one simulated
// process. Spans on a track nest strictly (Begin pushes, End pops), which
// matches the call structure of instrumented code: a syscall span
// encloses the disk-op span its I/O produced. All methods are nil-safe.
type Track struct {
	reg  *Registry
	tid  int32
	name string
	open []openSpan
	req  RequestSpan // reused across requests; see request.go
}

type openSpan struct {
	cat, name string
	id        int64
	start     int64
	req       int64 // active request id at Begin, 0 otherwise
}

// NewTrack creates a span timeline named name (a process name). Nil
// registry returns a nil track whose methods are no-ops.
func (r *Registry) NewTrack(name string) *Track {
	if r == nil {
		return nil
	}
	t := &Track{reg: r, tid: int32(len(r.tracks) + 1), name: name}
	r.tracks = append(r.tracks, t)
	return t
}

// Begin opens a span. Every Begin must be paired with an End on the same
// track; spans left open are dropped at export.
func (t *Track) Begin(cat, name string) {
	if t == nil {
		return
	}
	t.reg.nextSpanID++
	var req int64
	if t.req.active {
		req = t.req.id
	}
	t.open = append(t.open, openSpan{
		cat: cat, name: name, id: t.reg.nextSpanID, start: t.reg.clock(),
		req: req,
	})
}

// End closes the innermost open span. End on an empty track is a no-op
// (robustness over panics in instrumentation code).
func (t *Track) End() {
	if t == nil || len(t.open) == 0 {
		return
	}
	os := t.open[len(t.open)-1]
	t.open = t.open[:len(t.open)-1]
	var parent int64
	if len(t.open) > 0 {
		parent = t.open[len(t.open)-1].id
	}
	dur := t.reg.clock() - os.start
	if os.req != 0 && t.req.active && os.req == t.req.id {
		t.accumulate(os, dur)
	}
	t.reg.addSpan(span{
		tid:    t.tid,
		id:     os.id,
		parent: parent,
		start:  os.start,
		dur:    dur,
		req:    os.req,
		cat:    os.cat,
		name:   os.name,
	})
}

// Instant records a zero-duration marker on the track.
func (t *Track) Instant(cat, name string) {
	if t == nil {
		return
	}
	var parent int64
	if len(t.open) > 0 {
		parent = t.open[len(t.open)-1].id
	}
	t.reg.nextSpanID++
	var req int64
	if t.req.active {
		req = t.req.id
	}
	now := t.reg.clock()
	t.reg.addSpan(span{
		tid: t.tid, id: t.reg.nextSpanID, parent: parent,
		start: now, dur: -1, req: req, cat: cat, name: name,
	})
}

func (r *Registry) addSpan(s span) {
	if len(r.spans) >= r.maxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// SpanCount returns recorded (kept) spans (0 for nil).
func (r *Registry) SpanCount() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// SpanDrops returns spans discarded over the MaxSpans bound.
func (r *Registry) SpanDrops() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Event is one instant event in a Ring: a timestamped message in a
// category (the sim.Tracer record).
type Event struct {
	At       int64
	Cat, Msg string
}

// Ring is a bounded buffer of instant events that drops the oldest once
// full — a proper circular buffer: append is O(1) at any size, with a
// head index and wraparound instead of shifting the backing array.
// Limit 0 means unbounded. A Ring works standalone (no registry); attach
// it to a registry with AddRing to include its events in trace export.
type Ring struct {
	limit  int
	events []Event
	head   int // index of the oldest event once the buffer is full
	drops  int64
}

// NewRing creates a ring keeping at most limit events (0 = unbounded).
func NewRing(limit int) *Ring {
	if limit < 0 {
		limit = 0
	}
	return &Ring{limit: limit}
}

// AddRing registers a ring's events for trace export. No-op on nil
// registry.
func (r *Registry) AddRing(ring *Ring) {
	if r == nil || ring == nil {
		return
	}
	r.rings = append(r.rings, ring)
}

// Append records an event, dropping the oldest when at the limit.
func (rg *Ring) Append(ev Event) {
	if rg.limit > 0 && len(rg.events) >= rg.limit {
		rg.events[rg.head] = ev
		rg.head = (rg.head + 1) % rg.limit
		rg.drops++
		return
	}
	rg.events = append(rg.events, ev)
}

// Len returns the number of retained events.
func (rg *Ring) Len() int { return len(rg.events) }

// Dropped returns how many events were discarded to honor the limit.
func (rg *Ring) Dropped() int64 { return rg.drops }

// Events returns a copy of the retained events, oldest first.
func (rg *Ring) Events() []Event {
	out := make([]Event, 0, len(rg.events))
	out = append(out, rg.events[rg.head:]...)
	out = append(out, rg.events[:rg.head]...)
	return out
}

// Do calls fn for each retained event, oldest first, without copying.
func (rg *Ring) Do(fn func(Event)) {
	for _, ev := range rg.events[rg.head:] {
		fn(ev)
	}
	for _, ev := range rg.events[:rg.head] {
		fn(ev)
	}
}
