package priorart

import (
	"testing"

	"graybox/internal/sim"
)

func TestTCPSharesLinkFairly(t *testing.T) {
	res := RunTCP(DefaultTCPConfig())
	if len(res.Delivered) != 2 {
		t.Fatalf("senders = %d", len(res.Delivered))
	}
	a, b := res.Delivered[0], res.Delivered[1]
	if a == 0 || b == 0 {
		t.Fatalf("starved sender: %d, %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("unfair share: %d vs %d", a, b)
	}
	if res.Drops == 0 {
		t.Error("no congestion signal ever generated")
	}
	if res.AvgWindow <= 1 {
		t.Errorf("window never grew: %v", res.AvgWindow)
	}
}

func TestTCPMisbehaverIsIdentifiable(t *testing.T) {
	// "Misbehaving clients can also be identified by observing which
	// are unresponsive to such gray-box control" (Section 3): a sender
	// that ignores the loss signal shows a drastically higher drop rate
	// per delivered packet than one that adapts.
	cfg := DefaultTCPConfig()
	cfg.Senders = 1
	gb := RunTCP(cfg)
	cfg.GrayBox = false
	bad := RunTCP(cfg)
	gbRate := float64(gb.Drops) / float64(gb.Delivered[0])
	badRate := float64(bad.Drops) / float64(bad.Delivered[0])
	if badRate < 5*gbRate {
		t.Errorf("misbehaver drop rate %.3f not clearly above gray-box %.3f", badRate, gbRate)
	}
}

func TestTCPWirelessMisinterpretsLoss(t *testing.T) {
	// The paper's point: in a wireless setting, losses are not
	// congestion, so the unmodified gray-box inference keeps the window
	// needlessly small and goodput drops (Section 3).
	wired := DefaultTCPConfig()
	wired.Senders = 1
	wireless := wired
	wireless.WirelessLoss = 0.05
	w0 := RunTCP(wired)
	w1 := RunTCP(wireless)
	if w1.Delivered[0]*2 > w0.Delivered[0] {
		t.Errorf("wireless goodput %d not clearly below wired %d", w1.Delivered[0], w0.Delivered[0])
	}
	if w1.AvgWindow >= w0.AvgWindow {
		t.Errorf("wireless window %v >= wired %v", w1.AvgWindow, w0.AvgWindow)
	}
}

func TestCoschedImplicitBeatsBlocking(t *testing.T) {
	cfg := DefaultCoschedConfig()
	implicit := RunCosched(cfg)
	cfg.Implicit = false
	blocking := RunCosched(cfg)
	if implicit.Elapsed*2 > blocking.Elapsed {
		t.Errorf("implicit %v not much faster than blocking %v", implicit.Elapsed, blocking.Elapsed)
	}
	if implicit.Spins == 0 {
		t.Error("implicit coscheduling never spun")
	}
	if blocking.Blocks == 0 {
		t.Error("blocking variant never blocked")
	}
}

func TestCoschedNearIdealWithoutLoad(t *testing.T) {
	cfg := DefaultCoschedConfig()
	cfg.Background = 0
	res := RunCosched(cfg)
	if res.Elapsed > 4*res.IdealTime {
		t.Errorf("unloaded cosched %v far from ideal %v", res.Elapsed, res.IdealTime)
	}
}

func TestMannersSuspendsUnderContention(t *testing.T) {
	cfg := DefaultMannersConfig()
	reg := RunManners(cfg)
	if reg.Suspensions == 0 {
		t.Error("Manners never suspended despite foreground contention")
	}
	cfg.Regulate = false
	unreg := RunManners(cfg)
	if unreg.Suspensions != 0 {
		t.Error("unregulated run reported suspensions")
	}
	// Regulation must improve foreground progress.
	if reg.ForegroundSteps <= unreg.ForegroundSteps {
		t.Errorf("foreground steps with Manners %d <= without %d",
			reg.ForegroundSteps, unreg.ForegroundSteps)
	}
	// And the background still gets work done outside the window.
	if reg.BackgroundSteps == 0 {
		t.Error("background starved entirely")
	}
}

func TestMannersQuietSystemRunsFreely(t *testing.T) {
	cfg := DefaultMannersConfig()
	cfg.ForegroundStart = cfg.Duration // foreground never arrives
	cfg.ForegroundEnd = cfg.Duration
	res := RunManners(cfg)
	if res.Suspensions != 0 {
		t.Errorf("suspended %d times on an idle system", res.Suspensions)
	}
	want := int64(cfg.Duration / (10 * sim.Millisecond))
	if res.BackgroundSteps < want*8/10 {
		t.Errorf("background steps %d, want close to %d", res.BackgroundSteps, want)
	}
}

func TestMannersSignTestDetectsDegradation(t *testing.T) {
	cfg := DefaultMannersConfig()
	cfg.Regulate = false // keep contending so the contrast is visible
	cfg.ForegroundEnd = cfg.Duration
	res := RunManners(cfg)
	if res.SignTestP > 0.05 {
		t.Errorf("sign test p = %v, want clear degradation", res.SignTestP)
	}
}
