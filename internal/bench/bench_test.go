package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(ids []string, wall []float64) Report {
	r := Report{Scale: "quick", Parallel: 8}
	for i, id := range ids {
		r.Experiments = append(r.Experiments, Entry{ID: id, WallMS: wall[i], VirtualMS: 100})
		r.TotalWallMS += wall[i]
	}
	return r
}

func TestCompareIdenticalPasses(t *testing.T) {
	r := report([]string{"a", "b", "c"}, []float64{100, 200, 300})
	res := Compare(r, r, Thresholds{})
	if res.Regressed || res.SuiteSlower {
		t.Errorf("identical reports regressed: %+v", res)
	}
	if res.Plus != 0 || res.Minus != 0 || res.P != 1 {
		t.Errorf("sign test on identical reports = %d/%d p=%v", res.Plus, res.Minus, res.P)
	}
}

func TestCompareFlagsBigSingleRegression(t *testing.T) {
	old := report([]string{"a", "b"}, []float64{100, 1000})
	injected := report([]string{"a", "b"}, []float64{100, 2500}) // 2.5x, +1500ms
	res := Compare(old, injected, Thresholds{})
	if !res.Regressed {
		t.Fatal("2.5x slowdown not flagged")
	}
	var d Delta
	for _, x := range res.Deltas {
		if x.ID == "b" {
			d = x
		}
	}
	if !d.Regressed || d.Ratio != 2.5 {
		t.Errorf("delta b = %+v", d)
	}
}

func TestCompareIgnoresSmallAbsoluteGrowth(t *testing.T) {
	// 10x ratio but only 9 ms absolute: below MinDeltaMS, must pass.
	old := report([]string{"tiny"}, []float64{1})
	now := report([]string{"tiny"}, []float64{10})
	if res := Compare(old, now, Thresholds{}); res.Regressed {
		t.Errorf("sub-threshold absolute growth flagged: %+v", res.Deltas)
	}
}

func TestWriteReportsNoiseFloor(t *testing.T) {
	// Every delta carries the applied noise floor, and the report prints
	// it so a reader can tell why sub-floor growth was ignored.
	old := report([]string{"a"}, []float64{100})
	res := Compare(old, old, Thresholds{MinDeltaMS: 250})
	if got := res.Deltas[0].FloorMS; got != 250 {
		t.Errorf("FloorMS = %v, want 250", got)
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "floor_ms") || !strings.Contains(buf.String(), "250.0") {
		t.Errorf("report missing noise-floor column:\n%s", buf.String())
	}
	// The default floor shows up without explicit thresholds too.
	buf.Reset()
	if err := Compare(old, old, Thresholds{}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100.0") {
		t.Errorf("report missing default noise floor:\n%s", buf.String())
	}
}

func TestCompareSuiteWideDrift(t *testing.T) {
	// Every experiment 1.3x slower: under the 1.5 per-id ratio, but the
	// sign test sees 8/8 slower (p ~ 0.008) with a large total delta.
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	oldW := []float64{100, 200, 300, 400, 500, 600, 700, 800}
	newW := make([]float64, len(oldW))
	for i, w := range oldW {
		newW[i] = w * 1.3
	}
	res := Compare(report(ids, oldW), report(ids, newW), Thresholds{})
	if !res.SuiteSlower || !res.Regressed {
		t.Errorf("suite-wide 1.3x drift not flagged: plus=%d minus=%d p=%v",
			res.Plus, res.Minus, res.P)
	}
	for _, d := range res.Deltas {
		if d.Regressed {
			t.Errorf("per-experiment threshold tripped unexpectedly: %+v", d)
		}
	}
}

func TestComparePerIDThresholdOverride(t *testing.T) {
	old := report([]string{"a"}, []float64{1000})
	now := report([]string{"a"}, []float64{1400}) // 1.4x
	if res := Compare(old, now, Thresholds{}); res.Regressed {
		t.Error("1.4x flagged under the default 1.5 ratio")
	}
	th := Thresholds{PerID: map[string]float64{"a": 1.2}}
	if res := Compare(old, now, th); !res.Regressed {
		t.Error("1.4x not flagged under a per-id 1.2 ratio")
	}
}

func TestCompareVirtualTimeChangeWarns(t *testing.T) {
	old := report([]string{"a"}, []float64{100})
	now := report([]string{"a"}, []float64{100})
	now.Experiments[0].VirtualMS = 999
	res := Compare(old, now, Thresholds{})
	if res.Regressed {
		t.Error("virtual-time change must warn, not fail")
	}
	if !res.Deltas[0].VirtualChanged {
		t.Error("virtual-time change not detected")
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "virtual time changed") {
		t.Errorf("report missing virtual-time warning:\n%s", buf.String())
	}
}

func TestCompareMissingExperimentsWarn(t *testing.T) {
	old := report([]string{"a", "gone"}, []float64{100, 100})
	now := report([]string{"a", "new"}, []float64{100, 100})
	res := Compare(old, now, Thresholds{})
	if res.Regressed {
		t.Error("membership change must warn, not fail")
	}
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "gone" {
		t.Errorf("MissingInNew = %v", res.MissingInNew)
	}
	if len(res.MissingInOld) != 1 || res.MissingInOld[0] != "new" {
		t.Errorf("MissingInOld = %v", res.MissingInOld)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte(`{
  "scale": "quick", "parallel": 4, "gomaxprocs": 2,
  "experiments": [{"id": "a", "wall_ms": 12.5, "virtual_ms": 7.25}],
  "total_wall_ms": 12.5
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scale != "quick" || len(r.Experiments) != 1 || r.Experiments[0].WallMS != 12.5 {
		t.Errorf("loaded %+v", r)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load on a missing file succeeded")
	}
}

func TestWriteVerdicts(t *testing.T) {
	r := report([]string{"a"}, []float64{100})
	var buf bytes.Buffer
	if err := Compare(r, r, Thresholds{}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Errorf("pass verdict missing:\n%s", buf.String())
	}
	slow := report([]string{"a"}, []float64{400})
	buf.Reset()
	if err := Compare(r, slow, Thresholds{}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("fail verdict missing:\n%s", buf.String())
	}
}
