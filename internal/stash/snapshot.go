package stash

import (
	"fmt"

	"graybox/internal/ring"
)

// This file is the stash's snapshot story. A platform snapshot
// (simos.Snapshot/Fork) must be taken on a pristine machine — no I/O,
// no processes — so an *aged* stash cannot be built before the snapshot
// and carried across. Instead the stash models what its real-world
// counterpart (a DragonStash-style persistent cache) actually does:
// the block index survives as data, and a restart reloads it instantly.
// Manifest exports that index deterministically; Preload installs one
// into a fresh stash with zero virtual-time cost. A sweep therefore
// puts the expensive fixtures (source corpus, pre-sized backing file)
// in the snapshot base, forks per trial, and Preloads the same aged
// manifest — every trial starts from an identical aged stash without
// re-simulating the aging I/O.

// Manifest returns the resident blocks in recency order, most recent
// first. The order comes from the intrusive LRU ring, never from map
// iteration, so it is deterministic and Preload(Manifest()) reproduces
// the recency state exactly.
func (st *Stash) Manifest() []BlockID {
	out := make([]BlockID, 0, st.lru.Len())
	for h := st.lru.Front(); h != ring.None; h = st.lru.Next(h) {
		out = append(out, *st.lru.At(h))
	}
	return out
}

// Preload installs ids (most recent first) into an empty stash as
// clean resident blocks in sequential backing slots, charging no
// virtual time — the persistent-index reload of a stash restart. The
// backing file must already span the preloaded slots (size it with
// CreateSized when building the platform); the stash must be empty and
// the manifest must fit the quota.
func (st *Stash) Preload(ids []BlockID) error {
	if len(st.blocks) != 0 {
		return fmt.Errorf("stash: Preload into non-empty stash (%d blocks)", len(st.blocks))
	}
	if len(ids) > st.cfg.QuotaBlocks {
		return fmt.Errorf("stash: manifest of %d blocks exceeds quota %d", len(ids), st.cfg.QuotaBlocks)
	}
	if need := int64(len(ids)) * st.ps; st.backing.Size() < need {
		return fmt.Errorf("stash: backing %s holds %d bytes, manifest needs %d (pre-size it with CreateSized)",
			st.cfg.Backing, st.backing.Size(), need)
	}
	for _, id := range ids {
		if _, ok := st.blocks[id]; ok {
			return fmt.Errorf("stash: duplicate block %+v in manifest", id)
		}
		st.blocks[id] = meta{slot: st.allocSlot(), lruH: st.lru.PushBack(id)}
	}
	st.telOccupancy.Set(int64(len(st.blocks)))
	return nil
}
