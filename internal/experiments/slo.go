package experiments

import (
	"fmt"

	"graybox/internal/core/mac"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/telemetry"
	"graybox/internal/workload"
)

// SloConfig parameterizes the offered-load ramp: an open-loop web
// serving workload is pushed to saturation under memory pressure, once
// with a naive static admission cap and once with a MAC-driven gray-box
// cap, and judged purely by externally observable service quality —
// tail-latency quantiles against a virtual-time SLO.
type SloConfig struct {
	Scale Scale
	// Loads is the offered arrival rate ramp in requests/second.
	Loads []float64
	// Duration is the virtual serving window per trial.
	Duration sim.Time
	// SLO is the per-request latency objective.
	SLO sim.Time
	// CPUList sweeps simulated-processor counts (empty selects the
	// -cpus flag value, defaulting to the uncontended model only). For
	// entries >= 1 every request charges render CPU per KB served, so
	// saturation is a CPU cliff as well as a memory cliff and run-queue
	// wait surfaces in the critical-path queue stage.
	CPUList []int
}

func (c SloConfig) withDefaults() SloConfig {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if len(c.Loads) == 0 {
		c.Loads = []float64{30, 100, 300, 1000}
	}
	if c.Duration == 0 {
		c.Duration = 2 * sim.Second
	}
	if c.SLO == 0 {
		c.SLO = 100 * sim.Millisecond
	}
	if len(c.CPUList) == 0 {
		c.CPUList = CPUList()
	}
	return c
}

// sloRenderCPUPerKB is the per-KB render charge on contended machines
// (cpus >= 1): ~2.6ms of CPU per 128KB file served.
const sloRenderCPUPerKB = 20 * sim.Microsecond

// sloNaiveCap is the static in-flight cap the naive policy admits up
// to (and the ceiling the gray-box policy may never exceed).
const sloNaiveCap = 64

// sloPolicies is the fixed arm order within each load level.
var sloPolicies = []string{"naive", "graybox"}

// macAdmission is the gray-box admission controller: a mix process
// that periodically probes memory headroom with the MAC's GBAlloc —
// the paper's atomic probe-and-identify, no kernel counters — and
// drives the web server's in-flight cap TCP-style (Table 1's first
// row): additive increase while the whole probe window fits at memory
// speed, multiplicative back-off the moment it does not. The window is
// deliberately small — a few per-request buffers, clamped to single-
// digit megabytes, enough to answer "can the machine hold more
// requests like these?" — so the controller samples pressure without
// recreating it at any machine size, and starting from a conservative
// cap means an arrival burst cannot wedge the machine before the
// first probe lands.
type macAdmission struct {
	bufBytes int64    // per-request memory footprint estimate
	interval sim.Time // probe period
	limit    int      // current cap, read by WebServer.Limit
}

func (a *macAdmission) Name() string                { return "macctl" }
func (a *macAdmission) Prepare(*simos.System) error { return nil }
func (a *macAdmission) Run(ctx *workload.Ctx) {
	os := ctx.OS()
	probeMax := 4 * a.bufBytes
	if probeMax < simos.MB {
		probeMax = simos.MB
	} else if probeMax > 8*simos.MB {
		probeMax = 8 * simos.MB
	}
	ctl := mac.New(os, mac.Config{
		InitialIncrement: simos.MB,
		MaxIncrement:     probeMax,
	})
	for !ctx.Stopped() {
		clean := false
		if al, ok := ctl.GBAlloc(simos.MB, probeMax, simos.MB); ok {
			// Clean only when the whole window fit at memory speed; a
			// partial fill means the page daemon is already working.
			clean = al.Bytes >= probeMax
			ctl.GBFree(al)
		}
		if clean {
			if a.limit < sloNaiveCap {
				a.limit++
			}
		} else if a.limit > 1 {
			a.limit /= 2
		}
		os.Sleep(a.interval)
	}
}

// sloTrial is one trial's externally observed outcome.
type sloTrial struct {
	served, dropped, errors int64
	lat                     *telemetry.Sketch
	violations, total       int64
	firstViol               int64 // virtual ns, -1 when never violated
	queue, cache, disk, app int64 // critical-path stage sums, virtual ns
}

// Slo ramps offered load to saturation and compares MAC gray-box
// admission against a naive static cap. Each trial serves an open-loop
// Zipf-popular corpus while a memory hog squeezes the frame pool and
// every admitted request drags a private processing buffer through the
// VM; the only scoreboard is the
// request-level tracing subsystem: p50/p99/p999 arrival→completion
// latency, SLO violations and time-to-first-violation, and the
// critical-path split of where served requests' time went. The gray-box
// arm sheds load early when GBAlloc sees memory vanish; the naive arm
// admits until requests swap — the paper's thesis that control must be
// judged by service quality, measured end to end.
func Slo(cfg SloConfig) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	sloNS := int64(cfg.SLO)
	sweep := cpuSweepActive(cfg.CPUList)
	cols := []string{"load", "policy", "served", "dropped", "errors",
		"p50-ms", "p99-ms", "p999-ms", "viol", "first-ms", "path-q/c/d/a%"}
	if sweep {
		// The cpus column appears only when a non-default list is set,
		// so default sweep output stays byte-identical.
		cols = append([]string{"cpus"}, cols...)
	}
	t := &Table{
		ID:      "slo",
		Title:   "SLO violations under load: gray-box vs naive admission",
		Columns: cols,
	}

	// Trials flatten as (cpus, load, policy, trial); every trial forks
	// its cpus value's pure base — fixtures are per-trial (mix.Prepare),
	// so the base is just the machine.
	nArms := len(cfg.Loads) * len(sloPolicies)
	n := nArms * sc.Trials
	for ci, cpus := range cfg.CPUList {
		cpus := cpus
		base := ci * n
		trials := RunTrialsWithSnapshot(n, func(seed uint64) *simos.System {
			return buildSystemCPUs(simos.Linux22, sc, seed, cpus)
		}, func(ii int) uint64 {
			return 13000 + 157*uint64(base+ii)
		}, func(ii int, s *simos.System) sloTrial {
			arm := ii / sc.Trials
			load := cfg.Loads[arm/len(sloPolicies)]
			policy := sloPolicies[arm%len(sloPolicies)]
			seed := 13000 + 157*uint64(base+ii)

			// The tracing subsystem is the experiment's measurement
			// instrument, so it is always on here (harness -trace/-metrics
			// only add export; virtual time is unaffected either way).
			s.EnableTelemetry()
			usable := usableMB(s)

			// Saturation here is a memory cliff, not a disk cliff: the Zipf
			// corpus is an eighth of usable memory (fixed 128KB files — the
			// per-request disk demand must not grow with the machine, only
			// the corpus breadth — and the hot head warms organically within
			// the first few hundred requests), but every admitted request
			// drags a ~0.8%-of-usable processing buffer through the VM while
			// the hog holds 35% of the frames. At the naive cap, 64 in-flight
			// buffers plus the hog overcommit the machine: the page daemon
			// reclaims the file cache, misses return, buffers swap, and
			// service times inflate — which holds more requests in flight,
			// the thrash spiral of Figure 7 transplanted to serving.
			// Admission decides who thrashes.
			bufBytes := maxI64(usable*simos.MB/128, 64*1024)
			var renderCPU sim.Time
			if cpus > 0 {
				renderCPU = sloRenderCPUPerKB
			}
			web := &workload.WebServer{
				Files:       int(maxI64(usable/8*1024/128, 16)), // corpus = usable/8
				FileKB:      128,
				RatePerSec:  load,
				MaxInFlight: sloNaiveCap,
				Theta:       0.9,
				BufKB:       bufBytes / 1024,
				CPUPerKB:    renderCPU,
				SLONanos:    sloNS,
			}
			mix := workload.NewMix(seed, 1).Add(web, &workload.MemHog{
				Fraction: 0.35, Dwell: 50 * sim.Millisecond,
			})
			if policy == "graybox" {
				adm := &macAdmission{
					bufBytes: bufBytes,
					interval: 50 * sim.Millisecond,
					limit:    4, // slow-start from a burst-safe cap
				}
				web.Limit = func() int { return adm.limit }
				mix.Add(adm)
			}
			mustNoErr(mix.RunFor(s, cfg.Duration))

			res := sloTrial{
				served: web.Served(), dropped: web.Dropped(), errors: web.Errors(),
				lat: web.Latency(), firstViol: -1,
			}
			if slo := web.SLO(); slo != nil {
				res.violations = slo.Violations()
				res.total = slo.Total()
				res.firstViol = slo.FirstViolation()
			}
			res.queue, res.cache, res.disk, res.app = web.StageTotals()
			return res
		})

		// Aggregate each arm across its trials: counts sum, sketches merge
		// (the cross-trial path), first violation takes the earliest.
		type armResult struct {
			p99 int64
		}
		arms := make([]armResult, nArms)
		for arm := 0; arm < nArms; arm++ {
			load := cfg.Loads[arm/len(sloPolicies)]
			policy := sloPolicies[arm%len(sloPolicies)]
			agg := sloTrial{firstViol: -1}
			lat := telemetry.NewSketch()
			for ti := 0; ti < sc.Trials; ti++ {
				tr := trials[arm*sc.Trials+ti]
				agg.served += tr.served
				agg.dropped += tr.dropped
				agg.errors += tr.errors
				agg.violations += tr.violations
				agg.total += tr.total
				agg.queue += tr.queue
				agg.cache += tr.cache
				agg.disk += tr.disk
				agg.app += tr.app
				lat.Merge(tr.lat)
				if tr.firstViol >= 0 && (agg.firstViol < 0 || tr.firstViol < agg.firstViol) {
					agg.firstViol = tr.firstViol
				}
			}
			arms[arm] = armResult{p99: lat.Quantile(0.99)}

			violRate := "-"
			if agg.total > 0 {
				violRate = fmt.Sprintf("%.3f", float64(agg.violations)/float64(agg.total))
			}
			first := "-"
			if agg.firstViol >= 0 {
				first = fmt.Sprintf("%.0f", float64(agg.firstViol)/1e6)
			}
			path := "-"
			if sum := agg.queue + agg.cache + agg.disk + agg.app; sum > 0 {
				pct := func(v int64) int64 { return (v*100 + sum/2) / sum }
				path = fmt.Sprintf("%d/%d/%d/%d",
					pct(agg.queue), pct(agg.cache), pct(agg.disk), pct(agg.app))
			}
			row := []string{
				fmt.Sprintf("%.0f", load), policy,
				fmt.Sprintf("%d", agg.served), fmt.Sprintf("%d", agg.dropped),
				fmt.Sprintf("%d", agg.errors),
				fmt.Sprintf("%.1f", float64(lat.Quantile(0.50))/1e6),
				fmt.Sprintf("%.1f", float64(lat.Quantile(0.99))/1e6),
				fmt.Sprintf("%.1f", float64(lat.Quantile(0.999))/1e6),
				violRate, first, path,
			}
			if sweep {
				row = append([]string{fmt.Sprintf("%d", cpus)}, row...)
			}
			t.AddRow(row...)
		}

		// The headline: the largest offered load whose p99 still meets the
		// SLO, per policy (and per cpus value when sweeping).
		for pi, policy := range sloPolicies {
			best := "-"
			for li, load := range cfg.Loads {
				if arms[li*len(sloPolicies)+pi].p99 <= sloNS {
					best = fmt.Sprintf("%.0f req/s", load)
				}
			}
			arm := policy
			if sweep {
				arm = fmt.Sprintf("%s, cpus=%d", policy, cpus)
			}
			t.AddNote("max load meeting the %dms SLO at p99 (%s): %s",
				int64(cfg.SLO)/1e6, arm, best)
		}
	}
	t.AddNote("open-loop web serving over %d trials/arm: Zipf(0.9) corpus = usable/8, "+
		"per-request app buffer ~1/128 usable, hog holds 35%% of frames; naive = static cap %d, "+
		"graybox = MAC GBAlloc-driven cap (AIMD on a small GBAlloc probe window, 50ms period)",
		sc.Trials, sloNaiveCap)
	t.AddNote("viol = fraction of served requests over the SLO; first-ms = virtual time of first violation; " +
		"path-q/c/d/a%% splits served-request time into queueing / cache service / disk service / app processing")
	if sweep {
		t.AddNote("cpus = simulated processors (0 = uncontended infinite-core model); contended machines charge "+
			"%v/KB render CPU per request, and CPU run-queue wait counts toward the queue stage", sloRenderCPUPerKB)
	}
	return t
}
