package apps

import (
	"fmt"
	"reflect"
	"testing"

	"graybox/internal/core/fccd"
	"graybox/internal/core/mac"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// newSys builds a 64 MB test machine (56 MB usable).
func newSys() *simos.System {
	return simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1,
	})
}

func testDetector(os *simos.OS) *fccd.Detector {
	return fccd.New(os, fccd.Config{AccessUnit: 2 << 20, PredictionUnit: 1 << 20, Seed: 7})
}

// mkFiles creates count files of size bytes under dir (instant fixture).
func mkFiles(t testing.TB, s *simos.System, dir string, count int, size int64) []string {
	t.Helper()
	if err := s.Run("fixture", func(os *simos.OS) {
		if err := os.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, count)
	for i := range paths {
		p := fmt.Sprintf("%s/f%03d", dir, i)
		if _, err := s.FS(0).CreateSized(p, size); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return paths
}

func TestGrepScansEverything(t *testing.T) {
	s := newSys()
	paths := mkFiles(t, s, "d", 4, 1<<20)
	err := s.Run("grep", func(os *simos.OS) {
		res, err := Grep(os, paths, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		if res.FilesScanned != 4 || res.BytesScanned != 4<<20 {
			t.Errorf("res = %+v", res)
		}
		if res.Elapsed <= 0 {
			t.Error("no time elapsed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGBGrepBeatsGrepOnWarmCache(t *testing.T) {
	s := newSys()
	// 12 x 4 MB = 48 MB of files; ~55 MB usable => after one full pass,
	// most files remain cached but a traditional re-scan in the same
	// order runs in LRU worst-case when data slightly exceeds cache.
	paths := mkFiles(t, s, "d", 16, 4<<20) // 64 MB > 55 MB cache
	var tPlain, tGB sim.Time
	err := s.Run("grep", func(os *simos.OS) {
		costs := DefaultCosts()
		// Warm: one full scan.
		if _, err := Grep(os, paths, costs); err != nil {
			t.Fatal(err)
		}
		r1, err := Grep(os, paths, costs)
		if err != nil {
			t.Fatal(err)
		}
		tPlain = r1.Elapsed
		r2, err := GBGrep(os, testDetector(os), paths, costs)
		if err != nil {
			t.Fatal(err)
		}
		tGB = r2.Elapsed
	})
	if err != nil {
		t.Fatal(err)
	}
	if tGB*2 > tPlain {
		t.Errorf("gb-grep %v not much faster than grep %v", tGB, tPlain)
	}
}

func TestGrepWithGBPCloseToGBGrep(t *testing.T) {
	s := newSys()
	paths := mkFiles(t, s, "d", 10, 4<<20)
	var tGB, tPipe sim.Time
	err := s.Run("grep", func(os *simos.OS) {
		costs := DefaultCosts()
		Grep(os, paths, costs) // warm
		r1, err := GBGrep(os, testDetector(os), paths, costs)
		if err != nil {
			t.Fatal(err)
		}
		tGB = r1.Elapsed
		r2, err := GrepWithGBP(os, testDetector(os), paths, costs)
		if err != nil {
			t.Fatal(err)
		}
		tPipe = r2.Elapsed
	})
	if err != nil {
		t.Fatal(err)
	}
	if tPipe <= tGB {
		t.Errorf("gbp pipe %v should cost slightly more than gb-grep %v", tPipe, tGB)
	}
	if tPipe > tGB*3/2 {
		t.Errorf("gbp pipe %v should be close to gb-grep %v", tPipe, tGB)
	}
}

func TestSearchStopsAtMatch(t *testing.T) {
	s := newSys()
	paths := mkFiles(t, s, "d", 8, 1<<20)
	err := s.Run("search", func(os *simos.OS) {
		res, err := Search(os, paths, paths[2], DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		if res.FilesScanned != 3 || res.FoundIn != paths[2] {
			t.Errorf("res = %+v", res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGBSearchFindsCachedMatchFast(t *testing.T) {
	s := newSys()
	paths := mkFiles(t, s, "d", 10, 2<<20)
	match := paths[len(paths)-1] // match in the LAST file...
	var tPlain, tGB sim.Time
	err := s.Run("search", func(os *simos.OS) {
		costs := DefaultCosts()
		s.DropCaches()
		// ...which is cached.
		fd, _ := os.Open(match)
		fd.Read(0, fd.Size())

		r2, err := GBSearch(os, testDetector(os), paths, match, costs)
		if err != nil {
			t.Fatal(err)
		}
		tGB = r2.Elapsed
		if r2.FilesScanned != 1 {
			t.Errorf("gb-search scanned %d files, want 1", r2.FilesScanned)
		}
		r1, err := Search(os, paths, match, costs)
		if err != nil {
			t.Fatal(err)
		}
		tPlain = r1.Elapsed
	})
	if err != nil {
		t.Fatal(err)
	}
	if tGB*5 > tPlain {
		t.Errorf("gb-search %v not much faster than search %v", tGB, tPlain)
	}
}

func TestScanAndGBScan(t *testing.T) {
	s := newSys()
	if _, err := s.FS(0).CreateSized("big", 8<<20); err != nil {
		t.Fatal(err)
	}
	err := s.Run("scan", func(os *simos.OS) {
		costs := DefaultCosts()
		r1, err := Scan(os, "big", costs)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Bytes != 8<<20 {
			t.Errorf("scanned %d bytes", r1.Bytes)
		}
		r2, err := GBScan(os, testDetector(os), "big", costs)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Bytes != 8<<20 {
			t.Errorf("gb-scan covered %d bytes, want all", r2.Bytes)
		}
		// Warm gb-scan beats a fresh cold scan.
		if r2.Elapsed*3 > r1.Elapsed {
			t.Errorf("warm gb-scan %v vs cold scan %v", r2.Elapsed, r1.Elapsed)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFastSortStaticFormsRuns(t *testing.T) {
	s := newSys()
	if _, err := s.FS(0).CreateSized("input", 16<<20); err != nil {
		t.Fatal(err)
	}
	err := s.Run("sort", func(os *simos.OS) {
		os.Mkdir("out")
		res, err := FastSort(os, SortSpec{Input: "input", OutputDir: "out", RecordSize: 100},
			SortOptions{Variant: SortStatic, PassBytes: 4 << 20}, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		if res.Passes != 4 {
			t.Errorf("passes = %d, want 4", res.Passes)
		}
		if len(res.Runs) != 4 {
			t.Errorf("runs = %v", res.Runs)
		}
		for _, run := range res.Runs {
			st, err := os.Stat(run)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size != 4<<20 {
				t.Errorf("run %s size %d", run, st.Size)
			}
		}
		if res.Read <= 0 || res.Sort <= 0 || res.Write <= 0 {
			t.Errorf("phases = %+v", res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFastSortOversizedPassPages(t *testing.T) {
	// A pass size near physical memory forces paging and a dramatic
	// slowdown — the cliff of Figure 7.
	s := newSys()
	const inputMB = 64
	if _, err := s.FS(0).CreateSized("input", inputMB<<20); err != nil {
		t.Fatal(err)
	}
	run := func(passMB int64) sim.Time {
		var elapsed sim.Time
		err := s.Run(fmt.Sprintf("sort%d", passMB), func(os *simos.OS) {
			os.Mkdir(fmt.Sprintf("out%d", passMB))
			s.DropCaches()
			res, err := FastSort(os, SortSpec{Input: "input", OutputDir: fmt.Sprintf("out%d", passMB), RecordSize: 100},
				SortOptions{Variant: SortStatic, PassBytes: passMB << 20}, DefaultCosts())
			if err != nil {
				t.Fatal(err)
			}
			elapsed = res.Total
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	small := run(8)      // 8 passes, each fits easily
	huge := run(inputMB) // one 64 MB pass in 56 MB of memory: thrash
	if huge < 2*small {
		t.Errorf("oversized pass (%v) not dramatically slower than small passes (%v)", huge, small)
	}
}

func TestFastSortMACAdaptsAndAvoidsPaging(t *testing.T) {
	s := newSys()
	if _, err := s.FS(0).CreateSized("input", 24<<20); err != nil {
		t.Fatal(err)
	}
	err := s.Run("sort", func(os *simos.OS) {
		os.Mkdir("out")
		ctl := mac.New(os, mac.Config{InitialIncrement: 1 << 20, MaxIncrement: 8 << 20})
		res, err := FastSort(os, SortSpec{Input: "input", OutputDir: "out", RecordSize: 100},
			SortOptions{Variant: SortMAC, MAC: ctl, MACMin: 4 << 20, MACMax: 24 << 20}, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		if res.Passes == 0 {
			t.Fatal("no passes")
		}
		if res.AvgPassBytes < 4<<20 {
			t.Errorf("avg pass %d below MACMin", res.AvgPassBytes)
		}
		if res.Overhead <= 0 {
			t.Error("MAC overhead not accounted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.VM.Stats().SwapIns > 16 {
		t.Errorf("gb-fastsort paged: %d swap-ins", s.VM.Stats().SwapIns)
	}
}

func TestFastSortGBPPipeChargesCopies(t *testing.T) {
	s := newSys()
	if _, err := s.FS(0).CreateSized("input", 8<<20); err != nil {
		t.Fatal(err)
	}
	var tPlain, tPipe sim.Time
	err := s.Run("sort", func(os *simos.OS) {
		os.Mkdir("o1")
		os.Mkdir("o2")
		costs := DefaultCosts()
		r1, err := FastSort(os, SortSpec{Input: "input", OutputDir: "o1", RecordSize: 100},
			SortOptions{Variant: SortStatic, PassBytes: 4 << 20}, costs)
		if err != nil {
			t.Fatal(err)
		}
		tPlain = r1.Total
		s.DropCaches()
		r2, err := FastSort(os, SortSpec{Input: "input", OutputDir: "o2", RecordSize: 100},
			SortOptions{Variant: SortGBPPipe, PassBytes: 4 << 20, Detector: testDetector(os)}, costs)
		if err != nil {
			t.Fatal(err)
		}
		tPipe = r2.Total
		if r2.Overhead <= 0 {
			t.Error("pipe overhead not accounted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tPlain
	_ = tPipe
}

func TestMergeProducesOutput(t *testing.T) {
	s := newSys()
	if _, err := s.FS(0).CreateSized("input", 8<<20); err != nil {
		t.Fatal(err)
	}
	err := s.Run("sort", func(os *simos.OS) {
		os.Mkdir("out")
		res, err := FastSort(os, SortSpec{Input: "input", OutputDir: "out", RecordSize: 100},
			SortOptions{Variant: SortStatic, PassBytes: 4 << 20}, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		d, err := Merge(os, res.Runs, "out/final", 100, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Error("merge took no time")
		}
		st, err := os.Stat("out/final")
		if err != nil {
			t.Fatal(err)
		}
		if st.Size != 8<<20 {
			t.Errorf("merged size = %d", st.Size)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGBPModes(t *testing.T) {
	s := newSys()
	paths := mkFiles(t, s, "d", 6, 1<<20)
	err := s.Run("gbp", func(os *simos.OS) {
		det := testDetector(os)
		for _, mode := range []GBPMode{GBPMem, GBPFile, GBPCompose} {
			got, err := GBP(os, mode, paths, det)
			if err != nil {
				t.Fatalf("mode %d: %v", mode, err)
			}
			if len(got) != len(paths) {
				t.Fatalf("mode %d: lost files: %v", mode, got)
			}
			sorted := append([]string(nil), got...)
			sortStrings(sorted)
			want := append([]string(nil), paths...)
			sortStrings(want)
			if !reflect.DeepEqual(sorted, want) {
				t.Fatalf("mode %d returned different set", mode)
			}
		}
		if _, err := GBP(os, GBPMode(99), paths, det); err == nil {
			t.Error("bogus mode accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func TestCursor(t *testing.T) {
	c := newPlanCursor([]fccd.Segment{{Off: 100, Len: 50}, {Off: 0, Len: 30}})
	var got [][2]int64
	for {
		off, l, ok := c.next(40)
		if !ok {
			break
		}
		got = append(got, [2]int64{off, l})
	}
	want := [][2]int64{{100, 40}, {140, 10}, {0, 30}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cursor ranges = %v, want %v", got, want)
	}
}
