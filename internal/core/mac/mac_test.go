package mac

import (
	"testing"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// newSys builds a small Linux machine: 64 MB physical, 8 MB kernel ->
// 56 MB available to applications and cache.
func newSys() *simos.System {
	return simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1,
	})
}

// testConfig scales MAC increments down to the small test machine.
func testConfig() Config {
	return Config{InitialIncrement: 1 * simos.MB, MaxIncrement: 8 * simos.MB}
}

func TestGBAllocFindsFreeMemory(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		c := New(os, testConfig())
		a, ok := c.GBAlloc(4*simos.MB, 64*simos.MB, simos.MB)
		if !ok {
			t.Fatal("GBAlloc failed on an idle machine")
		}
		defer c.GBFree(a)
		gotMB := a.Bytes / simos.MB
		// ~56 MB available minus the cache floor and slack: expect most
		// of memory.
		if gotMB < 40 || gotMB > 56 {
			t.Errorf("allocated %d MB on a 56 MB-available machine", gotMB)
		}
		// The memory is genuinely resident.
		resident := 0
		for _, r := range a.Regions() {
			resident += os.ResidentPages(r)
		}
		if resident*os.PageSize() < int(a.Bytes) {
			t.Errorf("resident %d pages < allocation %d bytes", resident, a.Bytes)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGBAllocRespectsMinMaxMultiple(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		c := New(os, testConfig())
		a, ok := c.GBAlloc(2*simos.MB, 10*simos.MB, 3*simos.MB)
		if !ok {
			t.Fatal("alloc failed")
		}
		if a.Bytes > 10*simos.MB {
			t.Errorf("allocated %d > max", a.Bytes)
		}
		if a.Bytes%(3*simos.MB) != 0 {
			t.Errorf("allocated %d not a multiple of 3 MB", a.Bytes)
		}
		if a.Bytes < 2*simos.MB {
			t.Errorf("allocated %d < min", a.Bytes)
		}
		c.GBFree(a)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGBAllocFailsWhenMinUnavailable(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		// Occupy most of memory with an actively-touched competitor
		// region in this same process.
		hog := os.Malloc(48 * simos.MB)
		os.TouchRange(hog, 0, hog.Pages(), true)
		c := New(os, testConfig())
		// Keep the hog's working set hot while MAC probes by touching it
		// again just before: MAC should not find 40 MB.
		os.TouchRange(hog, 0, hog.Pages(), true)
		a, ok := c.GBAlloc(40*simos.MB, 56*simos.MB, simos.MB)
		if ok {
			t.Errorf("GBAlloc returned %d MB with 48 MB hog active", a.Bytes/simos.MB)
			c.GBFree(a)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGBAllocAgainstCompetitorReturnsRemainder(t *testing.T) {
	// The paper's validation: with a competitor holding x MB, MAC
	// reliably returns about (available - x) MB.
	for _, hogMB := range []int64{8, 16, 24, 32} {
		s := newSys()
		var gotMB int64
		// Competitor: holds hogMB and touches it continuously.
		stop := false
		s.Spawn("hog", 0, func(os *simos.OS) {
			m := os.Malloc(hogMB * simos.MB)
			for !stop {
				os.TouchRange(m, 0, m.Pages(), true)
				os.Sleep(time50ms)
			}
		})
		p := s.Spawn("mac", 10*sim.Millisecond, func(os *simos.OS) {
			c := New(os, testConfig())
			a, ok := c.GBAlloc(simos.MB, 56*simos.MB, simos.MB)
			if ok {
				gotMB = a.Bytes / simos.MB
				c.GBFree(a)
			}
			stop = true
		})
		s.Engine.WaitAll(p)
		if p.Err() != nil {
			t.Fatal(p.Err())
		}
		expect := 55 - hogMB // 56 available minus hog minus cache floor
		if gotMB < expect-8 || gotMB > expect+4 {
			t.Errorf("hog %d MB: MAC got %d MB, expected about %d",
				hogMB, gotMB, expect)
		}
	}
}

const time50ms = 50 * sim.Millisecond

func TestGBFreeMakesMemoryReusable(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		c := New(os, testConfig())
		a, ok := c.GBAlloc(4*simos.MB, 56*simos.MB, simos.MB)
		if !ok {
			t.Fatal("first alloc failed")
		}
		first := a.Bytes
		c.GBFree(a)
		b, ok := c.GBAlloc(4*simos.MB, 56*simos.MB, simos.MB)
		if !ok {
			t.Fatal("second alloc failed")
		}
		defer c.GBFree(b)
		if b.Bytes < first*9/10 {
			t.Errorf("after free, only %d of %d bytes reallocatable", b.Bytes, first)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGBAllocWaitBlocksUntilMemoryFreed(t *testing.T) {
	s := newSys()
	var acquired sim.Time
	release := 2 * sim.Second
	s.Spawn("hog", 0, func(os *simos.OS) {
		m := os.Malloc(44 * simos.MB)
		// Keep hot until release time, checking the clock per batch so
		// contention cannot postpone the release indefinitely.
	hot:
		for {
			for pg := int64(0); pg < m.Pages(); pg += 256 {
				if os.Now() >= release {
					break hot
				}
				end := pg + 256
				if end > m.Pages() {
					end = m.Pages()
				}
				os.TouchRange(m, pg, end, true)
			}
			os.Sleep(100 * sim.Millisecond)
		}
		os.Free(m)
		// Linger so the engine keeps running while MAC retries.
		os.Sleep(20 * sim.Second)
	})
	p := s.Spawn("mac", 10*sim.Millisecond, func(os *simos.OS) {
		c := New(os, testConfig())
		a, ok := c.GBAllocWait(40*simos.MB, 56*simos.MB, simos.MB, 30*sim.Second)
		if !ok {
			t.Error("GBAllocWait never succeeded")
			return
		}
		acquired = os.Now()
		c.GBFree(a)
	})
	s.Engine.Run()
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if acquired < release {
		t.Errorf("acquired 40 MB at %v, before the hog released at %v", acquired, release)
	}
}

func TestGBAllocWaitTimesOut(t *testing.T) {
	s := newSys()
	stop := false
	s.Spawn("hog", 0, func(os *simos.OS) {
		m := os.Malloc(50 * simos.MB)
		for !stop {
			os.TouchRange(m, 0, m.Pages(), true)
			os.Sleep(50 * sim.Millisecond)
		}
	})
	p := s.Spawn("mac", 10*sim.Millisecond, func(os *simos.OS) {
		c := New(os, testConfig())
		if _, ok := c.GBAllocWait(48*simos.MB, 56*simos.MB, simos.MB, sim.Second); ok {
			t.Error("GBAllocWait succeeded against a permanent hog")
		}
		stop = true
	})
	s.Engine.WaitAll(p)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if New(nil, Config{}).cfg.RetryInterval == 0 {
		t.Error("default retry interval missing")
	}
}

func TestNoPagingAfterAllocation(t *testing.T) {
	// Whatever MAC returns must be usable repeatedly without paging —
	// the core promise ("both applications are then able to repeatedly
	// access their allocated memory without paging").
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		c := New(os, testConfig())
		a, ok := c.GBAlloc(4*simos.MB, 56*simos.MB, simos.MB)
		if !ok {
			t.Fatal("alloc failed")
		}
		defer c.GBFree(a)
		swapsBefore := s.VM.Stats().SwapIns
		for rep := 0; rep < 3; rep++ {
			for _, r := range a.Regions() {
				os.TouchRange(r, 0, r.Pages(), true)
			}
		}
		if got := s.VM.Stats().SwapIns - swapsBefore; got != 0 {
			t.Errorf("%d swap-ins while using MAC memory", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadArgsPanic(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		c := New(os, testConfig())
		defer func() {
			if recover() == nil {
				t.Error("expected panic for min > max")
			}
		}()
		c.GBAlloc(10, 5, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		c := New(os, testConfig())
		a, ok := c.GBAlloc(simos.MB, 16*simos.MB, simos.MB)
		if !ok {
			t.Fatal("alloc failed")
		}
		c.GBFree(a)
		st := c.Stats()
		if st.ProbeLoops == 0 || st.PagesProbed == 0 || st.ProbeTime <= 0 {
			t.Errorf("stats = %+v", st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
