package experiments

import (
	"fmt"

	"graybox/internal/apps"
	"graybox/internal/core/fldc"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Fig6Config parameterizes the aging experiment (Figure 6): 100 files in
// one directory; each epoch deletes 5 random files and creates 5 new
// ones; at the refresh epoch the directory is rewritten by the FLDC.
type Fig6Config struct {
	Scale        Scale
	NumFiles     int // default 100
	Epochs       int // default 40
	RefreshAt    int // default 31 (the paper refreshes at epoch 31)
	ChurnPerStep int // default 5
	ReportEvery  int // default 5 (plus the refresh neighborhood)
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if c.NumFiles == 0 {
		c.NumFiles = 100
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.RefreshAt == 0 {
		c.RefreshAt = 31
	}
	if c.ChurnPerStep == 0 {
		c.ChurnPerStep = 5
	}
	if c.ReportEvery == 0 {
		c.ReportEvery = 5
	}
	return c
}

// Fig6 ages a directory and tracks random-order vs i-number-order read
// time per epoch; the refresh restores i-number performance.
func Fig6(cfg Fig6Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig6",
		Title:   "Aging epochs: random vs i-number order; refresh at epoch " + fmt.Sprint(cfg.RefreshAt),
		Columns: []string{"epoch", "random", "i-number", "ino/random"},
	}
	costs := apps.DefaultCosts()
	// Unlike the other figures, fig6 is a single stateful timeline: every
	// epoch's churn mutates the one aged file system the next epoch
	// measures, so there is nothing to fan out. It still runs through the
	// trial pool (as one unit) for uniform panic propagation.
	RunUnits(func() { fig6Run(cfg, t, costs) })
	t.AddNote("paper: i-number order degrades >3x by epoch 30 but stays better than random; refresh restores fresh performance")
	return t
}

func fig6Run(cfg Fig6Config, t *Table, costs apps.Costs) {
	sc := cfg.Scale
	s := newSystem(simos.Linux22, sc, 6000)
	mustRun(s, "mk", func(os *simos.OS) { mustNoErr(os.Mkdir("d")) })
	for i := 0; i < cfg.NumFiles; i++ {
		_, err := s.FS(0).CreateSized(fmt.Sprintf("d/f%04d", i), 2*4096)
		mustNoErr(err)
	}
	rng := sim.NewRNG(99)
	nextName := cfg.NumFiles

	measure := func(epoch int) {
		var names []string
		mustRun(s, "ls", func(os *simos.OS) {
			ns, err := os.Readdir("d")
			mustNoErr(err)
			names = ns
		})
		paths := make([]string, len(names))
		for i, n := range names {
			paths[i] = "d/" + n
		}
		random := append([]string(nil), paths...)
		rng.Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })

		var tRandom, tIno sim.Time
		s.DropCaches()
		mustRun(s, "random", func(os *simos.OS) {
			r, err := apps.ScanFiles(os, random, costs)
			mustNoErr(err)
			tRandom = r.Elapsed
		})
		s.DropCaches()
		mustRun(s, "ino", func(os *simos.OS) {
			ordered, err := fldc.New(os).OrderByINumber(paths)
			mustNoErr(err)
			r, err := apps.ScanFiles(os, ordered, costs)
			mustNoErr(err)
			tIno = r.Elapsed
		})
		t.AddRow(fmt.Sprint(epoch), tRandom.String(), tIno.String(),
			fmt.Sprintf("%.2f", float64(tIno)/float64(tRandom)))
	}

	measure(0)
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if epoch == cfg.RefreshAt {
			mustRun(s, "refresh", func(os *simos.OS) {
				mustNoErr(fldc.New(os).Refresh("d", fldc.BySize))
			})
		} else {
			// Churn: delete ChurnPerStep random files, create as many
			// new ones with varied sizes (uniform sizes would let the
			// next-fit allocator repair holes perfectly).
			mustRun(s, "churn", func(os *simos.OS) {
				names, err := os.Readdir("d")
				mustNoErr(err)
				for k := 0; k < cfg.ChurnPerStep && len(names) > 0; k++ {
					idx := rng.Intn(len(names))
					mustNoErr(os.Unlink("d/" + names[idx]))
					names = append(names[:idx], names[idx+1:]...)
				}
				for k := 0; k < cfg.ChurnPerStep; k++ {
					fd, err := os.Create(fmt.Sprintf("d/f%04d", nextName))
					mustNoErr(err)
					nextName++
					mustNoErr(fd.Write(0, int64(rng.Intn(4)+1)*4096))
				}
			})
		}
		boundary := epoch == cfg.RefreshAt || epoch == cfg.RefreshAt-1 || epoch == cfg.Epochs
		if boundary || epoch%cfg.ReportEvery == 0 {
			measure(epoch)
		}
	}
}
