package sim

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.00us"},
		{1500 * Microsecond, "1.50ms"},
		{2 * Second, "2.000s"},
		{-Millisecond, "-1.00ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Errorf("Micros = %v, want 3", got)
	}
	if got := (Second).Millis(); got != 1000 {
		t.Errorf("Millis = %v, want 1000", got)
	}
}

func TestEventsFireInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Schedule(10, func() { got = append(got, 11) }) // same time: scheduling order
	e.Run()
	want := []int{1, 11, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("events fired %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(5, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
}

func TestCancelTwiceAndStale(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	ev := e.Schedule(10, func() { fired++ })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel: no-op
	e.Cancel(Event{})
	keep := e.Schedule(20, func() { fired += 10 })
	e.Run()
	// keep's slot may be recycled now; a stale handle must stay inert.
	e.Cancel(keep)
	later := e.Schedule(30, func() { fired += 100 })
	e.Cancel(keep) // must not hit the recycled slot that later may reuse
	e.Run()
	_ = later
	if fired != 110 {
		t.Errorf("fired = %d, want 110 (canceled event dead, live events intact)", fired)
	}
}

func TestCancelDoesNotAdvanceClock(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(100, func() {})
	e.Schedule(10, func() {})
	e.Cancel(ev)
	if e.Idle() {
		t.Error("Idle with one live event pending")
	}
	e.Run()
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10 (tombstone at 100 must not advance the clock)", e.Now())
	}
	if !e.Idle() {
		t.Error("not Idle after Run")
	}
}

func TestRunUntilSkipsTombstonesBeyondDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.Cancel(e.Schedule(5, func() { t.Error("canceled event fired") }))
	e.Schedule(8, func() { fired = append(fired, 8) })
	e.Cancel(e.Schedule(9, func() { t.Error("canceled event fired") }))
	e.Schedule(15, func() { fired = append(fired, 15) })
	e.RunUntil(10)
	if !reflect.DeepEqual(fired, []Time{8}) {
		t.Errorf("fired %v, want [8] (event at 15 is past the deadline)", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10", e.Now())
	}
}

func TestCancelChurnCompacts(t *testing.T) {
	e := NewEngine(1)
	// Schedule-and-cancel churn far beyond the compaction threshold; the
	// heap must not accumulate one tombstone per canceled timer.
	for i := 0; i < 10000; i++ {
		ev := e.Schedule(Time(1000+i), func() { t.Error("canceled event fired") })
		e.Cancel(ev)
	}
	if n := len(e.lanes[0].events); n > 256 {
		t.Errorf("heap holds %d slots after churn, want compacted (<= 256)", n)
	}
	done := false
	e.Schedule(20000, func() { done = true })
	e.Run()
	if !done {
		t.Error("live event lost during compaction")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(10)
	if !reflect.DeepEqual(fired, []Time{5, 10}) {
		t.Errorf("fired %v, want [5 10]", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10", e.Now())
	}
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
	if !reflect.DeepEqual(fired, []Time{5, 10, 15}) {
		t.Errorf("fired %v, want [5 10 15]", fired)
	}
}

func TestProcSleepInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	log := func(s string) { trace = append(trace, s) }
	e.Go("a", func(p *Proc) {
		log("a0")
		p.Sleep(10)
		log("a1")
		p.Sleep(20)
		log("a2")
	})
	e.Go("b", func(p *Proc) {
		log("b0")
		p.Sleep(15)
		log("b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("trace %v, want %v", trace, want)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestProcVirtualTimeAdvances(t *testing.T) {
	e := NewEngine(1)
	var at0, at1 Time
	p := e.Spawn("p", 7, func(p *Proc) {
		at0 = p.Now()
		p.Sleep(3)
		at1 = p.Now()
	})
	e.Run()
	if at0 != 7 || at1 != 10 {
		t.Errorf("times = %v, %v; want 7, 10", at0, at1)
	}
	if !p.Done() {
		t.Error("process not done")
	}
	if p.Err() != nil {
		t.Errorf("unexpected err: %v", p.Err())
	}
}

func TestBlockUnblock(t *testing.T) {
	e := NewEngine(1)
	var order []string
	var waiter *Proc
	waiter = e.Go("waiter", func(p *Proc) {
		order = append(order, "block")
		p.Block()
		order = append(order, "woken")
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(50)
		order = append(order, "wake")
		p.Engine().Unblock(waiter)
	})
	e.Run()
	want := []string{"block", "wake", "woken"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order %v, want %v", order, want)
	}
}

func TestDeadlockPanics(t *testing.T) {
	e := NewEngine(1)
	e.Go("stuck", func(p *Proc) { p.Block() })
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e.Run()
}

func TestProcPanicCaptured(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("boom", func(p *Proc) { panic("bad") })
	e.Run()
	if p.Err() == nil {
		t.Fatal("expected captured panic error")
	}
}

func TestResourceSerializesFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var order []string
	use := func(name string, hold Time) func(p *Proc) {
		return func(p *Proc) {
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(hold)
			order = append(order, name+"-")
			r.Release()
		}
	}
	e.Spawn("a", 0, use("a", 100))
	e.Spawn("b", 10, use("b", 100)) // queues first
	e.Spawn("c", 20, use("c", 100)) // queues second
	e.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order %v, want %v", order, want)
	}
	if e.Now() != 300 {
		t.Errorf("Now = %v, want 300 (fully serialized)", e.Now())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	var maxConcurrent, cur int
	body := func(p *Proc) {
		r.Acquire(p)
		cur++
		if cur > maxConcurrent {
			maxConcurrent = cur
		}
		p.Sleep(100)
		cur--
		r.Release()
	}
	for i := 0; i < 5; i++ {
		e.Go("w", body)
	}
	e.Run()
	if maxConcurrent != 2 {
		t.Errorf("max concurrency %d, want 2", maxConcurrent)
	}
	if e.Now() != 300 {
		t.Errorf("Now = %v, want 300 (ceil(5/2) batches)", e.Now())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release should succeed")
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	e.Go("u", func(p *Proc) {
		p.Sleep(10)
		r.Acquire(p)
		p.Sleep(30)
		r.Release()
	})
	e.Run()
	if r.BusyTime() != 30 {
		t.Errorf("BusyTime = %v, want 30", r.BusyTime())
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEngine(1)
	a := e.Go("a", func(p *Proc) { p.Sleep(10) })
	b := e.Go("b", func(p *Proc) { p.Sleep(20) })
	e.WaitAll(a, b)
	if !a.Done() || !b.Done() {
		t.Fatal("WaitAll returned before processes finished")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []string {
		e := NewEngine(seed)
		var trace []string
		for i := 0; i < 4; i++ {
			name := string(rune('a' + i))
			e.Go(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(p.Engine().RNG().Intn(100) + 1))
					trace = append(trace, name)
				}
			})
		}
		e.Run()
		return trace
	}
	if !reflect.DeepEqual(run(42), run(42)) {
		t.Error("identical seeds produced different traces")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n % 64)
		p := NewRNG(seed).Perm(m)
		if len(p) != m {
			return false
		}
		q := append([]int(nil), p...)
		sort.Ints(q)
		for i, v := range q {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministicStream(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGRoughUniformity(t *testing.T) {
	r := NewRNG(123)
	const buckets, n = 10, 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d count %d far from uniform %d", i, c, n/buckets)
		}
	}
}

func TestEventNonDecreasingTimeProperty(t *testing.T) {
	f := func(seed uint64, delays []uint16) bool {
		e := NewEngine(seed)
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
