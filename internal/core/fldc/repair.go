package fldc

import (
	"fmt"
	"strings"

	"graybox/internal/simos"
)

// The paper's footnote 4: "There are issues of atomicity in the refresh
// operation, in particular when a crash occurs after the delete but
// before or in the midst of the rename. We envision a nightly script
// that looks for a certain directory signature and patches up problems."
//
// This file implements that script (RepairRefresh) plus a crash-injected
// refresh (RefreshWithCrash) so the recovery path can be tested: the
// temporary directory's ".gbrefresh" suffix is the signature.

// refreshSuffix marks an in-progress refresh directory.
const refreshSuffix = ".gbrefresh"

// CrashPoint selects where an injected crash interrupts a refresh.
type CrashPoint int

const (
	// CrashNone runs to completion.
	CrashNone CrashPoint = iota
	// CrashDuringCopy stops partway through copying into the temp dir.
	CrashDuringCopy
	// CrashAfterDelete stops after the old directory was removed but
	// before the rename — the dangerous window of footnote 4.
	CrashAfterDelete
)

// errCrash distinguishes the injected crash from real failures.
var errCrash = fmt.Errorf("fldc: injected crash")

// RefreshWithCrash is Refresh with fault injection for testing the
// repair script. It returns errCrash-wrapped errors at the requested
// point; the file system is left exactly as a real crash would leave it
// (modulo the write-behind cache, which tests flush or drop).
func (l *Layer) RefreshWithCrash(dir string, order RefreshOrder, crash CrashPoint) error {
	os := l.os
	names, err := os.Readdir(dir)
	if err != nil {
		return err
	}
	infos := make([]fileInfo, 0, len(names))
	for _, n := range names {
		st, err := os.Stat(dir + "/" + n)
		if err != nil {
			return err
		}
		infos = append(infos, fileInfo{path: n, ino: int64(st.Ino), size: st.Size})
	}
	sortInfos(infos, order)

	tmp := dir + refreshSuffix
	if err := os.Mkdir(tmp); err != nil {
		return fmt.Errorf("fldc: refresh: %w", err)
	}
	for i, fi := range infos {
		if crash == CrashDuringCopy && i == len(infos)/2 {
			return fmt.Errorf("%w during copy of %q", errCrash, fi.path)
		}
		if err := l.copyFile(dir+"/"+fi.path, tmp+"/"+fi.path); err != nil {
			return err
		}
	}
	for _, fi := range infos {
		if err := os.Unlink(dir + "/" + fi.path); err != nil {
			return err
		}
	}
	if err := os.Rmdir(dir); err != nil {
		return err
	}
	if crash == CrashAfterDelete {
		return fmt.Errorf("%w after delete, before rename", errCrash)
	}
	return os.Rename(tmp, dir)
}

// IsInjectedCrash reports whether err came from RefreshWithCrash's fault
// injection.
func IsInjectedCrash(err error) bool {
	return err != nil && strings.Contains(err.Error(), errCrash.Error())
}

// sortInfos orders the file list for a refresh.
func sortInfos(infos []fileInfo, order RefreshOrder) {
	less := func(a, b fileInfo) bool {
		if order == ByName {
			return a.path < b.path
		}
		if a.size != b.size {
			return a.size < b.size
		}
		return a.path < b.path
	}
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && less(infos[j], infos[j-1]); j-- {
			infos[j-1], infos[j] = infos[j], infos[j-1]
		}
	}
}

// RepairReport describes what the nightly repair script found and did.
type RepairReport struct {
	// Scanned is the number of directory entries examined.
	Scanned int
	// Completed lists refreshes that were rolled forward (the original
	// directory was already deleted; the temp directory was complete).
	Completed []string
	// RolledBack lists refreshes that were abandoned (the original
	// directory still existed; the partial temp directory was removed).
	RolledBack []string
}

// RepairRefresh is the nightly patch-up script: it scans parent for the
// refresh signature and finishes or rolls back each interrupted
// refresh. The rule is simple and safe:
//
//   - original missing  -> the refresh had passed its delete step, so
//     the temp copy is authoritative: rename it into place (roll
//     forward).
//   - original present  -> the refresh never reached the delete, so the
//     original is authoritative: remove the temp copy (roll back).
func RepairRefresh(os *simos.OS, parent string) (RepairReport, error) {
	var rep RepairReport
	subdirs, err := listSubdirs(os, parent)
	if err != nil {
		return rep, err
	}
	for _, name := range subdirs {
		rep.Scanned++
		if !strings.HasSuffix(name, refreshSuffix) {
			continue
		}
		orig := strings.TrimSuffix(name, refreshSuffix)
		tmpPath := joinPath(parent, name)
		origPath := joinPath(parent, orig)
		if dirExists(os, origPath) {
			// Roll back: delete the partial temp directory.
			files, err := os.Readdir(tmpPath)
			if err != nil {
				return rep, err
			}
			for _, f := range files {
				if err := os.Unlink(tmpPath + "/" + f); err != nil {
					return rep, err
				}
			}
			if err := os.Rmdir(tmpPath); err != nil {
				return rep, err
			}
			rep.RolledBack = append(rep.RolledBack, orig)
			continue
		}
		// Roll forward: the temp directory is the complete new copy.
		if err := os.Rename(tmpPath, origPath); err != nil {
			return rep, err
		}
		rep.Completed = append(rep.Completed, orig)
	}
	return rep, nil
}

// listSubdirs enumerates subdirectory names of parent. The simos facade
// only lists files via Readdir, so this probes known signatures by
// attempting directory reads; to keep the repair script honest it
// instead relies on ReaddirDirs.
func listSubdirs(os *simos.OS, parent string) ([]string, error) {
	return os.ReaddirDirs(parent)
}

func joinPath(parent, name string) string {
	if parent == "" || parent == "/" {
		return name
	}
	return parent + "/" + name
}

func dirExists(os *simos.OS, path string) bool {
	_, err := os.Readdir(path)
	return err == nil
}
