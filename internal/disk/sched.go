package disk

import (
	"graybox/internal/sim"
)

// Scheduler selects the order in which queued requests are serviced.
// The default is FCFS, which is what the rest of this repository's
// experiments assume; SSTF and LOOK exist for the scheduling ablation
// (seek-ordered service changes how much file layout matters).
type Scheduler int

const (
	// FCFS services requests in arrival order.
	FCFS Scheduler = iota
	// SSTF services the queued request with the shortest seek from the
	// current head position (can starve distant requests).
	SSTF
	// LOOK sweeps the head across the disk, servicing requests in
	// cylinder order, reversing at the last request in each direction.
	LOOK
)

// request is one queued disk access.
type request struct {
	proc    *sim.Proc
	block   int64
	nblocks int
	write   bool
	cyl     int
}

// schedState replaces the simple FIFO resource when a non-FCFS
// scheduler is selected.
type schedState struct {
	policy  Scheduler
	busy    bool
	queue   []*request
	upsweep bool // LOOK direction
}

// SetScheduler selects the request scheduler. It must be called before
// any Access; switching with requests in flight panics.
func (d *Disk) SetScheduler(s Scheduler) {
	if d.sched.busy || len(d.sched.queue) > 0 {
		panic("disk: cannot change scheduler with requests in flight")
	}
	d.sched.policy = s
}

// Scheduler returns the active policy.
func (d *Disk) Scheduler() Scheduler { return d.sched.policy }

// schedAccess is the scheduled variant of Access (used for SSTF/LOOK).
func (d *Disk) schedAccess(p *sim.Proc, block int64, nblocks int, write bool) {
	req := &request{proc: p, block: block, nblocks: nblocks, write: write, cyl: d.cylinder(block)}
	enq := d.e.Now()
	if d.sched.busy {
		d.sched.queue = append(d.sched.queue, req)
		p.Block()
	} else {
		d.sched.busy = true
	}
	queued := d.e.Now() - enq
	d.stats.QueueTime += queued
	if t := d.tel; t != nil {
		t.queueNS.Add(int64(queued))
		p.Track().QueueWait(int64(queued))
	}
	d.service(p, req.block, req.nblocks, req.write)
	// Hand the disk to the next request per policy.
	if next := d.pickNext(); next != nil {
		d.e.Unblock(next.proc)
	} else {
		d.sched.busy = false
	}
}

// pickNext removes and returns the next request per the policy.
func (d *Disk) pickNext() *request {
	q := d.sched.queue
	if len(q) == 0 {
		return nil
	}
	idx := 0
	switch d.sched.policy {
	case SSTF:
		best := -1
		for i, r := range q {
			dist := r.cyl - d.headCyl
			if dist < 0 {
				dist = -dist
			}
			if best < 0 || dist < best {
				best, idx = dist, i
			}
		}
	case LOOK:
		idx = d.pickLook()
	}
	req := q[idx]
	d.sched.queue = append(q[:idx], q[idx+1:]...)
	return req
}

// pickLook chooses the nearest request in the sweep direction, reversing
// when none remain ahead.
func (d *Disk) pickLook() int {
	pick := func(up bool) int {
		best, idx := -1, -1
		for i, r := range d.sched.queue {
			var dist int
			if up {
				dist = r.cyl - d.headCyl
			} else {
				dist = d.headCyl - r.cyl
			}
			if dist < 0 {
				continue
			}
			if best < 0 || dist < best {
				best, idx = dist, i
			}
		}
		return idx
	}
	if idx := pick(d.sched.upsweep); idx >= 0 {
		return idx
	}
	d.sched.upsweep = !d.sched.upsweep
	if idx := pick(d.sched.upsweep); idx >= 0 {
		return idx
	}
	return 0
}

// service performs the mechanical transfer (shared by both paths).
func (d *Disk) service(p *sim.Proc, block int64, nblocks int, write bool) {
	seek, rot, xfer := d.serviceTime(block, nblocks, d.e.Now())
	total := d.p.Overhead + seek + rot + xfer
	d.stats.SeekTime += seek
	d.stats.RotTime += rot
	d.stats.TransferTime += xfer
	if write {
		d.stats.Writes++
		d.stats.BlocksWrote += int64(nblocks)
	} else {
		d.stats.Reads++
		d.stats.BlocksRead += int64(nblocks)
	}
	if t := d.tel; t != nil {
		t.seekNS.Add(int64(seek))
		t.rotNS.Add(int64(rot))
		t.xferNS.Add(int64(xfer))
		t.serviceNS.Observe(int64(total))
		if write {
			t.writes.Inc()
			t.blocksW.Add(int64(nblocks))
		} else {
			t.reads.Inc()
			t.blocksRead.Add(int64(nblocks))
		}
	}
	d.headCyl = d.cylinder(block + int64(nblocks) - 1)
	p.Sleep(total)
	d.lastEnd = block + int64(nblocks)
	d.lastEndTime = d.e.Now()
}

// QueuedRequests reports the number of waiting requests under a
// non-FCFS scheduler.
func (d *Disk) QueuedRequests() int { return len(d.sched.queue) }
