package audit

import (
	"bytes"
	"strings"
	"testing"
)

// fakeOracle is a deterministic in-memory ground truth.
type fakeOracle struct {
	now   int64
	ps    int64
	res   map[int64][]bool // ino -> residency bitmap
	blk   map[string]int64 // path -> first data block
	avail int64
}

func (f *fakeOracle) NowNS() int64    { f.now += 10; return f.now }
func (f *fakeOracle) PageSize() int64 { return f.ps }
func (f *fakeOracle) ResidentPages(ino, npages int64) []bool {
	bm := make([]bool, npages)
	copy(bm, f.res[ino])
	return bm
}
func (f *fakeOracle) ResidentPage(ino, page int64) bool {
	bm := f.res[ino]
	return page >= 0 && page < int64(len(bm)) && bm[page]
}
func (f *fakeOracle) FirstBlock(path string) (int64, bool) {
	b, ok := f.blk[path]
	return b, ok
}
func (f *fakeOracle) AvailableBytes() int64 { return f.avail }

func newFake() *fakeOracle {
	return &fakeOracle{ps: 4096, res: map[int64][]bool{}, blk: map[string]int64{}}
}

func TestFCCDRangesConfusion(t *testing.T) {
	o := newFake()
	// File 7: 4 pages, first two resident.
	o.res[7] = []bool{true, true, false, false}
	a := New("p", o)
	ps := o.ps
	a.FCCDRanges(7, 4*ps, []RangePrediction{
		{Off: 0, Len: 2 * ps, PredictedCached: true},      // TP
		{Off: 2 * ps, Len: 2 * ps, PredictedCached: true}, // FP
	}, 4, 400)
	a.FCCDRanges(7, 4*ps, []RangePrediction{
		{Off: 0, Len: 2 * ps, PredictedCached: false},      // FN
		{Off: 2 * ps, Len: 2 * ps, PredictedCached: false}, // TN
	}, 4, 400)
	st := a.fccd
	if st.predictions != 2 {
		t.Fatalf("predictions = %d, want 2", st.predictions)
	}
	want := Confusion{TP: 1, FP: 1, TN: 1, FN: 1}
	if st.agg != want {
		t.Errorf("confusion = %+v, want %+v", st.agg, want)
	}
	if got := st.agg.Accuracy(); got != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
	if st.probes != 8 || st.probeNS != 800 {
		t.Errorf("probe cost = (%d, %d), want (8, 800)", st.probes, st.probeNS)
	}
}

func TestFCCDMajorityRule(t *testing.T) {
	o := newFake()
	o.res[1] = []bool{true, true, false} // 2 of 3 resident: majority cached
	o.res[2] = []bool{true, false, false}
	a := New("p", o)
	a.FCCDFiles([]FilePrediction{
		{Ino: 1, SizeBytes: 3 * o.ps, PredictedCached: true}, // TP (2/3)
		{Ino: 2, SizeBytes: 3 * o.ps, PredictedCached: true}, // FP (1/3)
	}, 2, 20)
	want := Confusion{TP: 1, FP: 1}
	if a.fccd.agg != want {
		t.Errorf("confusion = %+v, want %+v", a.fccd.agg, want)
	}
}

func TestFLDCOrderTau(t *testing.T) {
	o := newFake()
	o.blk["a"], o.blk["b"], o.blk["c"] = 10, 20, 30
	a := New("p", o)

	a.FLDCOrder([]string{"a", "b", "c"}, 3, 30) // perfect
	if rec := a.fldc.series[0]; rec.Tau != 1 || rec.Accuracy != 1 || rec.Pairs != 3 {
		t.Errorf("perfect order scored %+v", rec)
	}
	a.FLDCOrder([]string{"c", "b", "a"}, 3, 30) // fully inverted
	if rec := a.fldc.series[1]; rec.Tau != -1 || rec.Accuracy != 0 {
		t.Errorf("inverted order scored %+v", rec)
	}
	// Missing files are dropped, not scored.
	a.FLDCOrder([]string{"a", "missing", "b"}, 3, 30)
	if rec := a.fldc.series[2]; rec.Files != 2 || rec.Pairs != 1 || rec.Concordant != 1 {
		t.Errorf("missing-file order scored %+v", rec)
	}
	if a.fldc.orders != 3 {
		t.Errorf("orders = %d, want 3", a.fldc.orders)
	}
}

func TestFLDCOrderNeedsTwoPaths(t *testing.T) {
	a := New("p", newFake())
	a.FLDCOrder([]string{"only"}, 1, 10)
	if a.fldc.orders != 0 {
		t.Error("single-path order should not be recorded")
	}
}

func TestMACAllocScoring(t *testing.T) {
	o := newFake()
	a := New("p", o)
	mb := int64(1 << 20)

	// Exact admission: got == clamp(oracle, max) -> accuracy 1.
	a.MACAlloc(100*mb, 10*mb, 50*mb, 50*mb, true, 100, 1000)
	if rec := a.mac.series[0]; rec.Expected != 50*mb || rec.AbsErr != 0 || rec.Accuracy != 1 {
		t.Errorf("exact admission scored %+v", rec)
	}
	// Under-admission: got 40 of 50 expected -> rel err -0.2, accuracy 0.8.
	a.MACAlloc(100*mb, 10*mb, 50*mb, 40*mb, true, 100, 1000)
	if rec := a.mac.series[1]; rec.AbsErr != -10*mb || rec.Accuracy != 0.8 {
		t.Errorf("under-admission scored %+v", rec)
	}
	// Correct rejection: truly less than min available.
	a.MACAlloc(5*mb, 10*mb, 50*mb, 0, false, 100, 1000)
	if rec := a.mac.series[2]; rec.Accuracy != 1 || rec.Admitted {
		t.Errorf("correct rejection scored %+v", rec)
	}
	// Wrong rejection: 100 MB available but rejected -> accuracy 0.
	a.MACAlloc(100*mb, 10*mb, 50*mb, 0, false, 100, 1000)
	if rec := a.mac.series[3]; rec.Accuracy != 0 {
		t.Errorf("wrong rejection scored %+v", rec)
	}
	if a.mac.calls != 4 || a.mac.admits != 2 {
		t.Errorf("calls/admits = %d/%d, want 4/2", a.mac.calls, a.mac.admits)
	}

	last, ok := a.LastMAC()
	if !ok || last.OracleBytes != 100*mb || last.Admitted {
		t.Errorf("LastMAC = %+v, %v", last, ok)
	}
}

func TestSeriesCapCountsDrops(t *testing.T) {
	o := newFake()
	o.blk["a"], o.blk["b"] = 1, 2
	a := New("p", o)
	a.SetMaxRecords(2)
	for i := 0; i < 5; i++ {
		a.FLDCOrder([]string{"a", "b"}, 2, 20)
	}
	if len(a.fldc.series) != 2 || a.fldc.drops != 3 {
		t.Errorf("series/drops = %d/%d, want 2/3", len(a.fldc.series), a.fldc.drops)
	}
	// Aggregates still count everything.
	if a.fldc.orders != 5 || a.fldc.pairs != 5 {
		t.Errorf("orders/pairs = %d/%d, want 5/5", a.fldc.orders, a.fldc.pairs)
	}
	// MAC's last record survives the cap.
	a.SetMaxRecords(1)
	a.MACAlloc(10, 1, 10, 10, true, 1, 1)
	a.MACAlloc(20, 1, 20, 20, true, 1, 1)
	if last, ok := a.LastMAC(); !ok || last.OracleBytes != 20 {
		t.Errorf("LastMAC after cap = %+v, %v", last, ok)
	}
}

func TestFrontierIsPareto(t *testing.T) {
	pts := []FrontierPoint{
		{ProbeNS: 10, Accuracy: 0.5},
		{ProbeNS: 5, Accuracy: 0.8},
		{ProbeNS: 20, Accuracy: 0.9},
		{ProbeNS: 30, Accuracy: 0.7}, // dominated by the 20ns/0.9 point
	}
	fr := frontier(pts)
	if len(fr) != 2 || fr[0].ProbeNS != 5 || fr[1].ProbeNS != 20 {
		t.Errorf("frontier = %+v", fr)
	}
}

func TestReportSectionsGated(t *testing.T) {
	o := newFake()
	a := New("plat", o)
	r := a.Report()
	if r.FCCD != nil || r.FLDC != nil || r.MAC != nil {
		t.Error("empty auditor should render no ICL sections")
	}
	a.MACAlloc(10, 1, 10, 10, true, 1, 1)
	r = a.Report()
	if r.MAC == nil || r.FCCD != nil {
		t.Error("only the MAC section should render")
	}
	if r.Label != "plat" {
		t.Errorf("label = %q", r.Label)
	}
}

func TestWriteJSONDeterministicAndSorted(t *testing.T) {
	build := func() []*Auditor {
		o := newFake()
		o.blk["a"], o.blk["b"] = 1, 2
		a1 := New("b-plat", o)
		a1.FLDCOrder([]string{"a", "b"}, 2, 20)
		a2 := New("a-plat", o)
		a2.MACAlloc(10, 1, 10, 10, true, 1, 1)
		return []*Auditor{a1, a2}
	}
	auds1, auds2 := build(), build()
	SortAuditors(auds1)
	SortAuditors(auds2)
	if auds1[0].Label() != "a-plat" {
		t.Errorf("sort order: %q first", auds1[0].Label())
	}
	var b1, b2 bytes.Buffer
	if err := WriteJSON(&b1, auds1); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b2, auds2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical auditors exported different bytes")
	}
	if !strings.Contains(b1.String(), `"platforms"`) {
		t.Errorf("unexpected export shape:\n%s", b1.String())
	}
}

// TestNilAuditorZeroCost is the disabled-path guard: every method of a
// nil *Auditor must be a safe no-op and allocate nothing.
func TestNilAuditorZeroCost(t *testing.T) {
	var a *Auditor
	preds := []RangePrediction{{Off: 0, Len: 4096, PredictedCached: true}}
	files := []FilePrediction{{Ino: 1, SizeBytes: 4096}}
	paths := []string{"a", "b"}
	allocs := testing.AllocsPerRun(100, func() {
		a.FCCDRanges(1, 4096, preds, 1, 10)
		a.FCCDFiles(files, 1, 10)
		a.FLDCOrder(paths, 2, 20)
		a.MACAlloc(a.OracleAvailableBytes(), 1, 10, 10, true, 1, 1)
		a.SetLabel("x")
		a.SetMaxRecords(1)
		if a.Label() != "" {
			t.Fatal("nil label")
		}
		if _, ok := a.LastMAC(); ok {
			t.Fatal("nil LastMAC ok")
		}
	})
	if allocs > 0 {
		t.Errorf("nil auditor allocates %.2f allocs/op, want 0", allocs)
	}
	r := a.Report()
	if r.Label != "" || r.FCCD != nil {
		t.Errorf("nil report = %+v", r)
	}
}
