package sim

import (
	"fmt"

	"graybox/internal/telemetry"
)

type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procBlocked // parked, waiting for an explicit Unblock
	procDone
)

// Proc is a cooperative simulated process. Its body runs on a dedicated
// goroutine, but the engine guarantees that at most one process goroutine
// executes at a time: a process runs until it calls Sleep, Block, or
// returns, at which point control hands back to the engine loop.
type Proc struct {
	e     *Engine
	name  string
	state procState

	// resume wakes this process's goroutine. Buffered size 0: the engine
	// blocks on the send until the goroutine is at its receive, which is
	// exactly the handoff we want.
	resume chan struct{}

	// track is this process's span timeline (nil when telemetry is off;
	// the nil track's methods are no-ops).
	track *telemetry.Track

	// Exit status.
	err error
}

// Spawn creates a process named name whose body is fn and schedules it to
// start at delay from now. The body runs entirely on virtual time.
func (e *Engine) Spawn(name string, delay Time, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, state: procNew, resume: make(chan struct{})}
	p.track = e.tel.NewTrack(name) // nil track when telemetry is off
	e.procs = append(e.procs, p)
	e.After(delay, func() {
		p.state = procRunning
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					p.err = fmt.Errorf("proc %s panicked: %v", p.name, r)
				}
				p.state = procDone
				p.e.yield <- struct{}{}
			}()
			fn(p)
		}()
		p.resume <- struct{}{}
		<-e.yield
	})
	return p
}

// Go spawns a process starting immediately.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.Spawn(name, 0, fn)
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Track returns the process's telemetry span track. It is nil when
// telemetry is disabled, and the nil track's methods are no-ops, so
// instrumentation sites call p.Track().Begin(...) unconditionally.
func (p *Proc) Track() *telemetry.Track { return p.track }

// Err returns the process's exit error (non-nil if the body panicked).
func (p *Proc) Err() error { return p.err }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == procDone }

// park suspends the calling process goroutine and returns control to the
// engine loop. The process must have arranged to be resumed (a scheduled
// wake event, or a future Unblock).
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.resume
	p.state = procRunning
}

// wake transfers control from the engine loop into the process goroutine
// and waits for it to park again (or exit). Must only be called from event
// context.
func (p *Proc) wake() {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.resume <- struct{}{}
	<-p.e.yield
}

// Sleep advances this process's virtual time by d, letting other events
// run in between. d must be >= 0; Sleep(0) yields to same-time events.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.state = procBlocked
	p.e.scheduleWake(p.e.now+d, p)
	p.park()
}

// Block parks the process until another party calls Unblock on it.
func (p *Proc) Block() {
	p.state = procBlocked
	p.park()
}

// Unblock schedules p to resume at the current time (after already-queued
// same-time events). It is a no-op for finished processes and panics if p
// is not blocked, which would indicate a lost-wakeup bug in the caller.
func (e *Engine) Unblock(p *Proc) {
	if p.state == procDone {
		return
	}
	if p.state != procBlocked {
		panic(fmt.Sprintf("sim: Unblock(%s) but process is not blocked", p.name))
	}
	p.state = procRunnable
	e.scheduleWake(e.now, p)
}

// WaitAll runs the engine until every listed process has finished. It
// panics on simulation deadlock.
func (e *Engine) WaitAll(ps ...*Proc) {
	for {
		done := true
		for _, p := range ps {
			if p.state != procDone {
				done = false
				break
			}
		}
		if done {
			return
		}
		if !e.step() {
			panic(fmt.Sprintf("sim: WaitAll deadlock at %v", e.now))
		}
	}
}
