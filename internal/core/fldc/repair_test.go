package fldc

import (
	"fmt"
	"testing"

	"graybox/internal/simos"
)

// setupAged creates an aged directory "work" with n files under parent.
func setupAged(t *testing.T, s *simos.System, os *simos.OS, n int) {
	t.Helper()
	if err := os.Mkdir("work"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fd, err := os.Create(fmt.Sprintf("work/f%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(0, int64(i%3+1)*4096); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRefreshWithCrashNone(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		setupAged(t, s, os, 10)
		l := New(os)
		if err := l.RefreshWithCrash("work", BySize, CrashNone); err != nil {
			t.Fatal(err)
		}
		names, _ := os.Readdir("work")
		if len(names) != 10 {
			t.Errorf("files = %d after clean refresh", len(names))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashDuringCopyThenRepairRollsBack(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		setupAged(t, s, os, 10)
		l := New(os)
		err := l.RefreshWithCrash("work", BySize, CrashDuringCopy)
		if !IsInjectedCrash(err) {
			t.Fatalf("expected injected crash, got %v", err)
		}
		// The crash left a partial temp directory and an intact
		// original.
		if _, err := os.Readdir("work.gbrefresh"); err != nil {
			t.Fatal("temp directory missing after crash")
		}
		rep, err := RepairRefresh(os, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.RolledBack) != 1 || rep.RolledBack[0] != "work" {
			t.Errorf("repair report = %+v, want rollback of work", rep)
		}
		// Original intact, temp gone.
		names, _ := os.Readdir("work")
		if len(names) != 10 {
			t.Errorf("original has %d files after rollback", len(names))
		}
		if _, err := os.Readdir("work.gbrefresh"); err == nil {
			t.Error("temp directory survived repair")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashAfterDeleteThenRepairRollsForward(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		setupAged(t, s, os, 10)
		l := New(os)
		err := l.RefreshWithCrash("work", BySize, CrashAfterDelete)
		if !IsInjectedCrash(err) {
			t.Fatalf("expected injected crash, got %v", err)
		}
		// The dangerous window: the original is gone, only the temp
		// directory holds the data.
		if _, err := os.Readdir("work"); err == nil {
			t.Fatal("original directory still present; crash not in window")
		}
		rep, err := RepairRefresh(os, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Completed) != 1 || rep.Completed[0] != "work" {
			t.Errorf("repair report = %+v, want roll-forward of work", rep)
		}
		names, err := os.Readdir("work")
		if err != nil {
			t.Fatalf("directory unreachable after roll-forward: %v", err)
		}
		if len(names) != 10 {
			t.Errorf("files = %d after roll-forward, want 10", len(names))
		}
		// And the layout is fresh: i-number order == block order.
		ordered, err := New(os).OrderByINumber(prefixAll("work/", names))
		if err != nil {
			t.Fatal(err)
		}
		var last int64 = -1
		for _, p := range ordered {
			blocks, _ := s.FS(0).BlocksOf(p)
			if len(blocks) > 0 {
				if blocks[0] <= last {
					t.Fatalf("layout not fresh after roll-forward at %s", p)
				}
				last = blocks[0]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepairIdempotentAndSelective(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		setupAged(t, s, os, 6)
		// An unrelated healthy directory must be untouched.
		os.Mkdir("healthy")
		os.Create("healthy/x")
		rep, err := RepairRefresh(os, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Completed)+len(rep.RolledBack) != 0 {
			t.Errorf("repair acted on a healthy tree: %+v", rep)
		}
		// Crash, repair, repair again: second run is a no-op.
		l := New(os)
		if err := l.RefreshWithCrash("work", BySize, CrashAfterDelete); !IsInjectedCrash(err) {
			t.Fatal(err)
		}
		if _, err := RepairRefresh(os, ""); err != nil {
			t.Fatal(err)
		}
		rep2, err := RepairRefresh(os, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(rep2.Completed)+len(rep2.RolledBack) != 0 {
			t.Errorf("second repair was not a no-op: %+v", rep2)
		}
		if _, err := os.Readdir("healthy"); err != nil {
			t.Error("healthy directory damaged")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
