// Command gbp demonstrates the paper's gbp utility: given a set of
// files, print them in the predicted best access order so that
// unmodified applications can be driven as
//
//	grep foo `gbp -mem *`
//
// Because this repository's OS is simulated, gbp first builds a demo
// corpus on a simulated platform, optionally warms part of it, then runs
// the requested ordering mode and prints the result with probe times.
//
// Usage:
//
//	gbp [-mode mem|file|compose] [-platform linux22|netbsd15|solaris7]
//	    [-files N] [-filemb M] [-warm k,l,...] [-age epochs]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graybox"
	"graybox/internal/apps"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

func main() {
	mode := flag.String("mode", "mem", "ordering: mem (cache contents), file (disk layout), compose (both)")
	platform := flag.String("platform", "linux22", "platform personality")
	nFiles := flag.Int("files", 12, "number of demo files")
	fileMB := flag.Int64("filemb", 4, "size of each demo file in MB")
	warm := flag.String("warm", "2,5", "comma-separated indexes of files to pre-warm into the cache")
	age := flag.Int("age", 0, "aging epochs (delete/create churn) before ordering")
	flag.Parse()

	var gbpMode apps.GBPMode
	switch *mode {
	case "mem":
		gbpMode = apps.GBPMem
	case "file":
		gbpMode = apps.GBPFile
	case "compose":
		gbpMode = apps.GBPCompose
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	p := graybox.NewPlatform(graybox.PlatformConfig{
		Personality: simos.Personality(*platform),
		MemoryMB:    128, KernelMB: 12, CacheFloorMB: 1,
	})
	err := p.Run("gbp", func(osh *graybox.Proc) {
		if err := osh.Mkdir("corpus"); err != nil {
			fail(err)
		}
		var paths []string
		for i := 0; i < *nFiles; i++ {
			path := fmt.Sprintf("corpus/f%03d", i)
			fd, err := osh.Create(path)
			if err != nil {
				fail(err)
			}
			if err := fd.Write(0, *fileMB*graybox.MB); err != nil {
				fail(err)
			}
			paths = append(paths, path)
		}
		// Aging churn.
		rng := sim.NewRNG(11)
		for e := 0; e < *age; e++ {
			names, _ := osh.Readdir("corpus")
			victim := names[rng.Intn(len(names))]
			_ = osh.Unlink("corpus/" + victim)
			fd, err := osh.Create(fmt.Sprintf("corpus/new%03d", e))
			if err != nil {
				fail(err)
			}
			_ = fd.Write(0, int64(rng.Intn(3)+1)*graybox.MB)
		}
		names, _ := osh.Readdir("corpus")
		paths = paths[:0]
		for _, n := range names {
			paths = append(paths, "corpus/"+n)
		}

		// Cold cache, then warm the chosen files.
		p.DropCaches()
		for _, tok := range strings.Split(*warm, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			idx, err := strconv.Atoi(tok)
			if err != nil || idx < 0 || idx >= len(paths) {
				fmt.Fprintf(os.Stderr, "skipping bad warm index %q\n", tok)
				continue
			}
			fd, err := osh.Open(paths[idx])
			if err != nil {
				fail(err)
			}
			_ = fd.Read(0, fd.Size())
		}

		det := graybox.NewFCCD(osh, graybox.FCCDConfig{Seed: 42})
		sw := graybox.NewStopwatch(osh)
		ordered, err := apps.GBP(osh, gbpMode, paths, det)
		if err != nil {
			fail(err)
		}
		elapsed := sw.Elapsed()

		fmt.Printf("# gbp -%s on %s: %d files, ordering cost %v (virtual)\n",
			*mode, *platform, len(ordered), elapsed)
		for _, path := range ordered {
			st, err := osh.Stat(path)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%s\t(ino %d, %d MB)\n", path, st.Ino, st.Size/graybox.MB)
		}
	})
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gbp:", err)
	os.Exit(1)
}
