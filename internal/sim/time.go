// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, cooperative processes implemented as
// goroutines with strict one-at-a-time handoff, FIFO resources, and a
// seedable random number generator.
//
// Everything in this repository that "takes time" (disk accesses, memory
// copies, page faults) runs on the virtual clock, so experiments are
// perfectly repeatable: the same seed always produces the same trace, and
// the Go runtime scheduler and garbage collector cannot perturb measured
// timings.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is also used for durations.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with a unit that keeps the mantissa readable.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}
