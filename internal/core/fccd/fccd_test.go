package fccd

import (
	"fmt"
	"testing"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// testConfig uses small units so tests run on small files quickly.
func testConfig() Config {
	return Config{AccessUnit: 1 << 20, PredictionUnit: 256 << 10, Seed: 42}
}

func newSys() *simos.System {
	return simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1,
	})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.AccessUnit != DefaultAccessUnit || c.PredictionUnit != DefaultPredictionUnit {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{AccessUnit: 1 << 20, PredictionUnit: 4 << 20}.withDefaults()
	if c.PredictionUnit != 1<<20 {
		t.Error("prediction unit not clamped to access unit")
	}
}

func TestSegmentationRespectsBoundary(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, Config{AccessUnit: 1 << 20, PredictionUnit: 256 << 10, Boundary: 100})
		segs := d.segmentFile(2_500_000)
		var covered int64
		for i, seg := range segs {
			if seg.Off%100 != 0 {
				t.Errorf("segment %d offset %d not record-aligned", i, seg.Off)
			}
			if i < len(segs)-1 && seg.Len%100 != 0 {
				t.Errorf("segment %d length %d not record-aligned", i, seg.Len)
			}
			if seg.Off != covered {
				t.Errorf("gap before segment %d", i)
			}
			covered += seg.Len
		}
		if covered != 2_500_000 {
			t.Errorf("covered %d of 2500000", covered)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeFileRanksCachedFirst(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		// 8 MB file; warm the middle 4 MB only.
		fd, err := os.Create("data")
		if err != nil {
			t.Fatal(err)
		}
		size := int64(8 << 20)
		if err := fd.Write(0, size); err != nil {
			t.Fatal(err)
		}
		s.DropCaches()
		if err := fd.Read(2<<20, 4<<20); err != nil {
			t.Fatal(err)
		}

		d := New(os, testConfig())
		segs, err := d.ProbeFile("data")
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 8 {
			t.Fatalf("segments = %d, want 8", len(segs))
		}
		// The four cached MB (offsets 2,3,4,5 MB) must rank first.
		cachedFirst := map[int64]bool{2 << 20: true, 3 << 20: true, 4 << 20: true, 5 << 20: true}
		for i := 0; i < 4; i++ {
			if !cachedFirst[segs[i].Off] {
				t.Errorf("rank %d = offset %d MB, want a cached segment", i, segs[i].Off>>20)
			}
		}
		// Probe times themselves must be bimodal.
		if segs[3].ProbeTime*20 > segs[4].ProbeTime {
			t.Errorf("no timing gap: %v vs %v", segs[3].ProbeTime, segs[4].ProbeTime)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeCostsAreSmall(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		fd, _ := os.Create("data")
		fd.Write(0, 8<<20)
		// Warm cache: probing should take microseconds per probe.
		fd.Read(0, 8<<20)
		d := New(os, testConfig())
		sw := os.Now()
		if _, err := d.ProbeFile("data"); err != nil {
			t.Fatal(err)
		}
		elapsed := os.Now() - sw
		per := elapsed / sim.Time(d.Probes())
		if per > 20*sim.Microsecond {
			t.Errorf("warm probe cost %v each, want a few us", per)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSmallFileGetsFakeTime(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		fd, _ := os.Create("tiny")
		fd.Write(0, 100) // sub-page
		s.DropCaches()
		d := New(os, testConfig())
		probes, err := d.OrderFiles([]string{"tiny"})
		if err != nil {
			t.Fatal(err)
		}
		if probes[0].ProbeTime != FakeSmallFileTime {
			t.Errorf("small file probe time = %v, want fake high", probes[0].ProbeTime)
		}
		if d.Probes() != 0 {
			t.Error("small file was probed (Heisenberg violation)")
		}
		// And its pages must not have been dragged into the cache.
		bm, _ := s.FS(0).PresenceBitmap("tiny")
		for _, cached := range bm {
			if cached {
				t.Error("probe cached part of a small file")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOrderFilesCachedFirst(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		os.Mkdir("d")
		var paths []string
		for i := 0; i < 6; i++ {
			p := fmt.Sprintf("d/f%d", i)
			fd, _ := os.Create(p)
			fd.Write(0, 2<<20)
			paths = append(paths, p)
		}
		s.DropCaches()
		// Warm files 1 and 4.
		for _, i := range []int{1, 4} {
			fd, _ := os.Open(paths[i])
			fd.Read(0, fd.Size())
		}
		d := New(os, testConfig())
		probes, err := d.OrderFiles(paths)
		if err != nil {
			t.Fatal(err)
		}
		first := map[string]bool{probes[0].Path: true, probes[1].Path: true}
		if !first["d/f1"] || !first["d/f4"] {
			t.Errorf("warm files not ranked first: %v, %v", probes[0].Path, probes[1].Path)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomProbeOffsetsDiffer(t *testing.T) {
	// Two detectors with different seeds should not probe the same
	// byte (with overwhelming probability), which is what protects
	// concurrent probers from poisoning each other.
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		fd, _ := os.Create("data")
		fd.Write(0, 4<<20)
		fd.Read(0, 4<<20)
		d1 := New(os, Config{AccessUnit: 4 << 20, PredictionUnit: 4 << 20, Seed: 1})
		d2 := New(os, Config{AccessUnit: 4 << 20, PredictionUnit: 4 << 20, Seed: 2})
		off1 := d1.rng.Fork().Int63n(4 << 20)
		off2 := d2.rng.Fork().Int63n(4 << 20)
		if off1 == off2 {
			t.Error("different seeds chose identical probe offsets")
		}
		_, _ = d1.ProbeFd(fd)
		_, _ = d2.ProbeFd(fd)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeSegmentsValidation(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		fd, _ := os.Create("data")
		fd.Write(0, 1<<20)
		d := New(os, testConfig())
		if _, err := d.ProbeSegments("data", []Segment{{Off: 0, Len: 2 << 20}}); err == nil {
			t.Error("oversized segment accepted")
		}
		segs, err := d.ProbeSegments("data", []Segment{
			{Off: 0, Len: 512 << 10},
			{Off: 512 << 10, Len: 512 << 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 2 {
			t.Errorf("segments = %d", len(segs))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPositiveFeedbackStabilizes(t *testing.T) {
	// Reading in probe order (access-unit chunks) should make the next
	// probe pass agree with the previous one: the control technique of
	// reinforcing behavior via feedback (Section 2.2).
	s := simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 24, KernelMB: 8, CacheFloorMB: 1,
	})
	err := s.Run("t", func(os *simos.OS) {
		fd, _ := os.Create("data")
		size := int64(24 << 20) // bigger than the 16 MB pool
		if err := fd.Write(0, size); err != nil {
			t.Fatal(err)
		}
		d := New(os, testConfig())
		readPlan := func() []Segment {
			segs, err := d.ProbeFd(fd)
			if err != nil {
				t.Fatal(err)
			}
			for _, seg := range segs {
				fd.Read(seg.Off, seg.Len)
			}
			return segs
		}
		readPlan()
		// After one feedback round, most of the plan's fast prefix stays
		// fast on the next round.
		segs2 := d.mustPlan(t, fd)
		fastHalf := 0
		for i := 0; i < len(segs2)/2; i++ {
			if segs2[i].ProbeTime < sim.Millisecond {
				fastHalf++
			}
		}
		if fastHalf < len(segs2)/4 {
			t.Errorf("only %d of %d leading segments cached after feedback", fastHalf, len(segs2)/2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mustPlan is a test helper to keep the feedback test readable.
func (d *Detector) mustPlan(t *testing.T, fd *simos.Fd) []Segment {
	t.Helper()
	segs, err := d.ProbeFd(fd)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestCoalescePlanMergesRuns(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		fd, _ := os.Create("data")
		fd.Write(0, 8<<20)
		s.DropCaches()
		fd.Read(2<<20, 4<<20) // warm the middle
		d := New(os, testConfig())
		plan, err := d.ProbeFd(fd)
		if err != nil {
			t.Fatal(err)
		}
		merged := CoalescePlan(plan)
		if len(merged) >= len(plan) {
			t.Errorf("coalescing did not reduce segments: %d -> %d", len(plan), len(merged))
		}
		// Coverage is preserved exactly.
		var total int64
		seen := map[int64]bool{}
		for _, seg := range merged {
			total += seg.Len
			for off := seg.Off; off < seg.Off+seg.Len; off += 1 << 20 {
				if seen[off] {
					t.Fatalf("range overlap at %d", off)
				}
				seen[off] = true
			}
		}
		if total != 8<<20 {
			t.Errorf("coverage = %d bytes, want full file", total)
		}
		// The fast (cached) region still comes before the cold region.
		if merged[0].ProbeTime > merged[len(merged)-1].ProbeTime {
			t.Error("coalescing reordered fast behind slow")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoalescePlanDegenerate(t *testing.T) {
	if got := CoalescePlan(nil); got != nil {
		t.Error("nil plan changed")
	}
	one := []Segment{{Off: 0, Len: 10}}
	if got := CoalescePlan(one); len(got) != 1 {
		t.Error("single segment changed")
	}
	// Non-adjacent segments stay separate.
	two := []Segment{{Off: 0, Len: 10}, {Off: 20, Len: 10}}
	if got := CoalescePlan(two); len(got) != 2 {
		t.Error("non-adjacent segments merged")
	}
}
