// Package fs implements an FFS-like file system on the simulated disk:
// cylinder groups containing an inode table and a data area, lowest-free
// inode allocation (so i-number order matches creation order in a fresh
// directory), and first-fit data-block allocation (so creation order
// matches layout order until aging fragments the free space).
//
// These are exactly the algorithmic properties the paper's FLDC layer
// assumes as gray-box knowledge (Section 4.2.1): "for a clean file
// system, when small files are created in the same directory, it is
// likely that their creation order matches their data-block layout".
//
// The file system stores metadata only (sizes, block maps, timestamps) —
// applications in this repository are modeled by their access patterns,
// not their byte contents.
package fs

import (
	"fmt"
	"sort"
	"strings"

	"graybox/internal/cache"
	"graybox/internal/disk"
	"graybox/internal/sim"
)

// Ino is an inode number. The paper's FLDC obtains it via stat().
type Ino int64

// AllocPolicy selects the data-block allocator.
type AllocPolicy int

const (
	// AllocFFS is first-fit within the file's cylinder group, spilling
	// into later groups.
	AllocFFS AllocPolicy = iota
	// AllocLFS appends at a global log rotor (an LFS-flavored extension:
	// writes near in time end up near in space).
	AllocLFS
)

// Config sets file system geometry and per-operation CPU costs.
type Config struct {
	GroupCylinders int // cylinders per cylinder group
	InodesPerGroup int
	// InoBase offsets all inode numbers, letting several file systems
	// (one per disk) share a single buffer cache namespace.
	InoBase    Ino
	MaxCluster int // max pages per disk transfer
	Alloc      AllocPolicy

	// Costs (virtual time charged to the calling process).
	SyscallOverhead sim.Time // entering/leaving the kernel
	PageCopy        sim.Time // copying one cached page to user space
	ByteCopy        sim.Time // copying a single probed byte
	DirentCost      sim.Time // per directory entry scanned
}

// DefaultConfig matches the experimental platform description.
func DefaultConfig() Config {
	return Config{
		GroupCylinders:  16,
		InodesPerGroup:  2048,
		MaxCluster:      32, // 128 KB transfers
		SyscallOverhead: 2 * sim.Microsecond,
		PageCopy:        10 * sim.Microsecond, // ~400 MB/s copy rate
		ByteCopy:        500 * sim.Nanosecond,
		DirentCost:      200 * sim.Nanosecond,
	}
}

// Stat is the result of a stat() probe.
type Stat struct {
	Ino   Ino
	Size  int64
	Atime sim.Time
	Mtime sim.Time
	Ctime sim.Time
}

// Inode holds file metadata and the block map.
type Inode struct {
	ino    Ino
	size   int64
	blocks []int64 // disk block of each page
	atime  sim.Time
	mtime  sim.Time
	ctime  sim.Time
	nlink  int
}

// Dir is an in-memory directory node.
type dir struct {
	group   int
	entries map[string]Ino
	subdirs map[string]*dir
}

func newDir(group int) *dir {
	return &dir{group: group, entries: make(map[string]Ino), subdirs: make(map[string]*dir)}
}

type group struct {
	id         int
	inodeStart int64 // disk block of the inode table
	inodeBlks  int64
	dataStart  int64
	dataBlocks int64
	freeData   []bool // indexed from dataStart
	nfree      int64
	rotor      int64 // next-fit allocation position (FFS-style)
	inodeUsed  []bool
	inodeFree  int
}

// FS is the simulated file system.
type FS struct {
	e   *sim.Engine
	d   *disk.Disk
	c   *cache.Cache
	cfg Config

	pageSize     int
	groups       []*group
	inodes       map[Ino]*Inode
	root         *dir
	lfsRotor     int64
	nextDirGroup int

	// Stats for experiments.
	StatCalls int64
}

const inodesPerBlock = 64 // 64-byte on-disk inodes in 4 KB blocks

// New creates an empty file system spanning the whole disk.
func New(e *sim.Engine, d *disk.Disk, c *cache.Cache, cfg Config) *FS {
	if cfg.GroupCylinders <= 0 || cfg.InodesPerGroup <= 0 {
		panic("fs: invalid geometry")
	}
	if cfg.MaxCluster <= 0 {
		cfg.MaxCluster = 32
	}
	dp := d.Params()
	blocksPerCyl := int64(dp.BlocksPerTrack * dp.TracksPerCyl)
	blocksPerGroup := blocksPerCyl * int64(cfg.GroupCylinders)
	ngroups := int(int64(dp.Cylinders) / int64(cfg.GroupCylinders))
	if ngroups == 0 {
		panic("fs: disk smaller than one cylinder group")
	}
	fs := &FS{
		e: e, d: d, c: c, cfg: cfg,
		pageSize: dp.BlockSize,
		inodes:   make(map[Ino]*Inode),
		root:     newDir(0),
	}
	inodeBlks := int64((cfg.InodesPerGroup + inodesPerBlock - 1) / inodesPerBlock)
	for g := 0; g < ngroups; g++ {
		start := int64(g) * blocksPerGroup
		dataBlocks := blocksPerGroup - inodeBlks
		fs.groups = append(fs.groups, &group{
			id:         g,
			inodeStart: start,
			inodeBlks:  inodeBlks,
			dataStart:  start + inodeBlks,
			dataBlocks: dataBlocks,
			freeData:   make([]bool, dataBlocks),
			nfree:      dataBlocks,
			inodeUsed:  make([]bool, cfg.InodesPerGroup),
		})
		for i := range fs.groups[g].freeData {
			fs.groups[g].freeData[i] = true
		}
	}
	return fs
}

// PageSize returns the file system page size in bytes.
func (fs *FS) PageSize() int { return fs.pageSize }

// Cache returns the underlying buffer cache (harness use only).
func (fs *FS) Cache() *cache.Cache { return fs.c }

// Disk returns the underlying disk (harness use only).
func (fs *FS) Disk() *disk.Disk { return fs.d }

// --- path resolution ---

// Path resolution walks '/'-separated segments in place via IndexByte
// rather than strings.Split: every fs call resolves a path, and the
// split's parts slice was a per-operation allocation on otherwise
// allocation-free hot paths (FirstBlockOf, cached Open/Stat).

// lookupDir resolves a directory path.
func (fs *FS) lookupDir(path string) (*dir, error) {
	d := fs.root
	rest := strings.Trim(path, "/")
	for rest != "" {
		part := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		sub, ok := d.subdirs[part]
		if !ok {
			return nil, fmt.Errorf("fs: no such directory: %q", path)
		}
		d = sub
	}
	return d, nil
}

// lookupParent resolves the parent directory and leaf name of path.
func (fs *FS) lookupParent(path string) (*dir, string, error) {
	rest := strings.Trim(path, "/")
	if rest == "" {
		return nil, "", fmt.Errorf("fs: empty path")
	}
	d := fs.root
	for {
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			return d, rest, nil
		}
		sub, ok := d.subdirs[rest[:i]]
		if !ok {
			return nil, "", fmt.Errorf("fs: no such directory in %q", path)
		}
		d = sub
		rest = rest[i+1:]
	}
}

// --- inode numbering ---

func (fs *FS) inoOf(g, idx int) Ino { return fs.cfg.InoBase + Ino(g*fs.cfg.InodesPerGroup+idx+1) }

func (fs *FS) groupOfIno(ino Ino) (g int, idx int) {
	v := int(ino - fs.cfg.InoBase - 1)
	return v / fs.cfg.InodesPerGroup, v % fs.cfg.InodesPerGroup
}

// inodeBlock returns the disk block holding ino's on-disk inode, for
// charging stat() I/O.
func (fs *FS) inodeBlock(ino Ino) (int64, cache.PageID) {
	g, idx := fs.groupOfIno(ino)
	blk := fs.groups[g].inodeStart + int64(idx/inodesPerBlock)
	// Inode-table pages live in the same cache namespace under a
	// reserved negative ino per group (offset by InoBase so separate
	// file systems stay disjoint).
	id := cache.PageID{Ino: int64(-1 - fs.cfg.InoBase - Ino(g)), Index: int64(idx / inodesPerBlock)}
	return blk, id
}

// allocInode takes the lowest free inode in group g (spilling to later
// groups when full), giving ascending i-numbers for successive creations.
func (fs *FS) allocInode(g int) (Ino, error) {
	for off := 0; off < len(fs.groups); off++ {
		gr := fs.groups[(g+off)%len(fs.groups)]
		if gr.inodeFree >= fs.cfg.InodesPerGroup {
			continue
		}
		for i, used := range gr.inodeUsed {
			if !used {
				gr.inodeUsed[i] = true
				gr.inodeFree++
				return fs.inoOf(gr.id, i), nil
			}
		}
	}
	return 0, fmt.Errorf("fs: out of inodes")
}

func (fs *FS) freeInode(ino Ino) {
	g, idx := fs.groupOfIno(ino)
	gr := fs.groups[g]
	if !gr.inodeUsed[idx] {
		panic(fmt.Sprintf("fs: double free of inode %d", ino))
	}
	gr.inodeUsed[idx] = false
	gr.inodeFree--
}

// --- block allocation ---

// allocBlocks allocates n data blocks for a file whose directory lives in
// group g. FFS policy: first-fit from the start of the group so that
// freed holes are reused (which is what ages the layout); spill into
// subsequent groups.
func (fs *FS) allocBlocks(g int, n int64) ([]int64, error) {
	out := make([]int64, 0, n)
	switch fs.cfg.Alloc {
	case AllocLFS:
		total := int64(0)
		for _, gr := range fs.groups {
			total += gr.nfree
		}
		if total < n {
			return nil, fmt.Errorf("fs: out of space")
		}
		span := fs.groups[len(fs.groups)-1].dataStart + fs.groups[len(fs.groups)-1].dataBlocks
		for int64(len(out)) < n {
			blk := fs.lfsRotor
			fs.lfsRotor = (fs.lfsRotor + 1) % span
			if gr, idx := fs.groupForBlock(blk); gr != nil && gr.freeData[idx] {
				gr.freeData[idx] = false
				gr.nfree--
				out = append(out, blk)
			}
		}
		return out, nil
	default:
		// FFS-style next-fit: each group allocates starting from a rotor
		// at its most recent allocation, wrapping around. This is what
		// makes creation order match layout order in a fresh group, and
		// what decouples reused i-numbers from reused holes as the file
		// system ages.
		for off := 0; off < len(fs.groups) && int64(len(out)) < n; off++ {
			gr := fs.groups[(g+off)%len(fs.groups)]
			if gr.nfree == 0 {
				continue
			}
			start := gr.rotor
			for i := int64(0); i < gr.dataBlocks && int64(len(out)) < n; i++ {
				idx := (start + i) % gr.dataBlocks
				if gr.freeData[idx] {
					gr.freeData[idx] = false
					gr.nfree--
					gr.rotor = (idx + 1) % gr.dataBlocks
					out = append(out, gr.dataStart+idx)
				}
			}
		}
		if int64(len(out)) < n {
			fs.freeBlocks(out)
			return nil, fmt.Errorf("fs: out of space")
		}
		return out, nil
	}
}

func (fs *FS) groupForBlock(blk int64) (*group, int64) {
	for _, gr := range fs.groups {
		if blk >= gr.dataStart && blk < gr.dataStart+gr.dataBlocks {
			return gr, blk - gr.dataStart
		}
	}
	return nil, 0
}

func (fs *FS) freeBlocks(blocks []int64) {
	for _, blk := range blocks {
		gr, idx := fs.groupForBlock(blk)
		if gr == nil {
			panic(fmt.Sprintf("fs: freeing metadata block %d", blk))
		}
		if gr.freeData[idx] {
			panic(fmt.Sprintf("fs: double free of block %d", blk))
		}
		gr.freeData[idx] = true
		gr.nfree++
	}
}

// FreeSpace returns the number of free data blocks.
func (fs *FS) FreeSpace() int64 {
	var n int64
	for _, gr := range fs.groups {
		n += gr.nfree
	}
	return n
}

// sortedNames returns directory entry names in sorted order for
// deterministic iteration.
func sortedNames[M ~map[string]V, V any](m M) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
