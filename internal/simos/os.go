package simos

import (
	"graybox/internal/fs"
	"graybox/internal/sim"
	"graybox/internal/vm"
)

// OS is the system-call facade bound to one simulated process. It is the
// complete gray-box surface: ICLs and applications may use these calls
// and nothing else. Internal state (cache contents, page residency, disk
// layout) is reachable only through timing — the covert channel the
// paper's techniques exploit.
type OS struct {
	sys   *System
	p     *sim.Proc
	space *vm.AddrSpace
}

// Spawn starts a simulated process whose body receives its OS handle.
func (s *System) Spawn(name string, delay sim.Time, body func(os *OS)) *sim.Proc {
	return s.Engine.Spawn(name, delay, func(p *sim.Proc) {
		o := &OS{sys: s, p: p, space: s.VM.NewSpace(name)}
		defer o.space.Release()
		body(o)
	})
}

// Run starts a process immediately and drives the simulation until all
// events drain. It is the common entry point for single-process
// experiments.
func (s *System) Run(name string, body func(os *OS)) error {
	p := s.Spawn(name, 0, body)
	s.Engine.Run()
	return p.Err()
}

// Proc exposes the underlying process (for coordination primitives).
func (o *OS) Proc() *sim.Proc { return o.p }

// System returns the machine this process runs on (harness escapes only;
// gray-box code must not touch it).
func (o *OS) System() *System { return o.sys }

// Now returns the current time — the cheap, high-resolution timer of the
// gray toolbox (rdtsc-style, no syscall overhead charged).
func (o *OS) Now() sim.Time { return o.p.Now() }

// Sleep blocks the process for d.
func (o *OS) Sleep(d sim.Time) { o.p.Sleep(d) }

// Compute charges d of CPU time (application work such as string
// matching or key comparison). With Config.CPUs unset this is a pure
// timer — concurrent bursts overlap as if every process had its own
// processor; with CPUs >= 1 the burst contends for a simulated CPU
// through the scheduler's run queues.
func (o *OS) Compute(d sim.Time) {
	if d > 0 {
		o.p.Compute(d)
	}
}

// PageSize returns the system page size. (Exposed by real systems via
// getpagesize(2), so gray-box code may rely on it.)
func (o *OS) PageSize() int { return o.sys.PageSize() }

// --- file system calls ---

// Fd is an open file descriptor.
type Fd struct {
	os   *OS
	file *fs.File
}

// Open opens an existing file.
func (o *OS) Open(path string) (*Fd, error) {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysOpen, o.sysEnter(sysOpen))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return nil, err
	}
	file, err := f.Open(o.p, rel)
	if err != nil {
		return nil, err
	}
	return &Fd{os: o, file: file}, nil
}

// Create creates a new file.
func (o *OS) Create(path string) (*Fd, error) {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysCreate, o.sysEnter(sysCreate))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return nil, err
	}
	file, err := f.Create(o.p, rel)
	if err != nil {
		return nil, err
	}
	return &Fd{os: o, file: file}, nil
}

// Size returns the file's length in bytes.
func (fd *Fd) Size() int64 { return fd.file.Size() }

// Path returns the path the descriptor was opened with.
func (fd *Fd) Path() string { return fd.file.Path() }

// Ino returns the file's inode number (also available via Stat).
func (fd *Fd) Ino() int64 { return int64(fd.file.Ino()) }

// Read reads n bytes at offset off.
func (fd *Fd) Read(off, n int64) error {
	if o := fd.os; o.sys.sysTel != nil {
		defer o.sysExit(sysRead, o.sysEnter(sysRead))
	}
	return fd.file.Read(fd.os.p, off, n)
}

// ReadByteAt reads one byte at off — the FCCD probe primitive.
func (fd *Fd) ReadByteAt(off int64) error {
	if o := fd.os; o.sys.sysTel != nil {
		defer o.sysExit(sysReadByte, o.sysEnter(sysReadByte))
	}
	return fd.file.ReadByteAt(fd.os.p, off)
}

// Write writes n bytes at offset off, extending the file as needed.
func (fd *Fd) Write(off, n int64) error {
	if o := fd.os; o.sys.sysTel != nil {
		defer o.sysExit(sysWrite, o.sysEnter(sysWrite))
	}
	return fd.file.Write(fd.os.p, off, n)
}

// Mkdir creates a directory.
func (o *OS) Mkdir(path string) error {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysMkdir, o.sysEnter(sysMkdir))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return err
	}
	return f.Mkdir(o.p, rel)
}

// Stat returns file metadata — the FLDC probe.
func (o *OS) Stat(path string) (fs.Stat, error) {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysStat, o.sysEnter(sysStat))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return fs.Stat{}, err
	}
	return f.Stat(o.p, rel)
}

// Utimes sets access/modification times.
func (o *OS) Utimes(path string, atime, mtime sim.Time) error {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysUtimes, o.sysEnter(sysUtimes))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return err
	}
	return f.Utimes(o.p, rel, atime, mtime)
}

// Readdir lists a directory's file names, sorted.
func (o *OS) Readdir(path string) ([]string, error) {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysReaddir, o.sysEnter(sysReaddir))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return nil, err
	}
	return f.Readdir(o.p, rel)
}

// ReaddirDirs lists a directory's subdirectory names, sorted.
func (o *OS) ReaddirDirs(path string) ([]string, error) {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysReaddir, o.sysEnter(sysReaddir))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return nil, err
	}
	return f.ReaddirDirs(o.p, rel)
}

// Unlink removes a file.
func (o *OS) Unlink(path string) error {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysUnlink, o.sysEnter(sysUnlink))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return err
	}
	return f.Unlink(o.p, rel)
}

// Rmdir removes an empty directory.
func (o *OS) Rmdir(path string) error {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysRmdir, o.sysEnter(sysRmdir))
	}
	f, rel, err := o.sys.resolve(path)
	if err != nil {
		return err
	}
	return f.Rmdir(o.p, rel)
}

// Rename moves a file or directory within one file system.
func (o *OS) Rename(oldPath, newPath string) error {
	if o.sys.sysTel != nil {
		defer o.sysExit(sysRename, o.sysEnter(sysRename))
	}
	f1, rel1, err := o.sys.resolve(oldPath)
	if err != nil {
		return err
	}
	f2, rel2, err := o.sys.resolve(newPath)
	if err != nil {
		return err
	}
	if f1 != f2 {
		return errCrossDevice
	}
	return f1.Rename(o.p, rel1, rel2)
}

var errCrossDevice = crossDeviceError{}

type crossDeviceError struct{}

func (crossDeviceError) Error() string { return "simos: cross-device rename" }

// --- memory calls ---

// MemRegion names an anonymous allocation (a malloc'd arena).
type MemRegion struct {
	id    vm.RegionID
	pages int64
}

// Pages returns the region's size in pages.
func (m MemRegion) Pages() int64 { return m.pages }

// Malloc reserves bytes of anonymous memory (lazily faulted, like
// malloc + demand zero).
func (o *OS) Malloc(bytes int64) MemRegion {
	ps := int64(o.sys.PageSize())
	npages := (bytes + ps - 1) / ps
	if npages == 0 {
		npages = 1
	}
	return MemRegion{id: o.space.Alloc(npages), pages: npages}
}

// MallocPages reserves npages of anonymous memory.
func (o *OS) MallocPages(npages int64) MemRegion {
	return MemRegion{id: o.space.Alloc(npages), pages: npages}
}

// Free releases a region.
func (o *OS) Free(m MemRegion) { o.space.Free(m.id) }

// Touch accesses one page of a region (write forces residency). Touch is
// metrics-only telemetry (latency histogram, no span): MAC probes it in
// tight loops where a span per page would swamp the span log.
func (o *OS) Touch(m MemRegion, page int64, write bool) {
	if t := o.sys.sysTel; t != nil {
		start := o.p.Now()
		o.space.Touch(o.p, m.id, page, write)
		t.hist[sysTouch].Observe(int64(o.p.Now() - start))
		return
	}
	o.space.Touch(o.p, m.id, page, write)
}

// TouchRange touches pages [from, to) of a region in order.
func (o *OS) TouchRange(m MemRegion, from, to int64, write bool) {
	for pg := from; pg < to; pg++ {
		o.Touch(m, pg, write)
	}
}

// ResidentPages reports how many pages of m are resident — ground truth
// for harness validation only (Linux exposes mincore-like data, but the
// paper's MAC deliberately avoids relying on it; see Section 4.3.1).
func (o *OS) ResidentPages(m MemRegion) int { return o.space.ResidentIn(m.id) }
