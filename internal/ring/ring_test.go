package ring

import (
	"container/list"
	"math/rand"
	"testing"
)

// collect walks the list front to back.
func collect(l *List[int]) []int {
	var out []int
	for h := l.Front(); h != None; h = l.Next(h) {
		out = append(out, *l.At(h))
	}
	return out
}

// collectBack walks the list back to front.
func collectBack(l *List[int]) []int {
	var out []int
	for h := l.Back(); h != None; h = l.Prev(h) {
		out = append(out, *l.At(h))
	}
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestZeroValueEmpty(t *testing.T) {
	var l List[int]
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if l.Front() != None || l.Back() != None {
		t.Fatal("Front/Back of empty list should be None")
	}
}

func TestPushRemoveOrder(t *testing.T) {
	var l List[int]
	h2 := l.PushBack(2)
	l.PushBack(3)
	l.PushFront(1)
	if got := collect(&l); !equal(got, []int{1, 2, 3}) {
		t.Fatalf("collect = %v, want [1 2 3]", got)
	}
	if got := collectBack(&l); !equal(got, []int{3, 2, 1}) {
		t.Fatalf("collectBack = %v, want [3 2 1]", got)
	}
	if v := l.Remove(h2); v != 2 {
		t.Fatalf("Remove = %d, want 2", v)
	}
	if got := collect(&l); !equal(got, []int{1, 3}) {
		t.Fatalf("after remove: %v, want [1 3]", got)
	}
}

func TestInsertBefore(t *testing.T) {
	var l List[int]
	h3 := l.PushBack(3)
	l.PushFront(1)
	h2 := l.InsertBefore(2, h3)
	if got := collect(&l); !equal(got, []int{1, 2, 3}) {
		t.Fatalf("collect = %v, want [1 2 3]", got)
	}
	l.InsertBefore(0, l.Front())
	if got := collect(&l); !equal(got, []int{0, 1, 2, 3}) {
		t.Fatalf("collect = %v, want [0 1 2 3]", got)
	}
	if *l.At(h2) != 2 {
		t.Fatalf("At(h2) = %d, want 2 (handle moved?)", *l.At(h2))
	}
}

func TestMoveToFrontBack(t *testing.T) {
	var l List[int]
	h1 := l.PushBack(1)
	l.PushBack(2)
	h3 := l.PushBack(3)
	l.MoveToFront(h3)
	if got := collect(&l); !equal(got, []int{3, 1, 2}) {
		t.Fatalf("after MoveToFront: %v", got)
	}
	l.MoveToFront(h3) // already front: no-op
	if got := collect(&l); !equal(got, []int{3, 1, 2}) {
		t.Fatalf("after no-op MoveToFront: %v", got)
	}
	l.MoveToBack(h1)
	if got := collect(&l); !equal(got, []int{3, 2, 1}) {
		t.Fatalf("after MoveToBack: %v", got)
	}
	l.MoveToBack(h1) // already back: no-op
	if got := collect(&l); !equal(got, []int{3, 2, 1}) {
		t.Fatalf("after no-op MoveToBack: %v", got)
	}
}

func TestNextCyclicWraps(t *testing.T) {
	var l List[int]
	a := l.PushBack(1)
	b := l.PushBack(2)
	if l.NextCyclic(a) != b {
		t.Fatal("NextCyclic should advance")
	}
	if l.NextCyclic(b) != a {
		t.Fatal("NextCyclic should wrap to front")
	}
	// Single element wraps to itself.
	l.Remove(b)
	if l.NextCyclic(a) != a {
		t.Fatal("NextCyclic on singleton should return itself")
	}
}

// TestNextCyclicSingleAfterChurn pins the singleton wrap through handle
// positions the randomized equivalence test cannot reach: a lone element
// that is not in arena slot 1.
func TestNextCyclicSingleAfterChurn(t *testing.T) {
	var l List[int]
	a := l.PushBack(1)
	b := l.PushBack(2)
	c := l.PushBack(3)
	l.Remove(a)
	l.Remove(c)
	if got := l.NextCyclic(b); got != b {
		t.Fatalf("NextCyclic on churned singleton = %v, want %v", got, b)
	}
	// And from the sentinel: the hand of an idle clock starts at None.
	if got := l.NextCyclic(None); got != b {
		t.Fatalf("NextCyclic(None) = %v, want front %v", got, b)
	}
}

// TestNextCyclicEmpty pins the empty-ring hand advance: with no elements
// the sentinel's next is itself, so the walk must yield None, not spin
// into a phantom slot.
func TestNextCyclicEmpty(t *testing.T) {
	var l List[int]
	l.PushBack(1)
	l.Remove(l.Front())
	if got := l.NextCyclic(None); got != None {
		t.Fatalf("NextCyclic(None) on empty ring = %v, want None", got)
	}
}

// TestMoveToFrontSingle pins the single-element and front-element no-op
// paths of MoveToFront (and MoveToBack's mirror).
func TestMoveToFrontSingle(t *testing.T) {
	var l List[int]
	h := l.PushBack(7)
	l.MoveToFront(h)
	if l.Len() != 1 || l.Front() != h || l.Back() != h {
		t.Fatal("MoveToFront broke a singleton")
	}
	if got := collect(&l); !equal(got, []int{7}) {
		t.Fatalf("collect = %v, want [7]", got)
	}
	l.MoveToBack(h)
	if l.Len() != 1 || l.Front() != h || l.Back() != h {
		t.Fatal("MoveToBack broke a singleton")
	}
	// The links must still close through the sentinel: inserts after the
	// moves land correctly.
	l.PushFront(6)
	l.PushBack(8)
	if got := collect(&l); !equal(got, []int{6, 7, 8}) {
		t.Fatalf("collect after singleton moves = %v", got)
	}
}

// TestClone checks Clone produces an equal, independent list with stable
// handles.
func TestClone(t *testing.T) {
	var l List[int]
	hs := make([]Handle, 8)
	for i := range hs {
		hs[i] = l.PushBack(i)
	}
	l.Remove(hs[3]) // leave a free-list hole so Clone copies that too
	l.MoveToFront(hs[6])

	c := l.Clone()
	if got, want := collect(&c), collect(&l); !equal(got, want) {
		t.Fatalf("clone order %v, want %v", got, want)
	}
	// Handles remain valid and point at the same values in the clone.
	for i, h := range hs {
		if i == 3 {
			continue
		}
		if *c.At(h) != i {
			t.Fatalf("clone At(hs[%d]) = %d, want %d", i, *c.At(h), i)
		}
	}
	// Mutating the clone leaves the original untouched, and the clone's
	// free list works: two holes (hs[3] copied from the original, hs[0]
	// removed here) absorb two pushes without growing the arena.
	c.Remove(hs[0])
	arena := len(c.nodes)
	c.PushBack(100)
	c.PushBack(101)
	if len(c.nodes) != arena {
		t.Fatalf("clone free list broken: arena %d -> %d across two pushes into two holes", arena, len(c.nodes))
	}
	if got := collect(&l); !equal(got, []int{6, 0, 1, 2, 4, 5, 7}) {
		t.Fatalf("original disturbed by clone mutation: %v", got)
	}
}

// TestCloneIntoAllocs is the snapshot path's contract: restoring into a
// previously sized destination allocates nothing.
func TestCloneIntoAllocs(t *testing.T) {
	var l List[int]
	for i := 0; i < 256; i++ {
		l.PushBack(i)
	}
	var dst List[int]
	l.CloneInto(&dst) // size the destination once
	allocs := testing.AllocsPerRun(100, func() {
		l.CloneInto(&dst)
	})
	if allocs != 0 {
		t.Fatalf("CloneInto steady-state allocs/op = %v, want 0", allocs)
	}
	if got, want := collect(&dst), collect(&l); !equal(got, want) {
		t.Fatalf("CloneInto order %v, want %v", got, want)
	}
}

func TestSlotReuse(t *testing.T) {
	var l List[int]
	h := l.PushBack(1)
	arena := len(l.nodes)
	l.Remove(h)
	l.PushBack(2)
	if len(l.nodes) != arena {
		t.Fatalf("arena grew from %d to %d across remove+push", arena, len(l.nodes))
	}
}

func TestInit(t *testing.T) {
	var l List[string]
	l.PushBack("a")
	l.PushBack("b")
	l.Init()
	if l.Len() != 0 || l.Front() != None {
		t.Fatal("Init should empty the list")
	}
	h := l.PushBack("c")
	if *l.At(h) != "c" || l.Len() != 1 {
		t.Fatal("list unusable after Init")
	}
	if got := cap(l.nodes); got < 2 {
		t.Fatalf("Init dropped arena capacity: %d", got)
	}
}

// TestAgainstContainerList drives the same random operation sequence
// through List and container/list and checks they always agree.
func TestAgainstContainerList(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var l List[int]
	ref := list.New()
	handles := map[int]Handle{}    // value -> ring handle
	els := map[int]*list.Element{} // value -> container/list element
	var vals []int
	next := 0

	snapshot := func() []int {
		var out []int
		for e := ref.Front(); e != nil; e = e.Next() {
			out = append(out, e.Value.(int))
		}
		return out
	}
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(6); {
		case op == 0 || len(vals) == 0: // push back
			handles[next] = l.PushBack(next)
			els[next] = ref.PushBack(next)
			vals = append(vals, next)
			next++
		case op == 1: // push front
			handles[next] = l.PushFront(next)
			els[next] = ref.PushFront(next)
			vals = append(vals, next)
			next++
		case op == 2: // remove random
			i := rng.Intn(len(vals))
			v := vals[i]
			if got := l.Remove(handles[v]); got != v {
				t.Fatalf("step %d: Remove returned %d, want %d", step, got, v)
			}
			ref.Remove(els[v])
			delete(handles, v)
			delete(els, v)
			vals[i] = vals[len(vals)-1]
			vals = vals[:len(vals)-1]
		case op == 3: // move to front
			v := vals[rng.Intn(len(vals))]
			l.MoveToFront(handles[v])
			ref.MoveToFront(els[v])
		case op == 4: // move to back
			v := vals[rng.Intn(len(vals))]
			l.MoveToBack(handles[v])
			ref.MoveToBack(els[v])
		default: // insert before random
			v := vals[rng.Intn(len(vals))]
			handles[next] = l.InsertBefore(next, handles[v])
			els[next] = ref.InsertBefore(next, els[v])
			vals = append(vals, next)
			next++
		}
		if l.Len() != ref.Len() {
			t.Fatalf("step %d: Len = %d, ref = %d", step, l.Len(), ref.Len())
		}
		if step%97 == 0 {
			if got, want := collect(&l), snapshot(); !equal(got, want) {
				t.Fatalf("step %d: order diverged\n got %v\nwant %v", step, got, want)
			}
		}
	}
	if got, want := collect(&l), snapshot(); !equal(got, want) {
		t.Fatalf("final order diverged\n got %v\nwant %v", got, want)
	}
}

// TestSteadyStateAllocs is the package's allocation contract: once the
// arena holds the working set, remove+insert cycles and moves are free.
func TestSteadyStateAllocs(t *testing.T) {
	var l List[int]
	hs := make([]Handle, 64)
	for i := range hs {
		hs[i] = l.PushBack(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		l.MoveToFront(hs[i%64])
		v := l.Remove(hs[(i+7)%64])
		hs[(i+7)%64] = l.PushBack(v)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkMoveToFront(b *testing.B) {
	var l List[int]
	hs := make([]Handle, 1024)
	for i := range hs {
		hs[i] = l.PushBack(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.MoveToFront(hs[i%1024])
	}
}

func BenchmarkRemovePushBack(b *testing.B) {
	var l List[int]
	hs := make([]Handle, 1024)
	for i := range hs {
		hs[i] = l.PushBack(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := l.Remove(hs[i%1024])
		hs[i%1024] = l.PushBack(v)
	}
}
