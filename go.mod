module graybox

go 1.22
