// Package audit is the oracle-grounded inference audit layer: every ICL
// prediction is scored against the simulator's ground truth at the
// moment the prediction is made. The paper's central claim — that timing
// alone reveals hidden OS state — becomes continuously testable: the
// simulator knows the real cache contents, disk layout, and free memory,
// and the auditor compares each inference against that truth the way
// "Observing the Invisible" validates hardware-cache inference.
//
// Scored inferences, per ICL:
//
//   - FCCD: hit/miss classification of prediction units, as a confusion
//     matrix (a unit predicted cached counts TP when a majority of its
//     pages are truly resident).
//   - FLDC: predicted access order vs true on-disk order, as
//     Kendall-tau-style concordant/discordant pair counts.
//   - MAC: admitted bytes vs the memory truly available when gb_alloc
//     was entered, as absolute and relative error.
//
// Each audited prediction also records its virtual timestamp and probe
// cost, so reports expose accuracy time-series and probe-cost-vs-
// accuracy frontiers.
//
// Design constraints match internal/telemetry:
//
//   - Disabled auditing is free. A nil *Auditor is the disabled state;
//     every method is a no-op, so instrumented ICL hot paths pay one nil
//     check and zero allocations when auditing is off.
//   - The package does not import the simulator. Ground truth arrives
//     through the Oracle interface, keeping the dependency arrow
//     pointing from the simulator to its instrumentation.
//   - Reports are deterministic: records carry virtual timestamps only,
//     and export ordering is canonical, so identical simulations export
//     identical bytes at any worker-pool width.
package audit

// Oracle exposes simulator ground truth. Implemented by the simulated
// OS (harness side); ICLs never see through it — they only hand the
// auditor their predictions.
type Oracle interface {
	// NowNS is the current virtual time in nanoseconds.
	NowNS() int64
	// PageSize is the VM/file page size in bytes.
	PageSize() int64
	// ResidentPages reports which of the first npages pages of the file
	// with inode number ino are truly in the file cache.
	ResidentPages(ino int64, npages int64) []bool
	// ResidentPage reports whether a single page of ino is truly in the
	// file cache — the allocation-free point query for per-decision
	// audits (stash admissions happen per block, not per file).
	ResidentPage(ino, page int64) bool
	// FirstBlock returns the disk block holding the first page of path
	// (false when the file does not exist or has no data blocks).
	FirstBlock(path string) (int64, bool)
	// AvailableBytes is the memory truly available to applications:
	// free frames plus reclaimable cache.
	AvailableBytes() int64
}

// DefaultMaxRecords bounds each ICL's per-prediction series (first-N
// kept, the rest counted as drops and still folded into the aggregate
// statistics). Keeping the prefix makes exports independent of when
// they happen.
const DefaultMaxRecords = 1 << 14

// Auditor scores one platform's ICL predictions against its oracle.
// The zero value of *Auditor (nil) is the disabled state: every method
// is a no-op and every query returns zero.
type Auditor struct {
	o          Oracle
	label      string
	maxRecords int

	fccd  fccdState
	fldc  fldcState
	mac   macState
	stash stashState
}

// New creates an auditor reading ground truth from o.
func New(label string, o Oracle) *Auditor {
	if o == nil {
		panic("audit: nil oracle")
	}
	return &Auditor{o: o, label: label, maxRecords: DefaultMaxRecords}
}

// Label returns the auditor's platform label ("" for nil).
func (a *Auditor) Label() string {
	if a == nil {
		return ""
	}
	return a.label
}

// SetLabel renames the auditor (the experiment harness prefixes labels
// with the experiment id before export). No-op on nil.
func (a *Auditor) SetLabel(label string) {
	if a != nil {
		a.label = label
	}
}

// SetMaxRecords adjusts the per-ICL series bound (<= 0 restores the
// default).
func (a *Auditor) SetMaxRecords(n int) {
	if a == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxRecords
	}
	a.maxRecords = n
}

// Confusion is a binary-classification confusion matrix ("cached" is
// the positive class).
type Confusion struct {
	TP int64 `json:"tp"`
	FP int64 `json:"fp"`
	TN int64 `json:"tn"`
	FN int64 `json:"fn"`
}

func (c *Confusion) add(d Confusion) {
	c.TP += d.TP
	c.FP += d.FP
	c.TN += d.TN
	c.FN += d.FN
}

// Total returns the number of classified units.
func (c Confusion) Total() int64 { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, 1 when empty (nothing misclassified).
func (c Confusion) Accuracy() float64 {
	if t := c.Total(); t > 0 {
		return float64(c.TP+c.TN) / float64(t)
	}
	return 1
}

// Precision returns TP/(TP+FP), 1 when no positive predictions.
func (c Confusion) Precision() float64 {
	if d := c.TP + c.FP; d > 0 {
		return float64(c.TP) / float64(d)
	}
	return 1
}

// Recall returns TP/(TP+FN), 1 when no positive truth.
func (c Confusion) Recall() float64 {
	if d := c.TP + c.FN; d > 0 {
		return float64(c.TP) / float64(d)
	}
	return 1
}

// --- FCCD ---

// RangePrediction is one FCCD access-plan segment's classification.
type RangePrediction struct {
	Off, Len        int64
	PredictedCached bool
}

// FilePrediction is one FCCD whole-file classification (OrderFiles).
type FilePrediction struct {
	Ino, SizeBytes  int64
	PredictedCached bool
}

// FCCDRecord scores one FCCD prediction pass (one ProbeFile/OrderFiles
// call) against true cache residency at that moment.
type FCCDRecord struct {
	AtNS      int64     `json:"at_ns"`
	Units     int64     `json:"units"`
	Confusion Confusion `json:"confusion"`
	Accuracy  float64   `json:"accuracy"`
	Probes    int64     `json:"probes"`
	ProbeNS   int64     `json:"probe_ns"`
}

type fccdState struct {
	agg         Confusion
	predictions int64
	probes      int64
	probeNS     int64
	series      []FCCDRecord
	drops       int64
}

// FCCDRanges audits one access plan for the file with inode ino and
// size sizeBytes: each segment's predicted class vs the majority
// residency of its pages. probes/probeNS are the pass's probe cost.
func (a *Auditor) FCCDRanges(ino, sizeBytes int64, preds []RangePrediction, probes, probeNS int64) {
	if a == nil || len(preds) == 0 {
		return
	}
	ps := a.o.PageSize()
	npages := (sizeBytes + ps - 1) / ps
	bm := a.o.ResidentPages(ino, npages)
	var c Confusion
	for _, pr := range preds {
		lo := pr.Off / ps
		hi := (pr.Off + pr.Len + ps - 1) / ps
		if hi > int64(len(bm)) {
			hi = int64(len(bm))
		}
		if hi <= lo {
			continue
		}
		resident := int64(0)
		for pg := lo; pg < hi; pg++ {
			if bm[pg] {
				resident++
			}
		}
		c.score(pr.PredictedCached, 2*resident >= hi-lo)
	}
	a.recordFCCD(c, probes, probeNS)
}

// FCCDFiles audits one cross-file ordering pass: each file's predicted
// class vs the majority residency of the whole file.
func (a *Auditor) FCCDFiles(preds []FilePrediction, probes, probeNS int64) {
	if a == nil || len(preds) == 0 {
		return
	}
	ps := a.o.PageSize()
	var c Confusion
	for _, pr := range preds {
		npages := (pr.SizeBytes + ps - 1) / ps
		if npages == 0 {
			npages = 1
		}
		bm := a.o.ResidentPages(pr.Ino, npages)
		resident := int64(0)
		for _, in := range bm {
			if in {
				resident++
			}
		}
		c.score(pr.PredictedCached, 2*resident >= npages)
	}
	a.recordFCCD(c, probes, probeNS)
}

// score classifies one (predicted, truth) pair into the matrix.
func (c *Confusion) score(predicted, truth bool) {
	switch {
	case predicted && truth:
		c.TP++
	case predicted && !truth:
		c.FP++
	case !predicted && !truth:
		c.TN++
	default:
		c.FN++
	}
}

func (a *Auditor) recordFCCD(c Confusion, probes, probeNS int64) {
	st := &a.fccd
	st.agg.add(c)
	st.predictions++
	st.probes += probes
	st.probeNS += probeNS
	rec := FCCDRecord{
		AtNS: a.o.NowNS(), Units: c.Total(), Confusion: c,
		Accuracy: c.Accuracy(), Probes: probes, ProbeNS: probeNS,
	}
	if len(st.series) >= a.maxRecords {
		st.drops++
		return
	}
	st.series = append(st.series, rec)
}

// --- FLDC ---

// FLDCRecord scores one predicted access order against the true
// on-disk block order via Kendall-tau-style pair counts.
type FLDCRecord struct {
	AtNS       int64   `json:"at_ns"`
	Files      int64   `json:"files"`
	Pairs      int64   `json:"pairs"`
	Concordant int64   `json:"concordant"`
	Discordant int64   `json:"discordant"`
	Tau        float64 `json:"tau"`
	Accuracy   float64 `json:"accuracy"`
	Probes     int64   `json:"probes"`
	ProbeNS    int64   `json:"probe_ns"`
}

type fldcState struct {
	orders     int64
	pairs      int64
	concordant int64
	discordant int64
	probes     int64
	probeNS    int64
	series     []FLDCRecord
	drops      int64
}

// FLDCOrder audits paths (in predicted access order) against their true
// first-data-block order. A pair ordered the same way on disk is
// concordant, the opposite way discordant; ties and missing files are
// dropped. probes/probeNS are the stat-probe cost of the pass.
func (a *Auditor) FLDCOrder(paths []string, probes, probeNS int64) {
	if a == nil || len(paths) < 2 {
		return
	}
	blocks := make([]int64, 0, len(paths))
	for _, p := range paths {
		if b, ok := a.o.FirstBlock(p); ok {
			blocks = append(blocks, b)
		}
	}
	var conc, disc int64
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			switch {
			case blocks[i] < blocks[j]:
				conc++
			case blocks[i] > blocks[j]:
				disc++
			}
		}
	}
	pairs := conc + disc
	rec := FLDCRecord{
		AtNS: a.o.NowNS(), Files: int64(len(blocks)),
		Pairs: pairs, Concordant: conc, Discordant: disc,
		Tau: 1, Accuracy: 1, Probes: probes, ProbeNS: probeNS,
	}
	if pairs > 0 {
		rec.Tau = float64(conc-disc) / float64(pairs)
		rec.Accuracy = float64(conc) / float64(pairs)
	}
	st := &a.fldc
	st.orders++
	st.pairs += pairs
	st.concordant += conc
	st.discordant += disc
	st.probes += probes
	st.probeNS += probeNS
	if len(st.series) >= a.maxRecords {
		st.drops++
		return
	}
	st.series = append(st.series, rec)
}

// --- MAC ---

// MACRecord scores one gb_alloc call: bytes admitted vs the memory the
// oracle reported available when the call was entered (clamped to the
// request's [min, max] window).
type MACRecord struct {
	AtNS        int64   `json:"at_ns"`
	OracleBytes int64   `json:"oracle_bytes"`
	ReqMin      int64   `json:"req_min"`
	ReqMax      int64   `json:"req_max"`
	GotBytes    int64   `json:"got_bytes"`
	Expected    int64   `json:"expected_bytes"`
	AbsErr      int64   `json:"abs_err_bytes"`
	RelErr      float64 `json:"rel_err"`
	Admitted    bool    `json:"admitted"`
	Accuracy    float64 `json:"accuracy"`
	PagesProbed int64   `json:"pages_probed"`
	ProbeNS     int64   `json:"probe_ns"`
}

type macState struct {
	calls       int64
	admits      int64
	sumAbsErr   int64
	maxAbsErr   int64
	sumRelErr   float64
	sumAccuracy float64
	pagesProbed int64
	probeNS     int64
	series      []MACRecord
	drops       int64
	last        MACRecord // kept even when the series is full
}

// OracleAvailableBytes snapshots the truly-available memory — MAC calls
// it on gb_alloc entry so the later MACAlloc scores against the state
// the probe actually raced with. Returns 0 on nil (the value is then
// never used: the paired MACAlloc is a no-op too).
func (a *Auditor) OracleAvailableBytes() int64 {
	if a == nil {
		return 0
	}
	return a.o.AvailableBytes()
}

// MACAlloc audits one gb_alloc outcome. oracleBytes is the
// OracleAvailableBytes snapshot from call entry; got is the admitted
// byte count (0 on rejection); pagesProbed/probeNS the probe-loop cost.
func (a *Auditor) MACAlloc(oracleBytes, reqMin, reqMax, got int64, admitted bool, pagesProbed, probeNS int64) {
	if a == nil {
		return
	}
	expected := oracleBytes
	if expected < 0 {
		expected = 0
	}
	if expected > reqMax {
		expected = reqMax
	}
	rec := MACRecord{
		AtNS: a.o.NowNS(), OracleBytes: oracleBytes,
		ReqMin: reqMin, ReqMax: reqMax, GotBytes: got, Expected: expected,
		Admitted: admitted, PagesProbed: pagesProbed, ProbeNS: probeNS,
	}
	if !admitted && expected < reqMin {
		// Correct rejection: less than min truly available.
		rec.Accuracy = 1
	} else {
		rec.AbsErr = got - expected
		if expected > 0 {
			rec.RelErr = float64(rec.AbsErr) / float64(expected)
		} else if got > 0 {
			rec.RelErr = 1 // admitted memory that did not exist
		}
		rec.Accuracy = 1 - rec.RelErr
		if rec.RelErr < 0 {
			rec.Accuracy = 1 + rec.RelErr
		}
		if rec.Accuracy < 0 {
			rec.Accuracy = 0
		}
	}
	st := &a.mac
	st.calls++
	if admitted {
		st.admits++
	}
	abs := rec.AbsErr
	if abs < 0 {
		abs = -abs
	}
	st.sumAbsErr += abs
	if abs > st.maxAbsErr {
		st.maxAbsErr = abs
	}
	rel := rec.RelErr
	if rel < 0 {
		rel = -rel
	}
	st.sumRelErr += rel
	st.sumAccuracy += rec.Accuracy
	st.pagesProbed += pagesProbed
	st.probeNS += probeNS
	st.last = rec
	if len(st.series) >= a.maxRecords {
		st.drops++
		return
	}
	st.series = append(st.series, rec)
}

// --- stash ---

// StashRecord scores one stash admission decision. The positive class
// is "worth admitting": truth is !Resident (the OS cache would not have
// served the block), prediction is Admitted. Wasted marks the FP cell —
// a block admitted although the OS cache already held it, so the stash
// burned quota double-caching content a read would have hit anyway.
type StashRecord struct {
	AtNS      int64 `json:"at_ns"`
	Resident  bool  `json:"resident"`
	Predicted bool  `json:"predicted_resident"`
	Admitted  bool  `json:"admitted"`
	Wasted    bool  `json:"wasted"`
	ProbeNS   int64 `json:"probe_ns"`
}

type stashState struct {
	agg             Confusion
	decisions       int64
	admits          int64
	wasted          int64
	probes          int64
	probeNS         int64
	offlineMisses   int64
	offlineResident int64
	series          []StashRecord
	drops           int64
}

// OracleResidentPage snapshots one page's true cache residency. The
// stash calls it immediately before fetching a block from its source —
// the fetch itself inserts the page, so truth read afterwards would be
// always-resident. Returns false on nil (the paired StashAdmit is a
// no-op too).
func (a *Auditor) OracleResidentPage(ino, page int64) bool {
	if a == nil {
		return false
	}
	return a.o.ResidentPage(ino, page)
}

// StashAdmit audits one admission decision. resident is the
// OracleResidentPage snapshot from before the source fetch; predicted
// is the ICL's residency inference (timed-probe classification);
// admitted is what the stash actually did. probes/probeNS are the
// decision's probe cost.
func (a *Auditor) StashAdmit(resident, predicted, admitted bool, probes, probeNS int64) {
	if a == nil {
		return
	}
	var c Confusion
	c.score(admitted, !resident)
	st := &a.stash
	st.agg.add(c)
	st.decisions++
	if admitted {
		st.admits++
	}
	wasted := admitted && resident
	if wasted {
		st.wasted++
	}
	st.probes += probes
	st.probeNS += probeNS
	if len(st.series) >= a.maxRecords {
		st.drops++
		return
	}
	st.series = append(st.series, StashRecord{
		AtNS: a.o.NowNS(), Resident: resident, Predicted: predicted,
		Admitted: admitted, Wasted: wasted, ProbeNS: probeNS,
	})
}

// StashOfflineMiss counts one degraded-mode read the stash could not
// serve. resident reports whether the (unreachable) OS cache held the
// block — the admission policy's missed opportunities show up here.
func (a *Auditor) StashOfflineMiss(resident bool) {
	if a == nil {
		return
	}
	a.stash.offlineMisses++
	if resident {
		a.stash.offlineResident++
	}
}

// LastMAC returns the most recent MAC record (harnesses read the
// admitted/oracle numbers from here instead of keeping their own
// bookkeeping). ok is false on nil or before any MACAlloc.
func (a *Auditor) LastMAC() (MACRecord, bool) {
	if a == nil || a.mac.calls == 0 {
		return MACRecord{}, false
	}
	return a.mac.last, true
}
