package cache

import (
	"container/list"
	"fmt"

	"graybox/internal/disk"
	"graybox/internal/mem"
	"graybox/internal/sim"
	"graybox/internal/telemetry"
)

// BlockAddr locates a page's backing storage for write-back.
type BlockAddr struct {
	Disk  *disk.Disk
	Block int64
}

// Config sets a cache's size behavior.
type Config struct {
	// Capacity caps the number of cached pages. Zero means "no private
	// cap" (the shared frame pool is the only limit), which is the
	// Linux/Solaris unified-cache configuration.
	Capacity int
	// PrivateFrames, when true, gives the cache its own frames outside
	// the pool (NetBSD 1.5's fixed-size buffer cache). Capacity must be
	// set.
	PrivateFrames bool
	// FloorPages is the minimum residency the cache defends against pool
	// reclaim (ignored for private frames).
	FloorPages int
	// MaxDirty throttles writers: beyond this many dirty pages, the
	// dirtying process synchronously cleans pages (bdflush-style).
	MaxDirty int
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses   int64
	Evictions      int64
	Writebacks     int64
	ThrottleFlushs int64
}

type cpage struct {
	id    PageID
	addr  BlockAddr
	dirty bool
	del   *list.Element // position in dirty FIFO, nil if clean
}

// Cache is the simulated OS file cache.
type Cache struct {
	e      *sim.Engine
	cfg    Config
	pool   *mem.Pool
	policy Policy

	pages  map[PageID]*cpage
	byIno  map[int64]map[int64]*cpage
	dirtyQ *list.List // of *cpage, oldest first
	stats  Stats

	// Telemetry handles; nil (no-op) until Instrument is called.
	telHits, telMisses       *telemetry.Counter
	telEvictions, telWrbacks *telemetry.Counter
	telOccupancy, telDirty   *telemetry.Gauge
}

// New creates a cache backed by pool (may be nil when PrivateFrames).
func New(e *sim.Engine, cfg Config, policy Policy, pool *mem.Pool) *Cache {
	if cfg.PrivateFrames && cfg.Capacity <= 0 {
		panic("cache: private frames require a capacity")
	}
	if !cfg.PrivateFrames && pool == nil {
		panic("cache: pool-backed cache requires a pool")
	}
	if cfg.MaxDirty <= 0 {
		cfg.MaxDirty = 1 << 30 // effectively unthrottled
	}
	return &Cache{
		e: e, cfg: cfg, pool: pool, policy: policy,
		pages:  make(map[PageID]*cpage),
		byIno:  make(map[int64]map[int64]*cpage),
		dirtyQ: list.New(),
	}
}

// PolicyName names the replacement policy in use.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Instrument registers the cache's metrics — hit/miss/eviction counters
// and occupancy gauges, named per replacement policy — in r. A nil
// registry leaves the handles nil, which keeps every update a no-op.
func (c *Cache) Instrument(r *telemetry.Registry) {
	prefix := "cache." + c.policy.Name() + "."
	c.telHits = r.Counter(prefix + "hits")
	c.telMisses = r.Counter(prefix + "misses")
	c.telEvictions = r.Counter(prefix + "evictions")
	c.telWrbacks = r.Counter(prefix + "writebacks")
	c.telOccupancy = r.Gauge(prefix + "occupancy_pages")
	c.telDirty = r.Gauge(prefix + "dirty_pages")
}

// telSync refreshes the occupancy gauges after any residency change.
func (c *Cache) telSync() {
	c.telOccupancy.Set(int64(len(c.pages)))
	c.telDirty.Set(int64(c.dirtyQ.Len()))
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return len(c.pages) }

// Lookup reports whether id is cached; a hit refreshes the page's
// replacement state. Hit/miss counters are updated.
func (c *Cache) Lookup(id PageID) bool {
	if _, ok := c.pages[id]; ok {
		c.policy.Touched(id)
		c.stats.Hits++
		c.telHits.Inc()
		return true
	}
	c.stats.Misses++
	c.telMisses.Inc()
	return false
}

// Contains reports presence without touching replacement state or
// counters (harness ground truth, not part of the gray-box interface).
func (c *Cache) Contains(id PageID) bool {
	_, ok := c.pages[id]
	return ok
}

// Insert caches page id backed by addr. Inserting an already-present page
// only updates its dirty state. The calling process pays for any frame
// reclaim or dirty throttling this triggers.
func (c *Cache) Insert(p *sim.Proc, id PageID, addr BlockAddr, dirty bool) {
	if pg, ok := c.pages[id]; ok {
		if dirty {
			c.markDirty(pg)
			c.throttle(p, addr.Disk)
		}
		return
	}
	// Obtain a frame.
	if c.cfg.PrivateFrames {
		for len(c.pages) >= c.cfg.Capacity {
			if !c.EvictOne(p) {
				panic("cache: private cache cannot evict")
			}
		}
	} else {
		if c.cfg.Capacity > 0 {
			for len(c.pages) >= c.cfg.Capacity {
				if !c.EvictOne(p) {
					panic("cache: capped cache cannot evict")
				}
			}
		}
		c.pool.GrabFrame(p)
	}
	pg := &cpage{id: id, addr: addr}
	c.pages[id] = pg
	ino := c.byIno[id.Ino]
	if ino == nil {
		ino = make(map[int64]*cpage)
		c.byIno[id.Ino] = ino
	}
	ino[id.Index] = pg
	c.policy.Inserted(id)
	if dirty {
		c.markDirty(pg)
	}
	c.telSync()
	if dirty {
		c.throttle(p, addr.Disk)
	}
}

// MarkDirty flags a cached page as modified; the caller then pays any
// dirty throttling. A miss is a no-op.
func (c *Cache) MarkDirty(p *sim.Proc, id PageID) {
	if pg, ok := c.pages[id]; ok {
		c.markDirty(pg)
		c.telSync()
		c.throttle(p, pg.addr.Disk)
	}
}

func (c *Cache) markDirty(pg *cpage) {
	if !pg.dirty {
		pg.dirty = true
		pg.del = c.dirtyQ.PushBack(pg)
	}
}

func (c *Cache) clean(pg *cpage) {
	if pg.dirty {
		pg.dirty = false
		c.dirtyQ.Remove(pg.del)
		pg.del = nil
	}
}

// throttle synchronously cleans oldest dirty pages while over MaxDirty.
// The dirtying process preferentially cleans pages destined for the
// SAME disk it is writing to (hint), so that concurrent writers on
// separate disks drain their own streams in parallel instead of
// ping-ponging each other's devices.
func (c *Cache) throttle(p *sim.Proc, hint *disk.Disk) {
	for c.dirtyQ.Len() > c.cfg.MaxDirty {
		var victim *cpage
		if hint != nil {
			for el := c.dirtyQ.Front(); el != nil; el = el.Next() {
				if pg := el.Value.(*cpage); pg.addr.Disk == hint {
					victim = pg
					break
				}
			}
		}
		if victim == nil {
			victim = c.dirtyQ.Front().Value.(*cpage)
		}
		c.clean(victim)
		c.stats.ThrottleFlushs++
		c.stats.Writebacks++
		c.telWrbacks.Inc()
		c.telSync()
		victim.addr.Disk.Access(p, victim.addr.Block, 1, true)
	}
}

// EvictOne implements mem.Shrinker: pick a victim, drop it from the index
// immediately, write it back if dirty, and return the frame.
func (c *Cache) EvictOne(p *sim.Proc) bool {
	id, ok := c.policy.Victim()
	if !ok {
		return false
	}
	pg := c.pages[id]
	if pg == nil {
		panic(fmt.Sprintf("cache: policy victim %v not in cache", id))
	}
	wasDirty := pg.dirty
	c.forget(pg)
	c.stats.Evictions++
	c.telEvictions.Inc()
	c.telSync()
	if wasDirty {
		c.stats.Writebacks++
		c.telWrbacks.Inc()
		if !c.cfg.PrivateFrames {
			// Frame is logically free once the write is issued; return
			// it before sleeping so the waiting allocator can proceed.
			c.pool.ReturnFrames(1)
			pg.addr.Disk.Access(p, pg.addr.Block, 1, true)
			return true
		}
		pg.addr.Disk.Access(p, pg.addr.Block, 1, true)
		return true
	}
	if !c.cfg.PrivateFrames {
		c.pool.ReturnFrames(1)
	}
	return true
}

// forget removes pg from all indexes (but not the policy, whose Victim
// already dropped it — callers invalidating externally use Removed).
func (c *Cache) forget(pg *cpage) {
	if pg.dirty {
		c.clean(pg)
	}
	delete(c.pages, pg.id)
	if m := c.byIno[pg.id.Ino]; m != nil {
		delete(m, pg.id.Index)
		if len(m) == 0 {
			delete(c.byIno, pg.id.Ino)
		}
	}
}

// Name implements mem.Shrinker.
func (c *Cache) Name() string { return "filecache" }

// Held implements mem.Shrinker.
func (c *Cache) Held() int {
	if c.cfg.PrivateFrames {
		return 0 // holds no pool frames
	}
	return len(c.pages)
}

// Floor implements mem.Shrinker.
func (c *Cache) Floor() int { return c.cfg.FloorPages }

// InvalidateFile drops every cached page of ino without write-back (the
// file is being deleted or truncated).
func (c *Cache) InvalidateFile(ino int64) {
	m := c.byIno[ino]
	if m == nil {
		return
	}
	n := 0
	for _, pg := range m {
		c.policy.Removed(pg.id)
		if pg.dirty {
			c.clean(pg)
		}
		delete(c.pages, pg.id)
		n++
	}
	delete(c.byIno, ino)
	c.telSync()
	if !c.cfg.PrivateFrames {
		c.pool.ReturnFrames(n)
	}
}

// Sync writes back every dirty page, charged to p.
func (c *Cache) Sync(p *sim.Proc) {
	for c.dirtyQ.Len() > 0 {
		pg := c.dirtyQ.Front().Value.(*cpage)
		c.clean(pg)
		c.stats.Writebacks++
		c.telWrbacks.Inc()
		c.telSync()
		pg.addr.Disk.Access(p, pg.addr.Block, 1, true)
	}
}

// Drop instantly discards every page (harness control used to model the
// experimenter's "flush the file cache" step; dirty data is lost).
func (c *Cache) Drop() {
	n := len(c.pages)
	for id, pg := range c.pages {
		c.policy.Removed(id)
		if pg.dirty {
			c.clean(pg)
		}
		delete(c.pages, id)
	}
	c.byIno = make(map[int64]map[int64]*cpage)
	c.telSync()
	if !c.cfg.PrivateFrames && n > 0 {
		c.pool.ReturnFrames(n)
	}
}

// PresenceBitmap reports, for each of the first npages pages of ino,
// whether it is cached. This mirrors the presence-bit interface the
// authors added to their Linux kernel for ground truth (footnote 2); it
// is used only by experiment harnesses, never by ICLs.
func (c *Cache) PresenceBitmap(ino int64, npages int64) []bool {
	bm := make([]bool, npages)
	for idx := range c.byIno[ino] {
		if idx >= 0 && idx < npages {
			bm[idx] = true
		}
	}
	return bm
}

// ResidentPages returns how many pages of ino are cached.
func (c *Cache) ResidentPages(ino int64) int { return len(c.byIno[ino]) }
