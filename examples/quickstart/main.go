// Quickstart: build a simulated platform, warm part of a file, and use
// the FCCD to read the cached part first — the paper's core trick.
package main

import (
	"fmt"
	"log"

	"graybox"
)

func main() {
	// The zero config is the paper's machine: Linux 2.2 personality,
	// 896 MB of memory (~830 MB usable), one data disk plus swap.
	p := graybox.NewPlatform(graybox.PlatformConfig{})

	err := p.Run("quickstart", func(os *graybox.Proc) {
		// Create a 1.2 GB file — bigger than the file cache.
		const size = 1200 * graybox.MB
		fd, err := os.Create("big.dat")
		if err != nil {
			log.Fatal(err)
		}
		if err := fd.Write(0, size); err != nil {
			log.Fatal(err)
		}

		// Start cold, then warm the middle 600 MB.
		p.DropCaches()
		if err := fd.Read(300*graybox.MB, 600*graybox.MB); err != nil {
			log.Fatal(err)
		}

		// Traditional linear scan: LRU worst case territory.
		sw := graybox.NewStopwatch(os)
		if err := fd.Read(0, size); err != nil {
			log.Fatal(err)
		}
		linear := sw.Reset()

		// Gray-box scan: probe, then read cached segments first.
		p.DropCaches()
		if err := fd.Read(300*graybox.MB, 600*graybox.MB); err != nil {
			log.Fatal(err)
		}
		det := graybox.NewFCCD(os, graybox.FCCDConfig{Seed: 1})
		sw.Reset()
		plan, err := det.ProbeFd(fd)
		if err != nil {
			log.Fatal(err)
		}
		for _, seg := range plan {
			if err := fd.Read(seg.Off, seg.Len); err != nil {
				log.Fatal(err)
			}
		}
		gray := sw.Reset()

		fmt.Printf("file: %d MB, cache: ~830 MB, 600 MB pre-warmed\n", size/graybox.MB)
		fmt.Printf("linear scan:   %v\n", linear)
		fmt.Printf("gray-box scan: %v  (probes: %d, speedup %.1fx)\n",
			gray, det.Probes(), float64(linear)/float64(gray))
	})
	if err != nil {
		log.Fatal(err)
	}
}
