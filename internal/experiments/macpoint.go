package experiments

import (
	"graybox/internal/audit"
	"graybox/internal/core/mac"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// macAccuracyPoint runs one point of the MAC accuracy sweep: a hog
// holding frac of usable memory hot while MAC measures what is left.
// The admission is scored by the platform's oracle-grounded auditor, so
// the returned record carries both MAC's answer and the memory that was
// truly available when gb_alloc ran — the harness keeps no parallel
// bookkeeping of its own.
func macAccuracyPoint(sc Scale, frac float64, seed uint64) (rec audit.MACRecord, hogMB, availMB int64) {
	s := newSystem(simos.Linux22, sc, seed)
	aud := s.EnableAudit()
	availMB = usableMB(s)
	hogMB = int64(float64(availMB) * frac)
	hogBytes := hogMB * simos.MB

	stop := false
	ready := false
	s.Spawn("hog", 0, func(os *simos.OS) {
		m := os.Malloc(hogBytes)
		for !stop {
			os.TouchRange(m, 0, m.Pages(), true)
			ready = true // working set established after the first pass
			os.Sleep(50 * sim.Millisecond)
		}
	})
	p := s.Spawn("mac", 20*sim.Millisecond, func(os *simos.OS) {
		defer func() { stop = true }()
		for !ready {
			os.Sleep(10 * sim.Millisecond)
		}
		ctl := mac.New(os, mac.Config{
			InitialIncrement: sc.mb(4) * simos.MB,
			MaxIncrement:     sc.mb(64) * simos.MB,
		})
		a, ok := ctl.GBAlloc(simos.MB, availMB*simos.MB, simos.MB)
		if !ok {
			return
		}
		ctl.GBFree(a)
	})
	s.Engine.WaitAll(p)
	mustNoErr(p.Err())
	rec, _ = aud.LastMAC()
	return rec, hogMB, availMB
}
