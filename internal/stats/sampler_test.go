package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// detRand is a deterministic xorshift source for sampler tests.
type detRand struct{ state uint64 }

func (d *detRand) next(n int64) int64 {
	d.state ^= d.state << 13
	d.state ^= d.state >> 7
	d.state ^= d.state << 17
	return int64(d.state % uint64(n))
}

func newDetRand(seed uint64) func(int64) int64 {
	d := &detRand{state: seed | 1}
	return d.next
}

func TestReservoirBasics(t *testing.T) {
	r := NewReservoir(10, newDetRand(1))
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.N() != 5 || len(r.Sample()) != 5 {
		t.Fatalf("N=%d sample=%d", r.N(), len(r.Sample()))
	}
	for i := 5; i < 1000; i++ {
		r.Add(float64(i))
	}
	if len(r.Sample()) != 10 {
		t.Fatalf("sample grew to %d", len(r.Sample()))
	}
}

func TestReservoirIsRepresentative(t *testing.T) {
	// Sample a uniform 0..9999 stream; the sample median should land
	// near 5000.
	r := NewReservoir(200, newDetRand(7))
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	med := r.Quantile(0.5)
	if med < 3500 || med > 6500 {
		t.Errorf("sample median = %v, want near 5000", med)
	}
	if q := r.Quantile(0); q < 0 {
		t.Errorf("min quantile = %v", q)
	}
	if q := r.Quantile(1); q > 9999 {
		t.Errorf("max quantile = %v", q)
	}
}

func TestReservoirEmptyQuantile(t *testing.T) {
	r := NewReservoir(4, newDetRand(3))
	if !math.IsNaN(r.Quantile(0.5)) {
		t.Error("empty reservoir quantile should be NaN")
	}
}

func TestReservoirValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero capacity")
		}
	}()
	NewReservoir(0, newDetRand(1))
}

func TestP2MedianOnKnownStream(t *testing.T) {
	e := NewP2Quantile(0.5)
	// 1..999 in scrambled order.
	src := newDetRand(11)
	vals := make([]float64, 999)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	for i := len(vals) - 1; i > 0; i-- {
		j := src(int64(i + 1))
		vals[i], vals[j] = vals[j], vals[i]
	}
	for _, v := range vals {
		e.Add(v)
	}
	if got := e.Value(); math.Abs(got-500) > 50 {
		t.Errorf("P2 median = %v, want ~500", got)
	}
	if e.N() != 999 {
		t.Errorf("N = %d", e.N())
	}
}

func TestP2TailQuantile(t *testing.T) {
	e := NewP2Quantile(0.95)
	src := newDetRand(13)
	for i := 0; i < 20000; i++ {
		e.Add(float64(src(10000)))
	}
	if got := e.Value(); got < 9000 || got > 10000 {
		t.Errorf("P2 p95 = %v, want ~9500", got)
	}
}

func TestP2SmallStreams(t *testing.T) {
	e := NewP2Quantile(0.5)
	if !math.IsNaN(e.Value()) {
		t.Error("empty estimator should be NaN")
	}
	e.Add(3)
	e.Add(1)
	e.Add(2)
	if got := e.Value(); got != 2 {
		t.Errorf("3-sample median = %v, want exact 2", got)
	}
}

func TestP2BoundedByExtremesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		e := NewP2Quantile(0.5)
		src := newDetRand(seed)
		min, max := math.Inf(1), math.Inf(-1)
		for i := 0; i < 500; i++ {
			v := float64(src(1 << 20))
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			e.Add(v)
		}
		v := e.Value()
		return v >= min && v <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestP2Validation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p out of range")
		}
	}()
	NewP2Quantile(1.5)
}
