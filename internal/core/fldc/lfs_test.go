package fldc

import (
	"fmt"
	"testing"

	"graybox/internal/fs"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// newLFSSys builds a machine whose file system uses the log-structured
// allocator.
func newLFSSys() *simos.System {
	fsCfg := fs.DefaultConfig()
	fsCfg.Alloc = fs.AllocLFS
	return simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1,
		FS: fsCfg,
	})
}

func TestOrderByMtimeBeatsINumberOnLFS(t *testing.T) {
	s := newLFSSys()
	err := s.Run("t", func(os *simos.OS) {
		if err := os.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		// Create files, then REWRITE a shuffled subset one at a time:
		// on LFS each rewrite appends at the log head, so write-time
		// order matches layout while i-numbers stay in creation order.
		var paths []string
		for i := 0; i < 80; i++ {
			p := fmt.Sprintf("d/f%03d", i)
			fd, err := os.Create(p)
			if err != nil {
				t.Fatal(err)
			}
			fd.Write(0, 2*4096)
			paths = append(paths, p)
		}
		rng := sim.NewRNG(13)
		rewriteOrder := rng.Perm(len(paths))
		for _, idx := range rewriteOrder {
			// Rewrite = delete + recreate (LFS-style whole-file write).
			if err := os.Unlink(paths[idx]); err != nil {
				t.Fatal(err)
			}
			fd, err := os.Create(paths[idx])
			if err != nil {
				t.Fatal(err)
			}
			fd.Write(0, 2*4096)
			os.Sleep(sim.Millisecond) // distinct mtimes
		}

		l := New(os)
		readAll := func(order []string) sim.Time {
			s.DropCaches()
			start := os.Now()
			for _, p := range order {
				fd, err := os.Open(p)
				if err != nil {
					t.Fatal(err)
				}
				fd.Read(0, fd.Size())
			}
			return os.Now() - start
		}
		byIno, err := l.OrderByINumber(paths)
		if err != nil {
			t.Fatal(err)
		}
		byMtime, err := l.OrderByMtime(paths)
		if err != nil {
			t.Fatal(err)
		}
		tIno := readAll(byIno)
		tMtime := readAll(byMtime)
		if tMtime*2 > tIno {
			t.Errorf("on LFS, mtime order (%v) should clearly beat i-number order (%v)", tMtime, tIno)
		}
		// And mtime order recovers the true layout: starts ascend.
		var last int64 = -1
		for _, p := range byMtime {
			blocks, _ := s.FS(0).BlocksOf(p)
			if len(blocks) > 0 {
				if blocks[0] <= last {
					t.Fatalf("mtime order does not match log order at %s", p)
				}
				last = blocks[0]
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOrderByMtimeStatsEveryFile(t *testing.T) {
	s := newLFSSys()
	err := s.Run("t", func(os *simos.OS) {
		os.Mkdir("d")
		for i := 0; i < 5; i++ {
			fd, _ := os.Create(fmt.Sprintf("d/f%d", i))
			fd.Write(0, 4096)
			os.Sleep(sim.Millisecond)
		}
		before := s.FS(0).StatCalls
		l := New(os)
		if _, err := l.OrderByMtime([]string{"d/f0", "d/f1", "d/f2", "d/f3", "d/f4"}); err != nil {
			t.Fatal(err)
		}
		if got := s.FS(0).StatCalls - before; got != 5 {
			t.Errorf("stat calls = %d, want 5 (one probe per file)", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
