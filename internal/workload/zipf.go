package workload

import (
	"fmt"
	"math"

	"graybox/internal/simos"
)

// ZipfReader issues random page-sized reads over a many-file corpus
// with Zipf-distributed file popularity — the hot-set/cold-tail shape
// of real file servers. Popular files stay cached and keep timings
// fast; the tail forces evictions and drags probe times around.
type ZipfReader struct {
	// Label distinguishes multiple readers ("" -> "zipf").
	Label string
	// Files is the corpus size (default 64).
	Files int
	// FileKB is each file's size (default 256).
	FileKB int64
	// Theta is the Zipf skew (default 0.9; 0 = uniform).
	Theta float64

	cdf []float64
}

func (g *ZipfReader) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "zipf"
}

func (g *ZipfReader) files() int {
	if g.Files > 0 {
		return g.Files
	}
	return 64
}

func (g *ZipfReader) fileKB() int64 {
	if g.FileKB > 0 {
		return g.FileKB
	}
	return 256
}

func (g *ZipfReader) path(i int) string {
	return fmt.Sprintf("wl.%s.%03d", g.Name(), i)
}

func (g *ZipfReader) Prepare(s *simos.System) error {
	theta := g.Theta
	if theta == 0 {
		theta = 0.9
	}
	n := g.files()
	// Precompute the popularity CDF: weight(rank k) = 1/(k+1)^theta.
	g.cdf = make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), theta)
		g.cdf[k] = total
	}
	for k := range g.cdf {
		g.cdf[k] /= total
	}
	for i := 0; i < n; i++ {
		if _, err := s.FS(0).CreateSized(g.path(i), g.fileKB()*1024); err != nil {
			return err
		}
	}
	return nil
}

// pick draws a file index from the precomputed CDF.
func (g *ZipfReader) pick(ctx *Ctx) int {
	u := ctx.Float64()
	lo, hi := 0, len(g.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (g *ZipfReader) Run(ctx *Ctx) {
	os := ctx.OS()
	fds := make([]*simos.Fd, g.files())
	for i := range fds {
		fd, err := os.Open(g.path(i))
		if err != nil {
			return
		}
		fds[i] = fd
	}
	pageSize := int64(os.PageSize())
	for !ctx.Stopped() {
		start := os.Now()
		fd := fds[g.pick(ctx)]
		pages := (fd.Size() + pageSize - 1) / pageSize
		off := ctx.Int63n(pages) * pageSize
		n := pageSize
		if off+n > fd.Size() {
			n = fd.Size() - off
		}
		if n <= 0 {
			continue
		}
		if err := fd.Read(off, n); err != nil {
			return
		}
		ctx.Idle(os.Now() - start)
	}
}
