package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graybox/internal/experiments"
)

// config is the parsed, validated command line.
type config struct {
	scale       experiments.Scale
	markdown    bool
	list        bool
	outPath     string
	parallel    int
	snapshot    bool
	benchOut    string
	tracePath   string
	metricsPath string
	auditPath   string
	profilePath string
	cpuProfile  string
	memProfile  string
	workloads   []string
	cpus        []int
	shard       int
	runners     []experiments.Runner
}

// telemetryOn reports whether any telemetry export was requested. The
// profiler consumes spans, so -profile implies telemetry too.
func (c *config) telemetryOn() bool {
	return c.tracePath != "" || c.metricsPath != "" || c.profilePath != ""
}

// parseConfig parses and validates the argument list (without the
// program name), writing usage/flag errors to stderr. It is main's
// entire flag surface, kept separate so tests can drive it with bad
// inputs.
func parseConfig(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("gb-experiments", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; -h prints below
	scaleName := fs.String("scale", "full", "experiment scale: full (paper-size), quick, or mega (full plus 200k-process swarms in noise trials)")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
	list := fs.Bool("list", false, "print the registered experiment ids and exit")
	outPath := fs.String("o", "", "write output to file (default stdout)")
	parallel := fs.Int("parallel", 0, "trial worker-pool width (0 = GOMAXPROCS)")
	snapshot := fs.Bool("snapshot", true, "build each sweep's aged platform once and fork per trial (false = cold-build every trial)")
	benchOut := fs.String("bench-out", "", "write per-experiment wall/virtual time JSON to file (e.g. BENCH_experiments.json)")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON file (open in about://tracing or Perfetto)")
	metricsPath := fs.String("metrics", "", "write a metrics snapshot; .json extension selects JSON, otherwise aligned text")
	auditPath := fs.String("audit", "", "score every ICL prediction against the simulator oracle and write the audit report JSON to file")
	profilePath := fs.String("profile", "", "write a folded-stack virtual-time profile (flamegraph.pl / speedscope input) and print a top-span table to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a real-CPU pprof profile of the run to file (go tool pprof input)")
	memProfile := fs.String("memprofile", "", "write a heap allocation pprof profile taken at exit to file")
	workloadList := fs.String("workload", "", "comma-separated background generators for the noise experiment (default scan,zipf,hog,web)")
	cpusList := fs.String("cpus", "", "comma-separated simulated-processor counts swept by the noise and slo experiments (0 = uncontended infinite-core model, the default)")
	shard := fs.Int("shard-parallel", 0, "engine harvest workers for sharded event lanes (0 = serial engine, the bit-exact anchor; output is byte-identical at any value)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			fs.SetOutput(stderr)
			fs.Usage()
		}
		return nil, err
	}

	c := &config{
		markdown:    *markdown,
		list:        *list,
		outPath:     *outPath,
		parallel:    *parallel,
		snapshot:    *snapshot,
		benchOut:    *benchOut,
		tracePath:   *tracePath,
		metricsPath: *metricsPath,
		auditPath:   *auditPath,
		profilePath: *profilePath,
		cpuProfile:  *cpuProfile,
		memProfile:  *memProfile,
	}
	switch *scaleName {
	case "full":
		c.scale = experiments.FullScale()
	case "quick":
		c.scale = experiments.QuickScale()
	case "mega":
		c.scale = experiments.MegaScale()
	default:
		return nil, fmt.Errorf("unknown scale %q (want full, quick, or mega)", *scaleName)
	}
	if *shard < 0 {
		return nil, fmt.Errorf("-shard-parallel %d is negative", *shard)
	}
	if err := experiments.SetShardParallel(*shard); err != nil {
		return nil, err
	}
	c.shard = *shard
	if c.parallel < 0 {
		return nil, fmt.Errorf("-parallel %d is negative", c.parallel)
	}
	if *workloadList != "" {
		names := strings.Split(*workloadList, ",")
		for i, n := range names {
			names[i] = strings.TrimSpace(n)
		}
		if err := experiments.SetNoiseWorkloads(names); err != nil {
			return nil, err
		}
		c.workloads = names
	}
	if *cpusList != "" {
		var cpus []int
		for _, part := range strings.Split(*cpusList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("-cpus %q: %v", *cpusList, err)
			}
			cpus = append(cpus, n)
		}
		if err := experiments.SetCPUList(cpus); err != nil {
			return nil, fmt.Errorf("-cpus %q: %v", *cpusList, err)
		}
		c.cpus = cpus
	}

	if ids := fs.Args(); len(ids) > 0 {
		for _, id := range ids {
			r := experiments.ByID(id)
			if r == nil {
				return nil, fmt.Errorf("unknown experiment %q", id)
			}
			c.runners = append(c.runners, *r)
		}
	} else {
		c.runners = experiments.All()
	}
	return c, nil
}
