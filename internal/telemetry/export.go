package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file renders registries into the two export formats:
//
//   - Chrome trace_event JSON ("JSON Array Format" with metadata events),
//     loadable in about://tracing and https://ui.perfetto.dev. Each
//     registry becomes one trace "process" (pid), each Track one thread
//     (tid); spans are complete "X" events and ring events are instant
//     "i" events.
//   - A metrics snapshot, as canonical JSON or aligned text.
//
// Both formats are rendered with deterministic ordering and number
// formatting only (sorted metric names, fixed-precision timestamps, no
// wall-clock anywhere), so identical simulations export identical bytes.

// SortRegistries orders registries deterministically: by label, with
// ties broken by serialized metric content. Trial workers finish in
// nondeterministic wall-clock order, so the collection order of
// registries varies run to run; sorting restores byte-identical exports
// at any pool width. The content tiebreak keeps even duplicate labels
// deterministic (two identical registries compare equal, so either order
// yields the same bytes).
func SortRegistries(regs []*Registry) {
	content := make(map[*Registry][]byte, len(regs))
	contentOf := func(r *Registry) []byte {
		if b, ok := content[r]; ok {
			return b
		}
		b, err := json.Marshal(r.snapshot())
		if err != nil {
			b = []byte(r.Label()) // unreachable: snapshot is marshalable
		}
		content[r] = b
		return b
	}
	sort.SliceStable(regs, func(i, j int) bool {
		if li, lj := regs[i].Label(), regs[j].Label(); li != lj {
			return li < lj
		}
		return bytes.Compare(contentOf(regs[i]), contentOf(regs[j])) < 0
	})
}

// --- metrics snapshot ---

// GaugeSnapshot is a gauge's exported state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSnapshot is a histogram's exported state.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// SketchSnapshot is a quantile sketch's exported state: headline
// quantiles rather than raw buckets — ~1888 mostly-zero buckets per
// sketch would swamp the document, and the quantile walk is already
// deterministic.
type SketchSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
}

// SLOSnapshot is an SLO tracker's exported state.
type SLOSnapshot struct {
	Threshold      int64 `json:"threshold"`
	Total          int64 `json:"total"`
	Violations     int64 `json:"violations"`
	FirstViolation int64 `json:"first_violation"` // -1 when never violated
}

// RegistrySnapshot is one registry's exported state.
type RegistrySnapshot struct {
	Label      string                       `json:"label"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Sketches   map[string]SketchSnapshot    `json:"sketches,omitempty"`
	SLOs       map[string]SLOSnapshot       `json:"slos,omitempty"`
	Spans      int                          `json:"spans"`
	SpanDrops  int64                        `json:"span_drops,omitempty"`
}

// MetricsSnapshot is the full export document of one run.
type MetricsSnapshot struct {
	Platforms []RegistrySnapshot `json:"platforms"`
}

func (r *Registry) snapshot() RegistrySnapshot {
	s := RegistrySnapshot{Label: r.Label()}
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = HistogramSnapshot{
				Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
				Bounds: h.bounds, Buckets: h.counts,
			}
		}
	}
	if len(r.sketches) > 0 {
		s.Sketches = make(map[string]SketchSnapshot, len(r.sketches))
		for name, sk := range r.sketches {
			s.Sketches[name] = SketchSnapshot{
				Count: sk.Count(), Sum: sk.Sum(), Min: sk.Min(), Max: sk.Max(),
				P50: sk.Quantile(0.50), P99: sk.Quantile(0.99), P999: sk.Quantile(0.999),
			}
		}
	}
	if len(r.slos) > 0 {
		s.SLOs = make(map[string]SLOSnapshot, len(r.slos))
		for name, sl := range r.slos {
			s.SLOs[name] = SLOSnapshot{
				Threshold: sl.Threshold(), Total: sl.Total(),
				Violations: sl.Violations(), FirstViolation: sl.FirstViolation(),
			}
		}
	}
	s.Spans = len(r.spans)
	s.SpanDrops = r.dropped
	return s
}

// Snapshot captures the exported state of a set of registries, in the
// given order.
func Snapshot(regs []*Registry) MetricsSnapshot {
	doc := MetricsSnapshot{Platforms: make([]RegistrySnapshot, 0, len(regs))}
	for _, r := range regs {
		doc.Platforms = append(doc.Platforms, r.snapshot())
	}
	return doc
}

// WriteMetricsJSON writes the snapshot of regs (in the given order) as
// indented canonical JSON. encoding/json sorts map keys, so the output
// is deterministic.
func WriteMetricsJSON(w io.Writer, regs []*Registry) error {
	data, err := json.MarshalIndent(Snapshot(regs), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteMetricsText writes the snapshot as aligned, human-readable text,
// one metric per line, deterministically ordered.
func WriteMetricsText(w io.Writer, regs []*Registry) error {
	bw := bufio.NewWriter(w)
	for _, r := range regs {
		s := r.snapshot()
		fmt.Fprintf(bw, "== %s ==\n", s.Label)
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(bw, "  counter    %-36s %d\n", name, s.Counters[name])
		}
		for _, name := range sortedKeys(s.Gauges) {
			g := s.Gauges[name]
			fmt.Fprintf(bw, "  gauge      %-36s %d (max %d)\n", name, g.Value, g.Max)
		}
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(bw, "  histogram  %-36s n=%d mean=%dns min=%dns max=%dns\n",
				name, h.Count, mean, h.Min, h.Max)
		}
		for _, name := range sortedKeys(s.Sketches) {
			sk := s.Sketches[name]
			fmt.Fprintf(bw, "  sketch     %-36s n=%d p50=%dns p99=%dns p999=%dns max=%dns\n",
				name, sk.Count, sk.P50, sk.P99, sk.P999, sk.Max)
		}
		for _, name := range sortedKeys(s.SLOs) {
			sl := s.SLOs[name]
			fmt.Fprintf(bw, "  slo        %-36s threshold=%dns total=%d violations=%d first=%dns\n",
				name, sl.Threshold, sl.Total, sl.Violations, sl.FirstViolation)
		}
		if s.Spans > 0 || s.SpanDrops > 0 {
			fmt.Fprintf(bw, "  spans      %d recorded, %d dropped\n", s.Spans, s.SpanDrops)
		}
	}
	return bw.Flush()
}

// --- Chrome trace_event export ---

// WriteChromeTrace writes regs (in the given order) as a Chrome
// trace_event JSON document. Load it in about://tracing (Chrome) or
// https://ui.perfetto.dev. Registries become processes in slice order
// (pid 1..n); their label is the process name.
func WriteChromeTrace(w io.Writer, regs []*Registry) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(line)
	}
	for i, r := range regs {
		if r == nil {
			continue
		}
		pid := i + 1
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, jsonString(r.Label())))
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`,
			pid, pid))
		for _, t := range r.tracks {
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				pid, t.tid, jsonString(t.name)))
		}
		for _, s := range r.spans {
			reqArgs := ""
			if s.req != 0 {
				reqArgs = `,"args":{"req":` + strconv.FormatInt(s.req, 10) + `}`
			}
			if s.dur < 0 { // Track.Instant marker
				emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","cat":%s,"name":%s%s}`,
					pid, s.tid, microTS(s.start), jsonString(s.cat), jsonString(s.name), reqArgs))
				continue
			}
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"cat":%s,"name":%s%s}`,
				pid, s.tid, microTS(s.start), microTS(s.dur), jsonString(s.cat), jsonString(s.name), reqArgs))
		}
		for ri, ring := range r.rings {
			tid := 1000 + ri // ring tracks sit after process tracks
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"trace log %d"}}`,
				pid, tid, ri))
			ring.Do(func(ev Event) {
				emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","cat":%s,"name":%s}`,
					pid, tid, microTS(ev.At), jsonString(ev.Cat), jsonString(ev.Msg)))
			})
		}
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// microTS renders virtual nanoseconds as the trace format's microsecond
// timestamps with fixed precision (determinism requires one canonical
// rendering per value).
func microTS(ns int64) string {
	micros := ns / 1000
	frac := ns % 1000
	return strconv.FormatInt(micros, 10) + "." + fmt.Sprintf("%03d", frac)
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""` // unreachable for strings
	}
	return string(b)
}
