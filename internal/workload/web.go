package workload

import (
	"fmt"
	"math"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// WebServer is an open-loop arrival process: requests arrive at
// exponentially distributed intervals whether or not earlier requests
// have finished, the way outside load really behaves. Each request
// reads one corpus file in a short-lived process; arrivals beyond the
// concurrency cap are dropped (and counted), so a saturated system
// sheds load instead of queueing unboundedly.
type WebServer struct {
	// Label distinguishes multiple servers ("" -> "web").
	Label string
	// Files is the corpus size (default 32).
	Files int
	// FileKB is each file's size (default 64).
	FileKB int64
	// RatePerSec is the arrival rate at intensity 1 (default 200);
	// intensity scales it linearly.
	RatePerSec float64
	// MaxInFlight caps concurrent request processes (default 16).
	MaxInFlight int

	inFlight int
	dropped  int64
	served   int64
}

func (g *WebServer) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "web"
}

func (g *WebServer) files() int {
	if g.Files > 0 {
		return g.Files
	}
	return 32
}

func (g *WebServer) fileKB() int64 {
	if g.FileKB > 0 {
		return g.FileKB
	}
	return 64
}

func (g *WebServer) path(i int64) string {
	return fmt.Sprintf("wl.%s.%03d", g.Name(), i)
}

// Dropped returns how many arrivals were shed at the concurrency cap.
func (g *WebServer) Dropped() int64 { return g.dropped }

// Served returns how many requests completed.
func (g *WebServer) Served() int64 { return g.served }

func (g *WebServer) Prepare(s *simos.System) error {
	for i := 0; i < g.files(); i++ {
		if _, err := s.FS(0).CreateSized(g.path(int64(i)), g.fileKB()*1024); err != nil {
			return err
		}
	}
	return nil
}

func (g *WebServer) Run(ctx *Ctx) {
	os := ctx.OS()
	rate := g.RatePerSec
	if rate == 0 {
		rate = 200
	}
	mean := float64(sim.Second) / (rate * ctx.Intensity())
	limit := g.MaxInFlight
	if limit == 0 {
		limit = 16
	}
	for !ctx.Stopped() {
		// Exponential interarrival: -ln(1-u) * mean. The draw happens
		// whether or not the request will be shed, so the arrival
		// sequence is independent of service times.
		u := ctx.Float64()
		gap := sim.Time(-math.Log(1-u) * mean)
		os.Sleep(gap)
		if ctx.Stopped() {
			return
		}
		fi := ctx.Int63n(int64(g.files()))
		if g.inFlight >= limit {
			g.dropped++
			continue
		}
		g.inFlight++
		ctx.Spawn("wl."+g.Name()+".req", func(ros *simos.OS) {
			defer func() { g.inFlight-- }()
			fd, err := ros.Open(g.path(fi))
			if err != nil {
				return
			}
			size := fd.Size()
			const chunk = 64 * 1024
			for off := int64(0); off < size; off += chunk {
				n := int64(chunk)
				if off+n > size {
					n = size - off
				}
				if fd.Read(off, n) != nil {
					return
				}
			}
			g.served++
		})
	}
}
