package sim

import (
	"fmt"
	"sync"
)

// Sharded event lanes with conservative lookahead (DESIGN.md §18).
//
// SetShardParallel splits the engine's pending-event set into per-CPU
// lanes (wheel.go) — one per simulated processor for that CPU's wakes
// and timeslices, plus lane 0 for closure events — and recovers the
// global fire order with a loser-tree merge keyed on the same (at, seq)
// pair the single-heap engine orders by. Event EXECUTION stays serial on
// the engine thread, in exactly the single-heap order, so telemetry,
// audit records, traces, and every table render byte-identically at any
// worker count; what parallelizes is the lane-structure work between
// synchronization horizons:
//
//	merge phase (engine thread only)
//	    Fire the global (at, seq) minimum of the visible set: the sorted
//	    per-lane run buffers (via the loser tree) plus the overlay heap.
//	    New events pushed while firing go to the overlay if they land
//	    inside the current horizon, or to their lane's defer buffer if
//	    not. Lane wheels and heaps are never touched in this phase.
//
//	harvest (worker pool, engine thread blocked)
//	    When every run buffer and the overlay are drained, each lane —
//	    independently, on a small worker pool — folds its deferred
//	    pushes into its wheel/heap, advances its wheel through the next
//	    horizon, and pops every event due before the horizon into its
//	    run buffer in (at, seq) order. The engine thread then rebuilds
//	    the loser tree over the new lane heads and resumes the merge.
//
// The horizon is conservative: after a harvest to H, every live event
// with at < H is visible and every hidden event has at >= H, so firing
// the visible set to exhaustion before the next harvest is provably the
// single-heap order. Workers touch only their own lanes (per-lane free
// lists included) while the engine thread waits, so the phases share
// nothing and the worker count can never influence results — only how
// fast harvests go.
const (
	// shardWindow is the conservative-lookahead horizon width: each
	// harvest exposes every event inside the next window and defers
	// everything later. One millisecond spans many sleep/IO/quantum
	// delays (so harvests amortize over thousands of events) while
	// keeping run buffers bounded.
	shardWindow = Millisecond

	// shardParMin is the pending-event population below which a harvest
	// runs inline on the engine thread: spawning workers costs more than
	// sorting a few hundred events.
	shardParMin = 2048

	// maxProcLanes bounds the per-CPU lane count (event.ln is a byte,
	// and merge cost grows with lane count while harvest parallelism is
	// capped by host cores anyway).
	maxProcLanes = 64
)

// shardState is the lane-merge machinery; nil on the serial engine.
type shardState struct {
	workers int  // harvest pool width (>= 1)
	window  Time // lookahead width, shardWindow (tests may shrink it)
	parMin  int  // inline-harvest threshold, shardParMin
	horizon Time // current horizon; every hidden event has at >= horizon

	// overlay holds events pushed inside the current horizon during the
	// merge phase, so they compete for fire order without touching lane
	// structures mid-phase. ovLive counts its live events (the heap also
	// carries tombstones, compacted like a lane heap).
	overlay eventHeap
	ovLive  int

	// target is the wheel-advance tick for the extract phase, derived
	// from horizon. A shardState field (not a harvest local) so the
	// per-lane phases need no captured state — closures capturing
	// harvest locals would allocate on every horizon.
	target int64

	tree loserTree
}

// SetShardParallel splits the pending-event set into per-CPU lanes
// merged by a loser tree, with harvests fanned out over n workers.
// n <= 0 restores the serial single-lane engine — the bit-exact
// compatibility anchor, like CPUs=0 for the scheduler; n == 1 keeps the
// lane/merge machinery but harvests inline (useful for debugging and
// alloc guards). It must be called after SetCPUs (the lane count is one
// per simulated CPU, plus lane 0 for closure events; without CPUs, 8
// proc lanes) and before anything is scheduled.
func (e *Engine) SetShardParallel(n int) {
	if e.spawned != 0 || e.seq != 0 || e.live != 0 {
		panic("sim: SetShardParallel after events have been scheduled")
	}
	if n <= 0 {
		e.shard = nil
		e.lanes = make([]lane, 1)
		return
	}
	k := e.CPUs()
	if k <= 0 {
		k = 8
	}
	if k > maxProcLanes {
		k = maxProcLanes
	}
	e.lanes = make([]lane, k+1)
	s := &shardState{workers: n, window: shardWindow, parMin: shardParMin}
	s.tree.init(k + 1)
	e.shard = s
}

// ShardWorkers returns the harvest worker-pool width (0 = the serial
// single-lane engine).
func (e *Engine) ShardWorkers() int {
	if e.shard == nil {
		return 0
	}
	return e.shard.workers
}

// head returns the lane's earliest live harvested event, dropping
// tombstones at the cursor, or nil when the run buffer is consumed.
func (ln *lane) head() *event {
	for ln.runPos < len(ln.run) {
		ev := ln.run[ln.runPos]
		if !ev.dead() {
			return ev
		}
		ln.run[ln.runPos] = nil
		ln.runPos++
		ln.recycle(ev)
	}
	return nil
}

// loserTree is a tournament tree over the lane heads: node[0] names the
// lane whose head fires first, node[1..k-1] store the losers of the
// matches along each leaf's path to the root. Replacing the winner's
// head re-plays only its own path (fix, O(log k), allocation-free); a
// harvest rebuilds the whole tournament bottom-up (build, O(k)).
type loserTree struct {
	k       int
	node    []int32  // node[0] = winner; node[1..k-1] = stored losers
	head    []*event // cached head per lane; nil = lane exhausted
	winners []int32  // scratch for build, len 2k
}

func (t *loserTree) init(k int) {
	t.k = k
	t.node = make([]int32, k)
	t.head = make([]*event, k)
	t.winners = make([]int32, 2*k)
}

// less reports whether lane a's head fires before lane b's: (at, seq)
// order, with exhausted lanes losing every match.
func (t *loserTree) less(a, b int32) bool {
	ha, hb := t.head[a], t.head[b]
	if hb == nil {
		return ha != nil
	}
	if ha == nil {
		return false
	}
	if ha.at != hb.at {
		return ha.at < hb.at
	}
	return ha.seq < hb.seq
}

// build recomputes the full tournament from the cached heads. Leaves sit
// at winners[k..2k-1]; internal node j plays winners[2j] against
// winners[2j+1], storing the loser — the standard implicit layout, valid
// for any k >= 2.
func (t *loserTree) build() {
	w := t.winners
	for i := 0; i < t.k; i++ {
		w[t.k+i] = int32(i)
	}
	for j := t.k - 1; j >= 1; j-- {
		a, b := w[2*j], w[2*j+1]
		if t.less(b, a) {
			a, b = b, a
		}
		w[j], t.node[j] = a, b
	}
	t.node[0] = w[1]
}

// fix re-plays lane i's path to the root after its head changed. Only
// valid when i is the current winner (the classic k-way-merge replay):
// the losers stored along its path are then exactly the opposing
// subtree winners it must re-match.
func (t *loserTree) fix(i int) {
	w := int32(i)
	for j := (t.k + i) / 2; j >= 1; j /= 2 {
		if t.less(t.node[j], w) {
			t.node[j], w = w, t.node[j]
		}
	}
	t.node[0] = w
}

// treeWinner returns the earliest live lane head, refreshing lanes whose
// cached head was canceled after the last rebuild, or nil when every
// lane's run buffer is consumed.
func (s *shardState) treeWinner(e *Engine) *event {
	t := &s.tree
	for {
		w := t.node[0]
		h := t.head[w]
		if h == nil || !h.dead() {
			return h
		}
		ln := &e.lanes[w]
		t.head[w] = ln.head()
		t.fix(int(w))
	}
}

// overlayHead returns the earliest live overlay event, dropping
// tombstones at the top, or nil when the overlay is empty.
func (s *shardState) overlayHead(e *Engine) *event {
	for len(s.overlay) > 0 {
		ev := s.overlay[0]
		if !ev.dead() {
			return ev
		}
		s.removeOverlayTop()
		e.lanes[ev.ln].recycle(ev)
	}
	return nil
}

// removeOverlayTop pops the overlay minimum without recycling it.
func (s *shardState) removeOverlayTop() {
	h := s.overlay
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	s.overlay = h[:n]
	s.overlay.siftDown(0)
}

// compactOverlay rebuilds the overlay without its tombstones.
func (s *shardState) compactOverlay(e *Engine) {
	h := s.overlay
	kept := h[:0]
	for _, ev := range h {
		if !ev.dead() {
			kept = append(kept, ev)
		} else {
			e.lanes[ev.ln].recycle(ev)
		}
	}
	for i := range h[len(kept):] {
		h[len(kept)+i] = nil
	}
	s.overlay = kept
	for i := len(kept)/2 - 1; i >= 0; i-- {
		kept.siftDown(i)
	}
}

// mergePeek returns the earliest pending live event across every lane
// and the overlay — exactly the event the single-heap engine would fire
// next — harvesting the next horizon when the visible set is drained.
func (e *Engine) mergePeek() *event {
	s := e.shard
	for {
		best := s.treeWinner(e)
		if o := s.overlayHead(e); o != nil &&
			(best == nil || o.at < best.at || (o.at == best.at && o.seq < best.seq)) {
			best = o
		}
		if best != nil {
			return best
		}
		if e.live == 0 {
			return nil
		}
		e.harvest()
	}
}

// pop consumes ev, the event mergePeek just returned, from whichever
// structure holds it. Allocation-free: the hot path is one pointer
// compare plus either an overlay sift or a run-cursor bump and a
// loser-tree replay.
func (s *shardState) pop(e *Engine, ev *event) {
	if len(s.overlay) > 0 && s.overlay[0] == ev {
		s.removeOverlayTop()
		s.ovLive--
		return
	}
	w := s.tree.node[0]
	ln := &e.lanes[w]
	if ln.runPos >= len(ln.run) || ln.run[ln.runPos] != ev {
		panic("sim: shard merge lost its winner")
	}
	ln.run[ln.runPos] = nil
	ln.runPos++
	s.tree.head[w] = ln.head()
	s.tree.fix(int(w))
}

// Harvest phases, dispatched by laneHarvest. Plain constants rather
// than per-phase closures: a closure capturing harvest locals escapes
// and allocates on every horizon, and the merge path is 0-alloc.
const (
	harvestFold    = iota // fold deferred pushes in, surface the lane min
	harvestExtract        // advance the wheel and extract events < horizon
)

// harvest advances the horizon: every lane folds its deferred pushes
// into its wheel/heap, surfaces its earliest pending event, and — once
// the engine thread has reduced those to the new horizon H — moves every
// event due before H into its run buffer in (at, seq) order. Lane work
// fans out over the worker pool; the engine thread only reduces between
// phases and rebuilds the loser tree afterwards, so results cannot
// depend on the worker count.
func (e *Engine) harvest() {
	s := e.shard
	e.forEachLane(harvestFold)

	// Reduce: the earliest pending event across all lanes anchors the
	// new horizon.
	var emin Time
	found := false
	for i := range e.lanes {
		if h := e.lanes[i].events; len(h) > 0 && (!found || h[0].at < emin) {
			emin, found = h[0].at, true
		}
	}
	if !found {
		panic("sim: harvest found no pending events")
	}
	s.horizon = emin + s.window
	s.target = (int64(s.horizon-1) >> wheelShift) + 1
	e.forEachLane(harvestExtract)

	t := &s.tree
	for i := range e.lanes {
		t.head[i] = e.lanes[i].head()
	}
	t.build()
}

// laneHarvest runs one harvest phase on one lane. Fold moves the lane's
// deferred pushes into its wheel/heap and leaves the earliest live event
// at the heap top (peekLive), recycling tombstones; the run buffer is
// reset first — the merge only harvests once every head is nil, so it
// is fully consumed. Extract advances the wheel through the horizon and
// pops every event due before it, in (at, seq) order, into the run
// buffer.
func (e *Engine) laneHarvest(ln *lane, phase int) {
	if phase == harvestFold {
		ln.run = ln.run[:0]
		ln.runPos = 0
		for _, ev := range ln.deferred {
			if ev.dead() {
				ln.recycle(ev)
				continue
			}
			ln.live++
			ln.place(e, ev)
		}
		ln.deferred = ln.deferred[:0]
		ln.peekLive()
		return
	}
	s := e.shard
	ln.advanceWheel(s.target)
	for len(ln.events) > 0 {
		top := ln.events[0]
		if top.dead() {
			ln.recycle(ln.popMin())
			continue
		}
		if top.at >= s.horizon {
			break
		}
		ln.popMin()
		ln.live--
		top.loc = locRun
		ln.run = append(ln.run, top)
	}
}

// forEachLane runs one harvest phase on every lane: inline on the engine
// thread for small populations (or a 1-wide pool), strided across
// min(workers, lanes) goroutines otherwise. Each lane is touched by
// exactly one goroutine and the engine thread blocks until all finish,
// so lane-local state needs no locking.
func (e *Engine) forEachLane(phase int) {
	k := len(e.lanes)
	w := e.shard.workers
	if w > k {
		w = k
	}
	if w <= 1 || e.live < e.shard.parMin {
		for i := 0; i < k; i++ {
			e.laneHarvest(&e.lanes[i], phase)
		}
		return
	}
	e.forEachLanePar(phase, k, w)
}

// forEachLanePar is the worker-pool body of forEachLane, split out so
// the escaping WaitGroup isn't heap-allocated on the inline path.
func (e *Engine) forEachLanePar(phase, k, w int) {
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < k; i += w {
				e.laneHarvest(&e.lanes[i], phase)
			}
		}(g)
	}
	wg.Wait()
}

// shardCheck panics unless the engine's lane accounting is consistent —
// a test hook for the harvest invariants.
func (e *Engine) shardCheck() {
	total := 0
	for i := range e.lanes {
		ln := &e.lanes[i]
		total += ln.live
		for _, ev := range ln.run[ln.runPos:] {
			if ev != nil && !ev.dead() {
				total++
			}
		}
		for _, ev := range ln.deferred {
			if !ev.dead() {
				total++
			}
		}
	}
	if e.shard != nil {
		total += e.shard.ovLive
	}
	if total != e.live {
		panic(fmt.Sprintf("sim: lane accounting drift: lanes hold %d live events, engine counts %d", total, e.live))
	}
}
