package disk

import (
	"testing"

	"graybox/internal/sim"
)

// queueRequests parks a holder on the disk, queues the given blocks from
// separate processes, then releases and records completion order.
func queueRequests(t *testing.T, sched Scheduler, blocks []int64) []int64 {
	t.Helper()
	e := sim.NewEngine(1)
	d := New(e, DefaultParams())
	d.SetScheduler(sched)

	var order []int64
	// Holder occupies the disk long enough for all others to queue.
	e.Go("holder", func(p *sim.Proc) {
		d.Access(p, 0, d.Params().BlocksPerTrack, false)
	})
	for i, b := range blocks {
		b := b
		e.Spawn("req", sim.Time(i+1)*sim.Microsecond, func(p *sim.Proc) {
			d.Access(p, b, 1, false)
			order = append(order, b)
		})
	}
	e.Run()
	if len(order) != len(blocks) {
		t.Fatalf("completed %d of %d requests", len(order), len(blocks))
	}
	return order
}

func TestSSTFOrdersBySeekDistance(t *testing.T) {
	bpc := int64(DefaultParams().BlocksPerTrack * DefaultParams().TracksPerCyl)
	// Cylinders: 5000, 100, 4900 — head starts at ~0, so 100 first, then
	// 4900, then 5000.
	blocks := []int64{5000 * bpc, 100 * bpc, 4900 * bpc}
	order := queueRequests(t, SSTF, blocks)
	want := []int64{100 * bpc, 4900 * bpc, 5000 * bpc}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SSTF order = %v, want %v", order, want)
		}
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	bpc := int64(DefaultParams().BlocksPerTrack * DefaultParams().TracksPerCyl)
	blocks := []int64{5000 * bpc, 100 * bpc, 4900 * bpc}
	order := queueRequests(t, FCFS, blocks)
	for i := range blocks {
		if order[i] != blocks[i] {
			t.Fatalf("FCFS order = %v, want arrival order %v", order, blocks)
		}
	}
}

func TestLOOKSweeps(t *testing.T) {
	bpc := int64(DefaultParams().BlocksPerTrack * DefaultParams().TracksPerCyl)
	// Head near cylinder 0: the sweep services everything in ascending
	// cylinder order: 50, 100, 2000, 5000.
	blocks := []int64{2000 * bpc, 50 * bpc, 5000 * bpc, 100 * bpc}
	order := queueRequests(t, LOOK, blocks)
	want := []int64{50 * bpc, 100 * bpc, 2000 * bpc, 5000 * bpc}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LOOK order = %v, want %v", order, want)
		}
	}
}

func TestSSTFBeatsFCFSOnRandomLoad(t *testing.T) {
	run := func(sched Scheduler) sim.Time {
		e := sim.NewEngine(7)
		d := New(e, DefaultParams())
		d.SetScheduler(sched)
		rng := sim.NewRNG(42)
		const n = 64
		procs := make([]*sim.Proc, n)
		for i := 0; i < n; i++ {
			b := rng.Int63n(d.Params().Blocks())
			procs[i] = e.Go("r", func(p *sim.Proc) {
				d.Access(p, b, 1, false)
			})
		}
		e.WaitAll(procs...)
		return e.Now()
	}
	fcfs := run(FCFS)
	sstf := run(SSTF)
	if sstf >= fcfs {
		t.Errorf("SSTF (%v) not faster than FCFS (%v) on a random backlog", sstf, fcfs)
	}
	if sstf > fcfs*3/4 {
		t.Errorf("SSTF (%v) should cut well into FCFS (%v) seek time", sstf, fcfs)
	}
}

func TestSchedulerChangeGuard(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, DefaultParams())
	d.SetScheduler(SSTF)
	if d.Scheduler() != SSTF {
		t.Fatal("scheduler not set")
	}
	e.Go("holder", func(p *sim.Proc) {
		d.Access(p, 0, 30, false)
	})
	e.Go("late", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		defer func() {
			if recover() == nil {
				t.Error("expected panic switching scheduler mid-flight")
			}
			panic("rethrow")
		}()
		d.SetScheduler(FCFS)
	})
	e.Run()
}
