package stats

import (
	"math"
	"sort"
)

// This file adds the streaming samplers Section 5 calls for: "Note that
// Douceur and Bolosky's statistical sampler is a good candidate for
// inclusion here." ICLs observe long measurement streams (probe times,
// progress steps) and need summaries in bounded space, updated
// incrementally.

// Reservoir keeps a uniform random sample of a stream in bounded space
// (Vitter's Algorithm R with a caller-supplied deterministic source).
type Reservoir struct {
	k      int
	n      int64
	sample []float64
	rand   func(n int64) int64 // uniform in [0, n)
}

// NewReservoir creates a sampler of capacity k. rand must return a
// uniform value in [0, n); pass (&sim.RNG{}).Int63n or equivalent so
// sampling stays deterministic under a fixed seed.
func NewReservoir(k int, rand func(n int64) int64) *Reservoir {
	if k <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	if rand == nil {
		panic("stats: reservoir needs a random source")
	}
	return &Reservoir{k: k, rand: rand}
}

// Add offers one observation to the sampler.
func (r *Reservoir) Add(x float64) {
	r.n++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rand(r.n); j < int64(r.k) {
		r.sample[j] = x
	}
}

// N returns how many observations were offered.
func (r *Reservoir) N() int64 { return r.n }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 {
	return append([]float64(nil), r.sample...)
}

// Quantile estimates the q-th quantile (0..1) from the sample.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.sample) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), r.sample...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// P2Quantile estimates a single quantile incrementally in O(1) space
// using the P² algorithm (Jain & Chlamtac, 1985) — no samples stored at
// all, which suits an ICL monitoring probe times forever.
type P2Quantile struct {
	p     float64
	count int64
	// Marker heights, positions, and desired positions.
	q  [5]float64
	n  [5]float64
	np [5]float64
	dn [5]float64
	// Initial observations until 5 arrive.
	init []float64
}

// NewP2Quantile estimates the p-th quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	e := &P2Quantile{p: p}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add incorporates one observation.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if len(e.init) < 5 {
		e.init = append(e.init, x)
		if len(e.init) == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.n[i] = float64(i + 1)
			}
			for i := 0; i < 5; i++ {
				e.np[i] = 1 + 4*e.dn[i]
			}
		}
		return
	}

	// Find the cell k containing x, adjusting extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	// Adjust interior markers with the parabolic formula.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := math.Copysign(1, d)
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *P2Quantile) linear(i int, s float64) float64 {
	return e.q[i] + s*(e.q[i+int(s)]-e.q[i])/(e.n[i+int(s)]-e.n[i])
}

// Value returns the current estimate (exact until 5 observations).
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return math.NaN()
	}
	if len(e.init) < 5 {
		s := append([]float64(nil), e.init...)
		sort.Float64s(s)
		idx := int(e.p * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return e.q[2]
}

// N returns the number of observations.
func (e *P2Quantile) N() int64 { return e.count }
