package vm

import (
	"testing"

	"graybox/internal/disk"
	"graybox/internal/mem"
	"graybox/internal/sim"
)

type world struct {
	e    *sim.Engine
	pool *mem.Pool
	swap *disk.Disk
	vm   *VM
}

func newWorld(frames int) *world {
	e := sim.NewEngine(1)
	swap := disk.New(e, disk.DefaultParams())
	pool := mem.NewPool(e, frames)
	v := New(e, pool, swap, 0, DefaultConfig())
	pool.AddShrinker(v)
	return &world{e: e, pool: pool, swap: swap, vm: v}
}

func (w *world) run(t testing.TB, fn func(p *sim.Proc)) {
	t.Helper()
	pr := w.e.Go("test", fn)
	w.e.Run()
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
}

func TestZeroFillOnFirstWrite(t *testing.T) {
	w := newWorld(100)
	as := w.vm.NewSpace("a")
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(10)
		if as.Resident() != 0 {
			t.Error("pages resident before touch")
		}
		for i := int64(0); i < 10; i++ {
			as.Touch(p, r, i, true)
		}
		if as.Resident() != 10 {
			t.Errorf("resident = %d, want 10", as.Resident())
		}
	})
	if w.vm.Stats().ZeroFills != 10 {
		t.Errorf("zero fills = %d, want 10", w.vm.Stats().ZeroFills)
	}
	if w.pool.Used() != 10 {
		t.Errorf("pool used = %d, want 10", w.pool.Used())
	}
}

func TestZeroPageReadAllocatesNothing(t *testing.T) {
	w := newWorld(100)
	as := w.vm.NewSpace("a")
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(5)
		for i := int64(0); i < 5; i++ {
			as.Touch(p, r, i, false) // reads
		}
		if as.Resident() != 0 {
			t.Errorf("reads made %d pages resident; COW zero page expected", as.Resident())
		}
	})
	if w.pool.Used() != 0 {
		t.Error("zero-page reads consumed frames")
	}
}

func TestTouchResidentIsFast(t *testing.T) {
	w := newWorld(100)
	as := w.vm.NewSpace("a")
	var first, second sim.Time
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(1)
		start := p.Now()
		as.Touch(p, r, 0, true)
		first = p.Now() - start
		start = p.Now()
		as.Touch(p, r, 0, true)
		second = p.Now() - start
	})
	if second >= first {
		t.Errorf("resident touch %v not faster than fault %v", second, first)
	}
	if second > sim.Microsecond {
		t.Errorf("resident touch %v, want sub-microsecond", second)
	}
}

func TestOvercommitSwapsOut(t *testing.T) {
	w := newWorld(50)
	as := w.vm.NewSpace("a")
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(80)
		for i := int64(0); i < 80; i++ {
			as.Touch(p, r, i, true)
		}
		if as.Resident() != 50 {
			t.Errorf("resident = %d, want 50 (pool size)", as.Resident())
		}
	})
	st := w.vm.Stats()
	if st.SwapOuts != 30 {
		t.Errorf("swap-outs = %d, want 30", st.SwapOuts)
	}
	if w.swap.Stats().Writes != 30 {
		t.Errorf("swap disk writes = %d, want 30", w.swap.Stats().Writes)
	}
}

func TestSwapInRestoresResidency(t *testing.T) {
	w := newWorld(10)
	as := w.vm.NewSpace("a")
	var swapInTime sim.Time
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(15)
		for i := int64(0); i < 15; i++ {
			as.Touch(p, r, i, true)
		}
		// Pages 0..4 were swapped out (clock order). Touch page 0 again.
		start := p.Now()
		as.Touch(p, r, 0, true)
		swapInTime = p.Now() - start
	})
	if w.vm.Stats().SwapIns != 1 {
		t.Errorf("swap-ins = %d, want 1", w.vm.Stats().SwapIns)
	}
	if swapInTime < 100*sim.Microsecond {
		t.Errorf("swap-in took %v, want disk-scale time", swapInTime)
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	w := newWorld(10)
	as := w.vm.NewSpace("a")
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(12)
		for i := int64(0); i < 10; i++ {
			as.Touch(p, r, i, true)
		}
		// Re-touch pages 0 and 1: they move behind the hand.
		as.Touch(p, r, 0, true)
		as.Touch(p, r, 1, true)
		// Two more allocations must evict pages 2 and 3, not 0 and 1.
		as.Touch(p, r, 10, true)
		as.Touch(p, r, 11, true)
		for _, idx := range []int64{0, 1} {
			if !as.regions[r].pages[idx].resident {
				t.Errorf("recently touched page %d was evicted", idx)
			}
		}
		for _, idx := range []int64{2, 3} {
			if as.regions[r].pages[idx].resident {
				t.Errorf("cold page %d survived", idx)
			}
		}
	})
}

func TestFreeReturnsFramesAndSwap(t *testing.T) {
	w := newWorld(10)
	as := w.vm.NewSpace("a")
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(15)
		for i := int64(0); i < 15; i++ {
			as.Touch(p, r, i, true)
		}
		as.Free(r)
		if w.pool.Used() != 0 {
			t.Errorf("pool used = %d after Free, want 0", w.pool.Used())
		}
		if as.Resident() != 0 {
			t.Errorf("resident = %d after Free", as.Resident())
		}
		// All swap slots recycled: allocate and overcommit again without
		// growing swapNext unboundedly.
		free := len(w.vm.swapFree)
		if free != 5 {
			t.Errorf("free swap slots = %d, want 5", free)
		}
	})
}

func TestReleaseFreesEverything(t *testing.T) {
	w := newWorld(100)
	as := w.vm.NewSpace("a")
	w.run(t, func(p *sim.Proc) {
		r1 := as.Alloc(5)
		r2 := as.Alloc(5)
		for i := int64(0); i < 5; i++ {
			as.Touch(p, r1, i, true)
			as.Touch(p, r2, i, true)
		}
		as.Release()
	})
	if w.pool.Used() != 0 {
		t.Errorf("pool used = %d after Release", w.pool.Used())
	}
	if len(as.regions) != 0 {
		t.Error("regions survive Release")
	}
}

func TestTwoSpacesCompete(t *testing.T) {
	w := newWorld(100)
	a := w.vm.NewSpace("a")
	b := w.vm.NewSpace("b")
	w.run(t, func(p *sim.Proc) {
		ra := a.Alloc(60)
		for i := int64(0); i < 60; i++ {
			a.Touch(p, ra, i, true)
		}
		rb := b.Alloc(60)
		for i := int64(0); i < 60; i++ {
			b.Touch(p, rb, i, true)
		}
		// b's allocation displaced a's cold pages.
		if a.Resident()+b.Resident() != 100 {
			t.Errorf("resident a=%d b=%d, want total 100", a.Resident(), b.Resident())
		}
		if b.Resident() != 60 {
			t.Errorf("b resident = %d, want all 60 (freshly touched)", b.Resident())
		}
	})
}

func TestResidentInvariantProperty(t *testing.T) {
	// Random touch/free workloads never exceed pool capacity and always
	// keep a just-written page resident.
	w := newWorld(32)
	as := w.vm.NewSpace("a")
	rng := sim.NewRNG(9)
	w.run(t, func(p *sim.Proc) {
		r := as.Alloc(64)
		for step := 0; step < 2000; step++ {
			idx := rng.Int63n(64)
			as.Touch(p, r, idx, true)
			if !as.regions[r].pages[idx].resident {
				t.Fatalf("page %d not resident immediately after write", idx)
			}
			if as.Resident() > 32 {
				t.Fatalf("resident %d exceeds pool capacity", as.Resident())
			}
		}
	})
}

func TestAllocBadArgsPanic(t *testing.T) {
	w := newWorld(10)
	as := w.vm.NewSpace("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	as.Alloc(0)
}
