package disk

import "graybox/internal/sim"

// State is a copy of a disk's mutable state — head position, counters,
// track-buffer memory, and scheduler selection — captured with
// Disk.State from an idle disk and restored into a fresh disk with
// Disk.Restore.
type State struct {
	headCyl     int
	stats       Stats
	lastEnd     int64
	lastEndTime sim.Time
	policy      Scheduler
	upsweep     bool
}

// State captures the disk's mutable state. It panics if the disk is
// mid-request or has queued work: snapshots are taken only at
// quiescence, where the state is exactly these scalars.
func (d *Disk) State() State {
	if d.sched.busy || len(d.sched.queue) > 0 {
		panic("disk: State with requests in flight")
	}
	return State{
		headCyl:     d.headCyl,
		stats:       d.stats,
		lastEnd:     d.lastEnd,
		lastEndTime: d.lastEndTime,
		policy:      d.sched.policy,
		upsweep:     d.sched.upsweep,
	}
}

// Restore overwrites a fresh disk's state with a captured State. The
// destination must have the same Params as the source.
func (d *Disk) Restore(s State) {
	if d.sched.busy || len(d.sched.queue) > 0 {
		panic("disk: Restore with requests in flight")
	}
	d.headCyl = s.headCyl
	d.stats = s.stats
	d.lastEnd = s.lastEnd
	d.lastEndTime = s.lastEndTime
	d.sched.policy = s.policy
	d.sched.upsweep = s.upsweep
}
