package telemetry

// This file is the virtual-time profiler: it aggregates the span log
// into call stacks. Two renderings are provided — folded stacks (one
// "frame;frame;frame self_ns" line per unique stack, the input format
// of flamegraph.pl and of speedscope's "folded" importer) and a top-N
// table of self/total time per span name. All numbers are virtual
// nanoseconds, so profiles are deterministic and comparable across
// runs, machines, and -parallel widths.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// profile is the per-registry stack aggregation.
type profile struct {
	folded map[string]int64 // full stack -> self ns
	byName map[string]*nameStat
}

type nameStat struct {
	name    string
	count   int64
	selfNS  int64
	totalNS int64
}

// sanitizeFrame keeps a frame printable inside a folded line: the stack
// separator (';') and the trailing-count separator (' ') are replaced.
func sanitizeFrame(s string) string {
	s = strings.ReplaceAll(s, ";", ",")
	return strings.ReplaceAll(s, " ", "_")
}

// buildProfile folds one registry's completed spans into stacks. Self
// time is a span's duration minus its direct children's durations
// (clamped at zero); instants and still-open spans are skipped. Orphan
// spans — whose parent never made it into the log — root their own
// stacks.
func buildProfile(r *Registry) profile {
	p := profile{folded: map[string]int64{}, byName: map[string]*nameStat{}}
	if r == nil {
		return p
	}
	byID := make(map[int64]int, len(r.spans))
	childNS := make(map[int64]int64)
	for i, s := range r.spans {
		if s.dur < 0 {
			continue
		}
		byID[s.id] = i
		childNS[s.parent] += s.dur
	}
	prefix := sanitizeFrame(r.label)
	for _, s := range r.spans {
		if s.dur < 0 {
			continue
		}
		self := s.dur - childNS[s.id]
		if self < 0 {
			self = 0
		}
		// Walk ancestors to assemble the stack, leaf last. The depth cap
		// guards against a (should-be-impossible) parent cycle.
		frames := []string{sanitizeFrame(s.name)}
		for at, depth := s.parent, 0; at != 0 && depth < 1<<10; depth++ {
			i, ok := byID[at]
			if !ok {
				break // parent dropped or still open: treat as root
			}
			frames = append(frames, sanitizeFrame(r.spans[i].name))
			at = r.spans[i].parent
		}
		if tr := int(s.tid) - 1; tr >= 0 && tr < len(r.tracks) {
			frames = append(frames, sanitizeFrame(r.tracks[tr].name))
		}
		if prefix != "" {
			frames = append(frames, prefix)
		}
		// frames is leaf-first; reverse into root-first folded order.
		for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
			frames[i], frames[j] = frames[j], frames[i]
		}
		p.folded[strings.Join(frames, ";")] += self

		st := p.byName[s.name]
		if st == nil {
			st = &nameStat{name: s.name}
			p.byName[s.name] = st
		}
		st.count++
		st.selfNS += self
		st.totalNS += s.dur
	}
	return p
}

// WriteFolded writes the registries' span logs as folded stacks, lines
// sorted lexically for byte-stable output. Feed the file to
// flamegraph.pl or import it into speedscope (https://speedscope.app)
// to browse the virtual-time flame graph.
func WriteFolded(w io.Writer, regs []*Registry) error {
	merged := map[string]int64{}
	for _, r := range regs {
		for stack, ns := range buildProfile(r).folded {
			merged[stack] += ns
		}
	}
	for _, stack := range sortedKeys(merged) {
		if _, err := fmt.Fprintf(w, "%s %d\n", stack, merged[stack]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTopTable writes a top-N table of span names ranked by self time
// (virtual milliseconds), with call counts and total (inclusive) time —
// the quick "where does virtual time go" view that needs no external
// viewer. topN <= 0 means every name.
func WriteTopTable(w io.Writer, regs []*Registry, topN int) error {
	merged := map[string]*nameStat{}
	for _, r := range regs {
		for name, st := range buildProfile(r).byName {
			m := merged[name]
			if m == nil {
				m = &nameStat{name: name}
				merged[name] = m
			}
			m.count += st.count
			m.selfNS += st.selfNS
			m.totalNS += st.totalNS
		}
	}
	stats := make([]*nameStat, 0, len(merged))
	for _, st := range merged {
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].selfNS != stats[j].selfNS {
			return stats[i].selfNS > stats[j].selfNS
		}
		return stats[i].name < stats[j].name
	})
	if topN > 0 && len(stats) > topN {
		stats = stats[:topN]
	}
	if _, err := fmt.Fprintf(w, "%-32s %10s %14s %14s\n", "span", "count", "self_ms", "total_ms"); err != nil {
		return err
	}
	for _, st := range stats {
		_, err := fmt.Fprintf(w, "%-32s %10d %14.3f %14.3f\n",
			st.name, st.count, float64(st.selfNS)/1e6, float64(st.totalNS)/1e6)
		if err != nil {
			return err
		}
	}
	return nil
}
