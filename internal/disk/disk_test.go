package disk

import (
	"testing"
	"testing/quick"

	"graybox/internal/sim"
)

func newTestDisk(e *sim.Engine) *Disk { return New(e, DefaultParams()) }

func TestParamsDerived(t *testing.T) {
	p := DefaultParams()
	if p.RotationPeriod() != 6*sim.Millisecond {
		t.Errorf("rotation period = %v, want 6ms", p.RotationPeriod())
	}
	want := int64(30 * 10 * 8714)
	if p.Blocks() != want {
		t.Errorf("Blocks = %d, want %d", p.Blocks(), want)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	e := sim.NewEngine(1)
	bad := DefaultParams()
	bad.RPM = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid params")
		}
	}()
	New(e, bad)
}

func TestSequentialNearBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDisk(e)
	const nblocks = 2560 // 10 MB in 4 KB blocks
	done := e.Go("reader", func(p *sim.Proc) {
		for b := int64(0); b < nblocks; b++ {
			d.Access(p, b, 1, false)
		}
	})
	e.Run()
	_ = done
	// 10 MB at ~20 MB/s media rate should take roughly 0.5s; allow for
	// per-request overhead (2560 * 50us = 128ms) and initial positioning.
	elapsed := e.Now()
	if elapsed < 400*sim.Millisecond || elapsed > 900*sim.Millisecond {
		t.Errorf("sequential 10MB took %v, want ~0.5-0.9s", elapsed)
	}
	st := d.Stats()
	if st.Reads != nblocks || st.BlocksRead != nblocks {
		t.Errorf("stats = %+v", st)
	}
	// After the first positioning, sequential single-block reads should
	// pay no further rotational latency.
	if st.RotTime > d.Params().RotationPeriod() {
		t.Errorf("rotational time %v for sequential run, want <= one period", st.RotTime)
	}
}

func TestRandomSlowerThanSequential(t *testing.T) {
	run := func(random bool) sim.Time {
		e := sim.NewEngine(7)
		d := newTestDisk(e)
		rng := sim.NewRNG(99)
		const n = 200
		e.Go("r", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				b := int64(i)
				if random {
					b = rng.Int63n(d.Params().Blocks())
				}
				d.Access(p, b, 1, false)
			}
		})
		e.Run()
		return e.Now()
	}
	seq, rnd := run(false), run(true)
	if rnd < 5*seq {
		t.Errorf("random %v not much slower than sequential %v", rnd, seq)
	}
	// Random 4KB accesses should average seek+rot ~ 8ms each.
	per := rnd / 200
	if per < 3*sim.Millisecond || per > 15*sim.Millisecond {
		t.Errorf("random access latency %v, want 3-15ms", per)
	}
}

func TestSeekCurveMonotonic(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDisk(e)
	if d.seekTime(0, 0) != 0 {
		t.Error("zero-distance seek should be free")
	}
	prev := sim.Time(0)
	for _, dist := range []int{1, 10, 100, 1000, 8000} {
		s := d.seekTime(0, dist)
		if s <= prev {
			t.Errorf("seek(%d) = %v not increasing", dist, s)
		}
		prev = s
	}
	if d.seekTime(0, d.Params().Cylinders-1) != d.Params().MaxSeek {
		t.Errorf("full-stroke seek = %v, want MaxSeek", d.seekTime(0, d.Params().Cylinders-1))
	}
	if d.seekTime(5, 100) != d.seekTime(100, 5) {
		t.Error("seek should be symmetric")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDisk(e)
	e.Go("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range access")
			}
			panic("rethrow to end proc") // keep proc bookkeeping consistent
		}()
		d.Access(p, d.Params().Blocks(), 1, false)
	})
	e.Run()
}

func TestFIFOContention(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDisk(e)
	var order []string
	req := func(name string, delay sim.Time) {
		e.Spawn(name, delay, func(p *sim.Proc) {
			d.Access(p, 0, 30, false) // one full track
			order = append(order, name)
		})
	}
	req("a", 0)
	req("b", 1)
	req("c", 2)
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v, want [a b c]", order)
	}
	if d.Stats().QueueTime == 0 {
		t.Error("expected nonzero queueing time under contention")
	}
}

func TestWriteCounters(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDisk(e)
	e.Go("w", func(p *sim.Proc) {
		d.Access(p, 100, 8, true)
	})
	e.Run()
	st := d.Stats()
	if st.Writes != 1 || st.BlocksWrote != 8 || st.Reads != 0 {
		t.Errorf("stats = %+v", st)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestServiceTimeNonNegativeProperty(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDisk(e)
	f := func(rawBlock uint32, rawN uint8, rawStart uint32) bool {
		block := int64(rawBlock) % d.Params().Blocks()
		n := int(rawN%30) + 1
		seek, rot, xfer := d.serviceTime(block, n, sim.Time(rawStart))
		return seek >= 0 && rot >= 0 && xfer > 0 &&
			rot < d.Params().RotationPeriod()+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDisk(e)
	e.Go("r", func(p *sim.Proc) {
		d.Access(p, 0, 30, false)
		p.Sleep(sim.Second)
		d.Access(p, 0, 30, false)
	})
	e.Run()
	if d.BusyTime() <= 0 || d.BusyTime() >= e.Now() {
		t.Errorf("BusyTime = %v out of (0, %v)", d.BusyTime(), e.Now())
	}
}
