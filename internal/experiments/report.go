// Package experiments contains one harness per table and figure of the
// paper's evaluation (Tables 1-2, Figures 1-7, and the Section 4.3.3 MAC
// accuracy validation). Each harness builds the workload the paper
// describes, runs it on the simulated platform(s), and returns a Table
// whose rows correspond to the points/bars the paper plots.
//
// Every harness accepts a Scale so the same code serves both the
// full-size reproduction (cmd/gb-experiments, EXPERIMENTS.md) and the
// fast scaled-down variants used by tests and benchmarks.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "*%s*\n", n)
		}
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Scale selects experiment sizing.
type Scale struct {
	// MemoryMB is the machine's physical memory (kernel reserve scales
	// with it in the harnesses).
	MemoryMB int
	// Trials is the number of repetitions averaged per data point (the
	// paper uses 30).
	Trials int
	// Name labels the scale in output.
	Name string
	// SwarmProcs, when > 0, adds a swarm of that many short-lived
	// computing processes to every noise trial — the mega-scale
	// scheduler load (ROADMAP item 1) that the sharded event lanes
	// exist to carry. 0 (every default scale) adds nothing, so output
	// is unchanged unless a swarm scale is selected.
	SwarmProcs int
}

// FullScale reproduces the paper's 896 MB machine. Points use fewer
// trials than the paper's 30 because the simulator is deterministic up
// to seeding.
func FullScale() Scale { return Scale{MemoryMB: 896, Trials: 5, Name: "full"} }

// QuickScale is a 64 MB machine for tests and benchmarks; every workload
// dimension shrinks by the same ~14x factor so shapes are preserved.
func QuickScale() Scale { return Scale{MemoryMB: 64, Trials: 3, Name: "quick"} }

// MegaScale is the full-size machine under mega-scale process load: every
// noise trial additionally runs 200k short-lived computing processes
// (10⁵ per trial, 10⁶ across a sweep), the population the sharded event
// lanes are built for. Two repetitions keep a sweep affordable.
func MegaScale() Scale { return Scale{MemoryMB: 896, Trials: 2, Name: "mega", SwarmProcs: 200_000} }

// factor returns the ratio of this scale to the paper's machine, used to
// shrink file sizes proportionally.
func (s Scale) factor() float64 { return float64(s.MemoryMB) / 896.0 }

// mb scales a paper-sized megabyte figure, keeping at least 1 MB.
func (s Scale) mb(paperMB float64) int64 {
	v := int64(paperMB * s.factor())
	if v < 1 {
		v = 1
	}
	return v
}

// bytes scales a paper-sized megabyte figure to bytes without the 1 MB
// floor (for sub-MB units at small scales), rounded up to a page.
func (s Scale) bytes(paperMB float64, pageSize int) int64 {
	v := int64(paperMB * s.factor() * (1 << 20))
	ps := int64(pageSize)
	if v < ps {
		v = ps
	}
	return (v + ps - 1) / ps * ps
}
