package afs

import (
	"graybox/internal/sim"
)

// Prefetcher is the gray-box ICL over the AFS client: it exploits
// whole-file caching to overlap network fetches with computation. While
// the application processes file i, a helper process reads a single
// byte of file i+1, which side-effects the entire file into the local
// cache (the Section 2.2 trick). No prefetch interface exists on the
// client; the control comes entirely from algorithmic knowledge of its
// caching policy.
type Prefetcher struct {
	c *Client
	// Depth is how many files ahead to trigger (default 1).
	Depth int

	// Triggered counts one-byte prefetch probes issued.
	Triggered int64
}

// NewPrefetcher wraps a client.
func NewPrefetcher(c *Client) *Prefetcher { return &Prefetcher{c: c, Depth: 1} }

// Process reads every file fully in order, charging perByte of CPU work
// per byte, with prefetch helpers running ahead. It returns when all
// files are processed.
func (pf *Prefetcher) Process(p *sim.Proc, files []string, perByte sim.Time) error {
	depth := pf.Depth
	if depth < 1 {
		depth = 1
	}
	// Helper process: walks ahead issuing one-byte reads. Each such
	// read blocks the helper for the whole-file fetch, naturally
	// rate-limiting the prefetch distance to "depth fetches ahead of
	// the reader" because the helper waits for the reader through
	// the shared cursor.
	cursor := 0 // index the main loop is processing
	done := false
	helper := p.Engine().Go("afs-prefetch", func(h *sim.Proc) {
		next := 0
		for !done && next < len(files) {
			if next > cursor+depth {
				h.Sleep(sim.Millisecond)
				continue
			}
			if err := pf.c.Read(h, files[next], 0, 1); err != nil {
				return
			}
			pf.Triggered++
			next++
		}
	})
	_ = helper

	for i, name := range files {
		cursor = i
		size := pf.c.sizes[name]
		if err := pf.c.Read(p, name, 0, size); err != nil {
			done = true
			return err
		}
		p.Sleep(sim.Time(size) * perByte)
	}
	done = true
	return nil
}

// ProcessSequential is the baseline: no prefetching, fetch-then-compute
// serially.
func ProcessSequential(c *Client, p *sim.Proc, files []string, perByte sim.Time) error {
	for _, name := range files {
		size := c.sizes[name]
		if err := c.Read(p, name, 0, size); err != nil {
			return err
		}
		p.Sleep(sim.Time(size) * perByte)
	}
	return nil
}
