package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal fire times run in
// scheduling order (seq), which keeps the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// The engine is strictly single-threaded from the caller's perspective:
// although processes are goroutines, exactly one of them (or the engine
// loop itself) runs at any instant, with explicit handoff. This makes every
// run with the same seed bit-for-bit reproducible.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *RNG

	// yield carries control back from a running process to the engine
	// loop. All processes share it; only the currently-running process
	// ever sends on it.
	yield chan struct{}

	procs   []*Proc
	blocked int // processes parked with no pending wake event
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG seeded with seed.
func NewEngine(seed uint64) *Engine {
	e := &Engine{
		rng:   NewRNG(seed),
		yield: make(chan struct{}),
	}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Schedule runs fn at time at (which must not be in the past). It returns
// a handle that can be used to cancel the event.
func (e *Engine) Schedule(at Time, fn func()) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After runs fn after duration d.
func (e *Engine) After(d Time, fn func()) *event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired event is a
// no-op.
func (e *Engine) Cancel(ev *event) {
	for i, cand := range e.events {
		if cand == ev {
			heap.Remove(&e.events, i)
			return
		}
	}
}

// step fires the earliest pending event. It reports false when no events
// remain.
func (e *Engine) step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the queue is empty. It panics if processes
// remain blocked with no event that could ever wake them (a simulation
// deadlock), since silently returning would make such bugs easy to miss.
func (e *Engine) Run() {
	for e.step() {
	}
	if e.liveBlocked() > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with empty event queue at %v", e.liveBlocked(), e.now))
	}
}

// RunUntil processes events with fire times <= deadline and then advances
// the clock to exactly deadline. Blocked processes are left parked.
func (e *Engine) RunUntil(deadline Time) {
	for e.events.Len() > 0 && e.events[0].at <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// liveBlocked counts processes that are parked and not finished.
func (e *Engine) liveBlocked() int {
	n := 0
	for _, p := range e.procs {
		if p.state == procBlocked {
			n++
		}
	}
	return n
}

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return e.events.Len() == 0 }
