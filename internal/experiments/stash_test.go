package experiments

import "testing"

// TestStashShape checks the experiment's headline claim at quick scale:
// with a meaningfully warm read stream, gray-box admission wastes
// strictly less of its quota on OS-resident blocks than the naive arm,
// at at least one quota point (the acceptance bar; in practice every
// point separates).
func TestStashShape(t *testing.T) {
	tab := Stash(StashConfig{
		Scale:       QuickScale(),
		QuotaFracs:  []float64{0.125, 0.5},
		Intensities: []float64{0.5},
	})
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 quotas x 1 intensity x 2 policies)", len(tab.Rows))
	}
	const (
		colQuota = 0
		colWarm  = 1
		colPol   = 2
		colAdm   = 5
		colRate  = 7
		colOff   = 9
	)
	wins := 0
	for i := 0; i < len(tab.Rows); i += 2 {
		naive, gray := tab.Rows[i], tab.Rows[i+1]
		if naive[colPol] != "naive" || gray[colPol] != "graybox" {
			t.Fatalf("row order: got policies %q,%q", naive[colPol], gray[colPol])
		}
		if naive[colQuota] != gray[colQuota] || naive[colWarm] != gray[colWarm] {
			t.Fatalf("arm pairing broken: %v vs %v", naive, gray)
		}
		nr, gr := cellFloat(t, naive[colRate]), cellFloat(t, gray[colRate])
		if gr < nr {
			wins++
		}
		// The naive arm admits every miss; with half the stream on warm
		// files its waste is substantial, not incidental.
		if cellFloat(t, naive[colAdm]) <= 0 || nr < 0.1 {
			t.Errorf("naive arm %s: admits=%s wasted-rate=%s — workload isn't creating double-caching pressure",
				naive[colQuota], naive[colAdm], naive[colRate])
		}
		if off := cellFloat(t, gray[colOff]); off <= 0 {
			t.Errorf("gray-box arm %s served nothing in degraded mode", gray[colQuota])
		}
	}
	if wins == 0 {
		t.Error("gray-box admission never beat naive on wasted-admission rate")
	}
}
