package sim

// Timing-wheel and heap machinery, extracted from engine.go so the
// sharded-lane engine (shard.go) can reuse it: a lane is one pending-event
// shard — its own two-level timing wheel in front of its own binary
// min-heap, with the exact insert/advance/sweep behavior the single-lane
// engine has always had. The serial engine is simply lane 0 of a
// one-lane slice, so the -shard-parallel 0 anchor runs this code
// unchanged.

// Timing-wheel geometry (DESIGN.md §14). A tick is 2^wheelShift
// nanoseconds (~4.1 µs); level 0 resolves one tick per slot, level 1 one
// 256-tick block per slot, so the two levels cover 65536 ticks (~268 ms)
// of look-ahead — comfortably past the sleep/IO delays that dominate the
// simulator. Events beyond the horizon (and same-tick events, which must
// keep strict (at, seq) order) overflow to the heap.
const (
	wheelShift   = 12
	wheelBits    = 8
	wheelSlots   = 1 << wheelBits
	wheelMask    = wheelSlots - 1
	wheelHorizon = wheelSlots * wheelSlots

	// defaultWheelMin is the live-event population below which inserts
	// bypass the wheel entirely: for the tiny heaps of single-process
	// experiments the heap is already cheap, and skipping the wheel keeps
	// drain bookkeeping off their hot path.
	defaultWheelMin = 64
)

// eventHeap is a binary min-heap ordered by (at, seq). It is a concrete
// implementation — no container/heap, so Push/Pop involve no interface
// boxing and no indirect calls on the hot path.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// lane is one pending-event shard: a heap, the two-level wheel in front
// of it, a private free list, and (in shard mode) the harvested-run and
// deferred-push buffers the conservative-lookahead protocol fills. All
// lane state is owned by exactly one goroutine at a time — the engine
// thread between horizons, one harvest worker during a harvest — so none
// of it needs locks.
type lane struct {
	events eventHeap
	free   *event // per-lane recycled-event free list

	// live is the number of live events resident in this lane's heap and
	// wheel (run/defer/overlay residents are counted only in Engine.live).
	// The heap holds len(events) - (live - wheelLive) tombstones.
	live int

	// Hierarchical timing wheel. Slots hold unordered singly-linked
	// chains (through event.next); every chained event has tick >=
	// wheelTick, and firing always goes through the heap (drained in
	// peekLive or a harvest), so wheel placement never affects (at, seq)
	// order.
	l0, l1    [wheelSlots]*event
	wheelTick int64 // current L0 position, in ticks
	wheelLive int   // live events chained in the wheel
	wheelDead int   // canceled events still chained in the wheel
	l0Count   int   // chained events (live + dead) per level, for
	l1Count   int   // empty-stretch skipping and refill short-circuits

	// Shard-mode buffers (empty on the serial engine). run holds the
	// lane's harvested events — every live event with at < the engine
	// horizon, in (at, seq) order — consumed through runPos by the
	// loser-tree merge. deferred holds events pushed at or beyond the
	// horizon since the last harvest, unordered; the next harvest folds
	// them into the wheel/heap.
	run      []*event
	runPos   int
	deferred []*event
}

// recycle bumps the event's generation (invalidating outstanding handles)
// and puts it on this lane's free list.
func (ln *lane) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.proc, ev.kind = nil, nil, evWake
	ev.next = ln.free
	ln.free = ev
}

// take pops a recycled event struct (or allocates one).
func (ln *lane) take() *event {
	ev := ln.free
	if ev != nil {
		ln.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	return ev
}

// heapInsert adds a stamped event to the heap. It must not touch seq:
// wheel drains reuse it to move events without re-stamping them.
func (ln *lane) heapInsert(ev *event) {
	ev.loc = locHeap
	ln.events = append(ln.events, ev)
	ln.events.siftUp(len(ln.events) - 1)
}

// place routes a stamped event to a wheel slot or the heap. Same-tick and
// past-tick events go to the heap (they may be due before the wheel next
// advances); so do events beyond the wheel horizon, and everything while
// the live population is too small for the wheel to pay for itself. The
// caller has already counted ev in ln.live.
func (ln *lane) place(e *Engine, ev *event) {
	if ln.wheelLive == 0 {
		if ln.live <= e.wheelMin {
			ln.heapInsert(ev)
			return
		}
		// (Re)activate the wheel at the current tick. Chains are empty
		// here — wheelLive only reaches zero once every chained event has
		// been drained or swept — so the position reset is safe.
		ln.wheelTick = int64(e.now) >> wheelShift
	}
	tk := int64(ev.at) >> wheelShift
	switch dt := tk - ln.wheelTick; {
	case dt < 1 || dt >= wheelHorizon:
		ln.heapInsert(ev)
		return
	case dt < wheelSlots:
		s := tk & wheelMask
		ev.next = ln.l0[s]
		ln.l0[s] = ev
		ln.l0Count++
	default:
		s := (tk >> wheelBits) & wheelMask
		ev.next = ln.l1[s]
		ln.l1[s] = ev
		ln.l1Count++
	}
	ev.loc = locWheel
	ln.wheelLive++
}

// refill moves the L1 slot for the 256-tick block wheelTick just entered
// down into L0. Every live event in the slot provably belongs to the
// current block: inserts are bounded to the 65536-tick horizon, so two
// events one full L1 lap apart can never share a slot.
func (ln *lane) refill() {
	s := (ln.wheelTick >> wheelBits) & wheelMask
	ev := ln.l1[s]
	ln.l1[s] = nil
	for ev != nil {
		next := ev.next
		ev.next = nil
		ln.l1Count--
		if ev.dead() {
			ln.wheelDead--
			ln.recycle(ev)
		} else {
			tk := int64(ev.at) >> wheelShift
			if tk>>wheelBits != ln.wheelTick>>wheelBits {
				panic("sim: wheel refill found event outside its block")
			}
			i := tk & wheelMask
			ev.next = ln.l0[i]
			ln.l0[i] = ev
			ln.l0Count++
		}
		ev = next
	}
}

// dumpSlot empties the current L0 slot: live events move to the heap with
// their original (at, seq) stamps, tombstones are recycled.
func (ln *lane) dumpSlot() {
	s := ln.wheelTick & wheelMask
	ev := ln.l0[s]
	ln.l0[s] = nil
	for ev != nil {
		next := ev.next
		ev.next = nil
		ln.l0Count--
		if ev.dead() {
			ln.wheelDead--
			ln.recycle(ev)
		} else {
			ln.wheelLive--
			ln.heapInsert(ev)
		}
		ev = next
	}
}

// advanceWheel drains every wheel slot with tick < target into the heap
// and moves the wheel position to target. Empty 256-tick stretches are
// skipped in O(1) per block via the chained-event counters.
func (ln *lane) advanceWheel(target int64) {
	for ln.wheelTick < target {
		if ln.wheelLive == 0 {
			ln.wheelTick = target
			return
		}
		if ln.wheelTick&wheelMask == 0 && ln.l1Count > 0 {
			ln.refill()
		}
		if ln.l0Count == 0 {
			next := (ln.wheelTick | wheelMask) + 1
			if next > target {
				next = target
			}
			ln.wheelTick = next
			continue
		}
		ln.dumpSlot()
		ln.wheelTick++
	}
}

// advanceToHeap advances the wheel until the heap gains an event (used
// when the heap is empty but the wheel is not).
func (ln *lane) advanceToHeap() {
	for len(ln.events) == 0 && ln.wheelLive > 0 {
		if ln.wheelTick&wheelMask == 0 && ln.l1Count > 0 {
			ln.refill()
		}
		if ln.l0Count == 0 {
			ln.wheelTick = (ln.wheelTick | wheelMask) + 1
			continue
		}
		ln.dumpSlot()
		ln.wheelTick++
	}
}

// sweepWheel unchains every tombstone in the wheel. It runs when cancels
// empty the wheel of live events (restoring the chains-empty invariant
// behind wheel reactivation) or when tombstones outnumber live events.
func (ln *lane) sweepWheel() {
	for i := range ln.l0 {
		ln.l0[i] = ln.sweepChain(ln.l0[i], &ln.l0Count)
	}
	for i := range ln.l1 {
		ln.l1[i] = ln.sweepChain(ln.l1[i], &ln.l1Count)
	}
}

// sweepChain filters tombstones out of one slot chain. Chains are
// unordered, so the reversal it causes is harmless.
func (ln *lane) sweepChain(head *event, count *int) *event {
	var out *event
	for ev := head; ev != nil; {
		next := ev.next
		if ev.dead() {
			*count--
			ln.wheelDead--
			ev.next = nil
			ln.recycle(ev)
		} else {
			ev.next = out
			out = ev
		}
		ev = next
	}
	return out
}

// popMin removes and returns the earliest event in the heap.
func (ln *lane) popMin() *event {
	h := ln.events
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	ln.events = h[:n]
	ln.events.siftDown(0)
	return ev
}

// peekLive discards tombstones at the top of the heap, drains any wheel
// slot that could precede the heap's minimum, and returns the earliest
// live event overall (always at the top of the heap), or nil if none
// remain. After it returns an event h, every wheel event has
// tick >= wheelTick > tick(h.at) and therefore fires strictly after h,
// so the heap's (at, seq) order is this lane's firing order.
func (ln *lane) peekLive() *event {
	for {
		var h *event
		for len(ln.events) > 0 {
			if ev := ln.events[0]; !ev.dead() {
				h = ev
				break
			}
			ln.recycle(ln.popMin())
		}
		if ln.wheelLive == 0 {
			return h
		}
		if h != nil {
			tk := int64(h.at) >> wheelShift
			if tk < ln.wheelTick {
				return h
			}
			ln.advanceWheel(tk + 1)
		} else {
			ln.advanceToHeap()
			if ln.wheelLive == 0 && len(ln.events) == 0 {
				return nil
			}
		}
	}
}

// compact rebuilds the heap without its tombstones.
func (ln *lane) compact() {
	h := ln.events
	kept := h[:0]
	for _, ev := range h {
		if !ev.dead() {
			kept = append(kept, ev)
		} else {
			ln.recycle(ev)
		}
	}
	for i := range h[len(kept):] {
		h[len(kept)+i] = nil
	}
	ln.events = kept
	for i := len(kept)/2 - 1; i >= 0; i-- {
		kept.siftDown(i)
	}
}
