package mac

import (
	"testing"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

func TestBrokerSingleClient(t *testing.T) {
	s := newSys()
	b := NewBroker(BrokerConfig{MAC: testConfig()})
	err := s.Run("t", func(os *simos.OS) {
		c := b.Attach(os)
		a, err := c.Acquire(4*simos.MB, 56*simos.MB, simos.MB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Bytes < 16*simos.MB {
			t.Errorf("got only %d MB", a.Bytes/simos.MB)
		}
		if c.Held() != a {
			t.Error("Held() mismatch")
		}
		c.Release()
		if c.Held() != nil {
			t.Error("Held() after release")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBrokerRejectsHoldAndWait(t *testing.T) {
	s := newSys()
	b := NewBroker(BrokerConfig{MAC: testConfig()})
	err := s.Run("t", func(os *simos.OS) {
		c := b.Attach(os)
		if _, err := c.Acquire(simos.MB, 8*simos.MB, simos.MB, 0); err != nil {
			t.Fatal(err)
		}
		// The deadlock recipe of Section 4.3.2: allocate half, then ask
		// for more while holding. The broker refuses immediately instead
		// of letting two such clients wait on each other forever.
		if _, err := c.Acquire(simos.MB, 8*simos.MB, simos.MB, 0); err == nil {
			t.Fatal("hold-and-wait accepted")
		}
		c.Release()
		if _, err := c.Acquire(simos.MB, 8*simos.MB, simos.MB, 0); err != nil {
			t.Fatalf("acquire after release failed: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBrokerFIFOAndFairShare(t *testing.T) {
	s := newSys()
	b := NewBroker(BrokerConfig{MAC: testConfig(), FairShare: true})
	gots := make([]int64, 3)
	order := []int{}
	procs := make([]*sim.Proc, 3)
	for i := 0; i < 3; i++ {
		i := i
		procs[i] = s.Spawn("client", sim.Time(i)*sim.Millisecond, func(os *simos.OS) {
			c := b.Attach(os)
			a, err := c.Acquire(2*simos.MB, 56*simos.MB, simos.MB, 0)
			if err != nil {
				t.Error(err)
				return
			}
			gots[i] = a.Bytes / simos.MB
			order = append(order, i)
			// Hold while the others acquire, then release.
			os.Sleep(2 * sim.Second)
			c.Release()
		})
	}
	s.Engine.WaitAll(procs...)
	for i, p := range procs {
		if p.Err() != nil {
			t.Fatalf("client %d: %v", i, p.Err())
		}
	}
	// FIFO: clients finish their probe phases in arrival order.
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("probe order = %v, want FIFO", order)
	}
	// Fair share: the first client grabs most of memory; the later ones
	// are clamped to shares of the observed total, and every client got
	// its minimum.
	if gots[1] > gots[0]/2+2 {
		t.Errorf("client 1 got %d MB, want <= half of client 0's %d MB", gots[1], gots[0])
	}
	for i, g := range gots {
		if g < 2 {
			t.Errorf("client %d starved: %d MB", i, g)
		}
	}
}

func TestBrokerAcquireTimeout(t *testing.T) {
	s := newSys()
	b := NewBroker(BrokerConfig{MAC: testConfig()})
	err := s.Run("t", func(os *simos.OS) {
		c1 := b.Attach(os)
		if _, err := c1.Acquire(40*simos.MB, 56*simos.MB, simos.MB, 0); err != nil {
			t.Fatal(err)
		}
		// Second client (same process for simplicity) cannot get 40 MB
		// while c1 holds it; must time out rather than wait forever.
		c2 := b.Attach(os)
		start := os.Now()
		_, err := c2.Acquire(40*simos.MB, 56*simos.MB, simos.MB, 2*sim.Second)
		if err == nil {
			t.Fatal("expected timeout")
		}
		if waited := os.Now() - start; waited < 2*sim.Second || waited > 4*sim.Second {
			t.Errorf("waited %v, want ~2s", waited)
		}
		c1.Release()
	})
	if err != nil {
		t.Fatal(err)
	}
}
