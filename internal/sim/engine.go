package sim

import (
	"fmt"

	"graybox/internal/telemetry"
)

// event is a scheduled callback. Events with equal fire times run in
// scheduling order (seq), which keeps the simulation deterministic.
//
// Events are pooled: once fired or drained as a tombstone the struct goes
// onto the engine's free list and is reused by a later Schedule. gen is
// bumped at recycle time so stale Event handles can never touch the new
// occupant.
type event struct {
	at  Time
	seq uint64
	gen uint64
	fn  func()
	// proc, when non-nil, is handled instead of calling fn: kind selects
	// a wake or a scheduler timeslice. Process wakes (Sleep, Unblock) are
	// the single hottest event type, and storing the process directly
	// avoids allocating a wake closure per sleep; slice events reuse the
	// same field so the SMP scheduler's hot path is closure-free too.
	proc *Proc
	next *event // free-list or wheel-slot link, nil while in the heap
	// kind discriminates proc events (evWake, evSlice); meaningless for
	// fn events.
	kind uint8
	// wheel marks an event parked in a timing-wheel slot rather than the
	// heap, so Cancel maintains the right tombstone counter.
	wheel bool
}

// Proc-event kinds.
const (
	evWake  uint8 = iota // resume ev.proc
	evSlice              // timeslice expiry for ev.proc (sched.go)
)

// dead reports whether the slot is a tombstone (canceled or recycled).
func (ev *event) dead() bool { return ev.fn == nil && ev.proc == nil }

// Event is a cancelable handle to a scheduled callback, returned by
// Schedule and After. The zero value is inert: Cancel on it is a no-op.
type Event struct {
	ev  *event
	gen uint64
}

// Timing-wheel geometry (DESIGN.md §14). A tick is 2^wheelShift
// nanoseconds (~4.1 µs); level 0 resolves one tick per slot, level 1 one
// 256-tick block per slot, so the two levels cover 65536 ticks (~268 ms)
// of look-ahead — comfortably past the sleep/IO delays that dominate the
// simulator. Events beyond the horizon (and same-tick events, which must
// keep strict (at, seq) order) overflow to the heap.
const (
	wheelShift   = 12
	wheelBits    = 8
	wheelSlots   = 1 << wheelBits
	wheelMask    = wheelSlots - 1
	wheelHorizon = wheelSlots * wheelSlots

	// defaultWheelMin is the live-event population below which inserts
	// bypass the wheel entirely: for the tiny heaps of single-process
	// experiments the heap is already cheap, and skipping the wheel keeps
	// drain bookkeeping off their hot path.
	defaultWheelMin = 64
)

// eventHeap is a binary min-heap ordered by (at, seq). It is a concrete
// implementation — no container/heap, so Push/Pop involve no interface
// boxing and no indirect calls on the hot path.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// The engine is strictly single-threaded from the caller's perspective:
// although processes are goroutines, exactly one of them (or the engine
// loop itself) runs at any instant, with explicit handoff. This makes every
// run with the same seed bit-for-bit reproducible.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *RNG
	seed   uint64

	// live is the number of scheduled events that have been neither fired
	// nor canceled, across the heap and the wheel. The heap holds
	// len(events) - (live - wheelLive) tombstones.
	live int
	// free heads the recycled-event free list.
	free *event

	// Hierarchical timing wheel. Slots hold unordered singly-linked
	// chains (through event.next); every chained event has tick >=
	// wheelTick, and firing always goes through the heap (drained in
	// peekLive), so wheel placement never affects (at, seq) order.
	l0, l1    [wheelSlots]*event
	wheelTick int64 // current L0 position, in ticks
	wheelLive int   // live events chained in the wheel
	wheelDead int   // canceled events still chained in the wheel
	l0Count   int   // chained events (live + dead) per level, for
	l1Count   int   // empty-stretch skipping and refill short-circuits
	wheelMin  int   // defaultWheelMin; tests/benchmarks override

	// yield carries control back from a running process to the engine
	// loop. All processes share it; only the currently-running process
	// ever sends on it.
	yield chan struct{}

	// procs is a slot arena: a finished process's slot is pushed onto
	// freeSlot and reused by a later Spawn, so long-running simulations
	// that churn short-lived processes (request-per-process servers) hold
	// live processes only, not every process that ever ran.
	procs    []*Proc
	freeSlot []int32
	spawned  uint64 // total Spawn calls, ever (arena slots recycle; this doesn't)
	nBlocked int    // processes in procBlocked, maintained by setState

	// sched is the SMP scheduler; nil (the default) is the uncontended
	// infinite-core model where Compute is a pure timer. See sched.go.
	sched *scheduler

	// tel is the engine's telemetry registry; nil (the default) disables
	// all instrumentation at zero cost.
	tel *telemetry.Registry
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:      NewRNG(seed),
		seed:     seed,
		yield:    make(chan struct{}),
		wheelMin: defaultWheelMin,
	}
}

// Seed returns the seed the engine (and its RNG) was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// Checkpoint returns the clock and scheduling cursor of a quiescent
// engine, for snapshot machinery. It panics if events are still pending
// or processes are still blocked — snapshotting mid-flight state is not
// supported (goroutine stacks cannot be copied).
func (e *Engine) Checkpoint() (now Time, seq uint64) {
	if e.live != 0 {
		panic(fmt.Sprintf("sim: Checkpoint with %d pending event(s)", e.live))
	}
	if n := e.liveBlocked(); n != 0 {
		panic(fmt.Sprintf("sim: Checkpoint with %d blocked process(es)", n))
	}
	if n := e.schedBusy(); n != 0 {
		panic(fmt.Sprintf("sim: Checkpoint with %d process(es) on CPU or run queue", n))
	}
	return e.now, e.seq
}

// Restore sets the clock and scheduling cursor of a freshly built engine
// to a Checkpoint's values, so events scheduled afterwards continue the
// original (at, seq) order. It panics if the engine has already run.
func (e *Engine) Restore(now Time, seq uint64) {
	if e.now != 0 || e.seq != 0 || e.spawned != 0 {
		panic("sim: Restore on an engine that has already run")
	}
	e.now, e.seq = now, seq
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTelemetry attaches a telemetry registry: processes spawned from now
// on get span tracks, and tracers attached to the engine export their
// events. A nil registry (the default) disables telemetry.
func (e *Engine) SetTelemetry(r *telemetry.Registry) {
	e.tel = r
	e.instrumentSched()
}

// Telemetry returns the attached registry (nil when disabled). The nil
// registry is safe to use: all its methods and handles are no-ops.
func (e *Engine) Telemetry() *telemetry.Registry { return e.tel }

// NowNS reports virtual time as int64 nanoseconds — the telemetry.Clock
// for registries attached to this engine.
func (e *Engine) NowNS() int64 { return int64(e.now) }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Schedule runs fn at time at (which must not be in the past). It returns
// a handle that can be used to cancel the event.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule of nil callback")
	}
	ev := e.push(at)
	ev.fn = fn
	return Event{ev: ev, gen: ev.gen}
}

// scheduleWake schedules p.wake() at time at without allocating a closure.
func (e *Engine) scheduleWake(at Time, p *Proc) {
	e.push(at).proc = p
}

// push takes an event struct off the free list (or allocates one),
// stamps it with the next sequence number, and places it in the wheel or
// the heap. The caller sets fn or proc.
func (e *Engine) push(at Time) *event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	ev.at, ev.seq = at, e.seq
	e.seq++
	e.live++
	e.place(ev)
	return ev
}

// heapInsert adds a stamped event to the heap. It must not touch seq:
// wheel drains reuse it to move events without re-stamping them.
func (e *Engine) heapInsert(ev *event) {
	ev.wheel = false
	e.events = append(e.events, ev)
	e.events.siftUp(len(e.events) - 1)
}

// place routes a stamped event to a wheel slot or the heap. Same-tick and
// past-tick events go to the heap (they may be due before the wheel next
// advances); so do events beyond the wheel horizon, and everything while
// the live population is too small for the wheel to pay for itself.
func (e *Engine) place(ev *event) {
	if e.wheelLive == 0 {
		if e.live <= e.wheelMin {
			e.heapInsert(ev)
			return
		}
		// (Re)activate the wheel at the current tick. Chains are empty
		// here — wheelLive only reaches zero once every chained event has
		// been drained or swept — so the position reset is safe.
		e.wheelTick = int64(e.now) >> wheelShift
	}
	tk := int64(ev.at) >> wheelShift
	switch dt := tk - e.wheelTick; {
	case dt < 1 || dt >= wheelHorizon:
		e.heapInsert(ev)
		return
	case dt < wheelSlots:
		s := tk & wheelMask
		ev.next = e.l0[s]
		e.l0[s] = ev
		e.l0Count++
	default:
		s := (tk >> wheelBits) & wheelMask
		ev.next = e.l1[s]
		e.l1[s] = ev
		e.l1Count++
	}
	ev.wheel = true
	e.wheelLive++
}

// refill moves the L1 slot for the 256-tick block wheelTick just entered
// down into L0. Every live event in the slot provably belongs to the
// current block: inserts are bounded to the 65536-tick horizon, so two
// events one full L1 lap apart can never share a slot.
func (e *Engine) refill() {
	s := (e.wheelTick >> wheelBits) & wheelMask
	ev := e.l1[s]
	e.l1[s] = nil
	for ev != nil {
		next := ev.next
		ev.next = nil
		e.l1Count--
		if ev.dead() {
			e.wheelDead--
			e.recycle(ev)
		} else {
			tk := int64(ev.at) >> wheelShift
			if tk>>wheelBits != e.wheelTick>>wheelBits {
				panic("sim: wheel refill found event outside its block")
			}
			i := tk & wheelMask
			ev.next = e.l0[i]
			e.l0[i] = ev
			e.l0Count++
		}
		ev = next
	}
}

// dumpSlot empties the current L0 slot: live events move to the heap with
// their original (at, seq) stamps, tombstones are recycled.
func (e *Engine) dumpSlot() {
	s := e.wheelTick & wheelMask
	ev := e.l0[s]
	e.l0[s] = nil
	for ev != nil {
		next := ev.next
		ev.next = nil
		e.l0Count--
		if ev.dead() {
			e.wheelDead--
			e.recycle(ev)
		} else {
			e.wheelLive--
			e.heapInsert(ev)
		}
		ev = next
	}
}

// advanceWheel drains every wheel slot with tick < target into the heap
// and moves the wheel position to target. Empty 256-tick stretches are
// skipped in O(1) per block via the chained-event counters.
func (e *Engine) advanceWheel(target int64) {
	for e.wheelTick < target {
		if e.wheelLive == 0 {
			e.wheelTick = target
			return
		}
		if e.wheelTick&wheelMask == 0 && e.l1Count > 0 {
			e.refill()
		}
		if e.l0Count == 0 {
			next := (e.wheelTick | wheelMask) + 1
			if next > target {
				next = target
			}
			e.wheelTick = next
			continue
		}
		e.dumpSlot()
		e.wheelTick++
	}
}

// advanceToHeap advances the wheel until the heap gains an event (used
// when the heap is empty but the wheel is not).
func (e *Engine) advanceToHeap() {
	for len(e.events) == 0 && e.wheelLive > 0 {
		if e.wheelTick&wheelMask == 0 && e.l1Count > 0 {
			e.refill()
		}
		if e.l0Count == 0 {
			e.wheelTick = (e.wheelTick | wheelMask) + 1
			continue
		}
		e.dumpSlot()
		e.wheelTick++
	}
}

// sweepWheel unchains every tombstone in the wheel. It runs when cancels
// empty the wheel of live events (restoring the chains-empty invariant
// behind wheel reactivation) or when tombstones outnumber live events.
func (e *Engine) sweepWheel() {
	for i := range e.l0 {
		e.l0[i] = e.sweepChain(e.l0[i], &e.l0Count)
	}
	for i := range e.l1 {
		e.l1[i] = e.sweepChain(e.l1[i], &e.l1Count)
	}
}

// sweepChain filters tombstones out of one slot chain. Chains are
// unordered, so the reversal it causes is harmless.
func (e *Engine) sweepChain(head *event, count *int) *event {
	var out *event
	for ev := head; ev != nil; {
		next := ev.next
		if ev.dead() {
			*count--
			e.wheelDead--
			ev.next = nil
			e.recycle(ev)
		} else {
			ev.next = out
			out = ev
		}
		ev = next
	}
	return out
}

// After runs fn after duration d.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event (or the zero Event) is a no-op, so Cancel is safe
// to call twice. Cancellation is lazy: the slot stays in the heap as a
// tombstone (fn == nil) and is discarded when it reaches the top, making
// Cancel O(1) instead of the O(n) scan + O(log n) removal it replaces.
func (e *Engine) Cancel(h Event) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.dead() {
		return
	}
	ev.fn, ev.proc = nil, nil
	e.live--
	// If churny callers (timeouts that almost always cancel) fill the heap
	// or the wheel with tombstones, compact rather than let them pile up
	// unboundedly.
	if ev.wheel {
		e.wheelLive--
		e.wheelDead++
		if e.wheelLive == 0 || (e.wheelDead > 64 && e.wheelDead > e.wheelLive) {
			e.sweepWheel()
		}
		return
	}
	heapLive := e.live - e.wheelLive
	if dead := len(e.events) - heapLive; dead > 64 && dead > heapLive {
		e.compact()
	}
}

// recycle bumps the event's generation (invalidating outstanding handles)
// and puts it on the free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.proc, ev.kind = nil, nil, evWake
	ev.next = e.free
	e.free = ev
}

// popMin removes and returns the earliest event in the heap.
func (e *Engine) popMin() *event {
	h := e.events
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.events = h[:n]
	e.events.siftDown(0)
	return ev
}

// peekLive discards tombstones at the top of the heap, drains any wheel
// slot that could precede the heap's minimum, and returns the earliest
// live event overall (always at the top of the heap), or nil if none
// remain. After it returns an event h, every wheel event has
// tick >= wheelTick > tick(h.at) and therefore fires strictly after h,
// so the heap's (at, seq) order is the global firing order.
func (e *Engine) peekLive() *event {
	for {
		var h *event
		for len(e.events) > 0 {
			if ev := e.events[0]; !ev.dead() {
				h = ev
				break
			}
			e.recycle(e.popMin())
		}
		if e.wheelLive == 0 {
			return h
		}
		if h != nil {
			tk := int64(h.at) >> wheelShift
			if tk < e.wheelTick {
				return h
			}
			e.advanceWheel(tk + 1)
		} else {
			e.advanceToHeap()
			if e.wheelLive == 0 && len(e.events) == 0 {
				return nil
			}
		}
	}
}

// compact rebuilds the heap without its tombstones.
func (e *Engine) compact() {
	h := e.events
	kept := h[:0]
	for _, ev := range h {
		if !ev.dead() {
			kept = append(kept, ev)
		} else {
			e.recycle(ev)
		}
	}
	for i := range h[len(kept):] {
		h[len(kept)+i] = nil
	}
	e.events = kept
	for i := len(kept)/2 - 1; i >= 0; i-- {
		kept.siftDown(i)
	}
}

// step fires the earliest pending live event. It reports false when no
// live events remain.
func (e *Engine) step() bool {
	ev := e.peekLive()
	if ev == nil {
		return false
	}
	e.popMin()
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.live--
	fn, p, kind := ev.fn, ev.proc, ev.kind
	e.recycle(ev)
	switch {
	case p == nil:
		fn()
	case kind == evSlice:
		e.sliceFire(p)
	default:
		p.wake()
	}
	return true
}

// Run processes events until the queue is empty. It panics if processes
// remain blocked with no event that could ever wake them (a simulation
// deadlock), since silently returning would make such bugs easy to miss.
func (e *Engine) Run() {
	for e.step() {
	}
	if e.liveBlocked() > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with empty event queue at %v", e.liveBlocked(), e.now))
	}
}

// RunUntil processes events with fire times <= deadline and then advances
// the clock to exactly deadline. Blocked processes are left parked.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.peekLive()
		if ev == nil || ev.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// liveBlocked counts processes that are parked and not finished. It is
// O(1): setState maintains the count, so deadlock detection no longer
// scans the (recycled, possibly sparse) proc arena.
func (e *Engine) liveBlocked() int { return e.nBlocked }

// Idle reports whether no live events are pending.
func (e *Engine) Idle() bool { return e.live == 0 }
