package fs

import (
	"fmt"

	"graybox/internal/cache"
	"graybox/internal/sim"
)

// File is an open file handle.
type File struct {
	fs   *FS
	node *Inode
	path string
}

// Size returns the current file size in bytes.
func (f *File) Size() int64 { return f.node.size }

// Path returns the path the file was opened with.
func (f *File) Path() string { return f.path }

// Ino returns the file's inode number.
func (f *File) Ino() Ino { return f.node.ino }

// Mkdir creates a directory (parents must exist).
func (fs *FS) Mkdir(p *sim.Proc, path string) error {
	fs.charge(p, fs.cfg.SyscallOverhead)
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	if _, ok := parent.subdirs[name]; ok {
		return fmt.Errorf("fs: mkdir %q: exists", path)
	}
	if _, ok := parent.entries[name]; ok {
		return fmt.Errorf("fs: mkdir %q: file exists", path)
	}
	// Rotate new directories across cylinder groups, as FFS does, so
	// that per-directory locality means something.
	fs.nextDirGroup = (fs.nextDirGroup + 1) % len(fs.groups)
	parent.subdirs[name] = newDir(fs.nextDirGroup)
	return nil
}

func (fs *FS) charge(p *sim.Proc, d sim.Time) {
	if p != nil && d > 0 {
		p.Sleep(d)
	}
}

// Create makes an empty file and returns its handle. The new inode is
// dirtied in the cache (metadata write-behind).
func (fs *FS) Create(p *sim.Proc, path string) (*File, error) {
	fs.charge(p, fs.cfg.SyscallOverhead)
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return nil, err
	}
	if _, ok := parent.entries[name]; ok {
		return nil, fmt.Errorf("fs: create %q: exists", path)
	}
	if _, ok := parent.subdirs[name]; ok {
		return nil, fmt.Errorf("fs: create %q: is a directory", path)
	}
	ino, err := fs.allocInode(parent.group)
	if err != nil {
		return nil, err
	}
	now := fs.e.Now()
	node := &Inode{ino: ino, atime: now, mtime: now, ctime: now, nlink: 1}
	fs.inodes[ino] = node
	parent.entries[name] = ino
	fs.touchInodeBlock(p, ino, true)
	return &File{fs: fs, node: node, path: path}, nil
}

// CreateSized is a harness fixture builder: it creates a file of the
// given size with blocks allocated through the normal allocator but
// charges no virtual time and performs no I/O. Use it to lay out
// experiment inputs "instantly" before measurement begins.
func (fs *FS) CreateSized(path string, size int64) (*File, error) {
	f, err := fs.Create(nil, path)
	if err != nil {
		return nil, err
	}
	if size > 0 {
		parent, _, _ := fs.lookupParent(path)
		npages := (size + int64(fs.pageSize) - 1) / int64(fs.pageSize)
		blocks, err := fs.allocBlocks(parent.group, npages)
		if err != nil {
			return nil, err
		}
		f.node.blocks = blocks
		f.node.size = size
	}
	return f, nil
}

// Open returns a handle on an existing file.
func (fs *FS) Open(p *sim.Proc, path string) (*File, error) {
	fs.charge(p, fs.cfg.SyscallOverhead)
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return nil, err
	}
	fs.charge(p, sim.Time(len(parent.entries))*fs.cfg.DirentCost)
	ino, ok := parent.entries[name]
	if !ok {
		return nil, fmt.Errorf("fs: open %q: no such file", path)
	}
	return &File{fs: fs, node: fs.inodes[ino], path: path}, nil
}

// touchInodeBlock charges the I/O for reaching ino's on-disk inode, going
// through the buffer cache like any other block.
func (fs *FS) touchInodeBlock(p *sim.Proc, ino Ino, dirty bool) {
	blk, id := fs.inodeBlock(ino)
	if fs.c.Lookup(id) {
		if dirty {
			fs.c.MarkDirty(p, id)
		}
		return
	}
	if p != nil {
		fs.d.Access(p, blk, 1, false)
	}
	fs.c.Insert(p, id, cache.BlockAddr{Disk: fs.d, Block: blk}, dirty)
}

// Stat performs the stat() system call: resolve the name, fetch the inode
// (a disk access when its block is not cached), and return the metadata.
// This is FLDC's probe.
func (fs *FS) Stat(p *sim.Proc, path string) (Stat, error) {
	fs.StatCalls++
	fs.charge(p, fs.cfg.SyscallOverhead)
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return Stat{}, err
	}
	fs.charge(p, sim.Time(len(parent.entries))*fs.cfg.DirentCost)
	ino, ok := parent.entries[name]
	if !ok {
		return Stat{}, fmt.Errorf("fs: stat %q: no such file", path)
	}
	node := fs.inodes[ino]
	fs.touchInodeBlock(p, ino, false)
	return Stat{Ino: ino, Size: node.size, Atime: node.atime, Mtime: node.mtime, Ctime: node.ctime}, nil
}

// Utimes sets a file's access and modification times (used by the FLDC
// refresh so make(1)-style tools keep working).
func (fs *FS) Utimes(p *sim.Proc, path string, atime, mtime sim.Time) error {
	fs.charge(p, fs.cfg.SyscallOverhead)
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	ino, ok := parent.entries[name]
	if !ok {
		return fmt.Errorf("fs: utimes %q: no such file", path)
	}
	node := fs.inodes[ino]
	node.atime, node.mtime = atime, mtime
	fs.touchInodeBlock(p, ino, true)
	return nil
}

// Readdir returns the names of files in a directory, sorted. Subdirectory
// names are not included.
func (fs *FS) Readdir(p *sim.Proc, path string) ([]string, error) {
	fs.charge(p, fs.cfg.SyscallOverhead)
	d, err := fs.lookupDir(path)
	if err != nil {
		return nil, err
	}
	fs.charge(p, sim.Time(len(d.entries))*fs.cfg.DirentCost)
	return sortedNames(d.entries), nil
}

// ReaddirDirs returns the names of subdirectories of a directory,
// sorted.
func (fs *FS) ReaddirDirs(p *sim.Proc, path string) ([]string, error) {
	fs.charge(p, fs.cfg.SyscallOverhead)
	d, err := fs.lookupDir(path)
	if err != nil {
		return nil, err
	}
	fs.charge(p, sim.Time(len(d.subdirs))*fs.cfg.DirentCost)
	return sortedNames(d.subdirs), nil
}

// Unlink removes a file, freeing its inode and blocks and invalidating
// its cached pages.
func (fs *FS) Unlink(p *sim.Proc, path string) error {
	fs.charge(p, fs.cfg.SyscallOverhead)
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	ino, ok := parent.entries[name]
	if !ok {
		return fmt.Errorf("fs: unlink %q: no such file", path)
	}
	node := fs.inodes[ino]
	fs.c.InvalidateFile(int64(ino))
	fs.freeBlocks(node.blocks)
	fs.freeInode(ino)
	delete(fs.inodes, ino)
	delete(parent.entries, name)
	fs.touchInodeBlock(p, ino, true)
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(p *sim.Proc, path string) error {
	fs.charge(p, fs.cfg.SyscallOverhead)
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return err
	}
	d, ok := parent.subdirs[name]
	if !ok {
		return fmt.Errorf("fs: rmdir %q: no such directory", path)
	}
	if len(d.entries) > 0 || len(d.subdirs) > 0 {
		return fmt.Errorf("fs: rmdir %q: not empty", path)
	}
	delete(parent.subdirs, name)
	return nil
}

// Rename moves a file or directory to a new path (both parents must
// exist; the destination must not).
func (fs *FS) Rename(p *sim.Proc, oldPath, newPath string) error {
	fs.charge(p, fs.cfg.SyscallOverhead)
	oldParent, oldName, err := fs.lookupParent(oldPath)
	if err != nil {
		return err
	}
	newParent, newName, err := fs.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, ok := newParent.entries[newName]; ok {
		return fmt.Errorf("fs: rename: %q exists", newPath)
	}
	if _, ok := newParent.subdirs[newName]; ok {
		return fmt.Errorf("fs: rename: %q exists", newPath)
	}
	if ino, ok := oldParent.entries[oldName]; ok {
		delete(oldParent.entries, oldName)
		newParent.entries[newName] = ino
		return nil
	}
	if d, ok := oldParent.subdirs[oldName]; ok {
		delete(oldParent.subdirs, oldName)
		newParent.subdirs[newName] = d
		return nil
	}
	return fmt.Errorf("fs: rename %q: no such file or directory", oldPath)
}

// --- data path ---

func (fs *FS) pageID(ino Ino, page int64) cache.PageID {
	return cache.PageID{Ino: int64(ino), Index: page}
}

// Read reads n bytes at offset off, charging copy time for cached pages
// and disk time (with clustered transfers) for misses.
func (f *File) Read(p *sim.Proc, off, n int64) error {
	fs := f.fs
	fs.charge(p, fs.cfg.SyscallOverhead)
	if off < 0 || n < 0 || off+n > f.node.size {
		return fmt.Errorf("fs: read [%d,%d) beyond size %d of %q", off, off+n, f.node.size, f.path)
	}
	if n == 0 {
		return nil
	}
	f.node.atime = fs.e.Now()
	ps := int64(fs.pageSize)
	first := off / ps
	last := (off + n - 1) / ps
	for pg := first; pg <= last; {
		id := fs.pageID(f.node.ino, pg)
		if fs.c.Lookup(id) {
			fs.charge(p, fs.cfg.PageCopy)
			pg++
			continue
		}
		// Cluster this miss with following contiguous misses.
		run := int64(1)
		for pg+run <= last &&
			run < int64(fs.cfg.MaxCluster) &&
			f.node.blocks[pg+run] == f.node.blocks[pg]+run &&
			!fs.c.Contains(fs.pageID(f.node.ino, pg+run)) {
			run++
		}
		fs.d.Access(p, f.node.blocks[pg], int(run), false)
		for i := int64(0); i < run; i++ {
			fs.c.Insert(p, fs.pageID(f.node.ino, pg+i),
				cache.BlockAddr{Disk: fs.d, Block: f.node.blocks[pg+i]}, false)
			fs.charge(p, fs.cfg.PageCopy)
		}
		pg += run
	}
	return nil
}

// ReadByteAt reads a single byte — the FCCD probe. Exactly one page is
// brought into the cache on a miss (the paper's Heisenberg effect: the
// probe itself perturbs the cache by one page).
func (f *File) ReadByteAt(p *sim.Proc, off int64) error {
	fs := f.fs
	fs.charge(p, fs.cfg.SyscallOverhead)
	if off < 0 || off >= f.node.size {
		return fmt.Errorf("fs: read byte %d beyond size %d of %q", off, f.node.size, f.path)
	}
	f.node.atime = fs.e.Now()
	pg := off / int64(fs.pageSize)
	id := fs.pageID(f.node.ino, pg)
	if !fs.c.Lookup(id) {
		fs.d.Access(p, f.node.blocks[pg], 1, false)
		fs.c.Insert(p, id, cache.BlockAddr{Disk: fs.d, Block: f.node.blocks[pg]}, false)
	}
	fs.charge(p, fs.cfg.ByteCopy)
	return nil
}

// Write writes n bytes at offset off, extending the file as needed.
// Writes are buffered in the cache as dirty pages (write-behind); the
// cache's dirty throttle makes heavy writers pay for cleaning.
func (f *File) Write(p *sim.Proc, off, n int64) error {
	fs := f.fs
	fs.charge(p, fs.cfg.SyscallOverhead)
	if off < 0 || n < 0 {
		return fmt.Errorf("fs: bad write range")
	}
	if n == 0 {
		return nil
	}
	ps := int64(fs.pageSize)
	end := off + n
	// Extend the block map if the file grows.
	needPages := (end + ps - 1) / ps
	if int64(len(f.node.blocks)) < needPages {
		parent, _, err := fs.lookupParent(f.path)
		if err != nil {
			return err
		}
		newBlocks, err := fs.allocBlocks(parent.group, needPages-int64(len(f.node.blocks)))
		if err != nil {
			return err
		}
		f.node.blocks = append(f.node.blocks, newBlocks...)
	}
	oldSize := f.node.size
	if end > f.node.size {
		f.node.size = end
	}
	f.node.mtime = fs.e.Now()
	first := off / ps
	last := (end - 1) / ps
	for pg := first; pg <= last; pg++ {
		id := fs.pageID(f.node.ino, pg)
		partial := (pg == first && off%ps != 0) || (pg == last && end%ps != 0 && end < f.node.size)
		existed := pg*ps < oldSize
		if !fs.c.Contains(id) && partial && existed {
			// Read-modify-write of a partially overwritten page.
			fs.d.Access(p, f.node.blocks[pg], 1, false)
		}
		fs.c.Insert(p, id, cache.BlockAddr{Disk: fs.d, Block: f.node.blocks[pg]}, true)
		fs.charge(p, fs.cfg.PageCopy)
	}
	return nil
}

// --- harness (ground truth) helpers; not part of the gray-box surface ---

// blocksOf returns the live block slice of a file — no copy. Callers
// must neither mutate nor retain it past the next fs operation; it is
// the internal accessor behind the copying public boundary (BlocksOf)
// and the per-call hot paths (FirstBlockOf).
func (fs *FS) blocksOf(path string) ([]int64, error) {
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return nil, err
	}
	ino, ok := parent.entries[name]
	if !ok {
		return nil, fmt.Errorf("fs: no such file %q", path)
	}
	return fs.inodes[ino].blocks, nil
}

// BlocksOf returns the disk blocks of a file, for layout validation.
// The slice is a defensive copy; hot callers that need only the first
// block use FirstBlockOf instead.
func (fs *FS) BlocksOf(path string) ([]int64, error) {
	blocks, err := fs.blocksOf(path)
	if err != nil {
		return nil, err
	}
	return append([]int64(nil), blocks...), nil
}

// FirstBlockOf returns a file's first data block without copying the
// block map. ok is false when the file does not exist or has no blocks.
// This is the audit oracle's per-prediction path (every FLDC inference
// is scored against it), so it must not allocate per call.
func (fs *FS) FirstBlockOf(path string) (block int64, ok bool) {
	blocks, err := fs.blocksOf(path)
	if err != nil || len(blocks) == 0 {
		return 0, false
	}
	return blocks[0], true
}

// InoOf returns a file's inode number without charging stat costs.
func (fs *FS) InoOf(path string) (Ino, error) {
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return 0, err
	}
	ino, ok := parent.entries[name]
	if !ok {
		return 0, fmt.Errorf("fs: no such file %q", path)
	}
	return ino, nil
}

// PresenceBitmap reports which pages of path are cached (the kernel
// modification of footnote 2, available to harnesses only).
func (fs *FS) PresenceBitmap(path string) ([]bool, error) {
	parent, name, err := fs.lookupParent(path)
	if err != nil {
		return nil, err
	}
	ino, ok := parent.entries[name]
	if !ok {
		return nil, fmt.Errorf("fs: no such file %q", path)
	}
	node := fs.inodes[ino]
	npages := (node.size + int64(fs.pageSize) - 1) / int64(fs.pageSize)
	return fs.c.PresenceBitmap(int64(ino), npages), nil
}
