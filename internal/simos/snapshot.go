package simos

import (
	"fmt"

	"graybox/internal/cache"
	"graybox/internal/disk"
	"graybox/internal/fs"
	"graybox/internal/sim"
	"graybox/internal/vm"
)

// Snapshot is a copy-on-write image of a quiescent machine's platform
// state: the aged file systems, the warmed buffer cache, disk head
// positions and counters, and the engine's clock/scheduling cursor.
// Building the aged platform for a sweep once and Forking it per trial
// replaces the dominant per-trial setup cost with a deep copy.
//
// A Snapshot is immutable after capture and safe for concurrent Fork
// calls (every Fork deep-copies into a freshly built System).
type Snapshot struct {
	cfg      Config
	now      sim.Time
	seq      uint64
	poolUsed int
	reclaims int64
	// disks holds the source machine's disks (data disks then swap) so
	// Fork can remap cache BlockAddr pointers by position.
	disks      []*disk.Disk
	diskStates []disk.State
	cache      *cache.Snapshot
	fss        []*fs.Snapshot
}

// Snapshot captures the machine's platform state. The machine must be
// quiescent and pure: no pending events or blocked processes, an
// unconsumed RNG stream, a pristine VM (no anonymous pages ever touched
// — the VM clock ring holds address-space pointers that cannot be
// remapped across machines), idle disks, and no telemetry or audit
// attached (their counters live outside the snapshot). Setup built from
// construction plus harness CreateSized calls satisfies all of this.
//
// Fork(seed) then builds a fresh machine with cfg.Seed = seed and
// restores this state into it, byte-identical to having built the same
// platform cold with that seed.
func (s *System) Snapshot() *Snapshot {
	if s.tel != nil || s.aud != nil {
		panic("simos: Snapshot of an instrumented system (enable telemetry/audit on forks instead)")
	}
	now, seq := s.Engine.Checkpoint()
	if got, want := s.Engine.RNG().State(), sim.NewRNG(s.Engine.Seed()).State(); got != want {
		panic("simos: Snapshot with consumed RNG stream (forks reseed, so setup must not draw randomness)")
	}
	if s.VM.Held() != 0 || s.VM.Stats() != (vm.Stats{}) {
		panic("simos: Snapshot with live anonymous memory")
	}
	sn := &Snapshot{
		cfg:      s.cfg,
		now:      now,
		seq:      seq,
		poolUsed: s.Pool.Used(),
		reclaims: s.Pool.Reclaims,
		cache:    s.Cache.Snapshot(),
	}
	for _, d := range append(append([]*disk.Disk(nil), s.dataDisks...), s.swapDisk) {
		if d.BusyTime() != 0 {
			panic("simos: Snapshot after raw disk I/O (busy-time accounting cannot be restored)")
		}
		sn.disks = append(sn.disks, d)
		sn.diskStates = append(sn.diskStates, d.State())
	}
	for _, f := range s.fss {
		sn.fss = append(sn.fss, f.Snapshot())
	}
	return sn
}

// Fork builds a fresh machine from the snapshot with the given seed.
// Everything derived from the seed (RNG stream, telemetry/audit labels)
// matches a cold build, so a forked trial is indistinguishable from a
// cold-built one.
func (sn *Snapshot) Fork(seed uint64) *System {
	cfg := sn.cfg
	cfg.Seed = seed
	ns := New(cfg)
	ns.Engine.Restore(sn.now, sn.seq)
	ns.Pool.Reclaims = sn.reclaims

	newDisks := append(append([]*disk.Disk(nil), ns.dataDisks...), ns.swapDisk)
	if len(newDisks) != len(sn.disks) {
		panic("simos: Fork disk count mismatch")
	}
	remap := make(map[*disk.Disk]*disk.Disk, len(sn.disks))
	for i, old := range sn.disks {
		newDisks[i].Restore(sn.diskStates[i])
		remap[old] = newDisks[i]
	}
	ns.Cache.Restore(sn.cache, func(d *disk.Disk) *disk.Disk {
		nd, ok := remap[d]
		if !ok {
			panic("simos: Fork found a cached page on an unknown disk")
		}
		return nd
	})
	if len(ns.fss) != len(sn.fss) {
		panic("simos: Fork file system count mismatch")
	}
	for i, f := range ns.fss {
		f.Restore(sn.fss[i])
	}
	if got := ns.Pool.Used(); got != sn.poolUsed {
		panic(fmt.Sprintf("simos: Fork pool accounting drifted: %d frames used, snapshot had %d", got, sn.poolUsed))
	}
	return ns
}
