package fccd

import (
	"fmt"
	"testing"

	"graybox/internal/simos"
)

// TestProbeFileAuditedAgainstOracle enables auditing, warms half a file,
// probes it, and checks the auditor scored the pass highly: the
// simulator's cache is quiet, so FCCD's bimodal split should classify
// nearly every segment correctly.
func TestProbeFileAuditedAgainstOracle(t *testing.T) {
	s := newSys()
	aud := s.EnableAudit()
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, testConfig())
		fd, err := os.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		size := int64(8 << 20)
		if err := fd.Write(0, size); err != nil {
			t.Fatal(err)
		}
		s.DropCaches()
		if err := fd.Read(0, size/2); err != nil { // warm the first half
			t.Fatal(err)
		}
		if _, err := d.ProbeFile("f"); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := aud.Report()
	if rep.FCCD == nil {
		t.Fatal("no FCCD audit recorded")
	}
	if rep.FCCD.Predictions != 1 {
		t.Errorf("predictions = %d, want 1", rep.FCCD.Predictions)
	}
	if rep.FCCD.Units != 8 { // 8 access units of 1 MB
		t.Errorf("units = %d, want 8", rep.FCCD.Units)
	}
	if rep.FCCD.Accuracy < 0.75 {
		t.Errorf("accuracy = %v on a quiet cache (confusion %+v)",
			rep.FCCD.Accuracy, rep.FCCD.Confusion)
	}
	if rep.FCCD.Probes == 0 || rep.FCCD.ProbeNS == 0 {
		t.Errorf("probe cost not attributed: %d probes, %d ns",
			rep.FCCD.Probes, rep.FCCD.ProbeNS)
	}
}

// TestOrderFilesAudited checks the cross-file pass records file-level
// confusion through the same auditor.
func TestOrderFilesAudited(t *testing.T) {
	s := newSys()
	aud := s.EnableAudit()
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, testConfig())
		var paths []string
		for i := 0; i < 4; i++ {
			p := fmt.Sprintf("f%d", i)
			fd, err := os.Create(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := fd.Write(0, 2<<20); err != nil {
				t.Fatal(err)
			}
			paths = append(paths, p)
		}
		s.DropCaches()
		// Warm two of the four files, then order.
		for _, p := range paths[:2] {
			fd, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := fd.Read(0, fd.Size()); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.OrderFiles(paths); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := aud.Report()
	if rep.FCCD == nil || rep.FCCD.Units != 4 {
		t.Fatalf("file-level audit missing or wrong size: %+v", rep.FCCD)
	}
	if rep.FCCD.Accuracy < 0.75 {
		t.Errorf("accuracy = %v (confusion %+v)", rep.FCCD.Accuracy, rep.FCCD.Confusion)
	}
}

// TestDisabledAuditProbeAddsNoAllocs is the ISSUE's 0-alloc guard for
// the FCCD hot path: with auditing never enabled, the probe primitive
// must not allocate.
func TestDisabledAuditProbeAddsNoAllocs(t *testing.T) {
	s := newSys()
	var allocs float64
	err := s.Run("t", func(os *simos.OS) {
		d := New(os, testConfig())
		fd, err := os.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(0, 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := fd.Read(0, 1<<20); err != nil { // all cached
			t.Fatal(err)
		}
		const probes = 100
		allocs = testing.AllocsPerRun(1, func() {
			for i := 0; i < probes; i++ {
				if _, err := d.probeRange(fd, 0, 1<<20); err != nil {
					t.Fatal(err)
				}
			}
		})
		allocs /= probes
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 0 {
		t.Errorf("disabled-audit probe allocates %.3f allocs/op, want 0", allocs)
	}
}

// BenchmarkAuditOverhead measures the cost one ProbeFd pass pays with
// auditing disabled vs enabled (the companion of simos's
// BenchmarkTelemetryOverhead). The disabled variant must stay at the
// baseline allocation count — auditing must be pay-for-use.
func BenchmarkAuditOverhead(b *testing.B) {
	bench := func(b *testing.B, enable bool) {
		s := newSys()
		if enable {
			s.EnableAudit()
		}
		err := s.Run("t", func(os *simos.OS) {
			d := New(os, testConfig())
			fd, err := os.Create("f")
			if err != nil {
				b.Fatal(err)
			}
			if err := fd.Write(0, 4<<20); err != nil {
				b.Fatal(err)
			}
			if err := fd.Read(0, 4<<20); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.ProbeFd(fd); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("disabled", func(b *testing.B) { bench(b, false) })
	b.Run("enabled", func(b *testing.B) { bench(b, true) })
}
