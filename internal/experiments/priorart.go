package experiments

import (
	"fmt"

	"graybox/internal/priorart"
)

// PriorArtSweeps runs parameter sweeps over the three Table 1 systems,
// demonstrating that each mini-simulation behaves like the system it
// stands in for across a range, not just at one point:
//
//   - TCP: fairness and loss rate as the sender count grows.
//   - Implicit coscheduling: speedup over always-block as local load
//     grows.
//   - MS Manners: foreground protection across degradation thresholds.
func PriorArtSweeps() *Table {
	t := &Table{
		ID:      "priorart-sweeps",
		Title:   "Parameter sweeps over the Table 1 systems",
		Columns: []string{"system", "config", "metric", "value"},
	}

	// Every sweep point builds its own mini-simulation engine, so all
	// eleven run as independent trials, rows assembled in sweep order.
	senders := []int{1, 2, 4, 8}
	bgLoads := []int{0, 1, 2, 4}
	thresholds := []float64{0.5, 0.7, 0.9}
	points := make([]func() []string, 0, len(senders)+len(bgLoads)+len(thresholds))

	// TCP: sender scaling.
	for _, n := range senders {
		n := n
		points = append(points, func() []string {
			cfg := priorart.DefaultTCPConfig()
			cfg.Senders = n
			res := priorart.RunTCP(cfg)
			var total, min, max int64
			min = res.Delivered[0]
			for _, d := range res.Delivered {
				total += d
				if d < min {
					min = d
				}
				if d > max {
					max = d
				}
			}
			fairness := float64(min) / float64(max)
			return []string{"tcp", fmt.Sprintf("%d senders", n),
				"goodput/fairness/drops",
				fmt.Sprintf("%d pkts / %.2f / %d", total, fairness, res.Drops)}
		})
	}

	// Implicit coscheduling: background load scaling.
	for _, bg := range bgLoads {
		bg := bg
		points = append(points, func() []string {
			cfg := priorart.DefaultCoschedConfig()
			cfg.Background = bg
			impl := priorart.RunCosched(cfg)
			cfg.Implicit = false
			block := priorart.RunCosched(cfg)
			return []string{"cosched", fmt.Sprintf("%d bg procs", bg),
				"implicit vs block",
				fmt.Sprintf("%v vs %v (%.1fx)", impl.Elapsed, block.Elapsed,
					float64(block.Elapsed)/float64(impl.Elapsed))}
		})
	}

	// MS Manners: threshold sweep.
	for _, thr := range thresholds {
		thr := thr
		points = append(points, func() []string {
			cfg := priorart.DefaultMannersConfig()
			cfg.DegradeThreshold = thr
			res := priorart.RunManners(cfg)
			return []string{"manners", fmt.Sprintf("threshold %.1f", thr),
				"fg steps / bg steps / suspensions",
				fmt.Sprintf("%d / %d / %d", res.ForegroundSteps, res.BackgroundSteps, res.Suspensions)}
		})
	}

	for _, row := range RunTrials(len(points), func(i int) []string { return points[i]() }) {
		t.AddRow(row...)
	}
	t.AddNote("expect: TCP fairness stays near 1 as senders scale; implicit coscheduling's advantage grows with load; higher Manners thresholds suspend more and protect the foreground more")
	return t
}

// coschedSpeedup is a helper for tests.
func coschedSpeedup(bg int) float64 {
	cfg := priorart.DefaultCoschedConfig()
	cfg.Background = bg
	impl := priorart.RunCosched(cfg)
	cfg.Implicit = false
	block := priorart.RunCosched(cfg)
	return float64(block.Elapsed) / float64(impl.Elapsed)
}

// tcpFairness is a helper for tests.
func tcpFairness(senders int) float64 {
	cfg := priorart.DefaultTCPConfig()
	cfg.Senders = senders
	res := priorart.RunTCP(cfg)
	var min, max int64
	min = res.Delivered[0]
	for _, d := range res.Delivered {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 0
	}
	return float64(min) / float64(max)
}
