package telemetry

import "math/bits"

// Sketch is a deterministic log-bucketed quantile sketch for virtual-time
// latencies: values land in buckets whose width grows geometrically (32
// sub-buckets per power of two, so relative error is bounded by 1/32 ≈
// 3.1%), and quantiles are extracted by a cumulative walk that returns
// each bucket's lower edge clamped into [Min, Max]. Everything is integer
// arithmetic over a fixed geometry, so identical observation sequences
// yield identical quantiles on every platform, and sketches from
// different trials merge exactly (bucket-wise addition). All methods are
// nil-safe: the nil *Sketch is the disabled handle, free to observe.
//
// Unlike Histogram's fixed LatencyBuckets, a Sketch covers the full
// int64 range at bounded relative error, which is what p999 extraction
// over an open-loop latency distribution needs — a fixed 1-2-5 grid is
// either too coarse at the tail or too wide to share across metrics.
type Sketch struct {
	counts     []int64
	count, sum int64
	min, max   int64
}

// sketchSubBits fixes the geometry: 2^sketchSubBits sub-buckets per
// octave. 5 gives 32 sub-buckets (≤3.2% relative error) and 1888 buckets
// total for the whole non-negative int64 range.
const sketchSubBits = 5

// sketchBuckets is the fixed bucket count: values below 2^(subBits+1)
// are exact (one bucket per integer), and each further octave adds
// 2^subBits buckets up to 2^63-1.
const sketchBuckets = (64 - sketchSubBits) * (1 << sketchSubBits)

// NewSketch creates an empty sketch (the merge destination for
// cross-trial aggregation; registries create theirs via Registry.Sketch).
func NewSketch() *Sketch {
	return &Sketch{counts: make([]int64, sketchBuckets)}
}

// sketchIndex maps a non-negative value to its bucket.
func sketchIndex(v int64) int {
	if v < 1<<(sketchSubBits+1) {
		return int(v) // exact linear region
	}
	e := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBits+1
	sub := int(v>>(uint(e)-sketchSubBits)) - (1 << sketchSubBits)
	return (e-sketchSubBits+1)<<sketchSubBits + sub
}

// sketchValue returns the lower edge of a bucket — the canonical
// representative a quantile walk reports.
func sketchValue(idx int) int64 {
	if idx < 1<<(sketchSubBits+1) {
		return int64(idx)
	}
	e := idx>>sketchSubBits + sketchSubBits - 1
	sub := int64(idx & (1<<sketchSubBits - 1))
	return (1<<sketchSubBits + sub) << (uint(e) - sketchSubBits)
}

// Observe records one value. Negative values clamp to 0 (virtual-time
// latencies are non-negative; the clamp keeps the geometry total).
func (s *Sketch) Observe(v int64) {
	if s == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.counts[sketchIndex(v)]++
}

// Merge folds other into s bucket-wise — the cross-trial aggregation
// path. Merging nil or an empty sketch is a no-op; both sketches always
// share the package's fixed geometry, so the merge is exact.
func (s *Sketch) Merge(other *Sketch) {
	if s == nil || other == nil || other.count == 0 {
		return
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.count == 0 || other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	s.sum += other.sum
	for i, c := range other.counts {
		if c != 0 {
			s.counts[i] += c
		}
	}
}

// Quantile returns the value at quantile q in [0, 1]: the lower edge of
// the bucket holding the ceil(q*count)-th observation, clamped into
// [Min, Max] so single-observation and extreme quantiles are exact.
// An empty (or nil) sketch returns 0.
func (s *Sketch) Quantile(q float64) int64 {
	if s == nil || s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var seen int64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := sketchValue(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max // unreachable: counts sum to count
}

// Count returns the number of observations (0 for nil).
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Sum returns the total of all observations (0 for nil).
func (s *Sketch) Sum() int64 {
	if s == nil {
		return 0
	}
	return s.sum
}

// Mean returns the average observation (0 when empty or nil).
func (s *Sketch) Mean() int64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.sum / s.count
}

// Min returns the smallest observation (0 when empty or nil).
func (s *Sketch) Min() int64 {
	if s == nil {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty or nil).
func (s *Sketch) Max() int64 {
	if s == nil {
		return 0
	}
	return s.max
}
