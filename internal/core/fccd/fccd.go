// Package fccd implements the File-Cache Content Detector (Section 4.1):
// a gray-box ICL that infers which parts of which files are in the OS
// file cache by timing one-byte read probes, and returns access plans
// ordered so that cached data is read first.
//
// Key design points taken directly from the paper:
//
//   - Probes are single-byte reads at a RANDOM offset within each
//     prediction unit, so that a concurrent or earlier prober cannot
//     poison a later probe pass (Section 4.1.2, "probe a random byte").
//   - No in-cache/on-disk threshold is needed: prediction units are
//     SORTED by probe time, which also generalizes to multi-level
//     storage ("the closest items are accessed first").
//   - Probes are sparse — one per prediction unit (default 5 MB) — to
//     bound both their cost and their Heisenberg effect (a probe miss
//     drags one page into the cache and may evict another).
//   - Files smaller than one prediction unit are probed exactly once;
//     files smaller than one page are NOT probed at all and are reported
//     with a fake "high" time, because probing them would pull the whole
//     file into the cache (Section 4.1.4).
package fccd

import (
	"fmt"

	"graybox/internal/audit"
	"graybox/internal/core/probe"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/telemetry"
)

// Default units from the paper (Section 4.1.2).
const (
	DefaultAccessUnit     = 20 << 20 // 20 MB delivers near-peak disk bandwidth
	DefaultPredictionUnit = 5 << 20  // 5 MB: a few probes per access unit
)

// FakeSmallFileTime is the probe time reported for files too small to
// probe safely: effectively "assume on disk".
const FakeSmallFileTime = sim.Time(1) * sim.Second

// Config tunes the detector.
type Config struct {
	// AccessUnit is the granularity of the (offset, length) plan the
	// detector returns; large units amortize seeks when the plan is
	// executed. Zero selects DefaultAccessUnit (or the microbenchmarked
	// value if the caller passes one in).
	AccessUnit int64
	// PredictionUnit is the granularity of probing. Zero selects
	// DefaultPredictionUnit. Must be <= AccessUnit.
	PredictionUnit int64
	// Boundary, when non-zero, forces segment offsets and lengths to be
	// multiples of it so that application records never straddle two
	// segments (the sort's 100-byte records, Section 4.1.3).
	Boundary int64
	// Seed makes probe-offset randomness reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.AccessUnit == 0 {
		c.AccessUnit = DefaultAccessUnit
	}
	if c.PredictionUnit == 0 {
		c.PredictionUnit = DefaultPredictionUnit
	}
	if c.PredictionUnit > c.AccessUnit {
		c.PredictionUnit = c.AccessUnit
	}
	if c.Boundary < 0 {
		panic("fccd: negative boundary")
	}
	return c
}

// Segment is one entry of an access plan: a byte range of the file and
// the total probe time that ranked it.
type Segment struct {
	Off, Len  int64
	ProbeTime sim.Time
}

// FileProbe ranks one file for cross-file ordering.
type FileProbe struct {
	Path      string
	Size      int64
	ProbeTime sim.Time
}

// Detector is the FCCD ICL bound to one process.
type Detector struct {
	os  *simos.OS
	cfg Config
	rng *sim.RNG

	// meter is the shared probe layer: it times every probe syscall and
	// accumulates the cost audit hooks bill by delta.
	meter *probe.Meter

	// Telemetry handles (nil-safe no-ops when the system has none):
	// fast/slow classification outcomes, the bimodal-split margin in log
	// space (milli-units; 0 = unimodal), and the split confidence.
	telFast   *telemetry.Counter
	telSlow   *telemetry.Counter
	telMargin *telemetry.Gauge
	telConf   *telemetry.Gauge
}

// New creates a detector.
func New(os *simos.OS, cfg Config) *Detector {
	cfg = cfg.withDefaults()
	r := os.Telemetry()
	return &Detector{
		os: os, cfg: cfg, rng: sim.NewRNG(cfg.Seed),
		meter:     probe.NewMeter(os, r.Histogram("fccd.probe_ns", telemetry.LatencyBuckets)),
		telFast:   r.Counter("fccd.fast_units"),
		telSlow:   r.Counter("fccd.slow_units"),
		telMargin: r.Gauge("fccd.sort_margin_milli"),
		telConf:   r.Gauge("fccd.confidence_milli"),
	}
}

// Probes returns how many probe syscalls the detector has issued (for
// overhead reporting).
func (d *Detector) Probes() int64 { return d.meter.Probes() }

// ProbeCost returns the detector's accumulated probe cost.
func (d *Detector) ProbeCost() probe.Cost { return d.meter.Cost() }

// AccessUnit returns the configured access unit in bytes.
func (d *Detector) AccessUnit() int64 { return d.cfg.AccessUnit }

// align rounds off down to the configured boundary.
func (d *Detector) align(off int64) int64 {
	if d.cfg.Boundary > 1 {
		off -= off % d.cfg.Boundary
	}
	return off
}

// probeRange times one random-byte probe in [off, off+length).
func (d *Detector) probeRange(fd *simos.Fd, off, length int64) (sim.Time, error) {
	target := off + d.rng.Int63n(length)
	start := d.meter.Begin()
	if err := fd.ReadByteAt(target); err != nil {
		return 0, err
	}
	return d.meter.End(start), nil
}

// recordSplit publishes one bimodal-split outcome: how many units landed
// in each class, the cluster separation that justified the split, and
// the per-inference confidence derived from it.
func (d *Detector) recordSplit(sp probe.Split) {
	d.telFast.Add(int64(len(sp.Fast)))
	d.telSlow.Add(int64(len(sp.Slow)))
	d.telMargin.Set(int64(sp.Margin * 1000))
	d.telConf.Set(int64(sp.Confidence() * 1000))
}

// ProbeFile probes a file and returns its access plan: access-unit-sized
// segments sorted by increasing total probe time (cached portions
// first). The segmentation respects Config.Boundary.
func (d *Detector) ProbeFile(path string) ([]Segment, error) {
	fd, err := d.os.Open(path)
	if err != nil {
		return nil, err
	}
	return d.probeSegments(fd, d.segmentFile(fd.Size()))
}

// ProbeFd is ProbeFile for an already-open descriptor.
func (d *Detector) ProbeFd(fd *simos.Fd) ([]Segment, error) {
	return d.probeSegments(fd, d.segmentFile(fd.Size()))
}

// ProbeSegments ranks caller-supplied (offset, length) pairs ("more
// advanced applications can specify the exact manner in which they want
// the data returned").
func (d *Detector) ProbeSegments(path string, segs []Segment) ([]Segment, error) {
	fd, err := d.os.Open(path)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if s.Off < 0 || s.Len <= 0 || s.Off+s.Len > fd.Size() {
			return nil, fmt.Errorf("fccd: segment [%d,%d) outside file %q", s.Off, s.Off+s.Len, path)
		}
	}
	return d.probeSegments(fd, segs)
}

// segmentFile cuts [0, size) into access units aligned to Boundary.
func (d *Detector) segmentFile(size int64) []Segment {
	var segs []Segment
	au := d.cfg.AccessUnit
	if d.cfg.Boundary > 1 {
		au -= au % d.cfg.Boundary
		if au <= 0 {
			au = d.cfg.Boundary
		}
	}
	for off := int64(0); off < size; off += au {
		l := au
		if off+l > size {
			l = size - off
		}
		segs = append(segs, Segment{Off: off, Len: l})
	}
	return segs
}

// probeSegments measures each segment with one probe per prediction unit
// and sorts by total probe time. Ties keep file order, so an entirely
// cold file is still read sequentially.
func (d *Detector) probeSegments(fd *simos.Fd, segs []Segment) ([]Segment, error) {
	d.os.Proc().Track().Begin("icl", "fccd probe segments")
	defer d.os.Proc().Track().End()
	cost0 := d.meter.Cost()
	pageSize := int64(d.os.PageSize())
	for i := range segs {
		seg := &segs[i]
		if seg.Len < pageSize {
			// Too small to probe without caching the whole thing.
			seg.ProbeTime = FakeSmallFileTime
			continue
		}
		var total sim.Time
		pu := d.cfg.PredictionUnit
		for off := seg.Off; off < seg.Off+seg.Len; off += pu {
			l := pu
			if off+l > seg.Off+seg.Len {
				l = seg.Off + seg.Len - off
			}
			if l < pageSize {
				continue // tail sliver already covered by the previous probe
			}
			t, err := d.probeRange(fd, off, l)
			if err != nil {
				return nil, err
			}
			total += t
		}
		seg.ProbeTime = total
	}
	// Order the plan. Probe times are bimodal (memory vs disk), so
	// cluster them in log space and order each class for its medium:
	//
	//   - cached segments DESCENDING by offset: under LRU-like
	//     replacement the likely eviction victims are the oldest-cached
	//     (lowest-offset) pages, so consuming the newest-cached data
	//     first makes the eviction front and the reading front converge
	//     instead of chasing each other — a probe-hole at the LRU end
	//     then costs one access unit of re-reads rather than cascading
	//     through the whole cached region;
	//   - cold segments ASCENDING by offset: sequential disk reads.
	//
	// A single cluster means uniformly warm or uniformly cold; either
	// way ascending file order is safe (no mixed state, no cascade).
	sp := probe.SplitBimodal(times(segs), probe.MinLogSeparation)
	d.recordSplit(sp)
	if aud := d.os.Audit(); aud != nil {
		preds := make([]audit.RangePrediction, len(segs))
		for i, s := range segs {
			preds[i] = audit.RangePrediction{Off: s.Off, Len: s.Len}
		}
		for _, i := range sp.Fast {
			preds[i].PredictedCached = true
		}
		delta := d.meter.Cost().Sub(cost0)
		aud.FCCDRanges(fd.Ino(), fd.Size(), preds, delta.Probes, delta.NS)
	}
	ordered := make([]Segment, 0, len(segs))
	for i := len(sp.Fast) - 1; i >= 0; i-- { // descending offsets
		ordered = append(ordered, segs[sp.Fast[i]])
	}
	for _, i := range sp.Slow { // ascending offsets
		ordered = append(ordered, segs[i])
	}
	copy(segs, ordered)
	return segs, nil
}

// times extracts probe times from a plan.
func times(segs []Segment) []float64 {
	ts := make([]float64, len(segs))
	for i, s := range segs {
		ts[i] = float64(s.ProbeTime)
	}
	return ts
}

// OrderFiles probes each file (once per prediction unit; small files get
// the fake high time) and returns the files sorted fastest-first — the
// `gbp` ordering for "grep foo `gbp *`".
func (d *Detector) OrderFiles(paths []string) ([]FileProbe, error) {
	d.os.Proc().Track().Begin("icl", "fccd order files")
	defer d.os.Proc().Track().End()
	aud := d.os.Audit()
	cost0 := d.meter.Cost()
	var inos []int64
	probes := make([]FileProbe, 0, len(paths))
	pageSize := int64(d.os.PageSize())
	for _, path := range paths {
		fd, err := d.os.Open(path)
		if err != nil {
			return nil, err
		}
		if aud != nil {
			inos = append(inos, fd.Ino())
		}
		fp := FileProbe{Path: path, Size: fd.Size()}
		if fd.Size() < pageSize {
			fp.ProbeTime = FakeSmallFileTime
		} else {
			var total sim.Time
			for off := int64(0); off < fd.Size(); off += d.cfg.PredictionUnit {
				l := d.cfg.PredictionUnit
				if off+l > fd.Size() {
					l = fd.Size() - off
				}
				if l < pageSize && off > 0 {
					continue
				}
				t, err := d.probeRange(fd, off, l)
				if err != nil {
					return nil, err
				}
				total += t
			}
			fp.ProbeTime = total
		}
		probes = append(probes, fp)
	}
	// Same rationale as probeSegments: cached files are visited in
	// reverse listing order (under repeated runs the latest-listed is
	// the most recently cached and least at risk of eviction, so the
	// reading front retreats toward the LRU end instead of being chased
	// by it), cold files in listing order (the user's order typically
	// matches creation, hence layout).
	ts := make([]float64, len(probes))
	for i, pr := range probes {
		ts[i] = float64(pr.ProbeTime)
	}
	sp := probe.SplitBimodal(ts, probe.MinLogSeparation)
	d.recordSplit(sp)
	if aud != nil {
		preds := make([]audit.FilePrediction, len(probes))
		for i, pr := range probes {
			preds[i] = audit.FilePrediction{Ino: inos[i], SizeBytes: pr.Size}
		}
		for _, i := range sp.Fast {
			preds[i].PredictedCached = true
		}
		delta := d.meter.Cost().Sub(cost0)
		aud.FCCDFiles(preds, delta.Probes, delta.NS)
	}
	ordered := make([]FileProbe, 0, len(probes))
	for i := len(sp.Fast) - 1; i >= 0; i-- {
		ordered = append(ordered, probes[sp.Fast[i]])
	}
	for _, i := range sp.Slow {
		ordered = append(ordered, probes[i])
	}
	return ordered, nil
}

// CoalescePlan merges consecutive plan entries that are FORWARD
// adjacent in the file (previous end == next start), so that executing
// the plan issues fewer, larger reads. Reverse adjacency is deliberately
// NOT merged: the plan lists equally-fast cached segments in descending
// file order so the reading front retreats toward the LRU end (see
// probeSegments), and merging a descending run would flip it back into
// one big ascending read — exactly the order that lets eviction chase
// the reader. Only the ascending portions (typically the cold tail)
// benefit, and those merge safely.
func CoalescePlan(segs []Segment) []Segment {
	if len(segs) < 2 {
		return segs
	}
	out := make([]Segment, 0, len(segs))
	for _, seg := range segs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Off+last.Len == seg.Off {
				last.Len += seg.Len
				last.ProbeTime += seg.ProbeTime
				continue
			}
		}
		out = append(out, seg)
	}
	return out
}

// Paths extracts the path list from an ordered probe slice.
func Paths(probes []FileProbe) []string {
	out := make([]string, len(probes))
	for i, p := range probes {
		out[i] = p.Path
	}
	return out
}
