package stats

import "math"

// Running accumulates streaming statistics using Welford's algorithm, so
// that ICLs can monitor measurements incrementally (Section 5,
// "the operations must be performed incrementally"). The zero value is
// ready to use.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (NaN if empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance (NaN if empty).
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (NaN if empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation (NaN if empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Reset discards all observations.
func (r *Running) Reset() { *r = Running{} }

// ExpAvg is an exponentially-weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weighs recent observations more heavily.
type ExpAvg struct {
	alpha float64
	value float64
	n     int64
}

// NewExpAvg returns an averager with the given alpha. It panics if alpha
// is outside (0, 1].
func NewExpAvg(alpha float64) *ExpAvg {
	if alpha <= 0 || alpha > 1 {
		panic("stats: ExpAvg alpha must be in (0, 1]")
	}
	return &ExpAvg{alpha: alpha}
}

// Add incorporates an observation and returns the updated average.
func (e *ExpAvg) Add(x float64) float64 {
	e.n++
	if e.n == 1 {
		e.value = x
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	return e.value
}

// Value returns the current average (NaN if no observations).
func (e *ExpAvg) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.value
}
