package sim

import (
	"fmt"
	"testing"
)

// --- Proc lifecycle (state machine) ---

// TestProcStateLifecycle walks one process through every lifecycle state
// and checks State() at each observable point. Transitions under test:
// New (spawned, start event pending) -> Runnable (start fired) ->
// Running (dispatched) -> Blocked (Sleep/Block) -> Runnable (Unblock) ->
// Done.
func TestProcStateLifecycle(t *testing.T) {
	e := NewEngine(1)
	var insideBody ProcState
	p := e.Spawn("p", 5*Microsecond, func(p *Proc) {
		insideBody = p.State()
		p.Sleep(10 * Microsecond)
		p.Block()
	})
	steps := []struct {
		name string
		run  func()
		want ProcState
	}{
		{"spawned, start pending", func() {}, StateNew},
		{"started, now sleeping", func() { e.RunUntil(5 * Microsecond) }, StateBlocked},
		{"woke, now blocked", func() { e.RunUntil(20 * Microsecond) }, StateBlocked},
		{"unblocked, wake pending", func() { e.Unblock(p) }, StateRunnable},
		{"body returned", func() { e.Run() }, StateDone},
	}
	for _, st := range steps {
		st.run()
		if got := p.State(); got != st.want {
			t.Fatalf("%s: State() = %v, want %v", st.name, got, st.want)
		}
	}
	if insideBody != StateRunning {
		t.Errorf("State() inside the body = %v, want %v", insideBody, StateRunning)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
}

func TestProcStateString(t *testing.T) {
	for _, c := range []struct {
		s    ProcState
		want string
	}{
		{StateNew, "new"}, {StateRunnable, "runnable"}, {StateRunning, "running"},
		{StateBlocked, "blocked"}, {StateDone, "done"}, {ProcState(99), "ProcState(99)"},
	} {
		if got := c.s.String(); got != c.want {
			t.Errorf("ProcState(%d).String() = %q, want %q", int(c.s), got, c.want)
		}
	}
}

// TestSpawnExitArenaReuse is the completed-process leak regression test:
// the proc arena must track peak live processes, not total ever spawned.
// 200 waves of 8 short-lived processes each must leave the arena no
// larger than one wave.
func TestSpawnExitArenaReuse(t *testing.T) {
	e := NewEngine(1)
	const waves, perWave = 200, 8
	for w := 0; w < waves; w++ {
		ps := make([]*Proc, perWave)
		for i := range ps {
			ps[i] = e.Go(fmt.Sprintf("w%d.%d", w, i), func(p *Proc) {
				p.Sleep(Time(1+i) * Microsecond)
			})
		}
		e.WaitAll(ps...)
	}
	if got := len(e.procs); got > perWave {
		t.Errorf("arena holds %d slots after %d spawns with %d peak live (leak: slots not recycled)",
			got, waves*perWave, perWave)
	}
	if e.spawned != waves*perWave {
		t.Errorf("spawned = %d, want %d", e.spawned, waves*perWave)
	}
	if got := len(e.freeSlot); got != len(e.procs) {
		t.Errorf("free list holds %d of %d slots after all processes exited", got, len(e.procs))
	}
}

// --- Scheduler semantics ---

// TestComputeUncontendedModel: with no CPUs configured, Compute is a pure
// timer — concurrent bursts overlap completely (the legacy infinite-core
// model every pre-scheduler experiment was measured under).
func TestComputeUncontendedModel(t *testing.T) {
	e := NewEngine(1)
	if e.CPUs() != 0 || e.Quantum() != 0 {
		t.Fatalf("default engine reports CPUs=%d quantum=%v, want 0/0", e.CPUs(), e.Quantum())
	}
	var endA, endB Time
	a := e.Go("a", func(p *Proc) { p.Compute(10 * Millisecond); endA = p.Now() })
	b := e.Go("b", func(p *Proc) { p.Compute(10 * Millisecond); endB = p.Now() })
	e.WaitAll(a, b)
	if endA != 10*Millisecond || endB != 10*Millisecond {
		t.Errorf("uncontended bursts ended at %v and %v, want both 10ms (full overlap)", endA, endB)
	}
	if n := e.ContextSwitches(); n != 0 {
		t.Errorf("ContextSwitches = %d without a scheduler, want 0", n)
	}
}

// TestComputeSingleCPUSerializes: on one CPU two equal bursts serialize
// FIFO — the second waits out the first.
func TestComputeSingleCPUSerializes(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(1, 0)
	if e.CPUs() != 1 || e.Quantum() != DefaultQuantum {
		t.Fatalf("CPUs=%d quantum=%v, want 1/%v", e.CPUs(), e.Quantum(), DefaultQuantum)
	}
	var endA, endB Time
	a := e.Go("a", func(p *Proc) { p.Compute(10 * Millisecond); endA = p.Now() })
	b := e.Go("b", func(p *Proc) { p.Compute(10 * Millisecond); endB = p.Now() })
	e.WaitAll(a, b)
	if endA != 10*Millisecond {
		t.Errorf("first burst ended at %v, want 10ms", endA)
	}
	if endB != 20*Millisecond {
		t.Errorf("second burst ended at %v, want 20ms (serialized behind the first)", endB)
	}
}

// TestComputeRoundRobinSlicing: two 3ms bursts on one CPU with a 1ms
// quantum interleave slice by slice: a runs [0,1) [2,3) [4,5), b runs
// [1,2) [3,4) [5,6).
func TestComputeRoundRobinSlicing(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(1, Millisecond)
	var endA, endB Time
	a := e.Go("a", func(p *Proc) { p.Compute(3 * Millisecond); endA = p.Now() })
	b := e.Go("b", func(p *Proc) { p.Compute(3 * Millisecond); endB = p.Now() })
	e.WaitAll(a, b)
	if endA != 5*Millisecond || endB != 6*Millisecond {
		t.Errorf("round-robin bursts ended at %v and %v, want 5ms and 6ms", endA, endB)
	}
}

// TestComputeUncontendedKeepsCPU: a lone burst longer than the quantum
// runs to completion with no context switches — quantum expiry with an
// empty queue re-arms in place.
func TestComputeUncontendedKeepsCPU(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(1, 10*Millisecond)
	var end Time
	p := e.Go("p", func(p *Proc) { p.Compute(55 * Millisecond); end = p.Now() })
	e.WaitAll(p)
	if end != 55*Millisecond {
		t.Errorf("lone burst ended at %v, want 55ms", end)
	}
	if n := e.ContextSwitches(); n != 0 {
		t.Errorf("ContextSwitches = %d for a lone process, want 0", n)
	}
}

// TestComputeLowestIdleCPUFirst: with two CPUs, the first two arrivals
// take CPUs 0 and 1; the third queues and finishes a full burst later.
func TestComputeLowestIdleCPUFirst(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(2, 0)
	ends := make([]Time, 3)
	var ps []*Proc
	for i := 0; i < 3; i++ {
		i := i
		ps = append(ps, e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Compute(10 * Millisecond)
			ends[i] = p.Now()
		}))
	}
	e.WaitAll(ps...)
	if ends[0] != 10*Millisecond || ends[1] != 10*Millisecond {
		t.Errorf("first two bursts ended at %v and %v, want both 10ms (own CPUs)", ends[0], ends[1])
	}
	if ends[2] != 20*Millisecond {
		t.Errorf("third burst ended at %v, want 20ms (queued behind a full burst)", ends[2])
	}
	if n := e.ContextSwitches(); n != 1 {
		t.Errorf("ContextSwitches = %d, want 1 (one dispatch off a run queue)", n)
	}
}

// TestSchedulerRunnableState: a queued process is observably Runnable,
// an on-CPU computing process observably Running.
func TestSchedulerRunnableState(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(1, 10*Millisecond)
	a := e.Go("a", func(p *Proc) { p.Compute(4 * Millisecond) })
	b := e.Go("b", func(p *Proc) { p.Compute(4 * Millisecond) })
	e.After(Millisecond, func() {
		if got := a.State(); got != StateRunning {
			t.Errorf("on-CPU process State() = %v, want %v", got, StateRunning)
		}
		if got := b.State(); got != StateRunnable {
			t.Errorf("queued process State() = %v, want %v", got, StateRunnable)
		}
	})
	e.WaitAll(a, b)
}

// TestComputeMixedSleepers: sleepers do not occupy CPUs — a sleeping
// process costs the scheduler nothing while computers contend.
func TestComputeMixedSleepers(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(1, 0)
	var endSleep, endWork Time
	s := e.Go("sleeper", func(p *Proc) { p.Sleep(5 * Millisecond); endSleep = p.Now() })
	w := e.Go("worker", func(p *Proc) { p.Compute(10 * Millisecond); endWork = p.Now() })
	e.WaitAll(s, w)
	if endSleep != 5*Millisecond {
		t.Errorf("sleeper woke at %v, want 5ms (sleep never contends)", endSleep)
	}
	if endWork != 10*Millisecond {
		t.Errorf("worker finished at %v, want 10ms", endWork)
	}
}

// TestComputeZeroAndNegative: Compute(0) is a no-op in both models;
// negative bursts panic.
func TestComputeZeroAndNegative(t *testing.T) {
	for _, cpus := range []int{0, 1} {
		e := NewEngine(1)
		e.SetCPUs(cpus, 0)
		p := e.Go("p", func(p *Proc) {
			p.Compute(0)
			if p.Now() != 0 {
				t.Errorf("cpus=%d: Compute(0) advanced the clock to %v", cpus, p.Now())
			}
			defer func() {
				if recover() == nil {
					t.Errorf("cpus=%d: Compute(-1) did not panic", cpus)
				}
			}()
			p.Compute(-1)
		})
		e.WaitAll(p)
	}
}

// TestSetCPUsAfterSpawnPanics: scheduling state cannot change under
// running processes.
func TestSetCPUsAfterSpawnPanics(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("p", func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Error("SetCPUs after Spawn did not panic")
		}
		e.WaitAll(p)
	}()
	e.SetCPUs(2, 0)
}

// TestSchedulerDeterministicReplay: the same contended workload on two
// engines produces identical per-process finish times and switch counts.
func TestSchedulerDeterministicReplay(t *testing.T) {
	run := func() ([]Time, int64) {
		e := NewEngine(7)
		e.SetCPUs(2, Millisecond)
		ends := make([]Time, 12)
		var ps []*Proc
		for i := 0; i < 12; i++ {
			i := i
			ps = append(ps, e.Spawn(fmt.Sprintf("p%d", i), Time(i%5)*Microsecond, func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Compute(Time(1+(i+k)%4) * Millisecond)
					p.Sleep(Time(i%3) * Millisecond)
				}
				ends[i] = p.Now()
			}))
		}
		e.WaitAll(ps...)
		return ends, e.ContextSwitches()
	}
	ends1, sw1 := run()
	ends2, sw2 := run()
	for i := range ends1 {
		if ends1[i] != ends2[i] {
			t.Errorf("proc %d finished at %v then %v across identical runs", i, ends1[i], ends2[i])
		}
	}
	if sw1 != sw2 {
		t.Errorf("ContextSwitches = %d then %d across identical runs", sw1, sw2)
	}
	if sw1 == 0 {
		t.Error("workload produced no context switches; test exercises nothing")
	}
}

// TestCheckpointWithScheduler: a quiescent engine with CPUs configured
// checkpoints, and a fresh engine restores the cursor with the same
// scheduler configuration (the snapshot/fork path for contended
// platforms).
func TestCheckpointWithScheduler(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(2, Millisecond)
	p := e.Go("p", func(p *Proc) { p.Compute(5 * Millisecond) })
	e.WaitAll(p)
	now, seq := e.Checkpoint()
	if now != 5*Millisecond {
		t.Fatalf("checkpoint now = %v, want 5ms", now)
	}
	f := NewEngine(1)
	f.SetCPUs(2, Millisecond)
	f.Restore(now, seq)
	q := f.Go("q", func(p *Proc) { p.Compute(3 * Millisecond) })
	f.WaitAll(q)
	if got := f.Now(); got != 8*Millisecond {
		t.Errorf("restored engine at %v after a 3ms burst, want 8ms", got)
	}
}

// TestCheckpointPanicsWithBusyScheduler: checkpointing while a process
// holds a CPU is a quiescence violation, like pending events.
func TestCheckpointPanicsWithBusyScheduler(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(1, 10*Millisecond)
	a := e.Go("a", func(p *Proc) { p.Compute(20 * Millisecond) })
	e.RunUntil(Millisecond) // a is mid-burst, on CPU
	defer func() {
		if recover() == nil {
			t.Error("Checkpoint with a process on CPU did not panic")
		}
		e.WaitAll(a)
	}()
	e.Checkpoint()
}

// TestSchedSteadyStateAllocs guards the hot path: once the event pool and
// run-queue arenas are warm, contended compute (submit, dispatch, slice
// re-arm, park/wake) must allocate nothing.
func TestSchedSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(2, Millisecond)
	for i := 0; i < 8; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			for {
				p.Compute(Time(1+i%3) * Millisecond)
				p.Sleep(Time(i%2) * Millisecond)
			}
		})
	}
	e.RunUntil(200 * Millisecond) // warm pools and arenas
	next := e.Now()
	allocs := testing.AllocsPerRun(100, func() {
		next += 10 * Millisecond
		e.RunUntil(next)
	})
	if allocs != 0 {
		t.Errorf("scheduler steady state allocs/op = %v, want 0", allocs)
	}
}

// --- Scale benchmarks ---

// BenchmarkSched100kProcs runs one trial of 100k short-lived processes
// contending for 4 CPUs — the scale target from ROADMAP item 1. Spawn
// itself allocates (a Proc, a goroutine); the scheduling of the bursts
// does not (see TestSchedSteadyStateAllocs / BenchmarkSchedDispatch for
// the 0 allocs/op guarantee on the hot path).
func BenchmarkSched100kProcs(b *testing.B) {
	const n = 100_000
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		e.SetCPUs(4, Millisecond)
		ps := make([]*Proc, n)
		for j := 0; j < n; j++ {
			j := j
			ps[j] = e.Spawn(fmt.Sprintf("p%d", j), Time(j%1000)*Microsecond, func(p *Proc) {
				p.Compute(Time(100+j%400) * Microsecond)
			})
		}
		e.WaitAll(ps...)
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "procs/s")
}

// BenchmarkSchedDispatch measures one steady-state scheduler round —
// slice expiry, rotation, dispatch, park/wake — with 8 processes on 2
// CPUs. The interesting number is allocs/op: 0.
func BenchmarkSchedDispatch(b *testing.B) {
	e := NewEngine(1)
	e.SetCPUs(2, Millisecond)
	for i := 0; i < 8; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			for {
				p.Compute(Time(1+i%3) * Millisecond)
			}
		})
	}
	e.RunUntil(100 * Millisecond)
	next := e.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next += Millisecond
		e.RunUntil(next)
	}
}
