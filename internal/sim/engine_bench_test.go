package sim

import "testing"

// BenchmarkSchedule measures the schedule-then-fire path: N events pushed
// and popped through the heap with no cancellations.
func BenchmarkSchedule(b *testing.B) {
	const batch = 1024
	e := NewEngine(1)
	sink := 0
	fn := func() { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			e.Schedule(base+Time(j%37), fn)
		}
		e.Run()
	}
	_ = sink
}

// BenchmarkScheduleCancel measures the timer-churn pattern every ICL probe
// loop generates: schedule a batch, cancel it all, schedule again. The
// seed implementation's O(n) scan in Cancel makes this quadratic in the
// batch size.
func BenchmarkScheduleCancel(b *testing.B) {
	const batch = 1024
	e := NewEngine(1)
	fn := func() {}
	evs := make([]Event, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			evs[j] = e.Schedule(base+Time(j%37)+1, fn)
		}
		for j := 0; j < batch; j++ {
			e.Cancel(evs[j])
		}
		// One live event so Run advances the clock past the tombstones.
		e.Schedule(base+40, fn)
		e.Run()
	}
}

// BenchmarkProcessHandoff measures the engine<->process goroutine handoff
// (park/wake round-trip) via the Sleep fast path.
func BenchmarkProcessHandoff(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	p := e.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	e.WaitAll(p)
}
