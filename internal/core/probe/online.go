package probe

import "math"

// OnlineSplit is the streaming counterpart of SplitBimodal: a log-space
// 1-D 2-means classifier that ingests one probe time at a time and
// reports, per observation, whether it fell in the fast (memory) class
// and whether the two class centers are separated enough to believe.
// SplitBimodal allocates per pass (it clusters a whole sample), which
// rules it out on per-block hot paths; OnlineSplit holds two EWMA
// centers in fixed fields and performs no allocation ever.
//
// The stash admission path is the motivating caller: every source fetch
// is timed, and a fast fetch means the (invisible) OS cache already held
// the block — admitting it to the stash would double-cache it.
type OnlineSplit struct {
	minSep  float64
	alpha   float64
	centers [2]float64 // log-space EWMA means; centers[0] is the fast class
	counts  [2]int64   // observations absorbed per center (0 = center unset)
}

// NewOnlineSplit creates a classifier believing splits of at least
// minSep in log space (use MinLogSeparation for the paper's 8x rule).
func NewOnlineSplit(minSep float64) *OnlineSplit {
	return &OnlineSplit{minSep: minSep, alpha: 0.25}
}

// Reset drops all learned state.
func (o *OnlineSplit) Reset() {
	o.centers = [2]float64{}
	o.counts = [2]int64{}
}

// Observe ingests one probe time (virtual nanoseconds) and classifies
// it. fast is true when the observation joined the lower center;
// confident is true only once two centers exist and their separation
// clears minSep — callers should treat !confident classifications as
// "unknown" and fall back to their safe default.
func (o *OnlineSplit) Observe(ns float64) (fast, confident bool) {
	x := math.Log(ns + 1)
	switch {
	case o.counts[0] == 0 && o.counts[1] == 0:
		// First sample: seed the slow center. Slow is the safe guess —
		// a disk-speed first probe is the common cold-start case.
		o.centers[1] = x
		o.counts[1] = 1
		return false, false
	case o.counts[0] == 0:
		// One center so far. A sample far below it reveals a fast class;
		// far above means the seed itself was the fast class.
		c := o.centers[1]
		switch {
		case x <= c-o.minSep:
			o.centers[0] = x
			o.counts[0] = 1
			return true, true
		case x >= c+o.minSep:
			o.centers[0], o.centers[1] = c, x
			o.counts[0], o.counts[1] = o.counts[1], 1
			return false, true
		default:
			o.centers[1] += o.alpha * (x - o.centers[1])
			o.counts[1]++
			return false, false
		}
	}
	// Two centers: assign to the nearer one and track it.
	i := 0
	if x-o.centers[0] > o.centers[1]-x {
		i = 1
	}
	o.centers[i] += o.alpha * (x - o.centers[i])
	o.counts[i]++
	if o.centers[0] > o.centers[1] {
		o.centers[0], o.centers[1] = o.centers[1], o.centers[0]
		o.counts[0], o.counts[1] = o.counts[1], o.counts[0]
		i = 1 - i
	}
	return i == 0, o.Separation() >= o.minSep
}

// Separation returns the current log-space distance between the two
// centers (0 until both exist).
func (o *OnlineSplit) Separation() float64 {
	if o.counts[0] == 0 || o.counts[1] == 0 {
		return 0
	}
	return o.centers[1] - o.centers[0]
}
