package experiments

import (
	"fmt"

	"graybox/internal/apps"
	"graybox/internal/core/fccd"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// Fig4Config parameterizes the multi-platform experiment (Figure 4):
// large-file scans and multi-file searches on Linux, NetBSD and Solaris
// personalities, reporting cold, warm and gray-box warm times normalized
// to the cold time on each platform.
type Fig4Config struct {
	Scale Scale
}

func (c Fig4Config) withDefaults() Fig4Config {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	return c
}

// Fig4 runs both benchmarks on all three personalities.
func Fig4(cfg Fig4Config) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	t := &Table{
		ID:      "fig4",
		Title:   "Multi-platform scans and searches (normalized to cold per platform)",
		Columns: []string{"platform", "benchmark", "cold", "warm", "gray-box", "warm/cold", "gb/cold"},
	}
	costs := apps.DefaultCosts()
	platforms := []simos.Personality{simos.Linux22, simos.NetBSD15, simos.Solaris7}

	// Each (platform, benchmark) pair runs on its own system, so the six
	// cells run as independent units; rows keep the paper's order. The
	// scan and search units on one personality share a base machine
	// (their corpora differ, so files are created after the fork).
	bases := make([]*SnapshotPlatform, len(platforms))
	for pi := range platforms {
		p := platforms[pi]
		bases[pi] = NewSnapshotPlatform(func(seed uint64) *simos.System {
			return buildSystem(p, sc, seed)
		})
	}
	scanRows := make([][]string, len(platforms))
	searchRows := make([][]string, len(platforms))
	ForEachTrial(2*len(platforms), func(u int) {
		pi, kind := u/2, u%2
		if kind == 0 {
			scanRows[pi] = fig4Scan(sc, pi, platforms[pi], costs, bases[pi])
		} else {
			searchRows[pi] = fig4Search(sc, pi, platforms[pi], costs, bases[pi])
		}
	})
	for pi := range platforms {
		t.AddRow(scanRows[pi]...)
		t.AddRow(searchRows[pi]...)
	}
	t.AddNote("paper: Linux warm scan ~ cold (LRU); NetBSD small fixed cache; Solaris warm scans fast even unmodified (hold-first); gray-box search wins everywhere")
	return t
}

// fig4Scan runs one platform's large-file scan benchmark. Linux and
// Solaris scan a ~1 GB file; NetBSD's fixed cache is 64 MB, so (like the
// paper, which reports best-case gray-box behavior there) it scans a file
// sized to its own cache.
func fig4Scan(sc Scale, pi int, p simos.Personality, costs apps.Costs, plat *SnapshotPlatform) []string {
	scanMB := sc.mb(1024)
	if p == simos.NetBSD15 {
		scanMB = sc.netbsdCacheMB() + 1
	}
	s := plat.Trial(4000 + uint64(pi))
	_, err := s.FS(0).CreateSized("data", scanMB*simos.MB)
	mustNoErr(err)

	var cold, warm, gb sim.Time
	mustRun(s, "scan", func(os *simos.OS) {
		r, err := apps.Scan(os, "data", costs)
		mustNoErr(err)
		cold = r.Elapsed
		r, err = apps.Scan(os, "data", costs)
		mustNoErr(err)
		warm = r.Elapsed
		det := fccd.New(os, fccd.Config{
			AccessUnit:     scaledAccessUnit(sc),
			PredictionUnit: scaledPredictionUnit(sc),
			Seed:           uint64(pi),
		})
		r2, err := apps.GBScan(os, det, "data", costs)
		mustNoErr(err)
		gb = r2.Elapsed
	})
	return []string{string(p), fmt.Sprintf("scan %dMB", scanMB), cold.String(), warm.String(), gb.String(),
		fmt.Sprintf("%.2f", float64(warm)/float64(cold)),
		fmt.Sprintf("%.2f", float64(gb)/float64(cold))}
}

// fig4Search runs one platform's multi-file search benchmark: 100 x 10 MB
// files (65 x 1 MB on NetBSD). The matching string is in a cached file
// listed LAST on the command line: maximum benefit for the gray-box
// search.
func fig4Search(sc Scale, pi int, p simos.Personality, costs apps.Costs, plat *SnapshotPlatform) []string {
	nFiles, fileMB := 100, sc.mb(10)
	if p == simos.NetBSD15 {
		nFiles, fileMB = 65, sc.mb(14)/14 // ~1 MB scaled
		if fileMB < 1 {
			fileMB = 1
		}
	}
	s2 := plat.Trial(4100 + uint64(pi))
	mustRun(s2, "mk", func(os *simos.OS) { mustNoErr(os.Mkdir("corpus")) })
	var paths []string
	for i := 0; i < nFiles; i++ {
		path := fmt.Sprintf("corpus/t%03d", i)
		_, err := s2.FS(0).CreateSized(path, fileMB*simos.MB)
		mustNoErr(err)
		paths = append(paths, path)
	}
	match := paths[len(paths)-1]

	var sCold, sWarm, sGB sim.Time
	mustRun(s2, "search", func(os *simos.OS) {
		r, err := apps.Search(os, paths, match, costs)
		mustNoErr(err)
		sCold = r.Elapsed
		// Warm state for the remaining runs: only the match file is
		// cached (the paper configures the maximum-benefit case).
		s2.DropCaches()
		fd, err := os.Open(match)
		mustNoErr(err)
		mustNoErr(fd.Read(0, fd.Size()))
		det := fccd.New(os, fccd.Config{
			AccessUnit:     scaledAccessUnit(sc),
			PredictionUnit: scaledPredictionUnit(sc),
			Seed:           uint64(pi + 7),
		})
		r2, err := apps.GBSearch(os, det, paths, match, costs)
		mustNoErr(err)
		sGB = r2.Elapsed
		// Traditional search gets no advantage: it still walks the
		// command-line order and finds the match last.
		r, err = apps.Search(os, paths, match, costs)
		mustNoErr(err)
		sWarm = r.Elapsed
	})
	return []string{string(p), fmt.Sprintf("search %dx%dMB", nFiles, fileMB),
		sCold.String(), sWarm.String(), sGB.String(),
		fmt.Sprintf("%.2f", float64(sWarm)/float64(sCold)),
		fmt.Sprintf("%.2f", float64(sGB)/float64(sCold))}
}
