package mac

import (
	"testing"

	"graybox/internal/simos"
)

// TestGBAllocAuditedAgainstOracle enables auditing and checks that one
// admission is scored against the oracle's free-memory snapshot: the
// admitted bytes must land close to what was truly available.
func TestGBAllocAuditedAgainstOracle(t *testing.T) {
	s := newSys()
	aud := s.EnableAudit()
	err := s.Run("t", func(os *simos.OS) {
		c := New(os, testConfig())
		a, ok := c.GBAlloc(4*simos.MB, 64*simos.MB, simos.MB)
		if !ok {
			t.Fatal("GBAlloc failed on an idle machine")
		}
		defer c.GBFree(a)

		rec, recorded := aud.LastMAC()
		if !recorded {
			t.Fatal("no MAC audit record")
		}
		if !rec.Admitted || rec.GotBytes != a.Bytes {
			t.Errorf("record %+v does not match admission of %d bytes", rec, a.Bytes)
		}
		if rec.PagesProbed == 0 || rec.ProbeNS == 0 {
			t.Errorf("probe cost not attributed: %+v", rec)
		}
		// On an idle machine MAC finds most of the truly-available
		// memory: accuracy well above the floor used by mac-accuracy.
		if rec.Accuracy < 0.7 {
			t.Errorf("accuracy = %v (oracle %d MB, got %d MB)",
				rec.Accuracy, rec.OracleBytes/simos.MB, rec.GotBytes/simos.MB)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := aud.Report()
	if rep.MAC == nil || rep.MAC.Calls != 1 || rep.MAC.Admits != 1 {
		t.Fatalf("MAC report = %+v", rep.MAC)
	}
}

// TestGBAllocRejectAudited scores a rejection: when memory is hogged the
// rejection is correct and audits at accuracy 1.
func TestGBAllocRejectAudited(t *testing.T) {
	s := newSys()
	aud := s.EnableAudit()
	err := s.Run("t", func(os *simos.OS) {
		// Hog nearly everything so even min is unavailable.
		hog := os.MallocPages(int64(50 * simos.MB / os.PageSize()))
		os.TouchRange(hog, 0, hog.Pages(), true)
		c := New(os, testConfig())
		if _, ok := c.GBAlloc(48*simos.MB, 56*simos.MB, simos.MB); ok {
			t.Fatal("GBAlloc admitted against a hog holding almost all memory")
		}
		rec, recorded := aud.LastMAC()
		if !recorded || rec.Admitted || rec.GotBytes != 0 {
			t.Fatalf("rejection record = %+v, %v", rec, recorded)
		}
		if rec.Accuracy != 1 {
			t.Errorf("correct rejection audited at accuracy %v (oracle %d MB)",
				rec.Accuracy, rec.OracleBytes/simos.MB)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
