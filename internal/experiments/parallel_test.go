package experiments

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"graybox/internal/audit"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/telemetry"
)

// withParallelism runs f at pool width n and restores the default.
func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	SetParallelism(n)
	defer SetParallelism(0)
	f()
}

func TestRunTrialsOrderAndWidth(t *testing.T) {
	withParallelism(t, 4, func() {
		if got := Parallelism(); got != 4 {
			t.Fatalf("Parallelism() = %d, want 4", got)
		}
		var inFlight, peak atomic.Int64
		out := RunTrials(64, func(i int) int {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			defer inFlight.Add(-1)
			return i * i
		})
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d, want %d (results must keep index order)", i, v, i*i)
			}
		}
		if p := peak.Load(); p > 4 {
			t.Errorf("peak concurrency %d exceeds pool width 4", p)
		}
	})
}

func TestRunTrialsPanicPropagates(t *testing.T) {
	withParallelism(t, 4, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("trial panic was swallowed")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "trial 3 panicked: boom") {
				t.Fatalf("panic payload %v, want lowest-index trial failure", r)
			}
		}()
		RunTrials(8, func(i int) int {
			if i >= 3 {
				panic("boom")
			}
			return i
		})
	})
}

func TestRunTrialsZeroAndSequential(t *testing.T) {
	if out := RunTrials(0, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("RunTrials(0) returned %v", out)
	}
	withParallelism(t, 1, func() {
		last := -1
		RunTrials(16, func(i int) int {
			if i != last+1 {
				t.Fatalf("sequential pool ran trial %d after %d", i, last)
			}
			last = i
			return i
		})
	})
}

// withSnapshotReuse runs f with the snapshot path forced on or off and
// restores the default (on).
func withSnapshotReuse(t *testing.T, on bool, f func()) {
	t.Helper()
	SetSnapshotReuse(on)
	defer SetSnapshotReuse(true)
	f()
}

// withShardParallel runs f with every machine built on sharded event
// lanes at the given harvest width and restores the serial default.
func withShardParallel(t *testing.T, n int, f func()) {
	t.Helper()
	if err := SetShardParallel(n); err != nil {
		t.Fatal(err)
	}
	defer SetShardParallel(0)
	f()
}

// TestParallelDeterminism is the tentpole's correctness gate: fan-out must
// not perturb results. Every trial owns its platform (one engine, one RNG,
// one virtual clock), so the rendered table must be byte-identical between
// a sequential run and a wide pool — and so must the telemetry exports
// (Chrome trace and metrics snapshot) and the oracle-grounded audit
// report collected along the way. The same holds for the snapshot path:
// trials forked from a shared platform snapshot must render byte-identical
// tables and exports to cold-built trials.
func TestParallelDeterminism(t *testing.T) {
	EnableTelemetry(true)
	EnableAudit(true)
	defer func() {
		EnableTelemetry(false)
		EnableAudit(false)
	}()
	TakeTelemetry() // drain whatever earlier tests accumulated
	TakeAudits()
	render := func(n int, snap bool, shard int) (tables, trace, metrics, audits string) {
		var b strings.Builder
		withShardParallel(t, shard, func() {
			withSnapshotReuse(t, snap, func() {
				withParallelism(t, n, func() {
					b.WriteString(Fig2(Fig2Config{Scale: QuickScale()}).String())
					b.WriteString(Fig5(Fig5Config{Scale: QuickScale()}).String())
					b.WriteString(PriorArtSweeps().String())
					// Two intensity points keep the contention sweep fast while
					// still exercising workload-concurrent trials at both widths.
					b.WriteString(Noise(NoiseConfig{Scale: QuickScale(), Intensities: []float64{0, 0.75}}).String())
					// One quota x intensity point (2 arms, naive vs gray-box)
					// covers the stash tier: tier-disk fork, Preload, audit.
					b.WriteString(Stash(StashConfig{Scale: QuickScale(), QuotaFracs: []float64{0.25}, Intensities: []float64{0.5}}).String())
					// One load level (2 arms) covers the request-tracing path:
					// sketches, SLO tracker, per-request span trees, and the
					// MAC admission controller, with trial-side telemetry on.
					b.WriteString(Slo(SloConfig{Scale: QuickScale(), Loads: []float64{300}, Duration: 500 * sim.Millisecond}).String())
					// The same sweeps on contended machines (CPUs=1 and 2):
					// the SMP scheduler's run queues, timeslice preemption, and
					// dispatch order must be as deterministic as everything
					// above, across pool widths and snapshot on/off.
					b.WriteString(Noise(NoiseConfig{Scale: QuickScale(), Intensities: []float64{0.75}, CPUList: []int{1, 2}}).String())
					b.WriteString(Slo(SloConfig{Scale: QuickScale(), Loads: []float64{300}, Duration: 500 * sim.Millisecond, CPUList: []int{1, 2}}).String())
				})
			})
		})
		regs := TakeTelemetry()
		var tr, mt, au bytes.Buffer
		if err := telemetry.WriteChromeTrace(&tr, regs); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteMetricsJSON(&mt, regs); err != nil {
			t.Fatal(err)
		}
		if err := audit.WriteJSON(&au, TakeAudits()); err != nil {
			t.Fatal(err)
		}
		return b.String(), tr.String(), mt.String(), au.String()
	}
	seqTab, seqTrace, seqMetrics, seqAudit := render(1, true, 0)
	parTab, parTrace, parMetrics, parAudit := render(8, true, 0)
	coldTab, coldTrace, coldMetrics, coldAudit := render(8, false, 0)
	if seqTab != parTab {
		t.Errorf("-parallel 8 output differs from sequential run:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqTab, parTab)
	}
	if seqTrace != parTrace {
		t.Error("-parallel 8 Chrome trace differs from sequential run")
	}
	if seqMetrics != parMetrics {
		t.Error("-parallel 8 metrics snapshot differs from sequential run")
	}
	if seqAudit != parAudit {
		t.Error("-parallel 8 audit report differs from sequential run")
	}
	if parTab != coldTab {
		t.Errorf("snapshot-forked output differs from cold-built trials:\n--- forked ---\n%s\n--- cold ---\n%s", parTab, coldTab)
	}
	if parTrace != coldTrace {
		t.Error("snapshot-forked Chrome trace differs from cold-built trials")
	}
	if parMetrics != coldMetrics {
		t.Error("snapshot-forked metrics snapshot differs from cold-built trials")
	}
	if parAudit != coldAudit {
		t.Error("snapshot-forked audit report differs from cold-built trials")
	}
	// Sharded event lanes are a pure performance structure: the whole
	// suite — tables, trace, metrics, audit — must be byte-identical at
	// any harvest worker count, -parallel width, or snapshot mode.
	for _, shard := range []int{2, 4} {
		shTab, shTrace, shMetrics, shAudit := render(8, true, shard)
		if shTab != seqTab {
			t.Errorf("-shard-parallel %d output differs from the serial engine:\n--- serial ---\n%s\n--- sharded ---\n%s", shard, seqTab, shTab)
		}
		if shTrace != seqTrace {
			t.Errorf("-shard-parallel %d Chrome trace differs from the serial engine", shard)
		}
		if shMetrics != seqMetrics {
			t.Errorf("-shard-parallel %d metrics snapshot differs from the serial engine", shard)
		}
		if shAudit != seqAudit {
			t.Errorf("-shard-parallel %d audit report differs from the serial engine", shard)
		}
	}
	// The exports must actually contain the instrumented stack, ICLs
	// included (fig2 drives FCCD probes).
	for _, want := range []string{"syscall.read_byte_ns", "fccd.probe_ns", "disk0.reads",
		"sched.cpu0.runnable", "sched.cpu0.switches"} {
		if !strings.Contains(seqMetrics, want) {
			t.Errorf("metrics export missing %q", want)
		}
	}
	if !strings.Contains(seqTrace, "traceEvents") {
		t.Error("trace export is not a Chrome trace_event document")
	}
	// The audit report must actually score the ICL predictions fig2 made.
	if !strings.Contains(seqAudit, "fccd") {
		t.Error("audit report missing FCCD section")
	}
}

// TestSnapshotDeterminismAllExperiments sweeps the whole registry: every
// experiment's table must be byte-identical whether its trials fork a
// shared platform snapshot or cold-build their machines. Experiments
// that never touch the snapshot path pass trivially (both runs are cold
// builds); the ones that do (fig1, fig2, fig4, noise) prove the fork is
// indistinguishable from a cold build end to end.
func TestSnapshotDeterminismAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var forked, cold string
			withParallelism(t, 8, func() {
				withSnapshotReuse(t, true, func() { forked = r.Run(QuickScale()).String() })
				withSnapshotReuse(t, false, func() { cold = r.Run(QuickScale()).String() })
			})
			if forked != cold {
				t.Errorf("snapshot-forked table differs from cold-built trials:\n--- forked ---\n%s\n--- cold ---\n%s", forked, cold)
			}
		})
	}
	TakeVirtualTime() // drop the platforms this sweep built
}

func TestTakeTelemetry(t *testing.T) {
	EnableTelemetry(true)
	defer EnableTelemetry(false)
	TakeTelemetry() // drain
	s := newSystem(simos.Linux22, QuickScale(), 1)
	mustRun(s, "tick", func(os *simos.OS) { os.Sleep(sim.Millisecond) })
	regs := TakeTelemetry()
	if len(regs) != 1 {
		t.Fatalf("TakeTelemetry returned %d registries, want 1", len(regs))
	}
	if regs[0] != s.Telemetry() {
		t.Error("collected registry is not the platform's")
	}
	if again := TakeTelemetry(); len(again) != 0 {
		t.Errorf("second TakeTelemetry returned %d registries, want 0 (accumulator resets)", len(again))
	}
}

func TestTakeAudits(t *testing.T) {
	EnableAudit(true)
	defer EnableAudit(false)
	TakeAudits() // drain
	s := newSystem(simos.Linux22, QuickScale(), 1)
	mustRun(s, "tick", func(os *simos.OS) { os.Sleep(sim.Millisecond) })
	auds := TakeAudits()
	if len(auds) != 1 {
		t.Fatalf("TakeAudits returned %d auditors, want 1", len(auds))
	}
	if auds[0] != s.Audit() {
		t.Error("collected auditor is not the platform's")
	}
	if again := TakeAudits(); len(again) != 0 {
		t.Errorf("second TakeAudits returned %d auditors, want 0 (accumulator resets)", len(again))
	}
}

func TestTakeVirtualTime(t *testing.T) {
	TakeVirtualTime() // drain whatever earlier tests accumulated
	s := newSystem(simos.Linux22, QuickScale(), 1)
	mustRun(s, "tick", func(os *simos.OS) { os.Sleep(sim.Millisecond) })
	if vt := TakeVirtualTime(); vt <= 0 {
		t.Errorf("TakeVirtualTime = %v, want > 0 after a run", vt)
	}
	if vt := TakeVirtualTime(); vt != 0 {
		t.Errorf("TakeVirtualTime = %v on second call, want 0 (accumulator resets)", vt)
	}
}
