// layout: the paper's Section 4.2 scenario — a nightly batch job (think
// a backup or indexer) reads thousands of small files. Access order
// dictates seek time; the FLDC infers layout from i-numbers, and a
// periodic directory refresh repairs aging.
package main

import (
	"fmt"
	"log"

	"graybox"
	"graybox/internal/sim"
)

const (
	numFiles = 400
	fileSize = 8 << 10 // 8 KB
)

func readAll(os *graybox.Proc, paths []string) (graybox.Time, error) {
	sw := graybox.NewStopwatch(os)
	for _, p := range paths {
		fd, err := os.Open(p)
		if err != nil {
			return 0, err
		}
		if err := fd.Read(0, fd.Size()); err != nil {
			return 0, err
		}
	}
	return sw.Elapsed(), nil
}

func main() {
	p := graybox.NewPlatform(graybox.PlatformConfig{})
	err := p.Run("layout", func(os *graybox.Proc) {
		if err := os.Mkdir("spool"); err != nil {
			log.Fatal(err)
		}
		rng := sim.NewRNG(3)
		// Create files with shuffled names so that name order says
		// nothing about layout — only i-numbers reveal it.
		perm := rng.Perm(numFiles)
		for i := 0; i < numFiles; i++ {
			fd, err := os.Create(fmt.Sprintf("spool/m%05d", perm[i]))
			if err != nil {
				log.Fatal(err)
			}
			if err := fd.Write(0, fileSize); err != nil {
				log.Fatal(err)
			}
		}

		list := func() []string {
			names, err := os.Readdir("spool")
			if err != nil {
				log.Fatal(err)
			}
			out := make([]string, len(names))
			for i, n := range names {
				out[i] = "spool/" + n
			}
			return out
		}

		l := graybox.NewFLDC(os)
		measure := func(label string) (nameOrder, inoOrder graybox.Time) {
			paths := list()
			p.DropCaches()
			nameOrder, err := readAll(os, paths)
			if err != nil {
				log.Fatal(err)
			}
			ordered, err := l.OrderByINumber(paths)
			if err != nil {
				log.Fatal(err)
			}
			p.DropCaches()
			inoOrder, err = readAll(os, ordered)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s name order %8v   i-number order %8v   (%.1fx)\n",
				label, nameOrder, inoOrder, float64(nameOrder)/float64(inoOrder))
			return
		}

		measure("fresh directory:")

		// Age the spool: heavy churn with mixed sizes.
		for e := 0; e < 60; e++ {
			names, _ := os.Readdir("spool")
			for k := 0; k < 5; k++ {
				victim := names[rng.Intn(len(names))]
				if os.Unlink("spool/"+victim) != nil {
					continue
				}
			}
			for k := 0; k < 5; k++ {
				fd, err := os.Create(fmt.Sprintf("spool/n%03d_%d", e, k))
				if err != nil {
					log.Fatal(err)
				}
				if err := fd.Write(0, int64(rng.Intn(4)+1)*4096); err != nil {
					log.Fatal(err)
				}
			}
		}
		measure("after 60 churn epochs:")

		// The nightly refresh: rewrite the directory, small files first.
		sw := graybox.NewStopwatch(os)
		if err := l.Refresh("spool", graybox.RefreshBySize); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refresh took %v\n", sw.Elapsed())
		measure("after refresh:")
	})
	if err != nil {
		log.Fatal(err)
	}
}
