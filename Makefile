# Tier-1 gates and perf tooling. `make race` is the correctness gate for
# the parallel trial harness; `make bench` tracks the engine fast path and
# writes the suite's BENCH_experiments.json.

GO ?= go

.PHONY: all build test race vet bench bench-suite bench-telemetry cover ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race gate for the worker-pool trial runner (and the single-threaded
# engine invariant beneath it).
race:
	$(GO) test -race ./internal/sim ./internal/experiments

vet:
	$(GO) vet ./...

# Engine hot-path microbenchmarks.
bench:
	$(GO) test ./internal/sim -run NONE -bench 'BenchmarkSchedule|BenchmarkScheduleCancel|BenchmarkProcessHandoff' -benchmem

# Full quick-scale suite with the per-experiment timing report.
bench-suite: build
	$(GO) run ./cmd/gb-experiments -scale quick -o /dev/null -bench-out BENCH_experiments.json

# Telemetry overhead guard: the disabled path must report 0 allocs/op.
bench-telemetry:
	$(GO) test ./internal/simos -run NONE -bench BenchmarkTelemetryOverhead -benchmem

# Per-package statement coverage.
cover:
	$(GO) test -cover ./...

ci: build vet test race
