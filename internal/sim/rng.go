package sim

// RNG is a small, fast, deterministic random number generator
// (xorshift64* seeded through splitmix64). It exists so that simulation
// randomness is stable across Go releases, unlike math/rand's unspecified
// algorithm guarantees for derived helpers.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Any seed, including zero,
// is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 step guarantees a non-zero xorshift state.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// State returns the generator's internal state. Snapshot machinery uses
// it to assert that an engine's RNG stream is still unconsumed (equal to
// a freshly seeded generator's state).
func (r *RNG) State() uint64 { return r.state }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork returns an independent generator derived from this one's stream,
// for components that need private randomness without perturbing others.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
