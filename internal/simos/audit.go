package simos

import (
	"fmt"

	"graybox/internal/audit"
)

// oracleAdapter implements audit.Oracle with the machine's ground truth
// — the cache, fs and VM state an ICL can only infer through timing.
type oracleAdapter struct{ s *System }

func (o oracleAdapter) NowNS() int64    { return o.s.Engine.NowNS() }
func (o oracleAdapter) PageSize() int64 { return int64(o.s.PageSize()) }

// ResidentPages is the kernel presence bitmap of footnote 2. Inode
// numbers are globally unique across this machine's file systems (each
// fs offsets by InoBase and they share one cache namespace).
func (o oracleAdapter) ResidentPages(ino int64, npages int64) []bool {
	return o.s.Cache.PresenceBitmap(ino, npages)
}

// ResidentPage is the point query behind ResidentPages: one page's
// truth without building a bitmap. The stash admission audit calls it
// once per block fetch, so it must stay allocation-free.
func (o oracleAdapter) ResidentPage(ino, page int64) bool {
	return o.s.Cache.ContainsPage(ino, page)
}

// FirstBlock locates a file's first data block on disk — the true
// layout position FLDC tries to infer from i-numbers. It goes through
// fs.FirstBlockOf, which reads the block map in place: auditing a
// prediction must not copy a (possibly huge) block slice per call.
func (o oracleAdapter) FirstBlock(path string) (int64, bool) {
	f, rel, err := o.s.resolve(path)
	if err != nil {
		return 0, false
	}
	return f.FirstBlockOf(rel)
}

// AvailableBytes is AvailableMB's ground truth at byte precision.
func (o oracleAdapter) AvailableBytes() int64 {
	return o.s.availablePages() * int64(o.s.PageSize())
}

// EnableAudit attaches an oracle-grounded auditor to this machine. Every
// ICL prediction made through this machine's OS facade is then scored
// against ground truth (internal/audit). It is idempotent and returns
// the auditor; when never called, auditing stays disabled at zero cost
// (ICL hot paths pay one nil check).
func (s *System) EnableAudit() *audit.Auditor {
	if s.aud != nil {
		return s.aud
	}
	label := fmt.Sprintf("%s mem=%dMB disks=%d seed=%d",
		s.cfg.Personality, s.cfg.MemoryMB, len(s.dataDisks), s.cfg.Seed)
	s.aud = audit.New(label, oracleAdapter{s})
	return s.aud
}

// Audit returns the machine's auditor, nil when disabled. The nil
// auditor is safe to use; all its methods are no-ops.
func (s *System) Audit() *audit.Auditor { return s.aud }

// Audit exposes the auditor to the process. Like Telemetry, this is an
// observability side channel, not a gray-box violation: ICLs only hand
// it their predictions; the ground truth flows from the oracle to the
// report, never back into the ICL. Safe on a nil receiver.
func (o *OS) Audit() *audit.Auditor {
	if o == nil {
		return nil
	}
	return o.sys.aud
}
