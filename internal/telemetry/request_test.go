package telemetry

import "testing"

// TestRequestBreakdown drives one request through the full stage
// vocabulary with a hand-advanced clock and checks the critical-path
// decomposition field by field.
//
// Timeline (virtual ns): arrival 50, serving starts 100 (50 of
// admission-queue wait), syscall open 100-110 (pure cache), syscall
// read 110-150 enclosing a disk span 115-145 of which 12 was disk-queue
// wait, app processing 150-170, finish 180.
func TestRequestBreakdown(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	tr := r.NewTrack("req-proc")

	clk.now = 100
	req := tr.StartRequest("request", "GET f3", 50)

	tr.Begin("syscall", "open")
	clk.now = 110
	tr.End()

	tr.Begin("syscall", "read")
	clk.now = 115
	tr.Begin("disk", "read")
	tr.QueueWait(12)
	clk.now = 145
	tr.End() // disk: 30, of which 12 queued
	clk.now = 150
	tr.End() // syscall read: 40 (10 cache + 30 disk)

	tr.Begin("app", "process")
	clk.now = 170
	tr.End()

	clk.now = 180
	bd := req.Finish()

	want := Breakdown{Total: 130, Queue: 72, Cache: 20, Disk: 18, App: 20}
	if bd != want {
		t.Fatalf("breakdown = %+v, want %+v", bd, want)
	}
	if got := bd.Queue + bd.Cache + bd.Disk + bd.App; got != bd.Total {
		t.Fatalf("stages sum to %d, total is %d", got, bd.Total)
	}
	// Double Finish must not double-count or disturb the track.
	if again := req.Finish(); again != (Breakdown{}) {
		t.Errorf("second Finish returned %+v, want zero", again)
	}
}

// TestRequestNestedSameCategory: re-entrant instrumentation (a syscall
// span inside a syscall span) must count the stage once, by the
// outermost span only.
func TestRequestNestedSameCategory(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	tr := r.NewTrack("p")

	req := tr.StartRequest("request", "r", 0)
	tr.Begin("syscall", "outer")
	clk.now = 10
	tr.Begin("syscall", "inner")
	clk.now = 40
	tr.End() // inner 30: nested under same-cat ancestor, must be skipped
	clk.now = 50
	tr.End() // outer 50
	clk.now = 60
	bd := req.Finish()
	if bd.Cache != 50 {
		t.Errorf("Cache = %d, want 50 (outer syscall only, inner skipped)", bd.Cache)
	}
	if bd.Total != 60 || bd.Queue != 10 {
		t.Errorf("Total/Queue = %d/%d, want 60/10", bd.Total, bd.Queue)
	}
}

// TestRequestScoping: spans outside an active request, QueueWait with no
// request in flight, and spans from a *previous* request (stale id) must
// not leak into accumulators.
func TestRequestScoping(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("test", clk.fn())
	tr := r.NewTrack("p")

	// No request active: nothing accumulates, nothing panics.
	tr.QueueWait(99)
	tr.Begin("syscall", "idle")
	clk.now = 10
	tr.End()

	req1 := tr.StartRequest("request", "r1", 0)
	tr.Begin("syscall", "s")
	clk.now = 20
	tr.End()
	clk.now = 25
	bd1 := req1.Finish()
	if bd1.Cache != 10 {
		t.Errorf("r1 Cache = %d, want 10 (pre-request idle span excluded)", bd1.Cache)
	}

	// A second request on the same track reuses the embedded RequestSpan.
	req2 := tr.StartRequest("request", "r2", 25)
	if req1 == req2 { // same pointer by design...
		if req2.id == 0 {
			t.Fatal("reused RequestSpan not re-armed")
		}
	}
	clk.now = 30
	bd2 := req2.Finish()
	if bd2.Total != 5 || bd2.Cache != 0 {
		t.Errorf("r2 breakdown = %+v, want Total 5 with clean accumulators", bd2)
	}
}

// TestRequestNilSafety: with telemetry disabled every request-path call
// is a nil-receiver no-op.
func TestRequestNilSafety(t *testing.T) {
	var tr *Track
	req := tr.StartRequest("request", "r", 0)
	if req != nil {
		t.Fatal("nil track returned a live RequestSpan")
	}
	tr.QueueWait(5)
	if bd := req.Finish(); bd != (Breakdown{}) {
		t.Errorf("nil Finish = %+v, want zero", bd)
	}
}

// TestDisabledRequestPathZeroAlloc is the hot-path guard: the full
// per-request instrumentation sequence (request root, syscall/disk/app
// spans, queue-wait attribution, latency sketch, SLO check) must not
// allocate when telemetry is off. This is what lets the WebServer stay
// instrumented unconditionally.
func TestDisabledRequestPathZeroAlloc(t *testing.T) {
	var tr *Track
	var sk *Sketch
	var slo *SLO
	allocs := testing.AllocsPerRun(1000, func() {
		req := tr.StartRequest("request", "r", 0)
		tr.Begin("syscall", "read")
		tr.Begin("disk", "read")
		tr.QueueWait(7)
		tr.End()
		tr.End()
		tr.Begin("app", "process")
		tr.End()
		bd := req.Finish()
		sk.Observe(bd.Total)
		slo.Observe(bd.Total)
	})
	if allocs != 0 {
		t.Errorf("disabled request path allocates %v per request, want 0", allocs)
	}
}

// BenchmarkRequestPath measures the per-request instrumentation cost.
// The disabled arm must report 0 allocs/op (see the guard test above);
// the enabled arm is the price an instrumented run pays per request.
func BenchmarkRequestPath(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Track
		var sk *Sketch
		var slo *SLO
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := tr.StartRequest("request", "r", 0)
			tr.Begin("syscall", "read")
			tr.Begin("disk", "read")
			tr.QueueWait(7)
			tr.End()
			tr.End()
			tr.Begin("app", "process")
			tr.End()
			bd := req.Finish()
			sk.Observe(bd.Total)
			slo.Observe(bd.Total)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		clk := &fakeClock{}
		r := NewRegistry("bench", clk.fn())
		tr := r.NewTrack("p")
		sk := r.Sketch("lat")
		slo := r.SLO("slo", 1000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clk.now += 10
			req := tr.StartRequest("request", "r", clk.now-5)
			tr.Begin("syscall", "read")
			tr.Begin("disk", "read")
			tr.QueueWait(2)
			clk.now += 3
			tr.End()
			tr.End()
			tr.Begin("app", "process")
			clk.now += 1
			tr.End()
			bd := req.Finish()
			sk.Observe(bd.Total)
			slo.Observe(bd.Total)
		}
	})
}
