// Package telemetry is the virtual-time observability subsystem: metrics
// (counters, gauges, fixed-bucket histograms), spans (begin/end regions
// nested per track), and bounded instant-event rings, all registered in a
// per-platform Registry and exportable as a Chrome trace_event JSON file
// or a deterministic metrics snapshot.
//
// Design constraints, in order:
//
//   - Timestamps are virtual. The Registry reads a Clock supplied by the
//     simulation engine, so identical seeds produce byte-identical
//     exports regardless of wall-clock scheduling or pool width.
//   - Disabled telemetry is free. Every method is nil-safe: a nil
//     *Registry hands out nil *Counter/*Gauge/*Histogram/*Track handles
//     whose methods are no-ops, so instrumented hot loops pay one nil
//     check and zero allocations when telemetry is off.
//   - The enabled hot path avoids allocation where practical: metrics
//     update in place, span stacks and the span log reuse their backing
//     arrays, and nothing is formatted until export time.
//
// The package deliberately does not import the simulator: clocks are
// plain func() int64 (virtual nanoseconds), which keeps the dependency
// arrow pointing from the simulator to its instrumentation.
package telemetry

import "sort"

// A Clock reports the current virtual time in nanoseconds.
type Clock func() int64

// DefaultMaxSpans bounds the per-registry span log (first-N kept, the
// rest counted as drops) so a runaway instrumented loop cannot exhaust
// memory. Keeping the prefix rather than a suffix window makes the
// exported file independent of when the export happens.
const DefaultMaxSpans = 1 << 20

// Registry holds one platform's metrics and trace streams. The zero of
// *Registry (nil) is the disabled state: every method is a no-op and
// every handle it returns is nil.
type Registry struct {
	clock Clock
	label string

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sketches map[string]*Sketch
	slos     map[string]*SLO

	tracks     []*Track
	spans      []span
	maxSpans   int
	dropped    int64
	nextSpanID int64
	nextReqID  int64

	rings []*Ring
}

// NewRegistry creates a registry reading virtual time from clock.
func NewRegistry(label string, clock Clock) *Registry {
	if clock == nil {
		panic("telemetry: nil clock")
	}
	return &Registry{
		clock:    clock,
		label:    label,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		maxSpans: DefaultMaxSpans,
	}
}

// Label returns the registry's platform label ("" for nil).
func (r *Registry) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// SetLabel renames the registry (the experiment harness prefixes labels
// with the experiment id before export). No-op on nil.
func (r *Registry) SetLabel(label string) {
	if r != nil {
		r.label = label
	}
}

// SetMaxSpans adjusts the span-log bound (<= 0 restores the default).
func (r *Registry) SetMaxSpans(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	r.maxSpans = n
}

// Now returns the registry's current virtual time (0 for nil).
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Counter returns (creating if needed) the named counter. Nil registry
// returns a nil handle whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named fixed-bucket
// histogram. bounds are inclusive upper bounds in ascending order; an
// implicit overflow bucket catches everything above the last bound.
// Re-registering an existing histogram with different bounds panics —
// two call sites feeding one histogram through different geometries
// would corrupt every percentile silently, so it fails the same way an
// ascending-order violation does.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic("telemetry: histogram bounds not ascending: " + name)
			}
		}
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic("telemetry: histogram re-registered with different bounds: " + name)
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic("telemetry: histogram re-registered with different bounds: " + name)
		}
	}
	return h
}

// Sketch returns (creating if needed) the named quantile sketch. All
// sketches share one fixed geometry (see sketch.go), so there is no
// bounds argument and cross-registry merges are always exact. Nil
// registry returns a nil handle whose methods are no-ops.
func (r *Registry) Sketch(name string) *Sketch {
	if r == nil {
		return nil
	}
	if r.sketches == nil {
		r.sketches = make(map[string]*Sketch)
	}
	s := r.sketches[name]
	if s == nil {
		s = NewSketch()
		r.sketches[name] = s
	}
	return s
}

// Counter is a monotonically-increasing count. All methods are nil-safe.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that also remembers its high-water
// mark. All methods are nil-safe.
type Gauge struct{ v, max int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v += delta
	if g.v > g.max {
		g.max = g.v
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-bucket distribution (typically of virtual-time
// latencies in nanoseconds). All methods are nil-safe.
type Histogram struct {
	bounds     []int64 // inclusive upper bounds, ascending
	counts     []int64 // len(bounds)+1; last is overflow
	count, sum int64
	min, max   int64
}

// LatencyBuckets is the standard 1-2-5 series from 1 µs to 10 s, the
// range simulated operations span (resident touch to worst-case scan).
// Callers must not mutate it.
var LatencyBuckets = []int64{
	1e3, 2e3, 5e3, // 1, 2, 5 µs
	1e4, 2e4, 5e4, // 10 .. 50 µs
	1e5, 2e5, 5e5, // 100 .. 500 µs
	1e6, 2e6, 5e6, // 1 .. 5 ms
	1e7, 2e7, 5e7, // 10 .. 50 ms
	1e8, 2e8, 5e8, // 100 .. 500 ms
	1e9, 2e9, 5e9, // 1 .. 5 s
	1e10, // 10 s
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	// Binary search over the fixed bounds: counts[i] covers
	// (bounds[i-1], bounds[i]].
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observation (0 when empty or nil).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// sortedKeys returns m's keys in ascending order (export determinism).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
