package probe

import (
	"math"
	"testing"
)

func TestOnlineSplitLearnsBimodal(t *testing.T) {
	o := NewOnlineSplit(MinLogSeparation)
	// Cold start: disk-speed samples only, never confident.
	for i := 0; i < 5; i++ {
		fast, conf := o.Observe(4e6)
		if fast || conf {
			t.Fatalf("slow-only stream classified fast=%v conf=%v", fast, conf)
		}
	}
	// First memory-speed sample reveals the fast class immediately.
	fast, conf := o.Observe(12e3)
	if !fast || !conf {
		t.Fatalf("12us after 4ms stream: fast=%v conf=%v, want both true", fast, conf)
	}
	// Steady state: both classes keep classifying confidently.
	for i := 0; i < 20; i++ {
		if fast, conf := o.Observe(11e3); !fast || !conf {
			t.Fatalf("hit sample %d: fast=%v conf=%v", i, fast, conf)
		}
		if fast, conf := o.Observe(5e6); fast || !conf {
			t.Fatalf("miss sample %d: fast=%v conf=%v", i, fast, conf)
		}
	}
	if sep := o.Separation(); sep < MinLogSeparation {
		t.Errorf("separation %.2f below threshold %.2f", sep, MinLogSeparation)
	}
}

func TestOnlineSplitFastFirst(t *testing.T) {
	// The seed sample may itself be the fast class; a later slow sample
	// must demote it rather than stretch the EWMA.
	o := NewOnlineSplit(MinLogSeparation)
	o.Observe(12e3)
	fast, conf := o.Observe(4e6)
	if fast || !conf {
		t.Fatalf("4ms after 12us seed: fast=%v conf=%v, want slow+confident", fast, conf)
	}
	if fast, conf := o.Observe(12e3); !fast || !conf {
		t.Fatalf("12us re-probe: fast=%v conf=%v, want fast+confident", fast, conf)
	}
}

func TestOnlineSplitUnimodalStaysUnconfident(t *testing.T) {
	o := NewOnlineSplit(MinLogSeparation)
	// Samples within 2x of each other: no believable split exists.
	for i := 0; i < 50; i++ {
		v := 1e6 * (1 + 0.5*math.Sin(float64(i)))
		if _, conf := o.Observe(v); conf {
			t.Fatalf("unimodal stream became confident at sample %d (sep %.2f)", i, o.Separation())
		}
	}
}

func TestOnlineSplitReset(t *testing.T) {
	o := NewOnlineSplit(MinLogSeparation)
	o.Observe(12e3)
	o.Observe(4e6)
	o.Reset()
	if sep := o.Separation(); sep != 0 {
		t.Errorf("separation %.2f after Reset, want 0", sep)
	}
	if fast, conf := o.Observe(12e3); fast || conf {
		t.Errorf("post-Reset seed classified fast=%v conf=%v", fast, conf)
	}
}

func TestOnlineSplitZeroAlloc(t *testing.T) {
	o := NewOnlineSplit(MinLogSeparation)
	o.Observe(12e3)
	o.Observe(4e6)
	n := testing.AllocsPerRun(1000, func() {
		o.Observe(12e3)
		o.Observe(4e6)
	})
	if n != 0 {
		t.Errorf("Observe allocates %.1f per pair, want 0", n)
	}
}
