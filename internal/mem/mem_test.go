package mem

import (
	"testing"

	"graybox/internal/sim"
)

// fakeShrinker releases frames instantly (no I/O) for pool unit tests.
type fakeShrinker struct {
	name   string
	held   int
	floor  int
	pool   *Pool
	evicts int
}

func (f *fakeShrinker) Name() string { return f.name }
func (f *fakeShrinker) Held() int    { return f.held }
func (f *fakeShrinker) Floor() int   { return f.floor }
func (f *fakeShrinker) EvictOne(p *sim.Proc) bool {
	if f.held == 0 {
		return false
	}
	f.held--
	f.evicts++
	f.pool.ReturnFrames(1)
	return true
}

func (f *fakeShrinker) grab(p *sim.Proc, n int) {
	for i := 0; i < n; i++ {
		f.pool.GrabFrame(p)
		f.held++
	}
}

func TestPoolBasicAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	pl := NewPool(e, 10)
	if pl.Capacity() != 10 || pl.Free() != 10 || pl.Used() != 0 {
		t.Fatalf("fresh pool: cap=%d free=%d used=%d", pl.Capacity(), pl.Free(), pl.Used())
	}
	e.Go("p", func(p *sim.Proc) {
		pl.GrabFrame(p)
		pl.GrabFrame(p)
	})
	e.Run()
	if pl.Used() != 2 || pl.Free() != 8 {
		t.Errorf("after 2 grabs: used=%d free=%d", pl.Used(), pl.Free())
	}
	pl.ReturnFrames(2)
	if pl.Used() != 0 {
		t.Errorf("after return: used=%d", pl.Used())
	}
}

func TestTryGrabFrame(t *testing.T) {
	e := sim.NewEngine(1)
	pl := NewPool(e, 1)
	if !pl.TryGrabFrame() {
		t.Fatal("first TryGrabFrame should succeed")
	}
	if pl.TryGrabFrame() {
		t.Fatal("second TryGrabFrame should fail")
	}
}

func TestReclaimPreferenceOrder(t *testing.T) {
	e := sim.NewEngine(1)
	pl := NewPool(e, 10)
	cache := &fakeShrinker{name: "cache", pool: pl, floor: 2}
	anon := &fakeShrinker{name: "anon", pool: pl}
	pl.AddShrinker(cache)
	pl.AddShrinker(anon)
	e.Go("p", func(p *sim.Proc) {
		cache.grab(p, 6)
		anon.grab(p, 4)
		// Pool now full. Demand 5 more frames: cache should give up 4
		// (down to its floor of 2), then anon gives 1.
		for i := 0; i < 5; i++ {
			pl.GrabFrame(p)
		}
	})
	e.Run()
	if cache.evicts != 4 {
		t.Errorf("cache evictions = %d, want 4", cache.evicts)
	}
	if anon.evicts != 1 {
		t.Errorf("anon evictions = %d, want 1", anon.evicts)
	}
	if cache.held != 2 {
		t.Errorf("cache held = %d, want floor 2", cache.held)
	}
}

func TestLastDitchReclaimIgnoresFloor(t *testing.T) {
	e := sim.NewEngine(1)
	pl := NewPool(e, 4)
	cache := &fakeShrinker{name: "cache", pool: pl, floor: 4}
	pl.AddShrinker(cache)
	e.Go("p", func(p *sim.Proc) {
		cache.grab(p, 4)
		pl.GrabFrame(p) // must squeeze cache below its floor
	})
	e.Run()
	if cache.evicts != 1 {
		t.Errorf("evicts = %d, want 1 (floor overridden as last resort)", cache.evicts)
	}
}

func TestOutOfFramesPanics(t *testing.T) {
	e := sim.NewEngine(1)
	pl := NewPool(e, 2)
	p := e.Go("p", func(p *sim.Proc) {
		pl.GrabFrame(p)
		pl.GrabFrame(p)
		pl.GrabFrame(p) // no shrinkers: must panic
	})
	e.Run()
	if p.Err() == nil {
		t.Fatal("expected out-of-frames panic to be captured")
	}
}

func TestReturnTooManyPanics(t *testing.T) {
	e := sim.NewEngine(1)
	pl := NewPool(e, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.ReturnFrames(1)
}

func TestUsageSummary(t *testing.T) {
	e := sim.NewEngine(1)
	pl := NewPool(e, 10)
	cache := &fakeShrinker{name: "cache", pool: pl}
	pl.AddShrinker(cache)
	e.Go("p", func(p *sim.Proc) { cache.grab(p, 3) })
	e.Run()
	u := pl.Usage()
	if u["cache"] != 3 || u["free"] != 7 || u["other"] != 0 {
		t.Errorf("usage = %v", u)
	}
}
