package sim

import (
	"strings"
	"testing"
)

func TestTracerRecordsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(e, 0)
	e.Go("p", func(p *Proc) {
		tr.Eventf("io", "start")
		p.Sleep(10 * Millisecond)
		tr.Eventf("io", "done after %v", 10*Millisecond)
		tr.Eventf("mem", "alloc %d pages", 4)
	})
	e.Run()
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != 0 || evs[1].At != 10*Millisecond {
		t.Errorf("timestamps = %v, %v", evs[0].At, evs[1].At)
	}
	if got := len(tr.Filter("io")); got != 2 {
		t.Errorf("io events = %d", got)
	}
	out := tr.String()
	if !strings.Contains(out, "[mem] alloc 4 pages") {
		t.Errorf("render missing event:\n%s", out)
	}
}

func TestTracerBoundedDropsOldest(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(e, 3)
	for i := 0; i < 10; i++ {
		tr.Eventf("x", "event %d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("kept %d events, want 3", len(evs))
	}
	if evs[2].Message != "event 9" || evs[0].Message != "event 7" {
		t.Errorf("kept wrong window: %v", evs)
	}
	if tr.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", tr.Dropped())
	}
	if !strings.Contains(tr.String(), "7 earlier events dropped") {
		t.Error("drop note missing")
	}
}
