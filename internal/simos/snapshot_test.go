package simos

import (
	"fmt"
	"testing"

	"graybox/internal/sim"
)

// buildAged constructs a small machine and ages its file system the way
// experiment setups do: harness-time file creation (CreateSized) plus
// deletions that leave allocation holes.
func buildAged(p Personality, seed uint64) *System {
	s := New(Config{Personality: p, Seed: seed, MemoryMB: 64, KernelMB: 8})
	for i := 0; i < 12; i++ {
		if _, err := s.FS(0).CreateSized(fmt.Sprintf("aged.%d", i), 2*MB); err != nil {
			panic(err)
		}
	}
	for i := 1; i < 12; i += 3 {
		if err := s.FS(0).Unlink(nil, fmt.Sprintf("aged.%d", i)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := s.FS(0).CreateSized(fmt.Sprintf("refill.%d", i), 3*MB); err != nil {
			panic(err)
		}
	}
	return s
}

// exercise runs a deterministic read/stat workload and returns a
// timing-and-state transcript. Two machines in identical state must
// produce identical transcripts.
func exercise(s *System, seed uint64) string {
	out := ""
	err := s.Run("probe", func(o *OS) {
		rng := sim.NewRNG(seed)
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("aged.%d", []int{0, 2, 3, 5, 6, 8, 9, 11}[rng.Intn(8)])
			st, err := o.Stat(name)
			if err != nil {
				panic(err)
			}
			fd, err := o.Open(name)
			if err != nil {
				panic(err)
			}
			if err := fd.Read(int64(rng.Intn(4))*512*1024, 256*1024); err != nil {
				panic(err)
			}
			out += fmt.Sprintf("%d:%d:%d\n", st.Ino, o.Now(), s.Cache.Stats().Misses)
		}
	})
	if err != nil {
		panic(err)
	}
	cs := s.Cache.Stats()
	ds := s.DataDisk(0).Stats()
	out += fmt.Sprintf("end now=%d cache=%+v disk.reads=%d disk.seek=%d pool=%d free=%d\n",
		s.Engine.Now(), cs, ds.Reads, ds.SeekTime, s.Pool.Used(), s.FS(0).FreeSpace())
	return out
}

// TestForkMatchesColdBuild is the snapshot contract: a trial run on a
// Fork must be byte-identical to the same trial on a cold-built machine
// with the same seed, for every personality.
func TestForkMatchesColdBuild(t *testing.T) {
	for _, p := range []Personality{Linux22, NetBSD15, Solaris7} {
		t.Run(string(p), func(t *testing.T) {
			snap := buildAged(p, 0).Snapshot()
			for _, seed := range []uint64{7, 91} {
				cold := exercise(buildAged(p, seed), seed)
				forked := exercise(snap.Fork(seed), seed)
				if cold != forked {
					t.Fatalf("seed %d: forked transcript diverges from cold build\ncold:\n%s\nforked:\n%s", seed, cold, forked)
				}
			}
		})
	}
}

// TestForkIndependence checks forks do not share mutable state: running
// one fork leaves a sibling fork (and the snapshot) untouched.
func TestForkIndependence(t *testing.T) {
	snap := buildAged(Linux22, 0).Snapshot()
	a := snap.Fork(1)
	before := exercise(snap.Fork(2), 2)
	_ = exercise(a, 1) // mutate sibling a
	after := exercise(snap.Fork(2), 2)
	if before != after {
		t.Fatal("running one fork perturbed a sibling fork")
	}
}

// TestSnapshotRejectsDirtyState pins the quiescence preconditions.
func TestSnapshotRejectsDirtyState(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Snapshot did not panic", name)
			}
		}()
		f()
	}
	mustPanic("consumed RNG", func() {
		s := New(Config{MemoryMB: 64, KernelMB: 8})
		s.Engine.RNG().Uint64()
		s.Snapshot()
	})
	mustPanic("instrumented", func() {
		s := New(Config{MemoryMB: 64, KernelMB: 8})
		s.EnableTelemetry()
		s.Snapshot()
	})
	mustPanic("live anon memory", func() {
		s := New(Config{MemoryMB: 64, KernelMB: 8})
		if err := s.Run("touch", func(o *OS) {
			m := o.Malloc(int64(o.PageSize()))
			o.Touch(m, 0, true)
		}); err != nil {
			t.Fatal(err)
		}
		s.Snapshot()
	})
}
