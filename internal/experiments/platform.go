package experiments

import (
	"fmt"

	"graybox/internal/simos"
)

// newSystem builds a machine of the given personality at the given
// scale, keeping the paper's kernel-reserve and cache-floor proportions.
func newSystem(p simos.Personality, sc Scale, seed uint64) *simos.System {
	return trackSystem(buildSystem(p, sc, seed))
}

// buildSystem is newSystem without harness tracking. Snapshot bases use
// it directly: the base machine never runs a trial, so it must not be
// registered with telemetry, audit, or virtual-time accounting.
func buildSystem(p simos.Personality, sc Scale, seed uint64) *simos.System {
	return buildSystemCPUs(p, sc, seed, 0)
}

// newMultiDiskSystem is newSystem with extra data disks (Figure 7).
func newMultiDiskSystem(p simos.Personality, sc Scale, seed uint64, disks int) *simos.System {
	kernel := sc.MemoryMB * 66 / 896
	if kernel < 4 {
		kernel = 4
	}
	floor := sc.MemoryMB * 4 / 896
	if floor < 1 {
		floor = 1
	}
	return trackSystem(simos.New(simos.Config{
		Personality:  p,
		Seed:         seed,
		MemoryMB:     sc.MemoryMB,
		KernelMB:     kernel,
		CacheFloorMB: floor,
		NumDisks:     disks,
		ShardWorkers: shardWorkers,
	}))
}

// usableMB returns the frame-pool capacity in MB (the upper bound on a
// unified file cache).
func usableMB(s *simos.System) int64 {
	return int64(s.Pool.Capacity()) * int64(s.PageSize()) / simos.MB
}

// netbsdCacheMB returns the fixed cache size newSystem configures for a
// NetBSD machine at this scale.
func (sc Scale) netbsdCacheMB() int64 {
	v := int64(sc.MemoryMB * 64 / 896)
	if v < 2 {
		v = 2
	}
	return v
}

// mustRun runs body as a process and panics on failure (harness code).
func mustRun(s *simos.System, name string, body func(os *simos.OS)) {
	if err := s.Run(name, body); err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", name, err))
	}
}

// mustNoErr panics on harness errors.
func mustNoErr(err error) {
	if err != nil {
		panic(err)
	}
}
