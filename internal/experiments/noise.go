package experiments

import (
	"fmt"
	"sort"

	"graybox/internal/core/fccd"
	"graybox/internal/core/fldc"
	"graybox/internal/core/mac"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/workload"
)

// NoiseConfig parameterizes the contention sweep: every ICL is scored
// against the simulator oracle while a background workload mix runs at
// increasing intensity.
type NoiseConfig struct {
	Scale Scale
	// Intensities sweeps the workload duty cycle; 0 is the quiescent
	// baseline every earlier experiment measured.
	Intensities []float64
	// Workloads names the generators to mix (subset of
	// NoiseWorkloadNames; empty selects the -workload flag value, or
	// all of them).
	Workloads []string
	// CPUList sweeps simulated-processor counts (empty selects the
	// -cpus flag value, defaulting to the uncontended model only). For
	// entries >= 1 the scan and web generators charge per-KB CPU, so the
	// mix contends for processors as well as memory and disks.
	CPUList []int
}

func (c NoiseConfig) withDefaults() NoiseConfig {
	if c.Scale.MemoryMB == 0 {
		c.Scale = FullScale()
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	if len(c.Workloads) == 0 {
		c.Workloads = NoiseWorkloads()
	}
	if len(c.CPUList) == 0 {
		c.CPUList = CPUList()
	}
	return c
}

// NoiseWorkloadNames returns the generator names the noise sweep knows,
// in canonical order.
func NoiseWorkloadNames() []string { return []string{"scan", "zipf", "hog", "web"} }

// noiseWorkloads is the process-wide -workload selection; empty means
// all generators. Set before experiments run (the CLI does it once at
// startup), read by every trial.
var noiseWorkloads []string

// SetNoiseWorkloads selects which generators the noise sweep runs (the
// CLI's -workload flag). Unknown names are rejected; nil restores the
// full mix.
func SetNoiseWorkloads(names []string) error {
	known := map[string]bool{}
	for _, n := range NoiseWorkloadNames() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			return fmt.Errorf("unknown workload %q (want one of %v)", n, NoiseWorkloadNames())
		}
	}
	noiseWorkloads = append([]string(nil), names...)
	return nil
}

// NoiseWorkloads returns the current -workload selection, defaulting to
// every generator.
func NoiseWorkloads() []string {
	if len(noiseWorkloads) > 0 {
		return append([]string(nil), noiseWorkloads...)
	}
	return NoiseWorkloadNames()
}

// noiseMix builds the background mix for one trial, sized against the
// trial platform's usable memory so the quick and full scales see the
// same relative pressure. On a contended machine (cpus >= 1) the scan
// and web generators also charge per-KB CPU — grep-style matching and
// request rendering — so the mix competes for processors, not just
// frames and disk arms.
func noiseMix(seed uint64, intensity float64, names []string, usable int64, cpus int) *workload.Mix {
	var scanCPU, webCPU sim.Time
	if cpus > 0 {
		scanCPU = 2 * sim.Microsecond // ~500 MB/s matching
		webCPU = 20 * sim.Microsecond // ~1.3ms render per 64KB file
	}
	m := workload.NewMix(seed, intensity)
	for _, n := range names {
		switch n {
		case "scan":
			// A file half the cache size churns the LRU bottom without
			// instantly flushing the ICL's working set.
			m.Add(&workload.Scanner{FileMB: maxI64(usable/2, 4), CPUPerKB: scanCPU})
		case "zipf":
			// 64-file corpus totalling half the cache: hot head stays
			// resident, cold tail forces evictions.
			m.Add(&workload.ZipfReader{Files: 64, FileKB: maxI64(usable*1024/128, 64)})
		case "hog":
			m.Add(&workload.MemHog{}) // 40% of the pool at intensity 1
		case "web":
			m.Add(&workload.WebServer{Files: 32, FileKB: 64, RatePerSec: 400, CPUPerKB: webCPU})
		}
	}
	return m
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// swarmWave bounds the live swarm population so goroutine stacks stay
// bounded even at 10⁵–10⁶ total processes per trial.
const swarmWave = 4096

// startSwarm launches total short-lived computing processes in bounded
// waves and returns the driver process, which exits once the last wave
// completes. Each process is pure scheduler load — a staggered start and
// a small CPU burst — sized so a mega trial stresses the engine's event
// population (and, when sharded, its lane harvests) without touching the
// caches the ICL is probing. The driver polls for wave completion with
// sleeps; everything is scheduled through the engine, so the swarm is as
// deterministic as any other trial workload.
func startSwarm(s *simos.System, total int) *sim.Proc {
	e := s.Engine
	return e.Go("swarm", func(p *sim.Proc) {
		done := 0
		for launched := 0; launched < total; {
			n := swarmWave
			if total-launched < n {
				n = total - launched
			}
			for j := launched; j < launched+n; j++ {
				j := j
				e.Spawn(fmt.Sprintf("swarm.%d", j), sim.Time(j%977)*sim.Microsecond, func(q *sim.Proc) {
					q.Compute(sim.Time(20+j%180) * sim.Microsecond)
					done++
				})
			}
			launched += n
			for done < launched {
				p.Sleep(500 * sim.Microsecond)
			}
		}
	})
}

// Noise measures how each ICL's oracle-scored quality decays as
// competing traffic ramps up. Per intensity, one platform runs the mix
// while an ICL process repeatedly drives FCCD cache-content probing,
// the FLDC+FCCD composed ordering, and MAC admissions; the platform's
// auditor scores every prediction against ground truth. Timing-based
// inferences (FCCD splits, MAC thresholds) degrade with contention;
// FLDC's stat-based ordering does not — exactly the robustness contrast
// the paper's Section 5 caveats predict.
func Noise(cfg NoiseConfig) *Table {
	cfg = cfg.withDefaults()
	sc := cfg.Scale
	names := append([]string(nil), cfg.Workloads...)
	sort.Strings(names)
	sweep := cpuSweepActive(cfg.CPUList)
	cols := []string{"intensity", "fccd-acc", "fccd-conf", "fldc-tau",
		"mac-err", "mac-admit", "probes", "probe-ms"}
	if sweep {
		// The cpus column appears only when a non-default list is set,
		// so default sweep output stays byte-identical.
		cols = append([]string{"cpus"}, cols...)
	}
	t := &Table{
		ID:      "noise",
		Title:   "ICL accuracy under competing workload traffic",
		Columns: cols,
	}

	// Every intensity runs on the same aged platform — Linux at this
	// scale plus the ICL's target files — so the sweep builds it once
	// per cpus value (CPUs is machine configuration, part of the
	// snapshot) and forks a copy per trial.
	const nTargets = 8
	for ci, cpus := range cfg.CPUList {
		cpus := cpus
		base := ci * len(cfg.Intensities)
		rows := RunTrialsWithSnapshot(len(cfg.Intensities), func(seed uint64) *simos.System {
			s := buildSystemCPUs(simos.Linux22, sc, seed, cpus)
			// The ICL's own working set: 8 files totalling half the cache,
			// half of them warmed (by the trial) so the FCCD confusion
			// matrix sees both cached and uncached truth.
			targetBytes := maxI64(usableMB(s)/(2*nTargets), 1) * simos.MB
			for i := 0; i < nTargets; i++ {
				_, err := s.FS(0).CreateSized(fmt.Sprintf("icl.target.%d", i), targetBytes)
				mustNoErr(err)
			}
			return s
		}, func(ii int) uint64 {
			return 9000 + 97*uint64(base+ii)
		}, func(ii int, s *simos.System) []string {
			intensity := cfg.Intensities[ii]
			seed := 9000 + 97*uint64(base+ii)
			aud := s.EnableAudit()
			usable := usableMB(s)
			paths := make([]string, nTargets)
			for i := range paths {
				paths[i] = fmt.Sprintf("icl.target.%d", i)
			}

			mix := noiseMix(seed, intensity, names, usable, cpus)
			_, err := mix.Start(s)
			mustNoErr(err)

			// Mega-scale process load: a swarm of short-lived computing
			// processes runs alongside the mix for the whole trial.
			var swarm *sim.Proc
			if sc.SwarmProcs > 0 {
				swarm = startSwarm(s, sc.SwarmProcs)
			}

			// The ICL starts after the mix has had 50ms to establish cache
			// and memory pressure (a no-op at intensity 0).
			p := s.Spawn("icl", 50*sim.Millisecond, func(os *simos.OS) {
				for i := 0; i < len(paths); i += 2 {
					fd, err := os.Open(paths[i])
					mustNoErr(err)
					mustNoErr(fd.Read(0, fd.Size()))
				}
				det := fccd.New(os, fccd.Config{
					AccessUnit:     scaledAccessUnit(sc),
					PredictionUnit: scaledPredictionUnit(sc),
					Seed:           seed + 1,
				})
				lay := fldc.New(os)
				ctl := mac.New(os, mac.Config{
					InitialIncrement: sc.mb(4) * simos.MB,
					MaxIncrement:     sc.mb(64) * simos.MB,
				})
				for pass := 0; pass < sc.Trials; pass++ {
					for _, path := range paths {
						_, err := det.ProbeFile(path)
						mustNoErr(err)
					}
					_, err := lay.ComposeWithFCCD(det, paths)
					mustNoErr(err)
					if a, ok := ctl.GBAlloc(simos.MB, usable*simos.MB, simos.MB); ok {
						ctl.GBFree(a)
					}
					// Let the mix churn the caches between passes so each
					// pass faces fresh contention, not its own footprint.
					os.Sleep(20 * sim.Millisecond)
				}
			})
			s.Engine.WaitAll(p)
			mustNoErr(p.Err())
			if swarm != nil {
				s.Engine.WaitAll(swarm)
				mustNoErr(swarm.Err())
			}
			mix.Stop()
			mix.Drain(s)

			rep := aud.Report()
			fccdAcc, fccdConf, fldcTau, macErr, macAdmit := "-", "-", "-", "-", "-"
			var probes, probeNS int64
			if r := rep.FCCD; r != nil {
				fccdAcc = fmt.Sprintf("%.3f", r.Accuracy)
				fccdConf = fmt.Sprintf("%d/%d/%d/%d", r.Confusion.TP, r.Confusion.FP, r.Confusion.TN, r.Confusion.FN)
				probes += r.Probes
				probeNS += r.ProbeNS
			}
			if r := rep.FLDC; r != nil {
				fldcTau = fmt.Sprintf("%.3f", r.Tau)
				probes += r.Probes
				probeNS += r.ProbeNS
			}
			if r := rep.MAC; r != nil {
				macErr = fmt.Sprintf("%.3f", r.MeanRelErr)
				macAdmit = fmt.Sprintf("%d/%d", r.Admits, r.Calls)
				probes += r.PagesProbed
				probeNS += r.ProbeNS
			}
			row := []string{fmt.Sprintf("%.2f", intensity), fccdAcc, fccdConf, fldcTau,
				macErr, macAdmit, fmt.Sprintf("%d", probes),
				fmt.Sprintf("%.2f", float64(probeNS)/1e6)}
			if sweep {
				row = append([]string{fmt.Sprintf("%d", cpus)}, row...)
			}
			return row
		})
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("workloads: %v at each intensity (0 = quiescent baseline); confusion is TP/FP/TN/FN over oracle-checked FCCD predictions", names)
	t.AddNote("timing-based inferences (fccd-acc, mac-err) degrade with contention; FLDC's stat-based tau does not — probes are exact, not timed")
	if sweep {
		t.AddNote("cpus = simulated processors (0 = uncontended infinite-core model); on contended machines "+
			"scan charges %v/KB matching CPU and web %v/KB render CPU, so the mix queues for processors too",
			2*sim.Microsecond, 20*sim.Microsecond)
	}
	return t
}
