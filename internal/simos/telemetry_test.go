package simos

import (
	"bytes"
	"strings"
	"testing"

	"graybox/internal/telemetry"
)

// runWorkload creates a file, writes it, reads it back twice (second
// pass hits the cache), stats it, and touches some anonymous memory —
// enough to exercise every instrumented layer.
func runWorkload(t testing.TB, s *System) {
	t.Helper()
	err := s.Run("app", func(os *OS) {
		fd, err := os.Create("data")
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(0, 64*1024); err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			if err := fd.Read(0, 64*1024); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := os.Stat("data"); err != nil {
			t.Fatal(err)
		}
		m := os.MallocPages(8)
		os.TouchRange(m, 0, 8, true)
		os.Free(m)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnableTelemetryInstrumentsAllLayers(t *testing.T) {
	s := New(small(Linux22))
	r := s.EnableTelemetry()
	if r == nil || s.Telemetry() != r {
		t.Fatal("EnableTelemetry did not install a registry")
	}
	if again := s.EnableTelemetry(); again != r {
		t.Error("EnableTelemetry is not idempotent")
	}
	if !strings.Contains(r.Label(), "linux22") {
		t.Errorf("label %q does not name the personality", r.Label())
	}

	runWorkload(t, s)

	var text bytes.Buffer
	if err := telemetry.WriteMetricsText(&text, []*telemetry.Registry{r}); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	// One representative metric per instrumented layer.
	for _, want := range []string{
		"syscall.read_ns", // OS facade
		"cache.",          // file cache (policy-prefixed)
		"disk0.reads",     // data disk
		"mem.frames_used", // frame pool
		"vm.zero_fills",   // VM
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if r.SpanCount() == 0 {
		t.Error("no spans recorded")
	}
}

func TestSyscallHistogramCounts(t *testing.T) {
	s := New(small(Linux22))
	s.EnableTelemetry()
	runWorkload(t, s)

	h := s.sysTel.hist[sysRead]
	if got := h.Count(); got != 2 {
		t.Errorf("read count = %d, want 2", got)
	}
	if s.sysTel.hist[sysWrite].Count() != 1 {
		t.Errorf("write count = %d, want 1", s.sysTel.hist[sysWrite].Count())
	}
	if s.sysTel.hist[sysTouch].Count() != 8 {
		t.Errorf("touch count = %d, want 8", s.sysTel.hist[sysTouch].Count())
	}
	if h.Sum() <= 0 {
		t.Error("read latency sum is zero — virtual time not charged")
	}
}

// TestDisabledTelemetryAddsNoAllocs is the 0-alloc guard of the ISSUE:
// with telemetry never enabled, a cached simos read must not allocate.
// We run one warm-up read (populating the cache and any lazy engine
// state), then measure allocations across many more reads inside the
// same process body.
func TestDisabledTelemetryAddsNoAllocs(t *testing.T) {
	const reads = 200
	s := New(small(Linux22))
	var allocs float64
	err := s.Run("app", func(os *OS) {
		fd, err := os.Create("data")
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(0, 4096); err != nil {
			t.Fatal(err)
		}
		if err := fd.Read(0, 4096); err != nil { // warm up
			t.Fatal(err)
		}
		allocs = testing.AllocsPerRun(1, func() {
			for i := 0; i < reads; i++ {
				if err := fd.Read(0, 4096); err != nil {
					t.Fatal(err)
				}
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if perRead := allocs / reads; perRead > 0 {
		t.Errorf("disabled-telemetry read allocates %.3f allocs/op, want 0", perRead)
	}
}

// TestRequestTracingThroughSyscalls drives one request through the real
// instrumented stack — cold Open/Read (disk), warm re-read (cache), app
// buffer touches — and checks the critical-path breakdown against what
// the machine actually did: the stages sum exactly to the total, the
// cold read puts time in Disk, and the buffer work lands in App.
func TestRequestTracingThroughSyscalls(t *testing.T) {
	s := New(small(Linux22))
	s.EnableTelemetry()
	// The corpus file exists on disk with nothing cached, so the first
	// request's read is genuinely cold.
	if _, err := s.FS(0).CreateSized("page", 64*1024); err != nil {
		t.Fatal(err)
	}
	err := s.Run("web", func(os *OS) {
		fd, err := os.Open("page")
		if err != nil {
			t.Fatal(err)
		}

		req := os.BeginRequest("req", os.Now())
		if req == nil {
			t.Fatal("BeginRequest returned nil with telemetry enabled")
		}
		if err := fd.Read(0, 64*1024); err != nil {
			t.Fatal(err)
		}
		m := os.MallocPages(4)
		tr := os.Proc().Track()
		tr.Begin("app", "process")
		os.TouchRange(m, 0, 4, true)
		tr.End()
		os.Free(m)
		bd := req.Finish()

		if bd.Total <= 0 {
			t.Fatalf("breakdown total %d, want > 0", bd.Total)
		}
		if got := bd.Queue + bd.Cache + bd.Disk + bd.App; got != bd.Total {
			t.Fatalf("stages sum to %d, total %d — decomposition must be exact", got, bd.Total)
		}
		if bd.App <= 0 {
			t.Error("app span time not attributed to the App stage")
		}
		if bd.Disk <= 0 {
			t.Error("cold read attributed no disk service time")
		}
		if bd.Queue < 0 || bd.Cache < 0 {
			t.Errorf("negative stage: %+v", bd)
		}

		// A second request re-reading the cached file must be cache-heavy:
		// no disk time at all.
		req2 := os.BeginRequest("req", os.Now())
		if err := fd.Read(0, 64*1024); err != nil {
			t.Fatal(err)
		}
		bd2 := req2.Finish()
		if bd2.Disk != 0 {
			t.Errorf("warm re-read charged %dns of disk time, want 0", bd2.Disk)
		}
		if bd2.Cache <= 0 {
			t.Error("warm re-read attributed no cache service time")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRequestTracingDisabledIsInert: without telemetry, BeginRequest
// returns a nil span whose whole lifecycle is free and allocation-less.
func TestRequestTracingDisabledIsInert(t *testing.T) {
	s := New(small(Linux22))
	err := s.Run("web", func(os *OS) {
		allocs := testing.AllocsPerRun(100, func() {
			req := os.BeginRequest("req", os.Now())
			if bd := req.Finish(); bd.Total != 0 {
				t.Fatal("nil request span produced a breakdown")
			}
		})
		if allocs != 0 {
			t.Errorf("disabled BeginRequest/Finish allocates %v per request, want 0", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTelemetryOverhead measures the cost a cached Proc.Read pays
// with telemetry disabled vs enabled. The disabled variant must report
// 0 allocs/op (the ISSUE's acceptance criterion).
func BenchmarkTelemetryOverhead(b *testing.B) {
	bench := func(b *testing.B, enable bool) {
		s := New(small(Linux22))
		if enable {
			r := s.EnableTelemetry()
			// Spans would exhaust the default cap over a long benchmark;
			// metrics are what we are measuring.
			r.SetMaxSpans(1)
		}
		err := s.Run("app", func(os *OS) {
			fd, err := os.Create("data")
			if err != nil {
				b.Fatal(err)
			}
			if err := fd.Write(0, 4096); err != nil {
				b.Fatal(err)
			}
			if err := fd.Read(0, 4096); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fd.Read(0, 4096); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("disabled", func(b *testing.B) { bench(b, false) })
	b.Run("enabled", func(b *testing.B) { bench(b, true) })
}
