package sim

import (
	"fmt"

	"graybox/internal/ring"
	"graybox/internal/telemetry"
)

// ProcState is a process's lifecycle state. Transitions:
//
//	New ──spawn event──▶ Runnable ──dispatch──▶ Running
//	Running ──Sleep/Block──▶ Blocked ──wake/Unblock──▶ Runnable ─▶ Running
//	Running ──Compute (CPUs busy)──▶ Runnable ──dispatch──▶ Running
//	Running ──body returns──▶ Done
//
// A process is Runnable between becoming eligible to run and actually
// running: freshly spawned (start event fired, first dispatch pending),
// unblocked (wake event queued), or waiting in a scheduler run queue.
type ProcState int

const (
	StateNew      ProcState = ProcState(procNew)
	StateRunnable ProcState = ProcState(procRunnable)
	StateRunning  ProcState = ProcState(procRunning)
	StateBlocked  ProcState = ProcState(procBlocked)
	StateDone     ProcState = ProcState(procDone)
)

func (s ProcState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

type procState int

const (
	procNew procState = iota
	procRunnable
	procRunning
	procBlocked // parked, waiting for an explicit Unblock or a timer wake
	procDone
)

// Proc is a cooperative simulated process. Its body runs on a dedicated
// goroutine, but the engine guarantees that at most one process goroutine
// executes at a time: a process runs until it calls Sleep, Block, or
// returns, at which point control hands back to the engine loop.
type Proc struct {
	e     *Engine
	name  string
	state procState
	slot  int32 // index in the engine's proc arena; -1 after exit

	// Scheduler state (sched.go); idle/unused under the default
	// infinite-core model.
	left Time        // remaining CPU burst of the active Compute
	cpu  int32       // owning CPU while on-CPU, -1 otherwise
	rqh  ring.Handle // run-queue position while queued, ring.None otherwise
	enq  Time        // when the process joined the run queue

	// resume wakes this process's goroutine. Buffered size 0: the engine
	// blocks on the send until the goroutine is at its receive, which is
	// exactly the handoff we want.
	resume chan struct{}

	// track is this process's span timeline (nil when telemetry is off;
	// the nil track's methods are no-ops).
	track *telemetry.Track

	// Exit status.
	err error
}

// setState moves the process to s, maintaining the engine's O(1) count
// of blocked processes.
func (p *Proc) setState(s procState) {
	if p.state == procBlocked {
		p.e.nBlocked--
	}
	if s == procBlocked {
		p.e.nBlocked++
	}
	p.state = s
}

// Spawn creates a process named name whose body is fn and schedules it to
// start at delay from now. The body runs entirely on virtual time.
//
// The process occupies an arena slot for its lifetime; the slot (not the
// Proc, which callers may still hold) is recycled when the body returns,
// so arena growth tracks peak live processes, not total ever spawned.
func (e *Engine) Spawn(name string, delay Time, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, state: procNew, cpu: -1, resume: make(chan struct{})}
	p.track = e.tel.NewTrack(name) // nil track when telemetry is off
	if n := len(e.freeSlot); n > 0 {
		p.slot = e.freeSlot[n-1]
		e.freeSlot = e.freeSlot[:n-1]
		e.procs[p.slot] = p
	} else {
		p.slot = int32(len(e.procs))
		e.procs = append(e.procs, p)
	}
	e.spawned++
	e.After(delay, func() {
		p.setState(procRunnable)
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					p.err = fmt.Errorf("proc %s panicked: %v", p.name, r)
				}
				p.exit()
			}()
			fn(p)
		}()
		p.wake()
	})
	return p
}

// exit finishes the process: the arena slot is released for reuse and
// control returns to the engine loop. Runs on the process goroutine,
// which at this point is the only one executing.
func (p *Proc) exit() {
	p.setState(procDone)
	p.e.procs[p.slot] = nil
	p.e.freeSlot = append(p.e.freeSlot, p.slot)
	p.slot = -1
	p.e.yield <- struct{}{}
}

// Go spawns a process starting immediately.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.Spawn(name, 0, fn)
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// State returns the process's lifecycle state.
func (p *Proc) State() ProcState { return ProcState(p.state) }

// Track returns the process's telemetry span track. It is nil when
// telemetry is disabled, and the nil track's methods are no-ops, so
// instrumentation sites call p.Track().Begin(...) unconditionally.
func (p *Proc) Track() *telemetry.Track { return p.track }

// Err returns the process's exit error (non-nil if the body panicked).
func (p *Proc) Err() error { return p.err }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == procDone }

// park suspends the calling process goroutine and returns control to the
// engine loop. The process must have arranged to be resumed (a scheduled
// wake event, a run-queue entry, or a future Unblock); wake sets the
// state back to running.
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// wake transfers control from the engine loop into the process goroutine
// and waits for it to park again (or exit). Must only be called from event
// context.
func (p *Proc) wake() {
	if p.state == procDone {
		return
	}
	p.setState(procRunning)
	p.resume <- struct{}{}
	<-p.e.yield
}

// Sleep advances this process's virtual time by d, letting other events
// run in between. d must be >= 0; Sleep(0) yields to same-time events.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.setState(procBlocked)
	p.e.scheduleWake(p.e.now+d, p)
	p.park()
}

// Block parks the process until another party calls Unblock on it.
func (p *Proc) Block() {
	p.setState(procBlocked)
	p.park()
}

// Unblock schedules p to resume at the current time (after already-queued
// same-time events). It is a no-op for finished processes and panics if p
// is not blocked, which would indicate a lost-wakeup bug in the caller.
func (e *Engine) Unblock(p *Proc) {
	if p.state == procDone {
		return
	}
	if p.state != procBlocked {
		panic(fmt.Sprintf("sim: Unblock(%s) but process is not blocked", p.name))
	}
	p.setState(procRunnable)
	e.scheduleWake(e.now, p)
}

// WaitAll runs the engine until every listed process has finished. It
// panics on simulation deadlock.
func (e *Engine) WaitAll(ps ...*Proc) {
	for {
		done := true
		for _, p := range ps {
			if p.state != procDone {
				done = false
				break
			}
		}
		if done {
			return
		}
		if !e.step() {
			panic(fmt.Sprintf("sim: WaitAll deadlock at %v", e.now))
		}
	}
}
