// Command gb-microbench runs the gray toolbox's configuration
// microbenchmarks (Section 5) on a simulated platform and writes the
// shared parameter repository as JSON. ICLs (and gb-experiments) can
// then load the file instead of re-measuring.
//
// Usage:
//
//	gb-microbench [-platform linux22|netbsd15|solaris7] [-o repo.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"graybox"
	"graybox/internal/simos"
)

func main() {
	platform := flag.String("platform", "linux22", "platform personality")
	outPath := flag.String("o", "", "write the repository JSON to this file (default stdout)")
	flag.Parse()

	p := graybox.NewPlatform(graybox.PlatformConfig{
		Personality: simos.Personality(*platform),
	})
	repo := graybox.NewRepository(*platform)
	err := p.Run("microbench", func(osh *graybox.Proc) {
		sw := graybox.NewStopwatch(osh)
		if err := graybox.RunMicrobenchmarks(osh, repo); err != nil {
			fmt.Fprintln(os.Stderr, "gb-microbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "microbenchmarks took %v of virtual time (dedicated system)\n", sw.Elapsed())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gb-microbench:", err)
		os.Exit(1)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gb-microbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := repo.Save(out); err != nil {
		fmt.Fprintln(os.Stderr, "gb-microbench:", err)
		os.Exit(1)
	}
}
