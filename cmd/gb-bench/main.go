// Command gb-bench diffs two BENCH_*.json reports produced by
// gb-experiments -bench-out and prints a pass/fail regression report.
//
// Usage:
//
//	gb-bench [-max-ratio R] [-min-delta-ms D] [-alpha A]
//	         [-threshold id=R ...] old.json new.json
//
// Per-experiment wall times are compared against a ratio threshold
// (growth below -min-delta-ms is ignored as noise), and the whole suite
// is tested for significant drift with a paired sign test. Exit status:
// 0 when the new report passes, 1 on a regression, 2 on usage or I/O
// errors — including a stale baseline: when the fresh report contains
// an experiment the old report never measured, gb-bench names the
// missing ids and exits 2 so CI demands a regenerated baseline instead
// of silently skipping the new experiment.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graybox/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams, so tests can assert exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	th := bench.DefaultThresholds()
	fs := flag.NewFlagSet("gb-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Float64Var(&th.MaxRatio, "max-ratio", th.MaxRatio,
		"fail an experiment whose wall time grew beyond new/old > ratio")
	fs.Float64Var(&th.MinDeltaMS, "min-delta-ms", th.MinDeltaMS,
		"ignore wall-time growth below this many milliseconds")
	fs.Float64Var(&th.Alpha, "alpha", th.Alpha,
		"significance level of the suite-level sign test")
	fs.Func("threshold", "per-experiment ratio override, id=ratio (repeatable)",
		func(v string) error {
			id, val, ok := strings.Cut(v, "=")
			if !ok || id == "" {
				return fmt.Errorf("want id=ratio, got %q", v)
			}
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("bad ratio in %q", v)
			}
			if th.PerID == nil {
				th.PerID = map[string]float64{}
			}
			th.PerID[id] = r
			return nil
		})
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gb-bench [flags] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldR, err := bench.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	newR, err := bench.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if oldR.Scale != newR.Scale {
		fmt.Fprintf(stderr, "warning: comparing different scales (%q vs %q)\n",
			oldR.Scale, newR.Scale)
	}
	res := bench.Compare(oldR, newR, th)
	if err := res.Write(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(res.MissingInOld) > 0 {
		// A fresh run carries experiments the committed baseline has
		// never measured — comparing the rest would silently pass a
		// suite the baseline no longer describes.
		fmt.Fprintf(stderr, "baseline %s is missing %s (present in %s): regenerate the committed baseline with gb-experiments -bench-out\n",
			fs.Arg(0), strings.Join(res.MissingInOld, ", "), fs.Arg(1))
		return 2
	}
	if res.Regressed {
		return 1
	}
	return 0
}
