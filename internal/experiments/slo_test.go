package experiments

import (
	"strconv"
	"strings"
	"testing"

	"graybox/internal/sim"
)

// TestSloShape checks the experiment's headline claim at quick scale:
// under an offered load that thrashes the naive arm, gray-box MAC
// admission serves with a lower tail and a far lower violation rate,
// and the critical-path column shows where the naive arm's time went
// (queueing — admission plus page-daemon-induced disk queues).
func TestSloShape(t *testing.T) {
	tab := Slo(SloConfig{
		Scale:    QuickScale(),
		Loads:    []float64{300},
		Duration: 500 * sim.Millisecond,
	})
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (1 load x 2 policies)", len(tab.Rows))
	}
	const (
		colLoad   = 0
		colPol    = 1
		colServed = 2
		colP50    = 5
		colP99    = 6
		colP999   = 7
		colViol   = 8
		colPath   = 10
	)
	naive, gray := tab.Rows[0], tab.Rows[1]
	if naive[colPol] != "naive" || gray[colPol] != "graybox" {
		t.Fatalf("row order: got policies %q,%q", naive[colPol], gray[colPol])
	}
	for _, row := range tab.Rows {
		if cellFloat(t, row[colServed]) <= 0 {
			t.Fatalf("%s arm served nothing", row[colPol])
		}
		p50, p99, p999 := cellFloat(t, row[colP50]), cellFloat(t, row[colP99]), cellFloat(t, row[colP999])
		if !(p50 <= p99 && p99 <= p999) {
			t.Errorf("%s quantiles not monotone: %v/%v/%v", row[colPol], p50, p99, p999)
		}
		// path-q/c/d/a% is a rounded percentage split of served time.
		parts := strings.Split(row[colPath], "/")
		if len(parts) != 4 {
			t.Fatalf("%s path cell %q, want q/c/d/a", row[colPol], row[colPath])
		}
		sum := 0
		for _, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil || v < 0 {
				t.Fatalf("%s path cell %q not a percentage split", row[colPol], row[colPath])
			}
			sum += v
		}
		if sum < 98 || sum > 102 {
			t.Errorf("%s path split sums to %d%%, want ~100", row[colPol], sum)
		}
	}
	// The headline separation: admission control must cut both the tail
	// and the violation rate under memory pressure.
	if np99, gp99 := cellFloat(t, naive[colP99]), cellFloat(t, gray[colP99]); gp99 >= np99 {
		t.Errorf("gray-box p99 %vms not below naive %vms", gp99, np99)
	}
	if nv, gv := cellFloat(t, naive[colViol]), cellFloat(t, gray[colViol]); gv >= nv {
		t.Errorf("gray-box violation rate %v not below naive %v", gv, nv)
	}
	// The naive arm's latency must be dominated by queueing — that is
	// the thrash signature the tracing subsystem exists to expose.
	q, err := strconv.Atoi(strings.Split(naive[colPath], "/")[0])
	if err != nil || q < 50 {
		t.Errorf("naive queue share %v%%, want thrash-dominated (>= 50%%)", q)
	}
}
