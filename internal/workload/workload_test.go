package workload

import (
	"testing"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

func newSys(seed uint64) *simos.System {
	return simos.New(simos.Config{
		Personality:  simos.Linux22,
		MemoryMB:     64,
		KernelMB:     8,
		CacheFloorMB: 1,
		Seed:         seed,
	})
}

// allGens builds one fresh instance of every generator, in the given
// name order.
func allGens(order []string) []Generator {
	gens := map[string]func() Generator{
		"scan": func() Generator { return &Scanner{FileMB: 8} },
		"zipf": func() Generator { return &ZipfReader{Files: 16, FileKB: 128} },
		"hog":  func() Generator { return &MemHog{Fraction: 0.3} },
		"web":  func() Generator { return &WebServer{Files: 8, FileKB: 32, RatePerSec: 500} },
	}
	out := make([]Generator, len(order))
	for i, n := range order {
		out[i] = gens[n]()
	}
	return out
}

// runMix runs a mix of the named generators for 300ms of virtual time
// and returns it for trace inspection.
func runMix(t *testing.T, seed uint64, intensity float64, order []string) *Mix {
	t.Helper()
	s := newSys(seed)
	m := NewMix(seed, intensity).Add(allGens(order)...)
	if err := m.RunFor(s, 300*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	return m
}

// prefixEqual reports whether the shorter trace is a prefix of the
// longer (and both are non-trivial when require > 0).
func prefixEqual(t *testing.T, name string, a, b []uint64, require int) {
	t.Helper()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < require {
		t.Fatalf("%s: common trace length %d, want >= %d (a=%d b=%d)", name, n, require, len(a), len(b))
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("%s: draw %d differs: %d vs %d", name, i, a[i], b[i])
		}
	}
}

func TestStartOrderPermutationKeepsStreams(t *testing.T) {
	orders := [][]string{
		{"scan", "zipf", "hog", "web"},
		{"web", "hog", "zipf", "scan"},
		{"zipf", "web", "scan", "hog"},
	}
	mixes := make([]*Mix, len(orders))
	for i, o := range orders {
		mixes[i] = runMix(t, 42, 0.75, o)
	}
	for _, name := range []string{"zipf", "hog", "web"} {
		base := mixes[0].Trace(name)
		if len(base) == 0 {
			t.Fatalf("%s drew nothing in 300ms", name)
		}
		for i := 1; i < len(mixes); i++ {
			prefixEqual(t, name, base, mixes[i].Trace(name), 4)
		}
	}
}

func TestAddingGeneratorDoesNotReshuffle(t *testing.T) {
	solo := runMix(t, 7, 0.5, []string{"zipf"})
	crowd := runMix(t, 7, 0.5, []string{"zipf", "scan", "web", "hog"})
	prefixEqual(t, "zipf", solo.Trace("zipf"), crowd.Trace("zipf"), 8)
}

func TestSameSeedIdenticalRun(t *testing.T) {
	a := runMix(t, 99, 1, []string{"scan", "zipf", "hog", "web"})
	b := runMix(t, 99, 1, []string{"scan", "zipf", "hog", "web"})
	for _, name := range []string{"zipf", "hog", "web"} {
		ta, tb := a.Trace(name), b.Trace(name)
		if len(ta) != len(tb) {
			t.Fatalf("%s: trace lengths %d vs %d under identical runs", name, len(ta), len(tb))
		}
		prefixEqual(t, name, ta, tb, 1)
		if a.Draws(name) != b.Draws(name) {
			t.Fatalf("%s: draw counts %d vs %d under identical runs", name, a.Draws(name), b.Draws(name))
		}
	}
}

func TestDifferentSeedDifferentStreams(t *testing.T) {
	a := runMix(t, 1, 0.5, []string{"zipf"})
	b := runMix(t, 2, 0.5, []string{"zipf"})
	ta, tb := a.Trace("zipf"), b.Trace("zipf")
	n := len(ta)
	if len(tb) < n {
		n = len(tb)
	}
	same := true
	for i := 0; i < n; i++ {
		if ta[i] != tb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical zipf streams")
	}
}

func TestIntensityZeroSpawnsNothing(t *testing.T) {
	s := newSys(3)
	m := NewMix(3, 0).Add(allGens([]string{"scan", "zipf", "hog", "web"})...)
	procs, err := m.Start(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 0 {
		t.Fatalf("intensity 0 spawned %d procs", len(procs))
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate generator name did not panic")
		}
	}()
	NewMix(1, 1).Add(&Scanner{}, &Scanner{})
}

func TestWebServerServesAndBoundsConcurrency(t *testing.T) {
	s := newSys(5)
	w := &WebServer{Files: 8, FileKB: 32, RatePerSec: 2000, MaxInFlight: 2}
	m := NewMix(5, 1).Add(w)
	if err := m.RunFor(s, 500*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.Served() == 0 {
		t.Fatal("open-loop server served nothing")
	}
	// 2000/s arrivals against a 2-request cap must shed load.
	if w.Dropped() == 0 {
		t.Fatal("saturated server dropped nothing")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if deriveSeed(1, "zipf") != deriveSeed(1, "zipf") {
		t.Fatal("deriveSeed not deterministic")
	}
	if deriveSeed(1, "zipf") == deriveSeed(1, "scan") {
		t.Fatal("name does not enter the derived seed")
	}
	if deriveSeed(1, "zipf") == deriveSeed(2, "zipf") {
		t.Fatal("mix seed does not enter the derived seed")
	}
}
