package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"graybox/internal/experiments"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.scale.Name != "full" {
		t.Errorf("scale = %q, want full", c.scale.Name)
	}
	if c.markdown || c.parallel != 0 || c.outPath != "" || c.benchOut != "" {
		t.Errorf("defaults not zero: %+v", c)
	}
	if c.telemetryOn() {
		t.Error("telemetry on with no -trace/-metrics/-profile")
	}
	if c.auditPath != "" || c.profilePath != "" {
		t.Errorf("audit/profile paths not empty by default: %+v", c)
	}
	if c.cpuProfile != "" || c.memProfile != "" {
		t.Errorf("cpu/mem profile paths not empty by default: %+v", c)
	}
	if len(c.runners) == 0 {
		t.Error("no runners selected by default")
	}
}

func TestParseConfigFlags(t *testing.T) {
	c, err := parseConfig([]string{
		"-scale", "quick", "-markdown", "-parallel", "8",
		"-o", "out.txt", "-bench-out", "bench.json",
		"-trace", "t.json", "-metrics", "m.json",
		"-audit", "a.json", "-profile", "p.folded",
		"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof",
		"fig2", "fig5",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.scale.Name != "quick" || !c.markdown || c.parallel != 8 {
		t.Errorf("flags not applied: %+v", c)
	}
	if c.outPath != "out.txt" || c.benchOut != "bench.json" {
		t.Errorf("paths not applied: %+v", c)
	}
	if c.tracePath != "t.json" || c.metricsPath != "m.json" || !c.telemetryOn() {
		t.Errorf("telemetry flags not applied: %+v", c)
	}
	if c.auditPath != "a.json" || c.profilePath != "p.folded" {
		t.Errorf("audit/profile flags not applied: %+v", c)
	}
	if c.cpuProfile != "cpu.pprof" || c.memProfile != "mem.pprof" {
		t.Errorf("cpu/mem profile flags not applied: %+v", c)
	}
	if len(c.runners) != 2 || c.runners[0].ID != "fig2" || c.runners[1].ID != "fig5" {
		t.Errorf("runners = %+v, want [fig2 fig5]", c.runners)
	}
}

// TestProfileImpliesTelemetry: the profiler consumes spans, so -profile
// alone must switch the telemetry subsystem on.
func TestProfileImpliesTelemetry(t *testing.T) {
	c, err := parseConfig([]string{"-profile", "p.folded"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !c.telemetryOn() {
		t.Error("-profile alone did not enable telemetry")
	}
}

// TestRealProfilesDontImplyTelemetry: -cpuprofile/-memprofile measure
// the simulator itself, not the simulated workload, so they must not
// switch on the virtual-time telemetry subsystem (which has its own
// overhead and would distort what they measure).
func TestRealProfilesDontImplyTelemetry(t *testing.T) {
	c, err := parseConfig([]string{"-cpuprofile", "c.pprof", "-memprofile", "m.pprof"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.telemetryOn() {
		t.Error("-cpuprofile/-memprofile should not enable virtual-time telemetry")
	}
}

func TestParseConfigWorkload(t *testing.T) {
	defer experiments.SetNoiseWorkloads(nil)
	c, err := parseConfig([]string{"-workload", "scan, hog"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.workloads) != 2 || c.workloads[0] != "scan" || c.workloads[1] != "hog" {
		t.Errorf("workloads = %v, want [scan hog]", c.workloads)
	}
	if got := experiments.NoiseWorkloads(); len(got) != 2 || got[0] != "scan" || got[1] != "hog" {
		t.Errorf("selection not applied to experiments package: %v", got)
	}
}

func TestParseConfigCPUs(t *testing.T) {
	defer experiments.SetCPUList(nil)
	c, err := parseConfig([]string{"-cpus", "0, 2,4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.cpus) != 3 || c.cpus[0] != 0 || c.cpus[1] != 2 || c.cpus[2] != 4 {
		t.Errorf("cpus = %v, want [0 2 4]", c.cpus)
	}
	if got := experiments.CPUList(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Errorf("selection not applied to experiments package: %v", got)
	}
}

func TestParseConfigShardParallel(t *testing.T) {
	defer experiments.SetShardParallel(0)
	c, err := parseConfig([]string{"-shard-parallel", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.shard != 4 {
		t.Errorf("shard = %d, want 4", c.shard)
	}
	if got := experiments.ShardParallel(); got != 4 {
		t.Errorf("selection not applied to experiments package: %d", got)
	}
}

func TestParseConfigMegaScale(t *testing.T) {
	c, err := parseConfig([]string{"-scale", "mega"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.scale.Name != "mega" || c.scale.SwarmProcs == 0 {
		t.Errorf("scale = %+v, want mega with a non-zero swarm", c.scale)
	}
	if c.scale.MemoryMB != experiments.FullScale().MemoryMB {
		t.Errorf("mega MemoryMB = %d, want the full-scale machine", c.scale.MemoryMB)
	}
}

// TestListFlag: -list prints every registered experiment id and exits
// successfully without running anything.
func TestListFlag(t *testing.T) {
	c, err := parseConfig([]string{"-list"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !c.list {
		t.Fatal("-list not parsed into config")
	}

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	code := run([]string{"-list"})
	os.Stdout = saved
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("run(-list) = %d, want 0", code)
	}
	for _, want := range experiments.All() {
		if !strings.Contains(string(out), want.ID) {
			t.Errorf("-list output missing id %q:\n%s", want.ID, out)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"bad scale", []string{"-scale", "huge"}, `unknown scale "huge"`},
		{"bad experiment", []string{"nosuchfig"}, `unknown experiment "nosuchfig"`},
		{"negative parallel", []string{"-parallel", "-3"}, "negative"},
		{"bad flag", []string{"-bogus"}, "bogus"},
		{"non-numeric parallel", []string{"-parallel", "lots"}, "invalid"},
		{"bad workload", []string{"-workload", "scan,bitcoin"}, `unknown workload "bitcoin"`},
		{"non-numeric cpus", []string{"-cpus", "0,many"}, "invalid"},
		{"negative cpus", []string{"-cpus", "-1"}, "negative"},
		{"negative shard-parallel", []string{"-shard-parallel", "-2"}, "negative"},
		{"non-numeric shard-parallel", []string{"-shard-parallel", "many"}, "invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseConfig(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("parseConfig(%v) succeeded, want error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
