package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestEmptyRegistryExports exercises every exporter on a registry with
// no metrics, spans, or rings: all outputs must stay valid (and the
// metrics JSON must omit the empty sections entirely).
func TestEmptyRegistryExports(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("empty", clk.fn())

	var mbuf bytes.Buffer
	if err := WriteMetricsJSON(&mbuf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	var doc MetricsSnapshot
	if err := json.Unmarshal(mbuf.Bytes(), &doc); err != nil {
		t.Fatalf("empty metrics not valid JSON: %v\n%s", err, mbuf.String())
	}
	p := doc.Platforms[0]
	if p.Counters != nil || p.Gauges != nil || p.Histograms != nil || p.Spans != 0 {
		t.Errorf("empty registry snapshot not empty: %+v", p)
	}
	if bytes.Contains(mbuf.Bytes(), []byte(`"counters"`)) {
		t.Error("empty counters section not omitted")
	}

	var tbuf bytes.Buffer
	if err := WriteChromeTrace(&tbuf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &trace); err != nil {
		t.Fatalf("empty trace not valid JSON: %v\n%s", err, tbuf.String())
	}
	for _, ev := range trace.TraceEvents {
		if ev["ph"] != "M" {
			t.Errorf("empty registry emitted a non-metadata event: %v", ev)
		}
	}

	var xbuf bytes.Buffer
	if err := WriteMetricsText(&xbuf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	if want := "== empty ==\n"; xbuf.String() != want {
		t.Errorf("empty text snapshot = %q, want %q", xbuf.String(), want)
	}
}

// TestHistogramOverflowCounted: a value beyond the last bucket bound
// must land in the implicit overflow bucket — counted, not dropped —
// and flow through to the export.
func TestHistogramOverflowCounted(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("p", clk.fn())
	h := r.Histogram("lat", []int64{10, 100})
	h.Observe(5)       // first bucket
	h.Observe(1e9)     // far beyond the last bound
	h.Observe(1e9 + 1) // and again
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3 (overflow observations dropped?)", h.Count())
	}
	if h.Sum() != 5+2e9+1 {
		t.Errorf("sum = %d: overflow values not summed", h.Sum())
	}
	if h.Max() != 1e9+1 {
		t.Errorf("max = %d, want %d", h.Max(), int64(1e9+1))
	}

	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	var doc MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	hs := doc.Platforms[0].Histograms["lat"]
	if len(hs.Buckets) != len(hs.Bounds)+1 {
		t.Fatalf("buckets = %d, want bounds+1 = %d", len(hs.Buckets), len(hs.Bounds)+1)
	}
	if over := hs.Buckets[len(hs.Buckets)-1]; over != 2 {
		t.Errorf("overflow bucket = %d, want 2", over)
	}
	if hs.Buckets[0] != 1 {
		t.Errorf("first bucket = %d, want 1", hs.Buckets[0])
	}
}

// TestSpanClosedTwice: an extra End on a track whose spans are all
// closed must be a no-op — no panic, no phantom span, and the next
// Begin/End pair still records correctly.
func TestSpanClosedTwice(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry("p", clk.fn())
	tr := r.NewTrack("t")
	tr.Begin("c", "work")
	clk.now = 10
	tr.End()
	tr.End() // double close: must not record or panic
	if r.SpanCount() != 1 {
		t.Fatalf("spans = %d after double End, want 1", r.SpanCount())
	}
	clk.now = 20
	tr.Begin("c", "after")
	clk.now = 25
	tr.End()
	if r.SpanCount() != 2 {
		t.Fatalf("spans = %d, want 2", r.SpanCount())
	}
	s := r.spans[1]
	if s.name != "after" || s.start != 20 || s.dur != 5 || s.parent != 0 {
		t.Errorf("span after double End recorded wrong: %+v", s)
	}
	// And on a nil track every call is safe.
	var nilTrack *Track
	nilTrack.Begin("c", "x")
	nilTrack.End()
	nilTrack.End()
	nilTrack.Instant("c", "y")
}
