package priorart

import (
	"graybox/internal/sim"
)

// --- Implicit coscheduling ---
//
// Gray-box knowledge: the destination was scheduled when it sent a
// message. Observed output: request arrival and response time. Control:
// a waiting process spins (keeping itself scheduled) when a prompt
// response suggests its peer is running, and blocks (yielding its
// quantum, requeueing behind local background load) when the response is
// slow — achieving coordinated scheduling with no OS change.

// CoschedConfig describes two nodes running a communicating pair plus
// local background load.
type CoschedConfig struct {
	Quantum     sim.Time // local scheduler time slice
	Background  int      // competing local processes per node
	MessageCost sim.Time // network + processing per message
	Rounds      int      // communication rounds to complete
	SpinLimit   sim.Time // implicit-cosched spin threshold (~2x round trip)
	Implicit    bool     // use implicit coscheduling vs always-block
	Seed        uint64
}

// DefaultCoschedConfig returns the base setup.
func DefaultCoschedConfig() CoschedConfig {
	return CoschedConfig{
		Quantum:     10 * sim.Millisecond,
		Background:  2,
		MessageCost: 100 * sim.Microsecond,
		Rounds:      200,
		SpinLimit:   400 * sim.Microsecond,
		Implicit:    true,
	}
}

// CoschedResult reports the parallel job's completion time.
type CoschedResult struct {
	Elapsed   sim.Time
	Spins     int64    // waits satisfied within the spin limit
	Blocks    int64    // waits that gave up the processor
	IdealTime sim.Time // dedicated-machine lower bound
}

// RunCosched simulates a two-process parallel job, one process per node,
// playing Rounds of ping-pong while Background local processes compete
// for each node's CPU. "Being scheduled" is modeled as holding the
// node's CPU resource; a blocked waiter requeues behind the background
// load and pays up to a full quantum per competitor to get back on.
func RunCosched(cfg CoschedConfig) CoschedResult {
	e := sim.NewEngine(cfg.Seed)
	cpus := [2]*sim.Resource{sim.NewResource(e, 1), sim.NewResource(e, 1)}
	var res CoschedResult

	stop := false
	for n := 0; n < 2; n++ {
		cpu := cpus[n]
		for b := 0; b < cfg.Background; b++ {
			e.Go("bg", func(p *sim.Proc) {
				for !stop {
					cpu.Acquire(p)
					p.Sleep(cfg.Quantum)
					cpu.Release()
				}
			})
		}
	}

	// Shared ping-pong state: whose turn it is, and rounds completed.
	turn := 0
	rounds := 0
	player := func(me int) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			cpu := cpus[me]
			cpu.Acquire(p)
			holding := true
			for rounds < cfg.Rounds {
				if turn == me {
					if !holding {
						cpu.Acquire(p)
						holding = true
					}
					p.Sleep(cfg.MessageCost) // receive, compute, send
					turn = 1 - me
					if me == 1 {
						rounds++
					}
					continue
				}
				// Waiting for the peer's message.
				waited := sim.Time(0)
				spun := false
				for turn != me && rounds < cfg.Rounds {
					if cfg.Implicit && waited < cfg.SpinLimit {
						p.Sleep(cfg.MessageCost / 4) // spin, CPU held
						waited += cfg.MessageCost / 4
						spun = true
						continue
					}
					// Block: yield and requeue behind the background.
					res.Blocks++
					if holding {
						cpu.Release()
						holding = false
					}
					p.Sleep(cfg.Quantum)
				}
				if spun && waited < cfg.SpinLimit {
					res.Spins++
				}
				if !holding {
					cpu.Acquire(p)
					holding = true
				}
			}
			if holding {
				cpu.Release()
			}
		}
	}
	pa := e.Go("pa", player(0))
	pb := e.Go("pb", player(1))
	e.WaitAll(pa, pb)
	res.Elapsed = e.Now()
	stop = true
	e.Run() // drain background processes

	res.IdealTime = sim.Time(cfg.Rounds) * 2 * cfg.MessageCost
	return res
}
