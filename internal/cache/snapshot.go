package cache

import "graybox/internal/disk"

// Snapshot is a deep copy of a cache's contents, taken with
// Cache.Snapshot and restored into a fresh cache with Cache.Restore.
// It is immutable after capture and safe to restore from concurrently
// (every Restore deep-copies), which is what lets parallel sweep trials
// fork the same aged platform.
type Snapshot struct {
	arena     []cpage
	freePage  int32
	pages     map[PageID]int32
	byIno     map[int64]map[int64]int32
	dirtyHead int32
	dirtyTail int32
	dirtyLen  int
	stats     Stats
	policy    Policy
}

// Snapshot deep-copies the cache's state: the page arena (with its free
// list and intrusive dirty FIFO intact), the index maps, the counters,
// and the replacement policy. BlockAddr disk pointers are captured as-is;
// Restore remaps them into the destination machine.
func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{
		arena:     append([]cpage(nil), c.arena...),
		freePage:  c.freePage,
		pages:     make(map[PageID]int32, len(c.pages)),
		byIno:     make(map[int64]map[int64]int32, len(c.byIno)),
		dirtyHead: c.dirtyHead,
		dirtyTail: c.dirtyTail,
		dirtyLen:  c.dirtyLen,
		stats:     c.stats,
		policy:    c.policy.Clone(),
	}
	for id, i := range c.pages {
		s.pages[id] = i
	}
	for ino, m := range c.byIno {
		mm := make(map[int64]int32, len(m))
		for idx, i := range m {
			mm[idx] = i
		}
		s.byIno[ino] = mm
	}
	return s
}

// Restore fills a freshly built, empty cache from s. remap translates
// each captured page's backing disk to the destination machine's
// corresponding disk (snapshots hold pointers into the source machine).
// For pool-backed caches the restored pages' frames are grabbed from the
// destination pool, so pool accounting matches the source exactly.
func (c *Cache) Restore(s *Snapshot, remap func(*disk.Disk) *disk.Disk) {
	if len(c.pages) != 0 || len(c.arena) != 0 {
		panic("cache: Restore into a non-empty cache")
	}
	c.arena = append(c.arena[:0], s.arena...)
	for i := range c.arena {
		if d := c.arena[i].addr.Disk; d != nil {
			c.arena[i].addr.Disk = remap(d)
		}
	}
	c.freePage = s.freePage
	for id, i := range s.pages {
		c.pages[id] = i
	}
	for ino, m := range s.byIno {
		mm := make(map[int64]int32, len(m))
		for idx, i := range m {
			mm[idx] = i
		}
		c.byIno[ino] = mm
	}
	c.dirtyHead, c.dirtyTail, c.dirtyLen = s.dirtyHead, s.dirtyTail, s.dirtyLen
	c.stats = s.stats
	c.policy = s.policy.Clone()
	if !c.cfg.PrivateFrames {
		for range s.pages {
			if !c.pool.TryGrabFrame() {
				panic("cache: Restore exceeds destination pool capacity")
			}
		}
	}
	c.telSync()
}
