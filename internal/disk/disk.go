// Package disk models a circa-2001 SCSI disk (the paper's testbed used
// IBM 9LZX drives): a seek curve over cylinder distance, deterministic
// rotational positioning derived from virtual time, and per-track transfer
// bandwidth. Requests are serviced one at a time in FIFO order.
//
// The disk is addressed in fixed-size blocks (the file system page size).
// Sequential block runs naturally achieve near-full bandwidth because the
// head ends a transfer exactly where the next block begins, so neither a
// seek nor rotational latency is charged.
package disk

import (
	"fmt"
	"math"

	"graybox/internal/sim"
	"graybox/internal/telemetry"
)

// Params describes the drive geometry and timing. All fields must be
// positive.
type Params struct {
	BlockSize      int      // bytes per block (file system page)
	BlocksPerTrack int      // blocks on one track
	TracksPerCyl   int      // surfaces (heads)
	Cylinders      int      // seek range
	RPM            int      // spindle speed
	MinSeek        sim.Time // track-to-track seek
	MaxSeek        sim.Time // full-stroke seek
	Overhead       sim.Time // controller/command overhead per request
}

// DefaultParams approximates an IBM 9LZX-class drive with 4 KB blocks:
// 10000 RPM (6 ms rotation), ~20 MB/s media rate, 0.8-10 ms seeks.
func DefaultParams() Params {
	return Params{
		BlockSize:      4096,
		BlocksPerTrack: 30, // 120 KB/track -> 20 MB/s at 10k RPM
		TracksPerCyl:   10,
		Cylinders:      8714,
		RPM:            10000,
		MinSeek:        800 * sim.Microsecond,
		MaxSeek:        10 * sim.Millisecond,
		Overhead:       50 * sim.Microsecond,
	}
}

// FastParams approximates a 15k-RPM fast-tier drive (Ultrastar-class):
// same 4 KB blocks as DefaultParams — mixed-tier machines share one
// cache page size — but twice the track density, 4 ms rotation, and
// sub-half-millisecond track-to-track seeks. Paired with DefaultParams
// it forms the fast/slow tier pair the stash overlay manages.
func FastParams() Params {
	return Params{
		BlockSize:      4096,
		BlocksPerTrack: 60, // 240 KB/track -> 60 MB/s at 15k RPM
		TracksPerCyl:   8,
		Cylinders:      9137,
		RPM:            15000,
		MinSeek:        400 * sim.Microsecond,
		MaxSeek:        5 * sim.Millisecond,
		Overhead:       30 * sim.Microsecond,
	}
}

func (p Params) validate() error {
	switch {
	case p.BlockSize <= 0, p.BlocksPerTrack <= 0, p.TracksPerCyl <= 0,
		p.Cylinders <= 0, p.RPM <= 0:
		return fmt.Errorf("disk: non-positive geometry: %+v", p)
	case p.MinSeek < 0 || p.MaxSeek < p.MinSeek:
		return fmt.Errorf("disk: bad seek range %v..%v", p.MinSeek, p.MaxSeek)
	}
	return nil
}

// Blocks returns the total number of addressable blocks.
func (p Params) Blocks() int64 {
	return int64(p.BlocksPerTrack) * int64(p.TracksPerCyl) * int64(p.Cylinders)
}

// RotationPeriod returns the time for one revolution.
func (p Params) RotationPeriod() sim.Time {
	return sim.Time(int64(60) * int64(sim.Second) / int64(p.RPM))
}

// Stats aggregates per-disk counters for experiment reporting.
type Stats struct {
	Reads, Writes           int64
	BlocksRead, BlocksWrote int64
	SeekTime, RotTime       sim.Time
	TransferTime, QueueTime sim.Time
}

// Disk is one simulated drive attached to an engine.
type Disk struct {
	p       Params
	e       *sim.Engine
	res     *sim.Resource
	headCyl int
	stats   Stats

	// Track-buffer state: a request that continues exactly where the
	// previous transfer ended, soon after it ended, is served from the
	// drive's segment buffer with no rotational delay.
	lastEnd     int64
	lastEndTime sim.Time

	// sched holds non-FCFS scheduling state (see sched.go).
	sched schedState

	// tel holds telemetry handles; nil until Instrument is called, and
	// every update is guarded by that one nil check.
	tel *diskTel
}

// diskTel is the disk's telemetry handle set: request and block
// counters, the service-time breakdown the simulator computes anyway
// (seek/rotation/transfer), queue depth, and per-request spans.
type diskTel struct {
	reads, writes       *telemetry.Counter
	blocksRead, blocksW *telemetry.Counter
	seekNS, rotNS       *telemetry.Counter
	xferNS, queueNS     *telemetry.Counter
	queueDepth          *telemetry.Gauge
	serviceNS           *telemetry.Histogram
	spanRead, spanWrite string // precomputed span names, no per-op fmt
}

// Instrument registers the disk's metrics in r under the given name
// (e.g. "disk0", "swap"). Spans for each request appear on the calling
// process's track, enclosed by the syscall span that caused the I/O.
func (d *Disk) Instrument(r *telemetry.Registry, name string) {
	if r == nil {
		return
	}
	prefix := name + "."
	d.tel = &diskTel{
		reads:      r.Counter(prefix + "reads"),
		writes:     r.Counter(prefix + "writes"),
		blocksRead: r.Counter(prefix + "blocks_read"),
		blocksW:    r.Counter(prefix + "blocks_written"),
		seekNS:     r.Counter(prefix + "seek_ns"),
		rotNS:      r.Counter(prefix + "rotation_ns"),
		xferNS:     r.Counter(prefix + "transfer_ns"),
		queueNS:    r.Counter(prefix + "queue_ns"),
		queueDepth: r.Gauge(prefix + "queue_depth"),
		serviceNS:  r.Histogram(prefix+"service_ns", telemetry.LatencyBuckets),
		spanRead:   name + " read",
		spanWrite:  name + " write",
	}
}

// New creates a disk. It panics on invalid parameters (construction-time
// programmer error, not a runtime condition).
func New(e *sim.Engine, p Params) *Disk {
	if err := p.validate(); err != nil {
		panic(err)
	}
	return &Disk{p: p, e: e, res: sim.NewResource(e, 1)}
}

// Params returns the drive's geometry.
func (d *Disk) Params() Params { return d.p }

// Stats returns a copy of the counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the counters.
func (d *Disk) ResetStats() { d.stats = Stats{} }

func (d *Disk) cylinder(block int64) int {
	return int(block / int64(d.p.BlocksPerTrack*d.p.TracksPerCyl))
}

// seekTime returns the time to move the head from cylinder a to b using
// the standard sqrt seek curve.
func (d *Disk) seekTime(from, to int) sim.Time {
	if from == to {
		return 0
	}
	dist := from - to
	if dist < 0 {
		dist = -dist
	}
	span := float64(d.p.Cylinders - 1)
	frac := math.Sqrt(float64(dist) / span)
	return d.p.MinSeek + sim.Time(float64(d.p.MaxSeek-d.p.MinSeek)*frac)
}

// angleOf returns the rotational position (fraction of a revolution) at
// which block starts.
func (d *Disk) angleOf(block int64) float64 {
	return float64(block%int64(d.p.BlocksPerTrack)) / float64(d.p.BlocksPerTrack)
}

// serviceTime computes the seek, rotation and transfer components for a
// request starting at block at time start.
func (d *Disk) serviceTime(block int64, nblocks int, start sim.Time) (seek, rot, xfer sim.Time) {
	seek = d.seekTime(d.headCyl, d.cylinder(block))
	period := d.p.RotationPeriod()
	switch {
	case block == d.lastEnd && start-d.lastEndTime < period:
		// Sequential continuation: served from the track/segment buffer
		// the drive fills as it passes over the media.
		rot = 0
	default:
		// Rotational position when the head arrives (after command
		// overhead and seek).
		arrive := start + d.p.Overhead + seek
		cur := math.Mod(float64(arrive%period)/float64(period), 1)
		target := d.angleOf(block)
		delta := target - cur
		if delta < 0 {
			delta++
		}
		rot = sim.Time(delta * float64(period))
	}
	xfer = sim.Time(float64(nblocks) / float64(d.p.BlocksPerTrack) * float64(period))
	return seek, rot, xfer
}

// Access performs a synchronous transfer of nblocks starting at block,
// blocking p for queueing plus service time. It panics on out-of-range
// requests, which indicate file system allocator bugs.
func (d *Disk) Access(p *sim.Proc, block int64, nblocks int, write bool) {
	if block < 0 || nblocks <= 0 || block+int64(nblocks) > d.p.Blocks() {
		panic(fmt.Sprintf("disk: access [%d, %d) outside [0, %d)", block, block+int64(nblocks), d.p.Blocks()))
	}
	if t := d.tel; t != nil {
		name := t.spanRead
		if write {
			name = t.spanWrite
		}
		p.Track().Begin("disk", name)
		t.queueDepth.Add(1)
	}
	if d.sched.policy != FCFS {
		d.schedAccess(p, block, nblocks, write)
	} else {
		enqueued := d.e.Now()
		d.res.Acquire(p)
		queued := d.e.Now() - enqueued
		d.stats.QueueTime += queued
		if t := d.tel; t != nil {
			t.queueNS.Add(int64(queued))
			p.Track().QueueWait(int64(queued))
		}
		d.service(p, block, nblocks, write)
		d.res.Release()
	}
	if t := d.tel; t != nil {
		t.queueDepth.Add(-1)
		p.Track().End()
	}
}

// BusyTime reports how long the disk has been servicing requests.
func (d *Disk) BusyTime() sim.Time { return d.res.BusyTime() }
