// grepscan: the paper's motivating workload (Section 4.1) — a grep-like
// tool repeatedly scanning a corpus slightly larger than the file cache.
// Without gray-box knowledge, every run fetches everything from disk
// (LRU worst case); with the FCCD ordering files cached-first, repeated
// runs mostly hit the cache.
package main

import (
	"fmt"
	"log"

	"graybox"
)

const (
	numFiles = 100
	fileSize = 10 * graybox.MB
	// Matcher cost: ~200 MB/s, like a tuned string search in 2001.
	cpuPerByte = 5 * graybox.Nanosecond
)

// scan reads every file fully in the given order, charging matcher CPU.
func scan(os *graybox.Proc, paths []string) (graybox.Time, error) {
	sw := graybox.NewStopwatch(os)
	for _, p := range paths {
		fd, err := os.Open(p)
		if err != nil {
			return 0, err
		}
		size := fd.Size()
		for off := int64(0); off < size; off += 256 << 10 {
			n := int64(256 << 10)
			if off+n > size {
				n = size - off
			}
			if err := fd.Read(off, n); err != nil {
				return 0, err
			}
			os.Compute(graybox.Time(n) * cpuPerByte)
		}
	}
	return sw.Elapsed(), nil
}

func main() {
	p := graybox.NewPlatform(graybox.PlatformConfig{})
	err := p.Run("grepscan", func(os *graybox.Proc) {
		if err := os.Mkdir("corpus"); err != nil {
			log.Fatal(err)
		}
		paths := make([]string, numFiles)
		for i := range paths {
			paths[i] = fmt.Sprintf("corpus/doc%03d", i)
			fd, err := os.Create(paths[i])
			if err != nil {
				log.Fatal(err)
			}
			if err := fd.Write(0, fileSize); err != nil {
				log.Fatal(err)
			}
		}
		p.DropCaches()

		// Run 1 (cold) and run 2 (warm, same order): the traditional
		// grep gains nothing from its own previous run.
		cold, err := scan(os, paths)
		if err != nil {
			log.Fatal(err)
		}
		warm, err := scan(os, paths)
		if err != nil {
			log.Fatal(err)
		}

		// gb-grep: probe first, scan cached files first.
		det := graybox.NewFCCD(os, graybox.FCCDConfig{Seed: 7})
		sw := graybox.NewStopwatch(os)
		probes, err := det.OrderFiles(paths)
		if err != nil {
			log.Fatal(err)
		}
		ordered := make([]string, len(probes))
		for i, pr := range probes {
			ordered[i] = pr.Path
		}
		if _, err := scan(os, ordered); err != nil {
			log.Fatal(err)
		}
		gb := sw.Elapsed()

		fmt.Printf("corpus: %d x %d MB = %d MB; cache ~830 MB\n",
			numFiles, fileSize/graybox.MB, numFiles*fileSize/graybox.MB)
		fmt.Printf("grep, cold run:        %v\n", cold)
		fmt.Printf("grep, repeated run:    %v  (no benefit: LRU worst case)\n", warm)
		fmt.Printf("gb-grep, repeated run: %v  (%.1fx faster)\n", gb, float64(warm)/float64(gb))
	})
	if err != nil {
		log.Fatal(err)
	}
}
