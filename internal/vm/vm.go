// Package vm models anonymous process memory: lazy zero-fill allocation,
// a global clock (second-chance) page daemon over all resident anonymous
// pages, and swap-out/swap-in to a swap disk.
//
// The timing behavior MAC (Section 4.3) depends on is produced
// mechanically: touching a resident page costs a fraction of a
// microsecond; the first write to a new page costs a page fault plus
// zero-fill; and once physical memory is overcommitted, a write costs a
// reclaim that may write a victim page to the swap disk (milliseconds) —
// the "slow data points" MAC watches for.
//
// The page daemon's clock is an intrusive index-based ring
// (internal/ring): touching a resident page relinks its existing ring
// slot instead of churning heap nodes, so the MAC probe loop's hottest
// path allocates nothing.
package vm

import (
	"fmt"

	"graybox/internal/disk"
	"graybox/internal/mem"
	"graybox/internal/ring"
	"graybox/internal/sim"
	"graybox/internal/telemetry"
)

// Config carries the CPU-side costs of memory operations.
type Config struct {
	TouchResident sim.Time // write to a resident page
	FaultOverhead sim.Time // trap + kernel entry on any page fault
	ZeroFill      sim.Time // zeroing a fresh page
}

// DefaultConfig matches a circa-2001 machine.
func DefaultConfig() Config {
	return Config{
		TouchResident: 200 * sim.Nanosecond,
		FaultOverhead: 2 * sim.Microsecond,
		ZeroFill:      8 * sim.Microsecond, // 4 KB at ~500 MB/s
	}
}

// RegionID names an allocation within an address space.
type RegionID int64

type pageState struct {
	resident bool
	swapSlot int64 // -1 when not swapped
	// clockH is the page's slot in the daemon's clock ring; ring.None
	// when non-resident.
	clockH ring.Handle
}

type clockKey struct {
	as     *AddrSpace
	region RegionID
	idx    int64
}

// Region is a contiguous anonymous allocation.
type region struct {
	id    RegionID
	pages []pageState
}

// AddrSpace is one process's anonymous memory.
type AddrSpace struct {
	vm       *VM
	name     string
	regions  map[RegionID]*region
	nextID   RegionID
	resident int
}

// Stats counts VM activity.
type Stats struct {
	ZeroFills, SwapIns, SwapOuts int64
	// DaemonScans counts page-daemon clock sweeps (EvictOne calls that
	// found a candidate).
	DaemonScans int64
}

// VM is the system-wide anonymous memory manager. It implements
// mem.Shrinker so the frame pool can trigger page-outs.
type VM struct {
	e    *sim.Engine
	pool *mem.Pool
	swap *disk.Disk
	cfg  Config

	clock    ring.List[clockKey] // the page daemon's circle
	hand     ring.Handle
	spaces   map[*AddrSpace]bool
	swapFree []int64 // free swap slots (LIFO)
	swapNext int64
	swapCap  int64
	stats    Stats

	// Telemetry handles; nil (no-op) until Instrument is called.
	telZeroFills, telSwapIns  *telemetry.Counter
	telSwapOuts, telScans     *telemetry.Counter
	telResident, telSwapSlots *telemetry.Gauge
}

// New creates the VM manager. swapBlocks bounds swap usage on the swap
// disk (0 means the whole disk).
func New(e *sim.Engine, pool *mem.Pool, swap *disk.Disk, swapBlocks int64, cfg Config) *VM {
	if swapBlocks <= 0 {
		swapBlocks = swap.Params().Blocks()
	}
	return &VM{
		e: e, pool: pool, swap: swap, cfg: cfg,
		spaces:  make(map[*AddrSpace]bool),
		swapCap: swapBlocks,
	}
}

// Stats returns a copy of the counters.
func (v *VM) Stats() Stats { return v.stats }

// Instrument registers the VM's metrics in r: swap traffic and
// zero-fill counters, the page daemon's scan count, and gauges for
// resident anonymous pages and swap slots in use. Page-daemon work also
// appears as a span on the track of the process that triggered reclaim.
func (v *VM) Instrument(r *telemetry.Registry) {
	v.telZeroFills = r.Counter("vm.zero_fills")
	v.telSwapIns = r.Counter("vm.swap_ins")
	v.telSwapOuts = r.Counter("vm.swap_outs")
	v.telScans = r.Counter("vm.daemon_scans")
	v.telResident = r.Gauge("vm.resident_pages")
	v.telSwapSlots = r.Gauge("vm.swap_slots_used")
}

// telSyncGauges refreshes the residency gauges after a state change.
func (v *VM) telSyncGauges() {
	v.telResident.Set(int64(v.clock.Len()))
	v.telSwapSlots.Set(v.swapNext - int64(len(v.swapFree)))
}

// NewSpace creates an address space for one process.
func (v *VM) NewSpace(name string) *AddrSpace {
	as := &AddrSpace{vm: v, name: name, regions: make(map[RegionID]*region)}
	v.spaces[as] = true
	return as
}

// Name implements mem.Shrinker.
func (v *VM) Name() string { return "anon" }

// Held implements mem.Shrinker.
func (v *VM) Held() int { return v.clock.Len() }

// Floor implements mem.Shrinker: anonymous memory can always be swapped.
func (v *VM) Floor() int { return 0 }

// EvictOne implements mem.Shrinker: run the clock hand to find an
// unreferenced resident page, swap it out, and return its frame. The
// reference bit lives implicitly in the ring: Touch moves a page's slot
// behind the hand (second chance), so a page the hand reaches has not
// been touched since the last sweep.
func (v *VM) EvictOne(p *sim.Proc) bool {
	if v.clock.Len() == 0 {
		return false
	}
	v.stats.DaemonScans++
	v.telScans.Inc()
	p.Track().Begin("vm", "pagedaemon scan")
	defer p.Track().End()
	h := v.hand
	if h == ring.None {
		h = v.clock.Front()
	}
	v.hand = v.clock.Next(h)
	key := v.clock.Remove(h)

	r := key.as.regions[key.region]
	pg := &r.pages[key.idx]
	// Mark non-resident before the I/O so a concurrent reclaim cannot
	// pick this page again.
	pg.resident = false
	pg.clockH = ring.None
	key.as.resident--
	slot := v.allocSwapSlot()
	pg.swapSlot = slot
	v.stats.SwapOuts++
	v.telSwapOuts.Inc()
	v.telSyncGauges()
	v.pool.ReturnFrames(1)
	v.swap.Access(p, slot, 1, true)
	return true
}

func (v *VM) allocSwapSlot() int64 {
	if n := len(v.swapFree); n > 0 {
		s := v.swapFree[n-1]
		v.swapFree = v.swapFree[:n-1]
		return s
	}
	if v.swapNext >= v.swapCap {
		panic("vm: out of swap space")
	}
	s := v.swapNext
	v.swapNext++
	return s
}

func (v *VM) freeSwapSlot(s int64) { v.swapFree = append(v.swapFree, s) }

// touchClock records a reference: the page's ring slot moves to the back
// of the clock (just behind the hand's sweep), granting a second chance.
// The handle survives the move, so the caller's pageState needs no
// update and the touch allocates nothing.
func (v *VM) touchClock(h ring.Handle) ring.Handle {
	if v.hand == h {
		v.hand = v.clock.Next(h)
	}
	v.clock.MoveToBack(h)
	return h
}

// --- AddrSpace operations ---

// Alloc reserves npages of address space (no frames yet — pages fault in
// lazily, like malloc/sbrk).
func (as *AddrSpace) Alloc(npages int64) RegionID {
	if npages <= 0 {
		panic("vm: Alloc of non-positive size")
	}
	as.nextID++
	id := as.nextID
	as.regions[id] = &region{id: id, pages: make([]pageState, npages)}
	for i := range as.regions[id].pages {
		as.regions[id].pages[i].swapSlot = -1
	}
	return id
}

// Free releases a region: resident frames return to the pool, swap slots
// are freed. No I/O is needed.
func (as *AddrSpace) Free(id RegionID) {
	r, ok := as.regions[id]
	if !ok {
		panic(fmt.Sprintf("vm: Free of unknown region %d", id))
	}
	freed := 0
	for i := range r.pages {
		pg := &r.pages[i]
		if pg.resident {
			if pg.clockH != ring.None {
				if as.vm.hand == pg.clockH {
					as.vm.hand = as.vm.clock.Next(pg.clockH)
				}
				as.vm.clock.Remove(pg.clockH)
			}
			freed++
			as.resident--
		}
		if pg.swapSlot >= 0 {
			as.vm.freeSwapSlot(pg.swapSlot)
		}
	}
	if freed > 0 {
		as.vm.pool.ReturnFrames(freed)
	}
	delete(as.regions, id)
	as.vm.telSyncGauges()
}

// Release frees every region in the space (process exit).
func (as *AddrSpace) Release() {
	ids := make([]RegionID, 0, len(as.regions))
	for id := range as.regions {
		ids = append(ids, id)
	}
	// Region IDs are unique and ordered; free deterministically.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	for _, id := range ids {
		as.Free(id)
	}
}

// Pages returns the size of a region in pages.
func (as *AddrSpace) Pages(id RegionID) int64 { return int64(len(as.regions[id].pages)) }

// Resident returns the number of resident pages in the space (harness
// ground truth).
func (as *AddrSpace) Resident() int { return as.resident }

// ResidentIn returns resident pages of one region (harness ground truth).
func (as *AddrSpace) ResidentIn(id RegionID) int {
	n := 0
	for i := range as.regions[id].pages {
		if as.regions[id].pages[i].resident {
			n++
		}
	}
	return n
}

// Touch accesses one page of a region. A write to a non-resident page
// faults it in (zero-fill or swap-in); a read of a never-written page is
// satisfied by the shared zero page without allocating a frame (which is
// why MAC's probes must write — Section 4.3.1).
func (as *AddrSpace) Touch(p *sim.Proc, id RegionID, idx int64, write bool) {
	v := as.vm
	r, ok := as.regions[id]
	if !ok {
		panic(fmt.Sprintf("vm: Touch of unknown region %d", id))
	}
	if idx < 0 || idx >= int64(len(r.pages)) {
		panic(fmt.Sprintf("vm: Touch page %d outside region of %d pages", idx, len(r.pages)))
	}
	pg := &r.pages[idx]
	switch {
	case pg.resident:
		pg.clockH = v.touchClock(pg.clockH)
		p.Sleep(v.cfg.TouchResident)
	case pg.swapSlot < 0 && !write:
		// Zero-page read: no frame needed.
		p.Sleep(v.cfg.TouchResident)
	case pg.swapSlot < 0:
		// First write: demand-zero fault. GrabFrame may reclaim (cache
		// drop, dirty write-back, or a swap-out) — all charged to p.
		v.pool.GrabFrame(p)
		p.Sleep(v.cfg.FaultOverhead + v.cfg.ZeroFill + v.cfg.TouchResident)
		pg.resident = true
		as.resident++
		pg.clockH = v.clock.PushBack(clockKey{as: as, region: id, idx: idx})
		v.stats.ZeroFills++
		v.telZeroFills.Inc()
		v.telSyncGauges()
	default:
		// Swap-in.
		v.pool.GrabFrame(p)
		slot := pg.swapSlot
		v.stats.SwapIns++
		v.telSwapIns.Inc()
		v.swap.Access(p, slot, 1, false)
		p.Sleep(v.cfg.FaultOverhead + v.cfg.TouchResident)
		pg.swapSlot = -1
		v.freeSwapSlot(slot)
		pg.resident = true
		as.resident++
		pg.clockH = v.clock.PushBack(clockKey{as: as, region: id, idx: idx})
		v.telSyncGauges()
	}
}
