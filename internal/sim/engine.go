package sim

import (
	"fmt"

	"graybox/internal/telemetry"
)

// event is a scheduled callback. Events with equal fire times run in
// scheduling order (seq), which keeps the simulation deterministic.
//
// Events are pooled: once fired or drained as a tombstone the struct goes
// onto its lane's free list and is reused by a later Schedule. gen is
// bumped at recycle time so stale Event handles can never touch the new
// occupant.
type event struct {
	at  Time
	seq uint64
	gen uint64
	fn  func()
	// proc, when non-nil, is handled instead of calling fn: kind selects
	// a wake or a scheduler timeslice. Process wakes (Sleep, Unblock) are
	// the single hottest event type, and storing the process directly
	// avoids allocating a wake closure per sleep; slice events reuse the
	// same field so the SMP scheduler's hot path is closure-free too.
	proc *Proc
	next *event // free-list or wheel-slot link, nil while in a heap
	// kind discriminates proc events (evWake, evSlice); meaningless for
	// fn events.
	kind uint8
	// loc records which structure holds the event, so Cancel maintains
	// the right tombstone counter; ln is the owning lane (always 0 on the
	// serial engine).
	loc uint8
	ln  uint8
}

// Proc-event kinds.
const (
	evWake  uint8 = iota // resume ev.proc
	evSlice              // timeslice expiry for ev.proc (sched.go)
)

// Event locations (event.loc).
const (
	locHeap    uint8 = iota // in its lane's heap
	locWheel                // chained in its lane's timing wheel
	locOverlay              // in the shard overlay heap (shard.go)
	locRun                  // in its lane's harvested-run buffer (shard.go)
	locDefer                // in its lane's deferred-push buffer (shard.go)
)

// dead reports whether the slot is a tombstone (canceled or recycled).
func (ev *event) dead() bool { return ev.fn == nil && ev.proc == nil }

// Event is a cancelable handle to a scheduled callback, returned by
// Schedule and After. The zero value is inert: Cancel on it is a no-op.
type Event struct {
	ev  *event
	gen uint64
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
//
// The engine is strictly single-threaded from the caller's perspective:
// although processes are goroutines, exactly one of them (or the engine
// loop itself) runs at any instant, with explicit handoff. This makes every
// run with the same seed bit-for-bit reproducible. SetShardParallel adds
// worker goroutines, but only for lane-structure maintenance between
// horizons — event execution stays serial in global (at, seq) order, so
// the reproducibility guarantee is unchanged at any worker count.
type Engine struct {
	now  Time
	seq  uint64
	rng  *RNG
	seed uint64

	// live is the number of scheduled events that have been neither fired
	// nor canceled, across every lane, the shard overlay, and the
	// run/defer buffers.
	live int

	// lanes holds the pending-event shards (wheel.go). The serial engine
	// — and every event the serial engine ever sees — uses lanes[0];
	// SetShardParallel grows the slice to one lane per simulated CPU plus
	// the global lane 0 for closure events.
	lanes []lane

	// wheelMin is defaultWheelMin; tests/benchmarks override. Shared by
	// every lane's place.
	wheelMin int

	// shard is the lane-merge state (shard.go); nil selects the serial
	// single-lane engine, the bit-exact compatibility anchor.
	shard *shardState

	// yield carries control back from a running process to the engine
	// loop. All processes share it; only the currently-running process
	// ever sends on it.
	yield chan struct{}

	// procs is a slot arena: a finished process's slot is pushed onto
	// freeSlot and reused by a later Spawn, so long-running simulations
	// that churn short-lived processes (request-per-process servers) hold
	// live processes only, not every process that ever ran.
	procs    []*Proc
	freeSlot []int32
	spawned  uint64 // total Spawn calls, ever (arena slots recycle; this doesn't)
	nBlocked int    // processes in procBlocked, maintained by setState

	// sched is the SMP scheduler; nil (the default) is the uncontended
	// infinite-core model where Compute is a pure timer. See sched.go.
	sched *scheduler

	// tel is the engine's telemetry registry; nil (the default) disables
	// all instrumentation at zero cost.
	tel *telemetry.Registry
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:      NewRNG(seed),
		seed:     seed,
		yield:    make(chan struct{}),
		wheelMin: defaultWheelMin,
		lanes:    make([]lane, 1),
	}
}

// Seed returns the seed the engine (and its RNG) was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// Checkpoint returns the clock and scheduling cursor of a quiescent
// engine, for snapshot machinery. It panics if events are still pending,
// processes are still blocked, or — on a sharded engine — any lane-local
// buffer still holds events: snapshotting mid-flight (or mid-horizon)
// state is not supported and would fork divergent copies.
func (e *Engine) Checkpoint() (now Time, seq uint64) {
	if e.live != 0 {
		panic(fmt.Sprintf("sim: Checkpoint with %d pending event(s)", e.live))
	}
	if n := e.liveBlocked(); n != 0 {
		panic(fmt.Sprintf("sim: Checkpoint with %d blocked process(es)", n))
	}
	if n := e.schedBusy(); n != 0 {
		panic(fmt.Sprintf("sim: Checkpoint with %d process(es) on CPU or run queue", n))
	}
	// With live == 0 every lane buffer must already be empty of live
	// events; a live entry here means a snapshot was attempted mid-horizon
	// with corrupted accounting, and forking it would diverge. Fail loudly
	// instead.
	if e.shard != nil {
		for i := range e.lanes {
			ln := &e.lanes[i]
			n := 0
			for _, ev := range ln.run[ln.runPos:] {
				if ev != nil && !ev.dead() {
					n++
				}
			}
			for _, ev := range ln.deferred {
				if !ev.dead() {
					n++
				}
			}
			if n != 0 {
				panic(fmt.Sprintf("sim: Checkpoint with %d live event(s) in lane %d buffers (mid-horizon snapshot)", n, i))
			}
		}
		if n := e.shard.ovLive; n != 0 {
			panic(fmt.Sprintf("sim: Checkpoint with %d live event(s) in the shard overlay (mid-horizon snapshot)", n))
		}
	}
	return e.now, e.seq
}

// Restore sets the clock and scheduling cursor of a freshly built engine
// to a Checkpoint's values, so events scheduled afterwards continue the
// original (at, seq) order. It panics if the engine has already run.
func (e *Engine) Restore(now Time, seq uint64) {
	if e.now != 0 || e.seq != 0 || e.spawned != 0 {
		panic("sim: Restore on an engine that has already run")
	}
	e.now, e.seq = now, seq
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTelemetry attaches a telemetry registry: processes spawned from now
// on get span tracks, and tracers attached to the engine export their
// events. A nil registry (the default) disables telemetry.
func (e *Engine) SetTelemetry(r *telemetry.Registry) {
	e.tel = r
	e.instrumentSched()
}

// Telemetry returns the attached registry (nil when disabled). The nil
// registry is safe to use: all its methods and handles are no-ops.
func (e *Engine) Telemetry() *telemetry.Registry { return e.tel }

// NowNS reports virtual time as int64 nanoseconds — the telemetry.Clock
// for registries attached to this engine.
func (e *Engine) NowNS() int64 { return int64(e.now) }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Schedule runs fn at time at (which must not be in the past). It returns
// a handle that can be used to cancel the event.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule of nil callback")
	}
	ev := e.push(at, 0) // closure events ride the global lane
	ev.fn = fn
	return Event{ev: ev, gen: ev.gen}
}

// scheduleWake schedules p.wake() at time at without allocating a closure.
func (e *Engine) scheduleWake(at Time, p *Proc) {
	e.push(at, e.procLane(p)).proc = p
}

// procLane routes a process's wake events: every proc event for the same
// arena slot lands in the same lane, a static assignment that depends
// only on simulation state — never on worker count — so sharded output
// is invariant. Lane 0 is reserved for closure events.
func (e *Engine) procLane(p *Proc) int {
	if e.shard == nil {
		return 0
	}
	return 1 + int(p.slot)%(len(e.lanes)-1)
}

// push takes an event struct off lane li's free list (or allocates one)
// and stamps it with the next sequence number. On the serial engine it
// goes straight into the lane's wheel or heap; on a sharded engine an
// in-window event (at < horizon) joins the overlay heap so the current
// merge sees it, and an out-of-window event is deferred for the next
// harvest. The caller sets fn or proc.
func (e *Engine) push(at Time, li int) *event {
	ln := &e.lanes[li]
	ev := ln.take()
	ev.at, ev.seq = at, e.seq
	ev.ln = uint8(li)
	e.seq++
	e.live++
	if s := e.shard; s != nil {
		if at >= s.horizon {
			ev.loc = locDefer
			ln.deferred = append(ln.deferred, ev)
		} else {
			ev.loc = locOverlay
			s.ovLive++
			s.overlay = append(s.overlay, ev)
			s.overlay.siftUp(len(s.overlay) - 1)
		}
		return ev
	}
	ln.live++
	ln.place(e, ev)
	return ev
}

// After runs fn after duration d.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event (or the zero Event) is a no-op, so Cancel is safe
// to call twice. Cancellation is lazy: the slot stays where it is as a
// tombstone (fn == nil) and is discarded when it surfaces, making Cancel
// O(1) instead of the O(n) scan + O(log n) removal it replaces.
func (e *Engine) Cancel(h Event) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.dead() {
		return
	}
	ev.fn, ev.proc = nil, nil
	e.live--
	ln := &e.lanes[ev.ln]
	// If churny callers (timeouts that almost always cancel) fill a heap
	// or a wheel with tombstones, compact rather than let them pile up
	// unboundedly.
	switch ev.loc {
	case locWheel:
		ln.live--
		ln.wheelLive--
		ln.wheelDead++
		if ln.wheelLive == 0 || (ln.wheelDead > 64 && ln.wheelDead > ln.wheelLive) {
			ln.sweepWheel()
		}
	case locHeap:
		ln.live--
		heapLive := ln.live - ln.wheelLive
		if dead := len(ln.events) - heapLive; dead > 64 && dead > heapLive {
			ln.compact()
		}
	case locOverlay:
		s := e.shard
		s.ovLive--
		if dead := len(s.overlay) - s.ovLive; dead > 64 && dead > s.ovLive {
			s.compactOverlay(e)
		}
	default:
		// locRun/locDefer tombstones are dropped when the merge cursor or
		// the next harvest reaches them.
	}
}

// peekLive returns the earliest pending live event without consuming it,
// or nil if none remain: the lane heap top on the serial engine, the
// loser-tree/overlay winner on a sharded one.
func (e *Engine) peekLive() *event {
	if e.shard != nil {
		return e.mergePeek()
	}
	return e.lanes[0].peekLive()
}

// popNext consumes ev, which must be the event peekLive just returned.
func (e *Engine) popNext(ev *event) {
	if e.shard != nil {
		e.shard.pop(e, ev)
		return
	}
	ln := &e.lanes[0]
	ln.popMin()
	ln.live--
}

// step fires the earliest pending live event. It reports false when no
// live events remain.
func (e *Engine) step() bool {
	ev := e.peekLive()
	if ev == nil {
		return false
	}
	e.popNext(ev)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.live--
	fn, p, kind := ev.fn, ev.proc, ev.kind
	e.lanes[ev.ln].recycle(ev)
	switch {
	case p == nil:
		fn()
	case kind == evSlice:
		e.sliceFire(p)
	default:
		p.wake()
	}
	return true
}

// Run processes events until the queue is empty. It panics if processes
// remain blocked with no event that could ever wake them (a simulation
// deadlock), since silently returning would make such bugs easy to miss.
func (e *Engine) Run() {
	for e.step() {
	}
	if e.liveBlocked() > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with empty event queue at %v", e.liveBlocked(), e.now))
	}
}

// RunUntil processes events with fire times <= deadline and then advances
// the clock to exactly deadline. Blocked processes are left parked.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.peekLive()
		if ev == nil || ev.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// liveBlocked counts processes that are parked and not finished. It is
// O(1): setState maintains the count, so deadlock detection no longer
// scans the (recycled, possibly sparse) proc arena.
func (e *Engine) liveBlocked() int { return e.nBlocked }

// Idle reports whether no live events are pending.
func (e *Engine) Idle() bool { return e.live == 0 }
