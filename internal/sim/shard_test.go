package sim

import (
	"fmt"
	"testing"
)

// shardProgram drives one engine through a mixed workload — contended
// compute bursts, sleeps, closure timers, and cancels — and returns the
// observable fire order. Identical across engines iff the engines fire
// events in the same global (at, seq) order.
func shardProgram(e *Engine) []int {
	var order []int
	rng := NewRNG(99)
	const nProcs = 24
	ps := make([]*Proc, nProcs)
	for i := 0; i < nProcs; i++ {
		i := i
		ps[i] = e.Spawn(fmt.Sprintf("p%d", i), Time(i%7)*Microsecond, func(p *Proc) {
			for k := 0; k < 6; k++ {
				p.Compute(Time(50+(i+k)%300) * Microsecond)
				order = append(order, i*100+k)
				p.Sleep(Time((i*k)%900) * Microsecond)
			}
		})
	}
	// Timer churn on the global lane: closures at spread-out deadlines,
	// every third one canceled before it can fire.
	var timers []Event
	for j := 0; j < 200; j++ {
		j := j
		timers = append(timers, e.After(Time(rng.Intn(5_000_000)), func() {
			order = append(order, 10_000+j)
		}))
	}
	for j := 0; j < 200; j += 3 {
		e.Cancel(timers[j])
	}
	e.WaitAll(ps...)
	e.Run()
	return order
}

// TestShardMatchesSerialOrder is the equivalence anchor: the same
// workload on the serial engine and on sharded engines at several worker
// counts must fire in the identical global order, contended or not.
func TestShardMatchesSerialOrder(t *testing.T) {
	for _, cpus := range []int{0, 2, 4} {
		build := func(workers int) *Engine {
			e := NewEngine(5)
			if cpus > 0 {
				e.SetCPUs(cpus, Millisecond)
			}
			e.SetShardParallel(workers)
			if workers > 1 {
				// Force the worker-pool harvest path even at this small
				// population, so the race detector sees the parallel code.
				e.shard.parMin = 1
			}
			return e
		}
		want := shardProgram(build(0))
		if len(want) == 0 {
			t.Fatalf("cpus=%d: serial run fired nothing", cpus)
		}
		for _, workers := range []int{1, 2, 4} {
			got := shardProgram(build(workers))
			if len(got) != len(want) {
				t.Fatalf("cpus=%d workers=%d: fired %d events, serial fired %d",
					cpus, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cpus=%d workers=%d: order diverges at %d: got %d, serial %d",
						cpus, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardMergeTieBreak pins the loser-tree tie-break: events landing at
// the same instant from different lanes must fire in (at, seq) order —
// the order they were scheduled — exactly as the single-heap engine
// would, for every lane-count geometry.
func TestShardMergeTieBreak(t *testing.T) {
	cases := []struct {
		name     string
		cpus     int // 0 = default 8 proc lanes
		procs    int
		closures int
	}{
		{"nineLanes", 0, 12, 4}, // 1 + 8 lanes, slots wrap around
		{"threeLanes", 2, 9, 3}, // 1 + 2 lanes
		{"fiveLanes", 4, 20, 5}, // 1 + 4 lanes
		{"moreProcsThanLanes", 2, 17, 0},
		{"closuresOnly", 4, 0, 8}, // everything on the global lane
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const deadline = 3 * Millisecond
			run := func(workers int) []int {
				e := NewEngine(1)
				if tc.cpus > 0 {
					e.SetCPUs(tc.cpus, Millisecond)
				}
				e.SetShardParallel(workers)
				var order []int
				ps := make([]*Proc, tc.procs)
				for i := 0; i < tc.procs; i++ {
					i := i
					// Every proc wakes at the exact same instant; lane
					// assignment spreads them across all proc lanes.
					ps[i] = e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
						p.Sleep(deadline - p.Now())
						order = append(order, i)
					})
				}
				for j := 0; j < tc.closures; j++ {
					j := j
					e.Schedule(deadline, func() { order = append(order, 1000+j) })
				}
				e.WaitAll(ps...)
				e.Run()
				return order
			}
			want := run(0) // serial single-heap order
			if len(want) != tc.procs+tc.closures {
				t.Fatalf("serial run fired %d of %d", len(want), tc.procs+tc.closures)
			}
			for _, workers := range []int{1, 4} {
				got := run(workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: fired %d, want %d", workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: equal-deadline order diverges at %d: got %v, want %v",
							workers, i, got, want)
					}
				}
			}
		})
	}
}

// TestShardPopAllocs guards the merge hot path: once run buffers, defer
// buffers, the overlay, and the per-lane free lists are warm, the
// peek/pop/harvest cycle must allocate nothing. workers=1 keeps harvests
// inline so the measurement sees only the merge machinery.
func TestShardPopAllocs(t *testing.T) {
	e := NewEngine(1)
	e.SetCPUs(2, Millisecond)
	e.SetShardParallel(1)
	for i := 0; i < 8; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			for {
				p.Compute(Time(1+i%3) * Millisecond)
				p.Sleep(Time(200+i*37) * Microsecond)
			}
		})
	}
	e.RunUntil(200 * Millisecond) // warm buffers and free lists
	next := e.Now()
	allocs := testing.AllocsPerRun(100, func() {
		next += 10 * Millisecond
		e.RunUntil(next)
	})
	if allocs != 0 {
		t.Errorf("shard merge steady state allocs/op = %v, want 0", allocs)
	}
}

// TestShardLaneGeometry checks the lane-count rules: one lane per
// simulated CPU plus the global lane, 8 proc lanes without CPUs, and the
// serial engine's single lane restored by n <= 0.
func TestShardLaneGeometry(t *testing.T) {
	cases := []struct {
		cpus, workers, lanes, reported int
	}{
		{0, 0, 1, 0},
		{0, 2, 9, 2},
		{2, 1, 3, 1},
		{4, 4, 5, 4},
		{128, 2, maxProcLanes + 1, 2},
	}
	for _, c := range cases {
		e := NewEngine(1)
		if c.cpus > 0 {
			e.SetCPUs(c.cpus, 0)
		}
		e.SetShardParallel(c.workers)
		if got := len(e.lanes); got != c.lanes {
			t.Errorf("cpus=%d workers=%d: %d lanes, want %d", c.cpus, c.workers, got, c.lanes)
		}
		if got := e.ShardWorkers(); got != c.reported {
			t.Errorf("cpus=%d workers=%d: ShardWorkers() = %d, want %d", c.cpus, c.workers, got, c.reported)
		}
	}
}

// TestSetShardParallelAfterSchedulePanics: lane routing cannot change
// under pending events.
func TestSetShardParallelAfterSchedulePanics(t *testing.T) {
	e := NewEngine(1)
	e.After(Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Error("SetShardParallel after Schedule did not panic")
		}
	}()
	e.SetShardParallel(2)
}

// TestShardCheckpointQuiescence: a drained sharded engine checkpoints
// cleanly, and the quiescence assert fails loudly when a lane buffer or
// the overlay still holds a live event (the mid-horizon snapshot hazard).
func TestShardCheckpointQuiescence(t *testing.T) {
	build := func() *Engine {
		e := NewEngine(3)
		e.SetCPUs(2, Millisecond)
		e.SetShardParallel(2)
		ps := make([]*Proc, 6)
		for i := range ps {
			i := i
			ps[i] = e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Compute(Time(1+i) * Millisecond)
				p.Sleep(Time(i) * 100 * Microsecond)
			})
		}
		e.WaitAll(ps...)
		e.Run()
		return e
	}

	e := build()
	now, seq := e.Checkpoint() // must not panic: fully drained
	if now == 0 || seq == 0 {
		t.Fatalf("checkpoint = (%v, %d), want non-zero progress", now, seq)
	}

	mustPanic := func(name string, corrupt func(e *Engine)) {
		t.Run(name, func(t *testing.T) {
			e := build()
			corrupt(e)
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Checkpoint did not panic", name)
				}
			}()
			e.Checkpoint()
		})
	}
	mustPanic("liveEventInRunBuffer", func(e *Engine) {
		ln := &e.lanes[1]
		ln.run = append(ln.run[:0], &event{fn: func() {}})
		ln.runPos = 0
	})
	mustPanic("liveEventInDeferBuffer", func(e *Engine) {
		e.lanes[2].deferred = append(e.lanes[2].deferred, &event{fn: func() {}})
	})
	mustPanic("liveEventInOverlay", func(e *Engine) {
		e.shard.ovLive++
	})
}

// TestShardAccounting drives a contended workload and validates the lane
// accounting invariant (lanes + buffers + overlay sum to e.live) at many
// intermediate quiescent points.
func TestShardAccounting(t *testing.T) {
	e := NewEngine(11)
	e.SetCPUs(4, Millisecond)
	e.SetShardParallel(2)
	for i := 0; i < 16; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			for k := 0; k < 40; k++ {
				p.Compute(Time(100+(i*k)%700) * Microsecond)
				p.Sleep(Time((i+k)%500) * Microsecond)
			}
		})
	}
	var cancelable []Event
	for j := 0; j < 64; j++ {
		cancelable = append(cancelable, e.After(Time(j)*331*Microsecond, func() {}))
	}
	for step := Time(1); step <= 40; step++ {
		e.RunUntil(step * 700 * Microsecond)
		if step == 10 {
			for _, h := range cancelable[:32] {
				e.Cancel(h)
			}
		}
		e.shardCheck()
	}
	e.Run()
	e.shardCheck()
	if e.live != 0 {
		t.Fatalf("%d events still live after Run", e.live)
	}
}

// BenchmarkSched1MProcs runs one trial of 10⁶ short-lived processes
// contending for 4 simulated CPUs — the mega-scale target from ROADMAP
// item 1 — in waves of 32768 live processes so goroutine stacks stay
// bounded. Sub-benchmarks compare the serial engine against sharded
// lanes; on a multi-core host the shard variant overlaps lane harvests.
func BenchmarkSched1MProcs(b *testing.B) {
	const (
		total = 1_000_000
		wave  = 32_768
	)
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(1)
			e.SetCPUs(4, Millisecond)
			if workers > 0 {
				e.SetShardParallel(workers)
			}
			ps := make([]*Proc, 0, wave)
			for done := 0; done < total; {
				n := wave
				if total-done < n {
					n = total - done
				}
				ps = ps[:0]
				for j := done; j < done+n; j++ {
					j := j
					ps = append(ps, e.Spawn(fmt.Sprintf("p%d", j), Time(j%1000)*Microsecond, func(p *Proc) {
						p.Compute(Time(100+j%400) * Microsecond)
					}))
				}
				e.WaitAll(ps...)
				done += n
			}
			e.Run()
		}
		b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "procs/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, 0) })
	b.Run("shard2", func(b *testing.B) { run(b, 2) })
	b.Run("shard4", func(b *testing.B) { run(b, 4) })
}
