package ring

import (
	"container/list"
	"math/rand"
	"testing"
)

// collect walks the list front to back.
func collect(l *List[int]) []int {
	var out []int
	for h := l.Front(); h != None; h = l.Next(h) {
		out = append(out, *l.At(h))
	}
	return out
}

// collectBack walks the list back to front.
func collectBack(l *List[int]) []int {
	var out []int
	for h := l.Back(); h != None; h = l.Prev(h) {
		out = append(out, *l.At(h))
	}
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestZeroValueEmpty(t *testing.T) {
	var l List[int]
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if l.Front() != None || l.Back() != None {
		t.Fatal("Front/Back of empty list should be None")
	}
}

func TestPushRemoveOrder(t *testing.T) {
	var l List[int]
	h2 := l.PushBack(2)
	l.PushBack(3)
	l.PushFront(1)
	if got := collect(&l); !equal(got, []int{1, 2, 3}) {
		t.Fatalf("collect = %v, want [1 2 3]", got)
	}
	if got := collectBack(&l); !equal(got, []int{3, 2, 1}) {
		t.Fatalf("collectBack = %v, want [3 2 1]", got)
	}
	if v := l.Remove(h2); v != 2 {
		t.Fatalf("Remove = %d, want 2", v)
	}
	if got := collect(&l); !equal(got, []int{1, 3}) {
		t.Fatalf("after remove: %v, want [1 3]", got)
	}
}

func TestInsertBefore(t *testing.T) {
	var l List[int]
	h3 := l.PushBack(3)
	l.PushFront(1)
	h2 := l.InsertBefore(2, h3)
	if got := collect(&l); !equal(got, []int{1, 2, 3}) {
		t.Fatalf("collect = %v, want [1 2 3]", got)
	}
	l.InsertBefore(0, l.Front())
	if got := collect(&l); !equal(got, []int{0, 1, 2, 3}) {
		t.Fatalf("collect = %v, want [0 1 2 3]", got)
	}
	if *l.At(h2) != 2 {
		t.Fatalf("At(h2) = %d, want 2 (handle moved?)", *l.At(h2))
	}
}

func TestMoveToFrontBack(t *testing.T) {
	var l List[int]
	h1 := l.PushBack(1)
	l.PushBack(2)
	h3 := l.PushBack(3)
	l.MoveToFront(h3)
	if got := collect(&l); !equal(got, []int{3, 1, 2}) {
		t.Fatalf("after MoveToFront: %v", got)
	}
	l.MoveToFront(h3) // already front: no-op
	if got := collect(&l); !equal(got, []int{3, 1, 2}) {
		t.Fatalf("after no-op MoveToFront: %v", got)
	}
	l.MoveToBack(h1)
	if got := collect(&l); !equal(got, []int{3, 2, 1}) {
		t.Fatalf("after MoveToBack: %v", got)
	}
	l.MoveToBack(h1) // already back: no-op
	if got := collect(&l); !equal(got, []int{3, 2, 1}) {
		t.Fatalf("after no-op MoveToBack: %v", got)
	}
}

func TestNextCyclicWraps(t *testing.T) {
	var l List[int]
	a := l.PushBack(1)
	b := l.PushBack(2)
	if l.NextCyclic(a) != b {
		t.Fatal("NextCyclic should advance")
	}
	if l.NextCyclic(b) != a {
		t.Fatal("NextCyclic should wrap to front")
	}
	// Single element wraps to itself.
	l.Remove(b)
	if l.NextCyclic(a) != a {
		t.Fatal("NextCyclic on singleton should return itself")
	}
}

func TestSlotReuse(t *testing.T) {
	var l List[int]
	h := l.PushBack(1)
	arena := len(l.nodes)
	l.Remove(h)
	l.PushBack(2)
	if len(l.nodes) != arena {
		t.Fatalf("arena grew from %d to %d across remove+push", arena, len(l.nodes))
	}
}

func TestInit(t *testing.T) {
	var l List[string]
	l.PushBack("a")
	l.PushBack("b")
	l.Init()
	if l.Len() != 0 || l.Front() != None {
		t.Fatal("Init should empty the list")
	}
	h := l.PushBack("c")
	if *l.At(h) != "c" || l.Len() != 1 {
		t.Fatal("list unusable after Init")
	}
	if got := cap(l.nodes); got < 2 {
		t.Fatalf("Init dropped arena capacity: %d", got)
	}
}

// TestAgainstContainerList drives the same random operation sequence
// through List and container/list and checks they always agree.
func TestAgainstContainerList(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var l List[int]
	ref := list.New()
	handles := map[int]Handle{}   // value -> ring handle
	els := map[int]*list.Element{} // value -> container/list element
	var vals []int
	next := 0

	snapshot := func() []int {
		var out []int
		for e := ref.Front(); e != nil; e = e.Next() {
			out = append(out, e.Value.(int))
		}
		return out
	}
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(6); {
		case op == 0 || len(vals) == 0: // push back
			handles[next] = l.PushBack(next)
			els[next] = ref.PushBack(next)
			vals = append(vals, next)
			next++
		case op == 1: // push front
			handles[next] = l.PushFront(next)
			els[next] = ref.PushFront(next)
			vals = append(vals, next)
			next++
		case op == 2: // remove random
			i := rng.Intn(len(vals))
			v := vals[i]
			if got := l.Remove(handles[v]); got != v {
				t.Fatalf("step %d: Remove returned %d, want %d", step, got, v)
			}
			ref.Remove(els[v])
			delete(handles, v)
			delete(els, v)
			vals[i] = vals[len(vals)-1]
			vals = vals[:len(vals)-1]
		case op == 3: // move to front
			v := vals[rng.Intn(len(vals))]
			l.MoveToFront(handles[v])
			ref.MoveToFront(els[v])
		case op == 4: // move to back
			v := vals[rng.Intn(len(vals))]
			l.MoveToBack(handles[v])
			ref.MoveToBack(els[v])
		default: // insert before random
			v := vals[rng.Intn(len(vals))]
			handles[next] = l.InsertBefore(next, handles[v])
			els[next] = ref.InsertBefore(next, els[v])
			vals = append(vals, next)
			next++
		}
		if l.Len() != ref.Len() {
			t.Fatalf("step %d: Len = %d, ref = %d", step, l.Len(), ref.Len())
		}
		if step%97 == 0 {
			if got, want := collect(&l), snapshot(); !equal(got, want) {
				t.Fatalf("step %d: order diverged\n got %v\nwant %v", step, got, want)
			}
		}
	}
	if got, want := collect(&l), snapshot(); !equal(got, want) {
		t.Fatalf("final order diverged\n got %v\nwant %v", got, want)
	}
}

// TestSteadyStateAllocs is the package's allocation contract: once the
// arena holds the working set, remove+insert cycles and moves are free.
func TestSteadyStateAllocs(t *testing.T) {
	var l List[int]
	hs := make([]Handle, 64)
	for i := range hs {
		hs[i] = l.PushBack(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		l.MoveToFront(hs[i%64])
		v := l.Remove(hs[(i+7)%64])
		hs[(i+7)%64] = l.PushBack(v)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkMoveToFront(b *testing.B) {
	var l List[int]
	hs := make([]Handle, 1024)
	for i := range hs {
		hs[i] = l.PushBack(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.MoveToFront(hs[i%1024])
	}
}

func BenchmarkRemovePushBack(b *testing.B) {
	var l List[int]
	hs := make([]Handle, 1024)
	for i := range hs {
		hs[i] = l.PushBack(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := l.Remove(hs[i%1024])
		hs[i%1024] = l.PushBack(v)
	}
}
