// Package mac implements the Memory-based Admission Controller (Section
// 4.3): a gray-box ICL that determines how much memory is currently
// available by probing — writing one byte per page over progressively
// larger chunks in two sequential loops and timing each access — and
// that atomically identifies-and-allocates that memory so competing
// processes do not race for it.
//
// Gray-box knowledge assumed: the OS pages to disk when memory is
// overcommitted, so a page write is either fast (resident) or slow
// (allocation forced a write-back/swap, or the page itself was paged
// out). The probe loops leverage the page-replacement algorithm's own
// working-set definition: MAC observes how much memory can be accessed
// without triggering replacement.
package mac

import (
	"graybox/internal/core/probe"
	"graybox/internal/core/toolbox"
	"graybox/internal/sim"
	"graybox/internal/simos"
	"graybox/internal/telemetry"
)

// Config tunes the controller.
type Config struct {
	// InitialIncrement is the conservative first growth step (bytes).
	// Default 4 MB.
	InitialIncrement int64
	// MaxIncrement caps the doubling of the growth step (bytes).
	// Default 64 MB.
	MaxIncrement int64
	// SlowFactor scales the calibrated resident-touch time into the
	// loop-2 "significantly larger" threshold. Default 25.
	SlowFactor float64
	// AllocSlowFactor scales the calibrated zero-fill time into the
	// loop-1 "allocation went to disk" threshold. It must be tight:
	// sequential swap-out writes are cheap (the drive's track buffer
	// absorbs them), so paging can hide under a generous multiple of
	// the zero-fill cost. Default 3.
	AllocSlowFactor float64
	// ConsecutiveSlow is how many successive slow points indicate the
	// page daemon has been activated (distinguishing paging from
	// scheduling noise, Section 4.3.2). Default 3.
	ConsecutiveSlow int
	// MaxBackoffs bounds how many problem detections one GBAlloc call
	// tolerates before settling for the memory already verified. Without
	// this bound, an actively competing process and MAC can trade pages
	// back and forth (thrash) for a long time. Default 2.
	MaxBackoffs int
	// Repo, when non-nil, supplies pre-benchmarked thresholds
	// (vm.touch_resident_ns, vm.zero_fill_ns); otherwise MAC
	// self-calibrates on first contact.
	Repo *toolbox.Repository
	// RetryInterval is how long GBAllocWait sleeps between attempts.
	// Default 100 ms.
	RetryInterval sim.Time
	// SettleDelay is how long GBAlloc waits before its final
	// verification pass. A competing process whose working set MAC
	// disturbed will reclaim its pages during the delay, so memory that
	// survives the recheck is genuinely available. Default 20 ms.
	SettleDelay sim.Time
}

func (c Config) withDefaults() Config {
	if c.InitialIncrement == 0 {
		c.InitialIncrement = 4 * simos.MB
	}
	if c.MaxIncrement == 0 {
		c.MaxIncrement = 64 * simos.MB
	}
	if c.SlowFactor == 0 {
		c.SlowFactor = 25
	}
	if c.AllocSlowFactor == 0 {
		c.AllocSlowFactor = 3
	}
	if c.ConsecutiveSlow == 0 {
		c.ConsecutiveSlow = 3
	}
	if c.MaxBackoffs == 0 {
		c.MaxBackoffs = 2
	}
	if c.RetryInterval == 0 {
		c.RetryInterval = 100 * sim.Millisecond
	}
	if c.SettleDelay == 0 {
		c.SettleDelay = 20 * sim.Millisecond
	}
	return c
}

// Allocation is memory obtained through GBAlloc. The regions it holds
// are real allocations: MAC identified the memory by probing it, so
// returning it to the caller is race-free.
type Allocation struct {
	Bytes   int64
	regions []simos.MemRegion
}

// Regions exposes the underlying arenas for application use.
func (a *Allocation) Regions() []simos.MemRegion { return a.regions }

// Stats counts controller activity for overhead reporting.
// PagesProbed and ProbeTime include the calibration touches (issued
// through the same probe layer as the probe loops).
type Stats struct {
	ProbeLoops  int64
	PagesProbed int64
	Backoffs    int64
	ProbeTime   sim.Time // time spent touching pages in probe loops
	WaitTime    sim.Time // time spent sleeping for memory in GBAllocWait
}

// Controller is the MAC ICL bound to one process.
type Controller struct {
	os  *simos.OS
	cfg Config

	calibrated     bool
	touchThreshold sim.Time // loop-2 "page was not resident" threshold
	allocThreshold sim.Time // loop-1 "allocation went to disk" threshold

	// meter is the shared probe layer: every page touch MAC issues —
	// calibration and probe loops alike — is timed and billed through it.
	meter *probe.Meter

	probeLoops int64
	backoffs   int64
	waitTime   sim.Time

	// Telemetry handles (nil-safe no-ops when the system has none):
	// probe-loop and backoff activity plus admission decisions.
	telLoops    *telemetry.Counter
	telPages    *telemetry.Counter
	telBackoffs *telemetry.Counter
	telAdmits   *telemetry.Counter
	telRejects  *telemetry.Counter
}

// New creates a controller.
func New(os *simos.OS, cfg Config) *Controller {
	r := os.Telemetry()
	return &Controller{
		os: os, cfg: cfg.withDefaults(),
		meter:       probe.NewMeter(os, nil), // touches are histogrammed by the VM layer
		telLoops:    r.Counter("mac.probe_loops"),
		telPages:    r.Counter("mac.pages_probed"),
		telBackoffs: r.Counter("mac.backoffs"),
		telAdmits:   r.Counter("mac.admits"),
		telRejects:  r.Counter("mac.rejects"),
	}
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats {
	cost := c.meter.Cost()
	return Stats{
		ProbeLoops:  c.probeLoops,
		PagesProbed: cost.Probes,
		Backoffs:    c.backoffs,
		ProbeTime:   cost.Duration(),
		WaitTime:    c.waitTime,
	}
}

// ProbeCost returns the controller's accumulated page-touch cost.
func (c *Controller) ProbeCost() probe.Cost { return c.meter.Cost() }

// calibrate establishes the fast-path timings, either from the toolbox
// repository or by measuring "a few pages that are likely to be in
// memory" on first contact (Section 4.3.2).
func (c *Controller) calibrate() {
	if c.calibrated {
		return
	}
	var touch, zero sim.Time
	if c.cfg.Repo != nil {
		t, okT := c.cfg.Repo.GetDuration(toolbox.KeyTouchResidentNS)
		z, okZ := c.cfg.Repo.GetDuration(toolbox.KeyZeroFillNS)
		if okT && okZ {
			touch, zero = t, z
		}
	}
	if touch == 0 {
		// Resident-touch timing: cycle over a small warmed region with
		// adaptive repetition — stop as soon as the outlier-discarded
		// spread settles (quiescent systems settle at Min; contended ones
		// spend the full budget).
		m := c.os.MallocPages(4)
		c.os.TouchRange(m, 0, 4, true)
		pg := int64(0)
		ts, _ := c.meter.Repeat(probe.RepeatConfig{Min: 8, Max: 32, MaxRelSpread: 0.05, DiscardK: 2},
			func() error { c.os.Touch(m, pg%4, true); pg++; return nil })
		// Zero-fill timing: each touch must hit a fresh page, so the
		// budget is bounded by the scratch region.
		z := c.os.MallocPages(16)
		zpg := int64(0)
		zs, _ := c.meter.Repeat(probe.RepeatConfig{Min: 8, Max: 16, MaxRelSpread: 0.10, DiscardK: 2},
			func() error { c.os.Touch(z, zpg, true); zpg++; return nil })
		touch = ts.Estimate()
		zero = zs.Estimate()
		c.os.Free(z)
		c.os.Free(m)
	}
	if touch <= 0 {
		touch = sim.Microsecond
	}
	if zero < touch {
		zero = touch
	}
	c.touchThreshold = sim.Time(float64(touch) * c.cfg.SlowFactor)
	c.allocThreshold = sim.Time(float64(zero) * c.cfg.AllocSlowFactor)
	c.calibrated = true
}

// roundDown rounds v down to a positive multiple of m (m <= 0 means no
// rounding).
func roundDown(v, m int64) int64 {
	if m > 1 {
		v -= v % m
	}
	return v
}

// GBAlloc is the paper's gb_alloc(min, max, multiple): it returns an
// allocation of between min and max bytes (a multiple of multiple) that
// was resident-verified by probing, or ok=false when even min bytes are
// not currently available. It never blocks waiting for memory; use
// GBAllocWait for admission control.
func (c *Controller) GBAlloc(min, max, multiple int64) (*Allocation, bool) {
	if min <= 0 || max < min {
		panic("mac: GBAlloc requires 0 < min <= max")
	}
	c.os.Proc().Track().Begin("icl", "mac gb_alloc")
	defer c.os.Proc().Track().End()
	// Cost snapshot before calibration, so first-contact calibration
	// probes are billed to the call that triggered them — the audited
	// per-call costs then sum exactly to the controller's probe total.
	aud := c.os.Audit()
	cost0 := c.meter.Cost()
	c.calibrate()
	// Oracle snapshot after calibration freed its scratch pages: score
	// the admission against the memory truly available now.
	oracleBytes := aud.OracleAvailableBytes()
	pageSize := int64(c.os.PageSize())
	alloc := &Allocation{}
	increment := c.cfg.InitialIncrement
	if increment > max {
		increment = max
	}
	backoffs := 0
	for {
		step := increment
		if alloc.Bytes+step > max {
			step = max - alloc.Bytes
		}
		if step < pageSize {
			break // reached max
		}
		region := c.os.MallocPages((step + pageSize - 1) / pageSize)
		if c.probeRegion(region) && c.verify(alloc, region) {
			alloc.regions = append(alloc.regions, region)
			alloc.Bytes += step
			// Slowly double the increment, up to the fixed maximum.
			if increment < c.cfg.MaxIncrement {
				increment *= 2
				if increment > c.cfg.MaxIncrement {
					increment = c.cfg.MaxIncrement
				}
			}
			continue
		}
		// Problem detected: free the suspect chunk and back off
		// completely to the original increment (Section 4.3.2).
		c.os.Free(region)
		c.backoffs++
		c.telBackoffs.Inc()
		backoffs++
		if increment == c.cfg.InitialIncrement || backoffs >= c.cfg.MaxBackoffs {
			break // cannot grow even conservatively
		}
		increment = c.cfg.InitialIncrement
	}

	// Settle, then re-verify the whole allocation: if a competitor's
	// working set reclaims what we probed, the memory was never really
	// available. The contested frontier is the most recently grown
	// region, so on failure shrink from the tail and settle again
	// rather than giving everything back.
	for len(alloc.regions) > 0 {
		c.os.Sleep(c.cfg.SettleDelay)
		if c.verifyRegions(alloc.regions) {
			break
		}
		c.backoffs++
		c.telBackoffs.Inc()
		last := alloc.regions[len(alloc.regions)-1]
		alloc.regions = alloc.regions[:len(alloc.regions)-1]
		alloc.Bytes -= last.Pages() * int64(c.os.PageSize())
		c.os.Free(last)
	}
	got := roundDown(alloc.Bytes, multiple)
	if got < min {
		c.free(alloc)
		c.telRejects.Inc()
		c.os.Proc().Track().Instant("icl", "mac reject")
		delta := c.meter.Cost().Sub(cost0)
		aud.MACAlloc(oracleBytes, min, max, 0, false, delta.Probes, delta.NS)
		return nil, false
	}
	c.telAdmits.Inc()
	c.os.Proc().Track().Instant("icl", "mac admit")
	delta := c.meter.Cost().Sub(cost0)
	aud.MACAlloc(oracleBytes, min, max, got, true, delta.Probes, delta.NS)
	// Trim any rounding slack by returning whole regions where possible.
	// (Slack below one region is kept; the caller sees Bytes = got.)
	alloc.Bytes = got
	return alloc, true
}

// GBAllocWait retries GBAlloc until it succeeds or maxWait elapses
// (maxWait <= 0 waits forever). This is the admission-control entry
// point: the process is "forced to wait until sufficient memory is
// available".
func (c *Controller) GBAllocWait(min, max, multiple int64, maxWait sim.Time) (*Allocation, bool) {
	deadline := c.os.Now() + maxWait
	for {
		if a, ok := c.GBAlloc(min, max, multiple); ok {
			return a, true
		}
		if maxWait > 0 && c.os.Now()+c.cfg.RetryInterval > deadline {
			return nil, false
		}
		start := c.os.Now()
		c.os.Sleep(c.cfg.RetryInterval)
		c.waitTime += c.os.Now() - start
	}
}

// GBFree releases an allocation.
func (c *Controller) GBFree(a *Allocation) { c.free(a) }

func (c *Controller) free(a *Allocation) {
	for _, r := range a.regions {
		c.os.Free(r)
	}
	a.regions = nil
	a.Bytes = 0
}

// probeRegion is the first loop: write one byte per page, watching for
// several slow points in near succession (the shared probe.SlowBurst
// detector), which mean growing our working set activated the page
// daemon. On suspicion it stops early (the caller then runs the
// verification loop).
func (c *Controller) probeRegion(m simos.MemRegion) bool {
	cost0 := c.meter.Cost()
	c.os.Proc().Track().Begin("icl", "mac probe loop")
	defer func() {
		c.telPages.Add(c.meter.Cost().Sub(cost0).Probes)
		c.os.Proc().Track().End()
	}()
	c.probeLoops++
	c.telLoops.Inc()
	det := probe.NewSlowBurst(c.cfg.ConsecutiveSlow)
	for pg := int64(0); pg < m.Pages(); pg++ {
		start := c.meter.Begin()
		c.os.Touch(m, pg, true)
		if det.Add(c.meter.End(start) > c.allocThreshold) {
			return false // suspicious; verification will decide
		}
	}
	return det.Ok()
}

// verify is the second loop: re-touch every page of the whole allocation
// (previous regions and the new one). If everything is still resident —
// all touches fast — the chunk fits in available memory.
func (c *Controller) verify(alloc *Allocation, fresh simos.MemRegion) bool {
	regions := append(append([]simos.MemRegion(nil), alloc.regions...), fresh)
	return c.verifyRegions(regions)
}

func (c *Controller) verifyRegions(regions []simos.MemRegion) bool {
	cost0 := c.meter.Cost()
	c.os.Proc().Track().Begin("icl", "mac verify loop")
	defer func() {
		c.telPages.Add(c.meter.Cost().Sub(cost0).Probes)
		c.os.Proc().Track().End()
	}()
	c.probeLoops++
	c.telLoops.Inc()
	det := probe.NewSlowBurst(c.cfg.ConsecutiveSlow)
	for _, m := range regions {
		for pg := int64(0); pg < m.Pages(); pg++ {
			start := c.meter.Begin()
			c.os.Touch(m, pg, true)
			if det.Add(c.meter.End(start) > c.touchThreshold) {
				return false
			}
		}
	}
	return det.Ok()
}
