package fldc

import (
	"fmt"
	"reflect"
	"testing"

	"graybox/internal/core/fccd"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

func newSys() *simos.System {
	return simos.New(simos.Config{
		Personality: simos.Linux22, MemoryMB: 64, KernelMB: 8, CacheFloorMB: 1,
	})
}

// makeFiles creates n files of size bytes in dir and returns their paths
// in creation order.
func makeFiles(t *testing.T, os *simos.OS, dir string, n int, size int64) []string {
	t.Helper()
	if err := os.Mkdir(dir); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("%s/f%03d", dir, i)
		fd, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if size > 0 {
			if err := fd.Write(0, size); err != nil {
				t.Fatal(err)
			}
		}
		paths[i] = p
	}
	return paths
}

func TestOrderByINumberRecoversCreationOrder(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		paths := makeFiles(t, os, "d", 10, 4096)
		// Shuffle.
		shuffled := append([]string(nil), paths...)
		rng := sim.NewRNG(5)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		l := New(os)
		got, err := l.OrderByINumber(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, paths) {
			t.Errorf("order = %v, want creation order", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOrderByDirectoryGroups(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		l := New(os)
		in := []string{"a/1", "b/1", "a/2", "b/2", "a/3"}
		got := l.OrderByDirectory(in)
		want := []string{"a/1", "a/2", "a/3", "b/1", "b/2"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("order = %v, want %v", got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestINumberOrderReadsFasterThanRandom(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		paths := makeFiles(t, os, "d", 60, 8192)
		l := New(os)
		readAll := func(order []string) sim.Time {
			s.DropCaches()
			start := os.Now()
			for _, p := range order {
				fd, err := os.Open(p)
				if err != nil {
					t.Fatal(err)
				}
				fd.Read(0, fd.Size())
			}
			return os.Now() - start
		}
		random := append([]string(nil), paths...)
		sim.NewRNG(11).Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })
		tRandom := readAll(random)
		ordered, err := l.OrderByINumber(random)
		if err != nil {
			t.Fatal(err)
		}
		tOrdered := readAll(ordered)
		if tOrdered*2 > tRandom {
			t.Errorf("i-number order %v not much faster than random %v", tOrdered, tRandom)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefreshRestoresLayoutCorrelation(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		makeFiles(t, os, "d", 40, 8192)
		// Age: delete and recreate with varied sizes.
		rng := sim.NewRNG(17)
		for epoch := 0; epoch < 10; epoch++ {
			names, _ := os.Readdir("d")
			for k := 0; k < 3; k++ {
				victim := names[rng.Intn(len(names))]
				if err := os.Unlink("d/" + victim); err != nil {
					continue // may repeat a victim; skip
				}
				fd, err := os.Create(fmt.Sprintf("d/new%02d_%d", epoch, k))
				if err != nil {
					t.Fatal(err)
				}
				fd.Write(0, int64(rng.Intn(4)+1)*4096)
			}
		}
		l := New(os)
		if err := l.Refresh("d", BySize); err != nil {
			t.Fatal(err)
		}
		// After refresh, i-number order must match layout order exactly.
		names, _ := os.Readdir("d")
		ordered, err := l.OrderByINumber(prefixAll("d/", names))
		if err != nil {
			t.Fatal(err)
		}
		var lastStart int64 = -1
		for _, p := range ordered {
			blocks, err := s.FS(0).BlocksOf(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(blocks) == 0 {
				continue
			}
			if blocks[0] <= lastStart {
				t.Fatalf("after refresh, %s at block %d out of order (prev %d)", p, blocks[0], lastStart)
			}
			lastStart = blocks[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func prefixAll(prefix string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = prefix + n
	}
	return out
}

func TestRefreshPreservesContentsAndTimes(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		makeFiles(t, os, "d", 5, 3*4096)
		before := map[string]struct {
			size  int64
			mtime sim.Time
		}{}
		names, _ := os.Readdir("d")
		for _, n := range names {
			st, _ := os.Stat("d/" + n)
			before[n] = struct {
				size  int64
				mtime sim.Time
			}{st.Size, st.Mtime}
		}
		l := New(os)
		if err := l.Refresh("d", BySize); err != nil {
			t.Fatal(err)
		}
		after, _ := os.Readdir("d")
		if len(after) != len(names) {
			t.Fatalf("file count changed: %d -> %d", len(names), len(after))
		}
		for _, n := range after {
			st, err := os.Stat("d/" + n)
			if err != nil {
				t.Fatal(err)
			}
			want := before[n]
			if st.Size != want.size {
				t.Errorf("%s size %d -> %d", n, want.size, st.Size)
			}
			if st.Mtime != want.mtime {
				t.Errorf("%s mtime changed (%v -> %v): make(1) would rebuild", n, want.mtime, st.Mtime)
			}
		}
		// The temporary directory is gone.
		if _, err := os.Readdir("d.gbrefresh"); err == nil {
			t.Error("refresh left its temporary directory behind")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefreshBySizePutsSmallFilesFirst(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		os.Mkdir("d")
		sizes := map[string]int64{"big": 20 * 4096, "small": 4096, "mid": 5 * 4096}
		for n, sz := range sizes {
			fd, _ := os.Create("d/" + n)
			fd.Write(0, sz)
		}
		l := New(os)
		if err := l.Refresh("d", BySize); err != nil {
			t.Fatal(err)
		}
		stSmall, _ := os.Stat("d/small")
		stMid, _ := os.Stat("d/mid")
		stBig, _ := os.Stat("d/big")
		if !(stSmall.Ino < stMid.Ino && stMid.Ino < stBig.Ino) {
			t.Errorf("i-numbers not size-ordered: small=%d mid=%d big=%d",
				stSmall.Ino, stMid.Ino, stBig.Ino)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComposeWithFCCDCachedGroupFirst(t *testing.T) {
	s := newSys()
	err := s.Run("t", func(os *simos.OS) {
		paths := makeFiles(t, os, "d", 8, 2<<20)
		s.DropCaches()
		// Warm files 5 and 2 (out of i-number order on purpose).
		for _, i := range []int{5, 2} {
			fd, _ := os.Open(paths[i])
			fd.Read(0, fd.Size())
		}
		l := New(os)
		det := fccd.New(os, fccd.Config{AccessUnit: 2 << 20, PredictionUnit: 1 << 20, Seed: 9})
		got, err := l.ComposeWithFCCD(det, paths)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(paths) {
			t.Fatalf("lost files: %v", got)
		}
		// First two: the cached files, i-number order => f002 then f005.
		if got[0] != "d/f002" || got[1] != "d/f005" {
			t.Errorf("cached group = %v, %v; want d/f002, d/f005", got[0], got[1])
		}
		// Rest: on-disk files in i-number (creation) order.
		wantRest := []string{"d/f000", "d/f001", "d/f003", "d/f004", "d/f006", "d/f007"}
		if !reflect.DeepEqual(got[2:], wantRest) {
			t.Errorf("disk group = %v, want %v", got[2:], wantRest)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
