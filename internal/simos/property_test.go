package simos

import (
	"fmt"
	"testing"
	"testing/quick"

	"graybox/internal/sim"
)

// TestMemoryConservationProperty: under random sequences of file and
// memory operations, frame accounting must always balance — the pool
// never overcommits, cache + anon + free == capacity for unified
// personalities, and dropping caches returns every cache frame.
func TestMemoryConservationProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []uint8) bool {
		if len(opsRaw) > 60 {
			opsRaw = opsRaw[:60]
		}
		s := New(Config{Personality: Linux22, MemoryMB: 24, KernelMB: 8, CacheFloorMB: 1, Seed: seed})
		balanced := true
		check := func() {
			free := s.Pool.Free()
			cachePages := s.Cache.Held()
			anon := s.VM.Held()
			if free+cachePages+anon != s.Pool.Capacity() {
				balanced = false
			}
			if free < 0 || s.Pool.Used() > s.Pool.Capacity() {
				balanced = false
			}
		}
		err := s.Run("t", func(os *OS) {
			rng := sim.NewRNG(seed + 1)
			var regions []MemRegion
			nfiles := 0
			for _, op := range opsRaw {
				switch op % 5 {
				case 0: // create + write a file
					fd, err := os.Create(fmt.Sprintf("f%03d", nfiles))
					if err == nil {
						fd.Write(0, int64(rng.Intn(256)+1)*4096)
						nfiles++
					}
				case 1: // read a random existing file
					if nfiles > 0 {
						fd, err := os.Open(fmt.Sprintf("f%03d", rng.Intn(nfiles)))
						if err == nil {
							fd.Read(0, fd.Size())
						}
					}
				case 2: // malloc + touch
					m := os.Malloc(int64(rng.Intn(512)+1) * 4096)
					os.TouchRange(m, 0, m.Pages(), true)
					regions = append(regions, m)
				case 3: // free something
					if len(regions) > 0 {
						i := rng.Intn(len(regions))
						os.Free(regions[i])
						regions = append(regions[:i], regions[i+1:]...)
					}
				case 4: // drop caches
					s.DropCaches()
				}
				check()
			}
			for _, m := range regions {
				os.Free(m)
			}
			check()
		})
		if err != nil {
			return false
		}
		s.DropCaches()
		// After process exit (space released) and cache drop, only the
		// inode-table pages dropped with the cache: pool must be empty.
		if s.Pool.Used() != 0 {
			return false
		}
		return balanced
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFreeSpaceConservationProperty: random create/write/delete cycles
// must return the file system to its initial free-space level once all
// files are unlinked.
func TestFreeSpaceConservationProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []uint8) bool {
		if len(opsRaw) > 40 {
			opsRaw = opsRaw[:40]
		}
		s := New(Config{Personality: Linux22, MemoryMB: 24, KernelMB: 8, CacheFloorMB: 1})
		free0 := s.FS(0).FreeSpace()
		okAll := true
		err := s.Run("t", func(os *OS) {
			rng := sim.NewRNG(seed)
			live := []string{}
			n := 0
			for _, op := range opsRaw {
				if op%3 == 0 && len(live) > 0 {
					i := rng.Intn(len(live))
					if err := os.Unlink(live[i]); err != nil {
						okAll = false
						return
					}
					live = append(live[:i], live[i+1:]...)
					continue
				}
				path := fmt.Sprintf("g%04d", n)
				n++
				fd, err := os.Create(path)
				if err != nil {
					okAll = false
					return
				}
				if err := fd.Write(0, int64(rng.Intn(64)+1)*4096); err != nil {
					okAll = false
					return
				}
				live = append(live, path)
			}
			for _, path := range live {
				if err := os.Unlink(path); err != nil {
					okAll = false
					return
				}
			}
		})
		return err == nil && okAll && s.FS(0).FreeSpace() == free0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
