package experiments

import "sync"

// Runner produces one experiment's table at a given scale.
type Runner struct {
	ID    string
	Title string
	Run   func(sc Scale) *Table
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Techniques in existing gray-box systems", func(sc Scale) *Table {
			return Table1()
		}},
		{"table2", "Techniques in the case studies", func(sc Scale) *Table {
			return Table2()
		}},
		{"fig1", "Probe correlation", func(sc Scale) *Table {
			return Fig1(Fig1Config{Scale: sc})
		}},
		{"fig2", "Single-file scan", func(sc Scale) *Table {
			return Fig2(Fig2Config{Scale: sc})
		}},
		{"fig3", "Application performance (grep, fastsort)", func(sc Scale) *Table {
			return Fig3(Fig3Config{Scale: sc})
		}},
		{"fig4", "Multi-platform scan and search", func(sc Scale) *Table {
			return Fig4(Fig4Config{Scale: sc})
		}},
		{"fig5", "File ordering matters", func(sc Scale) *Table {
			return Fig5(Fig5Config{Scale: sc})
		}},
		{"fig6", "Aging and refresh", func(sc Scale) *Table {
			return Fig6(Fig6Config{Scale: sc})
		}},
		{"fig7", "Competing sorts with MAC", func(sc Scale) *Table {
			return Fig7(Fig7Config{Scale: sc})
		}},
		{"mac-accuracy", "MAC accuracy sweep", func(sc Scale) *Table {
			return MACAccuracy(MACAccuracyConfig{Scale: sc})
		}},
		{"priorart-sweeps", "Parameter sweeps over Table 1 systems", func(sc Scale) *Table {
			return PriorArtSweeps()
		}},
		{"noise", "ICL accuracy under competing workload traffic", func(sc Scale) *Table {
			return Noise(NoiseConfig{Scale: sc})
		}},
		{"stash", "Second-level stash tier: gray-box vs naive admission", func(sc Scale) *Table {
			return Stash(StashConfig{Scale: sc})
		}},
		{"slo", "SLO violations under load: gray-box vs naive admission", func(sc Scale) *Table {
			return Slo(SloConfig{Scale: sc})
		}},
	}
}

// byID is built once from All; Runner values are stateless (ID, title and
// a pure function), so the map can be shared by concurrent resolvers.
var (
	byIDOnce sync.Once
	byID     map[string]Runner
)

// ByID returns the runner with the given ID, or nil. It is safe for
// concurrent use and costs one map lookup (the registry is indexed once,
// not re-sliced per call).
func ByID(id string) *Runner {
	byIDOnce.Do(func() {
		all := All()
		byID = make(map[string]Runner, len(all))
		for _, r := range all {
			byID[r.ID] = r
		}
	})
	if r, ok := byID[id]; ok {
		return &r
	}
	return nil
}
