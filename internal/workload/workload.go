// Package workload provides composable, seed-deterministic background
// traffic generators for the simulator. Every experiment before this
// package measured the ICLs against a quiescent system; the paper's own
// caveat — and the page-cache side-channel literature after it — is
// that competing traffic perturbs timed probes. A Mix spawns generators
// as concurrent simos processes so the file cache, disks, and memory
// are genuinely contended while an ICL runs.
//
// Determinism contract:
//
//   - Every generator draws randomness from its own sim RNG stream,
//     derived from the mix seed and the generator's NAME (not its Add
//     position), so adding a generator never reshuffles another's
//     sequence and permuting the start order changes nothing.
//   - Generators make the same k-th decision regardless of timing: the
//     draw sequence depends only on the stream, never on observed
//     latencies, so contention changes how far a generator gets, not
//     which requests it issues. A bounded trace of the draws is kept
//     for the determinism tests.
package workload

import (
	"fmt"

	"graybox/internal/sim"
	"graybox/internal/simos"
)

// A Generator produces one kind of background traffic.
type Generator interface {
	// Name identifies the generator within a Mix (must be unique). The
	// generator's RNG stream is derived from it, so a stable name means
	// a stable sequence.
	Name() string
	// Prepare creates the generator's on-disk fixtures through the
	// harness-side instant builders (no virtual time passes).
	Prepare(s *simos.System) error
	// Run drives traffic until ctx.Stopped() reports true. It executes
	// as one simos process; all randomness must come from ctx.
	Run(ctx *Ctx)
}

// Mix is a set of generators sharing a seed and an intensity knob.
type Mix struct {
	seed      uint64
	intensity float64
	gens      []Generator
	ctxs      map[string]*Ctx
	stopped   bool
	procs     []*sim.Proc
	started   bool
}

// NewMix creates a mix. intensity in [0, 1] scales every generator's
// duty cycle (and the hog's working set); 0 disables the mix entirely
// (Start spawns nothing), letting sweeps include a quiescent point.
func NewMix(seed uint64, intensity float64) *Mix {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	return &Mix{seed: seed, intensity: intensity, ctxs: make(map[string]*Ctx)}
}

// Intensity returns the mix's intensity.
func (m *Mix) Intensity() float64 { return m.intensity }

// Add registers generators. It panics on a duplicate name: the name
// keys the RNG stream, so a collision would silently correlate two
// generators.
func (m *Mix) Add(gens ...Generator) *Mix {
	for _, g := range gens {
		for _, have := range m.gens {
			if have.Name() == g.Name() {
				panic(fmt.Sprintf("workload: duplicate generator name %q", g.Name()))
			}
		}
		m.gens = append(m.gens, g)
	}
	return m
}

// Start prepares every generator's fixtures and spawns one simos
// process per generator (none at intensity 0). The returned procs are
// also tracked internally; callers normally let Drain await them.
func (m *Mix) Start(s *simos.System) ([]*sim.Proc, error) {
	if m.started {
		return nil, fmt.Errorf("workload: mix already started")
	}
	m.started = true
	if m.intensity == 0 {
		return nil, nil
	}
	for _, g := range m.gens {
		if err := g.Prepare(s); err != nil {
			return nil, fmt.Errorf("workload: prepare %s: %w", g.Name(), err)
		}
	}
	var started []*sim.Proc
	for _, g := range m.gens {
		g := g
		ctx := &Ctx{
			mix:       m,
			rng:       sim.NewRNG(deriveSeed(m.seed, g.Name())),
			intensity: m.intensity,
		}
		m.ctxs[g.Name()] = ctx
		p := s.Spawn("wl."+g.Name(), 0, func(os *simos.OS) {
			ctx.os = os
			g.Run(ctx)
		})
		m.procs = append(m.procs, p)
		started = append(started, p)
	}
	return started, nil
}

// Stop asks every generator (and any request processes they spawned) to
// wind down at its next poll. Call between engine waits, then Drain.
func (m *Mix) Stop() { m.stopped = true }

// Drain runs the engine until every generator process — including
// request processes spawned after Start — has finished. Call after
// Stop.
func (m *Mix) Drain(s *simos.System) {
	for {
		n := len(m.procs)
		s.Engine.WaitAll(m.procs...)
		if len(m.procs) == n {
			return
		}
	}
}

// RunFor starts the mix, lets it run for d of virtual time, then stops
// and drains it — the shape the determinism tests use.
func (m *Mix) RunFor(s *simos.System, d sim.Time) error {
	if _, err := m.Start(s); err != nil {
		return err
	}
	stopper := s.Engine.Spawn("wl.stop", d, func(p *sim.Proc) { m.Stop() })
	s.Engine.WaitAll(stopper)
	m.Drain(s)
	return nil
}

// Trace returns the recorded prefix of a generator's random draws (at
// most traceCap values). Under a fixed seed the k-th draw is the same
// whatever else runs, so one trace must be a prefix of the other across
// start-order permutations and generator additions.
func (m *Mix) Trace(name string) []uint64 {
	if c, ok := m.ctxs[name]; ok {
		return c.trace
	}
	return nil
}

// Draws returns how many random draws a generator has made.
func (m *Mix) Draws(name string) int64 {
	if c, ok := m.ctxs[name]; ok {
		return c.draws
	}
	return 0
}

// deriveSeed maps (mix seed, generator name) to an RNG seed using an
// FNV-1a hash of the name pushed through a splitmix64 finalizer. Only
// the seed and the name enter, so streams are stable under both start
// order permutation and the addition of other generators.
func deriveSeed(seed uint64, name string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211 // FNV-1a prime
	}
	z := seed + 0x9e3779b97f4a7c15 + h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// traceCap bounds the per-generator draw trace kept for tests.
const traceCap = 512

// Ctx is a generator's runtime context: its process, its private RNG
// stream, and the stop signal.
type Ctx struct {
	os        *simos.OS
	mix       *Mix
	rng       *sim.RNG
	intensity float64
	trace     []uint64
	draws     int64
}

// OS returns the generator's process facade.
func (c *Ctx) OS() *simos.OS { return c.os }

// Stopped reports whether the mix has been stopped.
func (c *Ctx) Stopped() bool { return c.mix.stopped }

// Intensity returns the mix intensity in (0, 1].
func (c *Ctx) Intensity() float64 { return c.intensity }

func (c *Ctx) record(v uint64) {
	c.draws++
	if len(c.trace) < traceCap {
		c.trace = append(c.trace, v)
	}
}

// Int63n draws from the generator's stream (recorded for determinism
// tests).
func (c *Ctx) Int63n(n int64) int64 {
	v := c.rng.Int63n(n)
	c.record(uint64(v))
	return v
}

// Float64 draws from the generator's stream in [0, 1).
func (c *Ctx) Float64() float64 {
	v := c.rng.Float64()
	c.record(uint64(v * (1 << 53)))
	return v
}

// Idle sleeps long enough that busy work occupies roughly an intensity
// fraction of the generator's time: busy*(1-i)/i. At intensity 1 it
// returns immediately (full pressure).
func (c *Ctx) Idle(busy sim.Time) {
	i := c.intensity
	if i >= 1 || busy <= 0 {
		return
	}
	c.os.Sleep(sim.Time(float64(busy) * (1 - i) / i))
}

// Spawn launches a helper process (an open-loop request, say) tracked
// by the mix so Drain awaits it too.
func (c *Ctx) Spawn(name string, body func(os *simos.OS)) {
	p := c.os.System().Spawn(name, 0, body)
	c.mix.procs = append(c.mix.procs, p)
}
