package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cellFloat parses a numeric table cell ("0.42", "3.21±0.02", "12MB",
// "1.50ms", "930.21us", "4.003s").
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := cell
	if i := strings.IndexRune(s, '±'); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSuffix(s, "MB")
	s = strings.TrimSuffix(s, "KB")
	// Convert durations to seconds for comparability.
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ns"):
		s, mult = s[:len(s)-2], 1e-9
	case strings.HasSuffix(s, "us"):
		s, mult = s[:len(s)-2], 1e-6
	case strings.HasSuffix(s, "ms"):
		s, mult = s[:len(s)-2], 1e-3
	case strings.HasSuffix(s, "s"):
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v * mult
}

// findRow returns the first row whose leading cells match prefix.
func findRow(t *testing.T, tab *Table, prefix ...string) []string {
	t.Helper()
	for _, row := range tab.Rows {
		ok := len(row) >= len(prefix)
		for i := range prefix {
			if ok && row[i] != prefix[i] {
				ok = false
			}
		}
		if ok {
			return row
		}
	}
	t.Fatalf("%s: no row with prefix %v\n%s", tab.ID, prefix, tab)
	return nil
}

func TestTablesRender(t *testing.T) {
	for _, tab := range []*Table{Table1(), Table2()} {
		if len(tab.Rows) != 7 {
			t.Errorf("%s has %d rows, want 7", tab.ID, len(tab.Rows))
		}
		if s := tab.String(); !strings.Contains(s, tab.Title) {
			t.Errorf("%s text render missing title", tab.ID)
		}
		if md := tab.Markdown(); !strings.Contains(md, "| --- |") {
			t.Errorf("%s markdown render malformed", tab.ID)
		}
	}
}

func TestFig1CorrelationShape(t *testing.T) {
	sc := QuickScale()
	tab := Fig1(Fig1Config{
		Scale:             sc,
		AccessUnitsMB:     []float64{14, 140},           // ~1 MB and ~10 MB at quick scale
		PredictionUnitsMB: []float64{3.5, 14, 140, 280}, // 256KB .. 20MB
	})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d\n%s", len(tab.Rows), tab)
	}
	// For the large access unit (column 2), small prediction units must
	// correlate strongly...
	smallPU := cellFloat(t, tab.Rows[0][2])
	if smallPU < 0.7 {
		t.Errorf("correlation at small PU / large AU = %v, want high\n%s", smallPU, tab)
	}
	// ...and correlation must fall once the prediction unit far exceeds
	// the small access unit (column 1).
	bigPUsmallAU := cellFloat(t, tab.Rows[3][1])
	smallPUsmallAU := cellFloat(t, tab.Rows[0][1])
	if bigPUsmallAU >= smallPUsmallAU {
		t.Errorf("correlation did not fall with oversized PU: %v -> %v\n%s",
			smallPUsmallAU, bigPUsmallAU, tab)
	}
}

func TestFig2ScanShape(t *testing.T) {
	tab := Fig2(Fig2Config{Scale: QuickScale()})
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	// Small file (fits in cache): warm linear scan is fast (near ideal,
	// far from worst).
	linSmall := cellFloat(t, first[1])
	worstSmall := cellFloat(t, first[3])
	if linSmall > worstSmall/3 {
		t.Errorf("in-cache linear scan %v not well below worst model %v\n%s", linSmall, worstSmall, tab)
	}
	// Large file (beyond cache): linear collapses toward worst; gray-box
	// stays much faster and near the ideal model. The advantage peaks
	// just past the cache size and narrows as the file grows (I/O
	// dominates both), so check the peak ratio across rows.
	linBig := cellFloat(t, last[1])
	gbBig := cellFloat(t, last[2])
	worstBig := cellFloat(t, last[3])
	idealBig := cellFloat(t, last[4])
	if linBig < worstBig*0.6 {
		t.Errorf("beyond-cache linear scan %v, want near worst model %v\n%s", linBig, worstBig, tab)
	}
	if gbBig >= linBig {
		t.Errorf("gray-box scan %v not faster than linear %v\n%s", gbBig, linBig, tab)
	}
	if gbBig > idealBig*3 {
		t.Errorf("gray-box scan %v far from ideal model %v\n%s", gbBig, idealBig, tab)
	}
	best := 0.0
	for _, row := range tab.Rows {
		if r := cellFloat(t, row[1]) / cellFloat(t, row[2]); r > best {
			best = r
		}
	}
	if best < 2 {
		t.Errorf("peak linear/gray-box ratio %v, want >= 2 just past the cache size\n%s", best, tab)
	}
}

func TestFig3ApplicationShape(t *testing.T) {
	tab := Fig3(Fig3Config{Scale: QuickScale()})
	gbGrep := cellFloat(t, findRow(t, tab, "grep", "gb-grep")[3])
	pipeGrep := cellFloat(t, findRow(t, tab, "grep", "gbp|grep")[3])
	if gbGrep > 0.6 {
		t.Errorf("gb-grep normalized %v, want well below 1\n%s", gbGrep, tab)
	}
	if pipeGrep < gbGrep {
		t.Errorf("gbp|grep %v cheaper than gb-grep %v\n%s", pipeGrep, gbGrep, tab)
	}
	if pipeGrep > 1 {
		t.Errorf("gbp|grep %v lost all benefit\n%s", pipeGrep, tab)
	}
	gbSort := cellFloat(t, findRow(t, tab, "fastsort(read)", "gb-fastsort")[3])
	if gbSort >= 1 {
		t.Errorf("gb-fastsort normalized %v, want < 1\n%s", gbSort, tab)
	}
	// The paper: sort benefit smaller than grep benefit.
	if gbSort < gbGrep/4 {
		t.Errorf("sort benefit (%v) implausibly larger than grep's (%v)\n%s", gbSort, gbGrep, tab)
	}
}

func TestFig4MultiPlatformShape(t *testing.T) {
	tab := Fig4(Fig4Config{Scale: QuickScale()})
	var linuxScan, solarisScan, linuxSearch []string
	for _, row := range tab.Rows {
		switch {
		case row[0] == "linux22" && strings.HasPrefix(row[1], "scan"):
			linuxScan = row
		case row[0] == "solaris7" && strings.HasPrefix(row[1], "scan"):
			solarisScan = row
		case row[0] == "linux22" && strings.HasPrefix(row[1], "search"):
			linuxSearch = row
		}
	}
	// Linux: warm scan ~ cold (LRU), gray-box clearly better.
	if v := cellFloat(t, linuxScan[5]); v < 0.8 {
		t.Errorf("linux warm/cold = %v, want ~1 (LRU worst case)\n%s", v, tab)
	}
	if v := cellFloat(t, linuxScan[6]); v > 0.6 {
		t.Errorf("linux gb/cold = %v, want clear win\n%s", v, tab)
	}
	// Solaris: warm scans fast even unmodified (hold-first cache).
	if v := cellFloat(t, solarisScan[5]); v > 0.7 {
		t.Errorf("solaris warm/cold = %v, want low (scan-resistant cache)\n%s", v, tab)
	}
	// Search: gray-box finds the cached match immediately.
	if v := cellFloat(t, linuxSearch[6]); v > 0.2 {
		t.Errorf("linux search gb/cold = %v, want tiny\n%s", v, tab)
	}
	if v := cellFloat(t, linuxSearch[5]); v < 0.8 {
		t.Errorf("linux search warm/cold = %v, want ~1 (no benefit without gray-box)\n%s", v, tab)
	}
}

func TestFig5OrderingShape(t *testing.T) {
	tab := Fig5(Fig5Config{Scale: QuickScale()})
	for _, row := range tab.Rows {
		dirRatio := cellFloat(t, row[4])
		inoRatio := cellFloat(t, row[5])
		if dirRatio >= 1.05 {
			t.Errorf("%s: dir sort ratio %v, want <= ~1\n%s", row[0], dirRatio, tab)
		}
		if inoRatio > 0.5 {
			t.Errorf("%s: i-number ratio %v, want large win\n%s", row[0], inoRatio, tab)
		}
		if inoRatio >= dirRatio {
			t.Errorf("%s: i-number sort (%v) not better than dir sort (%v)\n%s", row[0], inoRatio, dirRatio, tab)
		}
	}
}

func TestFig6AgingShape(t *testing.T) {
	tab := Fig6(Fig6Config{Scale: QuickScale(), Epochs: 14, RefreshAt: 11, ReportEvery: 5})
	fresh := cellFloat(t, findRow(t, tab, "0")[3])
	aged := cellFloat(t, findRow(t, tab, "10")[3])
	refreshed := cellFloat(t, findRow(t, tab, "11")[3])
	if aged <= fresh {
		t.Errorf("aging did not degrade i-number ordering: %v -> %v\n%s", fresh, aged, tab)
	}
	if aged >= 1 {
		t.Errorf("aged i-number order %v, should still beat random\n%s", aged, tab)
	}
	if refreshed > fresh*1.5 {
		t.Errorf("refresh did not restore performance: fresh %v, refreshed %v\n%s", fresh, refreshed, tab)
	}
}

func TestFig7SortShape(t *testing.T) {
	sc := QuickScale()
	tab := Fig7(Fig7Config{Scale: sc, StaticPassMB: []float64{50, 150, 250}})
	small := cellFloat(t, tab.Rows[0][1])
	big := cellFloat(t, tab.Rows[2][1])
	macRow := tab.Rows[len(tab.Rows)-1]
	macTime := cellFloat(t, macRow[1])
	if big < small*1.5 {
		t.Errorf("oversized static pass %v not clearly slower than small %v\n%s", big, small, tab)
	}
	if macTime > big {
		t.Errorf("gb-fastsort %v slower than the thrashing static config %v\n%s", macTime, big, tab)
	}
	// MAC's probing may swap a little during contention, but orders of
	// magnitude less than the thrashing static configuration.
	macSwaps := cellFloat(t, macRow[7])
	bigSwaps := cellFloat(t, tab.Rows[2][7])
	if bigSwaps < 1000 {
		t.Errorf("oversized static config barely paged (%v swap-outs)\n%s", bigSwaps, tab)
	}
	if macSwaps > bigSwaps/20 {
		t.Errorf("gb-fastsort paged heavily: %v swap-outs vs static's %v\n%s", macSwaps, bigSwaps, tab)
	}
	if overhead := cellFloat(t, macRow[6]); overhead <= 0 {
		t.Errorf("gb-fastsort reports no overhead\n%s", tab)
	}
}

func TestMACAccuracyShape(t *testing.T) {
	tab := MACAccuracy(MACAccuracyConfig{Scale: QuickScale()})
	for _, row := range tab.Rows {
		avail := cellFloat(t, row[1])
		errMB := cellFloat(t, row[4])
		if errMB > avail*0.15 || errMB < -avail*0.3 {
			t.Errorf("MAC error %v MB of %v MB available\n%s", errMB, avail, tab)
		}
	}
}

func TestPriorArtSweepShapes(t *testing.T) {
	// Fairness near 1 across sender counts; implicit coscheduling's edge
	// grows with background load.
	if f := tcpFairness(4); f < 0.5 {
		t.Errorf("4-sender fairness = %v", f)
	}
	light := coschedSpeedup(1)
	heavy := coschedSpeedup(4)
	if heavy <= light {
		t.Errorf("coscheduling advantage did not grow with load: %v -> %v", light, heavy)
	}
	tab := PriorArtSweeps()
	if len(tab.Rows) != 11 {
		t.Errorf("sweep rows = %d", len(tab.Rows))
	}
}

func TestNoiseShape(t *testing.T) {
	tab := Noise(NoiseConfig{Scale: QuickScale(), Intensities: []float64{0, 1}, Workloads: []string{"scan", "hog"}})
	if len(tab.Rows) != 2 {
		t.Fatalf("noise rows = %d, want one per intensity", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Every ICL section must have been driven and scored — no "-"
		// placeholders in any column.
		for i, cell := range row {
			if cell == "-" {
				t.Errorf("intensity %s: column %q was not scored\n%s", row[0], tab.Columns[i], tab)
			}
		}
	}
	// Contention makes timed probes dearer: total probe time at
	// intensity 1 must exceed the quiescent baseline.
	if q, c := cellFloat(t, tab.Rows[0][7]), cellFloat(t, tab.Rows[1][7]); c <= q {
		t.Errorf("probe-ms did not grow under contention: %v -> %v\n%s", q, c, tab)
	}
}

func TestNoiseWorkloadSelection(t *testing.T) {
	if err := SetNoiseWorkloads([]string{"zipf", "web"}); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = SetNoiseWorkloads(nil) }()
	if got := NoiseWorkloads(); len(got) != 2 || got[0] != "zipf" || got[1] != "web" {
		t.Errorf("NoiseWorkloads() = %v after selection", got)
	}
	if err := SetNoiseWorkloads([]string{"bittorrent"}); err == nil {
		t.Error("unknown workload name accepted")
	}
	if err := SetNoiseWorkloads(nil); err != nil {
		t.Fatal(err)
	}
	if got := NoiseWorkloads(); len(got) != len(NoiseWorkloadNames()) {
		t.Errorf("NoiseWorkloads() = %v, want full default set", got)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Errorf("registry has %d entries", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
	if ByID("fig5") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
	// The harness may resolve ids concurrently; the map is built once and
	// then read-only, and returned Runners are private copies.
	ForEachTrial(16, func(i int) {
		r := ByID(all[i%len(all)].ID)
		if r == nil || r.Run == nil {
			t.Errorf("concurrent ByID lookup %d failed", i)
		}
	})
	if a, b := ByID("fig5"), ByID("fig5"); a == b {
		t.Error("ByID returned a shared pointer; callers could alias each other's Runner")
	}
}
