// Package stash is a gray-box managed second-level cache overlay: a
// quota-bounded, block-wise, write-back cache that an application layers
// between itself and the simulated OS, backed by a file on a fast tier
// disk (a DragonStash-style persistent stash). The OS's own file cache
// sits invisibly underneath — and that is the point. The stash cannot
// see what the kernel already caches, so a naive stash wastes quota
// double-caching blocks any read would have hit in memory anyway.
//
// The gray-box policy closes that gap with the paper's toolbox:
//
//   - FCCD (admission): every source fetch is timed through the shared
//     probe layer and classified by an online log-space 2-means split.
//     A fast fetch means the block came from the invisible OS cache, so
//     the stash declines to admit it; only disk-speed fetches — blocks
//     the OS demonstrably does not hold — earn a stash slot.
//   - FLDC (reclaim and write-back ordering): eviction prefers, among
//     the coldest LRU entries, the one lowest in the backing file, so
//     reclaim walks the stash device sequentially; Sync flushes dirty
//     blocks in (ino, page) order, the i-number layout order the source
//     file system actually allocated.
//
// The naive policy (always admit, strict LRU, FIFO write-back) is the
// control arm the experiment compares against.
//
// Degraded mode (SetOffline) models the stash's reason to exist: the
// slow source becomes unreachable, reads are served stash-only, and a
// miss surfaces as *OfflineMissError. The audit oracle scores both
// sides — a wasted admission at admit time, and whether an offline miss
// was a block the (unreachable) OS cache held, i.e. a block the
// admission policy declined and now regrets.
//
// Allocation discipline matches the kernel packages: the LRU and dirty
// FIFO are intrusive ring.Lists in slice arenas, slots recycle through
// a free stack, and the steady-state hit, admit and evict paths perform
// no heap allocation (guarded by AllocsPerRun tests).
package stash

import (
	"errors"
	"fmt"
	"sort"

	"graybox/internal/core/probe"
	"graybox/internal/ring"
	"graybox/internal/simos"
	"graybox/internal/telemetry"
)

// Config parameterizes one stash instance.
type Config struct {
	// Backing is the path of the stash's backing file, usually on the
	// machine's fast tier disk (e.g. "/mnt1/stash0"). Opened if it
	// exists, created otherwise.
	Backing string
	// QuotaBlocks bounds the number of blocks the stash may hold
	// (default 256).
	QuotaBlocks int
	// MaxDirty bounds the dirty FIFO; a write that pushes past it
	// synchronously writes the oldest dirty blocks back (default
	// QuotaBlocks/8, at least 1).
	MaxDirty int
	// GrayBox enables FCCD timed-probe admission and FLDC reclaim /
	// write-back ordering; false is the naive always-admit control arm.
	GrayBox bool
	// MinSep is the log-space separation the admission classifier must
	// see before trusting a fast/slow split (default
	// probe.MinLogSeparation, the paper's 8x rule).
	MinSep float64
}

func (c Config) withDefaults() Config {
	if c.QuotaBlocks == 0 {
		c.QuotaBlocks = 256
	}
	if c.MaxDirty == 0 {
		c.MaxDirty = c.QuotaBlocks / 8
		if c.MaxDirty < 1 {
			c.MaxDirty = 1
		}
	}
	if c.MinSep == 0 {
		c.MinSep = probe.MinLogSeparation
	}
	return c
}

// BlockID names one source-file block.
type BlockID struct {
	Ino  int64
	Page int64
}

// meta is one resident block's bookkeeping: its slot in the backing
// file and its positions in the LRU and dirty lists (dirtyH None when
// clean).
type meta struct {
	slot   int32
	lruH   ring.Handle
	dirtyH ring.Handle
}

// Stats aggregates stash counters.
type Stats struct {
	Hits, Misses    int64
	Admits, Rejects int64
	Evictions       int64
	Writebacks      int64
	ThrottleFlushes int64
	OfflineMisses   int64
}

// Stash is one second-level cache instance bound to a simulated
// process. It is not safe for concurrent use (the simulation is
// single-threaded per machine).
type Stash struct {
	os      *simos.OS
	cfg     Config
	ps      int64
	backing *simos.Fd
	meter   *probe.Meter
	split   *probe.OnlineSplit

	files  map[int64]*File    // source files by inode
	blocks map[BlockID]meta   // resident blocks
	lru    ring.List[BlockID] // front = most recent
	dirty  ring.List[BlockID] // front = oldest dirty (FIFO)

	freeSlots []int32 // recycled backing slots (stack)
	nextSlot  int32   // next never-used backing slot

	offline  bool
	stats    Stats
	flushBuf []BlockID // reused by Sync

	// Telemetry handles; nil (no-op) when the machine's telemetry is off.
	telHits, telMisses     *telemetry.Counter
	telAdmits, telRejects  *telemetry.Counter
	telEvicts, telWBs      *telemetry.Counter
	telOffMiss             *telemetry.Counter
	telOccupancy, telDirty *telemetry.Gauge
}

// ErrOffline is returned by operations that need the source while the
// stash is in degraded mode.
var ErrOffline = errors.New("stash: source offline")

// ErrStashFull is returned when an admission cannot evict (every
// candidate is dirty and the source is offline).
var ErrStashFull = errors.New("stash: full (all blocks dirty while offline)")

// OfflineMissError reports a degraded-mode read the stash could not
// serve.
type OfflineMissError struct {
	Path string
	Page int64
}

func (e *OfflineMissError) Error() string {
	return fmt.Sprintf("stash: offline miss: %s page %d", e.Path, e.Page)
}

// IsOfflineMiss reports whether err is an OfflineMissError.
func IsOfflineMiss(err error) bool {
	var om *OfflineMissError
	return errors.As(err, &om)
}

// New creates a stash over os's file systems. The backing file is
// opened (or created) immediately; telemetry handles come from the
// machine's registry and are free no-ops when telemetry is disabled.
func New(os *simos.OS, cfg Config) (*Stash, error) {
	cfg = cfg.withDefaults()
	if cfg.Backing == "" {
		return nil, errors.New("stash: no backing path")
	}
	backing, err := os.Open(cfg.Backing)
	if err != nil {
		backing, err = os.Create(cfg.Backing)
		if err != nil {
			return nil, err
		}
	}
	r := os.Telemetry()
	st := &Stash{
		os: os, cfg: cfg, ps: int64(os.PageSize()), backing: backing,
		meter:  probe.NewMeter(os, r.Histogram("stash.fetch_ns", telemetry.LatencyBuckets)),
		split:  probe.NewOnlineSplit(cfg.MinSep),
		files:  make(map[int64]*File),
		blocks: make(map[BlockID]meta, cfg.QuotaBlocks),

		telHits: r.Counter("stash.hits"), telMisses: r.Counter("stash.misses"),
		telAdmits: r.Counter("stash.admits"), telRejects: r.Counter("stash.rejects"),
		telEvicts: r.Counter("stash.evictions"), telWBs: r.Counter("stash.writebacks"),
		telOffMiss:   r.Counter("stash.offline_misses"),
		telOccupancy: r.Gauge("stash.occupancy"), telDirty: r.Gauge("stash.dirty"),
	}
	return st, nil
}

// Stats returns a snapshot of the counters.
func (st *Stash) Stats() Stats { return st.stats }

// Len returns the number of resident blocks.
func (st *Stash) Len() int { return len(st.blocks) }

// DirtyLen returns the number of dirty resident blocks.
func (st *Stash) DirtyLen() int { return st.dirty.Len() }

// Offline reports whether the stash is in degraded mode.
func (st *Stash) Offline() bool { return st.offline }

// SetOffline switches degraded mode: while on, reads are served
// stash-only (misses return *OfflineMissError), writes buffer in the
// stash without write-back, and Sync/Open fail with ErrOffline.
func (st *Stash) SetOffline(on bool) { st.offline = on }

// File is one source file read and written through the stash.
type File struct {
	st   *Stash
	src  *simos.Fd
	ino  int64
	size int64
	path string
}

// Open opens a source file for stash-mediated I/O. Re-opening a path
// already open returns the same *File. Fails with ErrOffline in
// degraded mode (only already-open files can be served).
func (st *Stash) Open(path string) (*File, error) {
	if st.offline {
		return nil, ErrOffline
	}
	fd, err := st.os.Open(path)
	if err != nil {
		return nil, err
	}
	if f, ok := st.files[fd.Ino()]; ok {
		return f, nil
	}
	f := &File{st: st, src: fd, ino: fd.Ino(), size: fd.Size(), path: path}
	st.files[f.ino] = f
	return f, nil
}

// Size returns the file's length as the stash sees it (source length
// plus any buffered extension).
func (f *File) Size() int64 { return f.size }

// Path returns the path the file was opened with.
func (f *File) Path() string { return f.path }

// Ino returns the source file's inode number — the Ino half of this
// file's BlockIDs (Manifest entries, Preload manifests).
func (f *File) Ino() int64 { return f.ino }

// blockLen returns how many valid bytes block pg holds.
func (f *File) blockLen(pg int64) int64 {
	n := f.size - pg*f.st.ps
	if n > f.st.ps {
		n = f.st.ps
	}
	return n
}

// Read reads n bytes at offset off through the stash, block by block.
// Hits are served from the backing file; online misses fetch from the
// source (and maybe admit); degraded-mode misses fail with
// *OfflineMissError.
func (f *File) Read(off, n int64) error {
	if n < 0 || off < 0 || off+n > f.size {
		return fmt.Errorf("stash: read [%d,%d) beyond size %d of %s", off, off+n, f.size, f.path)
	}
	if n == 0 {
		return nil
	}
	for pg := off / f.st.ps; pg <= (off+n-1)/f.st.ps; pg++ {
		if err := f.readBlock(pg); err != nil {
			return err
		}
	}
	return nil
}

// readBlock serves one block.
func (f *File) readBlock(pg int64) error {
	st := f.st
	id := BlockID{Ino: f.ino, Page: pg}
	if m, ok := st.blocks[id]; ok {
		st.lru.MoveToFront(m.lruH)
		st.stats.Hits++
		st.telHits.Inc()
		return st.backing.Read(int64(m.slot)*st.ps, f.blockLen(pg))
	}
	aud := st.os.Audit()
	if st.offline {
		st.stats.OfflineMisses++
		st.telOffMiss.Inc()
		aud.StashOfflineMiss(aud.OracleResidentPage(f.ino, pg))
		return &OfflineMissError{Path: f.path, Page: pg}
	}
	st.stats.Misses++
	st.telMisses.Inc()
	// Residency truth must be read before the fetch: the fetch itself
	// pulls the page into the OS cache, so truth read afterwards would
	// claim every block was resident.
	resident := aud.OracleResidentPage(f.ino, pg)
	start := st.meter.Begin()
	if err := f.src.Read(pg*st.ps, f.blockLen(pg)); err != nil {
		return err
	}
	elapsed := st.meter.End(start)
	admit, predicted := true, false
	if st.cfg.GrayBox {
		fast, confident := st.split.Observe(float64(elapsed))
		// A confidently fast fetch came from the invisible OS cache;
		// admitting it would double-cache. Unconfident samples default
		// to admit — an empty stash must not starve on cold start.
		predicted = fast && confident
		admit = !predicted
	}
	aud.StashAdmit(resident, predicted, admit, 1, int64(elapsed))
	if !admit {
		st.stats.Rejects++
		st.telRejects.Inc()
		return nil
	}
	return st.admit(id, false)
}

// Write writes n bytes at offset off through the stash (write-back:
// the source is updated by Sync, dirty-FIFO throttling, or eviction).
func (f *File) Write(off, n int64) error {
	if n < 0 || off < 0 {
		return fmt.Errorf("stash: bad write [%d,%d) of %s", off, off+n, f.path)
	}
	if n == 0 {
		return nil
	}
	st := f.st
	end := off + n
	for pg := off / st.ps; pg <= (end-1)/st.ps; pg++ {
		lo, hi := pg*st.ps, (pg+1)*st.ps
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if err := f.writeBlock(pg, lo, hi-lo); err != nil {
			return err
		}
	}
	if end > f.size {
		f.size = end
	}
	return st.throttleDirty()
}

// writeBlock applies one block's worth of a write: [off, off+n) lies
// within block pg.
func (f *File) writeBlock(pg, off, n int64) error {
	st := f.st
	id := BlockID{Ino: f.ino, Page: pg}
	if m, ok := st.blocks[id]; ok {
		st.lru.MoveToFront(m.lruH)
		if err := st.backing.Write(int64(m.slot)*st.ps+(off-pg*st.ps), n); err != nil {
			return err
		}
		st.markDirty(id)
		return nil
	}
	// Not resident: a partial overwrite of existing source data needs
	// the rest of the block (read-modify-write) — impossible offline.
	partial := n < st.ps && pg*st.ps < f.size
	if partial {
		if st.offline {
			return &OfflineMissError{Path: f.path, Page: pg}
		}
		if err := f.src.Read(pg*st.ps, f.blockLen(pg)); err != nil {
			return err
		}
	}
	return st.admit(id, true)
}

// markDirty appends id to the dirty FIFO if it is clean.
func (st *Stash) markDirty(id BlockID) {
	m := st.blocks[id]
	if m.dirtyH == ring.None {
		m.dirtyH = st.dirty.PushBack(id)
		st.blocks[id] = m
		st.telDirty.Set(int64(st.dirty.Len()))
	}
}

// admit inserts id as a resident block, evicting to quota first, and
// writes it to the backing file. The stash stores whole blocks — a
// partially valid block still occupies (and writes) a full slot, so the
// backing extent always covers every live slot.
func (st *Stash) admit(id BlockID, dirtyBlock bool) error {
	for len(st.blocks) >= st.cfg.QuotaBlocks {
		if err := st.evictOne(); err != nil {
			return err
		}
	}
	slot := st.allocSlot()
	if err := st.backing.Write(int64(slot)*st.ps, st.ps); err != nil {
		st.freeSlots = append(st.freeSlots, slot)
		return err
	}
	m := meta{slot: slot, lruH: st.lru.PushFront(id)}
	st.blocks[id] = m
	if dirtyBlock {
		st.markDirty(id)
	}
	st.stats.Admits++
	st.telAdmits.Inc()
	st.telOccupancy.Set(int64(len(st.blocks)))
	return nil
}

// allocSlot returns a backing-file slot, recycling freed ones first.
func (st *Stash) allocSlot() int32 {
	if k := len(st.freeSlots); k > 0 {
		s := st.freeSlots[k-1]
		st.freeSlots = st.freeSlots[:k-1]
		return s
	}
	s := st.nextSlot
	st.nextSlot++
	return s
}

// reclaimWindow is how many of the coldest LRU entries the gray-box
// victim scan considers when picking the lowest backing slot.
const reclaimWindow = 8

// victim picks the block to evict, or None when no candidate exists.
// Naive policy: the LRU tail. Gray-box policy (FLDC): among the
// reclaimWindow coldest entries, the one lowest in the backing file,
// so successive reclaims walk the stash device sequentially instead of
// hopping between slots in recency order. Offline, dirty blocks are
// skipped (they cannot be written back).
func (st *Stash) victim() ring.Handle {
	best, bestSlot := ring.None, int32(0)
	scanned := 0
	for h := st.lru.Back(); h != ring.None; h = st.lru.Prev(h) {
		id := *st.lru.At(h)
		m := st.blocks[id]
		if st.offline && m.dirtyH != ring.None {
			continue
		}
		if !st.cfg.GrayBox {
			return h
		}
		if best == ring.None || m.slot < bestSlot {
			best, bestSlot = h, m.slot
		}
		if scanned++; scanned >= reclaimWindow {
			break
		}
	}
	return best
}

// evictOne removes one block, writing it back first when dirty.
func (st *Stash) evictOne() error {
	h := st.victim()
	if h == ring.None {
		return ErrStashFull
	}
	id := *st.lru.At(h)
	m := st.blocks[id]
	if m.dirtyH != ring.None {
		st.dirty.Remove(m.dirtyH)
		st.telDirty.Set(int64(st.dirty.Len()))
		if err := st.writeBack(id, m.slot); err != nil {
			return err
		}
	}
	st.lru.Remove(h)
	delete(st.blocks, id)
	st.freeSlots = append(st.freeSlots, m.slot)
	st.stats.Evictions++
	st.telEvicts.Inc()
	st.telOccupancy.Set(int64(len(st.blocks)))
	return nil
}

// writeBack copies one block from the backing file to its source.
func (st *Stash) writeBack(id BlockID, slot int32) error {
	f := st.files[id.Ino]
	if f == nil {
		return fmt.Errorf("stash: dirty block of unknown ino %d", id.Ino)
	}
	n := f.blockLen(id.Page)
	if err := st.backing.Read(int64(slot)*st.ps, n); err != nil {
		return err
	}
	if err := f.src.Write(id.Page*st.ps, n); err != nil {
		return err
	}
	st.stats.Writebacks++
	st.telWBs.Inc()
	return nil
}

// throttleDirty synchronously writes back the oldest dirty blocks until
// the FIFO fits MaxDirty again. Offline, writes accumulate unthrottled
// (there is nowhere to flush to).
func (st *Stash) throttleDirty() error {
	for st.dirty.Len() > st.cfg.MaxDirty && !st.offline {
		h := st.dirty.Front()
		id := *st.dirty.At(h)
		m := st.blocks[id]
		st.dirty.Remove(h)
		m.dirtyH = ring.None
		st.blocks[id] = m
		st.telDirty.Set(int64(st.dirty.Len()))
		if err := st.writeBack(id, m.slot); err != nil {
			return err
		}
		st.stats.ThrottleFlushes++
	}
	return nil
}

// Sync writes every dirty block back to its source. The gray-box
// policy flushes in (ino, page) order — the i-number order FLDC
// establishes as the source file system's layout order — so the slow
// disk sees a sequential pass; the naive policy flushes in FIFO order.
// Fails with ErrOffline in degraded mode.
func (st *Stash) Sync() error {
	if st.offline {
		return ErrOffline
	}
	st.flushBuf = st.flushBuf[:0]
	for h := st.dirty.Front(); h != ring.None; h = st.dirty.Next(h) {
		st.flushBuf = append(st.flushBuf, *st.dirty.At(h))
	}
	if st.cfg.GrayBox {
		sort.Slice(st.flushBuf, func(i, j int) bool {
			a, b := st.flushBuf[i], st.flushBuf[j]
			if a.Ino != b.Ino {
				return a.Ino < b.Ino
			}
			return a.Page < b.Page
		})
	}
	for _, id := range st.flushBuf {
		m := st.blocks[id]
		st.dirty.Remove(m.dirtyH)
		m.dirtyH = ring.None
		st.blocks[id] = m
		if err := st.writeBack(id, m.slot); err != nil {
			return err
		}
	}
	st.telDirty.Set(0)
	return nil
}
