package workload

import (
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// MemHog allocates a working set and keeps it hot by sweeping it with
// writes, squeezing the frame pool the way a competing application's
// heap does. The held size scales with intensity, so a sweep moves the
// memory frontier MAC and the page daemon fight over.
type MemHog struct {
	// Label distinguishes multiple hogs ("" -> "hog").
	Label string
	// Fraction of the frame pool held at intensity 1 (default 0.4).
	Fraction float64
	// Dwell is the pause between sweeps (default 20ms).
	Dwell sim.Time
}

func (g *MemHog) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "hog"
}

func (g *MemHog) Prepare(*simos.System) error { return nil }

func (g *MemHog) Run(ctx *Ctx) {
	os := ctx.OS()
	frac := g.Fraction
	if frac == 0 {
		frac = 0.4
	}
	dwell := g.Dwell
	if dwell == 0 {
		dwell = 20 * sim.Millisecond
	}
	pages := int64(frac * ctx.Intensity() * float64(os.System().Pool.Capacity()))
	if pages < 1 {
		return
	}
	m := os.MallocPages(pages)
	defer os.Free(m)
	for !ctx.Stopped() {
		// Sweep from a random rotation so the page daemon sees a moving
		// reference pattern rather than a fixed scan order.
		rot := ctx.Int63n(pages)
		for i := int64(0); i < pages && !ctx.Stopped(); i++ {
			os.Touch(m, (rot+i)%pages, true)
		}
		os.Sleep(dwell)
	}
}
