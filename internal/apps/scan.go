package apps

import (
	"graybox/internal/core/fccd"
	"graybox/internal/sim"
	"graybox/internal/simos"
)

// ScanResult reports a single-file scan.
type ScanResult struct {
	Elapsed sim.Time
	Bytes   int64
}

// Scan reads a file front to back — the traditional linear scan of
// Figure 2. No matcher CPU is charged: the scan benchmark measures pure
// access time.
func Scan(os *simos.OS, path string, costs Costs) (ScanResult, error) {
	fd, err := os.Open(path)
	if err != nil {
		return ScanResult{}, err
	}
	start := os.Now()
	if err := costs.streamRead(os, fd, 0, fd.Size(), false); err != nil {
		return ScanResult{}, err
	}
	return ScanResult{Elapsed: os.Now() - start, Bytes: fd.Size()}, nil
}

// GBScan probes the file with the FCCD and reads it segment by segment
// in probe order: cached access units first, the rest afterwards — the
// gray-box scan of Figure 2. Because the file is consumed in access-unit
// chunks, repeated runs reinforce access-unit-aligned cache contents
// (positive feedback, Section 2.2).
func GBScan(os *simos.OS, det *fccd.Detector, path string, costs Costs) (ScanResult, error) {
	fd, err := os.Open(path)
	if err != nil {
		return ScanResult{}, err
	}
	start := os.Now()
	segs, err := det.ProbeFd(fd)
	if err != nil {
		return ScanResult{}, err
	}
	segs = fccd.CoalescePlan(segs)
	var total int64
	for _, seg := range segs {
		if err := costs.streamRead(os, fd, seg.Off, seg.Len, false); err != nil {
			return ScanResult{}, err
		}
		total += seg.Len
	}
	return ScanResult{Elapsed: os.Now() - start, Bytes: total}, nil
}

// ScanFiles reads a set of files fully in the given order (the
// multiple-file scan variant of Section 4.1.3).
func ScanFiles(os *simos.OS, paths []string, costs Costs) (ScanResult, error) {
	start := os.Now()
	var total int64
	for _, p := range paths {
		fd, err := os.Open(p)
		if err != nil {
			return ScanResult{}, err
		}
		if err := costs.streamRead(os, fd, 0, fd.Size(), false); err != nil {
			return ScanResult{}, err
		}
		total += fd.Size()
	}
	return ScanResult{Elapsed: os.Now() - start, Bytes: total}, nil
}
