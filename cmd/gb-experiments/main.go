// Command gb-experiments regenerates every table and figure of the
// paper's evaluation on the simulated platforms.
//
// Usage:
//
//	gb-experiments [-scale full|quick] [-markdown] [-o file] [id ...]
//
// With no ids, all experiments run in paper order. Available ids:
// table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 mac-accuracy.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"graybox/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "full", "experiment scale: full (paper-size) or quick")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of aligned text")
	outPath := flag.String("o", "", "write output to file (default stdout)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleName {
	case "full":
		sc = experiments.FullScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or quick)\n", *scaleName)
		os.Exit(2)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	runners := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r := experiments.ByID(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		tab := r.Run(sc)
		elapsed := time.Since(start).Round(time.Millisecond)
		if *markdown {
			fmt.Fprintln(out, tab.Markdown())
		} else {
			fmt.Fprintln(out, tab)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v wall-clock at scale %s]\n", r.ID, elapsed, sc.Name)
	}
}
