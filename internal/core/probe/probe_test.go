package probe

import (
	"errors"
	"math"
	"testing"

	"graybox/internal/sim"
)

// fakeClock advances only when a "probe" explicitly charges time,
// mirroring the engine invariant that virtual time moves inside
// simulated operations only.
type fakeClock struct{ now sim.Time }

func (c *fakeClock) Now() sim.Time { return c.now }

func TestMeterAccountsCostByDelta(t *testing.T) {
	c := &fakeClock{}
	m := NewMeter(c, nil)
	charge := func(d sim.Time) func() error {
		return func() error { c.now += d; return nil }
	}
	if _, err := m.Time(charge(100)); err != nil {
		t.Fatal(err)
	}
	snap := m.Cost()
	if snap.Probes != 1 || snap.NS != 100 {
		t.Fatalf("cost after 1 probe = %+v", snap)
	}
	if _, err := m.Time(charge(250)); err != nil {
		t.Fatal(err)
	}
	delta := m.Cost().Sub(snap)
	if delta.Probes != 1 || delta.NS != 250 {
		t.Fatalf("delta = %+v, want {1 250}", delta)
	}
	if m.Probes() != 2 || m.Elapsed() != 350 {
		t.Fatalf("totals = %d probes, %v", m.Probes(), m.Elapsed())
	}
	if got := m.Cost().Duration(); got != 350 {
		t.Fatalf("Duration = %v", got)
	}
}

func TestMeterErrorNotBilled(t *testing.T) {
	c := &fakeClock{}
	m := NewMeter(c, nil)
	boom := errors.New("boom")
	if _, err := m.Time(func() error { c.now += 40; return boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if m.Cost() != (Cost{}) {
		t.Fatalf("failed probe was billed: %+v", m.Cost())
	}
}

func TestSplitBimodalSeparates(t *testing.T) {
	// Four cache hits (~10us) and four disk reads (~8ms): a clean split.
	ts := []float64{1e4, 8e6, 1.1e4, 8.2e6, 0.9e4, 7.9e6, 1e4, 8.1e6}
	s := SplitBimodal(ts, MinLogSeparation)
	if want := []int{0, 2, 4, 6}; !equalInts(s.Fast, want) {
		t.Fatalf("fast = %v, want %v", s.Fast, want)
	}
	if want := []int{1, 3, 5, 7}; !equalInts(s.Slow, want) {
		t.Fatalf("slow = %v, want %v", s.Slow, want)
	}
	if s.Margin <= MinLogSeparation {
		t.Fatalf("margin = %v, want > ln(8)", s.Margin)
	}
	if c := s.Confidence(); c <= 0.5 || c >= 1 {
		t.Fatalf("confidence = %v, want in (0.5, 1) for a wide margin", c)
	}
}

func TestSplitBimodalUnimodal(t *testing.T) {
	for _, ts := range [][]float64{
		{},                   // empty
		{5e3},                // single observation
		{5e3, 5e3, 5e3},      // identical
		{5e3, 6e3, 7e3, 8e3}, // spread below 8x
	} {
		s := SplitBimodal(ts, MinLogSeparation)
		if len(s.Fast) != 0 || len(s.Slow) != len(ts) || s.Margin != 0 {
			t.Fatalf("SplitBimodal(%v) = %+v, want all-slow margin 0", ts, s)
		}
		if s.Confidence() != 0 {
			t.Fatalf("unimodal confidence = %v, want 0", s.Confidence())
		}
	}
}

func TestSplitBimodalZeroThresholdHonorsClustering(t *testing.T) {
	// The same sub-8x spread splits when the caller wants raw 2-means
	// (FLDC composition trusts the i-number sort within each group, so a
	// wrong split costs little).
	ts := []float64{5e3, 6e3, 7e3, 8e3}
	s := SplitBimodal(ts, 0)
	if len(s.Fast) == 0 || len(s.Slow) == 0 {
		t.Fatalf("raw split = %+v, want both classes populated", s)
	}
	if s.Margin <= 0 {
		t.Fatalf("raw split margin = %v, want > 0", s.Margin)
	}
}

func TestSlowBurstTripsOnSuccession(t *testing.T) {
	d := NewSlowBurst(3)
	if d.Add(true) || d.Add(true) {
		t.Fatal("tripped before limit")
	}
	if !d.Add(true) {
		t.Fatal("did not trip at limit")
	}
	if got := d.Fraction(); got != 1 {
		t.Fatalf("fraction = %v", got)
	}
}

func TestSlowBurstDecayCatchesInterleavedPaging(t *testing.T) {
	// slow, fast, slow, fast, ... — a strictly-consecutive rule would
	// never trip; the decaying score must.
	d := NewSlowBurst(3)
	tripped := false
	for i := 0; i < 40 && !tripped; i++ {
		tripped = d.Add(i%2 == 0)
	}
	if !tripped {
		t.Fatal("interleaved paging not detected")
	}
}

func TestSlowBurstOkBudget(t *testing.T) {
	d := NewSlowBurst(100)
	for i := 0; i < 200; i++ {
		d.Add(false)
	}
	if !d.Ok() {
		t.Fatal("all-fast loop should pass the budget")
	}
	for i := 0; i < 20; i++ {
		d.Add(i%3 == 0) // ~1/3 slow
	}
	if d.Ok() {
		t.Fatalf("fraction %v should exceed the %v budget", d.Fraction(), DefaultMaxSlowFraction)
	}
}

func TestRepeatAdaptiveStopsEarly(t *testing.T) {
	c := &fakeClock{}
	m := NewMeter(c, nil)
	s, err := m.Repeat(RepeatConfig{Min: 4, Max: 64, MaxRelSpread: 0.01},
		func() error { c.now += 1000; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Times) != 4 {
		t.Fatalf("identical samples should stop at Min: took %d", len(s.Times))
	}
	if got := s.Estimate(); got != 1000 {
		t.Fatalf("estimate = %v", got)
	}
	if got := s.Confidence(); got != 1 {
		t.Fatalf("identical-sample confidence = %v, want 1", got)
	}
	if m.Probes() != 4 {
		t.Fatalf("meter saw %d probes", m.Probes())
	}
}

func TestRepeatRunsToMaxWhenNoisy(t *testing.T) {
	c := &fakeClock{}
	m := NewMeter(c, nil)
	i := 0
	s, err := m.Repeat(RepeatConfig{Min: 2, Max: 10, MaxRelSpread: 0.001},
		func() error { i++; c.now += sim.Time(1000 * i); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Times) != 10 {
		t.Fatalf("noisy sample stopped at %d, want Max", len(s.Times))
	}
	if got := s.Confidence(); !(got > 0 && got < 1) {
		t.Fatalf("noisy confidence = %v, want in (0, 1)", got)
	}
}

func TestRepeatOutlierDiscard(t *testing.T) {
	c := &fakeClock{}
	m := NewMeter(c, nil)
	// Nine tight samples and one 100x outlier: the estimate must ignore
	// the spike the way MAC's zero-fill calibration does.
	costs := []sim.Time{1000, 1010, 990, 1000, 1005, 100000, 995, 1000, 1010, 990}
	i := 0
	s, err := m.Repeat(RepeatConfig{Min: 10, Max: 10, DiscardK: 2},
		func() error { c.now += costs[i]; i++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Estimate(); got < 900 || got > 1100 {
		t.Fatalf("estimate %v dominated by outlier", got)
	}
}

func TestRepeatPropagatesError(t *testing.T) {
	c := &fakeClock{}
	m := NewMeter(c, nil)
	boom := errors.New("boom")
	i := 0
	s, err := m.Repeat(RepeatConfig{Min: 1, Max: 8}, func() error {
		i++
		if i == 3 {
			return boom
		}
		c.now += 10
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if len(s.Times) != 2 || m.Probes() != 2 {
		t.Fatalf("partial sample = %d times, %d probes; want 2, 2", len(s.Times), m.Probes())
	}
}

func TestSampleDegenerateNeverNaN(t *testing.T) {
	for _, s := range []Sample{
		{},
		{Times: []float64{5}, kept: []float64{5}},
		{Times: []float64{0, 0}, kept: []float64{0, 0}},
	} {
		for name, v := range map[string]float64{
			"RelSpread":  s.RelSpread(),
			"Confidence": s.Confidence(),
			"Estimate":   float64(s.Estimate()),
		} {
			if math.IsNaN(v) {
				t.Fatalf("%s(%+v) is NaN", name, s)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
